package apcm_test

import (
	"bytes"
	"net"
	"regexp"
	"strings"
	"testing"
	"time"

	apcm "github.com/streammatch/apcm"
	"github.com/streammatch/apcm/broker"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/metrics"
	"github.com/streammatch/apcm/shard"
)

// metricLineRE matches the base of a series or header name: the part
// before any label block or value. This is the same contract the
// metricname analyzer (internal/lint) enforces at registration sites;
// this test enforces it on the wire, where dashboards consume it.
var metricBaseRE = regexp.MustCompile(`^apcm_[a-z0-9_]+$`)

// TestPrometheusExposition attaches one registry to both an engine and
// a broker server, then walks the full Prometheus exposition output
// asserting the naming contract: every base name is apcm_-prefixed
// snake_case, every series appears exactly once, and TYPE/HELP headers
// are emitted once per base name.
func TestPrometheusExposition(t *testing.T) {
	reg := metrics.New()
	eng := apcm.MustNew(apcm.Options{Workers: 2, Metrics: reg})
	defer eng.Close()

	// Exercise the engine so histogram series carry observations.
	if err := eng.Subscribe(expr.MustNew(eng.NewID(), expr.Ge(1, 10))); err != nil {
		t.Fatal(err)
	}
	ev, err := expr.NewEvent(expr.P(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	eng.Match(ev)

	// A sharded group on the same registry: its apcm_shard_* namespace
	// must coexist with the engine's (shard engines themselves register
	// nothing, so there are no collisions). Exercise it so the fan-out
	// and merge histograms carry observations.
	grp := shard.MustNew(shard.Options{Shards: 3, Workers: 2, Metrics: reg})
	defer grp.Close()
	if _, err := grp.SubscribePreds(expr.Ge(1, 10)); err != nil {
		t.Fatal(err)
	}
	grp.Match(ev)

	// Broker metrics attach when Serve starts; share the registry so the
	// exposition covers both namespaces at once.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := broker.NewServer(eng)
	srv.Metrics = reg
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	waitForMetric(t, reg, "apcm_broker_connections")

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if out == "" {
		t.Fatal("empty exposition output")
	}

	seenSeries := make(map[string]bool)
	seenType := make(map[string]bool)
	seenHelp := make(map[string]bool)
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			base := strings.Fields(line)[2]
			if seenType[base] {
				t.Errorf("duplicate TYPE header for %s", base)
			}
			seenType[base] = true
			if !metricBaseRE.MatchString(base) {
				t.Errorf("TYPE header name %q is not apcm_-prefixed snake_case", base)
			}
		case strings.HasPrefix(line, "# HELP "):
			base := strings.Fields(line)[2]
			if seenHelp[base] {
				t.Errorf("duplicate HELP header for %s", base)
			}
			seenHelp[base] = true
		case strings.HasPrefix(line, "#"):
			t.Errorf("unrecognized comment line %q", line)
		default:
			series := strings.Fields(line)[0]
			if seenSeries[series] {
				t.Errorf("series %q exposed twice (double registration?)", series)
			}
			seenSeries[series] = true
			base := series
			if i := strings.IndexByte(base, '{'); i >= 0 {
				base = base[:i]
			}
			if !metricBaseRE.MatchString(base) {
				t.Errorf("series base name %q is not apcm_-prefixed snake_case", base)
			}
		}
	}

	// All three namespaces must be present: engine, shard group and
	// broker instruments on the same registry.
	for _, want := range []string{
		"apcm_match_latency_ns",
		"apcm_broker_connections",
		"apcm_shard_count",
		"apcm_shard_imbalance",
		"apcm_shard_group_subscriptions",
		"apcm_shard_fanout_latency_ns",
		"apcm_shard_merge_latency_ns",
		"apcm_shard_subscriptions",
		"apcm_shard_mem_bytes",
		"apcm_shard_cost_ns",
		"apcm_shard_events_total",
	} {
		if !seenType[want] {
			t.Errorf("expected metric %s missing from exposition (have %d series)", want, len(seenSeries))
		}
	}
	// The per-shard series must carry their shard labels on the wire.
	for _, want := range []string{
		`apcm_shard_subscriptions{shard="0"}`,
		`apcm_shard_events_total{shard="2"}`,
	} {
		if !seenSeries[want] {
			t.Errorf("expected series %s missing from exposition", want)
		}
	}

	// The registry itself must agree: Names() lists each registered
	// metric exactly once.
	names := reg.Names()
	uniq := make(map[string]bool, len(names))
	for _, n := range names {
		if uniq[n] {
			t.Errorf("registry.Names() lists %q twice", n)
		}
		uniq[n] = true
	}
}

// waitForMetric polls until name appears in the registry (broker
// registration happens on the Serve goroutine).
func waitForMetric(t *testing.T, reg *metrics.Registry, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range reg.Names() {
			if n == name {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("metric %s never registered", name)
}
