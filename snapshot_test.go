package apcm_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/trace"
)

// TestPartialLoadAdvancesIDAllocator: a load that fails partway keeps
// the subscriptions read before the failure, and the id allocator must
// be past every one of them — NewID colliding with a survivor would
// silently cross-wire two subscriptions.
func TestPartialLoadAdvancesIDAllocator(t *testing.T) {
	var buf bytes.Buffer
	xs := []*expr.Expression{
		expr.MustNew(100, expr.Eq(1, 1)),
		expr.MustNew(200, expr.Eq(2, 2)),
	}
	if err := trace.WriteExpressions(&buf, xs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	// Chop the trace mid-second-record: the first expression loads, the
	// second fails.
	n, err := eng.LoadSubscriptions(bytes.NewReader(full[:len(full)-1]))
	if err == nil {
		t.Fatal("truncated trace loaded without error")
	}
	if n != 1 {
		t.Fatalf("loaded %d subscriptions from the truncated trace, want 1", n)
	}
	if got := eng.Len(); got != 1 {
		t.Fatalf("engine holds %d subscriptions, want 1", got)
	}
	if id := eng.NewID(); id <= 100 {
		t.Fatalf("NewID = %d after restoring id 100, want > 100", id)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	for i := expr.ID(1); i <= 5; i++ {
		if err := eng.Subscribe(expr.MustNew(i, expr.Eq(expr.AttrID(i), expr.Value(i)))); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "subs.ckpt")
	if err := eng.CheckpointSubscriptions(path); err != nil {
		t.Fatal(err)
	}

	restored := apcm.MustNew(apcm.Options{Workers: 1})
	defer restored.Close()
	n, err := restored.RestoreSubscriptions(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || restored.Len() != 5 {
		t.Fatalf("restored %d subscriptions (engine holds %d), want 5", n, restored.Len())
	}
	if id := restored.NewID(); id <= 5 {
		t.Fatalf("NewID = %d after restoring ids 1..5, want > 5", id)
	}
	got := restored.Match(expr.MustEvent(expr.P(3, 3)))
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("restored engine matched %v, want [3]", got)
	}
}

// TestCheckpointFailureKeepsPrevious: a checkpoint attempt that fails
// mid-save (here: the engine grew DNF groups, which the trace format
// cannot represent) must leave the previous checkpoint byte-for-byte
// intact and no temporary litter behind.
func TestCheckpointFailureKeepsPrevious(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	if err := eng.Subscribe(expr.MustNew(1, expr.Eq(1, 1))); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "subs.ckpt")
	if err := eng.CheckpointSubscriptions(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Make the next save fail after the temp file is already created.
	if _, err := eng.SubscribeAny(
		[]expr.Predicate{expr.Eq(2, 2)},
		[]expr.Predicate{expr.Eq(3, 3)},
	); err != nil {
		t.Fatal(err)
	}
	if err := eng.CheckpointSubscriptions(path); err == nil {
		t.Fatal("checkpoint of a DNF-holding engine succeeded")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("previous checkpoint gone after failed attempt: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed checkpoint attempt modified the previous checkpoint")
	}
	leftover, err := filepath.Glob(filepath.Join(dir, ".apcm-checkpoint-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Fatalf("temp files left behind: %v", leftover)
	}
	restored := apcm.MustNew(apcm.Options{Workers: 1})
	defer restored.Close()
	if n, err := restored.RestoreSubscriptions(path); err != nil || n != 1 {
		t.Fatalf("RestoreSubscriptions = %d, %v after failed re-checkpoint, want 1, nil", n, err)
	}
}

// TestRestoreMissingCheckpoint: first boot, no checkpoint yet — not an
// error.
func TestRestoreMissingCheckpoint(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	n, err := eng.RestoreSubscriptions(filepath.Join(t.TempDir(), "never-written.ckpt"))
	if err != nil || n != 0 {
		t.Fatalf("RestoreSubscriptions = %d, %v for a missing file, want 0, nil", n, err)
	}
}
