package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"runtime"
	"sync"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/trace"
)

// Persistence. A group snapshots to the same flat trace format as a
// single engine — one file, all shards concatenated — so checkpoints
// move freely between sharded and unsharded deployments (and between
// groups of different shard counts or strategies: the load side
// re-routes every subscription under the loading group's own
// partitioning).

// SaveSubscriptions writes every live subscription across all shards to
// w as a binary trace, shard by shard. The group's write lock is held
// for the whole walk, so the snapshot is a consistent cut: no Subscribe
// or Unsubscribe lands between the declared record count and the
// records.
func (g *Group) SaveSubscriptions(w io.Writer) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return apcm.ErrClosed
	}
	total := 0
	for _, e := range g.shards {
		total += e.Len()
	}
	tw, err := trace.NewWriter(w, trace.KindExpressions, total)
	if err != nil {
		return err
	}
	for _, e := range g.shards {
		var werr error
		e.ForEachSubscription(func(x *expr.Expression) bool {
			werr = tw.WriteExpression(x)
			return werr == nil
		})
		if werr != nil {
			return werr
		}
	}
	return tw.Close()
}

// CheckpointSubscriptions persists the live subscription set of every
// shard to path, atomically (see apcm.WriteCheckpoint): a crash at any
// point leaves either the previous checkpoint or the new one, never a
// truncated or partial file.
func (g *Group) CheckpointSubscriptions(path string) error {
	return apcm.WriteCheckpoint(path, g.SaveSubscriptions)
}

// RestoreSubscriptions loads the checkpoint at path into the group. A
// missing file is not an error — a broker booting for the first time
// has no checkpoint yet — and restores nothing. It returns the number
// of subscriptions restored.
func (g *Group) RestoreSubscriptions(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return g.LoadSubscriptions(f)
}

// Cold-start load grain: records are routed in raw-byte chunks and
// subscribed in expression chunks of the same size, one write lock and
// one compiled-cluster batch append per chunk.
const (
	loadChunkRecords = 512
	loadChunkBytes   = 64 << 10
)

// rawChunk is a batch of undecoded records on the router→shard hop:
// buf holds the concatenated payloads, ends the cumulative end offset
// of each record within buf.
type rawChunk struct {
	buf  []byte
	ends []int
}

// LoadSubscriptions reads a trace written by SaveSubscriptions (either
// flavour: group or single engine, or by cmd/apcm-gen) and subscribes
// every expression on its owning shard. The router never decodes: it
// peeks each record's leading uvarints (the id, and under AttrRange the
// first predicate's attribute — predicates are stored attribute-sorted,
// so the first is the routing minimum) and forwards raw byte chunks to
// per-shard loader goroutines, which decode through private slabs (see
// expr.SlabDecoder) and subscribe in bulk. Decode cost therefore
// parallelises across shards along with insertion, which is where the
// multi-million-subscription cold-start cost goes on multi-core hosts
// (see BenchmarkLoadSubscriptions); on a single-core host the load runs
// inline with the same chunked bulk inserts. The id allocator is
// advanced past the largest loaded id so NewID never collides with a
// restored subscription, also on a partial load. It returns the number
// of subscriptions loaded; on error, subscriptions loaded before the
// failure remain subscribed. A record that fails to decode stops
// loading on its owning shard (and surfaces as the returned error);
// the other shards finish their share of the trace.
func (g *Group) LoadSubscriptions(r io.Reader) (int, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return 0, apcm.ErrClosed
	}
	tr, err := trace.NewReader(r)
	if err != nil {
		return 0, err
	}
	if tr.Kind() != trace.KindExpressions {
		return 0, fmt.Errorf("shard: trace holds %q records, want expressions", tr.Kind())
	}
	if runtime.GOMAXPROCS(0) == 1 || len(g.shards) == 1 {
		return g.loadInline(tr)
	}
	return g.loadParallel(tr)
}

// loadInline is the single-core restore: decode every record on the
// calling goroutine and subscribe per-shard chunks in bulk.
func (g *Group) loadInline(tr *trace.Reader) (int, error) {
	counts := make([]int, len(g.shards))
	errs := make([]error, len(g.shards))
	chunks := make([][]*expr.Expression, len(g.shards))
	flush := func(s int) {
		if errs[s] != nil || len(chunks[s]) == 0 {
			chunks[s] = chunks[s][:0]
			return
		}
		k, err := g.shards[s].SubscribeBulk(chunks[s])
		counts[s] += k
		if err != nil {
			errs[s] = err
		}
		chunks[s] = chunks[s][:0]
	}
	var dec expr.SlabDecoder
	var maxID expr.ID
	var rerr error
	for {
		x, err := tr.ReadExpressionSlab(&dec)
		if err == io.EOF {
			break
		}
		if err != nil {
			rerr = err
			break
		}
		if x.ID > maxID {
			maxID = x.ID
		}
		s := g.shardOf(x)
		if errs[s] != nil {
			continue
		}
		chunks[s] = append(chunks[s], x)
		if len(chunks[s]) >= loadChunkRecords {
			flush(s)
		}
	}
	loaded := 0
	for s := range chunks {
		flush(s)
		loaded += counts[s]
		if rerr == nil && errs[s] != nil {
			rerr = errs[s]
		}
	}
	g.advanceID(maxID)
	return loaded, rerr
}

// peekRoute routes a raw expression record without decoding it. ok is
// false when the leading fields are unparseable — the record is corrupt
// (the full decode reads the same prefix), so the caller hands it to
// shard 0 whose decoder reports the error.
func (g *Group) peekRoute(rec []byte) (id expr.ID, shard int, ok bool) {
	v, n := binary.Uvarint(rec)
	if n <= 0 {
		return 0, 0, false
	}
	id = expr.ID(v)
	if g.opts.Strategy != AttrRange {
		return id, g.idShard(id), true
	}
	off := n
	_, k := binary.Uvarint(rec[off:]) // predicate count
	if k <= 0 {
		return id, 0, false
	}
	off += k
	attr, k := binary.Uvarint(rec[off:])
	if k <= 0 {
		return id, 0, false
	}
	return id, g.attrShard(expr.AttrID(attr)), true
}

// loadParallel is the multi-core restore: the calling goroutine routes
// raw record chunks, one loader goroutine per shard decodes and
// subscribes them.
func (g *Group) loadParallel(tr *trace.Reader) (int, error) {
	n := len(g.shards)
	chans := make([]chan rawChunk, n)
	counts := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := range chans {
		chans[s] = make(chan rawChunk, 4)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var dec expr.SlabDecoder
			chunk := make([]*expr.Expression, 0, loadChunkRecords)
			flush := func() {
				if errs[s] != nil || len(chunk) == 0 {
					chunk = chunk[:0]
					return
				}
				k, err := g.shards[s].SubscribeBulk(chunk)
				counts[s] += k
				if err != nil {
					errs[s] = err
				}
				chunk = chunk[:0]
			}
			for c := range chans[s] {
				if errs[s] != nil {
					continue // drain after failure so the router never blocks
				}
				prev := 0
				for _, end := range c.ends {
					rec := c.buf[prev:end]
					prev = end
					x, k, err := dec.Decode(rec)
					if err != nil {
						flush()
						errs[s] = fmt.Errorf("trace: corrupt record: %w", err)
						break
					}
					if k != len(rec) {
						flush()
						errs[s] = fmt.Errorf("trace: record decoded %d of %d bytes", k, len(rec))
						break
					}
					chunk = append(chunk, x)
					if len(chunk) == loadChunkRecords {
						flush()
						if errs[s] != nil {
							break
						}
					}
				}
			}
			flush()
		}(s)
	}

	bufs := make([][]byte, n)
	endss := make([][]int, n)
	dispatch := func(s int) {
		if len(endss[s]) == 0 {
			return
		}
		chans[s] <- rawChunk{buf: bufs[s], ends: endss[s]}
		bufs[s] = make([]byte, 0, loadChunkBytes)
		endss[s] = nil
	}
	var maxID expr.ID
	var rerr error
	for {
		// Route into shard 0's accumulator by default; peekRoute moves
		// the record to its owner on success.
		s := 0
		head := len(bufs[0])
		buf, err := tr.ReadRawRecord(bufs[0])
		if err == io.EOF {
			break
		}
		if err != nil {
			rerr = err
			break
		}
		bufs[0] = buf
		rec := buf[head:]
		id, owner, ok := g.peekRoute(rec)
		if ok {
			if id > maxID {
				maxID = id
			}
			if owner != 0 {
				bufs[owner] = append(bufs[owner], rec...)
				bufs[0] = bufs[0][:head]
				s = owner
			}
		}
		endss[s] = append(endss[s], len(bufs[s]))
		if len(endss[s]) >= loadChunkRecords || len(bufs[s]) >= loadChunkBytes {
			dispatch(s)
		}
		if !ok {
			// Corrupt leading fields: shard 0's decoder owns the error;
			// stop reading, as the sequential loader would.
			break
		}
	}
	for s := range chans {
		dispatch(s)
		close(chans[s])
	}
	wg.Wait()

	loaded := 0
	for s := range counts {
		loaded += counts[s]
		if rerr == nil && errs[s] != nil {
			rerr = errs[s]
		}
	}
	g.advanceID(maxID)
	return loaded, rerr
}
