package shard

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/trace"
)

// Persistence. A group snapshots to the same flat trace format as a
// single engine — one file, all shards concatenated — so checkpoints
// move freely between sharded and unsharded deployments (and between
// groups of different shard counts or strategies: the load side
// re-routes every subscription under the loading group's own
// partitioning).

// SaveSubscriptions writes every live subscription across all shards to
// w as a binary trace, shard by shard. The group's write lock is held
// for the whole walk, so the snapshot is a consistent cut: no Subscribe
// or Unsubscribe lands between the declared record count and the
// records.
func (g *Group) SaveSubscriptions(w io.Writer) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return apcm.ErrClosed
	}
	total := 0
	for _, e := range g.shards {
		total += e.Len()
	}
	tw, err := trace.NewWriter(w, trace.KindExpressions, total)
	if err != nil {
		return err
	}
	for _, e := range g.shards {
		var werr error
		e.ForEachSubscription(func(x *expr.Expression) bool {
			werr = tw.WriteExpression(x)
			return werr == nil
		})
		if werr != nil {
			return werr
		}
	}
	return tw.Close()
}

// CheckpointSubscriptions persists the live subscription set of every
// shard to path, atomically (see apcm.WriteCheckpoint): a crash at any
// point leaves either the previous checkpoint or the new one, never a
// truncated or partial file.
func (g *Group) CheckpointSubscriptions(path string) error {
	return apcm.WriteCheckpoint(path, g.SaveSubscriptions)
}

// RestoreSubscriptions loads the checkpoint at path into the group. A
// missing file is not an error — a broker booting for the first time
// has no checkpoint yet — and restores nothing. It returns the number
// of subscriptions restored.
func (g *Group) RestoreSubscriptions(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return g.LoadSubscriptions(f)
}

// loadChanDepth buffers the per-shard subscribe channels so the decode
// goroutine stays ahead of index insertion.
const loadChanDepth = 256

// LoadSubscriptions reads a trace written by SaveSubscriptions (either
// flavour: group or single engine, or by cmd/apcm-gen) and subscribes
// every expression on its owning shard. Decoding and insertion are
// pipelined, and the shards insert in parallel — one loader goroutine
// per shard — which is where the multi-million-subscription cold-start
// cost goes on multi-core hosts (see BenchmarkLoadSubscriptions). The
// id allocator is advanced past the largest loaded id so NewID never
// collides with a restored subscription, also on a partial load. It
// returns the number of subscriptions loaded; on error, subscriptions
// loaded before the failure remain subscribed.
func (g *Group) LoadSubscriptions(r io.Reader) (int, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return 0, apcm.ErrClosed
	}
	tr, err := trace.NewReader(r)
	if err != nil {
		return 0, err
	}
	if tr.Kind() != trace.KindExpressions {
		return 0, fmt.Errorf("shard: trace holds %q records, want expressions", tr.Kind())
	}

	n := len(g.shards)
	chans := make([]chan *expr.Expression, n)
	counts := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := range chans {
		chans[s] = make(chan *expr.Expression, loadChanDepth)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for x := range chans[s] {
				if errs[s] != nil {
					continue // drain after failure so the feeder never blocks
				}
				if err := g.shards[s].Subscribe(x); err != nil {
					errs[s] = err
					continue
				}
				counts[s]++
			}
		}(s)
	}

	var maxID expr.ID
	var rerr error
	for {
		x, err := tr.ReadExpression()
		if err == io.EOF {
			break
		}
		if err != nil {
			rerr = err
			break
		}
		if x.ID > maxID {
			maxID = x.ID
		}
		chans[g.shardOf(x)] <- x
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	loaded := 0
	for s := range counts {
		loaded += counts[s]
		if rerr == nil && errs[s] != nil {
			rerr = errs[s]
		}
	}
	g.advanceID(maxID)
	return loaded, rerr
}
