package shard_test

import (
	"testing"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/shard"
)

// Allocation regression gates for the fan-out hot path: a steady-state
// Group match — fan out to every shard, merge into the caller's buffer —
// must not allocate, exactly like a single engine's. Same tolerance as
// the engine's gates: 0.5 allocs/run absorbs the rare sync.Pool refill
// after a GC cycle empties a job pool mid-run.
const allocTolerance = 0.5

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race runtime makes sync.Pool drop puts at random; alloc gates only hold on plain builds")
	}
}

func allocGroup(tb testing.TB, seed int64, nexprs int) (*shard.Group, []*expr.Event) {
	tb.Helper()
	w := testWorkload(seed)
	// Workers: 1 keeps the fan-out sequential on the calling goroutine so
	// the gates measure the merge path deterministically on any host.
	g := shard.MustNew(shard.Options{Shards: 4, Workers: 1})
	tb.Cleanup(g.Close)
	subscribeAll(tb, g, w.Expressions(nexprs))
	g.Prepare()
	return g, w.Events(256)
}

func TestGroupMatchSteadyStateZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	g, events := allocGroup(t, 31, 3000)
	dst := make([]expr.ID, 0, 1024)
	for _, ev := range events { // warm job pools, scratch, adaptive state
		dst = g.MatchAppend(dst[:0], ev)
	}
	i := 0
	avg := testing.AllocsPerRun(400, func() {
		dst = g.MatchAppend(dst[:0], events[i%len(events)])
		i++
	})
	if avg > allocTolerance {
		t.Fatalf("Group.MatchAppend allocates %.2f/op in steady state, want 0", avg)
	}
}

func TestGroupMatchBatchIntoSteadyStateZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	g, events := allocGroup(t, 37, 3000)
	var r apcm.BatchResult
	for i := 0; i < 8; i++ { // warm per-shard results and the merge buffer
		g.MatchBatchInto(events, &r)
	}
	avg := testing.AllocsPerRun(50, func() {
		g.MatchBatchInto(events, &r)
	})
	if avg > allocTolerance {
		t.Fatalf("Group.MatchBatchInto allocates %.2f/op in steady state, want 0", avg)
	}
}
