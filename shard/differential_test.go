package shard_test

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/shard"
)

// The differential suite: a sharded Group must be observationally
// identical to a single Engine over the same subscription set — same
// match sets for every event, single and batched, through arbitrary
// subscribe/unsubscribe churn. Partitioning is an internal detail; any
// divergence here is a routing, fan-out or merge bug.

// diffConfig is one randomly drawn differential scenario.
type diffConfig struct {
	seed     int64
	shards   int
	workers  int
	strategy shard.Strategy
	nexprs   int
	nevents  int
}

func (c diffConfig) normalize() diffConfig {
	if c.seed < 0 {
		c.seed = -c.seed
	}
	c.shards = 2 + int(uint(c.shards)%7)   // 2..8
	c.workers = 1 + int(uint(c.workers)%4) // 1..4
	c.strategy = shard.Strategy(uint(c.strategy) % 2)
	c.nexprs = 200 + int(uint(c.nexprs)%600) // 200..799
	c.nevents = 40 + int(uint(c.nevents)%60) // 40..99
	return c
}

// runDifferential subscribes the same workload into a single engine and
// a group, then checks every event's match set is identical on both the
// single-event and batch paths. Returns false (failing the quick check)
// on the first divergence.
func runDifferential(t *testing.T, c diffConfig) bool {
	t.Helper()
	c = c.normalize()
	w := testWorkload(c.seed)
	xs := w.Expressions(c.nexprs)
	events := w.Events(c.nevents)

	ref := apcm.MustNew(apcm.Options{Workers: 1})
	defer ref.Close()
	g := shard.MustNew(shard.Options{Shards: c.shards, Workers: c.workers, Strategy: c.strategy})
	defer g.Close()
	for _, x := range xs {
		if err := ref.Subscribe(x); err != nil {
			t.Fatal(err)
		}
		if err := g.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}

	// Churn: drop every third subscription from both, so the comparison
	// covers the post-unsubscribe index state too.
	for i := 0; i < len(xs); i += 3 {
		if ref.Unsubscribe(xs[i].ID) != g.Unsubscribe(xs[i].ID) {
			t.Errorf("cfg %+v: Unsubscribe(%d) disagreed", c, xs[i].ID)
			return false
		}
	}
	if ref.Len() != g.Len() {
		t.Errorf("cfg %+v: Len %d vs %d", c, ref.Len(), g.Len())
		return false
	}

	for i, ev := range events {
		want := sorted(ref.Match(ev))
		got := sorted(g.Match(ev))
		if !equalIDs(got, want) {
			t.Errorf("cfg %+v: event %d: group %v, engine %v", c, i, got, want)
			return false
		}
	}

	var rr, gr apcm.BatchResult
	ref.MatchBatchInto(events, &rr)
	g.MatchBatchInto(events, &gr)
	if rr.Len() != gr.Len() {
		t.Errorf("cfg %+v: batch Len %d vs %d", c, gr.Len(), rr.Len())
		return false
	}
	for i := 0; i < rr.Len(); i++ {
		want := sorted(append([]expr.ID(nil), rr.For(i)...))
		got := sorted(append([]expr.ID(nil), gr.For(i)...))
		if !equalIDs(got, want) {
			t.Errorf("cfg %+v: batch event %d: group %v, engine %v", c, i, got, want)
			return false
		}
	}
	return true
}

func equalIDs(a, b []expr.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGroupMatchesEngineQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	f := func(seed int64, shards, workers, strat, nexprs, nevents int) bool {
		return runDifferential(t, diffConfig{
			seed:     seed,
			shards:   shards,
			workers:  workers,
			strategy: shard.Strategy(strat),
			nexprs:   nexprs,
			nevents:  nevents,
		})
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestGroupMatchesEngineFixed pins the corner shapes the quick draw may
// miss: 1 shard (pure delegation), shards > GOMAXPROCS, both strategies.
func TestGroupMatchesEngineFixed(t *testing.T) {
	for _, c := range []diffConfig{
		{seed: 1, shards: -1, workers: 0, strategy: shard.HashID, nexprs: 100, nevents: 10},
		{seed: 2, shards: 14, workers: 2, strategy: shard.AttrRange, nexprs: 300, nevents: 20},
		{seed: 3, shards: 6, workers: 3, strategy: shard.HashID, nexprs: 500, nevents: 30},
	} {
		if !runDifferential(t, c) {
			t.Fatalf("fixed config %+v diverged", c)
		}
	}
	// True single-shard group (normalize floors at 2 above): the direct
	// delegation path.
	w := testWorkload(5)
	xs := w.Expressions(400)
	events := w.Events(40)
	ref := apcm.MustNew(apcm.Options{Workers: 1})
	defer ref.Close()
	g := shard.MustNew(shard.Options{Shards: 1, Workers: 1})
	defer g.Close()
	for _, x := range xs {
		if err := ref.Subscribe(x); err != nil {
			t.Fatal(err)
		}
		if err := g.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}
	for i, ev := range events {
		if !equalIDs(sorted(g.Match(ev)), sorted(ref.Match(ev))) {
			t.Fatalf("single-shard group diverged on event %d", i)
		}
	}
}

// TestGroupConcurrentChurn races matching against subscribe/unsubscribe
// churn, checkpoints and stats reads, then checks the settled group
// still agrees with a single engine rebuilt from its own snapshot. Run
// under -race in CI, this is the memory-model gate for the mu contract
// (shared for writers and matchers, exclusive for snapshots and Close).
func TestGroupConcurrentChurn(t *testing.T) {
	w := testWorkload(41)
	xs := w.Expressions(1500)
	events := w.Events(200)
	g := shard.MustNew(shard.Options{Shards: 4, Workers: 2})
	defer g.Close()
	for _, x := range xs[:1000] {
		if err := g.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var matcher sync.WaitGroup
	matcher.Add(1)
	go func() {
		defer matcher.Done()
		var dst []expr.ID
		var r apcm.BatchResult
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			dst = g.MatchAppend(dst[:0], events[i%len(events)])
			if i%16 == 0 {
				g.MatchBatchInto(events[:32], &r)
			}
		}
	}()

	var writers sync.WaitGroup
	writers.Add(1)
	go func() { // churner: drop the first 500, add the last 500
		defer writers.Done()
		for i := 0; i < 500; i++ {
			g.Unsubscribe(xs[i].ID)
			if err := g.Subscribe(xs[1000+i]); err != nil {
				t.Errorf("subscribe during churn: %v", err)
				return
			}
		}
	}()
	ckptPath := t.TempDir() + "/churn.ckpt"
	writers.Add(1)
	go func() { // snapshotter
		defer writers.Done()
		for i := 0; i < 5; i++ {
			if err := g.CheckpointSubscriptions(ckptPath); err != nil {
				t.Errorf("checkpoint during churn: %v", err)
				return
			}
		}
	}()
	writers.Add(1)
	go func() { // observer
		defer writers.Done()
		for i := 0; i < 50; i++ {
			g.Stats()
			g.Len()
		}
	}()

	writers.Wait()
	close(stop)
	matcher.Wait()

	if g.Len() != 1000 {
		t.Fatalf("settled Len = %d, want 1000", g.Len())
	}

	// Rebuild a single engine from the group's own snapshot and compare
	// the settled match sets.
	var buf bytes.Buffer
	if err := g.SaveSubscriptions(&buf); err != nil {
		t.Fatal(err)
	}
	ref := apcm.MustNew(apcm.Options{Workers: 1})
	defer ref.Close()
	if n, err := ref.LoadSubscriptions(bytes.NewReader(buf.Bytes())); err != nil || n != 1000 {
		t.Fatalf("LoadSubscriptions = (%d, %v), want (1000, nil)", n, err)
	}
	for i, ev := range events[:50] {
		if !equalIDs(sorted(g.Match(ev)), sorted(ref.Match(ev))) {
			t.Fatalf("settled group diverged from snapshot-rebuilt engine on event %d", i)
		}
	}
}
