package shard_test

import (
	"runtime"
	"testing"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/shard"
)

// TestFanOutSequentialOnSingleProc: with GOMAXPROCS=1 the fan-out
// degrades to an inline loop over the shards (see Group.runFan) — the
// worker pool would only add handoff latency. The degraded path must be
// observationally identical to pooled fan-out: same matches, same
// batch segments, probes still feeding the cost EWMAs.
func TestFanOutSequentialOnSingleProc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	w := testWorkload(41)
	xs := w.Expressions(600)
	events := w.Events(2 * 64) // enough fan-outs to cross a probe

	g := shard.MustNew(shard.Options{Shards: 4, Workers: 2})
	defer g.Close()
	subscribeAll(t, g, xs)

	ref := apcm.MustNew(apcm.Options{Workers: 1})
	defer ref.Close()
	for _, x := range xs {
		if err := ref.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}

	for i, ev := range events {
		want := sorted(ref.Match(ev))
		got := sorted(g.Match(ev))
		if len(got) != len(want) {
			t.Fatalf("event %d: %d matches, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("event %d: match %d = %d, want %d", i, j, got[j], want[j])
			}
		}
	}

	var r apcm.BatchResult
	g.MatchBatchInto(events[:32], &r)
	for i := 0; i < 32; i++ {
		want := sorted(ref.Match(events[i]))
		got := sorted(append([]expr.ID(nil), r.For(i)...))
		if len(got) != len(want) {
			t.Fatalf("batch event %d: %d matches, want %d", i, len(got), len(want))
		}
	}

	// Probe fan-outs run inline too: the cost EWMAs must be fed.
	probed := false
	for _, ss := range g.Stats().PerShard {
		if ss.CostNs > 0 {
			probed = true
		}
	}
	if !probed {
		t.Fatal("no shard cost EWMA fed after 128 inline fan-outs")
	}
}
