package shard

import (
	"runtime"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

// The fan-out hot path. Every event visits every shard (a match can
// live anywhere), so one Match on the group is N engine matches plus a
// merge. The per-call state — per-shard destination slices, the weight
// snapshot RunWeighted slices lanes by, probe timings — lives in pooled
// job values whose run callback is a method value bound once at
// construction, so a steady-state fan-out allocates nothing: no
// closures, no fresh slices, no timestamps off the probe path.

// fanJob is the pooled per-call state of the single-event fan-out.
type fanJob struct {
	g       *Group
	ev      *expr.Event
	parts   [][]expr.ID // per-shard results, capacity retained across calls
	weights []int64     // cost-EWMA snapshot handed to RunWeighted
	durs    []int64     // per-shard timings, probe fan-outs only
	probe   bool
	run     func(worker, s int) // bound to matchShard once; reused
}

func newFanJob(g *Group) *fanJob {
	n := len(g.shards)
	j := &fanJob{
		g:       g,
		parts:   make([][]expr.ID, n),
		weights: make([]int64, n),
		durs:    make([]int64, n),
	}
	j.run = j.matchShard
	return j
}

// matchShard matches the job's event on shard s into the shard's part
// slice. On probe fan-outs the call is timed to feed the cost EWMA.
//
//apcm:hotpath
func (j *fanJob) matchShard(_, s int) {
	if j.probe {
		start := time.Now()
		j.parts[s] = j.g.shards[s].MatchAppend(j.parts[s][:0], j.ev)
		j.durs[s] = int64(time.Since(start))
		return
	}
	j.parts[s] = j.g.shards[s].MatchAppend(j.parts[s][:0], j.ev)
}

// mergeInto appends every shard's result segment to dst in shard order.
// dst carries caller capacity; the per-shard parts keep theirs for the
// next fan-out.
//
//apcm:hotpath
func (j *fanJob) mergeInto(dst []expr.ID) []expr.ID {
	for s := range j.parts {
		dst = append(dst, j.parts[s]...)
	}
	return dst
}

// snapshotWeights copies the per-shard cost EWMAs into w for
// RunWeighted. Unprobed shards weigh 1 (RunWeighted's floor), so a
// fresh group starts evenly sliced.
//
//apcm:hotpath
func (g *Group) snapshotWeights(w []int64) {
	for s := range w {
		w[s] = int64(g.costNs(s))
	}
}

// runFan executes fn for every shard: across the worker pool with
// cost-weighted lane slicing normally, inline on the calling goroutine
// when the host has a single schedulable core. With GOMAXPROCS=1 the
// pool's lanes just time-slice one core, so the fan-out would pay
// goroutine handoff and wakeup latency per event for zero parallelism —
// measurably slower than the plain loop (see EXPERIMENTS.md E19, the
// subs=100k/shards=2 anomaly).
func (g *Group) runFan(weights []int64, fn func(worker, s int)) {
	if runtime.GOMAXPROCS(0) == 1 {
		for s := range weights {
			fn(0, s)
		}
		return
	}
	g.pool.RunWeighted(weights, fn)
}

// Match returns the ids of all subscriptions matching ev across every
// shard (order unspecified). On a closed group it returns nil.
func (g *Group) Match(ev *expr.Event) []expr.ID {
	return g.MatchAppend(nil, ev)
}

// MatchAppend appends the ids of all subscriptions matching ev — on any
// shard — to dst and returns it. The event is fanned out to every shard
// over the group's worker pool, shards sliced across lanes by their
// cost EWMAs, and the per-shard results merged in shard order. A
// steady-state call with presized dst performs no heap allocation.
func (g *Group) MatchAppend(dst []expr.ID, ev *expr.Event) []expr.ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return dst
	}
	if len(g.shards) == 1 {
		return g.shards[0].MatchAppend(dst, ev)
	}
	j := g.fanJobs.Get().(*fanJob)
	j.ev = ev
	j.probe = g.fanSeq.Add(1)&(probeEvery-1) == 0
	g.snapshotWeights(j.weights)
	if m := g.met; m != nil {
		start := time.Now()
		g.runFan(j.weights, j.run)
		fanned := time.Now()
		dst = j.mergeInto(dst)
		m.fanLatency.ObserveDuration(fanned.Sub(start))
		m.mergeLatency.ObserveDuration(time.Since(fanned))
		m.countEvents(1)
	} else {
		g.runFan(j.weights, j.run)
		dst = j.mergeInto(dst)
	}
	if j.probe {
		for s, ns := range j.durs {
			g.observeCost(s, ns)
		}
	}
	j.ev = nil
	g.fanJobs.Put(j)
	return dst
}

// batchJob is the pooled per-call state of the batch fan-out: one
// reused BatchResult per shard, filled by that shard's batch kernel
// over the whole event batch.
type batchJob struct {
	g       *Group
	events  []*expr.Event
	parts   []*apcm.BatchResult
	weights []int64
	durs    []int64
	probe   bool
	run     func(worker, s int)
}

func newBatchJob(g *Group) *batchJob {
	n := len(g.shards)
	j := &batchJob{
		g:       g,
		parts:   make([]*apcm.BatchResult, n),
		weights: make([]int64, n),
		durs:    make([]int64, n),
	}
	for s := range j.parts {
		j.parts[s] = new(apcm.BatchResult)
	}
	j.run = j.matchShard
	return j
}

func (j *batchJob) matchShard(_, s int) {
	if j.probe {
		start := time.Now()
		j.g.shards[s].MatchBatchInto(j.events, j.parts[s])
		j.durs[s] = int64(time.Since(start))
		return
	}
	j.g.shards[s].MatchBatchInto(j.events, j.parts[s])
}

// MatchBatchInto matches a batch of events against every shard into r,
// replacing its previous contents. Each shard runs its own batch kernel
// over the whole batch — locality sorting and cross-event caches apply
// per shard exactly as on a single engine — and the per-shard segments
// are merged per event by apcm.MergeBatchResults. A steady-state call
// with a reused r performs no heap allocation.
func (g *Group) MatchBatchInto(events []*expr.Event, r *apcm.BatchResult) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		// Shard 0 is closed too: r comes back sized to the batch with
		// every segment empty, exactly as a closed engine reports it.
		g.shards[0].MatchBatchInto(events, r)
		return
	}
	if len(g.shards) == 1 {
		g.shards[0].MatchBatchInto(events, r)
		return
	}
	j := g.batchJobs.Get().(*batchJob)
	j.events = events
	j.probe = g.fanSeq.Add(1)&(probeEvery-1) == 0
	// The EWMA tracks per-event cost; every shard sees the same batch,
	// so the same relative weights slice lanes correctly for batches.
	g.snapshotWeights(j.weights)
	if m := g.met; m != nil {
		start := time.Now()
		g.runFan(j.weights, j.run)
		fanned := time.Now()
		apcm.MergeBatchResults(r, j.parts)
		m.fanLatency.ObserveDuration(fanned.Sub(start))
		m.mergeLatency.ObserveDuration(time.Since(fanned))
		m.countEvents(len(events))
	} else {
		g.runFan(j.weights, j.run)
		apcm.MergeBatchResults(r, j.parts)
	}
	if j.probe && len(events) > 0 {
		for s, ns := range j.durs {
			g.observeCost(s, ns/int64(len(events)))
		}
	}
	j.events = nil
	g.batchJobs.Put(j)
}

// MatchBatch matches a batch of events, returning one freshly allocated
// id slice per event; throughput-sensitive callers should reuse a
// BatchResult with MatchBatchInto instead.
func (g *Group) MatchBatch(events []*expr.Event) [][]expr.ID {
	out := make([][]expr.ID, len(events))
	if len(events) == 0 {
		return out
	}
	var r apcm.BatchResult
	g.MatchBatchInto(events, &r)
	for i := range out {
		if seg := r.For(i); len(seg) > 0 {
			out[i] = append([]expr.ID(nil), seg...)
		}
	}
	return out
}
