//go:build race

package shard_test

// raceEnabled reports that this test binary was built with -race; the
// allocation gates skip because the race runtime makes sync.Pool drop
// puts at random, so "0 allocs steady state" is unmeasurable.
const raceEnabled = true
