package shard_test

import (
	"bytes"
	"runtime"
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/shard"
	"github.com/streammatch/apcm/trace"
)

// TestGroupLoadParallelForced: the raw-routing parallel loader (forced
// here by raising GOMAXPROCS past 1) must agree with a per-call
// Subscribe build under both partitioning strategies and across shard
// counts — same Len, same matches, same id-allocator state.
func TestGroupLoadParallelForced(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w := testWorkload(31)
	xs := w.Expressions(1200)
	events := w.Events(60)
	var buf bytes.Buffer
	if err := trace.WriteExpressions(&buf, xs); err != nil {
		t.Fatal(err)
	}
	var maxID expr.ID
	for _, x := range xs {
		if x.ID > maxID {
			maxID = x.ID
		}
	}

	ref := shard.MustNew(shard.Options{Shards: 2, Workers: 2})
	defer ref.Close()
	subscribeAll(t, ref, xs)

	for _, strat := range []shard.Strategy{shard.HashID, shard.AttrRange} {
		for _, shards := range []int{2, 3} {
			g := shard.MustNew(shard.Options{Shards: shards, Strategy: strat, Workers: 2})
			n, err := g.LoadSubscriptions(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%v/%d: %v", strat, shards, err)
			}
			if n != len(xs) || g.Len() != len(xs) {
				t.Fatalf("%v/%d: loaded %d (Len %d), want %d", strat, shards, n, g.Len(), len(xs))
			}
			if id := g.NewID(); id <= maxID {
				t.Fatalf("%v/%d: NewID = %d after loading ids up to %d", strat, shards, id, maxID)
			}
			for i, ev := range events {
				want := sorted(ref.Match(ev))
				got := sorted(g.Match(ev))
				if len(got) != len(want) {
					t.Fatalf("%v/%d: event %d: %d matches, want %d", strat, shards, i, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%v/%d: event %d diverged from reference", strat, shards, i)
					}
				}
			}
			g.Close()
		}
	}
}

// TestGroupLoadParallelTruncated: a truncated tail fails the load but
// keeps every complete record, on both load paths.
func TestGroupLoadParallelTruncated(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w := testWorkload(37)
	xs := w.Expressions(500)
	var buf bytes.Buffer
	if err := trace.WriteExpressions(&buf, xs); err != nil {
		t.Fatal(err)
	}
	g := shard.MustNew(shard.Options{Shards: 3, Workers: 2})
	defer g.Close()
	n, err := g.LoadSubscriptions(bytes.NewReader(buf.Bytes()[:buf.Len()-2]))
	if err == nil {
		t.Fatal("truncated trace loaded without error")
	}
	if n != len(xs)-1 || g.Len() != n {
		t.Fatalf("loaded %d (Len %d) from the truncated trace, want %d", n, g.Len(), len(xs)-1)
	}
}

// TestGroupLoadParallelDuplicate: a duplicate id stops its owning
// shard; the error surfaces and the loaded count matches the group's
// live size.
func TestGroupLoadParallelDuplicate(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	xs := []*expr.Expression{
		expr.MustNew(700, expr.Eq(1, 1)),
		expr.MustNew(800, expr.Eq(2, 2)),
		expr.MustNew(700, expr.Eq(3, 3)), // duplicate id
		expr.MustNew(900, expr.Eq(4, 4)),
	}
	var buf bytes.Buffer
	if err := trace.WriteExpressions(&buf, xs); err != nil {
		t.Fatal(err)
	}
	g := shard.MustNew(shard.Options{Shards: 2, Workers: 2})
	defer g.Close()
	n, err := g.LoadSubscriptions(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("duplicate-id trace loaded without error")
	}
	if g.Len() != n {
		t.Fatalf("loaded %d but group holds %d", n, g.Len())
	}
	if id := g.NewID(); id <= 900 {
		t.Fatalf("NewID = %d after a load that peeked ids up to 900", id)
	}
}
