package shard

import (
	"fmt"
	"sync/atomic"

	"github.com/streammatch/apcm/metrics"
)

// shardCounter is an atomic counter padded to a cache line; one per
// shard, so instrumented fan-outs on different shards never false-share.
type shardCounter struct {
	n atomic.Int64
	_ [56]byte
}

// groupMetrics holds the group's instruments. It is nil when no
// registry is attached (Options.Metrics == nil); the fan-out path
// guards on that single nil check and, uninstrumented, takes no
// timestamps and touches no atomics beyond the periodic cost probe.
type groupMetrics struct {
	fanLatency   *metrics.Histogram // per fan-out: all shards matched
	mergeLatency *metrics.Histogram // per fan-out: per-shard results merged
	events       []shardCounter     // events fanned out, per shard
}

// countEvents records n events fanned out to every shard.
func (m *groupMetrics) countEvents(n int) {
	for s := range m.events {
		m.events[s].n.Add(int64(n))
	}
}

// attachMetrics registers the group's instruments and read-time gauges
// on reg. Called once from New, after the shards and pool exist. Shard
// engines themselves are not instrumented (N shards would register
// colliding names); the group exposes the per-shard view under
// apcm_shard_* with a shard label.
func (g *Group) attachMetrics(reg *metrics.Registry) {
	m := &groupMetrics{
		fanLatency:   reg.Histogram("apcm_shard_fanout_latency_ns", "per-call latency of fanning one event or batch out to every shard"),
		mergeLatency: reg.Histogram("apcm_shard_merge_latency_ns", "per-call latency of merging per-shard results into the caller's buffer"),
		events:       make([]shardCounter, len(g.shards)),
	}
	g.met = m

	reg.GaugeFunc("apcm_shard_count", "engine shards in the group", func() float64 {
		return float64(len(g.shards))
	})
	reg.GaugeFunc("apcm_shard_imbalance", "max/avg per-shard match-cost EWMA (1.0 = balanced partitions, 0 = unprobed)", func() float64 {
		return g.imbalance()
	})
	reg.GaugeFunc("apcm_shard_group_subscriptions", "live subscriptions across all shards", func() float64 {
		return float64(g.Len())
	})
	for s := range g.shards {
		s := s
		reg.GaugeFunc(fmt.Sprintf("apcm_shard_subscriptions{shard=\"%d\"}", s),
			"live subscriptions on this shard", func() float64 {
				return float64(g.shards[s].Len())
			})
		reg.GaugeFunc(fmt.Sprintf("apcm_shard_mem_bytes{shard=\"%d\"}", s),
			"estimated index heap footprint of this shard", func() float64 {
				return float64(g.shards[s].Stats().MemBytes)
			})
		reg.GaugeFunc(fmt.Sprintf("apcm_shard_cost_ns{shard=\"%d\"}", s),
			"per-event match-cost EWMA of this shard from fan-out probes", func() float64 {
				return g.costNs(s)
			})
		reg.CounterFunc(fmt.Sprintf("apcm_shard_events_total{shard=\"%d\"}", s),
			"events fanned out to this shard", func() float64 {
				return float64(m.events[s].n.Load())
			})
	}
}
