// Package shard partitions a subscription space across multiple
// apcm.Engine instances behind one Engine-shaped facade. A Group owns N
// independently-locked engines ("shards"); subscriptions are routed to
// exactly one shard by a partitioning strategy, while every event is
// fanned out to all shards — a matching event may satisfy subscriptions
// anywhere — and the per-shard results are merged into the caller's
// buffer.
//
// The point of the split is horizontal scale. Each shard carries 1/N of
// the subscription index behind its own RWMutex, so subscription churn
// on one shard never blocks matching on the others, and the fan-out
// runs the shards on a persistent worker pool (internal/sched), giving
// match parallelism that grows with shard count on multi-core hosts.
// Shard costs are tracked with per-shard EWMAs fed by periodic probes
// and handed to sched.Pool.RunWeighted, so a skewed partition (one hot
// shard) is balanced across lanes instead of serialising one.
//
// The Group implements the Engine surface the rest of the stack is
// written against — Subscribe, Unsubscribe, Match, MatchAppend,
// MatchBatchInto, LoadSubscriptions, SaveSubscriptions,
// CheckpointSubscriptions — so broker.Server and the benchmark harness
// run unchanged against either. See DESIGN.md §10 for the model and its
// invariants.
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/sched"
	"github.com/streammatch/apcm/metrics"
)

// Strategy selects how subscriptions are partitioned across shards.
type Strategy int

const (
	// HashID routes each subscription by a mixed hash of its expression
	// id: uniform occupancy regardless of workload shape, and O(1)
	// Unsubscribe (the owning shard is recomputable from the id). The
	// default.
	HashID Strategy = iota
	// AttrRange routes each subscription by its lowest constrained
	// attribute, splitting the attribute space [0, AttrSpace) into N
	// contiguous ranges. Subscriptions over adjacent attributes cluster
	// on the same shard — better per-shard compression and cache
	// coherence on attribute-skewed workloads — at the price of
	// occupancy tracking the workload's attribute distribution and
	// Unsubscribe probing shards (the owning shard is not recoverable
	// from the id alone).
	AttrRange
)

// String names the strategy as used in benchmark tables.
func (s Strategy) String() string {
	switch s {
	case HashID:
		return "hash-id"
	case AttrRange:
		return "attr-range"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a Group. The zero value builds a single-shard
// group of default engines — valid, but the point is Shards > 1.
type Options struct {
	// Shards is the number of engine partitions. 0 means GOMAXPROCS
	// (one shard per core, the natural fan-out width).
	Shards int

	// Strategy selects the subscription partitioning; default HashID.
	Strategy Strategy

	// AttrSpace bounds the attribute ids AttrRange splits over; ids at
	// or beyond it land on the last shard. 0 means 1024. Ignored by
	// HashID.
	AttrSpace int

	// Workers sets the fan-out pool size. 0 means GOMAXPROCS; 1 fans
	// out sequentially on the calling goroutine.
	Workers int

	// Engine configures every shard's engine. Engine.Workers defaults
	// to 1 — shard fan-out is the parallelism axis, and per-shard
	// worker pools on top of it would oversubscribe the host; set it
	// explicitly to layer intra-shard parallelism anyway.
	// Engine.Metrics is ignored: N shards registering the same engine
	// metric names would collide, so per-shard visibility comes from
	// the group's own apcm_shard_* instruments (see Options.Metrics).
	Engine apcm.Options

	// Metrics, when non-nil, receives the group's instrumentation:
	// per-shard event counters, fan-out and merge latency histograms,
	// per-shard subscription/cost gauges and the imbalance ratio. Nil —
	// the default — keeps the fan-out path free of timestamps and
	// atomics, mirroring the engine's discipline.
	Metrics *metrics.Registry
}

// probeEvery is the fan-out period between per-shard cost probes: one
// event in probeEvery is timed per shard to feed the cost EWMAs that
// weight RunWeighted's lane slicing. Must be a power of two.
const probeEvery = 64

// costAlpha is the EWMA decay for per-shard cost estimates.
const costAlpha = 0.8

// shardCost is a float64-bits cost EWMA padded to a cache line so
// concurrent probe updates on neighbouring shards never false-share.
type shardCost struct {
	bits atomic.Uint64
	_    [56]byte
}

// Group is N engines behind one Engine-shaped facade. Create with New,
// release with Close. The Group is safe for concurrent use with the
// same contract as apcm.Engine: Subscribe/Unsubscribe may race with
// Match freely; the group's engines are exclusively owned (do not
// Subscribe to a shard directly — routing and snapshot consistency
// depend on every write going through the Group).
type Group struct {
	opts      Options
	shards    []*apcm.Engine
	pool      *sched.Pool
	attrSpace int

	// mu orders everything against Close and snapshots: matches and
	// writers take it shared (the per-shard engine locks provide the
	// actual mutual exclusion), while SaveSubscriptions — whose record
	// count, declared up front, cannot drift while shards are streamed
	// out — and Close take it exclusively. Holding it across Close also
	// upholds sched.Pool's contract that Run never races Close.
	mu     sync.RWMutex //apcm:lockrank=1
	closed bool

	// nextID is the group-wide id allocator; per-shard engine
	// allocators are unused so ids are unique across the whole group.
	nextID atomic.Uint64

	// fanSeq counts fan-outs; every probeEvery-th one times each shard
	// to refresh costs.
	costs  []shardCost
	fanSeq atomic.Uint64

	fanJobs   sync.Pool // *fanJob
	batchJobs sync.Pool // *batchJob

	// met is non-nil iff Options.Metrics was set; see observe.go.
	met *groupMetrics
}

// New builds a Group of opts.Shards engines.
func New(opts Options) (*Group, error) {
	if opts.Shards < 0 {
		return nil, fmt.Errorf("shard: negative shard count %d", opts.Shards)
	}
	if opts.Shards == 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.AttrSpace <= 0 {
		opts.AttrSpace = 1024
	}
	if opts.Strategy != HashID && opts.Strategy != AttrRange {
		return nil, fmt.Errorf("shard: unknown strategy %v", opts.Strategy)
	}
	eopts := opts.Engine
	if eopts.Workers == 0 {
		eopts.Workers = 1
	}
	eopts.Metrics = nil
	g := &Group{opts: opts, attrSpace: opts.AttrSpace, costs: make([]shardCost, opts.Shards)}
	g.shards = make([]*apcm.Engine, opts.Shards)
	for s := range g.shards {
		e, err := apcm.New(eopts)
		if err != nil {
			for _, built := range g.shards[:s] {
				built.Close()
			}
			return nil, err
		}
		g.shards[s] = e
	}
	g.pool = sched.NewPool(opts.Workers)
	g.fanJobs.New = func() any { return newFanJob(g) }
	g.batchJobs.New = func() any { return newBatchJob(g) }
	if opts.Metrics != nil {
		g.attachMetrics(opts.Metrics)
	}
	return g, nil
}

// MustNew is New for tests and examples; it panics on invalid Options.
func MustNew(opts Options) *Group {
	g, err := New(opts)
	if err != nil {
		panic(err)
	}
	return g
}

// Shards returns the number of engine partitions.
func (g *Group) Shards() int { return len(g.shards) }

// NewID allocates a fresh subscription id, unique within this Group.
// Always allocate through the Group, never through a shard engine: the
// group-wide allocator is what keeps ids collision-free across shards.
func (g *Group) NewID() expr.ID {
	return expr.ID(g.nextID.Add(1))
}

// mix64 is the splitmix64 finalizer: sequential ids (the common case —
// NewID counts up) spread uniformly across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (g *Group) idShard(id expr.ID) int {
	return int(mix64(uint64(id)) % uint64(len(g.shards)))
}

// attrShard maps an attribute id to the shard owning its range.
func (g *Group) attrShard(a expr.AttrID) int {
	v := int(a)
	if v >= g.attrSpace {
		v = g.attrSpace - 1
	}
	if v < 0 {
		v = 0
	}
	return v * len(g.shards) / g.attrSpace
}

// shardOf routes x to its owning shard under the configured strategy.
func (g *Group) shardOf(x *expr.Expression) int {
	if g.opts.Strategy == AttrRange {
		min := x.Preds[0].Attr
		for i := 1; i < len(x.Preds); i++ {
			if x.Preds[i].Attr < min {
				min = x.Preds[i].Attr
			}
		}
		return g.attrShard(min)
	}
	return g.idShard(x.ID)
}

// Subscribe indexes x on its owning shard. The expression's ID must be
// unique among live subscriptions (use NewID). With Engine.Normalize
// set, x is canonicalised by the shard and ErrUnsatisfiable surfaces
// unchanged.
func (g *Group) Subscribe(x *expr.Expression) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	err := g.shards[g.shardOf(x)].Subscribe(x)
	if err == nil {
		// Keep NewID clear of externally-chosen ids, as the engine's
		// loader does.
		g.advanceID(x.ID)
	}
	return err
}

// SubscribePreds builds an expression from preds under a fresh group
// id and indexes it, returning the id.
func (g *Group) SubscribePreds(preds ...expr.Predicate) (expr.ID, error) {
	x, err := expr.New(g.NewID(), preds...)
	if err != nil {
		return 0, err
	}
	if err := g.Subscribe(x); err != nil {
		return 0, err
	}
	return x.ID, nil
}

// Unsubscribe removes the subscription with the given id, reporting
// whether it was present. Under HashID the owning shard is recomputed
// from the id; under AttrRange the shards are probed in order.
func (g *Group) Unsubscribe(id expr.ID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.opts.Strategy == HashID {
		return g.shards[g.idShard(id)].Unsubscribe(id)
	}
	for _, e := range g.shards {
		if e.Unsubscribe(id) {
			return true
		}
	}
	return false
}

// Len returns the number of live subscriptions across all shards.
func (g *Group) Len() int {
	n := 0
	for _, e := range g.shards {
		n += e.Len()
	}
	return n
}

// Prepare eagerly compiles every shard's compressed clusters, shards in
// parallel across the fan-out pool — the same axis LoadSubscriptions
// parallelises, and together with it the cold-start path.
func (g *Group) Prepare() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return
	}
	g.pool.Run(len(g.shards), func(_, s int) {
		g.shards[s].Prepare()
	})
}

// advanceID lifts the id allocator to at least id, so NewID never
// collides with an externally-chosen or restored subscription id.
func (g *Group) advanceID(id expr.ID) {
	for {
		cur := g.nextID.Load()
		if cur >= uint64(id) || g.nextID.CompareAndSwap(cur, uint64(id)) {
			return
		}
	}
}

// costNs returns shard s's per-event cost EWMA in nanoseconds.
func (g *Group) costNs(s int) float64 {
	return math.Float64frombits(g.costs[s].bits.Load())
}

// observeCost blends a probed duration into shard s's EWMA. Concurrent
// probes may race the read-modify-write; the feedback loop tolerates
// lost updates (same policy as sched.Pool.tune).
func (g *Group) observeCost(s int, ns int64) {
	ew := g.costNs(s)
	if ew == 0 {
		ew = float64(ns)
	} else {
		ew = costAlpha*ew + (1-costAlpha)*float64(ns)
	}
	g.costs[s].bits.Store(math.Float64bits(ew))
}

// imbalance is the max/avg ratio of per-shard cost EWMAs: 1.0 means the
// partitions cost the same to match, higher means one shard dominates
// the fan-out. 0 before any probe.
func (g *Group) imbalance() float64 {
	var mx, sum float64
	n := 0
	for s := range g.costs {
		c := g.costNs(s)
		if c > 0 {
			n++
			sum += c
			if c > mx {
				mx = c
			}
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return mx * float64(n) / sum
}

// ShardStats describes one shard of a group snapshot.
type ShardStats struct {
	Subscriptions int
	MemBytes      int64
	// CostNs is the shard's per-event match cost EWMA from fan-out
	// probes (0 before any probe).
	CostNs float64
	// Events counts events fanned out to this shard (recorded only with
	// metrics attached).
	Events int64
}

// Stats describes the group's state for tables and diagnostics.
type Stats struct {
	Shards        int
	Strategy      Strategy
	Workers       int
	Subscriptions int
	MemBytes      int64
	// Imbalance is the max/avg per-shard cost EWMA (1.0 = balanced
	// partitions, 0 = unprobed).
	Imbalance float64
	PerShard  []ShardStats
}

// Stats returns a snapshot of group statistics.
func (g *Group) Stats() Stats {
	st := Stats{
		Shards:   len(g.shards),
		Strategy: g.opts.Strategy,
		Workers:  g.pool.Workers(),
		PerShard: make([]ShardStats, len(g.shards)),
	}
	for s, e := range g.shards {
		es := e.Stats()
		ss := ShardStats{
			Subscriptions: es.Subscriptions,
			MemBytes:      es.MemBytes,
			CostNs:        g.costNs(s),
		}
		if g.met != nil {
			ss.Events = g.met.events[s].n.Load()
		}
		st.PerShard[s] = ss
		st.Subscriptions += ss.Subscriptions
		st.MemBytes += ss.MemBytes
	}
	st.Imbalance = g.imbalance()
	return st
}

// Close releases every shard engine and the fan-out pool. Further
// Subscribes return apcm.ErrClosed and Matches return nil. Close is
// idempotent.
func (g *Group) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for _, e := range g.shards {
		e.Close()
	}
	g.pool.Close()
}
