package shard_test

import (
	"bytes"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/metrics"
	"github.com/streammatch/apcm/shard"
	"github.com/streammatch/apcm/workload"
)

func testWorkload(seed int64) *workload.Generator {
	p := workload.Default()
	p.Seed = seed
	p.NumAttrs = 25
	p.Cardinality = 50
	p.EventAttrs = 8
	p.PredsMin, p.PredsMax = 1, 4
	p.MatchFraction = 0.3
	p.WNegated = 0.05
	return workload.MustNew(p)
}

func sorted(ids []expr.ID) []expr.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func subscribeAll(tb testing.TB, g *shard.Group, xs []*expr.Expression) {
	tb.Helper()
	for _, x := range xs {
		if err := g.Subscribe(x); err != nil {
			tb.Fatal(err)
		}
	}
}

func TestGroupOptions(t *testing.T) {
	if _, err := shard.New(shard.Options{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := shard.New(shard.Options{Strategy: shard.Strategy(99)}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	g := shard.MustNew(shard.Options{})
	defer g.Close()
	if g.Shards() < 1 {
		t.Fatalf("zero-value Options built %d shards", g.Shards())
	}
	if got := shard.HashID.String(); got != "hash-id" {
		t.Fatalf("HashID.String() = %q", got)
	}
	if got := shard.AttrRange.String(); got != "attr-range" {
		t.Fatalf("AttrRange.String() = %q", got)
	}
}

// TestRoutingSpread checks that both strategies route a realistic
// expression population onto every shard rather than collapsing onto a
// few, and that HashID occupancy is roughly uniform.
func TestRoutingSpread(t *testing.T) {
	for _, strat := range []shard.Strategy{shard.HashID, shard.AttrRange} {
		// AttrSpace must match the workload's attribute universe (25) for
		// AttrRange to spread; HashID ignores it.
		g := shard.MustNew(shard.Options{Shards: 8, Strategy: strat, AttrSpace: 25, Workers: 1})
		w := testWorkload(7)
		xs := w.Expressions(4000)
		subscribeAll(t, g, xs)
		st := g.Stats()
		if st.Subscriptions != len(xs) {
			t.Fatalf("%v: %d subscriptions routed, want %d", strat, st.Subscriptions, len(xs))
		}
		for s, ss := range st.PerShard {
			if ss.Subscriptions == 0 {
				t.Errorf("%v: shard %d received no subscriptions", strat, s)
			}
		}
		if strat == shard.HashID {
			want := len(xs) / g.Shards()
			for s, ss := range st.PerShard {
				if ss.Subscriptions < want/2 || ss.Subscriptions > want*2 {
					t.Errorf("HashID shard %d occupancy %d, want ~%d", s, ss.Subscriptions, want)
				}
			}
		}
		g.Close()
	}
}

func TestGroupSubscribeMatchUnsubscribe(t *testing.T) {
	for _, strat := range []shard.Strategy{shard.HashID, shard.AttrRange} {
		g := shard.MustNew(shard.Options{Shards: 4, Strategy: strat, Workers: 2})
		w := testWorkload(11)
		xs := w.Expressions(1200)
		events := w.Events(150)
		subscribeAll(t, g, xs)
		if g.Len() != len(xs) {
			t.Fatalf("%v: Len() = %d, want %d", strat, g.Len(), len(xs))
		}
		g.Prepare()
		for i, ev := range events {
			var want []expr.ID
			for _, x := range xs {
				if x.MatchesEvent(ev) {
					want = append(want, x.ID)
				}
			}
			got := sorted(g.Match(ev))
			want = sorted(want)
			if len(got) != len(want) {
				t.Fatalf("%v: event %d: %d matches, oracle %d", strat, i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%v: event %d diverged from oracle", strat, i)
				}
			}
		}
		for _, x := range xs[:300] {
			if !g.Unsubscribe(x.ID) {
				t.Fatalf("%v: Unsubscribe(%d) reported absent", strat, x.ID)
			}
		}
		if g.Unsubscribe(xs[0].ID) {
			t.Fatalf("%v: double Unsubscribe reported present", strat)
		}
		if g.Len() != len(xs)-300 {
			t.Fatalf("%v: Len() = %d after removals, want %d", strat, g.Len(), len(xs)-300)
		}
		g.Close()
	}
}

func TestGroupNewIDUnique(t *testing.T) {
	g := shard.MustNew(shard.Options{Shards: 4, Workers: 1})
	defer g.Close()
	seen := map[expr.ID]bool{}
	for i := 0; i < 1000; i++ {
		id := g.NewID()
		if seen[id] {
			t.Fatalf("NewID repeated %d", id)
		}
		seen[id] = true
	}
	// Subscribing an externally-chosen id advances the allocator past it.
	w := testWorkload(3)
	x := w.Expressions(1)[0]
	x.ID = 1 << 30
	if err := g.Subscribe(x); err != nil {
		t.Fatal(err)
	}
	if id := g.NewID(); id <= 1<<30 {
		t.Fatalf("NewID() = %d after subscribing id %d", id, 1<<30)
	}
}

func TestGroupSubscribePreds(t *testing.T) {
	g := shard.MustNew(shard.Options{Shards: 4, Workers: 1})
	defer g.Close()
	id, err := g.SubscribePreds(expr.Eq(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	ev := expr.MustEvent(expr.P(1, 10))
	got := g.Match(ev)
	if len(got) != 1 || got[0] != id {
		t.Fatalf("Match = %v, want [%d]", got, id)
	}
	if !g.Unsubscribe(id) {
		t.Fatal("Unsubscribe reported absent")
	}
}

func TestGroupSnapshotRoundtrip(t *testing.T) {
	for _, strat := range []shard.Strategy{shard.HashID, shard.AttrRange} {
		src := shard.MustNew(shard.Options{Shards: 4, Strategy: strat, Workers: 2})
		w := testWorkload(13)
		xs := w.Expressions(900)
		events := w.Events(60)
		subscribeAll(t, src, xs)

		var buf bytes.Buffer
		if err := src.SaveSubscriptions(&buf); err != nil {
			t.Fatal(err)
		}

		// Restore into a group of a different shape: the trace is flat, so
		// shard count and strategy need not match the saving group.
		dst := shard.MustNew(shard.Options{Shards: 2, Workers: 2})
		n, err := dst.LoadSubscriptions(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if n != len(xs) {
			t.Fatalf("%v: loaded %d subscriptions, want %d", strat, n, len(xs))
		}
		for i, ev := range events {
			want := sorted(src.Match(ev))
			got := sorted(dst.Match(ev))
			if len(got) != len(want) {
				t.Fatalf("%v: event %d: loaded group returned %d matches, source %d", strat, i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%v: event %d: loaded group diverged from source", strat, i)
				}
			}
		}
		src.Close()
		dst.Close()
	}
}

func TestGroupCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "subs.ckpt")

	src := shard.MustNew(shard.Options{Shards: 4, Workers: 2})
	w := testWorkload(17)
	xs := w.Expressions(700)
	events := w.Events(50)
	subscribeAll(t, src, xs)
	if err := src.CheckpointSubscriptions(path); err != nil {
		t.Fatal(err)
	}

	dst := shard.MustNew(shard.Options{Shards: 8, Strategy: shard.AttrRange, Workers: 2})
	defer dst.Close()
	n, err := dst.RestoreSubscriptions(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(xs) {
		t.Fatalf("restored %d subscriptions, want %d", n, len(xs))
	}
	for i, ev := range events {
		want := sorted(src.Match(ev))
		got := sorted(dst.Match(ev))
		if len(got) != len(want) {
			t.Fatalf("event %d: restored group returned %d matches, source %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("event %d: restored group diverged from source", i)
			}
		}
	}
	src.Close()

	// NewID on the restored group must clear every restored id.
	var maxID expr.ID
	for _, x := range xs {
		if x.ID > maxID {
			maxID = x.ID
		}
	}
	if id := dst.NewID(); id <= maxID {
		t.Fatalf("NewID() = %d after restore, want > %d", id, maxID)
	}

	// A missing checkpoint restores nothing and is not an error.
	fresh := shard.MustNew(shard.Options{Shards: 2, Workers: 1})
	defer fresh.Close()
	n, err = fresh.RestoreSubscriptions(filepath.Join(dir, "absent.ckpt"))
	if err != nil || n != 0 {
		t.Fatalf("RestoreSubscriptions(absent) = (%d, %v), want (0, nil)", n, err)
	}
}

func TestGroupLoadRejectsEventTrace(t *testing.T) {
	g := shard.MustNew(shard.Options{Shards: 2, Workers: 1})
	defer g.Close()
	if _, err := g.LoadSubscriptions(strings.NewReader("not a trace")); err == nil {
		t.Fatal("LoadSubscriptions accepted garbage")
	}
}

func TestGroupClosed(t *testing.T) {
	g := shard.MustNew(shard.Options{Shards: 4, Workers: 2})
	w := testWorkload(19)
	xs := w.Expressions(200)
	ev := w.Events(1)[0]
	subscribeAll(t, g, xs)
	g.Close()
	g.Close() // idempotent

	if got := g.Match(ev); got != nil {
		t.Fatalf("Match on closed group = %v, want nil", got)
	}
	if err := g.Subscribe(xs[0]); err == nil {
		t.Fatal("Subscribe on closed group succeeded")
	}
	var r apcm.BatchResult
	g.MatchBatchInto(w.Events(8), &r)
	if r.Len() != 8 {
		t.Fatalf("closed MatchBatchInto sized result to %d, want 8", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if len(r.For(i)) != 0 {
			t.Fatalf("closed MatchBatchInto reported matches for event %d", i)
		}
	}
	if err := g.SaveSubscriptions(&bytes.Buffer{}); err == nil {
		t.Fatal("SaveSubscriptions on closed group succeeded")
	}
	if _, err := g.LoadSubscriptions(&bytes.Buffer{}); err == nil {
		t.Fatal("LoadSubscriptions on closed group succeeded")
	}
	g.Prepare() // must not panic on the closed pool
}

func TestGroupStats(t *testing.T) {
	g := shard.MustNew(shard.Options{Shards: 4, Strategy: shard.AttrRange, Workers: 2})
	defer g.Close()
	w := testWorkload(23)
	subscribeAll(t, g, w.Expressions(800))
	st := g.Stats()
	if st.Shards != 4 || st.Strategy != shard.AttrRange || st.Workers != 2 {
		t.Fatalf("Stats shape = %+v", st)
	}
	if st.Subscriptions != 800 || len(st.PerShard) != 4 {
		t.Fatalf("Stats counts = %+v", st)
	}
	sum := 0
	for _, ss := range st.PerShard {
		sum += ss.Subscriptions
	}
	if sum != st.Subscriptions {
		t.Fatalf("per-shard subscriptions sum %d != total %d", sum, st.Subscriptions)
	}
	if st.MemBytes <= 0 {
		t.Fatalf("MemBytes = %d", st.MemBytes)
	}
}

func TestGroupMetrics(t *testing.T) {
	reg := metrics.New()
	g := shard.MustNew(shard.Options{Shards: 3, Workers: 2, Metrics: reg})
	defer g.Close()
	w := testWorkload(29)
	subscribeAll(t, g, w.Expressions(400))
	events := w.Events(100)
	for _, ev := range events {
		g.Match(ev)
	}
	var r apcm.BatchResult
	g.MatchBatchInto(events, &r)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"apcm_shard_count",
		"apcm_shard_imbalance",
		"apcm_shard_group_subscriptions",
		"apcm_shard_fanout_latency_ns",
		"apcm_shard_merge_latency_ns",
		`apcm_shard_subscriptions{shard="0"}`,
		`apcm_shard_mem_bytes{shard="1"}`,
		`apcm_shard_cost_ns{shard="2"}`,
		`apcm_shard_events_total{shard="0"}`,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	st := g.Stats()
	// 100 singles + one 100-event batch fanned to every shard.
	for s, ss := range st.PerShard {
		if ss.Events != 200 {
			t.Errorf("shard %d Events = %d, want 200", s, ss.Events)
		}
	}
}
