# Offline-reproducible by construction: the only toolchain needed is go
# itself. apcm-lint builds from the vendored golang.org/x/tools (see
# vendor/modules.txt), so `make lint` needs no network and no GOPATH
# binaries; staticcheck/govulncheck run in CI only (they are external
# tools, installed there).

GO ?= go

.PHONY: all build test race fault fault-repl fuzz lint lint-json lint-smoke lint-baseline bench-smoke clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m . ./shard/ ./broker/ ./metrics/ ./internal/sched/ ./internal/osr/ ./internal/core/

# The fault-injection suite (broker restart/partition/slow-link/reset
# scenarios over internal/faultnet, plus the commit-log crash-recovery
# matrix killing the broker at seeded points in the commit path) under
# the race detector. Scenarios are seeded and deterministic; the seed in
# use is always logged, and APCM_FAULT_SEED replays a specific schedule:
#   APCM_FAULT_SEED=42 make fault
fault:
	$(GO) test -race -timeout 10m -count=1 ./broker/ ./internal/faultnet/ ./internal/commitlog/

# The replication crash matrix in isolation: 100 seeded leader/follower
# schedules (leader killed mid-catch-up, follower crashed mid-ingest by
# commit-log failpoints, asymmetric partitions manufacturing a stale
# leader) under the race detector, verified against the prefix oracle
# and epoch-fencing asserts. Same replay convention:
#   APCM_FAULT_SEED=42 make fault-repl
fault-repl:
	$(GO) test -race -timeout 10m -count=1 -run 'TestReplCrashMatrix|TestRepl|TestAsymmetricPartition|TestFollowerRejects|TestLeaderRetention' ./broker/

# Short smoke runs of every fuzz target: decoder hardening for the wire
# formats (expression/event frames, trace files, checkpoint files,
# commit-log batches). CI runs the same; longer local sessions:
#   go test -fuzz FuzzScanner -fuzztime 5m ./internal/commitlog/
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeExpression -fuzztime 10s ./expr/
	$(GO) test -run '^$$' -fuzz FuzzDecodeEvent -fuzztime 10s ./expr/
	$(GO) test -run '^$$' -fuzz FuzzReadTrace -fuzztime 10s ./trace/
	$(GO) test -run '^$$' -fuzz FuzzLoadSubscriptions -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz FuzzScanner -fuzztime 30s ./internal/commitlog/

# The apcm analyzer suite (internal/lint) over the whole module.
# Findings listed in .apcm-lint-baseline are reported but tolerated;
# anything new fails. Raw (baseline-blind) equivalent:
#   go build -o apcm-lint ./cmd/apcm-lint && go vet -vettool=$$PWD/apcm-lint ./...
lint:
	$(GO) run ./cmd/apcm-lint ./...

# Rewrite .apcm-lint-baseline from the current findings. Deliberate,
# local-only: CI never regenerates it, and every entry kept must carry a
# justification in DESIGN.md §7.
lint-baseline:
	$(GO) run ./cmd/apcm-lint -write-baseline ./...

# Machine-readable diagnostics (go vet -json format), for CI artifacts.
lint-json:
	$(GO) run ./cmd/apcm-lint -json ./... > apcm-lint.json || true
	@cat apcm-lint.json

# Prove the gate fires: the smoke package seeds one violation per
# analyzer behind a build tag; this target FAILS if apcm-lint passes it.
lint-smoke:
	@if $(GO) run ./cmd/apcm-lint -tags apcmlint_smoke ./internal/lint/smoke; then \
		echo "lint-smoke: apcm-lint did not flag the seeded violations" >&2; exit 1; \
	else \
		echo "lint-smoke: gate fires as expected"; \
	fi

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

clean:
	rm -f apcm-lint apcm-lint.json bench-smoke.out bench-ab.out bench-shard.out
