// Command apcm-benchjson converts `go test -bench` output on stdin into
// a machine-readable JSON summary, so CI can archive benchmark numbers
// (throughput and allocation rates) as a build artifact and diff them
// across commits.
//
// Usage:
//
//	go test -run '^$' -bench 'E1|E8|E10' -benchmem . | \
//	    go run ./cmd/apcm-benchjson -out BENCH.json
//
// Each selected benchmark line becomes one entry with every reported
// metric: ns/op, the custom events/s metric, and (with -benchmem)
// B/op and allocs/op. Lines that are not benchmark results pass through
// untouched to stderr so the human-readable log survives the pipe.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// entry is one benchmark result line.
type entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	EventsPerS  float64 `json:"events_per_sec,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any custom metrics beyond the known units.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var (
		out   = flag.String("out", "", "output file (default stdout)")
		match = flag.String("match", ".", "regexp selecting benchmark names to include")
	)
	flag.Parse()
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apcm-benchjson: bad -match: %v\n", err)
		os.Exit(2)
	}

	var (
		entries           []entry
		goos, goarch, pkg string
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		if e, ok := parseLine(line); ok && re.MatchString(e.Name) {
			entries = append(entries, e)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "apcm-benchjson: read: %v\n", err)
		os.Exit(1)
	}

	doc := struct {
		GOOS       string  `json:"goos,omitempty"`
		GOARCH     string  `json:"goarch,omitempty"`
		Pkg        string  `json:"pkg,omitempty"`
		Benchmarks []entry `json:"benchmarks"`
	}{goos, goarch, pkg, entries}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "apcm-benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "apcm-benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine decodes one `Benchmark.../sub-1  N  123 ns/op  456 unit ...`
// result line; ok is false for anything else.
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e := entry{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "events/s":
			e.EventsPerS = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Extra == nil {
				e.Extra = make(map[string]float64)
			}
			e.Extra[unit] = v
		}
	}
	return e, true
}
