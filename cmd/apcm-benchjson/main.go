// Command apcm-benchjson converts `go test -bench` output on stdin into
// a machine-readable JSON summary, so CI can archive benchmark numbers
// (throughput and allocation rates) as a build artifact and diff them
// across commits.
//
// Usage:
//
//	go test -run '^$' -bench 'E1|E8|E10' -benchmem . | \
//	    go run ./cmd/apcm-benchjson -out BENCH.json
//
// Each selected benchmark line becomes one entry with every reported
// metric: ns/op, the custom events/s metric, and (with -benchmem)
// B/op and allocs/op. Lines that are not benchmark results pass through
// untouched to stderr so the human-readable log survives the pipe.
//
// With -ab "new=old", benchmark names that differ only in the /new vs
// /old sub-benchmark segment are paired up (averaging repeated -count
// runs per side) and an "ab" section records the speedup of new over
// old, so interleaved A/B runs reduce to one ratio per benchmark:
//
//	go test -run '^$' -bench 'E1AB' -count 6 . | \
//	    go run ./cmd/apcm-benchjson -ab pr3=legacy -out BENCH_pr3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// entry is one benchmark result line.
type entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	EventsPerS  float64 `json:"events_per_sec,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any custom metrics beyond the known units.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var (
		out   = flag.String("out", "", "output file (default stdout)")
		match = flag.String("match", ".", "regexp selecting benchmark names to include")
		ab    = flag.String("ab", "", "variant pair \"new=old\": pair /new vs /old sub-benchmarks and report speedups")
	)
	flag.Parse()
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apcm-benchjson: bad -match: %v\n", err)
		os.Exit(2)
	}

	var (
		entries           []entry
		goos, goarch, pkg string
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		if e, ok := parseLine(line); ok && re.MatchString(e.Name) {
			entries = append(entries, e)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "apcm-benchjson: read: %v\n", err)
		os.Exit(1)
	}

	doc := struct {
		GOOS       string     `json:"goos,omitempty"`
		GOARCH     string     `json:"goarch,omitempty"`
		Pkg        string     `json:"pkg,omitempty"`
		Benchmarks []entry    `json:"benchmarks"`
		AB         []abResult `json:"ab,omitempty"`
	}{goos, goarch, pkg, entries, nil}
	if *ab != "" {
		newV, oldV, ok := strings.Cut(*ab, "=")
		if !ok || newV == "" || oldV == "" {
			fmt.Fprintf(os.Stderr, "apcm-benchjson: bad -ab %q (want new=old)\n", *ab)
			os.Exit(2)
		}
		doc.AB = pairAB(entries, newV, oldV)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "apcm-benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "apcm-benchjson: %v\n", err)
		os.Exit(1)
	}
}

// abResult is one paired A/B comparison: the "new" variant of a
// benchmark against its "old" counterpart, averaged over repeated
// -count runs.
type abResult struct {
	Benchmark string `json:"benchmark"`
	New       string `json:"new"`
	Old       string `json:"old"`
	// Samples is the number of interleaved runs averaged per side
	// (min of the two sides).
	Samples int     `json:"samples"`
	NewNs   float64 `json:"new_ns_per_op,omitempty"`
	OldNs   float64 `json:"old_ns_per_op,omitempty"`
	NewEvS  float64 `json:"new_events_per_sec,omitempty"`
	OldEvS  float64 `json:"old_events_per_sec,omitempty"`
	// Speedup is old/new in ns/op terms (>1 means new is faster).
	Speedup float64 `json:"speedup"`
}

// pairAB matches every benchmark whose name contains the /newV segment
// with the same name containing /oldV instead, averages repeated runs
// on each side, and returns one speedup per pair.
func pairAB(entries []entry, newV, oldV string) []abResult {
	type agg struct {
		ns, evs float64
		n       int
	}
	sum := map[string]*agg{}
	var order []string
	for _, e := range entries {
		a := sum[e.Name]
		if a == nil {
			a = &agg{}
			sum[e.Name] = a
			order = append(order, e.Name)
		}
		a.ns += e.NsPerOp
		a.evs += e.EventsPerS
		a.n++
	}
	seg := func(name, v string) (string, bool) {
		// Variant appears as a full sub-benchmark path segment, possibly
		// followed by the -GOMAXPROCS suffix: ".../pr3-8" or ".../pr3/...".
		for _, pat := range []string{"/" + v + "-", "/" + v + "/"} {
			if i := strings.Index(name, pat); i >= 0 {
				return name[:i] + "\x00" + name[i+len(pat)-1:], true
			}
		}
		if strings.HasSuffix(name, "/"+v) {
			return strings.TrimSuffix(name, v) + "\x00", true
		}
		return "", false
	}
	var out []abResult
	for _, name := range order {
		key, ok := seg(name, newV)
		if !ok {
			continue
		}
		var oldName string
		for _, cand := range order {
			if ck, ok := seg(cand, oldV); ok && ck == key {
				oldName = cand
				break
			}
		}
		if oldName == "" {
			continue
		}
		na, oa := sum[name], sum[oldName]
		r := abResult{
			Benchmark: strings.ReplaceAll(key, "\x00", "*"),
			New:       name, Old: oldName,
			Samples: min(na.n, oa.n),
			NewNs:   na.ns / float64(na.n),
			OldNs:   oa.ns / float64(oa.n),
			NewEvS:  na.evs / float64(na.n),
			OldEvS:  oa.evs / float64(oa.n),
		}
		if r.NewNs > 0 {
			r.Speedup = r.OldNs / r.NewNs
		}
		out = append(out, r)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// parseLine decodes one `Benchmark.../sub-1  N  123 ns/op  456 unit ...`
// result line; ok is false for anything else.
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e := entry{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "events/s":
			e.EventsPerS = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Extra == nil {
				e.Extra = make(map[string]float64)
			}
			e.Extra[unit] = v
		}
	}
	return e, true
}
