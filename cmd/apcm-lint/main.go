// Command apcm-lint runs the repo's go/analysis suite (internal/lint):
// hotpathalloc, scratchrelease, atomicfield, ablationconst, metricname.
//
// It is dual-mode:
//
//   - Invoked by the go command (`go vet -vettool=/path/to/apcm-lint`),
//     it speaks the unitchecker protocol — the go command hands it one
//     package at a time with pre-computed export data, so no network or
//     go/packages dependency is needed.
//
//   - Invoked directly (`apcm-lint ./...` or `go run ./cmd/apcm-lint
//     ./...`), it re-execs itself through `go vet -vettool=<self>` so
//     the user gets whole-module analysis with one command. Flags
//     understood in this mode: -json (machine-readable diagnostics, for
//     the CI artifact) and -tags (build tags, forwarded to go vet —
//     used by the seeded-violation smoke test).
//
// Exit status follows go vet: nonzero iff diagnostics were reported.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/streammatch/apcm/internal/lint"
)

func main() {
	if invokedByGoVet(os.Args[1:]) {
		unitchecker.Main(lint.Analyzers()...)
		return
	}
	os.Exit(standalone(os.Args[1:]))
}

// invokedByGoVet detects the unitchecker protocol: the go command
// probes the tool with -V=full and -flags, then invokes it with a
// single *.cfg argument per package.
func invokedByGoVet(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// standalone re-execs through `go vet -vettool=<self>` and returns the
// exit code. Diagnostics stream through unmodified.
func standalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "apcm-lint: cannot locate own binary: %v\n", err)
		return 2
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	var pkgs []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json":
			vetArgs = append(vetArgs, "-json")
		case a == "-tags" || a == "--tags":
			if i+1 < len(args) {
				i++
				vetArgs = append(vetArgs, "-tags", args[i])
			}
		case strings.HasPrefix(a, "-tags="), strings.HasPrefix(a, "--tags="):
			vetArgs = append(vetArgs, "-tags", a[strings.Index(a, "=")+1:])
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return 0
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "apcm-lint: unknown flag %s\n", a)
			usage()
			return 2
		default:
			pkgs = append(pkgs, a)
		}
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	cmd := exec.Command("go", append(vetArgs, pkgs...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "apcm-lint: %v\n", err)
		return 2
	}
	return 0
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: apcm-lint [-json] [-tags taglist] [packages]

Runs the apcm analyzer suite over the given packages (default ./...).
Also usable as a vettool: go vet -vettool=$(command -v apcm-lint) ./...
`)
}
