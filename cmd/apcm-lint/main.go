// Command apcm-lint runs the repo's go/analysis suite (internal/lint):
// hotpathalloc, scratchrelease, atomicfield, ablationconst, metricname,
// lockorder, goroutinelife, fsyncorder, atomicpublish.
//
// It is dual-mode:
//
//   - Invoked by the go command (`go vet -vettool=/path/to/apcm-lint`),
//     it speaks the unitchecker protocol — the go command hands it one
//     package at a time with pre-computed export data, so no network or
//     go/packages dependency is needed.
//
//   - Invoked directly (`apcm-lint ./...` or `go run ./cmd/apcm-lint
//     ./...`), it re-execs itself through `go vet -vettool=<self> -json`,
//     parses the per-package JSON diagnostics, filters them against the
//     checked-in baseline, and decides the exit code itself: nonzero iff
//     any non-baselined finding remains.
//
// The baseline (default .apcm-lint-baseline in the working directory)
// holds one finding per line as analyzer<TAB>file<TAB>message — line
// numbers are deliberately absent so unrelated edits do not invalidate
// entries. Regenerate it deliberately with -write-baseline (make
// lint-baseline); CI never does. Every baseline entry must carry a
// justification in DESIGN.md §7.
//
// Flags: -json (normalized machine-readable findings on stdout, for the
// CI artifact), -tags (build tags, forwarded to go vet — used by the
// seeded-violation smoke test), -baseline (alternate baseline path),
// -write-baseline (rewrite the baseline from current findings).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/streammatch/apcm/internal/lint"
)

const defaultBaseline = ".apcm-lint-baseline"

func main() {
	if invokedByGoVet(os.Args[1:]) {
		unitchecker.Main(lint.Analyzers()...)
		return
	}
	os.Exit(standalone(os.Args[1:]))
}

// invokedByGoVet detects the unitchecker protocol: the go command
// probes the tool with -V=full and -flags, then invokes it with a
// single *.cfg argument per package.
func invokedByGoVet(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// finding is one diagnostic, normalized: pos is file:line:col with the
// file relative to the working directory when possible.
type finding struct {
	Analyzer  string `json:"analyzer"`
	Pos       string `json:"pos"`
	File      string `json:"file"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined"`
}

// baselineKey is the line-number-insensitive identity used for
// baseline matching.
func (f finding) baselineKey() string {
	return f.Analyzer + "\t" + f.File + "\t" + f.Message
}

func standalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "apcm-lint: cannot locate own binary: %v\n", err)
		return 2
	}
	var (
		jsonOut       bool
		writeBaseline bool
		baselinePath  = defaultBaseline
		tags          string
		pkgs          []string
	)
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json":
			jsonOut = true
		case a == "-write-baseline" || a == "--write-baseline":
			writeBaseline = true
		case a == "-baseline" || a == "--baseline":
			if i+1 < len(args) {
				i++
				baselinePath = args[i]
			}
		case strings.HasPrefix(a, "-baseline="), strings.HasPrefix(a, "--baseline="):
			baselinePath = a[strings.Index(a, "=")+1:]
		case a == "-tags" || a == "--tags":
			if i+1 < len(args) {
				i++
				tags = args[i]
			}
		case strings.HasPrefix(a, "-tags="), strings.HasPrefix(a, "--tags="):
			tags = a[strings.Index(a, "=")+1:]
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return 0
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "apcm-lint: unknown flag %s\n", a)
			usage()
			return 2
		default:
			pkgs = append(pkgs, a)
		}
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	findings, code := runVet(self, tags, pkgs)
	if code != 0 {
		return code
	}

	if writeBaseline {
		if err := saveBaseline(baselinePath, findings); err != nil {
			fmt.Fprintf(os.Stderr, "apcm-lint: writing baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "apcm-lint: wrote %d baseline entries to %s\n", len(findings), baselinePath)
		return 0
	}

	baseline := loadBaseline(baselinePath)
	fresh := 0
	for i := range findings {
		if baseline[findings[i].baselineKey()] {
			findings[i].Baselined = true
		} else {
			fresh++
		}
	}

	if jsonOut {
		out := struct {
			Tool     string    `json:"tool"`
			Version  int       `json:"version"`
			Total    int       `json:"total"`
			Fresh    int       `json:"fresh"`
			Findings []finding `json:"findings"`
		}{"apcm-lint", 1, len(findings), fresh, findings}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "apcm-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if f.Baselined {
				continue
			}
			fmt.Printf("%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
		}
		if fresh > 0 && len(findings) > fresh {
			fmt.Fprintf(os.Stderr, "apcm-lint: %d findings (%d baselined)\n", len(findings), len(findings)-fresh)
		}
	}
	if fresh > 0 {
		return 1
	}
	return 0
}

// runVet executes go vet -vettool=self -json and parses the per-package
// diagnostics from stderr. A non-JSON failure (build error, bad
// pattern) is passed through verbatim with exit 2.
func runVet(self, tags string, pkgs []string) ([]finding, int) {
	vetArgs := []string{"vet", "-vettool=" + self, "-json"}
	if tags != "" {
		vetArgs = append(vetArgs, "-tags", tags)
	}
	cmd := exec.Command("go", append(vetArgs, pkgs...)...)
	var stderr bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	findings, perr := parseVetJSON(stderr.Bytes())
	if perr != nil || runErr != nil {
		// go vet -json exits 0 even with findings, so any failure means
		// the run itself broke: surface its output unfiltered.
		os.Stderr.Write(stderr.Bytes())
		if perr != nil {
			fmt.Fprintf(os.Stderr, "apcm-lint: parsing go vet output: %v\n", perr)
		}
		return nil, 2
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, 0
}

// vetDiag is one diagnostic in go vet's own JSON shape.
type vetDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// parseVetJSON decodes go vet -json stderr: `# pkgpath` comment lines
// interleaved with {"pkgpath": {"analyzer": [diag...]}} objects.
func parseVetJSON(raw []byte) ([]finding, error) {
	var jsonLines []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		jsonLines = append(jsonLines, line)
	}
	cwd, _ := os.Getwd()
	var findings []finding
	dec := json.NewDecoder(strings.NewReader(strings.Join(jsonLines, "\n")))
	for dec.More() {
		var pkgs map[string]map[string][]vetDiag
		if err := dec.Decode(&pkgs); err != nil {
			return nil, err
		}
		for _, analyzers := range pkgs {
			for analyzer, diags := range analyzers {
				for _, d := range diags {
					pos, file := relativizePos(cwd, d.Posn)
					findings = append(findings, finding{
						Analyzer: analyzer,
						Pos:      pos,
						File:     file,
						Message:  d.Message,
					})
				}
			}
		}
	}
	return findings, nil
}

// relativizePos rewrites an absolute file:line:col position relative to
// dir and also returns the bare file path (the baseline key component).
func relativizePos(dir, posn string) (pos, file string) {
	file = posn
	rest := ""
	// Split off :line:col from the right; windows drive letters are not
	// a concern for this repo's CI.
	if i := strings.Index(posn, ":"); i >= 0 {
		file, rest = posn[:i], posn[i:]
	}
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return file + rest, file
}

// loadBaseline reads the baseline file: one analyzer<TAB>file<TAB>message
// key per line, '#' comments and blank lines skipped. A missing file is
// an empty baseline.
func loadBaseline(path string) map[string]bool {
	out := make(map[string]bool)
	data, err := os.ReadFile(path)
	if err != nil {
		return out
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out
}

// saveBaseline writes the current findings as a fresh baseline, sorted
// and deduplicated.
func saveBaseline(path string, findings []finding) error {
	keys := make([]string, 0, len(findings))
	seen := make(map[string]bool)
	for _, f := range findings {
		k := f.baselineKey()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# apcm-lint baseline: analyzer<TAB>file<TAB>message, line numbers omitted.\n")
	b.WriteString("# Regenerate deliberately with `make lint-baseline`; every entry must be\n")
	b.WriteString("# justified in DESIGN.md §7. CI fails on any finding not listed here.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: apcm-lint [-json] [-tags taglist] [-baseline file] [-write-baseline] [packages]

Runs the apcm analyzer suite over the given packages (default ./...).
Findings matching the baseline file (default `+defaultBaseline+`) are
reported but do not affect the exit status; exit is nonzero iff any
non-baselined finding remains. -write-baseline rewrites the baseline
from the current findings. Also usable as a vettool:
go vet -vettool=$(command -v apcm-lint) ./...
`)
}
