// Command apcm-gen generates BEGen-style synthetic workloads and writes
// them as binary traces replayable by the harness and the broker client.
//
// Usage:
//
//	apcm-gen -out /tmp/w1 -n 100000 -events 10000 \
//	    -attrs 400 -card 1000 -preds 5:9 -eq 0.85 -range 0.10 -in 0.05 \
//	    -match 0.01 -pool 40 -seed 7
//
// writes /tmp/w1.subs (expressions) and /tmp/w1.events (events).
//
// Records are generated and written one at a time, so memory stays flat
// regardless of -n: a 5M-subscription trace for the shard sweeps costs
// no more resident memory than a 10k one. The plant source for matched
// events is a bounded reservoir (-plantpool) rather than the full
// expression history, which is what keeps the event stream O(1) too.
// -count re-reads both traces after writing and verifies the record
// counts against what was requested.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/streammatch/apcm/trace"
	"github.com/streammatch/apcm/workload"
)

func main() {
	p := workload.Default()
	var (
		out    = flag.String("out", "workload", "output file prefix")
		n      = flag.Int("n", 100000, "number of expressions")
		events = flag.Int("events", 10000, "number of events")
		preds  = flag.String("preds", "5:9", "predicates per expression, min:max")
		count  = flag.Bool("count", false, "re-read written traces and verify record counts")
	)
	flag.Int64Var(&p.Seed, "seed", p.Seed, "generator seed")
	flag.IntVar(&p.NumAttrs, "attrs", p.NumAttrs, "number of attributes")
	flag.IntVar(&p.Cardinality, "card", p.Cardinality, "domain cardinality per attribute")
	flag.Float64Var(&p.WEquality, "eq", p.WEquality, "equality predicate weight")
	flag.Float64Var(&p.WRange, "range", p.WRange, "range predicate weight")
	flag.Float64Var(&p.WMembership, "in", p.WMembership, "membership predicate weight")
	flag.Float64Var(&p.WNegated, "neg", p.WNegated, "negated predicate weight")
	flag.Float64Var(&p.RangeWidthFrac, "width", p.RangeWidthFrac, "range width as a fraction of the domain")
	flag.IntVar(&p.InSetSize, "setsize", p.InSetSize, "IN/NOT IN set size")
	flag.IntVar(&p.PredPoolSize, "pool", p.PredPoolSize, "predicate pool size per attribute (0 = fresh predicates)")
	flag.Float64Var(&p.ValueZipf, "vzipf", p.ValueZipf, "value Zipf s parameter (0 = uniform, else > 1)")
	flag.Float64Var(&p.AttrZipf, "azipf", p.AttrZipf, "attribute Zipf s parameter (0 = uniform, else > 1)")
	flag.IntVar(&p.EventAttrs, "eventattrs", p.EventAttrs, "attributes per event")
	flag.Float64Var(&p.MatchFraction, "match", p.MatchFraction, "planted match fraction")
	plantPool := flag.Int("plantpool", 65536, "planted-event reservoir size (0 = retain every expression; costs O(n) memory)")
	flag.Parse()

	if _, err := fmt.Sscanf(strings.ReplaceAll(*preds, ":", " "), "%d %d", &p.PredsMin, &p.PredsMax); err != nil {
		fatal("bad -preds %q (want min:max): %v", *preds, err)
	}
	p.PlantPoolSize = *plantPool

	g, err := workload.New(p)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("apcm-gen: generating %d expressions, %d events (seed %d)\n", *n, *events, p.Seed)
	subsPath := *out + ".subs"
	writeTrace(subsPath, trace.KindExpressions, *n, func(tw *trace.Writer) error {
		for i := 0; i < *n; i++ {
			if err := tw.WriteExpression(g.Expression()); err != nil {
				return err
			}
		}
		return nil
	})
	evPath := *out + ".events"
	writeTrace(evPath, trace.KindEvents, *events, func(tw *trace.Writer) error {
		for i := 0; i < *events; i++ {
			if err := tw.WriteEvent(g.Event()); err != nil {
				return err
			}
		}
		return nil
	})
	fmt.Printf("apcm-gen: wrote %s and %s\n", subsPath, evPath)

	if *count {
		verifyCount(subsPath, *n)
		verifyCount(evPath, *events)
	}
}

// writeTrace streams records into path through a buffered writer: the
// generate callback produces and writes one record at a time, so the
// process never holds more than one record (plus the generator's
// bounded plant reservoir) in memory.
func writeTrace(path string, kind trace.Kind, n int, generate func(*trace.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	tw, err := trace.NewWriter(bw, kind, n)
	if err != nil {
		fatal("writing %s: %v", path, err)
	}
	if err := generate(tw); err != nil {
		fatal("writing %s: %v", path, err)
	}
	if err := tw.Close(); err != nil {
		fatal("writing %s: %v", path, err)
	}
	if err := bw.Flush(); err != nil {
		fatal("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}
}

// verifyCount re-reads a written trace record by record and checks the
// count matches what was asked for: a cheap end-to-end sanity pass over
// the file actually on disk.
func verifyCount(path string, want int) {
	f, err := os.Open(path)
	if err != nil {
		fatal("count %s: %v", path, err)
	}
	defer f.Close()
	tr, err := trace.NewReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		fatal("count %s: %v", path, err)
	}
	got := 0
	for {
		var err error
		if tr.Kind() == trace.KindExpressions {
			_, err = tr.ReadExpression()
		} else {
			_, err = tr.ReadEvent()
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal("count %s: record %d: %v", path, got, err)
		}
		got++
	}
	if got != want {
		fatal("count %s: %d records on disk, want %d", path, got, want)
	}
	fmt.Printf("apcm-gen: %s verified, %d records\n", path, got)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "apcm-gen: "+format+"\n", args...)
	os.Exit(1)
}
