// Command apcm-gen generates BEGen-style synthetic workloads and writes
// them as binary traces replayable by the harness and the broker client.
//
// Usage:
//
//	apcm-gen -out /tmp/w1 -n 100000 -events 10000 \
//	    -attrs 400 -card 1000 -preds 5:9 -eq 0.85 -range 0.10 -in 0.05 \
//	    -match 0.01 -pool 40 -seed 7
//
// writes /tmp/w1.subs (expressions) and /tmp/w1.events (events).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/streammatch/apcm/trace"
	"github.com/streammatch/apcm/workload"
)

func main() {
	p := workload.Default()
	var (
		out    = flag.String("out", "workload", "output file prefix")
		n      = flag.Int("n", 100000, "number of expressions")
		events = flag.Int("events", 10000, "number of events")
		preds  = flag.String("preds", "5:9", "predicates per expression, min:max")
	)
	flag.Int64Var(&p.Seed, "seed", p.Seed, "generator seed")
	flag.IntVar(&p.NumAttrs, "attrs", p.NumAttrs, "number of attributes")
	flag.IntVar(&p.Cardinality, "card", p.Cardinality, "domain cardinality per attribute")
	flag.Float64Var(&p.WEquality, "eq", p.WEquality, "equality predicate weight")
	flag.Float64Var(&p.WRange, "range", p.WRange, "range predicate weight")
	flag.Float64Var(&p.WMembership, "in", p.WMembership, "membership predicate weight")
	flag.Float64Var(&p.WNegated, "neg", p.WNegated, "negated predicate weight")
	flag.Float64Var(&p.RangeWidthFrac, "width", p.RangeWidthFrac, "range width as a fraction of the domain")
	flag.IntVar(&p.InSetSize, "setsize", p.InSetSize, "IN/NOT IN set size")
	flag.IntVar(&p.PredPoolSize, "pool", p.PredPoolSize, "predicate pool size per attribute (0 = fresh predicates)")
	flag.Float64Var(&p.ValueZipf, "vzipf", p.ValueZipf, "value Zipf s parameter (0 = uniform, else > 1)")
	flag.Float64Var(&p.AttrZipf, "azipf", p.AttrZipf, "attribute Zipf s parameter (0 = uniform, else > 1)")
	flag.IntVar(&p.EventAttrs, "eventattrs", p.EventAttrs, "attributes per event")
	flag.Float64Var(&p.MatchFraction, "match", p.MatchFraction, "planted match fraction")
	flag.Parse()

	if _, err := fmt.Sscanf(strings.ReplaceAll(*preds, ":", " "), "%d %d", &p.PredsMin, &p.PredsMax); err != nil {
		fatal("bad -preds %q (want min:max): %v", *preds, err)
	}

	g, err := workload.New(p)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("apcm-gen: generating %d expressions, %d events (seed %d)\n", *n, *events, p.Seed)
	xs := g.Expressions(*n)
	evs := g.Events(*events)

	subsPath := *out + ".subs"
	f, err := os.Create(subsPath)
	if err != nil {
		fatal("%v", err)
	}
	if err := trace.WriteExpressions(f, xs); err != nil {
		fatal("writing %s: %v", subsPath, err)
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}

	evPath := *out + ".events"
	f, err = os.Create(evPath)
	if err != nil {
		fatal("%v", err)
	}
	if err := trace.WriteEvents(f, evs); err != nil {
		fatal("writing %s: %v", evPath, err)
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("apcm-gen: wrote %s and %s\n", subsPath, evPath)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "apcm-gen: "+format+"\n", args...)
	os.Exit(1)
}
