// Command apcm-client talks to an apcm-broker: subscribe with a textual
// Boolean expression and stream matching events, publish single events,
// or replay an event trace as a load driver.
//
// Attribute names map to ids by declaration order, so every client that
// should interoperate must pass the same -attrs list:
//
//	apcm-client -addr :7070 -attrs price,brand,rating sub 'price <= 500 and brand in {3, 7}'
//	apcm-client -addr :7070 -attrs price,brand,rating pub 'price=300, brand=7, rating=5'
//	apcm-client -addr :7070 load workload.events
//
// Against a broker running with -log-dir, -consumer makes a
// subscription durable: matches arrive from the commit log with their
// offsets, are acknowledged as they print, and a restarted client with
// the same consumer name resumes where the last one left off:
//
//	apcm-client -addr :7070 -attrs price,brand -consumer audit sub 'brand in {7}'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/streammatch/apcm/broker"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7070", "broker address")
		attrs    = flag.String("attrs", "", "comma-separated attribute names, declared in id order")
		consumer = flag.String("consumer", "", "durable consumer name: resume from the last acknowledged offset (sub only; broker needs -log-dir)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	schema := expr.NewSchema()
	if *attrs != "" {
		for _, name := range strings.Split(*attrs, ",") {
			schema.Attr(strings.TrimSpace(name))
		}
	}

	var opts broker.ClientOptions
	if *consumer != "" {
		opts.OnDurable = func(off uint64, ev *expr.Event) {
			fmt.Printf("match: @%d %s\n", off, ev.Format(schema))
		}
	}
	c, err := broker.DialOpts(*addr, opts)
	if err != nil {
		fatal("%v", err)
	}
	defer c.Close()

	switch args[0] {
	case "sub":
		if len(args) != 2 {
			usage()
		}
		x, err := expr.Parse(schema, 1, args[1])
		if err != nil {
			fatal("%v", err)
		}
		handler := func(ev *expr.Event) {
			fmt.Printf("match: %s\n", ev.Format(schema))
		}
		if *consumer != "" {
			// Durable matches print through OnDurable with their offset.
			handler = func(*expr.Event) {}
		}
		if err := c.Subscribe(x, handler); err != nil {
			fatal("subscribe: %v", err)
		}
		if *consumer != "" {
			start, err := c.Resume(*consumer, 0)
			if err != nil {
				fatal("resume: %v", err)
			}
			fmt.Printf("apcm-client: resumed consumer %q at offset %d\n", *consumer, start)
		}
		fmt.Printf("apcm-client: subscribed to %q; waiting for events (Ctrl-C to exit)\n", x.Format(schema))
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	case "pub":
		if len(args) != 2 {
			usage()
		}
		ev, err := expr.ParseEvent(schema, args[1])
		if err != nil {
			fatal("%v", err)
		}
		if err := c.Publish(ev); err != nil {
			fatal("publish: %v", err)
		}
		fmt.Println("apcm-client: published")
	case "load":
		if len(args) != 2 {
			usage()
		}
		f, err := os.Open(args[1])
		if err != nil {
			fatal("%v", err)
		}
		events, err := trace.ReadEvents(f)
		f.Close()
		if err != nil {
			fatal("reading %s: %v", args[1], err)
		}
		start := time.Now()
		for _, ev := range events {
			if err := c.Publish(ev); err != nil {
				fatal("publish: %v", err)
			}
		}
		el := time.Since(start)
		fmt.Printf("apcm-client: published %d events in %s (%.0f events/s submitted)\n",
			len(events), el.Round(time.Millisecond), float64(len(events))/el.Seconds())
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  apcm-client [-addr host:port] [-attrs a,b,c] [-consumer name] sub  '<expression>'
  apcm-client [-addr host:port] [-attrs a,b,c] pub  '<event>'
  apcm-client [-addr host:port]                load <trace.events>`)
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "apcm-client: "+format+"\n", args...)
	os.Exit(1)
}
