// Command apcm-verify cross-validates every matching algorithm on a
// workload: all five engines index the same subscriptions, every event
// is matched by each, and any divergence from the reference semantics is
// reported with a reproducer. Use it after modifying matcher internals,
// or to validate a workload trace before a long benchmark run.
//
//	apcm-verify -n 20000 -events 5000 -seed 3
//	apcm-verify -subs w1.subs -eventsfile w1.events
//
// -metrics-addr serves /metrics, /metrics.json and /debug/pprof while
// the verification runs — handy for profiling a large -oracle pass.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/metrics"
	"github.com/streammatch/apcm/trace"
	"github.com/streammatch/apcm/workload"
)

func main() {
	var (
		n          = flag.Int("n", 10000, "number of generated subscriptions")
		nev        = flag.Int("events", 2000, "number of generated events")
		seed       = flag.Int64("seed", 1, "workload seed")
		subsPath   = flag.String("subs", "", "subscription trace (overrides generation)")
		eventsPath = flag.String("eventsfile", "", "event trace (overrides generation)")
		negated    = flag.Float64("neg", 0.05, "negated predicate weight for generated workloads")
		oracle     = flag.Bool("oracle", false, "additionally verify against the O(n·m) reference semantics (slow)")
		metAddr    = flag.String("metrics-addr", "", "optional observability address (serves /metrics, /metrics.json and /debug/pprof)")
	)
	flag.Parse()

	var reg *metrics.Registry
	if *metAddr != "" {
		reg = metrics.New()
		ms := &http.Server{Addr: *metAddr, Handler: metrics.NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
		//apcm:detached process-lifetime server; ListenAndServe returns on the deferred ms.Close()
		go func() {
			fmt.Printf("apcm-verify: metrics on http://%s/metrics\n", *metAddr)
			if err := ms.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fatal("metrics http: %v", err)
			}
		}()
		defer ms.Close()
	}

	xs, events, err := loadWorkload(*subsPath, *eventsPath, *n, *nev, *seed, *negated)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("apcm-verify: %d subscriptions, %d events\n", len(xs), len(events))

	engines := make(map[apcm.Algorithm]*apcm.Engine)
	for _, alg := range apcm.Algorithms() {
		e, err := apcm.New(apcm.Options{Algorithm: alg, Metrics: reg})
		if err != nil {
			fatal("%v", err)
		}
		defer e.Close()
		start := time.Now()
		for _, x := range xs {
			if err := e.Subscribe(x); err != nil {
				fatal("%v: subscribe: %v", alg, err)
			}
		}
		e.Prepare()
		fmt.Printf("  built %-8s in %v\n", alg, time.Since(start).Round(time.Millisecond))
		engines[alg] = e
	}

	// Scan is the in-suite reference: simple enough to trust, and -oracle
	// re-derives it from first principles for belt and braces.
	reference := apcm.Scan
	mismatches := 0
	start := time.Now()
	for i, ev := range events {
		want := canon(engines[reference].Match(ev))
		if *oracle {
			direct := oracleMatch(xs, ev)
			if !equal(want, direct) {
				mismatches++
				fmt.Printf("MISMATCH event %d: %s itself diverges from reference semantics\n  event: %s\n", i, reference, ev)
				continue
			}
		}
		for _, alg := range apcm.Algorithms() {
			if alg == reference {
				continue
			}
			got := canon(engines[alg].Match(ev))
			if !equal(got, want) {
				mismatches++
				fmt.Printf("MISMATCH event %d: %s disagrees with %s\n  event: %s\n  %s: %v\n  %s: %v\n",
					i, alg, reference, ev, alg, got, reference, want)
				if mismatches >= 10 {
					fatal("too many mismatches; aborting")
				}
			}
		}
	}
	elapsed := time.Since(start)
	if mismatches > 0 {
		fatal("%d mismatches found", mismatches)
	}
	fmt.Printf("apcm-verify: OK — %d algorithms agree on all %d events (%v)\n",
		len(engines), len(events), elapsed.Round(time.Millisecond))
}

func loadWorkload(subsPath, eventsPath string, n, nev int, seed int64, negated float64) ([]*expr.Expression, []*expr.Event, error) {
	if (subsPath == "") != (eventsPath == "") {
		return nil, nil, fmt.Errorf("provide both -subs and -eventsfile, or neither")
	}
	if subsPath != "" {
		f, err := os.Open(subsPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		xs, err := trace.ReadExpressions(f)
		if err != nil {
			return nil, nil, fmt.Errorf("reading %s: %w", subsPath, err)
		}
		ef, err := os.Open(eventsPath)
		if err != nil {
			return nil, nil, err
		}
		defer ef.Close()
		events, err := trace.ReadEvents(ef)
		if err != nil {
			return nil, nil, fmt.Errorf("reading %s: %w", eventsPath, err)
		}
		return xs, events, nil
	}
	p := workload.Default()
	p.Seed = seed
	p.WNegated = negated
	p.WEquality -= negated
	g, err := workload.New(p)
	if err != nil {
		return nil, nil, err
	}
	return g.Expressions(n), g.Events(nev), nil
}

func oracleMatch(xs []*expr.Expression, ev *expr.Event) []expr.ID {
	var out []expr.ID
	for _, x := range xs {
		if x.MatchesEvent(ev) {
			out = append(out, x.ID)
		}
	}
	return canon(out)
}

func canon(ids []expr.ID) []expr.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equal(a, b []expr.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "apcm-verify: "+format+"\n", args...)
	os.Exit(1)
}
