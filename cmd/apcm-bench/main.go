// Command apcm-bench regenerates the evaluation's tables and figures
// (experiments E1–E14, see DESIGN.md §4 and EXPERIMENTS.md), the
// beyond-paper ablations (E15–E18) and the sharded-tier scaling sweep
// (E19, tuned with -shards).
//
// Usage:
//
//	apcm-bench -list
//	apcm-bench -exp E1,E7 -scale 1 -workers 0
//	apcm-bench -exp all -scale 5 -measure 2s
//
// Scale multiplies workload sizes: -scale 1 is laptop/CI friendly,
// -scale 50 and a few minutes reach paper-sized subscription counts.
//
// -metrics-addr serves the live observability surface (/metrics,
// /metrics.json, /debug/pprof) while experiments run, and logs a metrics
// summary line every -metrics-log interval — useful for watching a
// multi-hour scale-50 run or grabbing a CPU profile mid-experiment.
//
// Profiling: -cpuprofile covers the whole run; -memprofile writes a heap
// profile at exit (after a final GC, so it shows retained memory, not
// transient garbage); -allocs prints per-experiment totals of heap
// objects and bytes allocated — a quick allocation-regression check that
// needs no pprof round trip.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/streammatch/apcm/internal/bench"
	"github.com/streammatch/apcm/metrics"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exps    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.Float64("scale", 1.0, "workload size multiplier")
		workers = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "workload seed")
		measure = flag.Duration("measure", 500*time.Millisecond, "minimum measurement time per data point")
		csv     = flag.Bool("csv", false, "emit tables as CSV")
		shards  = flag.String("shards", "", "comma-separated shard counts for the E19 sweep (default 1,2,4,8,16)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
		allocs  = flag.Bool("allocs", false, "report heap allocation totals per experiment")
		metAddr = flag.String("metrics-addr", "", "optional observability address (serves /metrics, /metrics.json and /debug/pprof)")
		metLog  = flag.Duration("metrics-log", 0, "log a metrics summary line at this interval (0 disables; needs -metrics-addr)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apcm-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "apcm-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n     expected shape: %s\n", e.ID, e.Title, e.Expect)
		}
		return
	}

	var selected []bench.Experiment
	if strings.EqualFold(*exps, "all") {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Get(strings.ToUpper(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "apcm-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var reg *metrics.Registry
	if *metAddr != "" {
		reg = metrics.New()
		ms := &http.Server{Addr: *metAddr, Handler: metrics.NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
		//apcm:detached process-lifetime server; ListenAndServe returns on the deferred ms.Close()
		go func() {
			fmt.Printf("apcm-bench: metrics on http://%s/metrics\n", *metAddr)
			if err := ms.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "apcm-bench: metrics http: %v\n", err)
				os.Exit(1)
			}
		}()
		defer ms.Close()
		stop := reg.StartLogger(*metLog, func(format string, args ...any) {
			fmt.Printf("apcm-bench: "+format+"\n", args...)
		})
		defer stop()
	}

	var shardCounts []int
	if *shards != "" {
		for _, s := range strings.Split(*shards, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "apcm-bench: bad -shards entry %q\n", s)
				os.Exit(2)
			}
			shardCounts = append(shardCounts, n)
		}
	}

	cfg := bench.Config{
		Out:        os.Stdout,
		Scale:      *scale,
		Workers:    *workers,
		Seed:       *seed,
		MinMeasure: *measure,
		CSV:        *csv,
		Shards:     shardCounts,
		Metrics:    reg,
	}
	fmt.Printf("apcm-bench: %d experiment(s), scale=%.2f workers=%d GOMAXPROCS=%d\n\n",
		len(selected), *scale, *workers, runtime.GOMAXPROCS(0))
	var before runtime.MemStats
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s: %s\n   paper shape: %s\n", e.ID, e.Title, e.Expect)
		if *allocs {
			runtime.ReadMemStats(&before)
		}
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "apcm-bench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("   (%s elapsed)\n", time.Since(start).Round(time.Millisecond))
		if *allocs {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			fmt.Printf("   allocs: %d objects, %s heap-allocated\n",
				after.Mallocs-before.Mallocs, formatBytes(after.TotalAlloc-before.TotalAlloc))
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apcm-bench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle retained heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "apcm-bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("apcm-bench: heap profile written to %s\n", *memProf)
	}
}

func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
