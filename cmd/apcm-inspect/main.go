// Command apcm-inspect loads a workload into the adaptive compressed
// matcher, exercises it, and reports how the index actually looks:
// cluster-size and attribute-diversity histograms, compression ratios,
// kernel routing after adaptation, and the most expensive clusters. Use
// it to understand why a workload is fast or slow before reaching for
// tuning knobs.
//
//	apcm-inspect -n 50000 -events 5000
//	apcm-inspect -subs w1.subs -eventsfile w1.events -cluster 512
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/trace"
	"github.com/streammatch/apcm/workload"
)

func main() {
	var (
		n          = flag.Int("n", 20000, "number of generated subscriptions")
		nev        = flag.Int("events", 2000, "events to drive adaptation")
		seed       = flag.Int64("seed", 1, "workload seed")
		subsPath   = flag.String("subs", "", "subscription trace (overrides generation)")
		eventsPath = flag.String("eventsfile", "", "event trace (overrides generation)")
		cluster    = flag.Int("cluster", 0, "cluster size bound (0 = default)")
		top        = flag.Int("top", 5, "how many of the costliest clusters to list")
	)
	flag.Parse()

	xs, events, err := loadWorkload(*subsPath, *eventsPath, *n, *nev, *seed)
	if err != nil {
		fatal("%v", err)
	}

	eng, err := apcm.New(apcm.Options{ClusterSize: *cluster})
	if err != nil {
		fatal("%v", err)
	}
	defer eng.Close()
	for _, x := range xs {
		if err := eng.Subscribe(x); err != nil {
			fatal("%v", err)
		}
	}
	eng.Prepare()
	// Drive the stream so the adaptive policy settles.
	const batch = 256
	for off := 0; off < len(events); off += batch {
		end := off + batch
		if end > len(events) {
			end = len(events)
		}
		eng.MatchBatch(events[off:end])
	}

	st := eng.Stats()
	fmt.Printf("apcm-inspect: %d subscriptions, %d events driven, %s engine, %d workers\n",
		st.Subscriptions, len(events), st.Algorithm, st.Workers)
	fmt.Printf("memory: %.2f MiB total, compression %.2f preds/entry\n\n",
		float64(st.MemBytes)/(1<<20), st.CompressionRatio)

	clusters := eng.Clusters()
	if len(clusters) == 0 {
		fmt.Println("no compiled clusters (everything below the compression threshold)")
		return
	}

	// Size histogram (powers of two).
	sizeBuckets := map[int]int{}
	compressed, probed := 0, 0
	var totalSlots, totalDistinct int
	for _, c := range clusters {
		b := 1
		for b < c.Live {
			b <<= 1
		}
		sizeBuckets[b]++
		if c.Compressed {
			compressed++
		}
		if c.EwmaCompressedNs > 0 {
			probed++
		}
		totalSlots += c.PredSlots
		totalDistinct += c.DistinctPreds
	}
	fmt.Printf("clusters: %d compiled, %d routed to the compressed kernel, %d probed\n",
		len(clusters), compressed, probed)
	if totalDistinct > 0 {
		fmt.Printf("aggregate compression: %d predicate slots -> %d distinct entries (%.2fx)\n",
			totalSlots, totalDistinct, float64(totalSlots)/float64(totalDistinct))
	}

	fmt.Println("\ncluster size histogram (live members):")
	var sizes []int
	for b := range sizeBuckets {
		sizes = append(sizes, b)
	}
	sort.Ints(sizes)
	for _, b := range sizes {
		fmt.Printf("  <=%-6d %4d  %s\n", b, sizeBuckets[b], bar(sizeBuckets[b], len(clusters)))
	}

	// Density-adaptive layout: how compilation actually chose to lay the
	// postings out, so layout decisions are auditable in the field.
	var hist [12]int
	var dense, sparse, sparseSlots, eqTables, eqSlots, totalPostings int
	for _, c := range clusters {
		dense += c.DensePostings
		sparse += c.SparsePostings
		sparseSlots += c.SparseMemberSlots
		eqTables += c.EqFlatTables
		eqSlots += c.EqFlatSlots
		for i, n := range c.PostingHist {
			hist[i] += n
			totalPostings += n
		}
	}
	fmt.Printf("\nposting layout: %d dense, %d sparse (%d ids held sparse)\n",
		dense, sparse, sparseSlots)
	if eqTables > 0 {
		fmt.Printf("flat equality tables: %d groups, %d value slots (avg %.1f slots/table)\n",
			eqTables, eqSlots, float64(eqSlots)/float64(eqTables))
	} else {
		fmt.Println("flat equality tables: none (spans too wide or disabled)")
	}
	fmt.Println("\nposting density histogram (members per posting):")
	for i, n := range hist {
		if n == 0 {
			continue
		}
		lo, hi := 1<<i>>1, 1<<i-1
		label := fmt.Sprintf("%d-%d", lo, hi)
		if lo >= hi {
			label = fmt.Sprintf("%d", hi)
		}
		if i == len(hist)-1 {
			label = fmt.Sprintf(">=%d", lo)
		}
		fmt.Printf("  %-8s %6d  %s\n", label, n, bar(n, totalPostings))
	}

	// Costliest clusters by probed compressed estimate.
	sort.Slice(clusters, func(i, j int) bool {
		ci, cj := clusters[i], clusters[j]
		return best(ci) > best(cj)
	})
	fmt.Printf("\ntop %d clusters by estimated cost:\n", *top)
	fmt.Printf("  %-8s %-7s %-6s %-10s %-12s %-12s %s\n",
		"members", "attrs", "tombs", "compress", "ns(comp)", "ns(scan)", "kernel")
	for i, c := range clusters {
		if i >= *top {
			break
		}
		kernel := "scan"
		if c.Compressed {
			kernel = "compressed"
		}
		ratio := 0.0
		if c.DistinctPreds > 0 {
			ratio = float64(c.PredSlots) / float64(c.DistinctPreds)
		}
		fmt.Printf("  %-8d %-7d %-6d %-10.2f %-12.0f %-12.0f %s\n",
			c.Live, c.Attrs, c.Tombstones, ratio, c.EwmaCompressedNs, c.EwmaScanNs, kernel)
	}
}

func best(c apcm.ClusterInfo) float64 {
	if c.EwmaCompressedNs > 0 && (c.EwmaCompressedNs < c.EwmaScanNs || c.EwmaScanNs == 0) {
		return c.EwmaCompressedNs
	}
	return c.EwmaScanNs
}

func bar(n, total int) string {
	if total == 0 {
		return ""
	}
	w := n * 40 / total
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func loadWorkload(subsPath, eventsPath string, n, nev int, seed int64) ([]*expr.Expression, []*expr.Event, error) {
	if (subsPath == "") != (eventsPath == "") {
		return nil, nil, fmt.Errorf("provide both -subs and -eventsfile, or neither")
	}
	if subsPath != "" {
		f, err := os.Open(subsPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		xs, err := trace.ReadExpressions(f)
		if err != nil {
			return nil, nil, err
		}
		ef, err := os.Open(eventsPath)
		if err != nil {
			return nil, nil, err
		}
		defer ef.Close()
		events, err := trace.ReadEvents(ef)
		if err != nil {
			return nil, nil, err
		}
		return xs, events, nil
	}
	p := workload.Default()
	p.Seed = seed
	g, err := workload.New(p)
	if err != nil {
		return nil, nil, err
	}
	return g.Expressions(n), g.Events(nev), nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "apcm-inspect: "+format+"\n", args...)
	os.Exit(1)
}
