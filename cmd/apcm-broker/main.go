// Command apcm-broker runs the networked pub/sub broker: a TCP front
// end over the matching engine. Clients subscribe Boolean expressions
// and receive every published event that satisfies them (selective
// information dissemination).
//
// Usage:
//
//	apcm-broker -addr :7070 -algorithm apcm -workers 0
//
// Optionally pre-load a subscription trace produced by apcm-gen and
// expose an HTTP monitoring endpoint:
//
//	apcm-broker -addr :7070 -subs workload.subs -http :7071
//
// The monitoring endpoint serves GET /stats (engine and broker counters
// as JSON) and GET /healthz.
//
// -shards N (N > 1) replaces the single engine with a shard.Group of N
// partitioned engines: subscriptions are hash-routed across shards and
// every published event fans out to all of them in parallel, scaling
// the matching tier across cores at large subscription counts. -workers
// then sizes the fan-out pool rather than the engine's internal one,
// and /stats gains a per-shard breakdown plus the imbalance ratio.
//
// -metrics-addr turns on the full observability layer on a second
// listener: /metrics (Prometheus text), /metrics.json, /healthz and
// /debug/pprof/. It carries per-match latency histograms, stream and
// broker counters and profiling data; keep it off untrusted networks.
//
// -log-dir enables the durable commit log: every matched delivery is
// appended to a segmented, CRC-framed log and group-committed (fsync)
// before it counts as delivered, and clients that resume with a
// consumer name restart from their last acknowledged offset after a
// crash or reconnect. -segment-bytes, -flush-bytes, -flush-interval,
// -retention-bytes, -retention-age and -no-fsync tune it.
//
// -follow ADDR starts the broker as a replicating follower of the
// leader at ADDR: it ingests the leader's commit log and consumer
// offsets verbatim, rejects client operations (sessions fail over to
// the leader), and promotes itself — durably bumping the replication
// epoch, which fences the old leader — when the leader stays silent
// past -repl-timeout. On the leader, -repl-sync gates durable delivery
// on follower acknowledgement. See broker.DialSessionMulti for the
// client side of failover.
//
// On SIGTERM/SIGINT the broker drains gracefully: with -checkpoint it
// first persists the subscription set atomically (restored on the next
// boot), then stops accepting, nacks new work and flushes every client
// outbox before closing, up to -drain-timeout. -heartbeat,
// -heartbeat-missed and -write-timeout tune how aggressively dead and
// wedged connections are reaped.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/broker"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/commitlog"
	"github.com/streammatch/apcm/metrics"
	"github.com/streammatch/apcm/shard"
	"github.com/streammatch/apcm/trace"
)

// matcher is the engine surface main drives directly: the broker's
// Matcher plus lifecycle. Satisfied by both *apcm.Engine and
// *shard.Group, selected by -shards.
type matcher interface {
	broker.Matcher
	Prepare()
	RestoreSubscriptions(path string) (int, error)
	Close()
}

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		algName    = flag.String("algorithm", "apcm", "matching algorithm (apcm, pcm, kindex, betree, counting, scan)")
		workers    = flag.Int("workers", 0, "engine or fan-out workers (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 1, "engine shards: >1 partitions subscriptions across a shard.Group")
		subs       = flag.String("subs", "", "optional subscription trace to pre-load")
		statsIv    = flag.Duration("stats", 10*time.Second, "stats reporting interval (0 disables)")
		httpAddr   = flag.String("http", "", "optional HTTP monitoring address (serves /stats and /healthz)")
		metAddr    = flag.String("metrics-addr", "", "optional observability address (serves /metrics, /metrics.json and /debug/pprof)")
		checkpoint = flag.String("checkpoint", "", "subscription checkpoint file: restored on boot, written atomically on shutdown")
		drainTO    = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget on SIGTERM/SIGINT before hard close")
		hbInterval = flag.Duration("heartbeat", 0, "expected client heartbeat cadence (0 = 5s default, negative disables idle reaping)")
		hbMissed   = flag.Int("heartbeat-missed", 0, "missed heartbeats before a silent connection is reaped (0 = 3)")
		writeTO    = flag.Duration("write-timeout", 0, "per-frame client write deadline (0 = 10s default, negative disables)")
		logDir     = flag.String("log-dir", "", "commit-log directory: enables durable delivery and consumer offsets")
		segBytes   = flag.Int64("segment-bytes", 0, "commit-log segment size before rotation (0 = 4MiB default)")
		flushBytes = flag.Int("flush-bytes", 0, "commit-log group-commit threshold in bytes (0 = 64KiB default)")
		flushIv    = flag.Duration("flush-interval", 0, "commit-log group-commit window (0 = 2ms default)")
		retBytes   = flag.Int64("retention-bytes", 0, "commit-log size retention: sealed segments beyond this are deleted (0 = unlimited)")
		retAge     = flag.Duration("retention-age", 0, "commit-log age retention: sealed segments older than this are deleted (0 = unlimited)")
		noFsync    = flag.Bool("no-fsync", false, "skip commit-log fsyncs (faster, loses durability across power failure)")
		follow     = flag.String("follow", "", "leader address: start as a replicating follower that promotes itself on leader loss (requires -log-dir)")
		nodeID     = flag.String("node-id", "", "node name used in the replication handshake and logs")
		replSync   = flag.Bool("repl-sync", false, "gate durable delivery on follower acknowledgement (delivered ⊆ committed ⊆ replicated)")
		replHB     = flag.Duration("repl-heartbeat", 0, "replication ping and offset-shipping cadence (0 = 250ms default)")
		replTO     = flag.Duration("repl-timeout", 0, "leader silence tolerated before a follower promotes itself (0 = 3s default)")
	)
	flag.Parse()

	alg, err := apcm.ParseAlgorithm(*algName)
	if err != nil {
		fatal("%v", err)
	}
	// The registry exists only when asked for; a nil registry keeps the
	// engine's fast paths on their unmetered branch.
	var reg *metrics.Registry
	if *metAddr != "" {
		reg = metrics.New()
	}
	var eng matcher
	if *shards > 1 {
		// Sharded tier: fan-out parallelism replaces intra-engine worker
		// pools (shard engines run single-worker; see shard.Options).
		g, err := shard.New(shard.Options{
			Shards:  *shards,
			Workers: *workers,
			Engine:  apcm.Options{Algorithm: alg},
			Metrics: reg,
		})
		if err != nil {
			fatal("%v", err)
		}
		eng = g
	} else {
		e, err := apcm.New(apcm.Options{Algorithm: alg, Workers: *workers, Metrics: reg})
		if err != nil {
			fatal("%v", err)
		}
		eng = e
	}
	defer eng.Close()

	if *subs != "" {
		f, err := os.Open(*subs)
		if err != nil {
			fatal("%v", err)
		}
		xs, err := trace.ReadExpressions(f)
		f.Close()
		if err != nil {
			fatal("reading %s: %v", *subs, err)
		}
		for _, x := range xs {
			// Pre-loaded ids live in a high range, clear of the ids the
			// broker allocates for client subscriptions.
			seed := &expr.Expression{ID: x.ID + 1<<40, Preds: x.Preds}
			if err := eng.Subscribe(seed); err != nil {
				fatal("loading subscriptions: %v", err)
			}
		}
		eng.Prepare()
		fmt.Printf("apcm-broker: pre-loaded %d subscriptions from %s\n", len(xs), *subs)
	}

	if *checkpoint != "" {
		n, err := eng.RestoreSubscriptions(*checkpoint)
		if err != nil {
			fatal("restoring %s: %v", *checkpoint, err)
		}
		if n > 0 {
			eng.Prepare()
			fmt.Printf("apcm-broker: restored %d subscriptions from %s\n", n, *checkpoint)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	srv := broker.NewServer(eng)
	srv.Metrics = reg
	srv.HeartbeatInterval = *hbInterval
	srv.MissedHeartbeats = *hbMissed
	srv.WriteTimeout = *writeTO
	if *logDir != "" {
		srv.LogDir = *logDir
		srv.Log = commitlog.Config{
			SegmentBytes:  *segBytes,
			FlushBytes:    *flushBytes,
			FlushInterval: *flushIv,
			RetainBytes:   *retBytes,
			RetainAge:     *retAge,
			NoFsync:       *noFsync,
		}
		fmt.Printf("apcm-broker: durable delivery enabled, commit log in %s\n", *logDir)
	}
	if *follow != "" && *logDir == "" {
		fatal("-follow requires -log-dir")
	}
	srv.NodeID = *nodeID
	srv.Follow = *follow
	srv.ReplSync = *replSync
	srv.ReplHeartbeat = *replHB
	srv.ReplTimeout = *replTO
	if *follow != "" {
		fmt.Printf("apcm-broker: starting as follower of %s\n", *follow)
	}
	start := time.Now()
	if *shards > 1 {
		fmt.Printf("apcm-broker: %s engine × %d shards, listening on %s\n", alg, *shards, ln.Addr())
	} else {
		fmt.Printf("apcm-broker: %s engine, listening on %s\n", alg, ln.Addr())
	}

	if reg != nil {
		ms := &http.Server{Addr: *metAddr, Handler: metrics.NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
		//apcm:detached process-lifetime server; ListenAndServe returns on the deferred ms.Close()
		go func() {
			fmt.Printf("apcm-broker: metrics on http://%s/metrics\n", *metAddr)
			if err := ms.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fatal("metrics http: %v", err)
			}
		}()
		defer ms.Close()
		if *statsIv > 0 {
			stop := reg.StartLogger(*statsIv, func(format string, args ...any) {
				fmt.Printf("apcm-broker: "+format+"\n", args...)
			})
			defer stop()
		}
	}

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
			pub, del := srv.Stats()
			body := engineStats(eng)
			body["published"] = pub
			body["delivered"] = del
			body["uptime_seconds"] = int64(time.Since(start).Seconds())
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(body)
		})
		hs := &http.Server{Addr: *httpAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		//apcm:detached process-lifetime server; ListenAndServe returns on the deferred hs.Close()
		go func() {
			fmt.Printf("apcm-broker: monitoring on http://%s/stats\n", *httpAddr)
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fatal("http: %v", err)
			}
		}()
		defer hs.Close()
	}

	if *statsIv > 0 {
		go func() {
			for range time.Tick(*statsIv) {
				pub, del := srv.Stats()
				fmt.Printf("apcm-broker: subs=%d published=%d delivered=%d mem=%dKiB\n",
					eng.Len(), pub, del, engineMemBytes(eng)/1024)
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\napcm-broker: shutting down")
		// Checkpoint before draining: Shutdown closes every connection,
		// which unregisters its subscriptions — the state to persist is
		// the one that existed while clients were still attached. The
		// same call syncs the commit log and consumer offset journals.
		if err := srv.Checkpoint(*checkpoint); err != nil {
			fmt.Fprintf(os.Stderr, "apcm-broker: checkpoint: %v\n", err)
		} else if *checkpoint != "" {
			fmt.Printf("apcm-broker: checkpointed subscriptions to %s\n", *checkpoint)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "apcm-broker: drain: %v\n", err)
		}
	}()

	if err := srv.Serve(ln); err != nil {
		fatal("%v", err)
	}
}

// engineStats flattens either engine flavour's Stats into the /stats
// JSON body. A sharded broker additionally reports the per-shard
// breakdown and the fan-out imbalance ratio.
func engineStats(eng matcher) map[string]any {
	switch e := eng.(type) {
	case *apcm.Engine:
		st := e.Stats()
		return map[string]any{
			"algorithm":          st.Algorithm.String(),
			"subscriptions":      st.Subscriptions,
			"workers":            st.Workers,
			"mem_bytes":          st.MemBytes,
			"compiled_clusters":  st.CompiledClusters,
			"compression_ratio":  st.CompressionRatio,
			"compressed_serving": st.CompressedServing,
		}
	case *shard.Group:
		st := e.Stats()
		per := make([]map[string]any, len(st.PerShard))
		for s, ss := range st.PerShard {
			per[s] = map[string]any{
				"subscriptions": ss.Subscriptions,
				"mem_bytes":     ss.MemBytes,
				"cost_ns":       ss.CostNs,
				"events":        ss.Events,
			}
		}
		return map[string]any{
			"shards":        st.Shards,
			"strategy":      st.Strategy.String(),
			"workers":       st.Workers,
			"subscriptions": st.Subscriptions,
			"mem_bytes":     st.MemBytes,
			"imbalance":     st.Imbalance,
			"per_shard":     per,
		}
	}
	return map[string]any{"subscriptions": eng.Len()}
}

func engineMemBytes(eng matcher) int64 {
	switch e := eng.(type) {
	case *apcm.Engine:
		return e.Stats().MemBytes
	case *shard.Group:
		return e.Stats().MemBytes
	}
	return 0
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "apcm-broker: "+format+"\n", args...)
	os.Exit(1)
}
