package broker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streammatch/apcm/expr"
)

// Handler receives events matching a subscription. Handlers run on the
// client's read loop: keep them short or hand off to a channel.
type Handler func(ev *expr.Event)

// ClientOptions tunes a single connection's liveness behaviour. The
// zero value uses the defaults documented on each field.
type ClientOptions struct {
	// PingInterval is the keepalive cadence: the client sends an 'H'
	// ping this often so the server's idle reaper sees it alive even
	// when no application traffic flows. Defaults to 2s (well inside
	// the server's default 15s reap deadline); negative disables pings
	// and liveness detection.
	PingInterval time.Duration
	// PongTimeout fails the connection when nothing at all (pong, ack
	// or match) has been read for this long, so a blackholed link is
	// detected instead of blocking forever. Defaults to 3×PingInterval.
	PongTimeout time.Duration
	// WriteTimeout bounds each frame write. Defaults to 10s; negative
	// disables.
	WriteTimeout time.Duration
	// OnDurable, when non-nil, observes every durable delivery after its
	// subscription handlers ran: the commit-log offset and the event. It
	// runs on the read loop, before the automatic acknowledgement.
	OnDurable func(offset uint64, ev *expr.Event)
	// DisableAutoAck turns off the automatic offset acknowledgement sent
	// after each durable delivery's handlers return. The application then
	// owns calling AckOffset — until it does, a broker restart redelivers
	// from the last acknowledged offset.
	DisableAutoAck bool
}

func (o *ClientOptions) fillDefaults() {
	if o.PingInterval == 0 {
		o.PingInterval = 2 * time.Second
	}
	if o.PongTimeout == 0 {
		o.PongTimeout = 3 * o.PingInterval
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
}

// Client is a broker connection. Safe for concurrent use; Subscribe and
// Unsubscribe are serialised (one outstanding acknowledged request at a
// time), Publish is fire-and-forget. A Client does not reconnect: once
// its connection fails it stays failed (Err reports why). For sessions
// that survive broker restarts, use DialSession.
type Client struct {
	nc   net.Conn
	opts ClientOptions

	writeMu sync.Mutex // frame writes
	reqMu   sync.Mutex // one outstanding ack'd request

	// lastRead is the UnixNano timestamp of the most recent frame from
	// the server; the ping loop fails the connection when it goes stale
	// past PongTimeout.
	lastRead atomic.Int64

	// version is the negotiated protocol revision (0 until the server's
	// hello arrives; helloCh closes when it does).
	version   atomic.Uint32
	helloCh   chan struct{}
	helloOnce sync.Once

	mu       sync.Mutex
	handlers map[uint64]Handler
	acks     chan ackResult
	closed   bool
	readErr  error
	done     chan struct{}
}

type ackResult struct {
	id  uint64
	off uint64 // resume-ok start offset; 0 otherwise
	err error
}

// Dial connects to a broker at addr.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, ClientOptions{})
}

// DialOpts connects to a broker at addr with explicit options.
func DialOpts(addr string, opts ClientOptions) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClientOpts(nc, opts), nil
}

// NewClient wraps an established connection with default options.
func NewClient(nc net.Conn) *Client {
	return NewClientOpts(nc, ClientOptions{})
}

// NewClientOpts wraps an established connection. It sends the protocol
// hello immediately; the server's answer is verified asynchronously by
// the read loop, and a version mismatch fails the connection (visible
// to the first request and through Err).
func NewClientOpts(nc net.Conn, opts ClientOptions) *Client {
	opts.fillDefaults()
	c := &Client{
		nc:       nc,
		opts:     opts,
		handlers: make(map[uint64]Handler),
		acks:     make(chan ackResult, 1),
		helloCh:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	c.lastRead.Store(time.Now().UnixNano())
	if err := c.write(helloFrame()); err != nil {
		c.fail(fmt.Errorf("broker: hello: %w", err))
	}
	go c.readLoop()
	if opts.PingInterval > 0 {
		go c.pingLoop()
	}
	return c
}

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("broker: client closed")

// ErrHeartbeatTimeout is the terminal error of a connection that went
// silent: nothing was read from the server within PongTimeout.
var ErrHeartbeatTimeout = errors.New("broker: heartbeat timeout")

func (c *Client) pingLoop() {
	t := time.NewTicker(c.opts.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			idle := time.Since(time.Unix(0, c.lastRead.Load()))
			if idle > c.opts.PongTimeout {
				c.fail(fmt.Errorf("%w: nothing read for %v", ErrHeartbeatTimeout, idle.Round(time.Millisecond)))
				return
			}
			if err := c.write([]byte{msgPing}); err != nil {
				if !errors.Is(err, ErrClientClosed) {
					c.fail(fmt.Errorf("broker: ping: %w", err))
				}
				return
			}
		case <-c.done:
			return
		}
	}
}

func (c *Client) readLoop() {
	var buf []byte
	for {
		frame, err := readFrame(c.nc, buf)
		if err != nil {
			c.fail(err)
			return
		}
		buf = frame
		c.lastRead.Store(time.Now().UnixNano())
		switch frame[0] {
		case msgHello:
			// The server answers with the negotiated version: at most what
			// we offered (ProtocolVersion), at least MinProtocolVersion.
			if len(frame) != 2 || frame[1] < MinProtocolVersion || frame[1] > ProtocolVersion {
				c.fail(fmt.Errorf("broker: server hello %v, want version %d-%d", frame[1:], MinProtocolVersion, ProtocolVersion))
				return
			}
			c.version.Store(uint32(frame[1]))
			c.helloOnce.Do(func() { close(c.helloCh) })
		case msgPong:
			// lastRead already refreshed; nothing else to do.
		case msgAck:
			id, _, err := readUvarint(frame[1:])
			if err != nil {
				c.fail(err)
				return
			}
			c.deliverAck(ackResult{id: id})
		case msgErr:
			id, rest, err := readUvarint(frame[1:])
			if err != nil {
				c.fail(err)
				return
			}
			c.deliverAck(ackResult{id: id, err: fmt.Errorf("broker: %s", rest)})
		case msgMatch:
			if err := c.handleMatch(frame[1:]); err != nil {
				c.fail(err)
				return
			}
		case msgResumeOK:
			id, rest, err := readUvarint(frame[1:])
			if err != nil {
				c.fail(err)
				return
			}
			start, _, err := readUvarint(rest)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliverAck(ackResult{id: id, off: start})
		case msgDurable:
			if err := c.handleDurable(frame[1:]); err != nil {
				c.fail(err)
				return
			}
		default:
			c.fail(fmt.Errorf("broker: unknown server message %q", frame[0]))
			return
		}
	}
}

func (c *Client) deliverAck(r ackResult) {
	select {
	case c.acks <- r:
	default:
		// No request outstanding: a protocol violation by the server;
		// drop the stray ack rather than deadlocking.
	}
}

func (c *Client) handleMatch(body []byte) error {
	n, rest, err := readUvarint(body)
	if err != nil {
		return err
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i], rest, err = readUvarint(rest)
		if err != nil {
			return err
		}
	}
	ev, used, err := expr.DecodeEvent(rest)
	if err != nil {
		return err
	}
	if used != len(rest) {
		return fmt.Errorf("broker: trailing bytes in match frame")
	}
	c.mu.Lock()
	hs := make([]Handler, 0, len(ids))
	for _, id := range ids {
		if h, ok := c.handlers[id]; ok {
			hs = append(hs, h)
		}
	}
	c.mu.Unlock()
	for _, h := range hs {
		h(ev)
	}
	return nil
}

// handleDurable dispatches one durable delivery: subscription handlers,
// then the OnDurable observer, then — unless DisableAutoAck — the
// offset acknowledgement. Acking after the handlers ran means a crash
// mid-handler leaves the offset unacknowledged and the event is
// redelivered on the next resume: at-least-once, never silently lost.
func (c *Client) handleDurable(body []byte) error {
	off, rest, err := readUvarint(body)
	if err != nil {
		return err
	}
	n, rest, err := readUvarint(rest)
	if err != nil {
		return err
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i], rest, err = readUvarint(rest)
		if err != nil {
			return err
		}
	}
	ev, used, err := expr.DecodeEvent(rest)
	if err != nil {
		return err
	}
	if used != len(rest) {
		return fmt.Errorf("broker: trailing bytes in durable frame")
	}
	c.mu.Lock()
	hs := make([]Handler, 0, len(ids))
	for _, id := range ids {
		if h, ok := c.handlers[id]; ok {
			hs = append(hs, h)
		}
	}
	c.mu.Unlock()
	for _, h := range hs {
		h(ev)
	}
	if f := c.opts.OnDurable; f != nil {
		f(off, ev)
	}
	if !c.opts.DisableAutoAck {
		return c.AckOffset(off)
	}
	return nil
}

// waitHello blocks until the version handshake completes (or the
// connection fails), so callers can gate on the negotiated version.
func (c *Client) waitHello() error {
	select {
	case <-c.helloCh:
		return nil
	case <-c.done:
		err := c.Err()
		if err == nil {
			err = ErrClientClosed
		}
		return err
	}
}

// ServerVersion reports the negotiated protocol version (0 before the
// handshake completes).
func (c *Client) ServerVersion() int { return int(c.version.Load()) }

// Resume attaches this connection to the named durable consumer. The
// broker replays every logged delivery for the consumer from
// max(from, last acknowledged offset, retention floor) — returned as
// the effective start offset — and then streams live matches durably:
// each is committed to the broker's log before delivery and carries its
// offset. Requires a version-2 broker with durability enabled.
func (c *Client) Resume(consumer string, from uint64) (uint64, error) {
	if err := c.waitHello(); err != nil {
		return 0, err
	}
	if v := c.ServerVersion(); v < 2 {
		return 0, fmt.Errorf("broker: server speaks protocol %d; durable resume needs 2", v)
	}
	frame := appendUvarint([]byte{msgResume}, 0)
	frame = appendUvarint(frame, from)
	frame = append(frame, consumer...)
	r, err := c.requestAck(frame, 0)
	if err != nil {
		return 0, err
	}
	return r.off, nil
}

// AckOffset acknowledges durable delivery through off (cumulative): the
// broker persists it and a later resume starts after off.
func (c *Client) AckOffset(off uint64) error {
	return c.write(appendUvarint([]byte{msgOffsetAck}, off))
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.readErr = err
		close(c.done)
	}
	c.mu.Unlock()
	c.nc.Close()
}

func (c *Client) write(frame []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.mu.Unlock()
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.opts.WriteTimeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	return writeFrame(c.nc, frame)
}

// request sends a frame and waits for its acknowledgement. An
// acknowledgement for any other id means client and server disagree
// about which request is outstanding — every later ack would be
// attributed to the wrong request — so the connection is failed rather
// than left permanently desynchronized.
func (c *Client) request(frame []byte, wantID uint64) error {
	_, err := c.requestAck(frame, wantID)
	return err
}

func (c *Client) requestAck(frame []byte, wantID uint64) (ackResult, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if err := c.write(frame); err != nil {
		return ackResult{}, err
	}
	select {
	case r := <-c.acks:
		if r.id != wantID {
			err := fmt.Errorf("broker: acknowledgement for %d, expected %d: ack stream desynchronized", r.id, wantID)
			c.fail(err)
			return ackResult{}, err
		}
		return r, r.err
	case <-c.done:
		return ackResult{}, c.readErr
	}
}

// Subscribe registers x with the broker and routes matching events to
// handler. The expression's ID scopes the subscription within this
// client and must be unique among its live subscriptions.
func (c *Client) Subscribe(x *expr.Expression, handler Handler) error {
	if handler == nil {
		return errors.New("broker: nil handler")
	}
	c.mu.Lock()
	if _, dup := c.handlers[uint64(x.ID)]; dup {
		c.mu.Unlock()
		return fmt.Errorf("broker: duplicate subscription id %d", x.ID)
	}
	c.handlers[uint64(x.ID)] = handler
	c.mu.Unlock()

	frame := expr.AppendExpression([]byte{msgSubscribe}, x)
	if err := c.request(frame, uint64(x.ID)); err != nil {
		c.mu.Lock()
		delete(c.handlers, uint64(x.ID))
		c.mu.Unlock()
		return err
	}
	return nil
}

// Unsubscribe removes the subscription with the given id.
func (c *Client) Unsubscribe(id expr.ID) error {
	frame := appendUvarint([]byte{msgUnsubscribe}, uint64(id))
	if err := c.request(frame, uint64(id)); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.handlers, uint64(id))
	c.mu.Unlock()
	return nil
}

// Publish sends an event to the broker (fire-and-forget).
func (c *Client) Publish(ev *expr.Event) error {
	return c.write(expr.AppendEvent([]byte{msgPublish}, ev))
}

// hasHandler reports whether a subscription id is registered on this
// client (used by Session replay to skip already-installed entries).
func (c *Client) hasHandler(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.handlers[id]
	return ok
}

// Err returns the terminal read-loop error, if the connection has
// failed.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// Done returns a channel closed when the connection has failed or been
// closed; Err reports why.
func (c *Client) Done() <-chan struct{} { return c.done }

// Close terminates the connection. Blocked requests are released.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return nil
}
