package broker

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/streammatch/apcm/expr"
)

// Handler receives events matching a subscription. Handlers run on the
// client's read loop: keep them short or hand off to a channel.
type Handler func(ev *expr.Event)

// Client is a broker connection. Safe for concurrent use; Subscribe and
// Unsubscribe are serialised (one outstanding acknowledged request at a
// time), Publish is fire-and-forget.
type Client struct {
	nc net.Conn

	writeMu sync.Mutex // frame writes
	reqMu   sync.Mutex // one outstanding ack'd request

	mu       sync.Mutex
	handlers map[uint64]Handler
	acks     chan ackResult
	closed   bool
	readErr  error
	done     chan struct{}
}

type ackResult struct {
	id  uint64
	err error
}

// Dial connects to a broker at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:       nc,
		handlers: make(map[uint64]Handler),
		acks:     make(chan ackResult, 1),
		done:     make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("broker: client closed")

func (c *Client) readLoop() {
	var buf []byte
	for {
		frame, err := readFrame(c.nc, buf)
		if err != nil {
			c.fail(err)
			return
		}
		buf = frame
		switch frame[0] {
		case msgAck:
			id, _, err := readUvarint(frame[1:])
			if err != nil {
				c.fail(err)
				return
			}
			c.deliverAck(ackResult{id: id})
		case msgErr:
			id, rest, err := readUvarint(frame[1:])
			if err != nil {
				c.fail(err)
				return
			}
			c.deliverAck(ackResult{id: id, err: fmt.Errorf("broker: %s", rest)})
		case msgMatch:
			if err := c.handleMatch(frame[1:]); err != nil {
				c.fail(err)
				return
			}
		default:
			c.fail(fmt.Errorf("broker: unknown server message %q", frame[0]))
			return
		}
	}
}

func (c *Client) deliverAck(r ackResult) {
	select {
	case c.acks <- r:
	default:
		// No request outstanding: a protocol violation by the server;
		// drop the stray ack rather than deadlocking.
	}
}

func (c *Client) handleMatch(body []byte) error {
	n, rest, err := readUvarint(body)
	if err != nil {
		return err
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i], rest, err = readUvarint(rest)
		if err != nil {
			return err
		}
	}
	ev, used, err := expr.DecodeEvent(rest)
	if err != nil {
		return err
	}
	if used != len(rest) {
		return fmt.Errorf("broker: trailing bytes in match frame")
	}
	c.mu.Lock()
	hs := make([]Handler, 0, len(ids))
	for _, id := range ids {
		if h, ok := c.handlers[id]; ok {
			hs = append(hs, h)
		}
	}
	c.mu.Unlock()
	for _, h := range hs {
		h(ev)
	}
	return nil
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.readErr = err
		close(c.done)
	}
	c.mu.Unlock()
	c.nc.Close()
}

func (c *Client) write(frame []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.mu.Unlock()
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeFrame(c.nc, frame)
}

// request sends a frame and waits for its acknowledgement.
func (c *Client) request(frame []byte, wantID uint64) error {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if err := c.write(frame); err != nil {
		return err
	}
	select {
	case r := <-c.acks:
		if r.id != wantID {
			return fmt.Errorf("broker: acknowledgement for %d, expected %d", r.id, wantID)
		}
		return r.err
	case <-c.done:
		return c.readErr
	}
}

// Subscribe registers x with the broker and routes matching events to
// handler. The expression's ID scopes the subscription within this
// client and must be unique among its live subscriptions.
func (c *Client) Subscribe(x *expr.Expression, handler Handler) error {
	if handler == nil {
		return errors.New("broker: nil handler")
	}
	c.mu.Lock()
	if _, dup := c.handlers[uint64(x.ID)]; dup {
		c.mu.Unlock()
		return fmt.Errorf("broker: duplicate subscription id %d", x.ID)
	}
	c.handlers[uint64(x.ID)] = handler
	c.mu.Unlock()

	frame := expr.AppendExpression([]byte{msgSubscribe}, x)
	if err := c.request(frame, uint64(x.ID)); err != nil {
		c.mu.Lock()
		delete(c.handlers, uint64(x.ID))
		c.mu.Unlock()
		return err
	}
	return nil
}

// Unsubscribe removes the subscription with the given id.
func (c *Client) Unsubscribe(id expr.ID) error {
	frame := appendUvarint([]byte{msgUnsubscribe}, uint64(id))
	if err := c.request(frame, uint64(id)); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.handlers, uint64(id))
	c.mu.Unlock()
	return nil
}

// Publish sends an event to the broker (fire-and-forget).
func (c *Client) Publish(ev *expr.Event) error {
	return c.write(expr.AppendEvent([]byte{msgPublish}, ev))
}

// Err returns the terminal read-loop error, if the connection has
// failed.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// Close terminates the connection. Blocked requests are released.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return nil
}
