package broker

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/metrics"
)

// Server fronts an Engine over TCP. Create with NewServer, start with
// Serve, stop with Close.
type Server struct {
	eng *apcm.Engine
	// Logf receives connection-level diagnostics; defaults to log.Printf.
	// Set before Serve.
	Logf func(format string, args ...any)
	// SlowConsumerTimeout bounds how long a delivery may wait on a full
	// client outbox before the connection is dropped. Within the
	// timeout, backpressure propagates to the publisher. Defaults to 2s;
	// set before Serve.
	SlowConsumerTimeout time.Duration
	// Metrics, when non-nil, receives broker instrumentation
	// (connections, outbox depth, slow-consumer drops, publish fan-out
	// latency). Set before Serve.
	Metrics *metrics.Registry

	mu     sync.RWMutex
	subs   map[expr.ID]*subscriber // engine id -> owner
	conns  map[*conn]struct{}
	closed bool
	ln     net.Listener

	published  atomic.Int64
	delivered  atomic.Int64
	slowDrops  atomic.Int64
	metOnce    sync.Once
	publishLat *metrics.Histogram // nil without a registry (nil-safe)
}

type subscriber struct {
	c        *conn
	clientID uint64
}

// conn is one client connection. Outbound frames go through a bounded
// outbox drained by a writer goroutine; a full outbox applies
// backpressure to the publisher first and terminates the connection
// only after SlowConsumerTimeout.
type conn struct {
	s      *Server
	nc     net.Conn
	outbox chan []byte
	done   chan struct{}
	closeO sync.Once
	// engine ids owned by this connection, keyed by client id.
	mu       sync.Mutex
	byClient map[uint64]expr.ID
}

// NewServer wraps eng. The server takes no ownership: closing the server
// does not close the engine.
func NewServer(eng *apcm.Engine) *Server {
	return &Server{
		eng:   eng,
		Logf:  log.Printf,
		subs:  make(map[expr.ID]*subscriber),
		conns: make(map[*conn]struct{}),
	}
}

// Stats reports cumulative publish/delivery counts.
func (s *Server) Stats() (published, delivered int64) {
	return s.published.Load(), s.delivered.Load()
}

// SlowConsumerDrops reports how many connections were terminated for
// stalling past SlowConsumerTimeout.
func (s *Server) SlowConsumerDrops() int64 { return s.slowDrops.Load() }

// attachMetrics registers the broker's instruments on s.Metrics. The
// cumulative counts stay on the server's own atomics (Stats predates
// the registry) and are exported as read-time functions.
func (s *Server) attachMetrics() {
	reg := s.Metrics
	if reg == nil {
		return
	}
	s.publishLat = reg.Histogram("apcm_broker_publish_latency_ns",
		"publish handling latency: decode, match and fan-out enqueue")
	reg.CounterFunc("apcm_broker_published_total", "events received from clients",
		func() float64 { return float64(s.published.Load()) })
	reg.CounterFunc("apcm_broker_delivered_total", "match notifications enqueued to clients",
		func() float64 { return float64(s.delivered.Load()) })
	reg.CounterFunc("apcm_broker_slow_consumer_drops_total", "connections dropped for stalling past SlowConsumerTimeout",
		func() float64 { return float64(s.slowDrops.Load()) })
	reg.GaugeFunc("apcm_broker_connections", "currently connected clients", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.conns))
	})
	reg.GaugeFunc("apcm_broker_subscriptions", "live broker-owned subscriptions", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.subs))
	})
	reg.GaugeFunc("apcm_broker_outbox_depth", "frames queued across all client outboxes", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		var n int
		for c := range s.conns {
			n += len(c.outbox)
		}
		return float64(n)
	})
}

// Serve accepts connections on ln until Close. It returns nil after
// Close, or the listener error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("broker: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.metOnce.Do(s.attachMetrics)
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.RLock()
			closed := s.closed
			s.mu.RUnlock()
			if closed {
				return nil
			}
			return err
		}
		c := &conn{
			s:        s,
			nc:       nc,
			outbox:   make(chan []byte, 256),
			done:     make(chan struct{}),
			byClient: make(map[uint64]expr.ID),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go c.writeLoop()
		go c.readLoop()
	}
}

// Close stops accepting, drops every connection and unregisters their
// subscriptions.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.shutdown()
	}
}

func (c *conn) writeLoop() {
	for {
		select {
		case frame := <-c.outbox:
			if err := writeFrame(c.nc, frame); err != nil {
				c.shutdown()
				return
			}
		case <-c.done:
			return
		}
	}
}

// send enqueues a frame. A full outbox first applies backpressure (the
// sending publisher blocks, bounding its ingestion rate to the
// consumer's drain rate, as pub/sub flow control should); only a
// consumer that stays stalled past SlowConsumerTimeout is dropped.
func (c *conn) send(frame []byte) {
	select {
	case c.outbox <- frame:
		return
	case <-c.done:
		return
	default:
	}
	timeout := c.s.SlowConsumerTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case c.outbox <- frame:
	case <-c.done:
	case <-t.C:
		c.s.slowDrops.Add(1)
		c.s.Logf("broker: dropping slow consumer %v (stalled %v)", c.nc.RemoteAddr(), timeout)
		c.shutdown()
	}
}

func (c *conn) shutdown() {
	c.closeO.Do(func() {
		close(c.done)
		c.nc.Close()
		// Unregister this connection's subscriptions.
		c.mu.Lock()
		ids := make([]expr.ID, 0, len(c.byClient))
		for _, id := range c.byClient {
			ids = append(ids, id)
		}
		c.byClient = make(map[uint64]expr.ID)
		c.mu.Unlock()
		c.s.mu.Lock()
		for _, id := range ids {
			delete(c.s.subs, id)
		}
		delete(c.s.conns, c)
		c.s.mu.Unlock()
		for _, id := range ids {
			c.s.eng.Unsubscribe(id)
		}
	})
}

func (c *conn) readLoop() {
	defer c.shutdown()
	var buf []byte
	for {
		frame, err := readFrame(c.nc, buf)
		if err != nil {
			return
		}
		buf = frame
		if err := c.handle(frame); err != nil {
			c.s.Logf("broker: %v: %v", c.nc.RemoteAddr(), err)
			return
		}
	}
}

func (c *conn) handle(frame []byte) error {
	switch frame[0] {
	case msgSubscribe:
		return c.handleSubscribe(frame[1:])
	case msgUnsubscribe:
		return c.handleUnsubscribe(frame[1:])
	case msgPublish:
		return c.handlePublish(frame[1:])
	default:
		return fmt.Errorf("unknown message type %q", frame[0])
	}
}

func (c *conn) ack(clientID uint64) {
	c.send(appendUvarint([]byte{msgAck}, clientID))
}

func (c *conn) nack(clientID uint64, err error) {
	frame := appendUvarint([]byte{msgErr}, clientID)
	c.send(append(frame, err.Error()...))
}

func (c *conn) handleSubscribe(body []byte) error {
	x, n, err := expr.DecodeExpression(body)
	if err != nil {
		return fmt.Errorf("bad subscribe: %w", err)
	}
	if n != len(body) {
		return fmt.Errorf("trailing bytes after subscribe")
	}
	clientID := uint64(x.ID)
	c.mu.Lock()
	_, dup := c.byClient[clientID]
	c.mu.Unlock()
	if dup {
		c.nack(clientID, fmt.Errorf("duplicate subscription id %d", clientID))
		return nil
	}
	// Re-key the expression under an engine-allocated id, so broker
	// subscriptions never collide with ids the embedding application
	// registered directly on the shared engine.
	engID := c.s.eng.NewID()
	rekeyed := &expr.Expression{ID: engID, Preds: x.Preds}
	if err := c.s.eng.Subscribe(rekeyed); err != nil {
		c.nack(clientID, err)
		return nil
	}
	c.s.mu.Lock()
	c.s.subs[engID] = &subscriber{c: c, clientID: clientID}
	c.s.mu.Unlock()
	c.mu.Lock()
	c.byClient[clientID] = engID
	c.mu.Unlock()
	c.ack(clientID)
	return nil
}

func (c *conn) handleUnsubscribe(body []byte) error {
	clientID, rest, err := readUvarint(body)
	if err != nil || len(rest) != 0 {
		return fmt.Errorf("bad unsubscribe")
	}
	c.mu.Lock()
	engID, ok := c.byClient[clientID]
	if ok {
		delete(c.byClient, clientID)
	}
	c.mu.Unlock()
	if !ok {
		c.nack(clientID, fmt.Errorf("unknown subscription id %d", clientID))
		return nil
	}
	c.s.mu.Lock()
	delete(c.s.subs, engID)
	c.s.mu.Unlock()
	c.s.eng.Unsubscribe(engID)
	c.ack(clientID)
	return nil
}

func (c *conn) handlePublish(body []byte) error {
	var start time.Time
	if c.s.publishLat != nil {
		start = time.Now()
		defer func() { c.s.publishLat.ObserveDuration(time.Since(start)) }()
	}
	ev, n, err := expr.DecodeEvent(body)
	if err != nil {
		return fmt.Errorf("bad publish: %w", err)
	}
	if n != len(body) {
		return fmt.Errorf("trailing bytes after publish")
	}
	c.s.published.Add(1)
	matches := c.s.eng.Match(ev)
	if len(matches) == 0 {
		return nil
	}
	// Group matched subscriptions by owning connection.
	byConn := make(map[*conn][]uint64)
	c.s.mu.RLock()
	for _, engID := range matches {
		if sub, ok := c.s.subs[engID]; ok {
			byConn[sub.c] = append(byConn[sub.c], sub.clientID)
		}
	}
	c.s.mu.RUnlock()
	for target, clientIDs := range byConn {
		frame := appendUvarint([]byte{msgMatch}, uint64(len(clientIDs)))
		for _, id := range clientIDs {
			frame = appendUvarint(frame, id)
		}
		frame = expr.AppendEvent(frame, ev)
		target.send(frame)
		c.s.delivered.Add(int64(len(clientIDs)))
	}
	return nil
}
