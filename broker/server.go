package broker

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/commitlog"
	"github.com/streammatch/apcm/metrics"
)

// Matcher is the engine surface the broker runs against: subscription
// lifecycle, matching, and checkpointing. Both a single *apcm.Engine
// and a sharded *shard.Group satisfy it, so a broker scales from one
// matching engine to a partitioned tier without protocol or handler
// changes (cmd/apcm-broker selects with -shards).
type Matcher interface {
	NewID() expr.ID
	Subscribe(*expr.Expression) error
	Unsubscribe(expr.ID) bool
	Match(*expr.Event) []expr.ID
	Len() int
	CheckpointSubscriptions(path string) error
}

// Server fronts a Matcher over TCP. Create with NewServer, start with
// Serve, stop with Close (immediate) or Shutdown (graceful drain).
type Server struct {
	eng Matcher
	// Logf receives connection-level diagnostics; defaults to log.Printf.
	// Set before Serve.
	Logf func(format string, args ...any)
	// SlowConsumerTimeout bounds how long a delivery may wait on a full
	// client outbox before the connection is dropped. Within the
	// timeout, backpressure propagates to the publisher. Defaults to 2s;
	// set before Serve.
	SlowConsumerTimeout time.Duration
	// HeartbeatInterval is the keepalive cadence the server assumes of
	// its clients. A connection that stays completely silent for
	// HeartbeatInterval × MissedHeartbeats is reaped as dead. Defaults
	// to 5s; negative disables reaping. Set before Serve.
	HeartbeatInterval time.Duration
	// MissedHeartbeats is how many heartbeat intervals of silence the
	// server tolerates before reaping a connection. Defaults to 3.
	MissedHeartbeats int
	// WriteTimeout bounds each frame write to a client socket, so a
	// wedged peer (accepting TCP but never draining) can never pin a
	// writer goroutine. Defaults to 10s; negative disables. Set before
	// Serve.
	WriteTimeout time.Duration
	// Metrics, when non-nil, receives broker instrumentation
	// (connections, outbox depth, slow-consumer drops, publish fan-out
	// latency, heartbeat/drain counters). Set before Serve.
	Metrics *metrics.Registry
	// LogDir, when non-empty, enables durable delivery: matched events
	// for resumed consumers are committed to a segmented log under this
	// directory before they count as delivered, and per-consumer
	// acknowledged offsets persist across restarts. Set before Serve.
	LogDir string
	// Log tunes the commit log (segment size, flush policy, retention)
	// when LogDir is set. Zero fields take commitlog defaults; Metrics
	// is inherited from Server.Metrics when unset. Set before Serve.
	Log commitlog.Config
	// NodeID names this broker in the replication handshake and logs.
	// Set before Serve.
	NodeID string
	// Follow, when non-empty, starts this server as a follower of the
	// leader at that address: it replicates the leader's commit log and
	// consumer offsets, rejects client operations (connections fail
	// over to the leader), and promotes itself to leader when the
	// leader stays silent past ReplTimeout. Requires LogDir. Set
	// before Serve.
	Follow string
	// ReplSync, on the leader, tightens durable delivery to
	// delivered ⊆ committed ⊆ replicated: a durable frame is pushed
	// only after the attached follower acknowledged the record. With no
	// follower attached, delivery degrades to single-node durability
	// (counted by apcm_broker_repl_sync_degraded_total) rather than
	// blocking. Set before Serve.
	ReplSync bool
	// ReplHeartbeat is the follower's ping cadence toward the leader
	// and the leader's offset-journal shipping cadence. Defaults to
	// 250ms. Set before Serve.
	ReplHeartbeat time.Duration
	// ReplTimeout is how long a follower tolerates total leader
	// silence (no frames on the replication connection, dial failures
	// included) before promoting itself to leader. Defaults to 3s. Set
	// before Serve.
	ReplTimeout time.Duration
	// ReplDial, when non-nil, replaces net.Dial("tcp", Follow) for the
	// replication connection — the fault-injection hook the partition
	// schedules use. Set before Serve.
	ReplDial func(addr string) (net.Conn, error)

	mu        sync.RWMutex //apcm:lockrank=1
	subs      map[expr.ID]*subscriber // engine id -> owner
	conns     map[*conn]struct{}
	consumers map[string]*consumerState
	closed    bool
	ln        net.Listener

	log     *commitlog.Log // nil without LogDir
	offsets *commitlog.OffsetStore

	draining          atomic.Bool
	published         atomic.Int64
	delivered         atomic.Int64
	slowDrops         atomic.Int64
	heartbeatTimeouts atomic.Int64
	drainStarted      atomic.Int64
	drainFlushed      atomic.Int64
	drainExpired      atomic.Int64
	drainRejects      atomic.Int64
	resumes           atomic.Int64
	resumeReplayed    atomic.Int64
	offsetAcks        atomic.Int64
	logAppendErrs     atomic.Int64
	checkpointErrs    atomic.Int64
	attachedConsumers atomic.Int64
	metOnce           sync.Once
	publishLat        *metrics.Histogram // nil without a registry (nil-safe)

	// Replication state. role/epoch are atomics because the frame
	// dispatcher gates on them per frame; replica (the attached
	// follower's connection, nil when none) is guarded by mu.
	role       atomic.Int32
	epoch      atomic.Uint64
	promoted   atomic.Bool
	promotedAt atomic.Int64
	replica    *conn
	replStop   chan struct{} // non-nil on followers; closed by Close
	replDone   chan struct{} // closed when the replicator goroutine exits

	fenced              atomic.Int64
	promotions          atomic.Int64
	replBatchesSent     atomic.Int64
	replSegmentsShipped atomic.Int64
	replAcks            atomic.Int64
	replJournalShips    atomic.Int64
	replIngested        atomic.Int64
	replSyncWaits       atomic.Int64
	replSyncDegraded    atomic.Int64
}

type subscriber struct {
	c        *conn
	clientID uint64
}

// conn is one client connection. Outbound frames go through a bounded
// outbox drained by a writer goroutine; a full outbox applies
// backpressure to the publisher first and terminates the connection
// only after SlowConsumerTimeout.
type conn struct {
	s      *Server
	nc     net.Conn
	outbox chan []byte
	done   chan struct{}
	closeO sync.Once
	// hello flips after a valid version handshake; version is the
	// negotiated protocol revision. Only the read loop touches them.
	hello   bool
	version byte
	// enqueued/written frame counts; their equality is the drain
	// condition in Shutdown (an empty outbox alone would miss the frame
	// the writer currently holds in flight).
	enqueued atomic.Int64
	written  atomic.Int64
	// engine ids owned by this connection, keyed by client id, plus the
	// consumer identity this connection resumed as (nil before resume).
	mu       sync.Mutex //apcm:lockrank=2
	byClient map[uint64]expr.ID
	consumer *consumerState
	// isRepl flips when this connection completes a repl-hello and
	// becomes the attached follower's replication channel.
	isRepl bool
}

// NewServer wraps eng. The server takes no ownership: closing the server
// does not close the engine.
func NewServer(eng Matcher) *Server {
	return &Server{
		eng:       eng,
		Logf:      log.Printf,
		subs:      make(map[expr.ID]*subscriber),
		conns:     make(map[*conn]struct{}),
		consumers: make(map[string]*consumerState),
	}
}

// Stats reports cumulative publish/delivery counts.
func (s *Server) Stats() (published, delivered int64) {
	return s.published.Load(), s.delivered.Load()
}

// SlowConsumerDrops reports how many connections were terminated for
// stalling past SlowConsumerTimeout.
func (s *Server) SlowConsumerDrops() int64 { return s.slowDrops.Load() }

// HeartbeatTimeouts reports how many connections were reaped for
// missing their heartbeat deadline.
func (s *Server) HeartbeatTimeouts() int64 { return s.heartbeatTimeouts.Load() }

// readDeadline is the per-frame read deadline: HeartbeatInterval ×
// MissedHeartbeats, or 0 (no deadline) when reaping is disabled.
func (s *Server) readDeadline() time.Duration {
	iv := s.HeartbeatInterval
	if iv < 0 {
		return 0
	}
	if iv == 0 {
		iv = 5 * time.Second
	}
	missed := s.MissedHeartbeats
	if missed <= 0 {
		missed = 3
	}
	return iv * time.Duration(missed)
}

func (s *Server) writeTimeout() time.Duration {
	switch {
	case s.WriteTimeout < 0:
		return 0
	case s.WriteTimeout == 0:
		return 10 * time.Second
	}
	return s.WriteTimeout
}

// attachMetrics registers the broker's instruments on s.Metrics. The
// cumulative counts stay on the server's own atomics (Stats predates
// the registry) and are exported as read-time functions.
func (s *Server) attachMetrics() {
	reg := s.Metrics
	if reg == nil {
		return
	}
	s.publishLat = reg.Histogram("apcm_broker_publish_latency_ns",
		"publish handling latency: decode, match and fan-out enqueue")
	reg.CounterFunc("apcm_broker_published_total", "events received from clients",
		func() float64 { return float64(s.published.Load()) })
	reg.CounterFunc("apcm_broker_delivered_total", "match notifications enqueued to clients",
		func() float64 { return float64(s.delivered.Load()) })
	reg.CounterFunc("apcm_broker_slow_consumer_drops_total", "connections dropped for stalling past SlowConsumerTimeout",
		func() float64 { return float64(s.slowDrops.Load()) })
	reg.CounterFunc("apcm_broker_heartbeat_timeouts_total", "connections reaped for missing their heartbeat deadline",
		func() float64 { return float64(s.heartbeatTimeouts.Load()) })
	reg.CounterFunc("apcm_broker_drain_started_total", "graceful Shutdown drains begun",
		func() float64 { return float64(s.drainStarted.Load()) })
	reg.CounterFunc("apcm_broker_drain_flushed_total", "drains that flushed every outbox before closing",
		func() float64 { return float64(s.drainFlushed.Load()) })
	reg.CounterFunc("apcm_broker_drain_expired_total", "drains cut short by the Shutdown context deadline",
		func() float64 { return float64(s.drainExpired.Load()) })
	reg.CounterFunc("apcm_broker_drain_rejected_total", "subscribe/unsubscribe requests nacked while draining",
		func() float64 { return float64(s.drainRejects.Load()) })
	reg.GaugeFunc("apcm_broker_draining", "1 while a graceful drain is in progress", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("apcm_broker_connections", "currently connected clients", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.conns))
	})
	reg.GaugeFunc("apcm_broker_subscriptions", "live broker-owned subscriptions", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.subs))
	})
	reg.GaugeFunc("apcm_broker_outbox_depth", "frames queued across all client outboxes", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		var n int
		for c := range s.conns {
			n += len(c.outbox)
		}
		return float64(n)
	})
	reg.CounterFunc("apcm_broker_resumes_total", "consumer resume requests accepted",
		func() float64 { return float64(s.resumes.Load()) })
	reg.CounterFunc("apcm_broker_resume_replayed_total", "logged records replayed to resuming consumers",
		func() float64 { return float64(s.resumeReplayed.Load()) })
	reg.CounterFunc("apcm_broker_offset_acks_total", "offset acknowledgements received from consumers",
		func() float64 { return float64(s.offsetAcks.Load()) })
	reg.CounterFunc("apcm_broker_log_append_errors_total", "durable deliveries lost to commit-log append failures",
		func() float64 { return float64(s.logAppendErrs.Load()) })
	reg.CounterFunc("apcm_broker_checkpoint_errors_total", "Checkpoint calls that failed to persist state",
		func() float64 { return float64(s.checkpointErrs.Load()) })
	reg.GaugeFunc("apcm_broker_consumers", "consumers currently attached for durable delivery",
		func() float64 { return float64(s.attachedConsumers.Load()) })
	reg.GaugeFunc("apcm_broker_repl_epoch", "current replication epoch",
		func() float64 { return float64(s.epoch.Load()) })
	reg.GaugeFunc("apcm_broker_repl_role", "replication role: 0 leader, 1 follower, 2 fenced",
		func() float64 { return float64(s.role.Load()) })
	reg.GaugeFunc("apcm_broker_repl_lag", "records committed on the leader but not yet acknowledged by the attached follower", func() float64 {
		if s.log == nil {
			return 0
		}
		repl, ok := s.log.Replicated()
		if !ok {
			return 0
		}
		if next := s.log.NextOffset(); next > repl {
			return float64(next - repl)
		}
		return 0
	})
	reg.CounterFunc("apcm_broker_repl_batches_sent_total", "commit-log batches streamed to the follower",
		func() float64 { return float64(s.replBatchesSent.Load()) })
	reg.CounterFunc("apcm_broker_repl_segments_shipped_total", "sealed segments bulk-shipped to the follower",
		func() float64 { return float64(s.replSegmentsShipped.Load()) })
	reg.CounterFunc("apcm_broker_repl_acks_total", "replication acknowledgements received from the follower",
		func() float64 { return float64(s.replAcks.Load()) })
	reg.CounterFunc("apcm_broker_repl_journal_ships_total", "consumer offset-journal snapshots shipped to the follower",
		func() float64 { return float64(s.replJournalShips.Load()) })
	reg.CounterFunc("apcm_broker_repl_ingested_total", "segments and batches ingested from the leader",
		func() float64 { return float64(s.replIngested.Load()) })
	reg.CounterFunc("apcm_broker_repl_fences_total", "times this node fenced itself on seeing a higher epoch",
		func() float64 { return float64(s.fenced.Load()) })
	reg.CounterFunc("apcm_broker_repl_promotions_total", "follower-to-leader promotions",
		func() float64 { return float64(s.promotions.Load()) })
	reg.CounterFunc("apcm_broker_repl_sync_waits_total", "durable deliveries gated on follower acknowledgement",
		func() float64 { return float64(s.replSyncWaits.Load()) })
	reg.CounterFunc("apcm_broker_repl_sync_degraded_total", "repl-sync deliveries that proceeded without an attached follower",
		func() float64 { return float64(s.replSyncDegraded.Load()) })
}

// Serve accepts connections on ln until Close or Shutdown. It returns
// nil after either, or the listener error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("broker: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.metOnce.Do(s.attachMetrics)
	if err := s.openLog(); err != nil {
		return err
	}
	if s.Follow != "" {
		if s.log == nil {
			return errors.New("broker: Follow requires LogDir")
		}
		s.mu.Lock()
		if s.replStop == nil {
			s.role.Store(roleFollower)
			s.replStop = make(chan struct{})
			s.replDone = make(chan struct{})
			go s.runReplicator()
		}
		s.mu.Unlock()
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.RLock()
			closed := s.closed
			s.mu.RUnlock()
			if closed || s.draining.Load() {
				return nil
			}
			return err
		}
		c := &conn{
			s:        s,
			nc:       nc,
			outbox:   make(chan []byte, 256),
			done:     make(chan struct{}),
			byClient: make(map[uint64]expr.ID),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go c.writeLoop()
		go c.readLoop()
	}
}

// Close stops accepting, drops every connection and unregisters their
// subscriptions. Queued match notifications are discarded; use Shutdown
// to flush them first.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	replStop, replDone := s.replStop, s.replDone
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if replStop != nil {
		close(replStop)
		<-replDone
	}
	for _, c := range conns {
		c.shutdown()
	}
	s.closeLog()
}

// Shutdown drains the server gracefully: it stops accepting, nacks new
// subscribe/unsubscribe work and ignores new publishes, then waits for
// every connection's outbox to flush to its socket before closing. When
// ctx expires first the remaining connections are hard-closed and
// ctx.Err is returned. Stalled consumers do not pin the drain: the
// slow-consumer and write-deadline reapers keep running and a dropped
// connection no longer counts toward the flush condition.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	already := s.draining.Swap(true)
	ln := s.ln
	s.mu.Unlock()
	if !already {
		s.drainStarted.Add(1)
		if ln != nil {
			ln.Close() // Serve sees draining and returns nil
		}
	}
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for !s.outboxesFlushed() {
		select {
		case <-ctx.Done():
			s.drainExpired.Add(1)
			s.Close()
			return ctx.Err()
		case <-ticker.C:
		}
	}
	s.drainFlushed.Add(1)
	s.Close()
	return nil
}

// outboxesFlushed reports whether every live connection has written all
// frames it ever enqueued. Reading enqueued before written keeps the
// check conservative: a frame enqueued between the two loads can make
// the counts look unequal, never prematurely equal.
func (s *Server) outboxesFlushed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for c := range s.conns {
		if c.enqueued.Load() != c.written.Load() {
			return false
		}
	}
	return true
}

func (c *conn) writeLoop() {
	timeout := c.s.writeTimeout()
	for {
		select {
		case frame := <-c.outbox:
			if timeout > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(timeout))
			}
			if err := writeFrame(c.nc, frame); err != nil {
				c.shutdown()
				return
			}
			c.written.Add(1)
		case <-c.done:
			return
		}
	}
}

// send enqueues a frame and reports whether it was accepted. A full
// outbox first applies backpressure (the sending publisher blocks,
// bounding its ingestion rate to the consumer's drain rate, as pub/sub
// flow control should); only a consumer that stays stalled past
// SlowConsumerTimeout is dropped. Callers that count deliveries must
// only count frames send accepted — a dropped frame never reaches the
// wire.
func (c *conn) send(frame []byte) bool {
	select {
	case c.outbox <- frame:
		c.enqueued.Add(1)
		return true
	case <-c.done:
		return false
	default:
	}
	timeout := c.s.SlowConsumerTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case c.outbox <- frame:
		c.enqueued.Add(1)
		return true
	case <-c.done:
		return false
	case <-t.C:
		c.s.slowDrops.Add(1)
		c.s.Logf("broker: dropping slow consumer %v (stalled %v)", c.nc.RemoteAddr(), timeout)
		c.abort()
		return false
	}
}

func (c *conn) shutdown() {
	c.closeO.Do(func() {
		close(c.done)
		c.nc.Close()
		c.unregister()
	})
}

// abort is shutdown for callers that may hold delivery locks: the
// connection is dead when it returns — c.done closed, so every
// in-flight send unblocks and later sends fail — but the lock-taking
// unregistration runs on a fresh goroutine. send's slow-consumer drop
// fires with consumerState.mu held on the durable-delivery and
// resume-replay paths, and unregister re-enters that mutex via detach;
// synchronously that is a self-deadlock (Go mutexes are not
// reentrant).
func (c *conn) abort() {
	c.closeO.Do(func() {
		close(c.done)
		c.nc.Close()
		//apcm:detached short-lived teardown; the connection is already dead, nothing joins it
		go c.unregister()
	})
}

// unregister removes this connection's subscriptions and detaches its
// consumer identity so a successor connection can resume it. Called
// exactly once per connection, by whichever of shutdown/abort won the
// closeO race.
func (c *conn) unregister() {
	c.mu.Lock()
	ids := make([]expr.ID, 0, len(c.byClient))
	for _, id := range c.byClient {
		ids = append(ids, id)
	}
	c.byClient = make(map[uint64]expr.ID)
	cs := c.consumer
	c.consumer = nil
	c.mu.Unlock()
	if cs != nil {
		cs.detach(c)
	}
	c.s.detachReplica(c)
	c.s.mu.Lock()
	for _, id := range ids {
		delete(c.s.subs, id)
	}
	delete(c.s.conns, c)
	c.s.mu.Unlock()
	for _, id := range ids {
		c.s.eng.Unsubscribe(id)
	}
	if c.s.ReplSync && c.s.log != nil {
		// A dying consumer connection may be parked in WaitReplicated;
		// wake the log's waiters so its cancellation check runs.
		c.s.log.Wake()
	}
}

func (c *conn) readLoop() {
	defer c.shutdown()
	deadline := c.s.readDeadline()
	var buf []byte
	for {
		if deadline > 0 {
			c.nc.SetReadDeadline(time.Now().Add(deadline))
		}
		frame, err := readFrame(c.nc, buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.s.heartbeatTimeouts.Add(1)
				c.s.Logf("broker: reaping %v (silent past %v)", c.nc.RemoteAddr(), deadline)
			}
			return
		}
		buf = frame
		if err := c.handle(frame); err != nil {
			c.s.Logf("broker: %v: %v", c.nc.RemoteAddr(), err)
			return
		}
	}
}

func (c *conn) handle(frame []byte) error {
	if !c.hello {
		if frame[0] != msgHello {
			return fmt.Errorf("expected hello, got %q", frame[0])
		}
		return c.handleHello(frame[1:])
	}
	switch frame[0] {
	case msgSubscribe, msgUnsubscribe, msgPublish, msgResume, msgOffsetAck:
		// Followers and fenced nodes reject client operations by closing
		// the connection with no nack frame: Session.replay permanently
		// drops a subscription on a nack, whereas a transport-style
		// failure makes the session retry — against the next address for
		// multi-address sessions, which is exactly failover.
		if r := c.s.role.Load(); r != roleLeader {
			return fmt.Errorf("%q frame rejected: node is %s", frame[0], roleName(r))
		}
	}
	switch frame[0] {
	case msgSubscribe:
		return c.handleSubscribe(frame[1:])
	case msgUnsubscribe:
		return c.handleUnsubscribe(frame[1:])
	case msgPublish:
		return c.handlePublish(frame[1:])
	case msgPing:
		c.send([]byte{msgPong})
		return nil
	case msgResume:
		if c.version < 2 {
			return fmt.Errorf("resume frame on protocol %d connection", c.version)
		}
		return c.handleResume(frame[1:])
	case msgOffsetAck:
		if c.version < 2 {
			return fmt.Errorf("offset-ack frame on protocol %d connection", c.version)
		}
		return c.handleOffsetAck(frame[1:])
	case msgReplHello:
		return c.handleReplHello(frame[1:])
	case msgReplAck:
		return c.handleReplAck(frame[1:])
	case msgFence:
		return c.handleFence(frame[1:])
	default:
		return fmt.Errorf("unknown message type %q", frame[0])
	}
}

func (c *conn) handleHello(body []byte) error {
	if len(body) != 1 {
		return fmt.Errorf("bad hello: %d-byte payload", len(body))
	}
	if v := body[0]; v < MinProtocolVersion {
		// Written synchronously, not via the outbox: the connection is
		// about to close and would race the writer goroutine out of
		// delivering the explanation. No frame can be in flight before the
		// handshake, so the direct write cannot interleave.
		frame := appendUvarint([]byte{msgErr}, 0)
		frame = append(frame, fmt.Sprintf("unsupported protocol version %d (server speaks %d-%d)", v, MinProtocolVersion, ProtocolVersion)...)
		if timeout := c.s.writeTimeout(); timeout > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(timeout))
		}
		writeFrame(c.nc, frame)
		return fmt.Errorf("client speaks protocol %d, want at least %d", body[0], MinProtocolVersion)
	}
	// Negotiate down to the highest revision both sides speak.
	c.version = body[0]
	if c.version > ProtocolVersion {
		c.version = ProtocolVersion
	}
	c.hello = true
	c.send([]byte{msgHello, c.version})
	return nil
}

func (c *conn) ack(clientID uint64) {
	c.send(appendUvarint([]byte{msgAck}, clientID))
}

func (c *conn) nack(clientID uint64, err error) {
	frame := appendUvarint([]byte{msgErr}, clientID)
	c.send(append(frame, err.Error()...))
}

func (c *conn) handleSubscribe(body []byte) error {
	x, n, err := expr.DecodeExpression(body)
	if err != nil {
		return fmt.Errorf("bad subscribe: %w", err)
	}
	if n != len(body) {
		return fmt.Errorf("trailing bytes after subscribe")
	}
	clientID := uint64(x.ID)
	if c.s.draining.Load() {
		c.s.drainRejects.Add(1)
		c.nack(clientID, errors.New("broker draining"))
		return nil
	}
	c.mu.Lock()
	_, dup := c.byClient[clientID]
	c.mu.Unlock()
	if dup {
		c.nack(clientID, fmt.Errorf("duplicate subscription id %d", clientID))
		return nil
	}
	// Re-key the expression under an engine-allocated id, so broker
	// subscriptions never collide with ids the embedding application
	// registered directly on the shared engine.
	engID := c.s.eng.NewID()
	rekeyed := &expr.Expression{ID: engID, Preds: x.Preds}
	if err := c.s.eng.Subscribe(rekeyed); err != nil {
		c.nack(clientID, err)
		return nil
	}
	c.s.mu.Lock()
	c.s.subs[engID] = &subscriber{c: c, clientID: clientID}
	c.s.mu.Unlock()
	c.mu.Lock()
	c.byClient[clientID] = engID
	c.mu.Unlock()
	c.ack(clientID)
	return nil
}

func (c *conn) handleUnsubscribe(body []byte) error {
	clientID, rest, err := readUvarint(body)
	if err != nil || len(rest) != 0 {
		return fmt.Errorf("bad unsubscribe")
	}
	if c.s.draining.Load() {
		c.s.drainRejects.Add(1)
		c.nack(clientID, errors.New("broker draining"))
		return nil
	}
	c.mu.Lock()
	engID, ok := c.byClient[clientID]
	if ok {
		delete(c.byClient, clientID)
	}
	c.mu.Unlock()
	if !ok {
		c.nack(clientID, fmt.Errorf("unknown subscription id %d", clientID))
		return nil
	}
	c.s.mu.Lock()
	delete(c.s.subs, engID)
	c.s.mu.Unlock()
	c.s.eng.Unsubscribe(engID)
	c.ack(clientID)
	return nil
}

func (c *conn) handlePublish(body []byte) error {
	var start time.Time
	if c.s.publishLat != nil {
		start = time.Now()
		defer func() { c.s.publishLat.ObserveDuration(time.Since(start)) }()
	}
	ev, n, err := expr.DecodeEvent(body)
	if err != nil {
		return fmt.Errorf("bad publish: %w", err)
	}
	if n != len(body) {
		return fmt.Errorf("trailing bytes after publish")
	}
	if c.s.draining.Load() {
		// Publish is fire-and-forget: there is no id to nack, and the
		// drain contract is to flush already-matched work, not take more.
		return nil
	}
	c.s.published.Add(1)
	matches := c.s.eng.Match(ev)
	if len(matches) == 0 {
		return nil
	}
	// Group matched subscriptions by owning connection.
	byConn := make(map[*conn][]uint64)
	c.s.mu.RLock()
	for _, engID := range matches {
		if sub, ok := c.s.subs[engID]; ok {
			byConn[sub.c] = append(byConn[sub.c], sub.clientID)
		}
	}
	c.s.mu.RUnlock()
	for target, clientIDs := range byConn {
		// tail = uvarint n, n×uvarint ids, event — shared by the legacy
		// match frame, the logged record and the durable frame.
		tail := appendUvarint(nil, uint64(len(clientIDs)))
		for _, id := range clientIDs {
			tail = appendUvarint(tail, id)
		}
		tail = expr.AppendEvent(tail, ev)
		target.mu.Lock()
		cs := target.consumer
		target.mu.Unlock()
		if cs != nil {
			c.s.deliverDurable(target, cs, tail, len(clientIDs))
			continue
		}
		frame := append([]byte{msgMatch}, tail...)
		if target.send(frame) {
			c.s.delivered.Add(int64(len(clientIDs)))
		}
	}
	return nil
}
