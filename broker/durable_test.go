package broker

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/commitlog"
	"github.com/streammatch/apcm/metrics"
)

// startDurableServer runs a broker with durability enabled on dir.
func startDurableServer(t *testing.T, dir string) (*Server, string, *metrics.Registry) {
	t.Helper()
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(eng)
	s.Logf = t.Logf
	s.LogDir = dir
	s.Log = commitlog.Config{FlushInterval: 200 * time.Microsecond}
	s.Metrics = metrics.New()
	go func() {
		if err := s.Serve(ln); err != nil {
			t.Logf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() { s.Close(); eng.Close() })
	// Wait until Serve has attached metrics and opened the log: the
	// commit log registers its segment gauge as the last startup step
	// before the accept loop.
	waitFor(t, "durable server ready", func() bool {
		for _, v := range s.Metrics.Snapshot() {
			if v.Name == "apcm_broker_log_segments" {
				return true
			}
		}
		return false
	})
	return s, ln.Addr().String(), s.Metrics
}

type durableRec struct {
	off uint64
	ev  *expr.Event
}

// durableDial connects a client that records every durable delivery.
func durableDial(t *testing.T, addr string, opts ClientOptions) (*Client, <-chan durableRec) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan durableRec, 64)
	user := opts.OnDurable
	opts.OnDurable = func(off uint64, ev *expr.Event) {
		ch <- durableRec{off, ev}
		if user != nil {
			user(off, ev)
		}
	}
	c := NewClientOpts(nc, opts)
	t.Cleanup(func() { c.Close() })
	return c, ch
}

func recvDurable(t *testing.T, ch <-chan durableRec) durableRec {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for durable delivery")
		return durableRec{}
	}
}

// TestDurableDeliveryBasics: a resumed consumer's matches arrive as
// durable frames with sequential log offsets, handlers still fire, and
// auto-acks advance the persisted offset.
func TestDurableDeliveryBasics(t *testing.T) {
	dir := t.TempDir()
	_, addr, reg := startDurableServer(t, dir)
	c, durables := durableDial(t, addr, ClientOptions{})
	got := make(chan *expr.Event, 16)
	if err := c.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(ev *expr.Event) { got <- ev }); err != nil {
		t.Fatal(err)
	}
	start, err := c.Resume("basics", 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("fresh consumer start = %d, want 0", start)
	}
	if v := c.ServerVersion(); v != ProtocolVersion {
		t.Fatalf("negotiated version %d, want %d", v, ProtocolVersion)
	}
	for i := 0; i < 3; i++ {
		if err := c.Publish(expr.MustEvent(expr.P(1, 1), expr.P(2, expr.Value(i)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		r := recvDurable(t, durables)
		if r.off != uint64(i) {
			t.Fatalf("delivery %d at offset %d", i, r.off)
		}
		recvEvent(t, got)
	}
	waitFor(t, "offset acks", func() bool {
		return metricValue(t, reg, "apcm_broker_offset_acks_total") >= 3
	})
	if v := metricValue(t, reg, "apcm_broker_resumes_total"); v != 1 {
		t.Fatalf("resumes metric = %v, want 1", v)
	}
	if v := metricValue(t, reg, "apcm_broker_consumers"); v != 1 {
		t.Fatalf("consumers gauge = %v, want 1", v)
	}
}

// TestDurableResumeAfterRestart: acknowledged deliveries stay
// acknowledged across a full broker restart on the same directory — the
// second resume starts past them and replays nothing — while an event
// published after the restart flows durably again.
func TestDurableResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, addr1, reg1 := startDurableServer(t, dir)
	c1, durables1 := durableDial(t, addr1, ClientOptions{})
	if err := c1.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Resume("restart", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c1.Publish(expr.MustEvent(expr.P(1, 1))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		recvDurable(t, durables1)
	}
	waitFor(t, "acks persisted", func() bool {
		return metricValue(t, reg1, "apcm_broker_offset_acks_total") >= 5
	})
	c1.Close()
	srv1.Close()

	_, addr2, _ := startDurableServer(t, dir)
	c2, durables2 := durableDial(t, addr2, ClientOptions{})
	if err := c2.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	start, err := c2.Resume("restart", 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 5 {
		t.Fatalf("resume after restart starts at %d, want 5 (all acked)", start)
	}
	select {
	case r := <-durables2:
		t.Fatalf("unexpected replay of offset %d", r.off)
	case <-time.After(50 * time.Millisecond):
	}
	if err := c2.Publish(expr.MustEvent(expr.P(1, 1))); err != nil {
		t.Fatal(err)
	}
	if r := recvDurable(t, durables2); r.off != 5 {
		t.Fatalf("post-restart delivery at offset %d, want 5", r.off)
	}
}

// TestDurableRedeliveryWithoutAck: with auto-ack disabled and no manual
// acks, a successor consumer connection replays everything from the
// requested offset — the unacknowledged deliveries were not lost.
func TestDurableRedeliveryWithoutAck(t *testing.T) {
	dir := t.TempDir()
	_, addr, _ := startDurableServer(t, dir)
	c1, durables1 := durableDial(t, addr, ClientOptions{DisableAutoAck: true})
	if err := c1.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Resume("noack", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c1.Publish(expr.MustEvent(expr.P(1, 1), expr.P(2, expr.Value(i)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		recvDurable(t, durables1)
	}
	c1.Close()

	// The successor needs no subscriptions to receive the replay: the
	// log records what was matched, not how to re-match it.
	c2, durables2 := durableDial(t, addr, ClientOptions{DisableAutoAck: true})
	start, err := c2.Resume("noack", 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("unacked consumer resumes at %d, want 0", start)
	}
	for i := 0; i < 2; i++ {
		if r := recvDurable(t, durables2); r.off != uint64(i) {
			t.Fatalf("replayed offset %d, want %d", r.off, i)
		}
	}
	// Manual ack through offset 1, then a third connection starts at 2.
	if err := c2.AckOffset(1); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	waitFor(t, "third resume past acked prefix", func() bool {
		c3, _ := durableDial(t, addr, ClientOptions{})
		defer c3.Close()
		start, err := c3.Resume("noack", 0)
		return err == nil && start == 2
	})
}

// TestCheckpointErrors: a Checkpoint that cannot persist its state
// reports the failure and counts it on
// apcm_broker_checkpoint_errors_total.
func TestCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	srv, _, reg := startDurableServer(t, dir)
	// A path under a regular file is unwritable for the subscription
	// checkpoint.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Checkpoint(filepath.Join(blocker, "subs.ckpt")); err == nil {
		t.Fatal("Checkpoint to a path under a file succeeded")
	}
	if v := metricValue(t, reg, "apcm_broker_checkpoint_errors_total"); v < 1 {
		t.Fatalf("checkpoint errors metric = %v, want >= 1", v)
	}
	// A healthy checkpoint succeeds and counts nothing further.
	before := metricValue(t, reg, "apcm_broker_checkpoint_errors_total")
	if err := srv.Checkpoint(filepath.Join(dir, "subs.ckpt")); err != nil {
		t.Fatalf("healthy Checkpoint: %v", err)
	}
	if v := metricValue(t, reg, "apcm_broker_checkpoint_errors_total"); v != before {
		t.Fatalf("healthy Checkpoint moved the error counter %v -> %v", before, v)
	}
}

// TestVersionNegotiatesDown: a client announcing a future version gets
// the server's highest (current ProtocolVersion) and the connection
// works normally.
func TestVersionNegotiatesDown(t *testing.T) {
	_, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := writeFrame(nc, []byte{msgHello, 99}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := readFrame(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != 2 || reply[0] != msgHello || reply[1] != ProtocolVersion {
		t.Fatalf("negotiation reply = %v, want hello version %d", reply, ProtocolVersion)
	}
	if err := writeFrame(nc, []byte{msgPing}); err != nil {
		t.Fatal(err)
	}
	if reply, err = readFrame(nc, nil); err != nil || reply[0] != msgPong {
		t.Fatalf("ping after negotiation: %v %v", reply, err)
	}
}

// TestResumeRejections: resume is nacked — without killing the
// connection — for invalid consumer names, on brokers without
// durability, for a second resume on one connection, and while another
// connection holds the consumer.
func TestResumeRejections(t *testing.T) {
	t.Run("no log dir", func(t *testing.T) {
		_, addr := startServer(t)
		c, _ := durableDial(t, addr, ClientOptions{})
		if _, err := c.Resume("x", 0); err == nil || !strings.Contains(err.Error(), "disabled") {
			t.Fatalf("resume without durability: %v", err)
		}
		if err := c.Publish(expr.MustEvent(expr.P(1, 1))); err != nil {
			t.Fatalf("connection died after nack: %v", err)
		}
	})
	t.Run("invalid names", func(t *testing.T) {
		dir := t.TempDir()
		_, addr, _ := startDurableServer(t, dir)
		c, _ := durableDial(t, addr, ClientOptions{})
		for _, name := range []string{"", ".hidden", "a/b", "has space", strings.Repeat("x", 200)} {
			if _, err := c.Resume(name, 0); err == nil {
				t.Fatalf("resume accepted invalid name %q", name)
			}
		}
	})
	t.Run("double resume and busy", func(t *testing.T) {
		dir := t.TempDir()
		_, addr, _ := startDurableServer(t, dir)
		c1, _ := durableDial(t, addr, ClientOptions{})
		if _, err := c1.Resume("solo", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c1.Resume("other", 0); err == nil || !strings.Contains(err.Error(), "already resumed") {
			t.Fatalf("second resume on one connection: %v", err)
		}
		c2, _ := durableDial(t, addr, ClientOptions{})
		if _, err := c2.Resume("solo", 0); err == nil || !strings.Contains(err.Error(), "already attached") {
			t.Fatalf("busy consumer resume: %v", err)
		}
		// Once the holder disconnects, the successor attaches.
		c1.Close()
		waitFor(t, "consumer released", func() bool {
			c3, _ := durableDial(t, addr, ClientOptions{})
			defer c3.Close()
			_, err := c3.Resume("solo", 0)
			return err == nil
		})
	})
}

// TestSessionDurableResume: a Session with a Consumer identity rides a
// broker restart — it reconnects, resumes its consumer past everything
// it already saw (no duplicate delivery of offset 0), and new matches
// keep flowing durably with continuous offsets.
func TestSessionDurableResume(t *testing.T) {
	seed := faultSeed(t)
	dir := t.TempDir()
	srv1, addr1, _ := startDurableServer(t, dir)

	var mu sync.Mutex
	var offs []uint64
	var addr addrBox
	addr.store(addr1)
	sess, err := DialSession(addr1, SessionConfig{
		Consumer:   "sess",
		Seed:       seed,
		MinBackoff: 5 * time.Millisecond,
		Dial:       func() (net.Conn, error) { return net.Dial("tcp", addr.load()) },
		Client: ClientOptions{
			OnDurable: func(off uint64, ev *expr.Event) {
				mu.Lock()
				offs = append(offs, off)
				mu.Unlock()
			},
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(expr.MustEvent(expr.P(1, 1))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first durable delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(offs) >= 1
	})
	pub.Close()
	srv1.Close()

	_, addr2, _ := startDurableServer(t, dir)
	addr.store(addr2)
	waitFor(t, "session reconnected", func() bool { return sess.State() == SessionConnected })
	pub2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer pub2.Close()
	if err := pub2.Publish(expr.MustEvent(expr.P(1, 1))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "durable delivery after restart", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(offs) >= 2
	})
	mu.Lock()
	defer mu.Unlock()
	if offs[0] != 0 || offs[len(offs)-1] != 1 {
		t.Fatalf("offsets across restart = %v, want [0 1]", offs)
	}
	if len(offs) != 2 {
		t.Fatalf("duplicate deliveries across restart: %v", offs)
	}
}

// addrBox swaps the dial target between broker incarnations.
type addrBox struct {
	mu sync.Mutex
	v  string
}

func (a *addrBox) store(s string) { a.mu.Lock(); a.v = s; a.mu.Unlock() }
func (a *addrBox) load() string   { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
