package broker

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

// newTestConn registers a synthetic connection on srv with a bounded
// outbox and no writer goroutine, so outbox occupancy is fully under
// the test's control.
func newTestConn(t *testing.T, srv *Server, outboxCap int) *conn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	c := &conn{
		s:        srv,
		nc:       a,
		outbox:   make(chan []byte, outboxCap),
		done:     make(chan struct{}),
		byClient: make(map[uint64]expr.ID),
	}
	srv.mu.Lock()
	srv.conns[c] = struct{}{}
	srv.mu.Unlock()
	return c
}

// subscribeDirect installs an engine subscription owned by c, the way
// handleSubscribe would.
func subscribeDirect(t *testing.T, eng *apcm.Engine, srv *Server, c *conn, clientID uint64) {
	t.Helper()
	engID := eng.NewID()
	x := expr.MustNew(expr.ID(engID), expr.Ge(1, 0))
	if err := eng.Subscribe(x); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	srv.subs[engID] = &subscriber{c: c, clientID: clientID}
	srv.mu.Unlock()
}

// TestDeliveredCountsOnlyEnqueuedFrames is the regression test for the
// delivered-count inflation bug: handlePublish used to increment the
// delivered counter before knowing whether the frame was accepted, so
// frames dropped on a stalled consumer were still counted as delivered.
func TestDeliveredCountsOnlyEnqueuedFrames(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	srv := NewServer(eng)
	srv.Logf = t.Logf
	srv.SlowConsumerTimeout = 50 * time.Millisecond

	// The stalled consumer: outbox capacity 1, already full, nothing
	// draining it.
	stalled := newTestConn(t, srv, 1)
	if !stalled.send([]byte{msgPong}) {
		t.Fatal("seed frame not enqueued into an empty outbox")
	}
	subscribeDirect(t, eng, srv, stalled, 1)

	pub := newTestConn(t, srv, 4)
	body := expr.AppendEvent(nil, expr.MustEvent(expr.P(1, 2)))
	if err := pub.handlePublish(body); err != nil {
		t.Fatal(err)
	}

	// The frame was dropped (consumer stalled past the timeout): it must
	// not be counted as delivered.
	if _, del := srv.Stats(); del != 0 {
		t.Fatalf("delivered = %d for a frame that never reached the outbox, want 0", del)
	}
	if srv.SlowConsumerDrops() != 1 {
		t.Fatalf("SlowConsumerDrops = %d, want 1", srv.SlowConsumerDrops())
	}
	select {
	case <-stalled.done:
	default:
		t.Fatal("stalled consumer not shut down after the drop")
	}
	// And send reports the drop to its caller.
	if stalled.send([]byte{msgPong}) {
		t.Fatal("send on a dropped connection reported the frame enqueued")
	}
}

// TestDeliveredCountsEnqueuedFrames is the positive control: a frame
// that does fit the outbox is counted.
func TestDeliveredCountsEnqueuedFrames(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	srv := NewServer(eng)
	srv.Logf = t.Logf

	healthy := newTestConn(t, srv, 4)
	subscribeDirect(t, eng, srv, healthy, 1)
	pub := newTestConn(t, srv, 4)
	body := expr.AppendEvent(nil, expr.MustEvent(expr.P(1, 2)))
	if err := pub.handlePublish(body); err != nil {
		t.Fatal(err)
	}
	if _, del := srv.Stats(); del != 1 {
		t.Fatalf("delivered = %d, want 1", del)
	}
	select {
	case frame := <-healthy.outbox:
		if frame[0] != msgMatch {
			t.Fatalf("outbox holds %q frame, want match", frame[0])
		}
	default:
		t.Fatal("no frame enqueued for the healthy consumer")
	}
}

// TestClientFailsOnAckIDMismatch is the regression test for the ack
// desync bug: an acknowledgement carrying the wrong id used to be
// returned as the current request's answer, silently attributing every
// later ack to the wrong request. The connection must fail instead.
func TestClientFailsOnAckIDMismatch(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()

	srvDone := make(chan struct{})
	go func() {
		defer close(srvDone)
		f, err := readFrame(b, nil)
		if err != nil || f[0] != msgHello {
			t.Errorf("expected client hello, got %v (%v)", f, err)
			return
		}
		if err := writeFrame(b, helloFrame()); err != nil {
			t.Errorf("hello reply: %v", err)
			return
		}
		f, err = readFrame(b, f)
		if err != nil || f[0] != msgSubscribe {
			t.Errorf("expected subscribe, got %v (%v)", f, err)
			return
		}
		// Acknowledge an id the client never asked about.
		writeFrame(b, appendUvarint([]byte{msgAck}, 99))
	}()

	c := NewClientOpts(a, ClientOptions{PingInterval: -1})
	defer c.Close()
	err := c.Subscribe(expr.MustNew(5, expr.Eq(1, 1)), func(*expr.Event) {})
	if err == nil {
		t.Fatal("mismatched acknowledgement accepted as the request's answer")
	}
	if !strings.Contains(err.Error(), "desynchronized") {
		t.Fatalf("error %q does not name the desync", err)
	}
	// The connection is terminally failed, not limping along.
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("connection not failed after ack desync")
	}
	if c.Err() == nil {
		t.Fatal("Err() nil after ack desync")
	}
	if err := c.Publish(expr.MustEvent(expr.P(1, 1))); err == nil {
		t.Fatal("publish succeeded on a desynchronized connection")
	}
	<-srvDone
}
