package broker

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/commitlog"
	"github.com/streammatch/apcm/internal/faultnet"
	"github.com/streammatch/apcm/metrics"
)

// startReplServer runs a durable broker tuned for fast replication
// tests: small segments so bulk catch-up has sealed segments to ship,
// tight heartbeats so failover happens in test time.
func startReplServer(t *testing.T, dir string, tune func(*Server)) (*Server, string) {
	t.Helper()
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(eng)
	s.Logf = t.Logf
	s.LogDir = dir
	s.Log = commitlog.Config{SegmentBytes: 512, FlushInterval: 200 * time.Microsecond}
	s.Metrics = metrics.New()
	s.ReplHeartbeat = 10 * time.Millisecond
	s.ReplTimeout = 400 * time.Millisecond
	if tune != nil {
		tune(s)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() { s.Close(); eng.Close() })
	waitFor(t, "repl server ready", func() bool {
		for _, v := range s.Metrics.Snapshot() {
			if v.Name == "apcm_broker_log_segments" {
				return true
			}
		}
		return false
	})
	return s, ln.Addr().String()
}

// attachConsumer subscribes and resumes a durable consumer on addr and
// returns the client plus its delivery recorder.
func attachConsumer(t *testing.T, addr, name string) (*Client, *crashRecorder) {
	t.Helper()
	rec := &crashRecorder{}
	c, _ := durableDial(t, addr, ClientOptions{OnDurable: rec.onDurable})
	if err := c.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resume(name, 0); err != nil {
		t.Fatal(err)
	}
	return c, rec
}

// TestReplicationCatchUpAndLiveTail: a follower started against a
// leader with history catches up (bulk segment shipping for the sealed
// prefix) and then tracks the live tail batch by batch, ending with a
// byte-identical record stream and the leader's consumer offsets.
func TestReplicationCatchUpAndLiveTail(t *testing.T) {
	leader, lAddr := startReplServer(t, t.TempDir(), nil)
	c, rec := attachConsumer(t, lAddr, "repl")
	const phase1 = 30
	for seq := 0; seq < phase1; seq++ {
		if err := c.Publish(crashEvent(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "phase-1 delivery", func() bool {
		offs, _ := rec.snapshot()
		return len(offs) >= phase1
	})

	follower, _ := startReplServer(t, t.TempDir(), func(s *Server) {
		s.Follow = lAddr
		s.NodeID = "follower-1"
	})
	waitFor(t, "follower catch-up", func() bool {
		return follower.log.NextOffset() == uint64(phase1)
	})
	if n := leader.replSegmentsShipped.Load(); n == 0 {
		t.Fatalf("catch-up over %d records in 512-byte segments shipped no sealed segments", phase1)
	}

	// Live tail: new publishes stream as raw batches.
	const phase2 = 10
	for seq := phase1; seq < phase1+phase2; seq++ {
		if err := c.Publish(crashEvent(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "follower live tail", func() bool {
		return follower.log.NextOffset() == uint64(phase1+phase2)
	})
	if n := leader.replBatchesSent.Load(); n == 0 {
		t.Fatal("live tail shipped no batches")
	}

	// The follower's records are the leader's, verbatim.
	var seqs []int
	err := follower.log.Read(0, func(off uint64, recB []byte) error {
		name, tail, err := decodeConsumerRecord(recB)
		if err != nil {
			return err
		}
		if name != "repl" {
			return nil
		}
		n, rest, err := readUvarint(tail)
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			if _, rest, err = readUvarint(rest); err != nil {
				return err
			}
		}
		ev, _, err := expr.DecodeEvent(rest)
		if err != nil {
			return err
		}
		seqs = append(seqs, eventSeq(ev))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != phase1+phase2 {
		t.Fatalf("follower log holds %d records, want %d", len(seqs), phase1+phase2)
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("follower record %d has seq %d", i, s)
		}
	}

	// Consumer offsets ship too: the client auto-acks, the leader
	// journals, the 'J' frames land on the follower's store.
	waitFor(t, "offset journal shipping", func() bool {
		v, ok := follower.offsets.Get("repl")
		return ok && v == uint64(phase1+phase2)
	})
	if lead, foll := leader.Role(), follower.Role(); lead != "leader" || foll != "follower" {
		t.Fatalf("roles = %s/%s, want leader/follower", lead, foll)
	}
	if e := follower.Epoch(); e != 0 {
		t.Fatalf("epoch advanced to %d without a failover", e)
	}
}

// TestFollowerRejectsClientOps: a follower closes client connections
// that try to subscribe — without a nack frame, so sessions treat it as
// a transport failure and rotate to the leader.
func TestFollowerRejectsClientOps(t *testing.T) {
	_, lAddr := startReplServer(t, t.TempDir(), nil)
	follower, fAddr := startReplServer(t, t.TempDir(), func(s *Server) { s.Follow = lAddr })
	waitFor(t, "follower attached", func() bool {
		_, ok := follower.log.Replicated()
		_ = ok
		return follower.Role() == "follower"
	})
	nc, err := net.Dial("tcp", fAddr)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClientOpts(nc, ClientOptions{})
	defer cl.Close()
	err = cl.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {})
	if err == nil {
		t.Fatal("subscribe on a follower succeeded")
	}
	if !isTransportErr(cl, err) {
		t.Fatalf("follower rejected with a nack (%v); must close without one so sessions fail over", err)
	}
}

// TestLeaderRetentionClampedByFollower: an attached follower pins the
// leader's retention floor — segments the follower still needs survive
// even when size retention wants them gone.
func TestLeaderRetentionClampedByFollower(t *testing.T) {
	leader, lAddr := startReplServer(t, t.TempDir(), func(s *Server) {
		s.Log.RetainBytes = 1024 // aggressive: a few 512-byte segments
	})
	// The replica attaches at offset 0 and never acks: a raw connection
	// that handshakes and then sits silent (pinging to stay alive).
	nc, err := net.Dial("tcp", lAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := writeFrame(nc, helloFrame()); err != nil {
		t.Fatal(err)
	}
	hello := appendUvarint([]byte{msgReplHello}, 0)
	hello = appendUvarint(hello, 0)
	hello = append(hello, "pinned"...)
	if err := writeFrame(nc, hello); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replica attached", func() bool {
		_, ok := leader.log.Replicated()
		return ok
	})
	go func() { // drain leader frames so its outbox never stalls
		var buf []byte
		for {
			frame, err := readFrame(nc, buf)
			if err != nil {
				return
			}
			buf = frame
		}
	}()

	c, rec := attachConsumer(t, lAddr, "pin")
	const total = 60
	for seq := 0; seq < total; seq++ {
		if err := c.Publish(crashEvent(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "delivery", func() bool {
		offs, _ := rec.snapshot()
		return len(offs) >= total
	})
	// Retention would have deleted the oldest segments by now; the
	// unacknowledged replica clamps the floor at 0.
	if first := leader.log.FirstOffset(); first != 0 {
		t.Fatalf("retention deleted up to offset %d despite an attached replica at 0", first)
	}
}

// replDialer wraps the follower's replication dials in faultnet so a
// test can impose an asymmetric partition on the live connection.
type replDialer struct {
	mu  sync.Mutex
	cur *faultnet.Conn
}

func (d *replDialer) dial(addr string) (net.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	fc := faultnet.Wrap(nc, faultnet.Options{})
	d.mu.Lock()
	d.cur = fc
	d.mu.Unlock()
	return fc, nil
}

func (d *replDialer) conn() *faultnet.Conn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cur
}

// TestAsymmetricPartitionFencesStaleLeader is the split-brain schedule:
// the leader's frames toward the follower are blackholed while the
// follower→leader direction keeps flowing. The follower promotes on
// silence, and its 'X' fence — which the asymmetry still delivers —
// terminates the stale leader before a second regime can diverge.
func TestAsymmetricPartitionFencesStaleLeader(t *testing.T) {
	leader, lAddr := startReplServer(t, t.TempDir(), nil)
	dialer := &replDialer{}
	follower, _ := startReplServer(t, t.TempDir(), func(s *Server) {
		s.Follow = lAddr
		s.NodeID = "f1"
		s.ReplDial = dialer.dial
	})
	c, rec := attachConsumer(t, lAddr, "split")
	for seq := 0; seq < 10; seq++ {
		if err := c.Publish(crashEvent(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "replicated to follower", func() bool {
		return follower.log.NextOffset() == 10
	})

	// One-way partition: the follower stops hearing the leader.
	waitFor(t, "repl conn wrapped", func() bool { return dialer.conn() != nil })
	dialer.conn().BlackholeIn()

	waitFor(t, "follower promotion", func() bool { return follower.Role() == "leader" })
	if e := follower.Epoch(); e < 1 {
		t.Fatalf("promoted follower at epoch %d, want >= 1", e)
	}
	at, ok := follower.PromotedAt()
	if !ok || at != 10 {
		t.Fatalf("PromotedAt = %d,%v, want 10,true", at, ok)
	}
	// The fence flows follower→leader, which the partition spares.
	waitFor(t, "stale leader fenced", func() bool { return leader.Role() == "fenced" })
	if le, fe := leader.Epoch(), follower.Epoch(); le != fe {
		t.Fatalf("fenced leader at epoch %d, promoted follower at %d", le, fe)
	}
	// The fenced node rejects clients exactly like a follower.
	if err := c.Publish(crashEvent(99)); err == nil {
		// Publish is fire-and-forget; the rejection lands as a closed
		// connection on the next read. Wait for the client to notice.
		waitFor(t, "client dropped by fenced leader", func() bool { return c.Err() != nil })
	}
	_ = rec
}

// TestReplFailoverEndToEnd is the acceptance scenario: a -repl-sync
// leader dies mid-stream and a durable consumer on a multi-address
// session resumes on the promoted follower without losing anything it
// was ever delivered or anything committed after failover.
func TestReplFailoverEndToEnd(t *testing.T) {
	leader, lAddr := startReplServer(t, t.TempDir(), func(s *Server) { s.ReplSync = true })
	follower, fAddr := startReplServer(t, t.TempDir(), func(s *Server) {
		s.Follow = lAddr
		s.NodeID = "standby"
	})
	waitFor(t, "follower attached", func() bool {
		_, ok := leader.log.Replicated()
		return ok
	})

	var mu sync.Mutex
	gotSeqs := make(map[int]bool)
	gotOffs := make(map[uint64]bool)
	sess, err := DialSessionMulti([]string{lAddr, fAddr}, SessionConfig{
		Consumer:   "e2e",
		Seed:       1,
		MinBackoff: 10 * time.Millisecond,
		Logf:       t.Logf,
		Client: ClientOptions{OnDurable: func(off uint64, ev *expr.Event) {
			mu.Lock()
			gotSeqs[eventSeq(ev)] = true
			gotOffs[off] = true
			mu.Unlock()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	received := func(n int) bool {
		mu.Lock()
		defer mu.Unlock()
		return len(gotSeqs) >= n
	}

	const phase1 = 20
	for seq := 0; seq < phase1; seq++ {
		if err := sess.Publish(crashEvent(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "phase-1 delivery", func() bool { return received(phase1) })
	// -repl-sync: everything delivered is already on the follower.
	repl, ok := leader.log.Replicated()
	if !ok || repl < phase1 {
		t.Fatalf("replicated watermark %d,%v after %d repl-sync deliveries", repl, ok, phase1)
	}

	// Kill the leader mid-stream; the follower promotes and the session
	// rotates to it.
	leader.Close()
	waitFor(t, "promotion", func() bool { return follower.Role() == "leader" })

	const phase2 = 20
	for seq := phase1; seq < phase1+phase2; seq++ {
		if err := sess.Publish(crashEvent(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "phase-2 delivery on the promoted follower", func() bool {
		return received(phase1 + phase2)
	})

	mu.Lock()
	defer mu.Unlock()
	for seq := 0; seq < phase1+phase2; seq++ {
		if !gotSeqs[seq] {
			t.Fatalf("event seq %d lost across failover", seq)
		}
	}
	// Gap-free offsets: the session saw a contiguous offset range (the
	// follower's log is the leader's verbatim prefix plus its own
	// appends, so offsets line up across the failover).
	var max uint64
	for off := range gotOffs {
		if off > max {
			max = off
		}
	}
	for off := uint64(0); off <= max; off++ {
		if !gotOffs[off] {
			t.Fatalf("offset %d missing from the delivered stream (gap across failover)", off)
		}
	}
	if sess.Reconnects() == 0 {
		t.Fatal("session never reconnected; failover did not exercise rotation")
	}
}
