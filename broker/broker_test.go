package broker

import (
	"encoding/binary"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

// startServer returns a running broker on loopback and its address.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(eng)
	s.Logf = t.Logf
	go func() {
		if err := s.Serve(ln); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() { s.Close(); eng.Close() })
	return s, ln.Addr().String()
}

// rawHello performs the client side of the version handshake on a raw
// connection: sends hello, consumes the server's hello reply.
func rawHello(t *testing.T, nc net.Conn) {
	t.Helper()
	if err := writeFrame(nc, helloFrame()); err != nil {
		t.Fatal(err)
	}
	reply, err := readFrame(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != 2 || reply[0] != msgHello || reply[1] != ProtocolVersion {
		t.Fatalf("server hello = %v", reply)
	}
}

// recvEvent waits for one event on ch.
func recvEvent(t *testing.T, ch <-chan *expr.Event) *expr.Event {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
		return nil
	}
}

func TestSubscribePublishDeliver(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got := make(chan *expr.Event, 16)
	sub := expr.MustNew(1, expr.Le(1, 100), expr.Eq(2, 7))
	if err := c.Subscribe(sub, func(ev *expr.Event) { got <- ev }); err != nil {
		t.Fatal(err)
	}

	match := expr.MustEvent(expr.P(1, 50), expr.P(2, 7))
	miss := expr.MustEvent(expr.P(1, 500), expr.P(2, 7))
	if err := c.Publish(miss); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(match); err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, got)
	if ev.String() != match.String() {
		t.Fatalf("delivered %s, want %s", ev, match)
	}
	select {
	case ev := <-got:
		t.Fatalf("unexpected extra delivery %s", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCrossClientDelivery(t *testing.T) {
	s, addr := startServer(t)
	subC, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer subC.Close()
	pubC, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pubC.Close()

	got := make(chan *expr.Event, 16)
	if err := subC.Subscribe(expr.MustNew(9, expr.Eq(1, 1)), func(ev *expr.Event) { got <- ev }); err != nil {
		t.Fatal(err)
	}
	if err := pubC.Publish(expr.MustEvent(expr.P(1, 1))); err != nil {
		t.Fatal(err)
	}
	recvEvent(t, got)
	pub, del := s.Stats()
	if pub != 1 || del != 1 {
		t.Fatalf("Stats = %d published, %d delivered", pub, del)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make(chan *expr.Event, 16)
	if err := c.Subscribe(expr.MustNew(3, expr.Eq(1, 1)), func(ev *expr.Event) { got <- ev }); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(expr.MustEvent(expr.P(1, 1))); err != nil {
		t.Fatal(err)
	}
	recvEvent(t, got)
	if err := c.Unsubscribe(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(expr.MustEvent(expr.P(1, 1))); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("delivery after unsubscribe")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestUnsubscribeUnknownErrors(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Unsubscribe(42); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("expected unknown-id error, got %v", err)
	}
}

func TestDuplicateClientIDRejected(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := func(*expr.Event) {}
	if err := c.Subscribe(expr.MustNew(5, expr.Eq(1, 1)), h); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(expr.MustNew(5, expr.Eq(1, 2)), h); err == nil {
		t.Fatal("duplicate client id accepted")
	}
	if err := c.Subscribe(expr.MustNew(6, expr.Eq(1, 2)), nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestDisconnectCleansUpSubscriptions(t *testing.T) {
	s, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	if s.eng.Len() != 1 {
		t.Fatalf("engine Len = %d", s.eng.Len())
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.eng.Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.eng.Len() != 0 {
		t.Fatal("subscriptions not cleaned up after disconnect")
	}
}

func TestMalformedFramesDropConnection(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
	}{
		{"unknown type", []byte{'Z', 1, 2, 3}},
		{"truncated subscribe", []byte{msgSubscribe, 0xff}},
		{"truncated publish", []byte{msgPublish, 0x05}},
		{"empty publish", []byte{msgPublish}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startServer(t)
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer nc.Close()
			rawHello(t, nc)
			if err := writeFrame(nc, tc.frame); err != nil {
				t.Fatal(err)
			}
			// The server must close the connection: the next read returns EOF.
			nc.SetReadDeadline(time.Now().Add(5 * time.Second))
			buf := make([]byte, 1)
			if _, err := nc.Read(buf); err == nil {
				t.Fatal("connection survived malformed frame")
			}
		})
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	_, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("connection survived oversize frame header")
	}
}

func TestZeroLengthFrameRejected(t *testing.T) {
	_, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("connection survived zero-length frame")
	}
}

func TestManySubscribersFanout(t *testing.T) {
	_, addr := startServer(t)
	const n = 8
	var wg sync.WaitGroup
	clients := make([]*Client, n)
	received := make([]chan *expr.Event, n)
	for i := 0; i < n; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		received[i] = make(chan *expr.Event, 4)
		ch := received[i]
		if err := c.Subscribe(expr.MustNew(1, expr.Ge(1, 0)), func(ev *expr.Event) { ch <- ev }); err != nil {
			t.Fatal(err)
		}
	}
	if err := clients[0].Publish(expr.MustEvent(expr.P(1, 5))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recvEvent(t, received[i])
		}(i)
	}
	wg.Wait()
}

func TestPublishAfterClientClose(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Publish(expr.MustEvent(expr.P(1, 1))); err == nil {
		t.Fatal("publish after close succeeded")
	}
	if err := c.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err == nil {
		t.Fatal("subscribe after close succeeded")
	}
}

func TestServerCloseReleasesClients(t *testing.T) {
	s, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The client's read loop should observe the close promptly; a
	// subsequent request must not hang.
	done := make(chan error, 1)
	go func() { done <- c.Unsubscribe(1) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("request succeeded against closed server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request hung after server close")
	}
}
