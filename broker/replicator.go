package broker

import (
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streammatch/apcm/internal/commitlog"
)

// maxReplTransfer bounds a reassembled 'G' segment or 'b' batch
// transfer on the follower; anything larger indicates a corrupt or
// misconfigured leader (segments are SegmentBytes-sized).
const maxReplTransfer = 1 << 28

// replicator is the follower side of replication: a goroutine that
// dials the leader named by Server.Follow, handshakes with 'F', ingests
// the shipped log verbatim, acknowledges with 'B', and promotes this
// server to leader when the leader stays silent past ReplTimeout.
//
// It deliberately speaks raw frames on its own net.Conn instead of
// reusing Client: replication frames are chunked bulk transfers with
// their own liveness rules, and a follower must never interpret leader
// loss as anything but a promotion trigger.
type replicator struct {
	s *Server
	// lastContact is the UnixNano of the last frame received from the
	// leader; dial failures and silent-but-open connections both count
	// against it, so the promotion clock measures leader usefulness,
	// not TCP reachability.
	lastContact atomic.Int64
	// promoteMu serializes promotion attempts from the liveness
	// monitor, the dial loop and the stale-leader handshake path.
	promoteMu sync.Mutex
}

func (r *replicator) touch()             { r.lastContact.Store(time.Now().UnixNano()) }
func (r *replicator) contact() time.Time { return time.Unix(0, r.lastContact.Load()) }

// runReplicator is the follower supervisor: dial, follow until the
// connection dies, promote when the leader has been silent too long.
// Exits when the server closes or this node stops being a follower.
func (s *Server) runReplicator() {
	defer close(s.replDone)
	r := &replicator{s: s}
	r.touch()
	hb, timeout := s.replHeartbeat(), s.replTimeout()
	for s.role.Load() == roleFollower {
		select {
		case <-s.replStop:
			return
		default:
		}
		nc, err := s.dialLeader()
		if err != nil {
			if time.Since(r.contact()) > timeout {
				r.promoteAndFence(nil, fmt.Sprintf("leader unreachable: %v", err))
				return
			}
			select {
			case <-s.replStop:
				return
			case <-time.After(hb):
			}
			continue
		}
		r.followOnce(nc)
		nc.Close()
		if s.role.Load() != roleFollower {
			return
		}
		if time.Since(r.contact()) > timeout {
			r.promoteAndFence(nil, "leader connection lost and silent past timeout")
			return
		}
		select {
		case <-s.replStop:
			return
		case <-time.After(hb):
		}
	}
}

func (s *Server) dialLeader() (net.Conn, error) {
	if s.ReplDial != nil {
		return s.ReplDial(s.Follow)
	}
	return net.DialTimeout("tcp", s.Follow, s.replTimeout())
}

// adoptEpoch durably adopts a higher epoch observed from the leader,
// persisting before the in-memory bump so a crash cannot resurrect the
// old epoch. Reports whether the epoch is now current.
func (r *replicator) adoptEpoch(e uint64) bool {
	s := r.s
	if e <= s.epoch.Load() {
		return true
	}
	if err := commitlog.StoreEpoch(s.LogDir, e); err != nil {
		s.Logf("broker: persisting epoch %d: %v", e, err)
		return false
	}
	s.epoch.Store(e)
	return true
}

// promote turns this follower into the leader: the bumped epoch is
// persisted first (the fencing invariant — acting on an unpersisted
// epoch could resurrect a duplicate leader after a crash), then the
// promotion offset is recorded and the role flips, at which point the
// frame dispatcher starts accepting client operations.
func (r *replicator) promote(reason string) bool {
	r.promoteMu.Lock()
	defer r.promoteMu.Unlock()
	s := r.s
	if s.role.Load() != roleFollower {
		return false
	}
	newEpoch := s.epoch.Load() + 1
	if err := commitlog.StoreEpoch(s.LogDir, newEpoch); err != nil {
		s.Logf("broker: promotion aborted: persisting epoch %d: %v", newEpoch, err)
		return false
	}
	s.epoch.Store(newEpoch)
	s.promotedAt.Store(int64(s.log.NextOffset()))
	s.promoted.Store(true)
	s.promotions.Add(1)
	s.role.Store(roleLeader)
	s.Logf("broker: promoted to leader at epoch %d, offset %d (%s)", newEpoch, s.log.NextOffset(), reason)
	return true
}

// promoteAndFence promotes and, when a connection to the old leader is
// still open, sends a best-effort 'X' fence carrying the new epoch.
// Under an asymmetric partition (leader's frames blackholed toward us)
// the follower→leader direction may still flow, which is exactly what
// fences the stale leader before it diverges further.
func (r *replicator) promoteAndFence(writeF func([]byte) error, reason string) {
	if !r.promote(reason) {
		return
	}
	if writeF == nil {
		return
	}
	if err := writeF(appendUvarint([]byte{msgFence}, r.s.epoch.Load())); err != nil {
		return
	}
	// Linger one heartbeat before the caller closes the connection. The
	// fence may still be sitting in the stale leader's receive queue, and
	// closing immediately races its read loop against its write loop: a
	// pong or journal frame hitting our closed socket errors the
	// connection on its side and tears down its reader before the 'X' is
	// dequeued. The fence is best-effort, but losing it to our own close
	// is avoidable; once the leader processes it, fenceSelf closes the
	// connection from its end and the linger just runs out quietly.
	time.Sleep(r.s.replHeartbeat())
}

// followOnce runs one replication connection to completion: handshake,
// ingest loop, liveness monitor. Returns when the connection dies for
// any reason; the supervisor decides whether to re-dial or promote.
func (r *replicator) followOnce(nc net.Conn) {
	s := r.s
	hb, timeout := s.replHeartbeat(), s.replTimeout()
	var wmu sync.Mutex
	writeF := func(frame []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		nc.SetWriteDeadline(time.Now().Add(timeout))
		return writeFrame(nc, frame)
	}
	// Version hello and repl-hello are pipelined: the server processes
	// frames in order, so the 'F' is handled on a fully negotiated v3
	// connection; the server's hello reply arrives in the read loop.
	if err := writeF(helloFrame()); err != nil {
		return
	}
	hello := appendUvarint([]byte{msgReplHello}, s.epoch.Load())
	hello = appendUvarint(hello, s.log.NextOffset())
	hello = append(hello, s.NodeID...)
	if err := writeF(hello); err != nil {
		return
	}

	// Liveness monitor and pinger: promote when the leader goes silent
	// past the timeout even though the connection is still open (the
	// asymmetric-partition case — our reads are blackholed while our
	// writes flow), and unblock the read loop on server close.
	stopMon := make(chan struct{})
	defer close(stopMon)
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-s.replStop:
				nc.Close()
				return
			case <-stopMon:
				return
			case <-t.C:
				if time.Since(r.contact()) > timeout {
					r.promoteAndFence(writeF, "leader silent past timeout")
					nc.Close()
					return
				}
				writeF([]byte{msgPing})
			}
		}
	}()

	var buf []byte
	var segBuf, batchBuf []byte
	welcomed := false
	for {
		frame, err := readFrame(nc, buf)
		if err != nil {
			return
		}
		buf = frame
		r.touch()
		switch frame[0] {
		case msgHello:
			if len(frame) != 2 || frame[1] < 3 {
				s.Logf("broker: replication needs protocol 3, leader %s negotiated %v", s.Follow, frame[1:])
				return
			}
		case msgReplWelcome:
			e, rest, err := readUvarint(frame[1:])
			if err != nil {
				s.Logf("broker: bad repl-welcome from %s", s.Follow)
				return
			}
			leaderNext, rest, err := readUvarint(rest)
			if err != nil {
				s.Logf("broker: bad repl-welcome from %s", s.Follow)
				return
			}
			start, _, err := readUvarint(rest)
			if err != nil {
				s.Logf("broker: bad repl-welcome from %s", s.Follow)
				return
			}
			if ours := s.epoch.Load(); e < ours {
				// The "leader" is behind our persisted epoch: a stale
				// leader from before our last promotion-adjacent epoch
				// bump. Take over and fence it.
				r.promoteAndFence(writeF, fmt.Sprintf("leader at stale epoch %d (ours %d)", e, ours))
				return
			} else if e > ours && !r.adoptEpoch(e) {
				return
			}
			next := s.log.NextOffset()
			if start > next {
				// The leader retained away everything below start; a
				// pristine follower bootstraps there.
				if err := s.log.ResetTo(start); err != nil {
					s.Logf("broker: cannot bootstrap at offset %d (leader retained past our log): %v", start, err)
					return
				}
			} else if start < next {
				s.Logf("broker: leader offered start %d below our next offset %d", start, next)
				return
			}
			welcomed = true
			s.Logf("broker: following %s from offset %d (leader next %d, epoch %d)", s.Follow, start, leaderNext, s.epoch.Load())
		case msgReplSegment, msgReplBatch:
			if !welcomed {
				s.Logf("broker: repl transfer before welcome from %s", s.Follow)
				return
			}
			flags, rest, err := readUvarint(frame[1:])
			if err != nil {
				s.Logf("broker: bad repl chunk from %s", s.Follow)
				return
			}
			tgt := &segBuf
			if frame[0] == msgReplBatch {
				tgt = &batchBuf
			}
			*tgt = append(*tgt, rest...)
			if len(*tgt) > maxReplTransfer {
				s.Logf("broker: repl transfer from %s exceeds %d bytes", s.Follow, maxReplTransfer)
				return
			}
			if flags&chunkFinal != 0 && frame[0] == msgReplBatch {
				next, err := s.log.IngestBatch(batchBuf)
				if err != nil {
					s.Logf("broker: ingesting batch from %s: %v", s.Follow, err)
					return
				}
				batchBuf = batchBuf[:0]
				s.replIngested.Add(1)
				if err := writeF(appendUvarint([]byte{msgReplAck}, next)); err != nil {
					return
				}
			}
		case msgReplSegEnd:
			base, rest, err := readUvarint(frame[1:])
			if err != nil {
				s.Logf("broker: bad segment-end from %s", s.Follow)
				return
			}
			end, rest, err := readUvarint(rest)
			if err != nil {
				s.Logf("broker: bad segment-end from %s", s.Follow)
				return
			}
			sum, _, err := readUvarint(rest)
			if err != nil {
				s.Logf("broker: bad segment-end from %s", s.Follow)
				return
			}
			if !welcomed {
				s.Logf("broker: segment-end before welcome from %s", s.Follow)
				return
			}
			if got := crc32.ChecksumIEEE(segBuf); got != uint32(sum) {
				s.Logf("broker: segment [%d,%d) from %s failed checksum", base, end, s.Follow)
				return
			}
			if next := s.log.NextOffset(); base != next {
				s.Logf("broker: segment base %d from %s, expected %d", base, s.Follow, next)
				return
			}
			if err := s.log.InstallSegment(segBuf); err != nil {
				s.Logf("broker: installing segment [%d,%d) from %s: %v", base, end, s.Follow, err)
				return
			}
			if got := s.log.NextOffset(); got != end {
				s.Logf("broker: segment from %s installed to offset %d, expected %d", s.Follow, got, end)
				return
			}
			segBuf = segBuf[:0]
			s.replIngested.Add(1)
			if err := writeF(appendUvarint([]byte{msgReplAck}, end)); err != nil {
				return
			}
		case msgReplOffsets:
			body := frame[1:]
			for len(body) > 0 {
				nlen, rest, err := readUvarint(body)
				if err != nil || uint64(len(rest)) < nlen {
					s.Logf("broker: bad repl-offsets from %s", s.Follow)
					return
				}
				name := string(rest[:nlen])
				next, rest2, err := readUvarint(rest[nlen:])
				if err != nil {
					s.Logf("broker: bad repl-offsets from %s", s.Follow)
					return
				}
				body = rest2
				if err := s.offsets.Set(name, next); err != nil {
					s.Logf("broker: persisting shipped offset for %q: %v", name, err)
				}
			}
		case msgPong:
			// Contact already counted; nothing else to do.
		case msgFence:
			e, _, err := readUvarint(frame[1:])
			if err != nil {
				s.Logf("broker: bad fence from %s", s.Follow)
				return
			}
			if e > s.epoch.Load() {
				// A follower hearing a higher epoch stays a follower: it
				// adopts the epoch and keeps trying the configured leader
				// address, which the new regime now answers for.
				if r.adoptEpoch(e) {
					s.Logf("broker: adopted epoch %d from fence by %s", e, s.Follow)
				}
			}
			return
		case msgErr:
			_, msg, err := readUvarint(frame[1:])
			if err != nil {
				return
			}
			s.Logf("broker: leader %s rejected replication: %s", s.Follow, msg)
			return
		default:
			s.Logf("broker: unexpected %q frame on replication connection to %s", frame[0], s.Follow)
			return
		}
	}
}
