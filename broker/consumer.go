package broker

import (
	"errors"
	"fmt"
	"sync"

	"github.com/streammatch/apcm/internal/commitlog"
)

// consumerState is one durable consumer identity: a name that outlives
// any single connection. At most one connection is attached at a time;
// its matched events are committed to the log before delivery, and its
// acknowledged offset persists so the next attachment resumes where the
// last one stopped.
//
// Attachment protocol: a resuming connection claims cs.c first, replays
// logged history, and only then flips cs.live. Publishers append every
// matched record under cs.mu but push it to the connection only while
// live — records appended mid-replay are picked up by the replay's
// final round, which runs under cs.mu, so the replay/live handoff
// neither loses nor needs to deduplicate deliveries.
type consumerState struct {
	s    *Server
	name string

	mu   sync.Mutex //apcm:lockrank=3
	c    *conn // claiming connection; nil when offline
	live bool  // replay finished; publishers deliver directly
}

// detach releases the consumer if c still holds it.
func (cs *consumerState) detach(c *conn) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.c == c {
		cs.c = nil
		if cs.live {
			cs.live = false
			cs.s.attachedConsumers.Add(-1)
		}
	}
}

// openLog opens the commit log and offset store when LogDir is set.
// Called from Serve before the accept loop, so every connection
// goroutine observes the fields fully initialised; they are never
// reassigned afterwards (Close closes them in place).
func (s *Server) openLog() error {
	if s.LogDir == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil || s.closed {
		return nil
	}
	cfg := s.Log
	if cfg.Metrics == nil {
		cfg.Metrics = s.Metrics
	}
	// Offsets open first: the log's retention floor callback reads the
	// consumer low-water mark (OffsetStore.Min takes only the store's
	// own lock, so calling it from under the log lock is cycle-free).
	offs, err := commitlog.OpenOffsets(s.LogDir)
	if err != nil {
		return fmt.Errorf("broker: opening offset store: %w", err)
	}
	if cfg.RetainFloor == nil {
		cfg.RetainFloor = offs.Min
	}
	l, err := commitlog.Open(s.LogDir, cfg)
	if err != nil {
		offs.Close()
		return fmt.Errorf("broker: opening commit log: %w", err)
	}
	epoch, err := commitlog.LoadEpoch(s.LogDir)
	if err != nil {
		offs.Close()
		l.Close()
		return fmt.Errorf("broker: loading replication epoch: %w", err)
	}
	s.epoch.Store(epoch)
	s.log, s.offsets = l, offs
	return nil
}

// closeLog flushes and closes the durable state (Close path).
func (s *Server) closeLog() {
	s.mu.RLock()
	l, offs := s.log, s.offsets
	s.mu.RUnlock()
	if offs != nil {
		offs.Close()
	}
	if l != nil {
		l.Close()
	}
}

// Checkpoint persists restart state: the engine's subscription table
// (when path is non-empty), every consumer's acknowledged offset, and
// the commit log's staged tail. Each failing component counts toward
// apcm_broker_checkpoint_errors_total; the first error is returned.
func (s *Server) Checkpoint(path string) error {
	var first error
	record := func(err error) {
		if err != nil {
			s.checkpointErrs.Add(1)
			if first == nil {
				first = err
			}
		}
	}
	if path != "" {
		record(s.eng.CheckpointSubscriptions(path))
	}
	if s.offsets != nil {
		record(s.offsets.Sync())
	}
	if s.log != nil {
		record(s.log.Sync())
	}
	return first
}

// appendConsumerRecord encodes and commits one delivery record:
// uvarint name length, name, then tail (uvarint n, n×uvarint client
// ids, event) — the same tail bytes the durable frame carries.
func (s *Server) appendConsumerRecord(name string, tail []byte) (uint64, error) {
	rec := appendUvarint(nil, uint64(len(name)))
	rec = append(rec, name...)
	rec = append(rec, tail...)
	return s.log.Append(rec)
}

// decodeConsumerRecord splits a logged record into its consumer name
// and delivery tail.
func decodeConsumerRecord(rec []byte) (name string, tail []byte, err error) {
	nlen, rest, err := readUvarint(rec)
	if err != nil || uint64(len(rest)) < nlen {
		return "", nil, errors.New("broker: malformed consumer record")
	}
	return string(rest[:nlen]), rest[nlen:], nil
}

// deliverDurable commits one matched delivery for cs and, if a live
// connection is attached, pushes it as a durable frame. The commit
// happens under cs.mu so it is ordered against the resume replay:
// whatever is appended before the replay's final round is replayed,
// whatever after is delivered here. Delivery counts only after the
// record is durable and the frame was accepted by the outbox.
//
//apcm:durable
func (s *Server) deliverDurable(target *conn, cs *consumerState, tail []byte, nsubs int) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	off, err := s.appendConsumerRecord(cs.name, tail)
	if err != nil {
		s.logAppendErrs.Add(1)
		s.Logf("broker: durable delivery for %q lost: %v", cs.name, err)
		return
	}
	if s.ReplSync && s.role.Load() == roleLeader {
		// delivered ⊆ committed ⊆ replicated: park until the follower
		// acknowledged this record. With no follower attached the wait
		// degrades to single-node durability rather than blocking —
		// counted, so operators can alert on the weakened guarantee.
		s.replSyncWaits.Add(1)
		if _, attached := s.log.Replicated(); !attached {
			s.replSyncDegraded.Add(1)
		} else if err := s.log.WaitReplicated(off, target.replDead); err != nil {
			s.Logf("broker: repl-sync wait for %q at offset %d: %v", cs.name, off, err)
		}
	}
	if cs.live && cs.c == target {
		frame := appendUvarint([]byte{msgDurable}, off)
		frame = append(frame, tail...)
		if target.send(frame) {
			s.delivered.Add(int64(nsubs))
		}
	}
}

func (c *conn) handleResume(body []byte) error {
	id, rest, err := readUvarint(body)
	if err != nil {
		return errors.New("bad resume")
	}
	from, rest, err := readUvarint(rest)
	if err != nil {
		return errors.New("bad resume")
	}
	name := string(rest)
	s := c.s
	if s.log == nil {
		c.nack(id, errors.New("durable delivery disabled (broker has no log dir)"))
		return nil
	}
	if !commitlog.ValidName(name) {
		c.nack(id, fmt.Errorf("invalid consumer name %q", name))
		return nil
	}
	s.mu.Lock()
	cs := s.consumers[name]
	if cs == nil {
		cs = &consumerState{s: s, name: name}
		s.consumers[name] = cs
	}
	s.mu.Unlock()
	// Publish c.consumer before claiming cs.c: shutdown reads c.consumer
	// to detach, so the claim must never outlive its visibility there.
	c.mu.Lock()
	if c.consumer != nil {
		c.mu.Unlock()
		c.nack(id, errors.New("connection already resumed a consumer"))
		return nil
	}
	c.consumer = cs
	c.mu.Unlock()
	cs.mu.Lock()
	if prev := cs.c; prev != nil {
		// A claim by a dead connection that raced past its own detach is
		// stale, not busy: steal it so the consumer can never wedge.
		select {
		case <-prev.done:
			cs.c = nil
			if cs.live {
				cs.live = false
				s.attachedConsumers.Add(-1)
			}
		default:
			cs.mu.Unlock()
			c.mu.Lock()
			c.consumer = nil
			c.mu.Unlock()
			c.nack(id, fmt.Errorf("consumer %q already attached", name))
			return nil
		}
	}
	cs.c = c
	cs.mu.Unlock()

	// Effective start: the client's request, clamped forward by the
	// persisted acknowledged offset and by retention.
	start := from
	if acked, ok := s.offsets.Get(name); ok && acked > start {
		start = acked
	}
	if first := s.log.FirstOffset(); first > start {
		start = first
	}
	s.resumes.Add(1)
	// Reply before replaying so the client learns its start offset
	// before the first durable frame.
	ok := appendUvarint([]byte{msgResumeOK}, id)
	ok = appendUvarint(ok, start)
	if !c.send(ok) {
		return errors.New("connection closed during resume")
	}
	return c.replayConsumer(cs, start)
}

// replayConsumer streams cs's logged records from start to the present
// and attaches the connection for live delivery. Catch-up rounds run
// unlocked (history can be long); the final round holds cs.mu so that,
// combined with publishers appending under cs.mu, the handoff boundary
// is exact: every record is either replayed here or pushed live.
func (c *conn) replayConsumer(cs *consumerState, start uint64) error {
	s := c.s
	pos := start
	for round := 0; round < 3; round++ {
		committed := s.log.Committed()
		if pos >= committed {
			break
		}
		if err := c.replayRange(cs.name, pos, committed); err != nil {
			return err
		}
		pos = committed
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.c != c {
		return errors.New("consumer detached during resume replay")
	}
	if committed := s.log.Committed(); pos < committed {
		if err := c.replayRange(cs.name, pos, committed); err != nil {
			return err
		}
	}
	cs.live = true
	s.attachedConsumers.Add(1)
	return nil
}

// errStopReplay bounds a replay round at the commit frontier it was
// started with.
var errStopReplay = errors.New("stop replay")

func (c *conn) replayRange(name string, from, to uint64) error {
	var sendErr error
	err := c.s.log.Read(from, func(off uint64, rec []byte) error {
		if off >= to {
			return errStopReplay
		}
		rname, tail, err := decodeConsumerRecord(rec)
		if err != nil {
			return fmt.Errorf("record %d: %w", off, err)
		}
		if rname != name {
			return nil
		}
		frame := appendUvarint([]byte{msgDurable}, off)
		frame = append(frame, tail...)
		if !c.send(frame) {
			sendErr = errors.New("connection closed during resume replay")
			return errStopReplay
		}
		c.s.resumeReplayed.Add(1)
		return nil
	})
	if sendErr != nil {
		return sendErr
	}
	if err != nil && !errors.Is(err, errStopReplay) {
		return err
	}
	return nil
}

func (c *conn) handleOffsetAck(body []byte) error {
	off, rest, err := readUvarint(body)
	if err != nil || len(rest) != 0 {
		return errors.New("bad offset-ack")
	}
	c.mu.Lock()
	cs := c.consumer
	c.mu.Unlock()
	if cs == nil {
		return errors.New("offset-ack before resume")
	}
	c.s.offsetAcks.Add(1)
	// Store the next offset; the store is monotone, so replayed or
	// reordered acks regress nothing.
	if err := c.s.offsets.Set(cs.name, off+1); err != nil {
		c.s.Logf("broker: persisting offset for %q: %v", cs.name, err)
	}
	return nil
}
