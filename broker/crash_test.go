package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/commitlog"
	"github.com/streammatch/apcm/metrics"
)

// The crash matrix proves the durability contract end to end: a broker
// is killed at a seeded point in the commit path (append staging, the
// segment write, either side of the fsync, or mid-rotation), the
// on-disk state is degraded the way a real crash degrades it
// (written-but-unsynced bytes vanish, a torn tail appears, the ack
// journal loses its tail), and a restarted broker on the same directory
// must then deliver at-least-once with exact offset resume:
//
//   - nothing the pre-crash log holds is ever lost (union of both
//     incarnations' deliveries covers it),
//   - the resuming consumer restarts exactly at its persisted
//     acknowledged offset and receives a gap-free, in-order offset
//     stream from there (duplicates across the crash are allowed, holes
//     are not),
//   - everything published after the restart is delivered durably.
//
// Schedules derive from APCM_FAULT_SEED (default 1) like the rest of
// the fault suite; a failing schedule replays with
// APCM_FAULT_SEED=<seed> go test -run 'CrashRecoveryMatrix/<name>'.

const crashSegmentBytes = 512 // small segments so rotation is in play

var errInjectedCrash = errors.New("injected crash")

// crashPlan is one seeded schedule.
type crashPlan struct {
	point           commitlog.Failpoint
	nth             int  // crash on the nth hit of point
	phase1          int  // events published before the crash window
	phase2          int  // events published after restart
	garbageTail     bool // append garbage to the last segment post-crash
	truncateJournal bool // chop the ack journal's tail post-crash
}

func newCrashPlan(rng *rand.Rand) crashPlan {
	points := []commitlog.Failpoint{
		commitlog.FpAppend, commitlog.FpWrite, commitlog.FpPreSync,
		commitlog.FpPostSync, commitlog.FpRotate,
	}
	return crashPlan{
		point:           points[rng.Intn(len(points))],
		nth:             1 + rng.Intn(8),
		phase1:          8 + rng.Intn(18),
		phase2:          3 + rng.Intn(6),
		garbageTail:     rng.Intn(3) == 0,
		truncateJournal: rng.Intn(3) == 0,
	}
}

// crashRecorder accumulates durable deliveries from one incarnation.
type crashRecorder struct {
	mu   sync.Mutex
	offs []uint64
	seqs []int
}

func (r *crashRecorder) onDurable(off uint64, ev *expr.Event) {
	r.mu.Lock()
	r.offs = append(r.offs, off)
	r.seqs = append(r.seqs, eventSeq(ev))
	r.mu.Unlock()
}

func (r *crashRecorder) snapshot() ([]uint64, []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.offs...), append([]int(nil), r.seqs...)
}

// eventSeq extracts the sequence attribute (attr 2) stamped on every
// published event.
func eventSeq(ev *expr.Event) int {
	for _, p := range ev.Pairs() {
		if p.Attr == 2 {
			return int(p.Val)
		}
	}
	return -1
}

func crashEvent(seq int) *expr.Event {
	return expr.MustEvent(expr.P(1, 1), expr.P(2, expr.Value(seq)))
}

// startCrashServer runs a durable broker on dir with an optional armed
// failpoint.
func startCrashServer(t *testing.T, dir string, fp commitlog.Config) (*Server, string) {
	t.Helper()
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(eng)
	s.Logf = t.Logf
	s.LogDir = dir
	s.Log = fp
	s.Metrics = metrics.New()
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() { s.Close(); eng.Close() })
	waitFor(t, "crash server ready", func() bool {
		for _, v := range s.Metrics.Snapshot() {
			if v.Name == "apcm_broker_log_segments" {
				return true
			}
		}
		return false
	})
	return s, ln.Addr().String()
}

// groundTruth reopens the post-injection log offline and returns the
// surviving record count and the set of event sequences it holds for
// the consumer. This is the oracle: whatever recovery keeps is exactly
// what the restarted broker must (re)deliver.
func groundTruth(t *testing.T, dir, consumer string) (records uint64, seqs map[int]bool) {
	t.Helper()
	l, err := commitlog.Open(dir, commitlog.Config{SegmentBytes: crashSegmentBytes})
	if err != nil {
		t.Fatalf("ground-truth open: %v", err)
	}
	defer l.Close()
	seqs = make(map[int]bool)
	err = l.Read(0, func(off uint64, rec []byte) error {
		name, tail, err := decodeConsumerRecord(rec)
		if err != nil {
			return fmt.Errorf("record %d: %w", off, err)
		}
		if name != consumer {
			return nil
		}
		// tail = uvarint n, n×uvarint ids, event
		n, rest, err := readUvarint(tail)
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			if _, rest, err = readUvarint(rest); err != nil {
				return err
			}
		}
		ev, _, err := expr.DecodeEvent(rest)
		if err != nil {
			return err
		}
		seqs[eventSeq(ev)] = true
		return nil
	})
	if err != nil {
		t.Fatalf("ground-truth read: %v", err)
	}
	return l.NextOffset(), seqs
}

func TestCrashRecoveryMatrix(t *testing.T) {
	seed := faultSeed(t)
	schedules := 100
	if testing.Short() {
		schedules = 12
	}
	for i := 0; i < schedules; i++ {
		i := i
		t.Run(fmt.Sprintf("schedule-%03d", i), func(t *testing.T) {
			t.Parallel()
			runCrashSchedule(t, rand.New(rand.NewSource(seed+int64(i)*7919)))
		})
	}
}

func runCrashSchedule(t *testing.T, rng *rand.Rand) {
	plan := newCrashPlan(rng)
	t.Logf("plan: crash on hit %d of %v, phase1=%d phase2=%d garbage=%v truncateJournal=%v",
		plan.nth, plan.point, plan.phase1, plan.phase2, plan.garbageTail, plan.truncateJournal)
	dir := t.TempDir()
	const consumer = "crash"

	// Armed failpoint: the nth hit of the planned point fails the log
	// sticky (every later append errors), emulating the process dying
	// mid-commit. The hit's segment path and synced watermark feed the
	// post-crash state degradation below.
	var fpMu sync.Mutex
	var hits int
	var crashed bool
	var crashPath string
	var crashSynced int64
	failpoint := func(fi commitlog.FailpointInfo) error {
		fpMu.Lock()
		defer fpMu.Unlock()
		if crashed || fi.Point != plan.point {
			return nil
		}
		if hits++; hits < plan.nth {
			return nil
		}
		crashed = true
		crashPath = fi.Path
		crashSynced = fi.Synced
		return errInjectedCrash
	}

	srv1, addr1 := startCrashServer(t, dir, commitlog.Config{
		SegmentBytes:  crashSegmentBytes,
		FlushInterval: 200 * time.Microsecond,
		Failpoint:     failpoint,
	})
	rec1 := &crashRecorder{}
	c1, _ := durableDial(t, addr1, ClientOptions{OnDurable: rec1.onDurable})
	if err := c1.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Resume(consumer, 0); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < plan.phase1; seq++ {
		if err := c1.Publish(crashEvent(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// The schedule either crashes mid-stream or survives all of phase 1
	// (the nth hit never happened) — both are valid runs of the matrix.
	waitFor(t, "crash or full phase-1 delivery", func() bool {
		fpMu.Lock()
		didCrash := crashed
		fpMu.Unlock()
		if didCrash {
			return true
		}
		offs, _ := rec1.snapshot()
		return len(offs) >= plan.phase1
	})
	// Let in-flight acks drain before the kill so the persisted offset
	// is as fresh as a real shutdown race would leave it.
	time.Sleep(5 * time.Millisecond)
	c1.Close()
	srv1.Close()

	// Degrade on-disk state the way the crash would have.
	if crashed && plan.point == commitlog.FpPreSync && crashPath != "" {
		// The batch was written but the fsync never happened: the page
		// cache died with the machine.
		if err := os.Truncate(crashPath, crashSynced); err != nil {
			t.Fatal(err)
		}
	}
	if plan.garbageTail {
		last := lastSegment(t, dir)
		f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		garbage := make([]byte, 1+rng.Intn(40))
		rng.Read(garbage)
		f.Write(garbage)
		f.Close()
	}
	journal := filepath.Join(dir, "offsets", consumer+".off")
	if plan.truncateJournal {
		if st, err := os.Stat(journal); err == nil && st.Size() > 0 {
			// Chop to an arbitrary (possibly torn) length: the consumer
			// rewinds to an older acknowledged offset, never forward.
			if err := os.Truncate(journal, rng.Int63n(st.Size())); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Oracle: what survived, and where must the resume start.
	preRecords, gtSeqs := groundTruth(t, dir, consumer)
	expectedStart := uint64(0)
	if offs, err := commitlog.OpenOffsets(dir); err == nil {
		if v, ok := offs.Get(consumer); ok {
			expectedStart = v
		}
		offs.Close()
	} else {
		t.Fatal(err)
	}
	if expectedStart > preRecords {
		t.Fatalf("persisted offset %d beyond surviving log end %d: ack for a lost record", expectedStart, preRecords)
	}

	// Restart on the same directory, resume, and publish phase 2.
	_, addr2 := startCrashServer(t, dir, commitlog.Config{
		SegmentBytes:  crashSegmentBytes,
		FlushInterval: 200 * time.Microsecond,
	})
	rec2 := &crashRecorder{}
	c2, _ := durableDial(t, addr2, ClientOptions{OnDurable: rec2.onDurable})
	if err := c2.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	start, err := c2.Resume(consumer, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != expectedStart {
		t.Fatalf("resume started at %d, want persisted offset %d", start, expectedStart)
	}
	phase2Seqs := make(map[int]bool, plan.phase2)
	for i := 0; i < plan.phase2; i++ {
		seq := 1000 + i
		phase2Seqs[seq] = true
		if err := c2.Publish(crashEvent(seq)); err != nil {
			t.Fatal(err)
		}
	}
	wantTotal := int(preRecords-start) + plan.phase2
	waitFor(t, "replay and phase-2 delivery", func() bool {
		offs, _ := rec2.snapshot()
		return len(offs) >= wantTotal
	})

	offs2, seqs2 := rec2.snapshot()
	// Exact resume: a gap-free, in-order offset stream from the
	// persisted acknowledged offset through the end of phase 2.
	if len(offs2) != wantTotal {
		t.Fatalf("second incarnation delivered %d records, want %d", len(offs2), wantTotal)
	}
	for i, off := range offs2 {
		if want := start + uint64(i); off != want {
			t.Fatalf("delivery %d at offset %d, want %d (gap or reorder): %v", i, off, want, offs2)
		}
	}
	// At-least-once: every sequence the surviving log holds, and every
	// phase-2 publish, was received by some incarnation.
	_, seqs1 := rec1.snapshot()
	received := make(map[int]bool, len(seqs1)+len(seqs2))
	for _, s := range seqs1 {
		received[s] = true
	}
	for _, s := range seqs2 {
		received[s] = true
	}
	for s := range gtSeqs {
		if !received[s] {
			t.Fatalf("durable event seq %d lost across the crash", s)
		}
	}
	for s := range phase2Seqs {
		if !received[s] {
			t.Fatalf("post-restart event seq %d not delivered", s)
		}
	}
	// No fabrication: the second incarnation only delivers what the log
	// holds or what phase 2 published.
	for _, s := range seqs2 {
		if !gtSeqs[s] && !phase2Seqs[s] {
			t.Fatalf("second incarnation delivered seq %d that neither survived the crash nor was republished", s)
		}
	}
}

// lastSegment returns the path of the highest-offset segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files in %s: %v", dir, err)
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}
