package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/metrics"
)

// SessionState is the connectivity state a Session reports through
// SessionConfig.OnStateChange and State.
type SessionState int32

const (
	// SessionConnected: a live connection exists and every registered
	// subscription has been replayed onto it.
	SessionConnected SessionState = iota
	// SessionReconnecting: the connection failed; the session is
	// backing off and retrying. Publishes buffer (up to PublishBuffer).
	SessionReconnecting
	// SessionGaveUp: MaxAttempts consecutive reconnect attempts failed;
	// the session is terminally closed.
	SessionGaveUp
	// SessionClosed: Close was called.
	SessionClosed
)

func (s SessionState) String() string {
	switch s {
	case SessionConnected:
		return "connected"
	case SessionReconnecting:
		return "reconnecting"
	case SessionGaveUp:
		return "gave-up"
	case SessionClosed:
		return "closed"
	}
	return fmt.Sprintf("SessionState(%d)", int32(s))
}

// Errors returned by Session operations.
var (
	// ErrBufferFull: the publish buffer is at capacity (the broker has
	// been unreachable longer than the buffer absorbs). The event was
	// NOT queued; the caller chooses whether to drop, retry or degrade.
	ErrBufferFull = errors.New("broker: session publish buffer full")
	// ErrSessionClosed: the session was closed, or gave up reconnecting.
	ErrSessionClosed = errors.New("broker: session closed")
)

// SessionConfig tunes DialSession. The zero value is usable: retry
// forever with 50ms..5s jittered exponential backoff and a 256-frame
// publish buffer.
type SessionConfig struct {
	// Dial, when non-nil, replaces net.Dial("tcp", addr) — the hook for
	// TLS, proxies or fault injection in tests. It always targets the
	// session's single address; multi-address sessions use DialAddr.
	Dial func() (net.Conn, error)
	// DialAddr, when non-nil, replaces net.Dial("tcp", addr) for
	// multi-address sessions (DialSessionMulti), receiving the address
	// the session currently targets. Ignored when Dial is set.
	DialAddr func(addr string) (net.Conn, error)
	// MinBackoff/MaxBackoff bound the delay between reconnect attempts:
	// the delay starts at MinBackoff (default 50ms), doubles per failed
	// attempt up to MaxBackoff (default 5s), and is jittered uniformly
	// over [d/2, d) so reconnect storms decorrelate.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Seed seeds the backoff jitter; 0 derives one from the clock.
	// Fixing it makes reconnect schedules reproducible in tests.
	Seed int64
	// MaxAttempts is the number of consecutive failed reconnect
	// attempts after which the session gives up (state SessionGaveUp).
	// 0 retries forever.
	MaxAttempts int
	// PublishBuffer is the number of encoded publish frames buffered
	// while disconnected (and between the caller and the socket while
	// connected). Default 256. When full, Publish returns ErrBufferFull
	// instead of blocking.
	PublishBuffer int
	// Client carries per-connection liveness knobs (ping cadence, pong
	// timeout, write deadline) applied to every connection the session
	// establishes.
	Client ClientOptions
	// Consumer, when non-empty, names a durable consumer identity: every
	// connection the session establishes resumes it, so deliveries
	// committed to the broker's log while the session was disconnected
	// are replayed on reconnect and acknowledged offsets carry across
	// both session and broker restarts. Requires a version-2 broker with
	// durability enabled; the session tracks the highest acknowledged
	// offset and resumes past it, with Client.OnDurable still observing
	// every delivery.
	Consumer string
	// OnStateChange, when non-nil, observes every state transition. It
	// is called synchronously from session goroutines — keep it short
	// or hand off.
	OnStateChange func(SessionState)
	// Logf receives reconnect diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives session instrumentation
	// (reconnects, resubscribes, buffer-full rejections).
	Metrics *metrics.Registry
}

func (c *SessionConfig) fillDefaults() {
	if c.MinBackoff <= 0 {
		c.MinBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.PublishBuffer <= 0 {
		c.PublishBuffer = 256
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	c.Client.fillDefaults()
}

type sessionSub struct {
	x       *expr.Expression
	handler Handler
}

// Session is a fault-tolerant broker client: it maintains one live
// Client underneath, reconnects with jittered exponential backoff when
// the connection fails, replays its subscription table onto every new
// connection, and buffers publishes across outages. Safe for concurrent
// use.
type Session struct {
	cfg SessionConfig

	// addrs is the failover set; addr is the element currently targeted
	// (addrs[addrIdx % len]). Both are touched only by the goroutine
	// driving connects (DialSession's caller first, then the supervisor).
	addrs   []string
	addrIdx int
	addr    string
	rng     *rand.Rand // reconnect-loop goroutine only

	pubq   chan []byte
	closed chan struct{}
	closeO sync.Once

	state      atomic.Int32
	reconnects atomic.Int64
	// nextResume is the offset the next resume asks for: one past the
	// highest durable delivery seen on any connection so far.
	nextResume atomic.Uint64

	mu   sync.Mutex
	cur  *Client // nil while disconnected
	subs map[uint64]sessionSub
	err  error // terminal error, set on close/give-up

	mReconnects *metrics.Counter
	mResubs     *metrics.Counter
	mBufferFull *metrics.Counter
	mBuffered   *metrics.Gauge
	mResumes    *metrics.Counter
	mResumeRej  *metrics.Counter
}

// DialSession connects to a broker at addr and keeps the connection
// alive across failures. The initial connection is synchronous: if the
// broker is unreachable now, DialSession fails fast and no session is
// created. After that, transport failures are absorbed: the session
// transitions to SessionReconnecting, retries with backoff, resubscribes
// everything, and flushes buffered publishes.
func DialSession(addr string, cfg SessionConfig) (*Session, error) {
	return dialSession([]string{addr}, cfg)
}

// DialSessionMulti is DialSession over a failover set: the session
// targets one address at a time and rotates to the next on every failed
// connection attempt — including attempts a non-leader broker rejects
// by closing the connection — so a session pointed at a replicated pair
// follows whichever node currently leads. With a durable Consumer the
// handoff is gap-free under -repl-sync: everything the old leader
// delivered is on the promoted follower's log, and the resume replay
// redelivers anything unacknowledged (at-least-once, as always).
func DialSessionMulti(addrs []string, cfg SessionConfig) (*Session, error) {
	if len(addrs) == 0 {
		return nil, errors.New("broker: DialSessionMulti needs at least one address")
	}
	return dialSession(addrs, cfg)
}

func dialSession(addrs []string, cfg SessionConfig) (*Session, error) {
	cfg.fillDefaults()
	s := &Session{
		cfg:    cfg,
		addrs:  addrs,
		addr:   addrs[0],
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		pubq:   make(chan []byte, cfg.PublishBuffer),
		closed: make(chan struct{}),
		subs:   make(map[uint64]sessionSub),
	}
	if reg := cfg.Metrics; reg != nil {
		s.mReconnects = reg.Counter("apcm_broker_reconnects_total",
			"session reconnects that reached connected state")
		s.mResubs = reg.Counter("apcm_broker_resubscribes_total",
			"subscriptions replayed onto fresh connections after reconnect")
		s.mBufferFull = reg.Counter("apcm_broker_publish_buffer_full_total",
			"publishes rejected with ErrBufferFull")
		s.mBuffered = reg.Gauge("apcm_broker_publish_buffered",
			"publish frames waiting in the session buffer")
		s.mResumes = reg.Counter("apcm_broker_session_resumes_total",
			"durable consumer resumes completed on fresh connections")
		s.mResumeRej = reg.Counter("apcm_broker_session_resume_rejected_total",
			"durable consumer resumes the broker rejected")
	}
	if cfg.Consumer != "" {
		// Chain the offset tracker in front of the application's
		// OnDurable so every delivery advances the next resume point.
		user := s.cfg.Client.OnDurable
		s.cfg.Client.OnDurable = func(off uint64, ev *expr.Event) {
			for {
				cur := s.nextResume.Load()
				if off+1 <= cur || s.nextResume.CompareAndSwap(cur, off+1) {
					break
				}
			}
			if user != nil {
				user(off, ev)
			}
		}
	}
	// The initial connection is synchronous and tries every address
	// once, so a session dialed against a pair whose first node is the
	// follower still comes up on the leader.
	var cl *Client
	var err error
	for range s.addrs {
		if cl, err = s.connect(); err == nil {
			break
		}
		s.rotateAddr()
	}
	if err != nil {
		return nil, err
	}
	s.install(cl)
	go s.run(cl)
	return s, nil
}

// rotateAddr advances to the next address in the failover set after a
// failed connection attempt. Single-address sessions are unaffected.
func (s *Session) rotateAddr() {
	if len(s.addrs) > 1 {
		s.addrIdx++
		s.addr = s.addrs[s.addrIdx%len(s.addrs)]
	}
}

// install publishes cl as the current connection and re-replays to
// catch subscriptions registered between connect's replay pass and now
// (those landed on the table but raced past the dying previous client).
func (s *Session) install(cl *Client) {
	s.setClient(cl)
	s.setState(SessionConnected)
	if err := s.replay(cl); err != nil {
		// The brand-new connection already died; the supervisor's pump
		// will observe Done and reconnect. Nothing to do here.
		s.cfg.Logf("broker session: connection died during replay: %v", err)
	}
}

func (s *Session) dial() (net.Conn, error) {
	if s.cfg.Dial != nil {
		return s.cfg.Dial()
	}
	if s.cfg.DialAddr != nil {
		return s.cfg.DialAddr(s.addr)
	}
	return net.Dial("tcp", s.addr)
}

// connect establishes one connection and replays the current
// subscription table onto it.
func (s *Session) connect() (*Client, error) {
	nc, err := s.dial()
	if err != nil {
		return nil, err
	}
	cl := NewClientOpts(nc, s.cfg.Client)
	if err := s.replay(cl); err != nil {
		cl.Close()
		return nil, err
	}
	if s.cfg.Consumer != "" {
		if _, err := cl.Resume(s.cfg.Consumer, s.nextResume.Load()); err != nil {
			// A rejection (busy: the broker has not yet reaped our previous
			// connection; disabled durability; bad name) fails this attempt
			// like a transport error — the backoff loop retries it.
			if !isTransportErr(cl, err) {
				s.mResumeRej.Inc()
				s.cfg.Logf("broker session: resume %q rejected: %v", s.cfg.Consumer, err)
			}
			cl.Close()
			return nil, err
		}
		s.mResumes.Inc()
	}
	return cl, nil
}

// replay subscribes every registered subscription not yet installed on
// cl. A transport error aborts (the caller retries the whole
// connection); a server rejection of an individual subscription is
// logged and that subscription dropped from the table — retrying it
// forever would wedge every future reconnect. It is called once on the
// fresh client and once more after the client is published as current,
// to catch subscriptions registered concurrently with the first pass.
func (s *Session) replay(cl *Client) error {
	s.mu.Lock()
	subs := make(map[uint64]sessionSub, len(s.subs))
	for id, sub := range s.subs {
		subs[id] = sub
	}
	s.mu.Unlock()
	for id, sub := range subs {
		if cl.hasHandler(id) {
			continue // installed directly by a concurrent Subscribe
		}
		err := cl.Subscribe(sub.x, sub.handler)
		if err == nil {
			s.mResubs.Inc()
			continue
		}
		if isTransportErr(cl, err) {
			return err
		}
		if cl.hasHandler(id) {
			continue // lost a benign race with a concurrent Subscribe
		}
		s.cfg.Logf("broker session: dropping subscription %d: broker rejected replay: %v", id, err)
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
	return nil
}

// isTransportErr distinguishes a dead connection from a server that
// answered with a rejection: after a transport failure the client is
// terminally failed (Err non-nil), while a nack leaves it healthy.
func isTransportErr(cl *Client, err error) bool {
	return errors.Is(err, ErrClientClosed) || cl.Err() != nil
}

// run is the session's supervisor: it pumps buffered publishes into the
// live connection, and when that connection dies, reconnects and
// resumes. One goroutine per session.
func (s *Session) run(cl *Client) {
	var pending []byte // frame that failed mid-write; retried first
	for {
		pending = s.pump(cl, pending)
		cl.Close()
		select {
		case <-s.closed:
			return
		default:
		}
		s.setState(SessionReconnecting)
		next := s.reconnect()
		if next == nil {
			return // gave up or closed; state already set
		}
		cl = next
	}
}

// pump forwards publish frames to cl until the connection or session
// dies. It returns the frame that was in flight when the connection
// failed (so it is not lost), or nil.
func (s *Session) pump(cl *Client, pending []byte) []byte {
	for {
		frame := pending
		if frame == nil {
			select {
			case frame = <-s.pubq:
				s.mBuffered.Add(-1)
			case <-cl.Done():
				return nil
			case <-s.closed:
				return nil
			}
		}
		if err := cl.write(frame); err != nil {
			return frame
		}
		pending = nil
	}
}

// reconnect dials with jittered exponential backoff until a connection
// is established and replayed, the session is closed, or MaxAttempts
// consecutive attempts failed.
func (s *Session) reconnect() *Client {
	backoff := s.cfg.MinBackoff
	for attempt := 1; ; attempt++ {
		select {
		case <-s.closed:
			return nil
		default:
		}
		cl, err := s.connect()
		if err == nil {
			s.reconnects.Add(1)
			s.mReconnects.Inc()
			s.install(cl)
			s.cfg.Logf("broker session: reconnected to %s (attempt %d)", s.addr, attempt)
			return cl
		}
		s.cfg.Logf("broker session: reconnect attempt %d (%s): %v", attempt, s.addr, err)
		// Rotate through the failover set: a follower rejects client
		// operations by closing the connection, which lands here as a
		// failed attempt and moves the session to the next candidate.
		s.rotateAddr()
		if s.cfg.MaxAttempts > 0 && attempt >= s.cfg.MaxAttempts {
			s.giveUp(fmt.Errorf("%w: gave up after %d attempts, last error: %v", ErrSessionClosed, attempt, err))
			return nil
		}
		// Jitter uniformly over [backoff/2, backoff): full backoff is
		// the ceiling, half of it the floor, so retries from many
		// clients spread out instead of thundering together.
		d := backoff
		if half := backoff / 2; half > 0 {
			d = half + time.Duration(s.rng.Int63n(int64(half)))
		}
		select {
		case <-time.After(d):
		case <-s.closed:
			return nil
		}
		if backoff *= 2; backoff > s.cfg.MaxBackoff {
			backoff = s.cfg.MaxBackoff
		}
	}
}

func (s *Session) setClient(cl *Client) {
	s.mu.Lock()
	s.cur = cl
	s.mu.Unlock()
}

func (s *Session) client() *Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// setState transitions the session state and fires OnStateChange.
// Terminal states (closed, gave-up) win: once reached, later
// non-terminal transitions from racing goroutines are discarded.
func (s *Session) setState(st SessionState) {
	for {
		old := SessionState(s.state.Load())
		if old == st || old == SessionClosed || old == SessionGaveUp {
			return
		}
		if s.state.CompareAndSwap(int32(old), int32(st)) {
			if f := s.cfg.OnStateChange; f != nil {
				f(st)
			}
			return
		}
	}
}

// State reports the session's current connectivity state.
func (s *Session) State() SessionState { return SessionState(s.state.Load()) }

// Reconnects reports how many times the session has re-established a
// connection after a failure.
func (s *Session) Reconnects() int64 { return s.reconnects.Load() }

// Err returns the terminal error after the session closed or gave up.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Session) giveUp(err error) {
	s.closeO.Do(func() {
		s.mu.Lock()
		s.err = err
		cl := s.cur
		s.cur = nil
		s.mu.Unlock()
		close(s.closed)
		if cl != nil {
			cl.Close()
		}
		s.setState(SessionGaveUp)
	})
}

// Subscribe registers x and routes matching events to handler, now and
// on every future connection (the session resubscribes automatically
// after reconnect). A rejection by the broker (duplicate id, bad
// expression) is returned and the subscription is not retained; a
// transport failure during the request returns nil — the subscription
// stays registered and is installed by the reconnect replay.
func (s *Session) Subscribe(x *expr.Expression, handler Handler) error {
	if handler == nil {
		return errors.New("broker: nil handler")
	}
	select {
	case <-s.closed:
		return s.closedErr()
	default:
	}
	id := uint64(x.ID)
	s.mu.Lock()
	if _, dup := s.subs[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("broker: duplicate subscription id %d", x.ID)
	}
	s.subs[id] = sessionSub{x: x, handler: handler}
	cl := s.cur
	s.mu.Unlock()
	if cl == nil {
		return nil // disconnected: replay installs it on reconnect
	}
	err := cl.Subscribe(x, handler)
	if err == nil || isTransportErr(cl, err) {
		return nil
	}
	s.mu.Lock()
	delete(s.subs, id)
	s.mu.Unlock()
	return err
}

// Unsubscribe removes the subscription with the given id from the
// session (and, if connected, from the broker). Transport failures are
// absorbed: the subscription is gone from the replay table either way,
// and broker restarts forget server-side state.
func (s *Session) Unsubscribe(id expr.ID) error {
	s.mu.Lock()
	_, ok := s.subs[uint64(id)]
	delete(s.subs, uint64(id))
	cl := s.cur
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("broker: unknown subscription id %d", id)
	}
	if cl == nil {
		return nil
	}
	if err := cl.Unsubscribe(id); err != nil && !isTransportErr(cl, err) {
		return err
	}
	return nil
}

// Publish enqueues an event for delivery to the broker. While
// connected, the buffer drains continuously; during an outage it
// absorbs up to PublishBuffer events and the rest are rejected with
// ErrBufferFull — never by blocking the caller indefinitely.
func (s *Session) Publish(ev *expr.Event) error {
	select {
	case <-s.closed:
		return s.closedErr()
	default:
	}
	frame := expr.AppendEvent([]byte{msgPublish}, ev)
	select {
	case s.pubq <- frame:
		s.mBuffered.Add(1)
		return nil
	default:
		s.mBufferFull.Inc()
		return ErrBufferFull
	}
}

func (s *Session) closedErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return ErrSessionClosed
}

// Close terminates the session and its connection. Buffered,
// not-yet-written publishes are discarded.
func (s *Session) Close() error {
	s.closeO.Do(func() {
		s.mu.Lock()
		s.err = ErrSessionClosed
		cl := s.cur
		s.cur = nil
		s.mu.Unlock()
		close(s.closed)
		if cl != nil {
			cl.Close()
		}
		s.setState(SessionClosed)
	})
	return nil
}
