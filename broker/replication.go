package broker

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"github.com/streammatch/apcm/internal/commitlog"
)

// Server roles. A server starts as the leader, or as a follower when
// Follow names a leader address; a follower promotes itself to leader
// on leader-liveness loss, and any node that hears an epoch above its
// own fences itself — terminally for the process; an operator restarts
// it in a valid role.
const (
	roleLeader int32 = iota
	roleFollower
	roleFenced
)

// roleName names a role for logs and metrics.
func roleName(r int32) string {
	switch r {
	case roleLeader:
		return "leader"
	case roleFollower:
		return "follower"
	case roleFenced:
		return "fenced"
	}
	return fmt.Sprintf("role(%d)", r)
}

// Role reports the server's current replication role: "leader",
// "follower", or "fenced".
func (s *Server) Role() string { return roleName(s.role.Load()) }

// Epoch reports the server's current replication epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// PromotedAt reports the commit-log offset at which this server
// promoted itself from follower to leader, and whether it ever did.
// Offsets below it were ingested from the old leader (a verbatim
// prefix); offsets at or above it are this server's own appends — the
// boundary the crash matrix's prefix oracle compares up to.
func (s *Server) PromotedAt() (uint64, bool) {
	v := s.promotedAt.Load()
	return uint64(v), s.promoted.Load()
}

// replHeartbeat is the follower→leader ping cadence and the leader's
// offset-journal shipping cadence.
func (s *Server) replHeartbeat() time.Duration {
	if s.ReplHeartbeat > 0 {
		return s.ReplHeartbeat
	}
	return 250 * time.Millisecond
}

// replTimeout is how long a follower tolerates total leader silence
// before promoting itself.
func (s *Server) replTimeout() time.Duration {
	if s.ReplTimeout > 0 {
		return s.ReplTimeout
	}
	return 3 * time.Second
}

// fenceSelf durably adopts epoch and fences this server: the epoch is
// persisted first (a crash must never resurrect the old epoch), then
// every connection is aborted and client operations are rejected from
// here on. Called when any peer demonstrates an epoch above our own —
// the cluster has moved on without us.
func (s *Server) fenceSelf(epoch uint64) {
	for {
		cur := s.epoch.Load()
		if epoch <= cur {
			break
		}
		if s.epoch.CompareAndSwap(cur, epoch) {
			if s.LogDir != "" {
				if err := commitlog.StoreEpoch(s.LogDir, epoch); err != nil {
					s.Logf("broker: persisting fenced epoch %d: %v", epoch, err)
				}
			}
			break
		}
	}
	if s.role.Swap(roleFenced) == roleFenced {
		return
	}
	s.fenced.Add(1)
	s.Logf("broker: fenced at epoch %d; rejecting client operations", epoch)
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.abort()
	}
	if s.log != nil {
		s.log.DetachReplica()
	}
}

// detachReplica clears c's replica registration if it still holds it,
// releasing the retention clamp and any -repl-sync waiters.
func (s *Server) detachReplica(c *conn) {
	s.mu.Lock()
	was := s.replica == c
	if was {
		s.replica = nil
	}
	s.mu.Unlock()
	if was && s.log != nil {
		s.log.DetachReplica()
	}
}

// sendChunked streams data as typ frames of at most replChunk bytes,
// the last one flagged final. Reports whether every chunk was accepted
// by the outbox.
func (c *conn) sendChunked(typ byte, data []byte) bool {
	for len(data) > 0 {
		n := len(data)
		flags := uint64(chunkFinal)
		if n > replChunk {
			n = replChunk
			flags = 0
		}
		frame := appendUvarint([]byte{typ}, flags)
		frame = append(frame, data[:n]...)
		if !c.send(frame) {
			return false
		}
		data = data[n:]
	}
	return true
}

// handleReplHello is the leader half of the replication handshake: it
// validates the follower's epoch, registers the connection as the
// replica (stealing a dead predecessor's slot, like consumer claims),
// answers with the effective start offset, and starts the sender and
// offset-journal goroutines. The read loop keeps running to consume
// the follower's acks and pings.
func (c *conn) handleReplHello(body []byte) error {
	if c.version < 3 {
		return fmt.Errorf("repl-hello frame on protocol %d connection", c.version)
	}
	s := c.s
	peerEpoch, rest, err := readUvarint(body)
	if err != nil {
		return errors.New("bad repl-hello")
	}
	next, rest, err := readUvarint(rest)
	if err != nil {
		return errors.New("bad repl-hello")
	}
	node := string(rest)
	if s.log == nil {
		return errors.New("repl-hello without durability enabled")
	}
	if ours := s.epoch.Load(); peerEpoch > ours {
		// The peer has seen a newer epoch than we have: the cluster
		// moved on while we thought we were current. Fence ourselves;
		// the best-effort 'X' tells the peer why before the abort lands.
		c.send(appendUvarint([]byte{msgFence}, peerEpoch))
		s.fenceSelf(peerEpoch)
		return fmt.Errorf("fenced by repl-hello from %q at epoch %d", node, peerEpoch)
	}
	if s.role.Load() != roleLeader {
		c.send(appendUvarint([]byte{msgFence}, s.epoch.Load()))
		return fmt.Errorf("repl-hello from %q but this node is %s", node, s.Role())
	}
	s.mu.Lock()
	if prev := s.replica; prev != nil {
		select {
		case <-prev.done:
			// Dead replica that raced past its own unregister; steal.
		default:
			s.mu.Unlock()
			return fmt.Errorf("repl-hello from %q but a replica is already attached", node)
		}
	}
	s.replica = c
	s.mu.Unlock()
	c.mu.Lock()
	c.isRepl = true
	c.mu.Unlock()

	// Clamp the start forward past retention; a pristine follower
	// bootstraps at the first retained offset via ResetTo.
	start := next
	if first := s.log.FirstOffset(); first > start {
		start = first
	}
	s.log.AttachReplica(start)
	welcome := appendUvarint([]byte{msgReplWelcome}, s.epoch.Load())
	welcome = appendUvarint(welcome, s.log.NextOffset())
	welcome = appendUvarint(welcome, start)
	if !c.send(welcome) {
		return errors.New("connection closed during repl handshake")
	}
	s.Logf("broker: replica %q attached at offset %d (epoch %d)", node, start, s.epoch.Load())
	go c.replSender(start)
	go c.replJournalLoop()
	return nil
}

// replDead reports whether the replication connection is gone; the
// sender polls it at every commit-wait wakeup (DetachReplica's
// broadcast, triggered by this connection's unregister, guarantees a
// wakeup when it flips).
func (c *conn) replDead() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// replSender streams the log to the attached follower from offset next
// onward: whole sealed segments (CRC-finalized 'G'/'g' chunk
// transfers) while the position aligns with a segment boundary, raw
// batches ('b') otherwise, parking on the group-commit watermark when
// caught up. One goroutine per attached replica; exits when the
// connection dies.
//
//apcm:durable Append ordering is inherited: everything read here is
// below the committed watermark.
func (c *conn) replSender(next uint64) {
	s := c.s
	for !c.replDead() {
		if shipped, ok := c.shipAlignedSegment(&next); !ok {
			return
		} else if shipped {
			continue
		}
		sent := false
		err := s.log.ReadBatches(next, func(base uint64, count uint32, raw []byte) error {
			if c.replDead() {
				return errStopReplay
			}
			if !c.sendChunked(msgReplBatch, raw) {
				return errStopReplay
			}
			s.replBatchesSent.Add(1)
			next = base + uint64(count)
			sent = true
			// Break out between batches if a rotation just sealed a
			// segment we could bulk-ship instead.
			return nil
		})
		if err != nil && !errors.Is(err, errStopReplay) {
			s.Logf("broker: repl sender stopping at offset %d: %v", next, err)
			c.abort()
			return
		}
		if c.replDead() {
			return
		}
		if !sent {
			if _, err := s.log.WaitCommitted(next, c.replDead); err != nil {
				return
			}
		}
	}
}

// shipAlignedSegment bulk-ships one sealed segment when *next sits
// exactly on its base, advancing *next past it. ok=false means the
// connection died.
func (c *conn) shipAlignedSegment(next *uint64) (shipped, ok bool) {
	s := c.s
	for _, si := range s.log.SealedSegments() {
		if si.Base != *next {
			continue
		}
		data, info, err := s.log.ReadSegment(si.Base)
		if err != nil {
			// Raced retention or disk trouble; the batch path re-reads.
			return false, true
		}
		if !c.sendChunked(msgReplSegment, data) {
			return false, false
		}
		end := appendUvarint([]byte{msgReplSegEnd}, info.Base)
		end = appendUvarint(end, info.End)
		end = appendUvarint(end, uint64(crc32.ChecksumIEEE(data)))
		if !c.send(end) {
			return false, false
		}
		s.replSegmentsShipped.Add(1)
		*next = info.End
		return true, true
	}
	return false, true
}

// replJournalLoop periodically ships every consumer's acknowledged
// offset to the follower, so a promotion resumes consumers near where
// the leader left off (acks between ships are redelivered —
// at-least-once, as everywhere else). Exits with the connection.
func (c *conn) replJournalLoop() {
	s := c.s
	t := time.NewTicker(s.replHeartbeat())
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		frame := []byte{msgReplOffsets}
		for _, name := range s.offsets.Names() {
			next, ok := s.offsets.Get(name)
			if !ok {
				continue
			}
			frame = appendUvarint(frame, uint64(len(name)))
			frame = append(frame, name...)
			frame = appendUvarint(frame, next)
			if len(frame) > 32<<10 {
				if !c.send(frame) {
					return
				}
				frame = []byte{msgReplOffsets}
			}
		}
		if len(frame) > 1 {
			if !c.send(frame) {
				return
			}
			s.replJournalShips.Add(1)
		}
	}
}

// handleReplAck advances the replicated watermark from a follower 'B'
// frame.
func (c *conn) handleReplAck(body []byte) error {
	next, rest, err := readUvarint(body)
	if err != nil || len(rest) != 0 {
		return errors.New("bad repl-ack")
	}
	c.mu.Lock()
	isRepl := c.isRepl
	c.mu.Unlock()
	if !isRepl {
		return errors.New("repl-ack before repl-hello")
	}
	c.s.replAcks.Add(1)
	c.s.log.SetReplicated(next)
	return nil
}

// handleFence reacts to an 'X' frame: an epoch above our own fences
// this server (the canonical stale-leader path — the promoted follower
// sends it on the dying replication connection); anything else is
// stale noise from a healed partition and is dropped.
func (c *conn) handleFence(body []byte) error {
	epoch, rest, err := readUvarint(body)
	if err != nil || len(rest) != 0 {
		return errors.New("bad fence")
	}
	if epoch > c.s.epoch.Load() {
		c.s.fenceSelf(epoch)
		return fmt.Errorf("fenced at epoch %d", epoch)
	}
	c.s.Logf("broker: ignoring stale fence at epoch %d (ours %d)", epoch, c.s.epoch.Load())
	return nil
}
