package broker

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/metrics"
)

// metricValue reads one counter/gauge from a registry snapshot.
func metricValue(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	for _, v := range reg.Snapshot() {
		if v.Name == name {
			return v.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

// TestSlowConsumerDropped stalls one subscriber completely (it
// subscribes, then never reads) while a healthy subscriber and a
// publisher keep working. The stalled connection must be dropped after
// SlowConsumerTimeout without wedging the publisher or starving the
// healthy subscriber, and the drop must be visible in both the
// SlowConsumerDrops accessor and the metrics registry.
func TestSlowConsumerDropped(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	s := NewServer(eng)
	s.Logf = t.Logf
	s.SlowConsumerTimeout = 150 * time.Millisecond
	s.Metrics = reg
	go func() { s.Serve(ln) }()
	defer s.Close()
	addr := ln.Addr().String()

	// The stalled subscriber: a raw TCP connection that subscribes to
	// everything and then stops reading. Tiny receive buffer so the
	// kernel absorbs as few match frames as possible.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	stalled.(*net.TCPConn).SetReadBuffer(4096)
	rawHello(t, stalled)
	sub := expr.MustNew(1, expr.Ge(1, 0))
	if err := writeFrame(stalled, append([]byte{msgSubscribe}, expr.AppendExpression(nil, sub)...)); err != nil {
		t.Fatal(err)
	}
	// Consume the subscribe ack, then never read again.
	if _, err := readFrame(stalled, nil); err != nil {
		t.Fatal(err)
	}
	// Shrink the server side's send buffer too, so its write loop stalls
	// after a handful of frames instead of megabytes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var sc *conn
		s.mu.RLock()
		for c := range s.conns {
			if c.nc.RemoteAddr().String() == stalled.LocalAddr().String() {
				sc = c
			}
		}
		s.mu.RUnlock()
		if sc != nil {
			sc.nc.(*net.TCPConn).SetWriteBuffer(4096)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled conn never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// The healthy subscriber keeps reading the whole time.
	var healthyGot atomic.Int64
	healthy, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if err := healthy.Subscribe(expr.MustNew(1, expr.Ge(1, 0)), func(*expr.Event) {
		healthyGot.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	// Publish enough padded events to overflow the stalled consumer's
	// outbox (256 frames) plus both socket buffers.
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pairs := make([]expr.Pair, 0, 64)
	for a := expr.AttrID(1); a <= 64; a++ {
		pairs = append(pairs, expr.P(a, expr.Value(a)))
	}
	ev := expr.MustEvent(pairs...)
	const total = 3000
	pubDone := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if err := pub.Publish(ev); err != nil {
				pubDone <- err
				return
			}
		}
		pubDone <- nil
	}()

	select {
	case err := <-pubDone:
		if err != nil {
			t.Fatalf("publisher failed: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("publisher wedged behind slow consumer")
	}

	// The stalled connection must have been dropped...
	deadline = time.Now().Add(10 * time.Second)
	for s.SlowConsumerDrops() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.SlowConsumerDrops(); got < 1 {
		t.Fatalf("SlowConsumerDrops = %d, want >= 1", got)
	}
	if got := metricValue(t, reg, "apcm_broker_slow_consumer_drops_total"); got < 1 {
		t.Fatalf("apcm_broker_slow_consumer_drops_total = %g, want >= 1", got)
	}
	// ...its reader observes the close...
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	drain := make([]byte, 1<<16)
	for {
		if _, err := stalled.Read(drain); err != nil {
			break
		}
	}
	// ...and the healthy subscriber received every event.
	deadline = time.Now().Add(30 * time.Second)
	for healthyGot.Load() < total && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := healthyGot.Load(); got != total {
		t.Fatalf("healthy subscriber got %d of %d events", got, total)
	}
}
