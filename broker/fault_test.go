package broker

import (
	"context"
	"errors"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/faultnet"
	"github.com/streammatch/apcm/metrics"
)

// faultSeed is the deterministic seed driving every fault scenario. It
// is logged unconditionally so a failing run names its reproduction;
// override with APCM_FAULT_SEED to replay a specific schedule.
func faultSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(1)
	if env := os.Getenv("APCM_FAULT_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad APCM_FAULT_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("faultnet seed = %d (override with APCM_FAULT_SEED)", seed)
	return seed
}

// stateRecorder collects session state transitions.
type stateRecorder struct {
	mu     sync.Mutex
	states []SessionState
}

func (r *stateRecorder) record(st SessionState) {
	r.mu.Lock()
	r.states = append(r.states, st)
	r.mu.Unlock()
}

func (r *stateRecorder) saw(want SessionState) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range r.states {
		if st == want {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSessionRecoversAcrossBrokerRestart is the end-to-end recovery
// proof: the broker restarts mid-stream (new engine, same address), the
// session reconnects and resubscribes automatically, an event published
// during the outage is buffered and flushed, and an event published
// after recovery reaches the same handler.
func TestSessionRecoversAcrossBrokerRestart(t *testing.T) {
	seed := faultSeed(t)
	eng1 := apcm.MustNew(apcm.Options{Workers: 1})
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	srv1 := NewServer(eng1)
	srv1.Logf = t.Logf
	go srv1.Serve(ln1)

	rec := &stateRecorder{}
	reg := metrics.New()
	sess, err := DialSession(addr, SessionConfig{
		MinBackoff:    5 * time.Millisecond,
		MaxBackoff:    100 * time.Millisecond,
		Seed:          seed,
		OnStateChange: rec.record,
		Logf:          t.Logf,
		Metrics:       reg,
		Client:        ClientOptions{PingInterval: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	got := make(chan *expr.Event, 64)
	if err := sess.Subscribe(expr.MustNew(7, expr.Eq(1, 1)), func(ev *expr.Event) { got <- ev }); err != nil {
		t.Fatal(err)
	}
	match := expr.MustEvent(expr.P(1, 1))
	if err := sess.Publish(match); err != nil {
		t.Fatal(err)
	}
	recvEvent(t, got)

	// Broker restart: the first server dies hard, taking all server-side
	// subscription state with it.
	srv1.Close()
	eng1.Close()
	waitFor(t, "session to notice the outage", func() bool { return sess.State() == SessionReconnecting })

	// Published during the outage: must buffer, not error, not block.
	if err := sess.Publish(match); err != nil {
		t.Fatalf("publish during outage: %v", err)
	}

	// Restart on the same address with a fresh engine (no subscriptions).
	eng2 := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng2.Close()
	var ln2 net.Listener
	waitFor(t, "address to rebind", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	srv2 := NewServer(eng2)
	srv2.Logf = t.Logf
	go srv2.Serve(ln2)
	defer srv2.Close()

	waitFor(t, "session to reconnect", func() bool { return sess.State() == SessionConnected })
	if n := sess.Reconnects(); n < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", n)
	}
	// The buffered event flushes through the replayed subscription.
	recvEvent(t, got)
	// And a subsequently published event is delivered to the same handler.
	if err := sess.Publish(match); err != nil {
		t.Fatal(err)
	}
	recvEvent(t, got)

	if !rec.saw(SessionReconnecting) || !rec.saw(SessionConnected) {
		t.Fatalf("state transitions missing reconnecting/connected: %v", rec.states)
	}
	if got := metricValue(t, reg, "apcm_broker_reconnects_total"); got < 1 {
		t.Fatalf("apcm_broker_reconnects_total = %g, want >= 1", got)
	}
	if got := metricValue(t, reg, "apcm_broker_resubscribes_total"); got < 1 {
		t.Fatalf("apcm_broker_resubscribes_total = %g, want >= 1", got)
	}
}

// TestSessionHeartbeatDetectsPartition blackholes the client's link —
// the socket stays open but nothing flows. The client's heartbeat
// timeout must detect the dead link and the session must recover over a
// fresh connection.
func TestSessionHeartbeatDetectsPartition(t *testing.T) {
	seed := faultSeed(t)
	_, addr := startServer(t)

	var mu sync.Mutex
	var conns []*faultnet.Conn
	rec := &stateRecorder{}
	sess, err := DialSession(addr, SessionConfig{
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
		Seed:       seed,
		Dial: func() (net.Conn, error) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			fc := faultnet.Wrap(nc, faultnet.Options{Seed: seed})
			mu.Lock()
			conns = append(conns, fc)
			mu.Unlock()
			return fc, nil
		},
		OnStateChange: rec.record,
		Logf:          t.Logf,
		Client: ClientOptions{
			PingInterval: 20 * time.Millisecond,
			PongTimeout:  100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	got := make(chan *expr.Event, 64)
	if err := sess.Subscribe(expr.MustNew(3, expr.Ge(1, 0)), func(ev *expr.Event) { got <- ev }); err != nil {
		t.Fatal(err)
	}
	if err := sess.Publish(expr.MustEvent(expr.P(1, 5))); err != nil {
		t.Fatal(err)
	}
	recvEvent(t, got)

	// Partition: the first connection silently stops passing traffic.
	mu.Lock()
	conns[0].Blackhole()
	mu.Unlock()

	waitFor(t, "heartbeat timeout to trigger reconnect", func() bool {
		return sess.Reconnects() >= 1 && sess.State() == SessionConnected
	})
	if err := sess.Publish(expr.MustEvent(expr.P(1, 6))); err != nil {
		t.Fatal(err)
	}
	recvEvent(t, got)
	if !rec.saw(SessionReconnecting) {
		t.Fatalf("no reconnecting transition recorded: %v", rec.states)
	}
}

// TestSessionOverSlowChunkedLink runs a session over a degraded link —
// added latency and writes shredded into tiny chunks — and requires
// lossless delivery with no spurious reconnects (heartbeat tuning must
// tolerate slowness that is not death).
func TestSessionOverSlowChunkedLink(t *testing.T) {
	seed := faultSeed(t)
	_, addr := startServer(t)

	sess, err := DialSession(addr, SessionConfig{
		Seed: seed,
		Dial: func() (net.Conn, error) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return faultnet.Wrap(nc, faultnet.Options{
				Seed:     seed,
				Latency:  time.Millisecond,
				Jitter:   500 * time.Microsecond,
				MaxChunk: 5,
			}), nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var delivered atomic.Int64
	if err := sess.Subscribe(expr.MustNew(1, expr.Ge(1, 0)), func(*expr.Event) { delivered.Add(1) }); err != nil {
		t.Fatal(err)
	}
	const total = 30
	for i := 0; i < total; i++ {
		if err := sess.Publish(expr.MustEvent(expr.P(1, expr.Value(i)))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all events over the slow link", func() bool { return delivered.Load() == total })
	if n := sess.Reconnects(); n != 0 {
		t.Fatalf("slow link caused %d spurious reconnects", n)
	}
}

// TestSessionRecoversFromMidFrameResets hard-closes the link after a
// byte budget — typically mid-frame — on every connection the session
// makes. The session must keep cycling: reconnect, resubscribe, resume
// delivery, including retrying the publish frame that was in flight
// when the cut happened.
func TestSessionRecoversFromMidFrameResets(t *testing.T) {
	seed := faultSeed(t)
	_, addr := startServer(t)

	sess, err := DialSession(addr, SessionConfig{
		MinBackoff: 2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Seed:       seed,
		Dial: func() (net.Conn, error) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return faultnet.Wrap(nc, faultnet.Options{Seed: seed, ResetAfterBytes: 160}), nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var delivered atomic.Int64
	if err := sess.Subscribe(expr.MustNew(1, expr.Ge(1, 0)), func(*expr.Event) { delivered.Add(1) }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < 20 || sess.Reconnects() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled: delivered=%d reconnects=%d", delivered.Load(), sess.Reconnects())
		}
		if err := sess.Publish(expr.MustEvent(expr.P(1, 1))); err != nil && !errors.Is(err, ErrBufferFull) {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSessionRecoversFromCorruption flips a byte in every Nth write.
// Sooner or later a corrupted frame desynchronizes or fails to decode,
// the server terminates the connection, and the session must recover
// and keep delivering.
func TestSessionRecoversFromCorruption(t *testing.T) {
	seed := faultSeed(t)
	_, addr := startServer(t)

	sess, err := DialSession(addr, SessionConfig{
		MinBackoff: 2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Seed:       seed,
		Dial: func() (net.Conn, error) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return faultnet.Wrap(nc, faultnet.Options{Seed: seed, CorruptEveryN: 7}), nil
		},
		Logf: t.Logf,
		Client: ClientOptions{
			// Corruption can desynchronize framing in ways that stall
			// rather than error; a tight pong timeout converts any such
			// stall into a reconnect.
			PingInterval: 20 * time.Millisecond,
			PongTimeout:  200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var delivered atomic.Int64
	if err := sess.Subscribe(expr.MustNew(1, expr.Ge(1, 0)), func(*expr.Event) { delivered.Add(1) }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < 20 || sess.Reconnects() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled: delivered=%d reconnects=%d", delivered.Load(), sess.Reconnects())
		}
		if err := sess.Publish(expr.MustEvent(expr.P(1, 1))); err != nil && !errors.Is(err, ErrBufferFull) {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShutdownDrainsSlowConsumer is the graceful-drain acceptance test:
// a consumer that reads slowly (but is alive) has a deep outbox when
// Shutdown begins. Every queued match frame must reach it before the
// server closes, and new work must be nacked while the drain runs.
func TestShutdownDrainsSlowConsumer(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	srv := NewServer(eng)
	srv.Logf = t.Logf
	srv.SlowConsumerTimeout = 30 * time.Second // slow is not dead: no drops
	srv.Metrics = reg
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// The slow consumer: subscribes to everything, then reads one frame
	// every few milliseconds. Small socket buffers keep the backlog in
	// the server's outbox where Shutdown can see it.
	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slow.(*net.TCPConn).SetReadBuffer(4096)
	rawHello(t, slow)
	sub := expr.MustNew(1, expr.Ge(1, 0))
	if err := writeFrame(slow, expr.AppendExpression([]byte{msgSubscribe}, sub)); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(slow, nil); err != nil { // subscribe ack
		t.Fatal(err)
	}
	var sc *conn
	waitFor(t, "slow conn to register", func() bool {
		srv.mu.RLock()
		defer srv.mu.RUnlock()
		for c := range srv.conns {
			if c.nc.RemoteAddr().String() == slow.LocalAddr().String() {
				sc = c
				return true
			}
		}
		return false
	})
	sc.nc.(*net.TCPConn).SetWriteBuffer(4096)

	frames := make(chan int, 1)
	go func() {
		n := 0
		var buf []byte
		for {
			f, err := readFrame(slow, buf)
			if err != nil {
				frames <- n
				return
			}
			buf = f
			if f[0] == msgMatch {
				n++
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Publish padded events so a handful saturate the socket buffers.
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pairs := make([]expr.Pair, 0, 64)
	for a := expr.AttrID(1); a <= 64; a++ {
		pairs = append(pairs, expr.P(a, expr.Value(a)))
	}
	ev := expr.MustEvent(pairs...)
	const total = 150
	for i := 0; i < total; i++ {
		if err := pub.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Barrier: an acked request on the same connection proves the server
	// processed (matched and enqueued) every publish above.
	if err := pub.Unsubscribe(999); err == nil {
		t.Fatal("barrier unsubscribe unexpectedly succeeded")
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	waitFor(t, "drain to start", func() bool { return srv.draining.Load() })

	// New work during the drain is nacked.
	if err := pub.Subscribe(expr.MustNew(50, expr.Eq(1, 1)), func(*expr.Event) {}); err == nil {
		t.Fatal("subscribe during drain succeeded")
	}

	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := <-frames; got != total {
		t.Fatalf("slow consumer received %d of %d frames across the drain", got, total)
	}
	if srv.drainFlushed.Load() != 1 || srv.drainExpired.Load() != 0 {
		t.Fatalf("drain counters: flushed=%d expired=%d", srv.drainFlushed.Load(), srv.drainExpired.Load())
	}
	if got := metricValue(t, reg, "apcm_broker_drain_flushed_total"); got != 1 {
		t.Fatalf("apcm_broker_drain_flushed_total = %g, want 1", got)
	}
}

// TestShutdownDeadlineHardCloses: a consumer that never drains keeps
// its outbox non-empty forever; Shutdown must give up when its context
// expires, hard-close, and report it.
func TestShutdownDeadlineHardCloses(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	srv := NewServer(eng)
	srv.Logf = t.Logf
	srv.SlowConsumerTimeout = 30 * time.Second
	srv.metOnce.Do(srv.attachMetrics)

	// A synthetic stalled connection: frames enqueued, no writer draining
	// them (the writeLoop is deliberately not started).
	a, b := net.Pipe()
	defer b.Close()
	c := &conn{s: srv, nc: a, outbox: make(chan []byte, 4), done: make(chan struct{}), byClient: make(map[uint64]expr.ID)}
	srv.mu.Lock()
	srv.conns[c] = struct{}{}
	srv.mu.Unlock()
	if !c.send([]byte{msgPong}) {
		t.Fatal("seed frame not enqueued")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Shutdown took %v after a 100ms deadline", elapsed)
	}
	if srv.drainExpired.Load() != 1 {
		t.Fatalf("drainExpired = %d, want 1", srv.drainExpired.Load())
	}
	select {
	case <-c.done:
	default:
		t.Fatal("stalled conn not hard-closed after deadline")
	}
}

// TestHeartbeatReapsSilentConnection: a connection that completes the
// handshake and then goes mute is reaped after the heartbeat deadline,
// while a pinging client on the same server stays connected.
func TestHeartbeatReapsSilentConnection(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	srv := NewServer(eng)
	srv.Logf = t.Logf
	srv.HeartbeatInterval = 30 * time.Millisecond
	srv.MissedHeartbeats = 2
	srv.Metrics = reg
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// The live client pings well inside the 60ms reap deadline.
	live, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	alive := NewClientOpts(live, ClientOptions{PingInterval: 15 * time.Millisecond})
	defer alive.Close()

	// The mute connection: hello, then nothing.
	mute, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()
	rawHello(t, mute)

	mute.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := readFrame(mute, nil); err == nil {
		t.Fatal("mute connection survived past the heartbeat deadline")
	}
	waitFor(t, "heartbeat timeout to be counted", func() bool { return srv.HeartbeatTimeouts() >= 1 })
	if got := metricValue(t, reg, "apcm_broker_heartbeat_timeouts_total"); got < 1 {
		t.Fatalf("apcm_broker_heartbeat_timeouts_total = %g, want >= 1", got)
	}
	// The pinging client is still healthy: a round-trip works.
	if err := alive.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatalf("live client broken after mute client reaped: %v", err)
	}
	if err := alive.Err(); err != nil {
		t.Fatalf("live client failed: %v", err)
	}
}

// TestVersionMismatchRejected: a hello below MinProtocolVersion gets an
// explanatory error frame, then the connection is closed. (Versions
// above ProtocolVersion negotiate down instead; see
// TestVersionNegotiatesDown.)
func TestVersionMismatchRejected(t *testing.T) {
	_, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := writeFrame(nc, []byte{msgHello, 0}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := readFrame(nc, nil)
	if err != nil {
		t.Fatalf("no error frame before close: %v", err)
	}
	if reply[0] != msgErr {
		t.Fatalf("reply type %q, want error frame", reply[0])
	}
	if _, err := readFrame(nc, nil); err == nil {
		t.Fatal("connection survived version mismatch")
	}
}

// TestSessionGivesUpAfterMaxAttempts: with a bounded retry budget and
// no broker to reach, the session transitions to gave-up and fails
// operations instead of retrying forever.
func TestSessionGivesUpAfterMaxAttempts(t *testing.T) {
	seed := faultSeed(t)
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := NewServer(eng)
	srv.Logf = t.Logf
	go srv.Serve(ln)

	rec := &stateRecorder{}
	sess, err := DialSession(addr, SessionConfig{
		MinBackoff:    time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
		Seed:          seed,
		MaxAttempts:   3,
		OnStateChange: rec.record,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	srv.Close() // and never comes back
	waitFor(t, "session to give up", func() bool { return sess.State() == SessionGaveUp })
	if err := sess.Publish(expr.MustEvent(expr.P(1, 1))); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Publish after give-up = %v, want ErrSessionClosed", err)
	}
	if !rec.saw(SessionGaveUp) {
		t.Fatalf("gave-up transition not reported: %v", rec.states)
	}
}

// TestSessionPublishBufferBounds: with the broker gone, the publish
// buffer absorbs exactly PublishBuffer events and then rejects with
// ErrBufferFull instead of blocking.
func TestSessionPublishBufferBounds(t *testing.T) {
	seed := faultSeed(t)
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := NewServer(eng)
	srv.Logf = t.Logf
	go srv.Serve(ln)

	const buffer = 8
	sess, err := DialSession(addr, SessionConfig{
		MinBackoff:    50 * time.Millisecond,
		MaxBackoff:    time.Second,
		Seed:          seed,
		PublishBuffer: buffer,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	srv.Close()
	waitFor(t, "outage detection", func() bool { return sess.State() == SessionReconnecting })

	ev := expr.MustEvent(expr.P(1, 1))
	accepted := 0
	var full bool
	// The pump may hold one frame in flight beyond the channel's
	// capacity, so allow buffer+1 acceptances before demanding
	// ErrBufferFull.
	for i := 0; i < buffer+8; i++ {
		err := sess.Publish(ev)
		if err == nil {
			accepted++
			continue
		}
		if !errors.Is(err, ErrBufferFull) {
			t.Fatalf("Publish = %v, want ErrBufferFull", err)
		}
		full = true
		break
	}
	if !full {
		t.Fatalf("buffer never reported full after %d accepted publishes", accepted)
	}
	if accepted > buffer+1 {
		t.Fatalf("accepted %d publishes into a %d-frame buffer", accepted, buffer)
	}
}
