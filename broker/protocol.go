// Package broker is the networked pub/sub substrate: a TCP server that
// fronts an apcm.Engine with subscribe/unsubscribe/publish operations
// and pushes match notifications to subscriber connections, plus the
// matching client library. It realises the paper's motivating
// application — selective information dissemination — end to end.
//
// Wire format: length-prefixed frames (uint32 big-endian length, then
// payload, at most MaxFrame bytes). The first payload byte is the
// message type:
//
//	'V' hello        both ways      one version byte (see below)
//	'S' subscribe    client→server  expression (client-scoped id)
//	'U' unsubscribe  client→server  uvarint id
//	'P' publish      client→server  event
//	'H' ping         client→server  empty (keepalive probe)
//	'h' pong         server→client  empty (keepalive answer)
//	'A' ack          server→client  uvarint id (subscribe/unsubscribe ok)
//	'E' error        server→client  uvarint id, utf-8 message
//	'M' match        server→client  uvarint n, n×uvarint ids, event
//
// Version 2 adds durable delivery (requires the server to run with a
// commit log; see Server.LogDir):
//
//	'R' resume       client→server  uvarint id, uvarint from, consumer name
//	'O' resume-ok    server→client  uvarint id, uvarint start offset
//	'D' durable      server→client  uvarint offset, uvarint n, n×uvarint ids, event
//	'K' offset-ack   client→server  uvarint offset
//
// A connection opens with a version handshake: the client's first frame
// must be a hello carrying the highest version it speaks, and the
// server answers with a hello carrying the negotiated version —
// min(client, ProtocolVersion) — before any other frame. A first frame
// that is not a hello, or a version below MinProtocolVersion,
// terminates the connection (after a best-effort 'E' frame naming the
// mismatch), so incompatible peers fail fast instead of desynchronizing
// mid-stream.
//
// Durable delivery: a 'R' resume names a consumer identity and the
// offset the client wants to read from; the server clamps it to what it
// knows (persisted consumer progress, log retention), answers 'O' with
// the effective start offset, replays every logged record for that
// consumer from there as 'D' frames, and streams subsequent matches as
// 'D' frames carrying their log offsets. 'K' acknowledges delivery
// through an offset (cumulative); the server persists it so a later
// resume starts after the last acknowledged record. Delivery is
// at-least-once: a crash between delivery and ack redelivers.
//
// Version 3 adds leader→follower replication (requires both sides to
// run with a commit log; see Server.Follow):
//
//	'F' repl-hello   follower→leader  uvarint epoch, uvarint next offset, node id
//	'f' repl-welcome leader→follower  uvarint epoch, uvarint leader next, uvarint start offset
//	'G' segment      leader→follower  uvarint flags (1=final), segment bytes chunk
//	'g' segment-end  leader→follower  uvarint base, uvarint end, uvarint crc32
//	'b' repl-batch   leader→follower  uvarint flags (1=final), raw batch bytes chunk
//	'B' repl-ack     follower→leader  uvarint replicated next offset
//	'J' repl-offsets leader→follower  n×(uvarint name len, name, uvarint next)
//	'X' fence        either way       uvarint epoch
//
// A replication connection is an ordinary client connection until the
// follower's 'F' handshake: it carries the follower's persisted epoch
// and the next offset its log needs. The leader answers 'f' with its
// epoch and the effective start offset (the follower's request clamped
// forward past retention), then streams history — whole sealed
// segments as 'G' chunks finalized by a CRC-carrying 'g' when the
// follower's position aligns with a segment boundary, raw commit-log
// batches as 'b' chunks otherwise — and parks on the group-commit
// watermark for live tail streaming. The follower acknowledges ingest
// progress with 'B' (which drives the leader's replicated watermark,
// its retention clamp, and -repl-sync delivery gating) and pings with
// 'H' so the leader's ordinary heartbeat reaper detects a dead
// follower. 'J' periodically ships consumer offset snapshots so a
// promoted follower resumes consumers near where the leader left off.
//
// Epochs fence stale leaders: both sides persist a monotone epoch, a
// follower that loses leader liveness promotes by durably bumping its
// epoch and sending 'X' on the dying connection, and any node that
// hears an epoch above its own fences itself — it rejects client
// operations and replication frames until an operator restarts it in a
// valid role. Old-epoch peers are answered with 'X' carrying the newer
// epoch.
//
// Liveness is client-driven: clients send 'H' pings on an interval and
// the server answers 'h'. The server reads under a deadline sized to
// several missed heartbeats and reaps connections that stay silent;
// clients fail the connection when nothing (pong or any other frame)
// arrives within their pong timeout. See Server.HeartbeatInterval and
// ClientOptions.
//
// Subscribe and unsubscribe are acknowledged (one outstanding request
// per connection); publish is fire-and-forget.
package broker

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds frame payloads; larger frames indicate corruption or
// abuse and terminate the connection.
const MaxFrame = 1 << 20

// ProtocolVersion is the highest wire-protocol revision this build
// speaks, carried in the hello handshake. Version 1 introduced the
// handshake itself and the ping/pong keepalive frames; version 2 adds
// durable delivery (resume, durable-match and offset-ack frames);
// version 3 adds commit-log replication with epoch fencing.
const ProtocolVersion = 3

// MinProtocolVersion is the oldest revision the server still accepts;
// clients announcing anything in [MinProtocolVersion, ∞) negotiate
// down to min(theirs, ProtocolVersion).
const MinProtocolVersion = 1

// Message type bytes.
const (
	msgHello       = 'V'
	msgSubscribe   = 'S'
	msgUnsubscribe = 'U'
	msgPublish     = 'P'
	msgPing        = 'H'
	msgPong        = 'h'
	msgAck         = 'A'
	msgErr         = 'E'
	msgMatch       = 'M'
	msgResume      = 'R'
	msgResumeOK    = 'O'
	msgDurable     = 'D'
	msgOffsetAck   = 'K'
	msgReplHello   = 'F'
	msgReplWelcome = 'f'
	msgReplSegment = 'G'
	msgReplSegEnd  = 'g'
	msgReplBatch   = 'b'
	msgReplAck     = 'B'
	msgReplOffsets = 'J'
	msgFence       = 'X'
)

// chunkFinal flags the last chunk of a 'G' segment or 'b' batch
// transfer; replChunk is the chunk size, comfortably under MaxFrame so
// transfers of any commit-log batch (whose size the leader's FlushBytes
// config bounds, not MaxFrame) always fit the wire format.
const (
	chunkFinal = 1
	replChunk  = 256 << 10
)

// helloFrame is the two-byte hello payload both sides send.
func helloFrame() []byte { return []byte{msgHello, ProtocolVersion} }

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("broker: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into buf (reallocating as needed) and
// returns the payload.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 {
		return nil, fmt.Errorf("broker: empty frame")
	}
	if size > MaxFrame {
		return nil, fmt.Errorf("broker: frame of %d bytes exceeds limit", size)
	}
	if cap(buf) < int(size) {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("broker: truncated frame: %w", err)
	}
	return buf, nil
}

// appendUvarint appends v to dst. Per-frame codec: every delivered
// match, durable frame and logged record goes through it.
//
//apcm:hotpath
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("broker: truncated varint")
	}
	return v, b[n:], nil
}
