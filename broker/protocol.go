// Package broker is the networked pub/sub substrate: a TCP server that
// fronts an apcm.Engine with subscribe/unsubscribe/publish operations
// and pushes match notifications to subscriber connections, plus the
// matching client library. It realises the paper's motivating
// application — selective information dissemination — end to end.
//
// Wire format: length-prefixed frames (uint32 big-endian length, then
// payload, at most MaxFrame bytes). The first payload byte is the
// message type:
//
//	'V' hello        both ways      one version byte (see below)
//	'S' subscribe    client→server  expression (client-scoped id)
//	'U' unsubscribe  client→server  uvarint id
//	'P' publish      client→server  event
//	'H' ping         client→server  empty (keepalive probe)
//	'h' pong         server→client  empty (keepalive answer)
//	'A' ack          server→client  uvarint id (subscribe/unsubscribe ok)
//	'E' error        server→client  uvarint id, utf-8 message
//	'M' match        server→client  uvarint n, n×uvarint ids, event
//
// A connection opens with a version handshake: the client's first frame
// must be a hello carrying ProtocolVersion, and the server answers with
// a hello carrying its own version before any other frame. A first
// frame that is not a hello, or a version the server does not speak,
// terminates the connection (after a best-effort 'E' frame naming the
// mismatch), so incompatible peers fail fast instead of desynchronizing
// mid-stream.
//
// Liveness is client-driven: clients send 'H' pings on an interval and
// the server answers 'h'. The server reads under a deadline sized to
// several missed heartbeats and reaps connections that stay silent;
// clients fail the connection when nothing (pong or any other frame)
// arrives within their pong timeout. See Server.HeartbeatInterval and
// ClientOptions.
//
// Subscribe and unsubscribe are acknowledged (one outstanding request
// per connection); publish is fire-and-forget.
package broker

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds frame payloads; larger frames indicate corruption or
// abuse and terminate the connection.
const MaxFrame = 1 << 20

// ProtocolVersion is the wire-protocol revision carried in the hello
// handshake. Version 1 introduced the handshake itself and the
// ping/pong keepalive frames.
const ProtocolVersion = 1

// Message type bytes.
const (
	msgHello       = 'V'
	msgSubscribe   = 'S'
	msgUnsubscribe = 'U'
	msgPublish     = 'P'
	msgPing        = 'H'
	msgPong        = 'h'
	msgAck         = 'A'
	msgErr         = 'E'
	msgMatch       = 'M'
)

// helloFrame is the two-byte hello payload both sides send.
func helloFrame() []byte { return []byte{msgHello, ProtocolVersion} }

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("broker: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into buf (reallocating as needed) and
// returns the payload.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 {
		return nil, fmt.Errorf("broker: empty frame")
	}
	if size > MaxFrame {
		return nil, fmt.Errorf("broker: frame of %d bytes exceeds limit", size)
	}
	if cap(buf) < int(size) {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("broker: truncated frame: %w", err)
	}
	return buf, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("broker: truncated varint")
	}
	return v, b[n:], nil
}
