package broker

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/streammatch/apcm/expr"
)

// TestStressManyPublishersAndSubscribers drives the broker with
// concurrent publishers and subscribers and verifies exact delivery
// counts end to end: every subscriber holds a deterministic profile, so
// the expected delivery total is computable from the published events.
func TestStressManyPublishersAndSubscribers(t *testing.T) {
	_, addr := startServer(t)

	const (
		nSubscribers  = 6
		nPublishers   = 4
		perPublisher  = 300
		topicModulo   = 3 // events carry topic = i % 3
		matchingTopic = 1
	)

	// Subscribers 0,2,4 want topic 1; subscribers 1,3,5 want everything.
	type subscriber struct {
		client   *Client
		all      bool
		received atomic.Int64
	}
	subs := make([]*subscriber, nSubscribers)
	for i := range subs {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		s := &subscriber{client: c, all: i%2 == 1}
		subs[i] = s
		var x *expr.Expression
		if s.all {
			x = expr.MustNew(1, expr.Ge(1, 0))
		} else {
			x = expr.MustNew(1, expr.Eq(1, matchingTopic))
		}
		if err := c.Subscribe(x, func(*expr.Event) { s.received.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for p := 0; p < nPublishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perPublisher; i++ {
				ev := expr.MustEvent(expr.P(1, expr.Value(i%topicModulo)), expr.P(2, expr.Value(p)))
				if err := c.Publish(ev); err != nil {
					t.Error(err)
					return
				}
			}
			// Barrier: an acked request proves all prior publishes on this
			// connection were processed.
			if err := c.Unsubscribe(777); err == nil {
				t.Error("barrier unsubscribe unexpectedly succeeded")
			}
		}(p)
	}
	wg.Wait()

	total := nPublishers * perPublisher
	topicCount := total / topicModulo // events with topic == matchingTopic
	wantPerTopicSub := int64(topicCount)
	wantPerAllSub := int64(total)

	// Delivery is asynchronous past the server's match; allow it to drain.
	deadline := time.Now().Add(5 * time.Second)
	done := func() bool {
		for _, s := range subs {
			want := wantPerTopicSub
			if s.all {
				want = wantPerAllSub
			}
			if s.received.Load() != want {
				return false
			}
		}
		return true
	}
	for !done() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	for i, s := range subs {
		want := wantPerTopicSub
		if s.all {
			want = wantPerAllSub
		}
		if got := s.received.Load(); got != want {
			t.Errorf("subscriber %d received %d, want %d", i, got, want)
		}
	}
}

// TestStressChurningSubscriptions interleaves subscribe/unsubscribe with
// publishing from another connection; the broker must stay consistent
// and never deadlock.
func TestStressChurningSubscriptions(t *testing.T) {
	s, addr := startServer(t)
	churner, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer churner.Close()
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	var pubWg sync.WaitGroup
	pubWg.Add(1)
	go func() {
		defer pubWg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			pub.Publish(expr.MustEvent(expr.P(1, expr.Value(i%10))))
			i++
		}
	}()

	for round := 0; round < 100; round++ {
		id := expr.ID(round%5 + 1)
		x := expr.MustNew(id, expr.Eq(1, expr.Value(round%10)))
		if err := churner.Subscribe(x, func(*expr.Event) {}); err != nil {
			t.Fatalf("round %d: subscribe: %v", round, err)
		}
		if err := churner.Unsubscribe(id); err != nil {
			t.Fatalf("round %d: unsubscribe: %v", round, err)
		}
	}
	close(stop)
	pubWg.Wait()
	if s.eng.Len() != 0 {
		t.Fatalf("engine holds %d subscriptions after churn", s.eng.Len())
	}
}
