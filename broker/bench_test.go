package broker

import (
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/commitlog"
)

// E21 — fsync latency: the group-commit tuning surface. A durable
// consumer's delivery latency is bounded below by the commit path
// (stage → flush → fsync → deliver), and the two flush knobs trade
// throughput against that latency: FlushInterval caps how long a
// staged record waits for co-committers, FlushBytes caps how much
// batching a burst can accumulate before the flush is forced. The
// sweep publishes with a bounded number of in-flight events and
// reports per-event durable-delivery latency percentiles plus
// sustained throughput; the NoFsync row isolates what the fsync
// itself costs versus the group-commit machinery around it.
func BenchmarkE21FsyncLatency(b *testing.B) {
	grid := []struct {
		name     string
		interval time.Duration
		bytes    int
		nofsync  bool
	}{
		{"fi=100us/fb=4KiB", 100 * time.Microsecond, 4 << 10, false},
		{"fi=100us/fb=64KiB", 100 * time.Microsecond, 64 << 10, false},
		{"fi=1ms/fb=4KiB", time.Millisecond, 4 << 10, false},
		{"fi=1ms/fb=64KiB", time.Millisecond, 64 << 10, false},
		{"fi=5ms/fb=64KiB", 5 * time.Millisecond, 64 << 10, false},
		{"fi=100us/nofsync", 100 * time.Microsecond, 64 << 10, true},
	}
	for _, g := range grid {
		b.Run(g.name, func(b *testing.B) {
			benchDurableLatency(b, commitlog.Config{
				SegmentBytes:  8 << 20,
				FlushInterval: g.interval,
				FlushBytes:    g.bytes,
				NoFsync:       g.nofsync,
			})
		})
	}
}

// benchDurableLatency measures publish→durable-delivery latency through
// a real broker over TCP with at most 32 events in flight, the shape of
// a pipelined durable producer. Run with a fixed -benchtime (e.g.
// 2000x) so every config sees the same sample count in one incarnation.
func benchDurableLatency(b *testing.B, lc commitlog.Config) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s := NewServer(eng)
	s.LogDir = b.TempDir()
	s.Log = lc
	go func() { _ = s.Serve(ln) }()
	defer s.Close()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}

	const inflight = 32
	sem := make(chan struct{}, inflight)
	var mu sync.Mutex
	sendAt := make([]time.Time, 0, b.N)
	lat := make([]time.Duration, 0, b.N)
	done := make(chan struct{})
	recvd := 0
	c := NewClientOpts(nc, ClientOptions{OnDurable: func(off uint64, ev *expr.Event) {
		now := time.Now()
		mu.Lock()
		// Single publisher, FIFO log, one consumer: delivery order is
		// publish order, so the nth delivery matches the nth send stamp.
		if recvd < len(sendAt) {
			lat = append(lat, now.Sub(sendAt[recvd]))
		}
		recvd++
		n := recvd
		mu.Unlock()
		<-sem
		if n == b.N {
			close(done)
		}
	}})
	defer c.Close()
	if err := c.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Resume("bench", 0); err != nil {
		b.Fatal(err)
	}

	ev := crashEvent(7)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		mu.Lock()
		sendAt = append(sendAt, time.Now())
		mu.Unlock()
		if err := c.Publish(ev); err != nil {
			b.Fatal(err)
		}
	}
	<-done
	elapsed := time.Since(start)
	b.StopTimer()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pctl := func(q float64) float64 {
		return float64(lat[int(q*float64(len(lat)-1))]) / 1e3
	}
	b.ReportMetric(pctl(0.50), "p50_us")
	b.ReportMetric(pctl(0.99), "p99_us")
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "events/s")
	b.ReportMetric(0, "ns/op") // wall time is the pipeline's, not per-op
}
