package broker

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/commitlog"
)

// The replication crash matrix extends the single-node crash matrix to
// the replicated pair: a leader/follower deployment is driven through a
// seeded failure — the leader killed mid-catch-up or mid-tail, the
// follower crashed mid-ingest by an armed commitlog failpoint (with the
// same page-cache-loss and torn-tail degradation the single-node matrix
// applies), or an asymmetric partition that silences the leader toward
// the follower while the reverse direction still flows — and the
// surviving state must satisfy the replication contract:
//
//   - prefix oracle: the follower's record stream is byte-identical to
//     the leader's on the prefix both hold; promotion never fabricates
//     or reorders history below PromotedAt,
//   - epoch fencing: a promotion bumps the epoch exactly once, the
//     partitioned stale leader ends fenced at the promoted epoch, and a
//     crash-restarted follower re-follows at epoch 0 without inventing
//     a regime,
//   - self-heal: a follower restarted on its degraded directory
//     truncates its torn tail via ordinary Open recovery, re-attaches
//     below its old acknowledgement, and converges to the leader's log,
//   - continuity: after a failover, a durable consumer resumes on the
//     promoted follower at its shipped offset and receives a gap-free
//     offset stream through post-failover publishes.
//
// Schedules derive from APCM_FAULT_SEED (default 1); a failing schedule
// replays with APCM_FAULT_SEED=<seed> go test -run
// 'ReplCrashMatrix/<name>'.

// replCrashMode selects the failure a schedule injects.
type replCrashMode int

const (
	modeLeaderKill replCrashMode = iota
	modeFollowerCrash
	modePartition
	replCrashModes
)

func (m replCrashMode) String() string {
	switch m {
	case modeLeaderKill:
		return "leader-kill"
	case modeFollowerCrash:
		return "follower-crash"
	case modePartition:
		return "partition"
	}
	return fmt.Sprintf("mode-%d", int(m))
}

// replCrashPlan is one seeded schedule.
type replCrashPlan struct {
	mode        replCrashMode
	phase1      int                 // records published before the follower exists (sealed-segment catch-up)
	phase2      int                 // records published while the follower tracks the tail
	phase3      int                 // records published to the promoted follower after failover
	killAt      int                 // inject the failure once the follower holds >= killAt records
	point       commitlog.Failpoint // follower-crash: which commit step dies
	nth         int                 // follower-crash: on the nth hit of point
	garbageTail bool                // append garbage to the crashed side's last segment
}

func newReplCrashPlan(rng *rand.Rand) replCrashPlan {
	points := []commitlog.Failpoint{
		commitlog.FpWrite, commitlog.FpPreSync, commitlog.FpPostSync,
	}
	p := replCrashPlan{
		mode:        replCrashMode(rng.Intn(int(replCrashModes))),
		phase1:      6 + rng.Intn(24),
		phase2:      3 + rng.Intn(12),
		phase3:      2 + rng.Intn(5),
		point:       points[rng.Intn(len(points))],
		nth:         1 + rng.Intn(5),
		garbageTail: rng.Intn(3) == 0,
	}
	p.killAt = 1 + rng.Intn(p.phase1+p.phase2)
	return p
}

func TestReplCrashMatrix(t *testing.T) {
	seed := faultSeed(t)
	schedules := 100
	if testing.Short() {
		schedules = 12
	}
	for i := 0; i < schedules; i++ {
		i := i
		t.Run(fmt.Sprintf("schedule-%03d", i), func(t *testing.T) {
			t.Parallel()
			runReplCrashSchedule(t, rand.New(rand.NewSource(seed+int64(i)*7919)))
		})
	}
}

func runReplCrashSchedule(t *testing.T, rng *rand.Rand) {
	plan := newReplCrashPlan(rng)
	t.Logf("plan: %v phase1=%d phase2=%d phase3=%d killAt=%d point=%v nth=%d garbage=%v",
		plan.mode, plan.phase1, plan.phase2, plan.phase3, plan.killAt, plan.point, plan.nth, plan.garbageTail)
	const consumer = "m"
	leaderDir, followerDir := t.TempDir(), t.TempDir()

	// Tight failover clocks so promotion schedules finish in test time;
	// the matrix serializes on small machines, so every schedule pays
	// its own timeout.
	tuneClocks := func(s *Server) {
		s.ReplTimeout = 250 * time.Millisecond
	}
	leader, lAddr := startReplServer(t, leaderDir, tuneClocks)

	c, rec := attachConsumer(t, lAddr, consumer)
	for seq := 0; seq < plan.phase1; seq++ {
		if err := c.Publish(crashEvent(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "phase-1 delivery", func() bool {
		offs, _ := rec.snapshot()
		return len(offs) >= plan.phase1
	})

	// Follower-crash schedules arm a sticky failpoint on the follower's
	// log, the same process-death emulation the single-node matrix uses:
	// the nth hit of the planned point fails the log permanently, and
	// the hit's path and synced watermark drive the on-disk degradation.
	var fpMu sync.Mutex
	var hits int
	var crashed bool
	var crashPath string
	var crashSynced int64
	followerFailpoint := func(fi commitlog.FailpointInfo) error {
		fpMu.Lock()
		defer fpMu.Unlock()
		if crashed || fi.Point != plan.point {
			return nil
		}
		if hits++; hits < plan.nth {
			return nil
		}
		crashed = true
		crashPath = fi.Path
		crashSynced = fi.Synced
		return errInjectedCrash
	}
	didCrash := func() bool {
		fpMu.Lock()
		defer fpMu.Unlock()
		return crashed
	}

	dialer := &replDialer{}
	follower, fAddr := startReplServer(t, followerDir, func(s *Server) {
		tuneClocks(s)
		s.Follow = lAddr
		s.NodeID = "f1"
		if plan.mode == modePartition {
			s.ReplDial = dialer.dial
		}
		if plan.mode == modeFollowerCrash {
			s.Log.Failpoint = followerFailpoint
		}
	})

	for seq := plan.phase1; seq < plan.phase1+plan.phase2; seq++ {
		if err := c.Publish(crashEvent(seq)); err != nil {
			t.Fatal(err)
		}
	}
	total := uint64(plan.phase1 + plan.phase2)

	switch plan.mode {
	case modeLeaderKill:
		runLeaderKill(t, plan, leader, leaderDir, follower, fAddr, consumer, rng)
	case modeFollowerCrash:
		runFollowerCrash(t, plan, leader, lAddr, follower, followerDir, total, didCrash,
			&fpMu, &crashPath, &crashSynced, rng)
	case modePartition:
		runStalePartition(t, plan, leader, follower, dialer, total)
	}
}

// runLeaderKill kills the leader once the follower holds killAt records
// — mid-segment-ship when killAt lands inside the sealed catch-up
// prefix, mid-tail otherwise — then verifies promotion, the prefix
// oracle against the leader's surviving on-disk log, and gap-free
// durable consumption on the promoted follower.
func runLeaderKill(t *testing.T, plan replCrashPlan, leader *Server, leaderDir string,
	follower *Server, fAddr, consumer string, rng *rand.Rand) {
	waitFor(t, "follower reaches kill point", func() bool {
		return follower.log.NextOffset() >= uint64(plan.killAt)
	})
	leader.Close()
	if plan.garbageTail {
		// The leader machine died with a torn tail: garbage past the
		// synced watermark that its own recovery (and our offline
		// oracle's Open) must truncate away.
		last := lastSegment(t, leaderDir)
		f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		garbage := make([]byte, 1+rng.Intn(40))
		rng.Read(garbage)
		f.Write(garbage)
		f.Close()
	}

	waitFor(t, "follower promotion", func() bool { return follower.Role() == "leader" })
	if e := follower.Epoch(); e != 1 {
		t.Fatalf("promoted follower at epoch %d, want 1", e)
	}
	at, ok := follower.PromotedAt()
	if !ok {
		t.Fatal("promoted follower reports no promotion offset")
	}
	if at < uint64(plan.killAt) {
		t.Fatalf("promoted at offset %d, below kill point %d", at, plan.killAt)
	}

	// Prefix oracle: everything below PromotedAt is the old regime's
	// history and must match the leader's log byte for byte.
	leaderNext, leaderRecs := offlineRecords(t, leaderDir, at)
	if at > leaderNext {
		t.Fatalf("follower promoted at offset %d beyond the leader's surviving log end %d: fabricated history", at, leaderNext)
	}
	assertPrefixEqual(t, leaderRecs, onlineRecords(t, follower.log, at), at)

	// Continuity: a durable consumer re-attaches to the promoted
	// follower at its shipped offset and reads a gap-free stream through
	// fresh post-failover publishes.
	n0 := follower.log.NextOffset()
	rec2 := &crashRecorder{}
	c2, _ := durableDial(t, fAddr, ClientOptions{OnDurable: rec2.onDurable})
	if err := c2.Subscribe(expr.MustNew(1, expr.Eq(1, 1)), func(*expr.Event) {}); err != nil {
		t.Fatal(err)
	}
	start, err := c2.Resume(consumer, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start > n0 {
		t.Fatalf("resume started at %d beyond the follower log end %d: shipped ack for an unreplicated record", start, n0)
	}
	for i := 0; i < plan.phase3; i++ {
		if err := c2.Publish(crashEvent(2000 + i)); err != nil {
			t.Fatal(err)
		}
	}
	wantTotal := int(n0-start) + plan.phase3
	waitFor(t, "replay and phase-3 delivery on the promoted follower", func() bool {
		offs, _ := rec2.snapshot()
		return len(offs) >= wantTotal
	})
	offs2, _ := rec2.snapshot()
	if len(offs2) != wantTotal {
		t.Fatalf("promoted follower delivered %d records, want %d", len(offs2), wantTotal)
	}
	for i, off := range offs2 {
		if want := start + uint64(i); off != want {
			t.Fatalf("delivery %d at offset %d, want %d (gap across failover)", i, off, want)
		}
	}
}

// runFollowerCrash lets the armed failpoint kill the follower
// mid-ingest, degrades its directory the way the machine death would
// (unsynced bytes vanish, optional torn tail), restarts it on the same
// directory, and verifies it self-heals and converges: same records as
// the leader, byte for byte, still at epoch 0.
func runFollowerCrash(t *testing.T, plan replCrashPlan, leader *Server, lAddr string,
	follower *Server, followerDir string, total uint64, didCrash func() bool,
	fpMu *sync.Mutex, crashPath *string, crashSynced *int64, rng *rand.Rand) {
	// Either the failpoint fires mid-ingest or the follower converges
	// without reaching the nth hit — both are valid matrix runs.
	waitFor(t, "follower crash or full convergence", func() bool {
		return didCrash() || follower.log.NextOffset() >= total
	})
	follower.Close()

	if didCrash() {
		fpMu.Lock()
		path, synced := *crashPath, *crashSynced
		fpMu.Unlock()
		if plan.point == commitlog.FpPreSync && path != "" {
			// Written but never synced: the page cache died with the
			// machine.
			if st, err := os.Stat(path); err == nil && synced < st.Size() {
				if err := os.Truncate(path, synced); err != nil {
					t.Fatal(err)
				}
			}
		}
		if plan.garbageTail {
			last := lastSegment(t, followerDir)
			f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			garbage := make([]byte, 1+rng.Intn(40))
			rng.Read(garbage)
			f.Write(garbage)
			f.Close()
		}
	}

	// Restart on the degraded directory: Open's recovery truncates the
	// torn tail, the replicator re-attaches at the recovered offset
	// (below its old acknowledgement — the watermark must drop back),
	// and catch-up converges.
	follower2, _ := startReplServer(t, followerDir, func(s *Server) {
		s.ReplTimeout = 250 * time.Millisecond
		s.Follow = lAddr
		s.NodeID = "f1"
	})
	waitFor(t, "restarted follower convergence", func() bool {
		return follower2.log.NextOffset() >= total
	})
	waitFor(t, "leader replicated watermark", func() bool {
		repl, ok := leader.log.Replicated()
		return ok && repl >= total
	})

	if lr, fr := leader.Role(), follower2.Role(); lr != "leader" || fr != "follower" {
		t.Fatalf("roles = %s/%s after follower crash-restart, want leader/follower", lr, fr)
	}
	if le, fe := leader.Epoch(), follower2.Epoch(); le != 0 || fe != 0 {
		t.Fatalf("epochs advanced to %d/%d without a failover", le, fe)
	}
	assertPrefixEqual(t, onlineRecords(t, leader.log, total), onlineRecords(t, follower2.log, total), total)
}

// runStalePartition imposes the asymmetric partition once the follower
// holds killAt records: the follower promotes on silence and its fence
// — carried by the still-flowing follower→leader direction — must
// terminate the stale leader, leaving exactly one writable regime.
func runStalePartition(t *testing.T, plan replCrashPlan, leader, follower *Server,
	dialer *replDialer, total uint64) {
	waitFor(t, "follower reaches partition point", func() bool {
		return follower.log.NextOffset() >= uint64(plan.killAt)
	})
	waitFor(t, "repl conn wrapped", func() bool { return dialer.conn() != nil })
	dialer.conn().BlackholeIn()

	waitFor(t, "follower promotion", func() bool { return follower.Role() == "leader" })
	if e := follower.Epoch(); e != 1 {
		t.Fatalf("promoted follower at epoch %d, want 1", e)
	}
	at, ok := follower.PromotedAt()
	if !ok || at < uint64(plan.killAt) || at > total {
		t.Fatalf("PromotedAt = %d,%v, want [%d,%d]", at, ok, plan.killAt, total)
	}
	waitFor(t, "stale leader fenced", func() bool { return leader.Role() == "fenced" })
	if le, fe := leader.Epoch(), follower.Epoch(); le != fe {
		t.Fatalf("fenced leader at epoch %d, promoted follower at %d", le, fe)
	}

	// Prefix oracle: the promoted regime's history below PromotedAt is
	// the old leader's, verbatim. The fenced leader's log object is
	// still readable in-process.
	if leaderNext := leader.log.NextOffset(); at > leaderNext {
		t.Fatalf("follower promoted at offset %d beyond the leader's log end %d: fabricated history", at, leaderNext)
	}
	assertPrefixEqual(t, onlineRecords(t, leader.log, at), onlineRecords(t, follower.log, at), at)
}

var errStopRead = errors.New("stop read")

// onlineRecords snapshots the first upto records of a live log.
func onlineRecords(t *testing.T, l *commitlog.Log, upto uint64) [][]byte {
	t.Helper()
	var recs [][]byte
	err := l.Read(0, func(off uint64, rec []byte) error {
		if off >= upto {
			return errStopRead
		}
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil && !errors.Is(err, errStopRead) {
		t.Fatalf("reading log: %v", err)
	}
	return recs
}

// offlineRecords reopens a (closed) broker's log directory offline and
// returns its recovered next offset plus the first upto records — the
// crash oracle's view of what the dead node's disk actually holds.
func offlineRecords(t *testing.T, dir string, upto uint64) (uint64, [][]byte) {
	t.Helper()
	l, err := commitlog.Open(dir, commitlog.Config{SegmentBytes: crashSegmentBytes})
	if err != nil {
		t.Fatalf("offline open %s: %v", dir, err)
	}
	defer l.Close()
	var recs [][]byte
	err = l.Read(0, func(off uint64, rec []byte) error {
		if off >= upto {
			return errStopRead
		}
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil && !errors.Is(err, errStopRead) {
		t.Fatalf("offline read %s: %v", dir, err)
	}
	return l.NextOffset(), recs
}

// assertPrefixEqual fails unless both record streams hold the same upto
// records, byte for byte.
func assertPrefixEqual(t *testing.T, want, got [][]byte, upto uint64) {
	t.Helper()
	if uint64(len(want)) != upto || uint64(len(got)) != upto {
		t.Fatalf("prefix streams hold %d and %d records, want %d each", len(want), len(got), upto)
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("record %d diverges between leader and follower:\n  leader:   %x\n  follower: %x", i, want[i], got[i])
		}
	}
}
