package apcm_test

import (
	"sort"
	"sync"
	"testing"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/workload"
)

func testWorkload(seed int64) *workload.Generator {
	p := workload.Default()
	p.Seed = seed
	p.NumAttrs = 25
	p.Cardinality = 50
	p.EventAttrs = 8
	p.PredsMin, p.PredsMax = 1, 4
	p.MatchFraction = 0.3
	p.WNegated = 0.05
	return workload.MustNew(p)
}

func sorted(ids []expr.ID) []expr.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestAlgorithmsAgree(t *testing.T) {
	g := testWorkload(1)
	xs := g.Expressions(1500)
	events := g.Events(400)

	engines := map[string]*apcm.Engine{}
	for _, alg := range apcm.Algorithms() {
		for _, workers := range []int{1, 4} {
			e := apcm.MustNew(apcm.Options{Algorithm: alg, Workers: workers, IntraEventParallelism: 4})
			defer e.Close()
			for _, x := range xs {
				if err := e.Subscribe(x); err != nil {
					t.Fatal(err)
				}
			}
			engines[alg.String()+string(rune('0'+workers))] = e
		}
	}

	for i, ev := range events {
		var want []expr.ID
		for _, x := range xs {
			if x.MatchesEvent(ev) {
				want = append(want, x.ID)
			}
		}
		want = sorted(want)
		for name, e := range engines {
			got := sorted(e.Match(ev))
			if len(got) != len(want) {
				t.Fatalf("event %d: %s returned %d matches, oracle %d", i, name, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("event %d: %s diverged from oracle", i, name)
				}
			}
		}
	}
}

func TestMatchBatchAgreesWithMatch(t *testing.T) {
	g := testWorkload(2)
	xs := g.Expressions(1000)
	events := g.Events(200)
	for _, alg := range apcm.Algorithms() {
		e := apcm.MustNew(apcm.Options{Algorithm: alg, Workers: 4})
		for _, x := range xs {
			if err := e.Subscribe(x); err != nil {
				t.Fatal(err)
			}
		}
		batch := e.MatchBatch(events)
		for i, ev := range events {
			single := sorted(e.Match(ev))
			got := sorted(batch[i])
			if len(single) != len(got) {
				t.Fatalf("%v: batch[%d] has %d matches, Match has %d", alg, i, len(got), len(single))
			}
			for j := range single {
				if single[j] != got[j] {
					t.Fatalf("%v: batch[%d] diverged", alg, i)
				}
			}
		}
		e.Close()
	}
}

func TestSubscribeUnsubscribe(t *testing.T) {
	e := apcm.MustNew(apcm.Options{})
	defer e.Close()
	id, err := e.SubscribePreds(expr.Eq(1, 5), expr.Ge(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	ev := expr.MustEvent(expr.P(1, 5), expr.P(2, 15))
	if got := e.Match(ev); len(got) != 1 || got[0] != id {
		t.Fatalf("Match = %v, want [%d]", got, id)
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d", e.Len())
	}
	if !e.Unsubscribe(id) {
		t.Fatal("Unsubscribe failed")
	}
	if e.Unsubscribe(id) {
		t.Fatal("double Unsubscribe succeeded")
	}
	if got := e.Match(ev); len(got) != 0 {
		t.Fatalf("match after unsubscribe: %v", got)
	}
}

func TestSubscribePredsValidates(t *testing.T) {
	e := apcm.MustNew(apcm.Options{})
	defer e.Close()
	if _, err := e.SubscribePreds(); err == nil {
		t.Fatal("empty predicate list should fail")
	}
	if _, err := e.SubscribePreds(expr.Predicate{Attr: 1, Op: expr.Between, Lo: 5, Hi: 1}); err == nil {
		t.Fatal("invalid predicate should fail")
	}
}

func TestDuplicateSubscribe(t *testing.T) {
	e := apcm.MustNew(apcm.Options{})
	defer e.Close()
	x := expr.MustNew(7, expr.Eq(1, 1))
	if err := e.Subscribe(x); err != nil {
		t.Fatal(err)
	}
	if err := e.Subscribe(x); err == nil {
		t.Fatal("duplicate id should fail")
	}
}

func TestNewIDUnique(t *testing.T) {
	e := apcm.MustNew(apcm.Options{})
	defer e.Close()
	seen := map[expr.ID]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := e.NewID()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate id %d", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestCloseSemantics(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Workers: 2})
	if _, err := e.SubscribePreds(expr.Eq(1, 1)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if err := e.Subscribe(expr.MustNew(99, expr.Eq(1, 1))); err != apcm.ErrClosed {
		t.Fatalf("Subscribe after close = %v, want ErrClosed", err)
	}
	if got := e.Match(expr.MustEvent(expr.P(1, 1))); got != nil {
		t.Fatalf("Match after close = %v", got)
	}
	if e.Len() != 0 {
		t.Fatalf("Len after close = %d", e.Len())
	}
	if e.Unsubscribe(1) {
		t.Fatal("Unsubscribe after close succeeded")
	}
}

func TestConcurrentSubscribeAndMatch(t *testing.T) {
	g := testWorkload(3)
	xs := g.Expressions(2000)
	events := g.Events(100)
	e := apcm.MustNew(apcm.Options{Workers: 4})
	defer e.Close()
	for _, x := range xs[:1000] {
		if err := e.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, x := range xs[1000:] {
			if err := e.Subscribe(x); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			e.Match(events[i%len(events)])
		}
	}()
	wg.Wait()
	if e.Len() != 2000 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestStats(t *testing.T) {
	g := testWorkload(4)
	e := apcm.MustNew(apcm.Options{Algorithm: APCMFor(t), Workers: 2})
	defer e.Close()
	for _, x := range g.Expressions(1000) {
		if err := e.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}
	e.Prepare()
	st := e.Stats()
	if st.Subscriptions != 1000 {
		t.Fatalf("Subscriptions = %d", st.Subscriptions)
	}
	if st.Workers != 2 {
		t.Fatalf("Workers = %d", st.Workers)
	}
	if st.MemBytes <= 0 {
		t.Fatal("MemBytes should be positive")
	}
	if st.CompiledClusters == 0 {
		t.Fatal("Prepare compiled nothing")
	}
	if st.CompressionRatio <= 0 {
		t.Fatal("CompressionRatio should be positive after Prepare")
	}
}

// TestStatsOrderCountersFlushSingleEvent pins the counter flush on the
// single-event path: group-order sorts and early exits accumulate in
// per-goroutine scratch and only reach Stats() when the scratch is
// released, which the batch path does in EndBatch and Match must do on
// scratch put. A dense small-universe workload makes both counters fire.
func TestStatsOrderCountersFlushSingleEvent(t *testing.T) {
	p := workload.Default()
	p.Seed = 7
	p.NumAttrs = 20
	p.Cardinality = 5
	p.PredPoolSize = 4
	g := workload.MustNew(p)
	e := apcm.MustNew(apcm.Options{Algorithm: apcm.PCM})
	defer e.Close()
	for _, x := range g.Expressions(5000) {
		if err := e.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}
	e.Prepare()
	for i := 0; i < 2000; i++ {
		e.Match(g.Event())
	}
	st := e.Stats()
	if st.GroupOrderSorts == 0 {
		t.Error("GroupOrderSorts not flushed on the single-event path")
	}
	if st.GroupOrderEarlyExits == 0 {
		t.Error("GroupOrderEarlyExits not flushed on the single-event path")
	}
}

// APCMFor exists to keep the algorithm symbol usage obvious in tests.
func APCMFor(t *testing.T) apcm.Algorithm {
	t.Helper()
	return apcm.APCM
}

func TestStatsBaseline(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Algorithm: apcm.Scan, Workers: 1})
	defer e.Close()
	if _, err := e.SubscribePreds(expr.Eq(1, 1)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.CompiledClusters != 0 || st.CompressionRatio != 0 {
		t.Fatal("baseline should report no compression")
	}
	if st.MemBytes <= 0 || st.Subscriptions != 1 || st.Workers != 1 {
		t.Fatalf("baseline stats wrong: %+v", st)
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]apcm.Algorithm{
		"apcm": apcm.APCM, "A-PCM": apcm.APCM, "adaptive": apcm.APCM,
		"PCM": apcm.PCM, "compressed": apcm.PCM,
		"betree": apcm.BETree, "BE-Tree": apcm.BETree,
		"counting": apcm.Counting, "scan": apcm.Scan, "naive": apcm.Scan,
	}
	for s, want := range cases {
		got, err := apcm.ParseAlgorithm(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := apcm.ParseAlgorithm("quantum"); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range apcm.Algorithms() {
		if a.String() == "" {
			t.Fatalf("algorithm %d has empty name", a)
		}
		back, err := apcm.ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip failed for %v", a)
		}
	}
}

func TestNormalizeOption(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Workers: 1, Normalize: true})
	defer e.Close()
	// Redundant predicates collapse but matching is unchanged.
	id, err := e.SubscribePreds(expr.Ge(1, 100), expr.Ge(1, 150), expr.Le(1, 300))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Match(expr.MustEvent(expr.P(1, 200))); len(got) != 1 || got[0] != id {
		t.Fatalf("got %v", got)
	}
	if got := e.Match(expr.MustEvent(expr.P(1, 120))); len(got) != 0 {
		t.Fatalf("normalization changed semantics: %v", got)
	}
	// Unsatisfiable subscriptions are rejected up front.
	if _, err := e.SubscribePreds(expr.Eq(1, 1), expr.Eq(1, 2)); err != apcm.ErrUnsatisfiable {
		t.Fatalf("unsat subscribe = %v, want ErrUnsatisfiable", err)
	}
	// DNF: unsat disjuncts are dropped, all-unsat groups rejected.
	gid, err := e.SubscribeAny(
		[]expr.Predicate{expr.Eq(2, 1), expr.Eq(2, 2)}, // unsat
		[]expr.Predicate{expr.Eq(2, 3)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Match(expr.MustEvent(expr.P(2, 3))); len(got) != 1 || got[0] != gid {
		t.Fatalf("got %v", got)
	}
	if _, err := e.SubscribeAny([]expr.Predicate{expr.Eq(2, 1), expr.Eq(2, 2)}); err != apcm.ErrUnsatisfiable {
		t.Fatalf("all-unsat group = %v, want ErrUnsatisfiable", err)
	}
}

func TestClustersDiagnostics(t *testing.T) {
	g := testWorkload(9)
	e := apcm.MustNew(apcm.Options{Workers: 1, ProbeInterval: 4})
	defer e.Close()
	for _, x := range g.Expressions(2000) {
		if err := e.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}
	e.Prepare()
	for _, ev := range g.Events(200) {
		e.Match(ev)
	}
	cs := e.Clusters()
	if len(cs) == 0 {
		t.Fatal("no cluster diagnostics after Prepare")
	}
	totalLive, probed := 0, 0
	for _, c := range cs {
		if c.Live != c.Members-c.Tombstones {
			t.Fatalf("live/members/tombstones inconsistent: %+v", c)
		}
		if c.PredSlots < c.DistinctPreds || c.Attrs <= 0 || c.MemBytes <= 0 {
			t.Fatalf("implausible cluster info: %+v", c)
		}
		totalLive += c.Live
		if c.EwmaCompressedNs > 0 {
			probed++
		}
	}
	if totalLive > 2000 {
		t.Fatalf("clusters hold %d live members, more than subscribed", totalLive)
	}
	if probed == 0 {
		t.Fatal("no cluster was ever probed despite matching")
	}
	// Baselines have no clusters.
	b := apcm.MustNew(apcm.Options{Algorithm: apcm.BETree})
	defer b.Close()
	if b.Clusters() != nil {
		t.Fatal("baseline reported clusters")
	}
}

func TestPrepareOnBaselineIsNoop(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Algorithm: apcm.BETree})
	defer e.Close()
	e.Prepare() // must not panic
}
