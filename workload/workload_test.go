package workload

import (
	"testing"

	"github.com/streammatch/apcm/expr"
)

func TestDefaultValidates(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := Default()
	mutations := []func(*Params){
		func(p *Params) { p.NumAttrs = 0 },
		func(p *Params) { p.Cardinality = 1 },
		func(p *Params) { p.PredsMin = 0 },
		func(p *Params) { p.PredsMax = p.PredsMin - 1 },
		func(p *Params) { p.WEquality = -1 },
		func(p *Params) { p.WEquality, p.WRange, p.WMembership, p.WNegated = 0, 0, 0, 0 },
		func(p *Params) { p.RangeWidthFrac = 1.5 },
		func(p *Params) { p.InSetSize = 0 },
		func(p *Params) { p.ValueZipf = 0.5 },
		func(p *Params) { p.AttrZipf = 1.0 },
		func(p *Params) { p.EventAttrs = 0 },
		func(p *Params) { p.EventAttrs = p.NumAttrs + 1 },
		func(p *Params) { p.MatchFraction = 1.1 },
		func(p *Params) { p.PredPoolSize = -1 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := Default()
	p.WNegated = 0.05
	g1 := MustNew(p)
	g2 := MustNew(p)
	xs1 := g1.Expressions(200)
	xs2 := g2.Expressions(200)
	for i := range xs1 {
		if xs1[i].String() != xs2[i].String() {
			t.Fatalf("expression %d differs between identical seeds", i)
		}
	}
	ev1 := g1.Events(200)
	ev2 := g2.Events(200)
	for i := range ev1 {
		if ev1[i].String() != ev2[i].String() {
			t.Fatalf("event %d differs between identical seeds", i)
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	p := Default()
	g1 := MustNew(p)
	p.Seed = 2
	g2 := MustNew(p)
	same := 0
	xs1 := g1.Expressions(50)
	xs2 := g2.Expressions(50)
	for i := range xs1 {
		if xs1[i].String() == xs2[i].String() {
			same++
		}
	}
	if same == len(xs1) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestExpressionShape(t *testing.T) {
	p := Default()
	p.PredsMin, p.PredsMax = 3, 6
	g := MustNew(p)
	for _, x := range g.Expressions(500) {
		if len(x.Preds) < 3 || len(x.Preds) > 6 {
			t.Fatalf("expression has %d predicates, want [3,6]", len(x.Preds))
		}
		seen := map[expr.AttrID]bool{}
		for i := range x.Preds {
			pr := &x.Preds[i]
			if seen[pr.Attr] {
				t.Fatalf("duplicate attribute %d in generated expression", pr.Attr)
			}
			seen[pr.Attr] = true
			if int(pr.Attr) >= p.NumAttrs {
				t.Fatalf("attribute %d out of space", pr.Attr)
			}
			if err := pr.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSequentialIDs(t *testing.T) {
	g := MustNew(Default())
	xs := g.Expressions(10)
	for i, x := range xs {
		if x.ID != expr.ID(i+1) {
			t.Fatalf("expression %d has id %d", i, x.ID)
		}
	}
}

func TestEventShape(t *testing.T) {
	p := Default()
	g := MustNew(p)
	g.Expressions(100)
	for _, e := range g.Events(500) {
		if e.Len() != p.EventAttrs {
			t.Fatalf("event has %d attributes, want %d", e.Len(), p.EventAttrs)
		}
		for _, pair := range e.Pairs() {
			if int(pair.Attr) >= p.NumAttrs {
				t.Fatalf("event attribute %d out of space", pair.Attr)
			}
			if pair.Val < 0 || int(pair.Val) >= p.Cardinality {
				t.Fatalf("event value %d out of domain", pair.Val)
			}
		}
	}
}

func TestPlantedEventsRaiseMatchRate(t *testing.T) {
	low := Default()
	low.MatchFraction = 0
	high := Default()
	high.MatchFraction = 0.5

	count := func(p Params) int {
		g := MustNew(p)
		xs := g.Expressions(2000)
		matches := 0
		for _, e := range g.Events(500) {
			for _, x := range xs {
				if x.MatchesEvent(e) {
					matches++
				}
			}
		}
		return matches
	}
	if l, h := count(low), count(high); h <= l {
		t.Fatalf("planted events did not raise match count: low=%d high=%d", l, h)
	}
}

func TestPlantedEventActuallyMatches(t *testing.T) {
	// With MatchFraction=1 and one expression, nearly every event should
	// match it (plants can fall back to random only on contradictory
	// pooled predicates, which a fresh pool avoids).
	p := Default()
	p.MatchFraction = 1
	p.PredPoolSize = 0
	g := MustNew(p)
	x := g.Expression()
	matched := 0
	for _, e := range g.Events(200) {
		if x.MatchesEvent(e) {
			matched++
		}
	}
	if matched < 190 {
		t.Fatalf("only %d/200 planted events match their source expression", matched)
	}
}

func TestPredPoolBoundsDistinctPredicates(t *testing.T) {
	p := Default()
	p.PredPoolSize = 3
	p.NumAttrs = 10
	p.EventAttrs = 5
	g := MustNew(p)
	distinct := map[string]bool{}
	for _, x := range g.Expressions(300) {
		for i := range x.Preds {
			distinct[x.Preds[i].Key()] = true
		}
	}
	if max := p.NumAttrs * p.PredPoolSize; len(distinct) > max {
		t.Fatalf("%d distinct predicates exceed pool bound %d", len(distinct), max)
	}
	if len(distinct) < 10 {
		t.Fatalf("pool produced implausibly few distinct predicates: %d", len(distinct))
	}
}

func TestNoPoolProducesMoreDistinctPredicates(t *testing.T) {
	count := func(pool int) int {
		p := Default()
		p.PredPoolSize = pool
		p.NumAttrs = 20
		p.EventAttrs = 5
		g := MustNew(p)
		distinct := map[string]bool{}
		for _, x := range g.Expressions(500) {
			for i := range x.Preds {
				distinct[x.Preds[i].Key()] = true
			}
		}
		return len(distinct)
	}
	if pooled, fresh := count(2), count(0); fresh <= pooled {
		t.Fatalf("expected fresh predicates (%d) to outnumber pooled (%d)", fresh, pooled)
	}
}

func TestZipfSkewsValues(t *testing.T) {
	p := Default()
	p.ValueZipf = 2.0
	p.WEquality, p.WRange, p.WMembership, p.WNegated = 1, 0, 0, 0
	g := MustNew(p)
	zeroes, total := 0, 0
	for _, x := range g.Expressions(500) {
		for i := range x.Preds {
			total++
			if x.Preds[i].Lo == 0 {
				zeroes++
			}
		}
	}
	// Zipf with s=2 concentrates mass at 0; uniform would put ~1/1000 there.
	if float64(zeroes)/float64(total) < 0.2 {
		t.Fatalf("Zipf skew missing: %d/%d values are 0", zeroes, total)
	}
}

func TestAttrZipfSkewsAttributes(t *testing.T) {
	p := Default()
	p.AttrZipf = 2.0
	g := MustNew(p)
	counts := map[expr.AttrID]int{}
	total := 0
	for _, x := range g.Expressions(300) {
		for _, a := range x.Attrs() {
			counts[a]++
			total++
		}
	}
	if float64(counts[0]+counts[1])/float64(total) < 0.2 {
		t.Fatalf("attribute skew missing: attrs 0+1 got %d of %d", counts[0]+counts[1], total)
	}
}

func TestOperatorMix(t *testing.T) {
	p := Default()
	p.WEquality, p.WRange, p.WMembership, p.WNegated = 0.25, 0.25, 0.25, 0.25
	p.PredPoolSize = 0
	g := MustNew(p)
	counts := map[expr.Op]int{}
	for _, x := range g.Expressions(1000) {
		for i := range x.Preds {
			counts[x.Preds[i].Op]++
		}
	}
	if counts[expr.EQ] == 0 {
		t.Error("no EQ predicates generated")
	}
	if counts[expr.Between]+counts[expr.LE]+counts[expr.GE] == 0 {
		t.Error("no range predicates generated")
	}
	if counts[expr.In] == 0 {
		t.Error("no IN predicates generated")
	}
	if counts[expr.NE]+counts[expr.NotIn] == 0 {
		t.Error("no negated predicates generated")
	}
}

func TestMoreAttrsThanPreds(t *testing.T) {
	// PredsMax larger than NumAttrs must clamp, not loop forever.
	p := Default()
	p.NumAttrs = 3
	p.EventAttrs = 2
	p.PredsMin, p.PredsMax = 1, 10
	g := MustNew(p)
	for _, x := range g.Expressions(50) {
		if len(x.Preds) > 3 {
			t.Fatalf("expression has %d predicates over a 3-attribute space", len(x.Preds))
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	p := Default()
	p.NumAttrs = -1
	if _, err := New(p); err == nil {
		t.Fatal("New should reject invalid params")
	}
}

func TestPlantedEventFor(t *testing.T) {
	g := MustNew(Default())
	for _, x := range g.Expressions(100) {
		ev, ok := g.PlantedEventFor(x)
		if !ok {
			t.Fatalf("plant failed for %s", x)
		}
		if !x.MatchesEvent(ev) {
			t.Fatalf("planted event %s does not match %s", ev, x)
		}
		if ev.Len() != g.Params().EventAttrs {
			t.Fatalf("planted event has %d attrs, want %d", ev.Len(), g.Params().EventAttrs)
		}
	}
	// Contradictory predicates cannot be planted.
	bad := expr.MustNew(9999, expr.Eq(1, 3), expr.Eq(1, 5))
	if _, ok := g.PlantedEventFor(bad); ok {
		t.Fatal("plant for a contradictory expression should fail")
	}
	// Too many attributes for the event width.
	p := Default()
	p.EventAttrs = 2
	p.NumAttrs = 10
	g2 := MustNew(p)
	wide := expr.MustNew(1, expr.Eq(1, 1), expr.Eq(2, 2), expr.Eq(3, 3))
	if _, ok := g2.PlantedEventFor(wide); ok {
		t.Fatal("plant wider than EventAttrs should fail")
	}
}

func TestGeneratedExpressionsAccessor(t *testing.T) {
	g := MustNew(Default())
	g.Expressions(5)
	if len(g.GeneratedExpressions()) != 5 {
		t.Fatalf("GeneratedExpressions len = %d", len(g.GeneratedExpressions()))
	}
}
