// Package workload generates synthetic Boolean-expression matching
// workloads in the style of BEGen, the generator used throughout the
// BE-Tree line of work. A workload is defined by a Params value: the
// discrete space (attributes × cardinality), the subscription population
// (predicate counts, operator mix, sharing), value and attribute skew,
// and the event stream (width and planted-match fraction).
//
// Generation is fully deterministic for a given Params.Seed, so every
// experiment in the benchmark harness is reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/streammatch/apcm/expr"
)

// Params configures a Generator. The zero value is not usable; start from
// Default() and override fields.
type Params struct {
	Seed int64

	// Space.
	NumAttrs    int // number of attributes (dimensions)
	Cardinality int // per-attribute domain is [0, Cardinality)

	// Expressions.
	PredsMin int // predicates per expression, uniform in [PredsMin, PredsMax]
	PredsMax int

	// Operator mix: weights normalised internally. Equality produces EQ;
	// Range produces Between (60%), LE (20%), GE (20%); Membership
	// produces IN; Negated splits evenly between NE and NOT IN.
	WEquality   float64
	WRange      float64
	WMembership float64
	WNegated    float64

	// RangeWidthFrac sizes Between intervals as a fraction of the domain.
	RangeWidthFrac float64
	// InSetSize is the number of values in IN / NOT IN sets.
	InSetSize int

	// PredPoolSize bounds the number of distinct predicates per attribute.
	// Expressions draw their predicates from this shared pool, which
	// controls inter-subscription redundancy — the quantity compression
	// exploits. Zero disables pooling (every predicate freshly random,
	// minimal redundancy).
	PredPoolSize int

	// ValueZipf skews predicate and event values: 0 means uniform,
	// otherwise it is the Zipf s parameter and must exceed 1.
	ValueZipf float64
	// AttrZipf skews which attributes predicates and events mention,
	// with the same convention as ValueZipf.
	AttrZipf float64

	// Events.
	EventAttrs int // attributes per event
	// MatchFraction is the probability that an event is planted: derived
	// from a previously generated expression so that it satisfies it.
	// Planted events give the workload a controllable match rate; purely
	// random events in a large space match almost nothing.
	MatchFraction float64

	// PlantPoolSize bounds how many generated expressions are retained as
	// plant sources for events. 0 retains every expression — exact
	// uniform planting, O(generated) memory. A positive bound keeps a
	// uniform reservoir sample of that size instead, making generation
	// O(PlantPoolSize) in memory regardless of how many expressions are
	// streamed (cmd/apcm-gen relies on this for multi-million-
	// subscription traces). The reservoir uses its own RNG, so for a
	// fixed Seed the expression stream is bit-identical whether or not
	// the pool is bounded; planted events stay statistically equivalent
	// but draw from the sample rather than the full history.
	PlantPoolSize int
}

// Default returns the canonical workload from DESIGN.md: 400 attributes,
// cardinality 1000, 5–9 predicates per expression, equality-heavy mix,
// 15-attribute events, ~1% planted match fraction.
func Default() Params {
	return Params{
		Seed:           1,
		NumAttrs:       400,
		Cardinality:    1000,
		PredsMin:       5,
		PredsMax:       9,
		WEquality:      0.85,
		WRange:         0.10,
		WMembership:    0.05,
		WNegated:       0.00,
		RangeWidthFrac: 0.05,
		InSetSize:      4,
		PredPoolSize:   40,
		EventAttrs:     15,
		MatchFraction:  0.01,
	}
}

// Validate reports the first structural problem with p.
func (p *Params) Validate() error {
	switch {
	case p.NumAttrs <= 0:
		return fmt.Errorf("workload: NumAttrs must be positive, got %d", p.NumAttrs)
	case p.Cardinality <= 1:
		return fmt.Errorf("workload: Cardinality must exceed 1, got %d", p.Cardinality)
	case p.PredsMin <= 0 || p.PredsMax < p.PredsMin:
		return fmt.Errorf("workload: bad predicate count range [%d,%d]", p.PredsMin, p.PredsMax)
	case p.WEquality < 0 || p.WRange < 0 || p.WMembership < 0 || p.WNegated < 0:
		return fmt.Errorf("workload: operator weights must be non-negative")
	case p.WEquality+p.WRange+p.WMembership+p.WNegated <= 0:
		return fmt.Errorf("workload: operator weights sum to zero")
	case p.RangeWidthFrac < 0 || p.RangeWidthFrac > 1:
		return fmt.Errorf("workload: RangeWidthFrac %f out of [0,1]", p.RangeWidthFrac)
	case p.InSetSize <= 0 && p.WMembership > 0:
		return fmt.Errorf("workload: InSetSize must be positive when WMembership > 0")
	case p.ValueZipf != 0 && p.ValueZipf <= 1:
		return fmt.Errorf("workload: ValueZipf must be 0 or > 1, got %f", p.ValueZipf)
	case p.AttrZipf != 0 && p.AttrZipf <= 1:
		return fmt.Errorf("workload: AttrZipf must be 0 or > 1, got %f", p.AttrZipf)
	case p.EventAttrs <= 0 || p.EventAttrs > p.NumAttrs:
		return fmt.Errorf("workload: EventAttrs %d out of [1,%d]", p.EventAttrs, p.NumAttrs)
	case p.MatchFraction < 0 || p.MatchFraction > 1:
		return fmt.Errorf("workload: MatchFraction %f out of [0,1]", p.MatchFraction)
	case p.PredPoolSize < 0:
		return fmt.Errorf("workload: PredPoolSize must be non-negative")
	case p.PlantPoolSize < 0:
		return fmt.Errorf("workload: PlantPoolSize must be non-negative")
	}
	return nil
}

// Generator produces expressions and events for one Params value.
// A Generator is not safe for concurrent use.
type Generator struct {
	p         Params
	rng       *rand.Rand
	valueZipf *rand.Zipf
	attrZipf  *rand.Zipf
	pool      map[expr.AttrID][]expr.Predicate
	nextID    expr.ID

	// exprs records generated expressions so planted events can be
	// derived from them: the full history unbounded, or a uniform
	// reservoir sample of PlantPoolSize. plantRng drives the reservoir's
	// keep/evict decisions on its own stream so bounding the pool never
	// perturbs the main rng, and seen counts recorded expressions for
	// the reservoir's acceptance probability.
	exprs    []*expr.Expression
	plantRng *rand.Rand
	seen     int64
}

// New validates p and returns a Generator for it.
func New(p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{p: p, rng: rand.New(rand.NewSource(p.Seed)), nextID: 1}
	if p.ValueZipf > 1 {
		g.valueZipf = rand.NewZipf(g.rng, p.ValueZipf, 1, uint64(p.Cardinality-1))
	}
	if p.AttrZipf > 1 {
		g.attrZipf = rand.NewZipf(g.rng, p.AttrZipf, 1, uint64(p.NumAttrs-1))
	}
	if p.PredPoolSize > 0 {
		g.pool = make(map[expr.AttrID][]expr.Predicate)
	}
	if p.PlantPoolSize > 0 {
		// A fixed xor keeps the reservoir stream distinct from — and
		// independent of — the main stream at every seed.
		g.plantRng = rand.New(rand.NewSource(p.Seed ^ 0x5ee0f9bd1c3a7e42))
	}
	return g, nil
}

// MustNew is New for tests and literals; it panics on invalid Params.
func MustNew(p Params) *Generator {
	g, err := New(p)
	if err != nil {
		panic(err)
	}
	return g
}

// Params returns the configuration the generator was built with.
func (g *Generator) Params() Params { return g.p }

func (g *Generator) attr() expr.AttrID {
	if g.attrZipf != nil {
		return expr.AttrID(g.attrZipf.Uint64())
	}
	return expr.AttrID(g.rng.Intn(g.p.NumAttrs))
}

func (g *Generator) value() expr.Value {
	if g.valueZipf != nil {
		return expr.Value(g.valueZipf.Uint64())
	}
	return expr.Value(g.rng.Intn(g.p.Cardinality))
}

// predicate returns a predicate on attr, drawn from the shared pool when
// pooling is enabled.
func (g *Generator) predicate(attr expr.AttrID) expr.Predicate {
	if g.pool != nil {
		ps := g.pool[attr]
		if len(ps) < g.p.PredPoolSize {
			p := g.freshPredicate(attr)
			g.pool[attr] = append(ps, p)
			return p
		}
		return ps[g.rng.Intn(len(ps))]
	}
	return g.freshPredicate(attr)
}

func (g *Generator) freshPredicate(attr expr.AttrID) expr.Predicate {
	card := g.p.Cardinality
	wSum := g.p.WEquality + g.p.WRange + g.p.WMembership + g.p.WNegated
	r := g.rng.Float64() * wSum
	switch {
	case r < g.p.WEquality:
		return expr.Eq(attr, g.value())
	case r < g.p.WEquality+g.p.WRange:
		switch g.rng.Intn(5) {
		case 0:
			return expr.Le(attr, g.value())
		case 1:
			return expr.Ge(attr, g.value())
		default:
			width := int(g.p.RangeWidthFrac * float64(card))
			if width < 1 {
				width = 1
			}
			lo := g.rng.Intn(card)
			hi := lo + g.rng.Intn(width)
			if hi >= card {
				hi = card - 1
			}
			return expr.Rng(attr, expr.Value(lo), expr.Value(hi))
		}
	case r < g.p.WEquality+g.p.WRange+g.p.WMembership:
		vs := make([]expr.Value, g.p.InSetSize)
		for i := range vs {
			vs[i] = g.value()
		}
		return expr.Any(attr, vs...)
	default:
		if g.rng.Intn(2) == 0 {
			return expr.Ne(attr, g.value())
		}
		n := g.p.InSetSize
		if n <= 0 {
			n = 2
		}
		vs := make([]expr.Value, n)
		for i := range vs {
			vs[i] = g.value()
		}
		return expr.None(attr, vs...)
	}
}

// distinctAttrs samples n distinct attributes according to the attribute
// distribution.
func (g *Generator) distinctAttrs(n int) []expr.AttrID {
	seen := make(map[expr.AttrID]bool, n)
	out := make([]expr.AttrID, 0, n)
	for len(out) < n {
		a := g.attr()
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Expression generates the next expression. IDs are assigned sequentially
// from 1.
func (g *Generator) Expression() *expr.Expression {
	n := g.p.PredsMin + g.rng.Intn(g.p.PredsMax-g.p.PredsMin+1)
	if n > g.p.NumAttrs {
		n = g.p.NumAttrs
	}
	attrs := g.distinctAttrs(n)
	preds := make([]expr.Predicate, n)
	for i, a := range attrs {
		preds[i] = g.predicate(a)
	}
	x, err := expr.New(g.nextID, preds...)
	if err != nil {
		// Generated predicates are valid by construction; any failure here
		// is a generator bug worth crashing on.
		panic(fmt.Sprintf("workload: generated invalid expression: %v", err))
	}
	g.nextID++
	g.record(x)
	return x
}

// record adds x to the plant source: the full history when the pool is
// unbounded, otherwise a classic reservoir sample — the first
// PlantPoolSize expressions fill the pool, every later one replaces a
// uniformly chosen slot with probability PlantPoolSize/seen, keeping
// the pool a uniform sample of everything generated so far.
func (g *Generator) record(x *expr.Expression) {
	if g.plantRng == nil {
		g.exprs = append(g.exprs, x)
		return
	}
	g.seen++
	if len(g.exprs) < g.p.PlantPoolSize {
		g.exprs = append(g.exprs, x)
		return
	}
	if k := g.plantRng.Int63n(g.seen); k < int64(len(g.exprs)) {
		g.exprs[k] = x
	}
}

// Expressions generates n expressions.
func (g *Generator) Expressions(n int) []*expr.Expression {
	out := make([]*expr.Expression, n)
	for i := range out {
		out[i] = g.Expression()
	}
	return out
}

// Event generates the next event. With probability MatchFraction (and if
// any expressions were generated) the event is planted to satisfy a
// uniformly chosen earlier expression; otherwise it is random.
func (g *Generator) Event() *expr.Event {
	if len(g.exprs) > 0 && g.rng.Float64() < g.p.MatchFraction {
		if ev, ok := g.plantedEvent(g.exprs[g.rng.Intn(len(g.exprs))]); ok {
			return ev
		}
	}
	return g.randomEvent()
}

// Events generates n events.
func (g *Generator) Events(n int) []*expr.Event {
	out := make([]*expr.Event, n)
	for i := range out {
		out[i] = g.Event()
	}
	return out
}

func (g *Generator) randomEvent() *expr.Event {
	attrs := g.distinctAttrs(g.p.EventAttrs)
	pairs := make([]expr.Pair, len(attrs))
	for i, a := range attrs {
		pairs[i] = expr.Pair{Attr: a, Val: g.value()}
	}
	ev, err := expr.NewEvent(pairs...)
	if err != nil {
		panic(fmt.Sprintf("workload: generated invalid event: %v", err))
	}
	return ev
}

// plantedEvent builds an event satisfying x: one satisfying value per
// constrained attribute, padded with random attributes up to EventAttrs.
// It can fail when an attribute carries contradictory predicates
// (e.g. a=3 and a=5 drawn from the pool); the caller falls back to a
// random event.
func (g *Generator) plantedEvent(x *expr.Expression) (*expr.Event, bool) {
	vals := make(map[expr.AttrID]expr.Value)
	for _, a := range x.Attrs() {
		var ps []*expr.Predicate
		for i := range x.Preds {
			if x.Preds[i].Attr == a {
				ps = append(ps, &x.Preds[i])
			}
		}
		v, ok := g.satisfyAll(ps)
		if !ok {
			return nil, false
		}
		vals[a] = v
	}
	pairs := make([]expr.Pair, 0, g.p.EventAttrs)
	for a, v := range vals {
		pairs = append(pairs, expr.Pair{Attr: a, Val: v})
	}
	for len(pairs) < g.p.EventAttrs {
		a := g.attr()
		if _, used := vals[a]; used {
			continue
		}
		vals[a] = 0
		pairs = append(pairs, expr.Pair{Attr: a, Val: g.value()})
	}
	ev, err := expr.NewEvent(pairs...)
	if err != nil {
		return nil, false
	}
	return ev, true
}

// satisfyAll finds a value accepted by every predicate in ps, sampling
// from the first predicate's span and rejection-testing the rest.
func (g *Generator) satisfyAll(ps []*expr.Predicate) (expr.Value, bool) {
	const tries = 32
	for t := 0; t < tries; t++ {
		v, ok := g.satisfyOne(ps[0])
		if !ok {
			return 0, false
		}
		all := true
		for _, p := range ps[1:] {
			if !p.Matches(v) {
				all = false
				break
			}
		}
		if all {
			return v, true
		}
	}
	return 0, false
}

func (g *Generator) satisfyOne(p *expr.Predicate) (expr.Value, bool) {
	card := expr.Value(g.p.Cardinality)
	switch p.Op {
	case expr.EQ:
		return p.Lo, true
	case expr.Between:
		return p.Lo + expr.Value(g.rng.Int63n(int64(p.Hi-p.Lo)+1)), true
	case expr.In:
		return p.Set[g.rng.Intn(len(p.Set))], true
	case expr.LT, expr.LE, expr.GT, expr.GE, expr.NE, expr.NotIn:
		// Rejection-sample from the domain; these predicates accept large
		// portions of it so a handful of tries suffices.
		for t := 0; t < 32; t++ {
			v := expr.Value(g.rng.Int63n(int64(card)))
			if p.Matches(v) {
				return v, true
			}
		}
		return 0, false
	default:
		return 0, false
	}
}

// GeneratedExpressions returns the plant source: all expressions
// generated so far, or the current reservoir sample when PlantPoolSize
// bounds it. Callers must treat the slice as read-only.
func (g *Generator) GeneratedExpressions() []*expr.Expression { return g.exprs }

// PlantedEventFor builds an event that satisfies x (padded with random
// attributes up to EventAttrs), for callers that need a guaranteed match
// against a specific subscription — load drivers, delivery tests,
// demos. It reports false when x carries contradictory predicates on
// one attribute or x needs more attributes than EventAttrs allows.
func (g *Generator) PlantedEventFor(x *expr.Expression) (*expr.Event, bool) {
	if len(x.Attrs()) > g.p.EventAttrs {
		return nil, false
	}
	return g.plantedEvent(x)
}
