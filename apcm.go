// Package apcm is a high-throughput matcher for Boolean expressions over
// event streams: a Go implementation of adaptive parallel compressed
// event matching (A-PCM) in the publish/subscribe style, together with
// the baselines it is evaluated against.
//
// Subscriptions are conjunctions of predicates (=, ≠, <, ≤, >, ≥,
// BETWEEN, IN, NOT IN) over discrete attributes; events assign values to
// attributes. The Engine indexes millions of subscriptions and reports,
// for each event, exactly the subscriptions it satisfies.
//
//	sch := expr.NewSchema()
//	eng, _ := apcm.New(apcm.Options{})
//	sub := expr.MustParse(sch, eng.NewID(), "price <= 500 and brand in {3, 7}")
//	_ = eng.Subscribe(sub)
//	matches := eng.Match(expr.MustParseEvent(sch, "price=300, brand=7"))
//
// Five algorithms share one interface: APCM (adaptive parallel
// compressed matching, the default), PCM (always-compressed), BETree
// (the sequential state-of-the-art index), Counting (classic inverted
// counting index) and Scan (naive interpretation). See DESIGN.md for how
// they relate and EXPERIMENTS.md for measured comparisons.
package apcm

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/betree"
	"github.com/streammatch/apcm/internal/core"
	"github.com/streammatch/apcm/internal/counting"
	"github.com/streammatch/apcm/internal/kindex"
	"github.com/streammatch/apcm/internal/match"
	"github.com/streammatch/apcm/internal/scan"
	"github.com/streammatch/apcm/internal/sched"
	"github.com/streammatch/apcm/metrics"
)

// Algorithm selects the matching algorithm backing an Engine.
type Algorithm int

const (
	// APCM is adaptive parallel compressed matching (the paper's
	// contribution and the default).
	APCM Algorithm = iota
	// PCM always uses the compressed kernel.
	PCM
	// BETree is the sequential state-of-the-art baseline.
	BETree
	// Counting is the classic inverted counting index baseline.
	Counting
	// KIndex is the classic posting-list index baseline (Whang et al.,
	// VLDB 2009): subscriptions partitioned by equality-predicate count,
	// matched by sorted posting-list intersection.
	KIndex
	// Scan is the naive per-subscription interpretation baseline.
	Scan
)

// String names the algorithm as used in benchmark tables.
func (a Algorithm) String() string {
	switch a {
	case APCM:
		return "A-PCM"
	case PCM:
		return "PCM"
	case BETree:
		return "BE-Tree"
	case Counting:
		return "Counting"
	case KIndex:
		return "k-index"
	case Scan:
		return "Scan"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists all supported algorithms in benchmark-table order.
func Algorithms() []Algorithm {
	return []Algorithm{Scan, Counting, KIndex, BETree, PCM, APCM}
}

// ParseAlgorithm resolves a name (case-insensitive, with or without
// dashes: "apcm", "A-PCM", "betree", ...) to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(strings.ReplaceAll(s, "-", "")) {
	case "apcm", "adaptive":
		return APCM, nil
	case "pcm", "compressed":
		return PCM, nil
	case "betree", "be":
		return BETree, nil
	case "counting", "count":
		return Counting, nil
	case "kindex", "k":
		return KIndex, nil
	case "scan", "naive":
		return Scan, nil
	default:
		return 0, fmt.Errorf("apcm: unknown algorithm %q", s)
	}
}

// Options configures an Engine. The zero value selects A-PCM with
// GOMAXPROCS workers and the default tuning.
type Options struct {
	// Algorithm selects the matcher; default APCM.
	Algorithm Algorithm

	// Workers sets the parallel worker count for APCM/PCM matching and
	// MatchBatch. 0 means GOMAXPROCS; 1 runs fully sequentially.
	Workers int

	// ClusterSize bounds BE-Tree pools before they split (APCM, PCM and
	// BETree). Compressed matching prefers larger clusters. 0 picks the
	// per-algorithm default (256 compressed, 32 BETree).
	ClusterSize int

	// MinCompressSize is the smallest cluster the compressed matchers
	// compile; smaller pools are scanned. 0 means default (8).
	MinCompressSize int

	// ProbeInterval is how many events a cluster serves between A-PCM
	// cost probes. 0 means default (64).
	ProbeInterval int

	// IntraEventParallelism is the minimum number of candidate clusters
	// at which a single Match call fans out across workers. 0 means
	// default (16).
	IntraEventParallelism int

	// DisableBatchMemo turns off the cross-event predicate memoization
	// of the batch match path (MatchBatchInto and streams), leaving only
	// per-event matching. An ablation switch for experiments; keep it
	// off in production.
	DisableBatchMemo bool

	// DisableHybridPostings compiles every cluster posting dense, as
	// before the density-adaptive layout. An ablation switch (see E18);
	// keep it off in production.
	DisableHybridPostings bool

	// DisableFlatEq keeps cluster equality unions in hash maps only,
	// never building the value-indexed flat tables. An ablation switch.
	DisableFlatEq bool

	// DisableGroupOrdering evaluates cluster predicate groups in
	// attribute order instead of descending estimated-kill order. An
	// ablation switch.
	DisableGroupOrdering bool

	// Normalize canonicalises subscriptions on Subscribe (merging
	// redundant predicates per attribute; see expr.Expression.Normalize)
	// and rejects provably unsatisfiable ones with ErrUnsatisfiable.
	// Canonical subscriptions cluster and compress better.
	Normalize bool

	// Metrics, when non-nil, receives engine instrumentation: match
	// latency histograms, batch sizes, subscription churn, adaptive
	// kernel flips, worker-pool depth and stream window behaviour (see
	// DESIGN.md §6). Nil — the default — disables instrumentation at the
	// cost of a single pointer check per operation.
	Metrics *metrics.Registry
}

func (o *Options) sanitize() {
	if o.ClusterSize < 0 {
		o.ClusterSize = 0
	}
	if o.IntraEventParallelism <= 0 {
		o.IntraEventParallelism = 16
	}
}

// Engine indexes subscriptions and matches events against them. Engines
// are safe for concurrent use: Subscribe/Unsubscribe take a write lock,
// Match/MatchBatch a read lock.
type Engine struct {
	opts Options

	mu     sync.RWMutex //apcm:lockrank=1
	closed bool

	// Exactly one of cm (compressed algorithms) and sm (sequential
	// baselines) is non-nil.
	cm *core.Matcher
	sm match.Matcher
	// smMu serialises matches on stateful sequential matchers (Counting
	// keeps per-event counters). It nests inside mu (Match holds the
	// read lock when it takes smMu), never the other way around.
	//apcm:lockrank=2
	smMu       sync.Mutex
	smStateful bool

	pool      *sched.Pool
	scratches sync.Pool // *core.Scratch
	intraJobs sync.Pool // *intraJob

	// Scratch-pool effectiveness (recorded only with metrics attached):
	// gets per match operation vs. misses that allocated a fresh scratch.
	// recycle rate = 1 - news/gets.
	scratchGets atomic.Int64
	scratchNews atomic.Int64

	nextID atomic.Uint64
	mem    match.MemReporter

	// met is non-nil iff Options.Metrics was set; see observe.go.
	met *engineMetrics

	// DNF subscription groups (see dnf.go): groups maps a group id to
	// its member expression ids, alias maps each member back to its
	// group. Both are nil until the first SubscribeAny.
	groups map[expr.ID][]expr.ID
	alias  map[expr.ID]expr.ID
}

// New builds an Engine.
func New(opts Options) (*Engine, error) {
	opts.sanitize()
	e := &Engine{opts: opts}
	switch opts.Algorithm {
	case APCM, PCM:
		cfg := core.DefaultConfig()
		if opts.Algorithm == PCM {
			cfg.Mode = core.ModeCompressed
		}
		if opts.ClusterSize > 0 {
			cfg.Tree.MaxPool = opts.ClusterSize
		}
		if opts.MinCompressSize > 0 {
			cfg.MinCompressSize = opts.MinCompressSize
		}
		if opts.ProbeInterval > 0 {
			cfg.ProbeInterval = opts.ProbeInterval
		}
		cfg.DisableMemo = opts.DisableBatchMemo
		cfg.DisableHybridPostings = opts.DisableHybridPostings
		cfg.DisableFlatEq = opts.DisableFlatEq
		cfg.DisableGroupOrder = opts.DisableGroupOrdering
		e.cm = core.New(cfg)
		e.mem = e.cm
		e.scratches.New = func() any {
			e.scratchNews.Add(1)
			return e.cm.NewScratch()
		}
	case BETree:
		cfg := betree.DefaultConfig()
		if opts.ClusterSize > 0 {
			cfg.MaxPool = opts.ClusterSize
		}
		t := betree.New(cfg)
		e.sm, e.mem = t, t
	case Counting:
		m := counting.New()
		e.sm, e.mem = m, m
		e.smStateful = true
	case KIndex:
		m := kindex.New()
		e.sm, e.mem = m, m
		e.smStateful = true // per-match cursor scratch
	case Scan:
		m := scan.New()
		e.sm, e.mem = m, m
	default:
		return nil, fmt.Errorf("apcm: unknown algorithm %v", opts.Algorithm)
	}
	if w := opts.Workers; w > 1 || (w <= 0 && runtime.GOMAXPROCS(0) > 1) {
		e.pool = sched.NewPool(w)
	}
	if opts.Metrics != nil {
		e.attachMetrics(opts.Metrics)
	}
	return e, nil
}

// MustNew is New for tests and examples; it panics on invalid Options.
func MustNew(opts Options) *Engine {
	e, err := New(opts)
	if err != nil {
		panic(err)
	}
	return e
}

// ErrClosed is returned by operations on a closed Engine.
var ErrClosed = fmt.Errorf("apcm: engine closed")

// ErrUnsatisfiable is returned by Subscribe (with Options.Normalize set)
// for subscriptions that can never match any event.
var ErrUnsatisfiable = fmt.Errorf("apcm: subscription is unsatisfiable")

// NewID allocates a fresh subscription id, unique within this Engine.
func (e *Engine) NewID() expr.ID {
	return expr.ID(e.nextID.Add(1))
}

// Subscribe indexes x. The expression's ID must be unique among live
// subscriptions. With Options.Normalize, x is canonicalised first and
// ErrUnsatisfiable is returned if it can never match.
func (e *Engine) Subscribe(x *expr.Expression) error {
	if e.opts.Normalize {
		nx, ok := x.Normalize()
		if !ok {
			return ErrUnsatisfiable
		}
		x = nx
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	var err error
	if e.cm != nil {
		err = e.cm.Insert(x)
	} else {
		err = e.sm.Insert(x)
	}
	if err == nil && e.met != nil {
		e.met.subscribes.Inc()
	}
	return err
}

// SubscribeBulk indexes xs, returning the number of expressions
// subscribed and the first error. Expressions are inserted in order and
// insertion stops at the first failure: xs[:n] are subscribed, xs[n:]
// are not. One write lock covers the whole batch and compiled clusters
// absorb the batch in one step where possible, so bulk restores (see
// LoadSubscriptions) pay per-batch rather than per-subscription
// synchronisation. With Options.Normalize each expression is
// canonicalised first; an unsatisfiable one stops the batch with
// ErrUnsatisfiable.
func (e *Engine) SubscribeBulk(xs []*expr.Expression) (int, error) {
	if e.opts.Normalize {
		nxs := make([]*expr.Expression, 0, len(xs))
		for _, x := range xs {
			nx, ok := x.Normalize()
			if !ok {
				n, err := e.subscribeBulk(nxs)
				if err == nil {
					err = ErrUnsatisfiable
				}
				return n, err
			}
			nxs = append(nxs, nx)
		}
		xs = nxs
	}
	return e.subscribeBulk(xs)
}

func (e *Engine) subscribeBulk(xs []*expr.Expression) (int, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	var n int
	var err error
	if e.cm != nil {
		n, err = e.cm.InsertBulk(xs)
	} else {
		for n < len(xs) {
			if err = e.sm.Insert(xs[n]); err != nil {
				break
			}
			n++
		}
	}
	if n > 0 && e.met != nil {
		e.met.subscribes.Add(int64(n))
	}
	return n, err
}

// SubscribePreds builds an expression from preds under a fresh id and
// indexes it, returning the id.
func (e *Engine) SubscribePreds(preds ...expr.Predicate) (expr.ID, error) {
	x, err := expr.New(e.NewID(), preds...)
	if err != nil {
		return 0, err
	}
	if err := e.Subscribe(x); err != nil {
		return 0, err
	}
	return x.ID, nil
}

// Unsubscribe removes the subscription with the given id — a plain
// subscription or a whole DNF group — reporting whether it was present.
func (e *Engine) Unsubscribe(id expr.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	removed := false
	if wasGroup, ok := e.unsubscribeGroupLocked(id); wasGroup {
		removed = ok
	} else {
		removed = e.deleteLocked(id)
	}
	if removed && e.met != nil {
		e.met.unsubscribes.Inc()
	}
	return removed
}

// Len returns the number of live subscriptions. A DNF group counts as
// one subscription regardless of its number of conjunctions.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0
	}
	n := 0
	if e.cm != nil {
		n = e.cm.Size()
	} else {
		n = e.sm.Size()
	}
	return n - (len(e.alias) - len(e.groups))
}

// Match returns the ids of all subscriptions matching ev (order
// unspecified). On a closed engine it returns nil.
func (e *Engine) Match(ev *expr.Event) []expr.ID {
	return e.MatchAppend(nil, ev)
}

// MatchAppend appends the ids of all subscriptions matching ev to dst
// and returns it. With live DNF groups, matched group ids are reported
// once even when several disjuncts match.
func (e *Engine) MatchAppend(dst []expr.ID, ev *expr.Event) []expr.ID {
	if m := e.met; m != nil {
		head := len(dst)
		start := time.Now()
		dst = e.matchAppendUninstrumented(dst, ev)
		m.matchLatency.ObserveDuration(time.Since(start))
		m.matchesPerEvent.Observe(float64(len(dst) - head))
		return dst
	}
	return e.matchAppendUninstrumented(dst, ev)
}

func (e *Engine) matchAppendUninstrumented(dst []expr.ID, ev *expr.Event) []expr.ID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return dst
	}
	if e.hasAliases() {
		// Match into a fresh tail so only this event's ids are rewritten.
		head := len(dst)
		dst = e.matchAppendLocked(dst, ev)
		rewritten := e.translate(dst[head:])
		return dst[:head+len(rewritten)]
	}
	return e.matchAppendLocked(dst, ev)
}

// getScratch and putScratch wrap the scratch pool with recycle-rate
// accounting; the counter is only touched when metrics are attached so
// the uninstrumented hot path stays atomic-free.
func (e *Engine) getScratch() *core.Scratch {
	if e.met != nil {
		e.scratchGets.Add(1)
	}
	return e.scratches.Get().(*core.Scratch)
}

func (e *Engine) putScratch(s *core.Scratch) {
	e.cm.FlushOrderCounters(s)
	e.scratches.Put(s)
}

// intraJob is the pooled per-call state of the intra-event parallel
// path: candidate pools, their cost weights, and per-lane result and
// scratch slots. Pooling it keeps the fan-out path free of per-call
// slice allocations.
type intraJob struct {
	pools   []*betree.Pool
	weights []int64
	parts   [][]expr.ID
	scr     []*core.Scratch
}

func (e *Engine) matchAppendLocked(dst []expr.ID, ev *expr.Event) []expr.ID {
	if e.cm == nil {
		if e.smStateful {
			e.smMu.Lock()
			defer e.smMu.Unlock()
		}
		return e.sm.MatchAppend(dst, ev)
	}
	s := e.getScratch()
	defer e.putScratch(s)
	if e.pool == nil {
		return e.cm.MatchWith(s, dst, ev)
	}
	j, _ := e.intraJobs.Get().(*intraJob)
	if j == nil {
		j = &intraJob{}
	}
	j.pools = e.cm.CollectPools(j.pools[:0], ev)
	if len(j.pools) < e.opts.IntraEventParallelism {
		for _, p := range j.pools {
			dst = e.cm.MatchPool(s, dst, p, ev)
		}
		e.intraJobs.Put(j)
		return dst
	}
	// Intra-event parallelism: shard candidate clusters across workers,
	// weighting each cluster by its probed per-event cost so one
	// mega-cluster does not serialise a lane while cheap ones idle.
	j.weights = e.cm.PoolCostAppend(j.weights[:0], j.pools)
	nw := e.pool.Workers() + 1 // workers plus the calling goroutine
	if cap(j.parts) < nw {
		j.parts = make([][]expr.ID, nw)
		j.scr = make([]*core.Scratch, nw)
	}
	parts, scratches := j.parts[:nw], j.scr[:nw]
	pools := j.pools
	e.pool.RunWeighted(j.weights, func(w, i int) {
		if scratches[w] == nil {
			scratches[w] = e.getScratch()
		}
		parts[w] = e.cm.MatchPool(scratches[w], parts[w], pools[i], ev)
	})
	for w := range parts {
		dst = append(dst, parts[w]...)
		parts[w] = parts[w][:0]
		if scratches[w] != nil {
			e.putScratch(scratches[w])
			scratches[w] = nil
		}
	}
	e.intraJobs.Put(j)
	return dst
}

// MatchBatch matches a batch of events, returning one id slice per
// event. It is a convenience wrapper over MatchBatchInto that allocates
// fresh, caller-owned result slices; throughput-sensitive callers should
// reuse a BatchResult with MatchBatchInto instead.
func (e *Engine) MatchBatch(events []*expr.Event) [][]expr.ID {
	if m := e.met; m != nil {
		start := time.Now()
		out := e.matchBatchUninstrumented(events)
		m.batchLatency.ObserveDuration(time.Since(start))
		m.batchSize.Observe(float64(len(events)))
		return out
	}
	return e.matchBatchUninstrumented(events)
}

func (e *Engine) matchBatchUninstrumented(events []*expr.Event) [][]expr.ID {
	out := make([][]expr.ID, len(events))
	if len(events) == 0 {
		return out
	}
	if e.cm != nil {
		// Compressed matchers go through the batch kernel (locality sort,
		// cross-event memoization, duplicate sharing); copy the packed
		// segments into caller-owned slices.
		r := batchResults.Get().(*BatchResult)
		e.matchBatchInto(events, r)
		for i := range out {
			if seg := r.For(i); len(seg) > 0 {
				out[i] = append([]expr.ID(nil), seg...)
			}
		}
		batchResults.Put(r)
		return out
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return out
	}
	if e.smStateful || e.pool == nil {
		if e.smStateful {
			e.smMu.Lock()
			defer e.smMu.Unlock()
		}
		for i, ev := range events {
			out[i] = e.sm.MatchAppend(nil, ev)
		}
	} else {
		// Stateless sequential matchers (Scan, BETree) are read-only
		// during matching, so inter-event parallelism is safe.
		e.pool.Run(len(events), func(_ int, i int) {
			out[i] = e.sm.MatchAppend(nil, events[i])
		})
	}
	if e.hasAliases() {
		for i := range out {
			out[i] = e.translate(out[i])
		}
	}
	return out
}

// Prepare eagerly compiles all compressed clusters so that subsequent
// matches pay no compilation cost. It is a no-op for the sequential
// baselines.
func (e *Engine) Prepare() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.cm == nil {
		return
	}
	if e.pool != nil {
		// Clusters compile independently into private arenas, so fan the
		// compilations across the worker pool — after a bulk restore this
		// is the dominant remaining cold-start cost.
		e.cm.PrepareAllWith(e.pool.Run)
		return
	}
	e.cm.PrepareAll()
}

// Stats describes the engine's state for tables and diagnostics.
type Stats struct {
	Algorithm        Algorithm
	Subscriptions    int
	Workers          int
	MemBytes         int64
	CompiledClusters int
	// ArenaBytes is the total backing size of compiled-cluster arenas
	// (the apcm_arena_bytes gauge; compressed matchers only).
	ArenaBytes int64
	// CompressionRatio is predicate slots per dictionary entry across
	// compiled clusters (0 for baselines).
	CompressionRatio float64
	// CompressedServing counts clusters currently routed to the
	// compressed kernel (A-PCM adaptivity visibility).
	CompressedServing int
	// Probes counts dual-kernel cost probes and KernelFlips the cluster
	// kernel re-decisions they triggered, both directions, cumulative
	// (A-PCM only).
	Probes      int64
	KernelFlips int64
	// Batch-path cache effectiveness, cumulative over all MatchBatchInto
	// calls (compressed matchers only): cross-event predicate memo
	// lookups/hits, per-cluster eligibility-cache lookups/hits, and
	// events answered from an adjacent equal event's result.
	MemoHits    int64
	MemoLookups int64
	EligHits    int64
	EligLookups int64
	BatchDedups int64
	// Density-adaptive layout tallies across compiled clusters: posting
	// representations chosen at compile time, sparse id volume, and flat
	// equality tables (compressed matchers only).
	DensePostings     int
	SparsePostings    int
	SparseMemberSlots int
	EqFlatTables      int
	EqFlatSlots       int
	// Selectivity-order effectiveness, cumulative and flushed at batch
	// end: kill-ordered group evaluations and early exits taken when the
	// survivor set emptied before the group loop finished.
	GroupOrderSorts      int64
	GroupOrderEarlyExits int64
	// ScratchGets/ScratchNews describe scratch-pool recycling (recorded
	// only with metrics attached): recycle rate = 1 − News/Gets.
	ScratchGets int64
	ScratchNews int64
}

// Stats returns a snapshot of engine statistics.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := Stats{Algorithm: e.opts.Algorithm, Workers: 1}
	if e.pool != nil {
		st.Workers = e.pool.Workers()
	}
	if e.closed {
		return st
	}
	st.ScratchGets = e.scratchGets.Load()
	st.ScratchNews = e.scratchNews.Load()
	if e.cm != nil {
		st.Subscriptions = e.cm.Size()
		st.MemBytes = e.cm.MemBytes()
		cs := e.cm.Stats()
		st.CompiledClusters = cs.CompiledClusters
		st.ArenaBytes = cs.ArenaBytes
		st.CompressionRatio = cs.CompressionRatio()
		st.CompressedServing = cs.CompressedServing
		st.Probes = cs.Probes
		st.KernelFlips = cs.FlipsToCompressed + cs.FlipsToUncompressed
		st.DensePostings = cs.DensePostings
		st.SparsePostings = cs.SparsePostings
		st.SparseMemberSlots = cs.SparseMemberSlots
		st.EqFlatTables = cs.EqFlatTables
		st.EqFlatSlots = cs.EqFlatSlots
		st.GroupOrderSorts = cs.GroupOrderSorts
		st.GroupOrderEarlyExits = cs.GroupOrderEarlyExits
		st.MemoHits, st.MemoLookups, st.EligHits, st.EligLookups, st.BatchDedups = e.cm.BatchCounters()
		return st
	}
	st.Subscriptions = e.sm.Size()
	st.MemBytes = e.mem.MemBytes()
	return st
}

// ClusterInfo describes one compiled compressed cluster, for
// diagnostics and capacity planning (see cmd/apcm-inspect).
type ClusterInfo struct {
	// Members is the number of member slots in use (live + tombstoned).
	Members    int
	Live       int
	Tombstones int
	// Attrs is the number of distinct attributes the cluster constrains.
	Attrs int
	// PredSlots and DistinctPreds give the cluster's compression:
	// PredSlots predicates across members collapse to DistinctPreds
	// dictionary entries.
	PredSlots     int
	DistinctPreds int
	MemBytes      int64
	// Compressed reports whether the adaptive policy currently routes
	// this cluster to the compressed kernel.
	Compressed bool
	// Cost estimates from adaptive probes, ns/event (0 before any probe).
	EwmaCompressedNs float64
	EwmaScanNs       float64
	// Density-adaptive layout decisions for this cluster: posting counts
	// by chosen representation, total sparse ids, flat equality tables
	// and their value-slot volume.
	DensePostings     int
	SparsePostings    int
	SparseMemberSlots int
	EqFlatTables      int
	EqFlatSlots       int
	// PostingHist is a log2-bucketed posting-density histogram: bucket i
	// counts postings with member count in [2^(i-1), 2^i).
	PostingHist [12]int
}

// Clusters snapshots per-cluster diagnostics. It returns nil for the
// sequential baselines, which have no compiled clusters.
func (e *Engine) Clusters() []ClusterInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed || e.cm == nil {
		return nil
	}
	raw := e.cm.Clusters()
	out := make([]ClusterInfo, len(raw))
	for i, c := range raw {
		out[i] = ClusterInfo{
			Members:           c.Members,
			Live:              c.Live,
			Tombstones:        c.Tombstones,
			Attrs:             c.Attrs,
			PredSlots:         c.PredSlots,
			DistinctPreds:     c.DistinctPreds,
			MemBytes:          c.MemBytes,
			Compressed:        c.Compressed,
			EwmaCompressedNs:  c.EwmaCompressedNs,
			EwmaScanNs:        c.EwmaScanNs,
			DensePostings:     c.DensePostings,
			SparsePostings:    c.SparsePostings,
			SparseMemberSlots: c.SparseMemberSlots,
			EqFlatTables:      c.EqFlatTables,
			EqFlatSlots:       c.EqFlatSlots,
			PostingHist:       c.PostingHist,
		}
	}
	return out
}

// Close releases the worker pool. Further Subscribes return ErrClosed
// and Matches return nil. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.pool != nil {
		e.pool.Close()
	}
}
