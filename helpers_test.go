package apcm_test

import (
	"io"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/trace"
)

// writeEventTrace writes events as a trace, for negative-path tests.
func writeEventTrace(w io.Writer, events []*expr.Event) error {
	return trace.WriteEvents(w, events)
}

// writeExpressionTrace writes expressions as a trace, bypassing engine
// validation, for failure-injection tests.
func writeExpressionTrace(w io.Writer, xs []*expr.Expression) error {
	return trace.WriteExpressions(w, xs)
}
