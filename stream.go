package apcm

import (
	"sync"
	"time"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/osr"
)

// StreamOptions configures a Stream.
type StreamOptions struct {
	// Window is the online stream re-ordering window: events are
	// buffered, reordered by index locality, and matched as a batch once
	// Window events accumulate. A window of 0 or 1 disables re-ordering
	// (every event is matched immediately).
	Window int
	// MaxDelay bounds the extra latency re-ordering may add: a partial
	// window is flushed this long after its first event. 0 means 10ms.
	// Ignored when Window disables buffering.
	MaxDelay time.Duration
}

func (o *StreamOptions) sanitize() {
	if o.MaxDelay <= 0 {
		o.MaxDelay = 10 * time.Millisecond
	}
}

// Stream is the engine's streaming front end with online stream
// re-ordering (OSR). Events enter via Publish; matches leave via the
// deliver callback, which runs on the publishing goroutine (on window
// flushes) or on the stream's deadline goroutine (on deadline flushes) —
// it must be safe for that and should not block for long. The matches
// slice passed to deliver is only valid for the duration of the call
// (its backing storage is recycled); callers that retain it must copy.
// deliver must not call Close on its own stream (Close waits for
// in-flight deliveries and would deadlock).
//
// Deadline flushes are driven by one long-lived goroutine per stream
// with a reusable timer, so the steady state arms no fresh runtime
// timers. Races are resolved by a generation counter: every arm or
// cancel bumps the generation, and a deadline that fires with a stale
// generation (its window was already flushed by Publish, Flush or Close)
// is a no-op instead of flushing a newer partial window early. Close
// waits for in-flight deliveries, so no deliver call is running or will
// run after Close returns.
type Stream struct {
	eng     *Engine
	opts    StreamOptions
	deliver func(*expr.Event, []expr.ID)

	mu       sync.Mutex
	buf      *osr.Buffer
	timerOn  bool // a deadline is armed for the current window
	timerGen uint64
	closed   bool
	// inflight counts started-but-unfinished process() calls; every
	// Add(1) happens under mu strictly before closed is set, so Close's
	// Wait covers exactly the deliveries that were admitted.
	inflight sync.WaitGroup

	// armCh carries deadline requests to the timer goroutine. Capacity 1
	// with drain-before-send under mu coalesces re-arms; nil when the
	// window disables buffering (no goroutine is started).
	armCh     chan timerArm
	timerDone sync.WaitGroup
}

// timerArm asks the deadline goroutine to fire at `at` for window
// generation `gen`.
type timerArm struct {
	gen uint64
	at  time.Time
}

// NewStream creates a streaming front end over the engine.
func (e *Engine) NewStream(opts StreamOptions, deliver func(ev *expr.Event, matches []expr.ID)) *Stream {
	opts.sanitize()
	s := &Stream{
		eng:     e,
		opts:    opts,
		deliver: deliver,
		buf:     osr.NewBuffer(opts.Window),
	}
	if e.met != nil {
		s.buf.TrackDistance(true)
	}
	if opts.Window > 1 {
		s.armCh = make(chan timerArm, 1)
		s.timerDone.Add(1)
		go s.timerLoop()
	}
	return s
}

// timerLoop owns the stream's single deadline timer. It re-arms on
// requests from armCh and calls deadlineFlush when the timer fires; a
// stale generation makes that a no-op. Exits when armCh closes.
func (s *Stream) timerLoop() {
	defer s.timerDone.Done()
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	armed := false // timer running and its channel not yet drained here
	var gen uint64
	for {
		select {
		case a, ok := <-s.armCh:
			if armed && !t.Stop() {
				<-t.C
			}
			armed = false
			if !ok {
				return
			}
			t.Reset(time.Until(a.at))
			armed = true
			gen = a.gen
		case <-t.C:
			armed = false
			s.deadlineFlush(gen)
		}
	}
}

// Publish submits an event. It may synchronously flush a full window
// (invoking deliver for every event in it, in locality order).
func (s *Stream) Publish(ev *expr.Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	m := s.eng.met
	if m != nil {
		m.streamEvents.Inc()
	}
	batch := s.buf.Add(ev)
	var dist int
	if batch != nil {
		if m != nil {
			m.streamFlushFull.Inc()
			dist = s.buf.LastDistance()
		}
		s.stopTimer()
		s.inflight.Add(1)
	} else if !s.timerOn && s.buf.Pending() > 0 {
		// Covers both a fresh window and one whose deadline was
		// invalidated before it could flush.
		s.armTimer()
	}
	s.mu.Unlock()
	if batch != nil {
		s.process(batch, dist)
		s.inflight.Done()
	}
}

// armTimer schedules a deadline flush; the caller holds s.mu. The drain
// before the send keeps the capacity-1 channel from ever blocking: all
// senders hold s.mu, and the timer goroutine only receives.
func (s *Stream) armTimer() {
	if s.armCh == nil {
		return
	}
	s.timerGen++
	s.timerOn = true
	select {
	case <-s.armCh:
	default:
	}
	s.armCh <- timerArm{gen: s.timerGen, at: time.Now().Add(s.opts.MaxDelay)}
}

// stopTimer cancels a pending deadline flush; the caller holds s.mu.
// Bumping the generation also neutralises a deadline that has already
// fired but not yet acquired the lock.
func (s *Stream) stopTimer() {
	s.timerGen++
	s.timerOn = false
	if s.armCh != nil {
		select {
		case <-s.armCh:
		default:
		}
	}
}

// deadlineFlush runs on the timer goroutine for window generation gen.
func (s *Stream) deadlineFlush(gen uint64) {
	s.mu.Lock()
	if s.closed || gen != s.timerGen {
		// The window this deadline belonged to was already flushed (or
		// the stream closed); flushing now would release a newer partial
		// window before its own deadline.
		s.mu.Unlock()
		return
	}
	s.timerOn = false
	s.timerGen++
	batch := s.buf.Flush()
	var dist int
	if batch != nil {
		if m := s.eng.met; m != nil {
			m.streamFlushDeadline.Inc()
			dist = s.buf.LastDistance()
		}
		s.inflight.Add(1)
	}
	s.mu.Unlock()
	if batch != nil {
		s.process(batch, dist)
		s.inflight.Done()
	}
}

// Flush matches and delivers any buffered events immediately.
func (s *Stream) Flush() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	batch, dist := s.flushLocked()
	s.mu.Unlock()
	if batch != nil {
		s.process(batch, dist)
		s.inflight.Done()
	}
}

// flushLocked drains the buffer and accounts a manual flush; the caller
// holds s.mu and must process the batch then Done the inflight count.
func (s *Stream) flushLocked() ([]*expr.Event, int) {
	s.stopTimer()
	batch := s.buf.Flush()
	var dist int
	if batch != nil {
		if m := s.eng.met; m != nil {
			m.streamFlushManual.Inc()
			dist = s.buf.LastDistance()
		}
		s.inflight.Add(1)
	}
	return batch, dist
}

func (s *Stream) process(batch []*expr.Event, dist int) {
	m := s.eng.met
	var start time.Time
	if m != nil {
		start = time.Now()
		if w := s.buf.Window(); w > 1 {
			m.streamFill.Observe(float64(len(batch)) / float64(w) * 100)
		}
		m.streamReorder.Observe(float64(dist))
	}
	// The batch kernel matches each distinct event once (adjacent equal
	// events share a result segment) and memoizes predicate evaluations
	// across the locality-ordered window.
	r := batchResults.Get().(*BatchResult)
	s.eng.MatchBatchInto(batch, r)
	for i, ev := range batch {
		s.deliver(ev, r.For(i))
	}
	if m != nil {
		m.streamDedupHits.Add(int64(r.Dedups()))
		m.streamFlushLatency.ObserveDuration(time.Since(start))
	}
	batchResults.Put(r)
	s.buf.Recycle(batch)
}

// Pending returns the number of buffered, not-yet-matched events.
func (s *Stream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Pending()
}

// Close flushes buffered events, stops the stream (including its
// deadline goroutine) and waits for every in-flight delivery (including
// deadline flushes racing with it) to finish: after Close returns,
// deliver will not be invoked again. Publishes after Close are dropped.
// Close is idempotent, and concurrent Closes all wait.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.inflight.Wait()
		s.timerDone.Wait()
		return
	}
	batch, dist := s.flushLocked()
	s.closed = true
	s.mu.Unlock()
	if batch != nil {
		s.process(batch, dist)
		s.inflight.Done()
	}
	// closed is set: no further sends on armCh can be admitted, so the
	// first closer may close it to stop the timer goroutine.
	if s.armCh != nil {
		close(s.armCh)
	}
	s.inflight.Wait()
	s.timerDone.Wait()
}
