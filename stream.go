package apcm

import (
	"time"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/osr"
	"sync"
)

// StreamOptions configures a Stream.
type StreamOptions struct {
	// Window is the online stream re-ordering window: events are
	// buffered, reordered by index locality, and matched as a batch once
	// Window events accumulate. A window of 0 or 1 disables re-ordering
	// (every event is matched immediately).
	Window int
	// MaxDelay bounds the extra latency re-ordering may add: a partial
	// window is flushed this long after its first event. 0 means 10ms.
	// Ignored when Window disables buffering.
	MaxDelay time.Duration
}

func (o *StreamOptions) sanitize() {
	if o.MaxDelay <= 0 {
		o.MaxDelay = 10 * time.Millisecond
	}
}

// Stream is the engine's streaming front end with online stream
// re-ordering (OSR). Events enter via Publish; matches leave via the
// deliver callback, which runs on the publishing goroutine (on window
// flushes) or on a timer goroutine (on deadline flushes) — it must be
// safe for that and should not block for long.
type Stream struct {
	eng     *Engine
	opts    StreamOptions
	deliver func(*expr.Event, []expr.ID)

	mu     sync.Mutex
	buf    *osr.Buffer
	timer  *time.Timer
	closed bool
}

// NewStream creates a streaming front end over the engine.
func (e *Engine) NewStream(opts StreamOptions, deliver func(ev *expr.Event, matches []expr.ID)) *Stream {
	opts.sanitize()
	return &Stream{
		eng:     e,
		opts:    opts,
		deliver: deliver,
		buf:     osr.NewBuffer(opts.Window),
	}
}

// Publish submits an event. It may synchronously flush a full window
// (invoking deliver for every event in it, in locality order).
func (s *Stream) Publish(ev *expr.Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	wasEmpty := s.buf.Pending() == 0
	batch := s.buf.Add(ev)
	if batch == nil && wasEmpty && s.buf.Pending() > 0 {
		s.armTimer()
	}
	if batch != nil {
		s.stopTimer()
	}
	s.mu.Unlock()
	if batch != nil {
		s.process(batch)
	}
}

// armTimer schedules a deadline flush; the caller holds s.mu.
func (s *Stream) armTimer() {
	if s.opts.Window <= 1 {
		return
	}
	s.timer = time.AfterFunc(s.opts.MaxDelay, s.Flush)
}

// stopTimer cancels a pending deadline flush; the caller holds s.mu.
func (s *Stream) stopTimer() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

// Flush matches and delivers any buffered events immediately.
func (s *Stream) Flush() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.stopTimer()
	batch := s.buf.Flush()
	s.mu.Unlock()
	if batch != nil {
		s.process(batch)
	}
}

func (s *Stream) process(batch []*expr.Event) {
	// Re-ordering makes identical events adjacent; match each distinct
	// event once and fan the result out. dedup[i] is the index in
	// `unique` whose result event i reuses.
	unique := make([]*expr.Event, 0, len(batch))
	dedup := make([]int, len(batch))
	for i, ev := range batch {
		if i > 0 && ev.Equal(batch[i-1]) {
			dedup[i] = dedup[i-1]
			continue
		}
		dedup[i] = len(unique)
		unique = append(unique, ev)
	}
	results := s.eng.MatchBatch(unique)
	for i, ev := range batch {
		s.deliver(ev, results[dedup[i]])
	}
}

// Pending returns the number of buffered, not-yet-matched events.
func (s *Stream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Pending()
}

// Close flushes buffered events and stops the stream. Publishes after
// Close are dropped. Close is idempotent.
func (s *Stream) Close() {
	s.Flush()
	s.mu.Lock()
	s.closed = true
	s.stopTimer()
	s.mu.Unlock()
}
