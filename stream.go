package apcm

import (
	"sync"
	"time"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/osr"
)

// StreamOptions configures a Stream.
type StreamOptions struct {
	// Window is the online stream re-ordering window: events are
	// buffered, reordered by index locality, and matched as a batch once
	// Window events accumulate. A window of 0 or 1 disables re-ordering
	// (every event is matched immediately).
	Window int
	// MaxDelay bounds the extra latency re-ordering may add: a partial
	// window is flushed this long after its first event. 0 means 10ms.
	// Ignored when Window disables buffering.
	MaxDelay time.Duration
}

func (o *StreamOptions) sanitize() {
	if o.MaxDelay <= 0 {
		o.MaxDelay = 10 * time.Millisecond
	}
}

// Stream is the engine's streaming front end with online stream
// re-ordering (OSR). Events enter via Publish; matches leave via the
// deliver callback, which runs on the publishing goroutine (on window
// flushes) or on a timer goroutine (on deadline flushes) — it must be
// safe for that and should not block for long. deliver must not call
// Close on its own stream (Close waits for in-flight deliveries and
// would deadlock).
//
// Timer races are resolved by a generation counter: every arm or cancel
// bumps the generation, and a deadline callback that arrives with a
// stale generation (its window was already flushed by Publish, Flush or
// Close) is a no-op instead of flushing a newer partial window early.
// Close waits for in-flight deliveries, so no deliver call is running
// or will run after Close returns.
type Stream struct {
	eng     *Engine
	opts    StreamOptions
	deliver func(*expr.Event, []expr.ID)

	mu       sync.Mutex
	buf      *osr.Buffer
	timer    *time.Timer
	timerGen uint64
	closed   bool
	// inflight counts started-but-unfinished process() calls; every
	// Add(1) happens under mu strictly before closed is set, so Close's
	// Wait covers exactly the deliveries that were admitted.
	inflight sync.WaitGroup
}

// NewStream creates a streaming front end over the engine.
func (e *Engine) NewStream(opts StreamOptions, deliver func(ev *expr.Event, matches []expr.ID)) *Stream {
	opts.sanitize()
	s := &Stream{
		eng:     e,
		opts:    opts,
		deliver: deliver,
		buf:     osr.NewBuffer(opts.Window),
	}
	if e.met != nil {
		s.buf.TrackDistance(true)
	}
	return s
}

// Publish submits an event. It may synchronously flush a full window
// (invoking deliver for every event in it, in locality order).
func (s *Stream) Publish(ev *expr.Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	m := s.eng.met
	if m != nil {
		m.streamEvents.Inc()
	}
	batch := s.buf.Add(ev)
	var dist int
	if batch != nil {
		if m != nil {
			m.streamFlushFull.Inc()
			dist = s.buf.LastDistance()
		}
		s.stopTimer()
		s.inflight.Add(1)
	} else if s.timer == nil && s.buf.Pending() > 0 {
		// Covers both a fresh window and one whose deadline callback was
		// invalidated before it could flush.
		s.armTimer()
	}
	s.mu.Unlock()
	if batch != nil {
		s.process(batch, dist)
		s.inflight.Done()
	}
}

// armTimer schedules a deadline flush; the caller holds s.mu.
func (s *Stream) armTimer() {
	if s.opts.Window <= 1 {
		return
	}
	s.timerGen++
	gen := s.timerGen
	s.timer = time.AfterFunc(s.opts.MaxDelay, func() { s.deadlineFlush(gen) })
}

// stopTimer cancels a pending deadline flush; the caller holds s.mu.
// Bumping the generation also neutralises a callback that has already
// fired but not yet acquired the lock.
func (s *Stream) stopTimer() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.timerGen++
}

// deadlineFlush is the timer callback for the window generation gen.
func (s *Stream) deadlineFlush(gen uint64) {
	s.mu.Lock()
	if s.closed || gen != s.timerGen {
		// The window this deadline belonged to was already flushed (or
		// the stream closed); flushing now would release a newer partial
		// window before its own deadline.
		s.mu.Unlock()
		return
	}
	s.timer = nil
	s.timerGen++
	batch := s.buf.Flush()
	var dist int
	if batch != nil {
		if m := s.eng.met; m != nil {
			m.streamFlushDeadline.Inc()
			dist = s.buf.LastDistance()
		}
		s.inflight.Add(1)
	}
	s.mu.Unlock()
	if batch != nil {
		s.process(batch, dist)
		s.inflight.Done()
	}
}

// Flush matches and delivers any buffered events immediately.
func (s *Stream) Flush() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	batch, dist := s.flushLocked()
	s.mu.Unlock()
	if batch != nil {
		s.process(batch, dist)
		s.inflight.Done()
	}
}

// flushLocked drains the buffer and accounts a manual flush; the caller
// holds s.mu and must process the batch then Done the inflight count.
func (s *Stream) flushLocked() ([]*expr.Event, int) {
	s.stopTimer()
	batch := s.buf.Flush()
	var dist int
	if batch != nil {
		if m := s.eng.met; m != nil {
			m.streamFlushManual.Inc()
			dist = s.buf.LastDistance()
		}
		s.inflight.Add(1)
	}
	return batch, dist
}

func (s *Stream) process(batch []*expr.Event, dist int) {
	m := s.eng.met
	var start time.Time
	if m != nil {
		start = time.Now()
		if w := s.buf.Window(); w > 1 {
			m.streamFill.Observe(float64(len(batch)) / float64(w) * 100)
		}
		m.streamReorder.Observe(float64(dist))
	}
	// Re-ordering makes identical events adjacent; match each distinct
	// event once and fan the result out. dedup[i] is the index in
	// `unique` whose result event i reuses.
	unique := make([]*expr.Event, 0, len(batch))
	dedup := make([]int, len(batch))
	for i, ev := range batch {
		if i > 0 && ev.Equal(batch[i-1]) {
			dedup[i] = dedup[i-1]
			continue
		}
		dedup[i] = len(unique)
		unique = append(unique, ev)
	}
	results := s.eng.MatchBatch(unique)
	for i, ev := range batch {
		s.deliver(ev, results[dedup[i]])
	}
	if m != nil {
		m.streamDedupHits.Add(int64(len(batch) - len(unique)))
		m.streamFlushLatency.ObserveDuration(time.Since(start))
	}
}

// Pending returns the number of buffered, not-yet-matched events.
func (s *Stream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Pending()
}

// Close flushes buffered events, stops the stream and waits for every
// in-flight delivery (including deadline flushes racing with it) to
// finish: after Close returns, deliver will not be invoked again.
// Publishes after Close are dropped. Close is idempotent, and
// concurrent Closes all wait.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.inflight.Wait()
		return
	}
	batch, dist := s.flushLocked()
	s.closed = true
	s.mu.Unlock()
	if batch != nil {
		s.process(batch, dist)
		s.inflight.Done()
	}
	s.inflight.Wait()
}
