//go:build !race

package apcm_test

const raceEnabled = false
