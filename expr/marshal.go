package expr

import (
	"encoding/binary"
	"fmt"
)

// Binary codec. The format is a compact, append-style encoding used by
// the trace files, the broker wire protocol, and (as an identity key) the
// compressed cluster's predicate dictionary:
//
//	predicate  := uvarint(attr) byte(op) operands
//	operands   := zigzag(lo)                      (EQ NE LT LE GT GE)
//	            | zigzag(lo) zigzag(hi)           (Between)
//	            | uvarint(n) zigzag-delta values  (In NotIn)
//	expression := uvarint(id) uvarint(npreds) predicate*
//	event      := uvarint(npairs) { uvarint(attr delta) zigzag(val) }*
//
// Attribute deltas in events and value deltas in sets exploit sortedness
// for one-byte-per-entry encodings in the common case.

func zigzag(v Value) uint64   { return uint64((int64(v) << 1) ^ (int64(v) >> 63)) }
func unzigzag(u uint64) Value { return Value(int64(u>>1) ^ -int64(u&1)) }

// AppendPredicate appends the encoding of p to dst.
func AppendPredicate(dst []byte, p *Predicate) []byte {
	dst = binary.AppendUvarint(dst, uint64(p.Attr))
	dst = append(dst, byte(p.Op))
	switch p.Op {
	case Between:
		dst = binary.AppendUvarint(dst, zigzag(p.Lo))
		dst = binary.AppendUvarint(dst, zigzag(p.Hi))
	case In, NotIn:
		dst = binary.AppendUvarint(dst, uint64(len(p.Set)))
		prev := Value(0)
		for _, v := range p.Set {
			dst = binary.AppendUvarint(dst, zigzag(v-prev))
			prev = v
		}
	default:
		dst = binary.AppendUvarint(dst, zigzag(p.Lo))
	}
	return dst
}

// DecodePredicate decodes one predicate from b, returning it and the
// number of bytes consumed.
func DecodePredicate(b []byte) (Predicate, int, error) {
	var p Predicate
	attr, n := binary.Uvarint(b)
	if n <= 0 {
		return p, 0, fmt.Errorf("expr: truncated predicate attribute")
	}
	off := n
	if off >= len(b) {
		return p, 0, fmt.Errorf("expr: truncated predicate operator")
	}
	p.Attr = AttrID(attr)
	p.Op = Op(b[off])
	off++
	if !p.Op.Valid() {
		return p, 0, fmt.Errorf("expr: invalid operator byte %d", b[off-1])
	}
	switch p.Op {
	case Between:
		lo, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return p, 0, fmt.Errorf("expr: truncated interval low bound")
		}
		off += n
		hi, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return p, 0, fmt.Errorf("expr: truncated interval high bound")
		}
		off += n
		p.Lo, p.Hi = unzigzag(lo), unzigzag(hi)
	case In, NotIn:
		cnt, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return p, 0, fmt.Errorf("expr: truncated set length")
		}
		off += n
		if cnt > uint64(len(b)) {
			return p, 0, fmt.Errorf("expr: set length %d exceeds input", cnt)
		}
		p.Set = make([]Value, cnt)
		prev := Value(0)
		for i := range p.Set {
			d, n := binary.Uvarint(b[off:])
			if n <= 0 {
				return p, 0, fmt.Errorf("expr: truncated set element %d", i)
			}
			off += n
			prev += unzigzag(d)
			p.Set[i] = prev
		}
	default:
		lo, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return p, 0, fmt.Errorf("expr: truncated operand")
		}
		off += n
		p.Lo = unzigzag(lo)
		if p.Op == EQ || p.Op == NE {
			p.Hi = p.Lo
		}
	}
	return p, off, nil
}

// AppendExpression appends the encoding of x to dst.
func AppendExpression(dst []byte, x *Expression) []byte {
	dst = binary.AppendUvarint(dst, uint64(x.ID))
	dst = binary.AppendUvarint(dst, uint64(len(x.Preds)))
	for i := range x.Preds {
		dst = AppendPredicate(dst, &x.Preds[i])
	}
	return dst
}

// DecodeExpression decodes one expression from b, returning it and the
// number of bytes consumed. The result is validated.
func DecodeExpression(b []byte) (*Expression, int, error) {
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("expr: truncated expression id")
	}
	off := n
	cnt, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("expr: truncated predicate count")
	}
	off += n
	if cnt == 0 {
		return nil, 0, fmt.Errorf("expr: expression %d has no predicates", id)
	}
	if cnt > uint64(len(b)) {
		return nil, 0, fmt.Errorf("expr: predicate count %d exceeds input", cnt)
	}
	preds := make([]Predicate, cnt)
	for i := range preds {
		p, n, err := DecodePredicate(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("expression %d predicate %d: %w", id, i, err)
		}
		preds[i] = p
		off += n
	}
	x, err := New(ID(id), preds...)
	if err != nil {
		return nil, 0, err
	}
	return x, off, nil
}

// AppendEvent appends the encoding of e to dst.
func AppendEvent(dst []byte, e *Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.pairs)))
	prev := AttrID(0)
	for _, p := range e.pairs {
		dst = binary.AppendUvarint(dst, uint64(p.Attr-prev))
		dst = binary.AppendUvarint(dst, zigzag(p.Val))
		prev = p.Attr
	}
	return dst
}

// DecodeEvent decodes one event from b, returning it and the number of
// bytes consumed.
func DecodeEvent(b []byte) (*Event, int, error) {
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("expr: truncated event length")
	}
	off := n
	if cnt == 0 {
		return nil, 0, fmt.Errorf("expr: empty event")
	}
	if cnt > uint64(len(b)) {
		return nil, 0, fmt.Errorf("expr: event length %d exceeds input", cnt)
	}
	pairs := make([]Pair, cnt)
	prev := AttrID(0)
	for i := range pairs {
		d, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("expr: truncated event attribute %d", i)
		}
		off += n
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("expr: truncated event value %d", i)
		}
		off += n
		if i > 0 && d == 0 {
			return nil, 0, fmt.Errorf("expr: duplicate attribute after %d in event", prev)
		}
		attr64 := uint64(prev) + d
		if attr64 > uint64(^AttrID(0)) {
			return nil, 0, fmt.Errorf("expr: attribute delta overflows at pair %d", i)
		}
		attr := AttrID(attr64)
		pairs[i] = Pair{Attr: attr, Val: unzigzag(v)}
		prev = attr
	}
	// Pairs were encoded sorted, so construct directly.
	return &Event{pairs: pairs}, off, nil
}

// Key returns the canonical identity key of p, suitable as a map key for
// predicate-dictionary de-duplication: two predicates have the same Key
// iff Equal reports true.
func (p *Predicate) Key() string {
	return string(AppendPredicate(make([]byte, 0, 16), p))
}
