package expr

import (
	"fmt"
	"sync"
)

// Schema maps human-readable attribute names to dense AttrIDs, records
// optional per-attribute domain cardinalities, and optionally interns
// per-attribute string values into dense Values. It exists for the text
// syntax, the examples, and the broker; the matchers themselves operate
// purely on ids. Schema is safe for concurrent use.
type Schema struct {
	mu     sync.RWMutex
	names  []string
	byName map[string]AttrID
	card   []Value // 0 means "unknown"
	vals   map[AttrID]*valueDict
}

type valueDict struct {
	names  []string
	byName map[string]Value
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		byName: make(map[string]AttrID),
		vals:   make(map[AttrID]*valueDict),
	}
}

// Attr returns the id for name, interning it on first use.
func (s *Schema) Attr(name string) AttrID {
	s.mu.RLock()
	id, ok := s.byName[name]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.byName[name]; ok {
		return id
	}
	id = AttrID(len(s.names))
	s.names = append(s.names, name)
	s.card = append(s.card, 0)
	s.byName[name] = id
	return id
}

// DeclareAttr interns name and records the domain cardinality (values are
// assumed to be 0..card-1). A zero card leaves the domain unknown.
func (s *Schema) DeclareAttr(name string, card Value) AttrID {
	id := s.Attr(name)
	s.mu.Lock()
	s.card[id] = card
	s.mu.Unlock()
	return id
}

// Name returns the name registered for id.
func (s *Schema) Name(id AttrID) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.names) {
		return "", false
	}
	return s.names[id], true
}

// Lookup returns the id for name without interning.
func (s *Schema) Lookup(name string) (AttrID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.byName[name]
	return id, ok
}

// Cardinality returns the declared domain size for id (0 if unknown).
func (s *Schema) Cardinality(id AttrID) Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.card) {
		return 0
	}
	return s.card[id]
}

// Len returns the number of interned attributes.
func (s *Schema) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}

// ValueOf interns name in attr's string-value dictionary, assigning
// dense Values 0, 1, 2, ... in first-use order. It lets applications
// with categorical string domains ("color in {red, blue}") use the
// integer-valued matcher without managing their own mapping:
//
//	red := schema.ValueOf(color, "red")
//	sub := expr.MustNew(id, expr.Eq(color, red))
func (s *Schema) ValueOf(attr AttrID, name string) Value {
	s.mu.RLock()
	d := s.vals[attr]
	if d != nil {
		if v, ok := d.byName[name]; ok {
			s.mu.RUnlock()
			return v
		}
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	d = s.vals[attr]
	if d == nil {
		d = &valueDict{byName: make(map[string]Value)}
		s.vals[attr] = d
	}
	if v, ok := d.byName[name]; ok {
		return v
	}
	v := Value(len(d.names))
	d.names = append(d.names, name)
	d.byName[name] = v
	return v
}

// LookupValue returns the interned Value for name on attr, without
// interning it.
func (s *Schema) LookupValue(attr AttrID, name string) (Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := s.vals[attr]
	if d == nil {
		return 0, false
	}
	v, ok := d.byName[name]
	return v, ok
}

// ValueName returns the string interned for v on attr, if any.
func (s *Schema) ValueName(attr AttrID, v Value) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := s.vals[attr]
	if d == nil || v < 0 || int(v) >= len(d.names) {
		return "", false
	}
	return d.names[v], true
}

// MustName is Name for rendering paths where the id is known to exist.
func (s *Schema) MustName(id AttrID) string {
	n, ok := s.Name(id)
	if !ok {
		return fmt.Sprintf("a%d", id)
	}
	return n
}
