package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoversFixtures(t *testing.T) {
	cases := []struct {
		name string
		a, b *Expression
		want bool
	}{
		{"identical", MustNew(1, Eq(1, 5)), MustNew(2, Eq(1, 5)), true},
		{"wider interval covers narrower", MustNew(1, Rng(1, 0, 100)), MustNew(2, Rng(1, 10, 20)), true},
		{"narrower does not cover wider", MustNew(1, Rng(1, 10, 20)), MustNew(2, Rng(1, 0, 100)), false},
		{"interval covers point", MustNew(1, Rng(1, 0, 100)), MustNew(2, Eq(1, 50)), true},
		{"interval covers subset IN", MustNew(1, Rng(1, 0, 100)), MustNew(2, Any(1, 5, 50, 99)), true},
		{"interval misses IN element", MustNew(1, Rng(1, 0, 100)), MustNew(2, Any(1, 5, 101)), false},
		{"superset IN covers subset IN", MustNew(1, Any(1, 1, 2, 3)), MustNew(2, Any(1, 1, 3)), true},
		{"subset IN does not cover superset", MustNew(1, Any(1, 1, 3)), MustNew(2, Any(1, 1, 2, 3)), false},
		{"fewer attrs cover more attrs", MustNew(1, Eq(1, 5)), MustNew(2, Eq(1, 5), Eq(2, 7)), true},
		{"more attrs do not cover fewer", MustNew(1, Eq(1, 5), Eq(2, 7)), MustNew(2, Eq(1, 5)), false},
		{"exclusion covered by narrower b", MustNew(1, Ne(1, 5)), MustNew(2, Rng(1, 10, 20)), true},
		{"b reaches the excluded value", MustNew(1, Ne(1, 5)), MustNew(2, Rng(1, 0, 20)), false},
		{"b excludes it too", MustNew(1, Ne(1, 5)), MustNew(2, Rng(1, 0, 20), Ne(1, 5)), true},
		{"unsat b vacuously covered", MustNew(1, Eq(1, 5)), MustNew(2, Eq(2, 1), Eq(2, 2)), true},
		{"unsat a covers nothing", MustNew(1, Eq(1, 1), Eq(1, 2)), MustNew(2, Eq(1, 1)), false},
		{"IN covers small interval", MustNew(1, Any(1, 1, 2, 3, 4, 5)), MustNew(2, Rng(1, 2, 4)), true},
		{"IN misses part of interval", MustNew(1, Any(1, 1, 2, 4, 5)), MustNew(2, Rng(1, 2, 4)), false},
		{"redundant b predicates", MustNew(1, Rng(1, 0, 50)), MustNew(2, Ge(1, 10), Le(1, 20), Ne(1, 60)), true},
	}
	for _, c := range cases {
		if got := Covers(c.a, c.b); got != c.want {
			t.Errorf("%s: Covers(%s, %s) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestCoversConservativeOnWideEnumeration(t *testing.T) {
	// A huge interval against an IN set is not enumerated; the answer
	// must be the conservative false, never a wrong true.
	a := MustNew(1, Any(1, 1, 2, 3))
	b := MustNew(2, Rng(1, 0, 1_000_000))
	if Covers(a, b) {
		t.Fatal("wide-interval enumeration produced a wrong true")
	}
}

// TestPropCoversIsSound is the load-bearing property: whenever Covers
// says true, every matching event of b must match a, verified
// exhaustively over a small space.
func TestPropCoversIsSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Expression {
			preds := make([]Predicate, rng.Intn(3)+1)
			for i := range preds {
				preds[i] = randomPredicate(rng, 3, 8)
			}
			x, err := New(1, preds...)
			if err != nil {
				return nil
			}
			return x
		}
		a, b := mk(), mk()
		if a == nil || b == nil {
			return false
		}
		if !Covers(a, b) {
			return true // conservative negatives are always allowed
		}
		for a0 := -1; a0 < 8; a0++ {
			for a1 := -1; a1 < 8; a1++ {
				for a2 := -1; a2 < 8; a2++ {
					var pairs []Pair
					if a0 >= 0 {
						pairs = append(pairs, P(0, Value(a0)))
					}
					if a1 >= 0 {
						pairs = append(pairs, P(1, Value(a1)))
					}
					if a2 >= 0 {
						pairs = append(pairs, P(2, Value(a2)))
					}
					if len(pairs) == 0 {
						continue
					}
					ev := MustEvent(pairs...)
					if b.MatchesEvent(ev) && !a.MatchesEvent(ev) {
						t.Logf("seed %d: Covers(%s, %s) true but %s matches only b", seed, a, b, ev)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCoversReflexive: every satisfiable expression covers itself.
func TestPropCoversReflexive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		preds := make([]Predicate, rng.Intn(4)+1)
		for i := range preds {
			preds[i] = randomPredicate(rng, 4, 10)
		}
		x, err := New(1, preds...)
		if err != nil {
			return false
		}
		if _, sat := x.Normalize(); !sat {
			return true
		}
		// In sets wider than the enumeration limit cannot occur in this
		// small domain, so reflexivity must hold exactly.
		return Covers(x, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
