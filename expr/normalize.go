package expr

// Normalization of conjunctions. Subscriptions written by hand or
// produced by query rewriters often carry redundant predicates
// ("price >= 100 and price >= 150", "brand in {1,2,3} and brand != 2").
// Normalize canonicalises each attribute's constraints into at most two
// predicates — one positive (EQ, Between or In) and one merged exclusion
// (NE or NotIn) — detecting unsatisfiable conjunctions along the way.
// Indexes cluster and compress canonical forms better, and unsatisfiable
// subscriptions can be rejected instead of indexed.

// Normalize returns a semantically equivalent expression with each
// attribute's predicates canonicalised, and whether the expression is
// satisfiable at all. An unsatisfiable expression (e.g. "a = 1 and
// a = 2") returns (nil, false): it can never match any event.
//
// The normalized expression preserves attribute-presence semantics:
// every attribute constrained by x remains constrained, so events
// lacking it still fail to match.
func (x *Expression) Normalize() (*Expression, bool) {
	var out []Predicate
	i := 0
	for i < len(x.Preds) {
		j := i
		attr := x.Preds[i].Attr
		for j < len(x.Preds) && x.Preds[j].Attr == attr {
			j++
		}
		preds, ok := normalizeAttr(attr, x.Preds[i:j])
		if !ok {
			return nil, false
		}
		out = append(out, preds...)
		i = j
	}
	nx, err := New(x.ID, out...)
	if err != nil {
		// normalizeAttr emits only valid predicates and at least one per
		// constrained attribute; a failure here is a bug.
		panic("expr: normalization produced an invalid expression: " + err.Error())
	}
	return nx, true
}

// normalizeAttr canonicalises one attribute's conjunction.
func normalizeAttr(attr AttrID, preds []Predicate) ([]Predicate, bool) {
	lo, hi := MinValue, MaxValue
	hadInterval := false
	var sets [][]Value // In sets to intersect
	var excluded []Value
	for i := range preds {
		p := &preds[i]
		switch p.Op {
		case EQ, LT, LE, GT, GE, Between:
			hadInterval = true
		}
		switch p.Op {
		case EQ:
			lo, hi = maxV(lo, p.Lo), minV(hi, p.Lo)
		case LT:
			hi = minV(hi, p.Lo-1)
		case LE:
			hi = minV(hi, p.Lo)
		case GT:
			lo = maxV(lo, p.Lo+1)
		case GE:
			lo = maxV(lo, p.Lo)
		case Between:
			lo, hi = maxV(lo, p.Lo), minV(hi, p.Hi)
		case In:
			sets = append(sets, p.Set)
		case NE:
			excluded = append(excluded, p.Lo)
		case NotIn:
			excluded = append(excluded, p.Set...)
		}
	}
	if lo > hi {
		return nil, false
	}
	excluded = normalizeSet(excluded)

	if len(sets) > 0 {
		// The positive constraint is a set: intersect all sets, clip to
		// the interval, remove exclusions.
		set := intersectSets(sets)
		kept := set[:0]
		for _, v := range set {
			if v >= lo && v <= hi && !setContains(excluded, v) {
				kept = append(kept, v)
			}
		}
		switch len(kept) {
		case 0:
			return nil, false
		case 1:
			return []Predicate{Eq(attr, kept[0])}, true
		default:
			cp := make([]Value, len(kept))
			copy(cp, kept)
			return []Predicate{{Attr: attr, Op: In, Set: cp}}, true
		}
	}

	if !hadInterval {
		// Pure exclusions: the merged NE/NotIn both excludes and keeps
		// the attribute-presence requirement; adding a full-domain
		// interval would only grow the expression.
		if len(excluded) == 1 {
			return []Predicate{Ne(attr, excluded[0])}, true
		}
		cp := make([]Value, len(excluded))
		copy(cp, excluded)
		return []Predicate{{Attr: attr, Op: NotIn, Set: cp}}, true
	}

	// The positive constraint is an interval. Exclusions outside it are
	// redundant; an exclusion chain covering the whole interval is a
	// contradiction; exclusions at the edges shrink it.
	for {
		shrunk := false
		for lo <= hi && setContains(excluded, lo) {
			lo++
			shrunk = true
		}
		for hi >= lo && setContains(excluded, hi) {
			hi--
			shrunk = true
		}
		if lo > hi {
			return nil, false
		}
		if !shrunk {
			break
		}
	}
	kept := excluded[:0]
	for _, v := range excluded {
		if v > lo && v < hi {
			kept = append(kept, v)
		}
	}
	excluded = kept

	if lo == hi {
		// Exclusions inside a point interval were handled by shrinking.
		return []Predicate{Eq(attr, lo)}, true
	}
	var out []Predicate
	if width := int64(hi) - int64(lo) + 1; len(excluded) > 0 && width == int64(len(excluded))+2 {
		// Everything between the bounds is excluded except the bounds
		// themselves: the constraint is exactly {lo, hi}.
		return []Predicate{Any(attr, lo, hi)}, true
	}
	out = append(out, Rng(attr, lo, hi))
	switch len(excluded) {
	case 0:
	case 1:
		out = append(out, Ne(attr, excluded[0]))
	default:
		cp := make([]Value, len(excluded))
		copy(cp, excluded)
		out = append(out, Predicate{Attr: attr, Op: NotIn, Set: cp})
	}
	return out, true
}

// intersectSets intersects sorted duplicate-free sets.
func intersectSets(sets [][]Value) []Value {
	out := make([]Value, len(sets[0]))
	copy(out, sets[0])
	for _, s := range sets[1:] {
		kept := out[:0]
		for _, v := range out {
			if setContains(s, v) {
				kept = append(kept, v)
			}
		}
		out = kept
		if len(out) == 0 {
			return out
		}
	}
	return out
}

func minV(a, b Value) Value {
	if a < b {
		return a
	}
	return b
}

func maxV(a, b Value) Value {
	if a > b {
		return a
	}
	return b
}
