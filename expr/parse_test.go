package expr

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	s := NewSchema()
	x, err := Parse(s, 42, "price <= 500 and brand in {3, 7} and rating >= 4")
	if err != nil {
		t.Fatal(err)
	}
	if x.ID != 42 || len(x.Preds) != 3 {
		t.Fatalf("parsed %s", x)
	}
	price, _ := s.Lookup("price")
	brand, _ := s.Lookup("brand")
	rating, _ := s.Lookup("rating")
	ev := MustEvent(Pair{price, 300}, Pair{brand, 7}, Pair{rating, 5})
	if !x.MatchesEvent(ev) {
		t.Error("event should match")
	}
	ev2 := MustEvent(Pair{price, 600}, Pair{brand, 7}, Pair{rating, 5})
	if x.MatchesEvent(ev2) {
		t.Error("price 600 should not match")
	}
}

func TestParseAllOperators(t *testing.T) {
	s := NewSchema()
	cases := []struct {
		text  string
		val   Value
		match bool
	}{
		{"x = 5", 5, true},
		{"x == 5", 5, true},
		{"x != 5", 5, false},
		{"x < 5", 4, true},
		{"x <= 5", 5, true},
		{"x > 5", 6, true},
		{"x >= 5", 5, true},
		{"x between 2 8", 8, true},
		{"x between 2 8", 9, false},
		{"x in {1, 3, 5}", 3, true},
		{"x in {1,3,5}", 2, false},
		{"x not in {1, 3}", 2, true},
		{"x not in {1, 3}", 3, false},
		{"x = -7", -7, true},
	}
	for _, c := range cases {
		x, err := Parse(s, 1, c.text)
		if err != nil {
			t.Fatalf("%q: %v", c.text, err)
		}
		a, _ := s.Lookup("x")
		ev := MustEvent(Pair{a, c.val})
		if got := x.MatchesEvent(ev); got != c.match {
			t.Errorf("%q vs x=%d: match=%v, want %v", c.text, c.val, got, c.match)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	s := NewSchema()
	if _, err := Parse(s, 1, "x = 1 AND y BETWEEN 1 2 AND z IN {1} AND w NOT IN {2}"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	s := NewSchema()
	bad := []string{
		"",
		"x",
		"x =",
		"= 5",
		"x ! 5",
		"x = 5 and",
		"x = 5 or y = 2",
		"x in {}",
		"x in {1",
		"x in {1 2}",
		"x not 5",
		"x between 5",
		"x between 9 1", // empty interval fails validation
		"x = 99999999999999",
		"x # 5",
		"x = 5 y = 2",
	}
	for _, text := range bad {
		if _, err := Parse(s, 1, text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	s := NewSchema()
	texts := []string{
		"price <= 500 and brand in {3, 7}",
		"x = 1 and y != 2 and z between 3 9 and w not in {1, 2}",
	}
	for _, text := range texts {
		x := MustParse(s, 1, text)
		back := MustParse(s, 1, x.Format(s))
		if len(back.Preds) != len(x.Preds) {
			t.Fatalf("round trip changed arity for %q", text)
		}
		for i := range x.Preds {
			if !back.Preds[i].Equal(&x.Preds[i]) {
				t.Fatalf("round trip changed predicate %d of %q: %s vs %s",
					i, text, x.Preds[i].String(), back.Preds[i].String())
			}
		}
	}
}

func TestParseEvent(t *testing.T) {
	s := NewSchema()
	e, err := ParseEvent(s, "price=300, brand=7, rating = 5")
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 3 {
		t.Fatalf("Len = %d", e.Len())
	}
	brand, _ := s.Lookup("brand")
	if v, ok := e.Lookup(brand); !ok || v != 7 {
		t.Errorf("brand = %d,%v", v, ok)
	}
	if _, err := ParseEvent(s, ""); err == nil {
		t.Error("empty event text should fail")
	}
	if _, err := ParseEvent(s, "x=1, x=2"); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := ParseEvent(s, "x=abc"); err == nil {
		t.Error("non-numeric value should fail")
	}
	if _, err := ParseEvent(s, "=5"); err == nil {
		t.Error("missing name should fail")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse(NewSchema(), 1, "not a valid expression %%")
}

func TestFormatWithSchema(t *testing.T) {
	s := NewSchema()
	x := MustParse(s, 1, "price < 10 and brand in {1}")
	out := x.Format(s)
	if !strings.Contains(out, "price") || !strings.Contains(out, "brand") {
		t.Errorf("Format lost names: %q", out)
	}
	e := MustParseEvent(s, "price=3")
	if e.Format(s) != "price=3" {
		t.Errorf("event Format = %q", e.Format(s))
	}
}
