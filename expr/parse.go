package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds an expression from the text syntax:
//
//	expr  := pred { "and" pred }
//	pred  := name op int
//	       | name "between" int int
//	       | name "in" "{" int { "," int } "}"
//	       | name "not" "in" "{" int { "," int } "}"
//	op    := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
//
// Attribute names are interned into s. Example:
//
//	price <= 500 and brand in {3, 7} and rating >= 4
func Parse(s *Schema, id ID, text string) (*Expression, error) {
	toks, err := tokenize(text)
	if err != nil {
		return nil, err
	}
	p := &parser{schema: s, toks: toks}
	preds, err := p.parseConjunction()
	if err != nil {
		return nil, fmt.Errorf("expr: parsing %q: %w", text, err)
	}
	return New(id, preds...)
}

// MustParse is Parse for tests and literals; it panics on invalid input.
func MustParse(s *Schema, id ID, text string) *Expression {
	x, err := Parse(s, id, text)
	if err != nil {
		panic(err)
	}
	return x
}

// ParseEvent builds an event from "name=int, name=int" text. Attribute
// names are interned into s.
func ParseEvent(s *Schema, text string) (*Event, error) {
	var pairs []Pair
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("expr: bad event assignment %q", part)
		}
		name := strings.TrimSpace(part[:eq])
		vs := strings.TrimSpace(part[eq+1:])
		v, err := strconv.ParseInt(vs, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("expr: bad value in %q: %w", part, err)
		}
		pairs = append(pairs, Pair{Attr: s.Attr(name), Val: Value(v)})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("expr: empty event %q", text)
	}
	return NewEvent(pairs...)
}

// MustParseEvent is ParseEvent for tests and literals; it panics on
// invalid input.
func MustParseEvent(s *Schema, text string) *Event {
	e, err := ParseEvent(s, text)
	if err != nil {
		panic(err)
	}
	return e
}

type token struct {
	kind byte // 'w' word, 'o' operator, 'n' number, '{', '}', ','
	text string
}

func tokenize(text string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '{' || c == '}' || c == ',':
			toks = append(toks, token{kind: c, text: string(c)})
			i++
		case c == '=' || c == '!' || c == '<' || c == '>':
			j := i + 1
			if j < len(text) && text[j] == '=' {
				j++
			}
			op := text[i:j]
			if op == "==" {
				op = "="
			}
			if op == "!" {
				return nil, fmt.Errorf("bare '!' at offset %d", i)
			}
			toks = append(toks, token{kind: 'o', text: op})
			i = j
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(text) && text[j] >= '0' && text[j] <= '9' {
				j++
			}
			toks = append(toks, token{kind: 'n', text: text[i:j]})
			i = j
		case isWordByte(c):
			j := i + 1
			for j < len(text) && isWordByte(text[j]) {
				j++
			}
			toks = append(toks, token{kind: 'w', text: text[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func isWordByte(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

type parser struct {
	schema *Schema
	toks   []token
	pos    int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expect(kind byte) (token, error) {
	t, ok := p.next()
	if !ok {
		return token{}, fmt.Errorf("unexpected end of input (wanted %q)", kind)
	}
	if t.kind != kind {
		return token{}, fmt.Errorf("unexpected token %q (wanted %q)", t.text, kind)
	}
	return t, nil
}

func (p *parser) parseConjunction() ([]Predicate, error) {
	var preds []Predicate
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		t, ok := p.peek()
		if !ok {
			return preds, nil
		}
		if t.kind != 'w' || !strings.EqualFold(t.text, "and") {
			return nil, fmt.Errorf("unexpected token %q (wanted 'and')", t.text)
		}
		p.pos++
	}
}

func (p *parser) parsePredicate() (Predicate, error) {
	nameTok, err := p.expect('w')
	if err != nil {
		return Predicate{}, err
	}
	attr := p.schema.Attr(nameTok.text)

	t, ok := p.next()
	if !ok {
		return Predicate{}, fmt.Errorf("predicate %q missing operator", nameTok.text)
	}
	switch {
	case t.kind == 'o':
		v, err := p.parseValue()
		if err != nil {
			return Predicate{}, err
		}
		switch t.text {
		case "=":
			return Eq(attr, v), nil
		case "!=":
			return Ne(attr, v), nil
		case "<":
			return Lt(attr, v), nil
		case "<=":
			return Le(attr, v), nil
		case ">":
			return Gt(attr, v), nil
		case ">=":
			return Ge(attr, v), nil
		}
		return Predicate{}, fmt.Errorf("unknown operator %q", t.text)
	case t.kind == 'w' && strings.EqualFold(t.text, "between"):
		lo, err := p.parseValue()
		if err != nil {
			return Predicate{}, err
		}
		hi, err := p.parseValue()
		if err != nil {
			return Predicate{}, err
		}
		return Rng(attr, lo, hi), nil
	case t.kind == 'w' && strings.EqualFold(t.text, "in"):
		set, err := p.parseSet()
		if err != nil {
			return Predicate{}, err
		}
		return Any(attr, set...), nil
	case t.kind == 'w' && strings.EqualFold(t.text, "not"):
		t2, ok := p.next()
		if !ok || t2.kind != 'w' || !strings.EqualFold(t2.text, "in") {
			return Predicate{}, fmt.Errorf("expected 'in' after 'not'")
		}
		set, err := p.parseSet()
		if err != nil {
			return Predicate{}, err
		}
		return None(attr, set...), nil
	}
	return Predicate{}, fmt.Errorf("unexpected token %q after attribute %q", t.text, nameTok.text)
}

func (p *parser) parseValue() (Value, error) {
	t, err := p.expect('n')
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.text, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %w", t.text, err)
	}
	return Value(v), nil
}

func (p *parser) parseSet() ([]Value, error) {
	if _, err := p.expect('{'); err != nil {
		return nil, err
	}
	var vs []Value
	for {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		vs = append(vs, v)
		t, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("unterminated set")
		}
		if t.kind == '}' {
			return vs, nil
		}
		if t.kind != ',' {
			return nil, fmt.Errorf("unexpected token %q in set", t.text)
		}
	}
}
