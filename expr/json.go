package expr

import (
	"encoding/json"
	"fmt"
)

// JSON codec. The JSON forms are self-describing and intended for
// configuration files, HTTP APIs and debugging; the binary codec in
// marshal.go is the performance path.
//
//	predicate  := {"attr": 3, "op": "<=", "value": 5}
//	            | {"attr": 3, "op": "between", "lo": 1, "hi": 9}
//	            | {"attr": 3, "op": "in", "set": [1, 2, 3]}
//	expression := {"id": 7, "preds": [predicate, ...]}
//	event      := {"pairs": [{"attr": 3, "val": 5}, ...]}

type predicateJSON struct {
	Attr  AttrID  `json:"attr"`
	Op    string  `json:"op"`
	Value *Value  `json:"value,omitempty"`
	Lo    *Value  `json:"lo,omitempty"`
	Hi    *Value  `json:"hi,omitempty"`
	Set   []Value `json:"set,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p Predicate) MarshalJSON() ([]byte, error) {
	out := predicateJSON{Attr: p.Attr, Op: p.Op.String()}
	switch p.Op {
	case Between:
		lo, hi := p.Lo, p.Hi
		out.Lo, out.Hi = &lo, &hi
	case In, NotIn:
		out.Set = p.Set
	default:
		v := p.Lo
		out.Value = &v
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. The result is validated.
func (p *Predicate) UnmarshalJSON(data []byte) error {
	var in predicateJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	op, err := parseOpName(in.Op)
	if err != nil {
		return err
	}
	out := Predicate{Attr: in.Attr, Op: op}
	switch op {
	case Between:
		if in.Lo == nil || in.Hi == nil {
			return fmt.Errorf("expr: between predicate needs lo and hi")
		}
		out.Lo, out.Hi = *in.Lo, *in.Hi
	case In, NotIn:
		if len(in.Set) == 0 {
			return fmt.Errorf("expr: %s predicate needs a non-empty set", op)
		}
		out.Set = normalizeSet(in.Set)
	default:
		if in.Value == nil {
			return fmt.Errorf("expr: %s predicate needs a value", op)
		}
		out.Lo = *in.Value
		if op == EQ || op == NE {
			out.Hi = out.Lo
		}
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*p = out
	return nil
}

func parseOpName(s string) (Op, error) {
	for op := EQ; op < opEnd; op++ {
		if opNames[op] == s {
			return op, nil
		}
	}
	if s == "==" {
		return EQ, nil
	}
	return 0, fmt.Errorf("expr: unknown operator %q", s)
}

type expressionJSON struct {
	ID    ID          `json:"id"`
	Preds []Predicate `json:"preds"`
}

// MarshalJSON implements json.Marshaler.
func (x *Expression) MarshalJSON() ([]byte, error) {
	return json.Marshal(expressionJSON{ID: x.ID, Preds: x.Preds})
}

// UnmarshalJSON implements json.Unmarshaler. The result is validated and
// its predicates sorted, as with New.
func (x *Expression) UnmarshalJSON(data []byte) error {
	var in expressionJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	nx, err := New(in.ID, in.Preds...)
	if err != nil {
		return err
	}
	*x = *nx
	return nil
}

type eventJSON struct {
	Pairs []Pair `json:"pairs"`
}

// MarshalJSON implements json.Marshaler.
func (e *Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{Pairs: e.pairs})
}

// UnmarshalJSON implements json.Unmarshaler. Pairs are sorted and
// checked for duplicates, as with NewEvent.
func (e *Event) UnmarshalJSON(data []byte) error {
	var in eventJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	ne, err := NewEvent(in.Pairs...)
	if err != nil {
		return err
	}
	*e = *ne
	return nil
}

// MarshalJSON implements json.Marshaler for event pairs.
func (p Pair) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Attr AttrID `json:"attr"`
		Val  Value  `json:"val"`
	}{p.Attr, p.Val})
}

// UnmarshalJSON implements json.Unmarshaler for event pairs.
func (p *Pair) UnmarshalJSON(data []byte) error {
	var in struct {
		Attr AttrID `json:"attr"`
		Val  Value  `json:"val"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	p.Attr, p.Val = in.Attr, in.Val
	return nil
}
