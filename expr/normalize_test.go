package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalizeMergesIntervals(t *testing.T) {
	x := MustNew(1, Ge(1, 100), Ge(1, 150), Lt(1, 300))
	nx, ok := x.Normalize()
	if !ok {
		t.Fatal("satisfiable expression reported unsatisfiable")
	}
	if len(nx.Preds) != 1 {
		t.Fatalf("expected one merged predicate, got %s", nx)
	}
	p := nx.Preds[0]
	if p.Op != Between || p.Lo != 150 || p.Hi != 299 {
		t.Fatalf("merged to %s, want between 150 299", p.String())
	}
}

func TestNormalizeCollapsesToEquality(t *testing.T) {
	x := MustNew(1, Ge(1, 5), Le(1, 5))
	nx, ok := x.Normalize()
	if !ok || len(nx.Preds) != 1 || nx.Preds[0].Op != EQ || nx.Preds[0].Lo != 5 {
		t.Fatalf("got %v ok=%v, want a = 5", nx, ok)
	}
}

func TestNormalizeIntersectsSets(t *testing.T) {
	x := MustNew(1, Any(1, 1, 2, 3, 4), Any(1, 3, 4, 5), Ne(1, 4))
	nx, ok := x.Normalize()
	if !ok {
		t.Fatal("unexpected unsat")
	}
	if len(nx.Preds) != 1 || nx.Preds[0].Op != EQ || nx.Preds[0].Lo != 3 {
		t.Fatalf("got %s, want a = 3", nx)
	}
}

func TestNormalizeMergesExclusions(t *testing.T) {
	x := MustNew(1, Ne(1, 5), None(1, 7, 9), Rng(1, 0, 100))
	nx, ok := x.Normalize()
	if !ok {
		t.Fatal("unexpected unsat")
	}
	if len(nx.Preds) != 2 {
		t.Fatalf("got %s, want interval + merged exclusion", nx)
	}
	if nx.Preds[1].Op != NotIn || len(nx.Preds[1].Set) != 3 {
		t.Fatalf("exclusions not merged: %s", nx)
	}
}

func TestNormalizeDropsRedundantExclusions(t *testing.T) {
	// Exclusions outside the interval vanish entirely.
	x := MustNew(1, Rng(1, 10, 20), Ne(1, 5), Ne(1, 99))
	nx, ok := x.Normalize()
	if !ok || len(nx.Preds) != 1 || nx.Preds[0].Op != Between {
		t.Fatalf("got %v, want bare interval", nx)
	}
}

func TestNormalizeShrinksEdges(t *testing.T) {
	// Excluding the endpoints shrinks the interval instead of keeping a
	// NotIn.
	x := MustNew(1, Rng(1, 10, 20), Ne(1, 10), Ne(1, 20), Ne(1, 19))
	nx, ok := x.Normalize()
	if !ok {
		t.Fatal("unexpected unsat")
	}
	p := nx.Preds[0]
	if p.Op != Between || p.Lo != 11 || p.Hi != 18 || len(nx.Preds) != 1 {
		t.Fatalf("got %s, want between 11 18", nx)
	}
}

func TestNormalizeDetectsUnsat(t *testing.T) {
	cases := []*Expression{
		MustNew(1, Eq(1, 1), Eq(1, 2)),
		MustNew(1, Gt(1, 10), Lt(1, 5)),
		MustNew(1, Any(1, 1, 2), Any(1, 3, 4)),
		MustNew(1, Any(1, 5), Ne(1, 5)),
		MustNew(1, Rng(1, 5, 6), Ne(1, 5), Ne(1, 6)),
		MustNew(1, Eq(2, 1), Eq(1, 1), Eq(1, 2)), // unsat on one of two attrs
	}
	for i, x := range cases {
		if nx, ok := x.Normalize(); ok {
			t.Errorf("case %d: %s normalized to %s, want unsatisfiable", i, x, nx)
		}
	}
}

func TestNormalizeHolePatternBecomesSet(t *testing.T) {
	// [5,8] minus {6,7} is exactly {5,8}.
	x := MustNew(1, Rng(1, 5, 8), Ne(1, 6), Ne(1, 7))
	nx, ok := x.Normalize()
	if !ok || len(nx.Preds) != 1 || nx.Preds[0].Op != In {
		t.Fatalf("got %v, want a in {5, 8}", nx)
	}
	if len(nx.Preds[0].Set) != 2 || nx.Preds[0].Set[0] != 5 || nx.Preds[0].Set[1] != 8 {
		t.Fatalf("got %s", nx)
	}
}

func TestNormalizePreservesPresenceRequirement(t *testing.T) {
	// A full-domain interval must survive normalization: it still
	// requires the attribute to be present.
	x := MustNew(1, Ge(1, MinValue), Eq(2, 5))
	nx, ok := x.Normalize()
	if !ok {
		t.Fatal("unexpected unsat")
	}
	attrs := nx.Attrs()
	if len(attrs) != 2 {
		t.Fatalf("normalization dropped an attribute: %s", nx)
	}
	if nx.MatchesEvent(MustEvent(P(2, 5))) {
		t.Fatal("normalized expression lost the presence requirement on attr 1")
	}
}

func TestNormalizeMultiAttr(t *testing.T) {
	x := MustNew(9, Ge(1, 5), Le(1, 9), Eq(2, 3), Ne(3, 0), Any(4, 1, 2))
	nx, ok := x.Normalize()
	if !ok {
		t.Fatal("unexpected unsat")
	}
	if nx.ID != 9 {
		t.Fatalf("ID changed: %d", nx.ID)
	}
	if len(nx.Attrs()) != 4 {
		t.Fatalf("attribute set changed: %s", nx)
	}
}

func TestPropNormalizePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Small domain and few attributes maximise interactions.
		preds := make([]Predicate, rng.Intn(6)+1)
		for i := range preds {
			preds[i] = randomPredicate(rng, 3, 8)
		}
		x, err := New(1, preds...)
		if err != nil {
			return false
		}
		nx, sat := x.Normalize()
		// Exhaustively check every event over the small space (with and
		// without each attribute, values 0..8).
		var evs []*Event
		for a0 := -1; a0 < 8; a0++ {
			for a1 := -1; a1 < 8; a1++ {
				for a2 := -1; a2 < 8; a2++ {
					var pairs []Pair
					if a0 >= 0 {
						pairs = append(pairs, P(0, Value(a0)))
					}
					if a1 >= 0 {
						pairs = append(pairs, P(1, Value(a1)))
					}
					if a2 >= 0 {
						pairs = append(pairs, P(2, Value(a2)))
					}
					if len(pairs) == 0 {
						continue
					}
					ev, err := NewEvent(pairs...)
					if err != nil {
						return false
					}
					evs = append(evs, ev)
				}
			}
		}
		for _, ev := range evs {
			want := x.MatchesEvent(ev)
			if !sat {
				if want {
					return false // declared unsat but matches
				}
				continue
			}
			if nx.MatchesEvent(ev) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropNormalizeNeverGrows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		preds := make([]Predicate, rng.Intn(8)+1)
		for i := range preds {
			preds[i] = randomPredicate(rng, 4, 20)
		}
		x, err := New(1, preds...)
		if err != nil {
			return false
		}
		nx, sat := x.Normalize()
		if !sat {
			return true
		}
		return len(nx.Preds) <= len(x.Preds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
