package expr

import (
	"testing"
)

// Fuzz targets. Their seed corpora run on every `go test`; use
// `go test -fuzz FuzzDecodeExpression ./expr` for continuous fuzzing.

func FuzzDecodeExpression(f *testing.F) {
	for _, x := range []*Expression{
		MustNew(1, Eq(1, 5)),
		MustNew(1<<40, Rng(3, -100, 100), Any(2, 1, 5, 9), Ne(7, 0)),
		MustNew(7, None(0, MinValue, MaxValue), Le(1, 0)),
	} {
		f.Add(AppendExpression(nil, x))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		x, n, err := DecodeExpression(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Decoded expressions must be valid and re-encode losslessly.
		for i := range x.Preds {
			if verr := x.Preds[i].Validate(); verr != nil {
				t.Fatalf("decoder produced invalid predicate: %v", verr)
			}
		}
		re := AppendExpression(nil, x)
		back, m, err := DecodeExpression(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m != len(re) || back.ID != x.ID || len(back.Preds) != len(x.Preds) {
			t.Fatal("re-encode not lossless")
		}
		for i := range x.Preds {
			if !back.Preds[i].Equal(&x.Preds[i]) {
				t.Fatalf("predicate %d changed across re-encode", i)
			}
		}
	})
}

func FuzzDecodeEvent(f *testing.F) {
	for _, e := range []*Event{
		MustEvent(P(0, 0)),
		MustEvent(P(1, -5), P(3, 0), P(70000, 12345)),
	} {
		f.Add(AppendEvent(nil, e))
	}
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := DecodeEvent(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Pairs must be sorted and unique.
		pairs := e.Pairs()
		for i := 1; i < len(pairs); i++ {
			if pairs[i].Attr <= pairs[i-1].Attr {
				t.Fatal("decoder produced unsorted or duplicate attributes")
			}
		}
		re := AppendEvent(nil, e)
		back, _, err := DecodeEvent(re)
		if err != nil || back.String() != e.String() {
			t.Fatalf("re-encode not lossless: %v", err)
		}
	})
}

func FuzzParse(f *testing.F) {
	f.Add("price <= 500 and brand in {3, 7}")
	f.Add("x = 1 and y != 2 and z between 3 9 and w not in {1, 2}")
	f.Add("a >= -5")
	f.Add("x in {}")
	f.Add("x = 99999999999999999999")
	f.Add("&& || !")

	f.Fuzz(func(t *testing.T, text string) {
		s := NewSchema()
		x, err := Parse(s, 1, text)
		if err != nil {
			return
		}
		// Anything that parses must format and re-parse to an equivalent
		// expression.
		back, err := Parse(s, 1, x.Format(s))
		if err != nil {
			t.Fatalf("formatted output %q does not re-parse: %v", x.Format(s), err)
		}
		if len(back.Preds) != len(x.Preds) {
			t.Fatalf("re-parse changed arity: %q", text)
		}
		for i := range x.Preds {
			if !back.Preds[i].Equal(&x.Preds[i]) {
				t.Fatalf("re-parse changed predicate %d of %q", i, text)
			}
		}
	})
}

func FuzzParseEvent(f *testing.F) {
	f.Add("price=300, brand=7")
	f.Add("a=1")
	f.Add("a=1, a=2")
	f.Add("=,=,=")

	f.Fuzz(func(t *testing.T, text string) {
		s := NewSchema()
		e, err := ParseEvent(s, text)
		if err != nil {
			return
		}
		back, err := ParseEvent(s, e.Format(s))
		if err != nil {
			t.Fatalf("formatted event %q does not re-parse: %v", e.Format(s), err)
		}
		if back.String() != e.String() {
			t.Fatalf("re-parse changed event: %q", text)
		}
	})
}
