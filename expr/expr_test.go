package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		EQ: "=", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
		Between: "between", In: "in", NotIn: "not in",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
		if !op.Valid() {
			t.Errorf("Op(%d) should be valid", op)
		}
	}
	if Op(99).Valid() {
		t.Error("Op(99) should be invalid")
	}
	if Op(99).String() != "Op(99)" {
		t.Errorf("invalid op string = %q", Op(99).String())
	}
}

func TestPredicateMatches(t *testing.T) {
	cases := []struct {
		pred Predicate
		val  Value
		want bool
	}{
		{Eq(1, 5), 5, true},
		{Eq(1, 5), 6, false},
		{Ne(1, 5), 5, false},
		{Ne(1, 5), 6, true},
		{Lt(1, 5), 4, true},
		{Lt(1, 5), 5, false},
		{Le(1, 5), 5, true},
		{Le(1, 5), 6, false},
		{Gt(1, 5), 6, true},
		{Gt(1, 5), 5, false},
		{Ge(1, 5), 5, true},
		{Ge(1, 5), 4, false},
		{Rng(1, 3, 7), 3, true},
		{Rng(1, 3, 7), 7, true},
		{Rng(1, 3, 7), 8, false},
		{Rng(1, 3, 7), 2, false},
		{Any(1, 2, 4, 6), 4, true},
		{Any(1, 2, 4, 6), 5, false},
		{None(1, 2, 4, 6), 4, false},
		{None(1, 2, 4, 6), 5, true},
		{Eq(1, -3), -3, true},
	}
	for _, c := range cases {
		if got := c.pred.Matches(c.val); got != c.want {
			t.Errorf("(%s).Matches(%d) = %v, want %v", c.pred.String(), c.val, got, c.want)
		}
	}
}

func TestInvalidOpNeverMatches(t *testing.T) {
	p := Predicate{Attr: 1, Op: Op(42), Lo: 1}
	if p.Matches(1) {
		t.Fatal("invalid op matched")
	}
}

func TestSetContainsLarge(t *testing.T) {
	// Exercise the binary-search branch (> 16 elements).
	vs := make([]Value, 64)
	for i := range vs {
		vs[i] = Value(i * 3)
	}
	p := Any(1, vs...)
	for i := 0; i < 200; i++ {
		want := i%3 == 0 && i < 192
		if got := p.Matches(Value(i)); got != want {
			t.Fatalf("Matches(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestAnyNormalizes(t *testing.T) {
	p := Any(1, 5, 2, 5, 9, 2)
	want := []Value{2, 5, 9}
	if len(p.Set) != len(want) {
		t.Fatalf("Set = %v, want %v", p.Set, want)
	}
	for i := range want {
		if p.Set[i] != want[i] {
			t.Fatalf("Set = %v, want %v", p.Set, want)
		}
	}
}

func TestPredicateValidate(t *testing.T) {
	valid := []Predicate{Eq(1, 5), Ne(1, 5), Lt(1, 0), Rng(1, 3, 3), Any(1, 1), None(1, 1, 2)}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", p.String(), err)
		}
	}
	invalid := []Predicate{
		{Attr: 1, Op: Op(77)},
		{Attr: 1, Op: Between, Lo: 5, Hi: 4},
		{Attr: 1, Op: In},
		{Attr: 1, Op: NotIn},
		{Attr: 1, Op: In, Set: []Value{3, 1}}, // not sorted
		{Attr: 1, Op: In, Set: []Value{3, 3}}, // duplicate
		{Attr: 1, Op: LT, Lo: MinValue},       // unsatisfiable
		{Attr: 1, Op: GT, Lo: MaxValue},       // unsatisfiable
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("%v: expected validation error", p)
		}
	}
}

func TestPredicateSpan(t *testing.T) {
	cases := []struct {
		pred   Predicate
		lo, hi Value
	}{
		{Eq(1, 5), 5, 5},
		{Lt(1, 5), MinValue, 4},
		{Le(1, 5), MinValue, 5},
		{Gt(1, 5), 6, MaxValue},
		{Ge(1, 5), 5, MaxValue},
		{Rng(1, 3, 7), 3, 7},
		{Any(1, 9, 2, 5), 2, 9},
		{Ne(1, 5), MinValue, MaxValue},
		{None(1, 5), MinValue, MaxValue},
	}
	for _, c := range cases {
		lo, hi := c.pred.Span()
		if lo != c.lo || hi != c.hi {
			t.Errorf("(%s).Span() = [%d,%d], want [%d,%d]", c.pred.String(), lo, hi, c.lo, c.hi)
		}
	}
}

func TestSpanCoversAcceptedValues(t *testing.T) {
	// Property: every accepted value lies inside Span.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		p := randomPredicate(rng, 8, 100)
		lo, hi := p.Span()
		v := Value(rng.Intn(120) - 10)
		if p.Matches(v) && (v < lo || v > hi) {
			t.Fatalf("%s accepts %d outside span [%d,%d]", p.String(), v, lo, hi)
		}
	}
}

func TestIndexable(t *testing.T) {
	for _, p := range []Predicate{Eq(1, 1), Rng(1, 1, 2), Any(1, 1)} {
		if !p.Indexable() {
			t.Errorf("%s should be indexable", p.String())
		}
	}
	for _, p := range []Predicate{Ne(1, 1), None(1, 1)} {
		if p.Indexable() {
			t.Errorf("%s should not be indexable", p.String())
		}
	}
}

func TestPredicateEqual(t *testing.T) {
	a := Any(1, 2, 3)
	b := Any(1, 2, 3)
	if !a.Equal(&b) {
		t.Error("identical set predicates unequal")
	}
	c := Any(1, 2, 4)
	if a.Equal(&c) {
		t.Error("different sets equal")
	}
	d := Any(2, 2, 3)
	if a.Equal(&d) {
		t.Error("different attributes equal")
	}
	e1, e2 := Eq(1, 5), Eq(1, 5)
	if !e1.Equal(&e2) {
		t.Error("identical EQ predicates unequal")
	}
	lt := Lt(1, 5)
	if e1.Equal(&lt) {
		t.Error("EQ and LT equal")
	}
}

func TestNewExpressionSortsAndValidates(t *testing.T) {
	x, err := New(7, Eq(5, 1), Eq(2, 2), Eq(9, 3))
	if err != nil {
		t.Fatal(err)
	}
	if x.ID != 7 {
		t.Fatalf("ID = %d", x.ID)
	}
	for i := 1; i < len(x.Preds); i++ {
		if x.Preds[i].Attr < x.Preds[i-1].Attr {
			t.Fatal("predicates not sorted by attribute")
		}
	}
	if _, err := New(1); err == nil {
		t.Error("empty expression should be rejected")
	}
	if _, err := New(1, Predicate{Attr: 1, Op: Between, Lo: 2, Hi: 1}); err == nil {
		t.Error("invalid predicate should be rejected")
	}
}

func TestNewCopiesInput(t *testing.T) {
	preds := []Predicate{Eq(1, 1), Eq(2, 2)}
	x := MustNew(1, preds...)
	preds[0] = Eq(9, 9)
	if x.Preds[0].Attr == 9 || x.Preds[1].Attr == 9 {
		t.Fatal("expression aliases caller slice")
	}
}

func TestMatchesEvent(t *testing.T) {
	x := MustNew(1, Eq(1, 5), Rng(3, 10, 20), Ne(7, 0))
	cases := []struct {
		ev   *Event
		want bool
	}{
		{MustEvent(Pair{1, 5}, Pair{3, 15}, Pair{7, 2}), true},
		{MustEvent(Pair{1, 5}, Pair{3, 15}, Pair{7, 0}), false},            // NE fails
		{MustEvent(Pair{1, 5}, Pair{3, 15}), false},                        // attr 7 missing
		{MustEvent(Pair{1, 4}, Pair{3, 15}, Pair{7, 2}), false},            // EQ fails
		{MustEvent(Pair{1, 5}, Pair{3, 25}, Pair{7, 2}), false},            // range fails
		{MustEvent(Pair{1, 5}, Pair{3, 15}, Pair{7, 2}, Pair{9, 9}), true}, // extra attrs fine
	}
	for i, c := range cases {
		if got := x.MatchesEvent(c.ev); got != c.want {
			t.Errorf("case %d: MatchesEvent(%s) = %v, want %v", i, c.ev, got, c.want)
		}
	}
}

func TestMultiplePredicatesSameAttr(t *testing.T) {
	x := MustNew(1, Gt(1, 5), Lt(1, 10))
	if !x.MatchesEvent(MustEvent(Pair{1, 7})) {
		t.Error("7 should satisfy 5<x<10")
	}
	if x.MatchesEvent(MustEvent(Pair{1, 5})) || x.MatchesEvent(MustEvent(Pair{1, 10})) {
		t.Error("bounds should be exclusive")
	}
}

func TestAttrs(t *testing.T) {
	x := MustNew(1, Gt(3, 5), Lt(3, 10), Eq(1, 1), Eq(8, 2))
	attrs := x.Attrs()
	want := []AttrID{1, 3, 8}
	if len(attrs) != len(want) {
		t.Fatalf("Attrs = %v, want %v", attrs, want)
	}
	for i := range want {
		if attrs[i] != want[i] {
			t.Fatalf("Attrs = %v, want %v", attrs, want)
		}
	}
}

func TestEventInvariants(t *testing.T) {
	if _, err := NewEvent(Pair{1, 1}, Pair{1, 2}); err == nil {
		t.Error("duplicate attribute should be rejected")
	}
	e := MustEvent(Pair{5, 50}, Pair{1, 10}, Pair{3, 30})
	pairs := e.Pairs()
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Attr <= pairs[i-1].Attr {
			t.Fatal("pairs not sorted")
		}
	}
	if v, ok := e.Lookup(3); !ok || v != 30 {
		t.Errorf("Lookup(3) = %d,%v", v, ok)
	}
	if _, ok := e.Lookup(2); ok {
		t.Error("Lookup(2) should miss")
	}
	if _, ok := e.Lookup(99); ok {
		t.Error("Lookup(99) should miss")
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestEventEqual(t *testing.T) {
	a := MustEvent(P(1, 5), P(2, 7))
	b := MustEvent(P(2, 7), P(1, 5)) // same content, different input order
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equal events reported unequal")
	}
	cases := []*Event{
		MustEvent(P(1, 5)),                   // shorter
		MustEvent(P(1, 5), P(2, 8)),          // value differs
		MustEvent(P(1, 5), P(3, 7)),          // attribute differs
		MustEvent(P(1, 5), P(2, 7), P(3, 0)), // longer
	}
	for i, c := range cases {
		if a.Equal(c) {
			t.Fatalf("case %d: unequal events reported equal", i)
		}
	}
}

func TestEmptyEventAllowed(t *testing.T) {
	e, err := NewEvent()
	if err != nil {
		t.Fatal(err)
	}
	x := MustNew(1, Eq(1, 1))
	if x.MatchesEvent(e) {
		t.Error("no expression should match the empty event")
	}
}

func TestStrings(t *testing.T) {
	x := MustNew(1, Eq(1, 5), Rng(2, 1, 9), Any(3, 4, 2))
	got := x.String()
	want := "a1 = 5 and a2 between 1 9 and a3 in {2, 4}"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	e := MustEvent(Pair{1, 5}, Pair{2, -3})
	if e.String() != "a1=5, a2=-3" {
		t.Errorf("event String = %q", e.String())
	}
}

// randomPredicate builds an arbitrary valid predicate over attrs [0,nAttr)
// and values [0,card).
func randomPredicate(rng *rand.Rand, nAttr, card int) Predicate {
	attr := AttrID(rng.Intn(nAttr))
	v := func() Value { return Value(rng.Intn(card)) }
	switch rng.Intn(9) {
	case 0:
		return Eq(attr, v())
	case 1:
		return Ne(attr, v())
	case 2:
		return Lt(attr, Value(rng.Intn(card-1)+1))
	case 3:
		return Le(attr, v())
	case 4:
		return Gt(attr, Value(rng.Intn(card-1)))
	case 5:
		return Ge(attr, v())
	case 6:
		a, b := v(), v()
		if a > b {
			a, b = b, a
		}
		return Rng(attr, a, b)
	case 7:
		n := rng.Intn(5) + 1
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = v()
		}
		return Any(attr, vs...)
	default:
		n := rng.Intn(5) + 1
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = v()
		}
		return None(attr, vs...)
	}
}

// RandomExpression and RandomEvent are exported to sibling test packages
// via export_test-style helpers in workload; here they validate the model.
func TestPropRandomPredicatesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			p := randomPredicate(rng, 10, 50)
			if p.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatchesEventConsistentWithLookup(t *testing.T) {
	// An expression matches iff every predicate individually passes
	// against the event's values.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		preds := make([]Predicate, rng.Intn(5)+1)
		for i := range preds {
			preds[i] = randomPredicate(rng, 6, 20)
		}
		x, err := New(1, preds...)
		if err != nil {
			return false
		}
		var pairs []Pair
		for a := 0; a < 6; a++ {
			if rng.Intn(3) > 0 {
				pairs = append(pairs, Pair{AttrID(a), Value(rng.Intn(20))})
			}
		}
		ev, err := NewEvent(pairs...)
		if err != nil {
			return false
		}
		want := true
		for i := range x.Preds {
			v, ok := ev.Lookup(x.Preds[i].Attr)
			if !ok || !x.Preds[i].Matches(v) {
				want = false
				break
			}
		}
		return x.MatchesEvent(ev) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
