package expr

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPredicateJSONRoundTrip(t *testing.T) {
	preds := []Predicate{
		Eq(1, 5), Ne(2, -3), Lt(3, 0), Le(4, 9), Gt(5, 9), Ge(6, 9),
		Rng(7, -5, 5), Any(8, 3, 1, 2), None(9, 7),
	}
	for _, p := range preds {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("%s: %v", p.String(), err)
		}
		var back Predicate
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v (json: %s)", p.String(), err, data)
		}
		if !back.Equal(&p) {
			t.Fatalf("round trip %s -> %s via %s", p.String(), back.String(), data)
		}
	}
}

func TestPredicateJSONShape(t *testing.T) {
	data, err := json.Marshal(Le(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["attr"] != float64(3) || m["op"] != "<=" || m["value"] != float64(5) {
		t.Fatalf("unexpected JSON shape: %s", data)
	}
	if _, ok := m["set"]; ok {
		t.Fatalf("interval predicate should omit set: %s", data)
	}
}

func TestPredicateJSONErrors(t *testing.T) {
	bad := []string{
		`{"attr":1}`,                              // no op
		`{"attr":1,"op":"~"}`,                     // unknown op
		`{"attr":1,"op":"="}`,                     // missing value
		`{"attr":1,"op":"between","lo":1}`,        // missing hi
		`{"attr":1,"op":"between","lo":9,"hi":1}`, // empty interval
		`{"attr":1,"op":"in"}`,                    // missing set
		`{"attr":1,"op":"in","set":[]}`,           // empty set
		`[1,2]`,                                   // wrong shape
	}
	for _, s := range bad {
		var p Predicate
		if err := json.Unmarshal([]byte(s), &p); err == nil {
			t.Errorf("accepted %s as %s", s, p.String())
		}
	}
}

func TestPredicateJSONNormalizesSet(t *testing.T) {
	var p Predicate
	if err := json.Unmarshal([]byte(`{"attr":1,"op":"in","set":[5,2,5,1]}`), &p); err != nil {
		t.Fatal(err)
	}
	want := Any(1, 1, 2, 5)
	if !p.Equal(&want) {
		t.Fatalf("set not normalized: %s", p.String())
	}
}

func TestExpressionJSONRoundTrip(t *testing.T) {
	x := MustNew(42, Eq(3, 1), Rng(1, 2, 9), None(2, 7))
	data, err := json.Marshal(x)
	if err != nil {
		t.Fatal(err)
	}
	var back Expression
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != 42 || len(back.Preds) != 3 {
		t.Fatalf("round trip lost structure: %s", &back)
	}
	// Predicates must come back sorted regardless of JSON order.
	for i := 1; i < len(back.Preds); i++ {
		if back.Preds[i].Attr < back.Preds[i-1].Attr {
			t.Fatal("unmarshalled predicates not sorted")
		}
	}
	if _, err := json.Marshal(&back); err != nil {
		t.Fatal(err)
	}
}

func TestExpressionJSONRejectsEmpty(t *testing.T) {
	var x Expression
	if err := json.Unmarshal([]byte(`{"id":1,"preds":[]}`), &x); err == nil {
		t.Fatal("empty expression accepted")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	e := MustEvent(P(3, -1), P(1, 5))
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != e.String() {
		t.Fatalf("round trip %s -> %s", e, &back)
	}
}

func TestEventJSONRejectsDuplicates(t *testing.T) {
	var e Event
	s := `{"pairs":[{"attr":1,"val":2},{"attr":1,"val":3}]}`
	if err := json.Unmarshal([]byte(s), &e); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
}

func TestPropJSONPreservesMatching(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		preds := make([]Predicate, rng.Intn(4)+1)
		for i := range preds {
			preds[i] = randomPredicate(rng, 8, 30)
		}
		x, err := New(1, preds...)
		if err != nil {
			return false
		}
		data, err := json.Marshal(x)
		if err != nil {
			return false
		}
		var back Expression
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			var pairs []Pair
			for a := 0; a < 8; a++ {
				if rng.Intn(2) == 0 {
					pairs = append(pairs, P(AttrID(a), Value(rng.Intn(30))))
				}
			}
			ev, err := NewEvent(pairs...)
			if err != nil {
				return false
			}
			if x.MatchesEvent(ev) != back.MatchesEvent(ev) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
