package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomExpression builds an arbitrary valid expression for the slab
// differential suites.
func randomExpression(rng *rand.Rand, id ID) *Expression {
	n := rng.Intn(6) + 1
	preds := make([]Predicate, n)
	for i := range preds {
		preds[i] = randomPredicate(rng, 12, 60)
	}
	return MustNew(id, preds...)
}

func sameExpression(t *testing.T, want, got *Expression) {
	t.Helper()
	if got.ID != want.ID || len(got.Preds) != len(want.Preds) {
		t.Fatalf("expression mismatch: %s vs %s", want, got)
	}
	for i := range want.Preds {
		if !got.Preds[i].Equal(&want.Preds[i]) {
			t.Fatalf("predicate %d mismatch: %s vs %s",
				i, want.Preds[i].String(), got.Preds[i].String())
		}
	}
}

// TestSlabDecoderDifferential: SlabDecoder.Decode must agree with
// DecodeExpression — same expression, same consumed length — on every
// valid encoding; only the storage discipline may differ.
func TestSlabDecoderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var dec SlabDecoder
	for i := 0; i < 5000; i++ {
		x := randomExpression(rng, ID(i+1))
		buf := AppendExpression(nil, x)
		want, wn, werr := DecodeExpression(buf)
		if werr != nil {
			t.Fatal(werr)
		}
		got, gn, gerr := dec.Decode(buf)
		if gerr != nil {
			t.Fatalf("slab decode of %s: %v", x, gerr)
		}
		if gn != wn {
			t.Fatalf("slab decode consumed %d bytes, DecodeExpression %d", gn, wn)
		}
		sameExpression(t, want, got)
	}
}

// TestSlabDecoderTruncated: every strict prefix of a valid encoding
// must fail (or truncate the predicate list into an invalid state) in
// both decoders identically — same error-ness and, on success paths,
// the same consumed length. This pins the slab decoder's bounds checks
// to the reference implementation's.
func TestSlabDecoderTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var dec SlabDecoder
	for i := 0; i < 300; i++ {
		x := randomExpression(rng, ID(i+1))
		full := AppendExpression(nil, x)
		for cut := 0; cut < len(full); cut++ {
			_, _, werr := DecodeExpression(full[:cut])
			_, _, gerr := dec.Decode(full[:cut])
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("cut %d of %d: DecodeExpression err=%v, slab err=%v",
					cut, len(full), werr, gerr)
			}
		}
	}
}

// TestSlabDecoderStability: slab blocks are append-only and never
// reallocated, so every expression the decoder has ever returned stays
// intact as later records decode. A regression here means a block grew
// in place and stale pointers now alias fresh data.
func TestSlabDecoderStability(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var dec SlabDecoder
	type pair struct {
		live *Expression
		snap *Expression // deep copy taken at decode time
	}
	var all []pair
	for i := 0; i < 20000; i++ {
		x := randomExpression(rng, ID(i+1))
		got, _, err := dec.Decode(AppendExpression(nil, x))
		if err != nil {
			t.Fatal(err)
		}
		preds := make([]Predicate, len(got.Preds))
		copy(preds, got.Preds)
		for j := range preds {
			if preds[j].Set != nil {
				preds[j].Set = append([]Value(nil), preds[j].Set...)
			}
		}
		all = append(all, pair{live: got, snap: &Expression{ID: got.ID, Preds: preds}})
	}
	for _, p := range all {
		sameExpression(t, p.snap, p.live)
	}
}

// TestSlabDecoderErrorRollback: a record that fails mid-decode must not
// leak partial predicates into the slabs — the next successful decode
// sees a clean state.
func TestSlabDecoderErrorRollback(t *testing.T) {
	var dec SlabDecoder
	good := MustNew(1, Eq(1, 5), Any(2, 1, 9, 17))
	bad := AppendExpression(nil, MustNew(2, Eq(1, 5), Rng(3, -4, 4)))
	for cut := 3; cut < len(bad); cut++ {
		if _, _, err := dec.Decode(bad[:cut]); err == nil {
			continue
		}
		got, _, err := dec.Decode(AppendExpression(nil, good))
		if err != nil {
			t.Fatalf("decode after failed record (cut %d): %v", cut, err)
		}
		sameExpression(t, good, got)
	}
}

func TestPropSlabDecoderQuick(t *testing.T) {
	var dec SlabDecoder
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			x := randomExpression(rng, ID(rng.Intn(1<<30)+1))
			buf := AppendExpression(nil, x)
			want, wn, werr := DecodeExpression(buf)
			got, gn, gerr := dec.Decode(buf)
			if werr != nil || gerr != nil || wn != gn {
				return false
			}
			if got.ID != want.ID || len(got.Preds) != len(want.Preds) {
				return false
			}
			for j := range want.Preds {
				if !got.Preds[j].Equal(&want.Preds[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
