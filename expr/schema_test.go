package expr

import (
	"sync"
	"testing"
)

func TestSchemaInterning(t *testing.T) {
	s := NewSchema()
	a := s.Attr("price")
	b := s.Attr("brand")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if got := s.Attr("price"); got != a {
		t.Fatal("re-interning changed the id")
	}
	if n, ok := s.Name(a); !ok || n != "price" {
		t.Fatalf("Name(%d) = %q,%v", a, n, ok)
	}
	if _, ok := s.Name(99); ok {
		t.Fatal("unknown id resolved")
	}
	if id, ok := s.Lookup("brand"); !ok || id != b {
		t.Fatal("Lookup failed")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup invented an attribute")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSchemaCardinality(t *testing.T) {
	s := NewSchema()
	id := s.DeclareAttr("color", 16)
	if s.Cardinality(id) != 16 {
		t.Fatalf("Cardinality = %d", s.Cardinality(id))
	}
	other := s.Attr("size")
	if s.Cardinality(other) != 0 {
		t.Fatal("undeclared cardinality should be 0")
	}
	if s.Cardinality(1000) != 0 {
		t.Fatal("out-of-range cardinality should be 0")
	}
}

func TestSchemaMustName(t *testing.T) {
	s := NewSchema()
	id := s.Attr("x")
	if s.MustName(id) != "x" {
		t.Fatal("MustName lost the name")
	}
	if s.MustName(42) != "a42" {
		t.Fatalf("MustName fallback = %q", s.MustName(42))
	}
}

func TestSchemaValueInterning(t *testing.T) {
	s := NewSchema()
	color := s.Attr("color")
	size := s.Attr("size")

	red := s.ValueOf(color, "red")
	blue := s.ValueOf(color, "blue")
	if red == blue {
		t.Fatal("distinct values share an id")
	}
	if got := s.ValueOf(color, "red"); got != red {
		t.Fatal("re-interning changed the value")
	}
	// Dictionaries are per attribute.
	if s.ValueOf(size, "red") != 0 {
		t.Fatal("per-attribute dictionaries should start at 0")
	}
	if n, ok := s.ValueName(color, red); !ok || n != "red" {
		t.Fatalf("ValueName = %q,%v", n, ok)
	}
	if _, ok := s.ValueName(color, 99); ok {
		t.Fatal("unknown value resolved")
	}
	if _, ok := s.ValueName(42, 0); ok {
		t.Fatal("unknown attribute resolved")
	}
	if v, ok := s.LookupValue(color, "blue"); !ok || v != blue {
		t.Fatal("LookupValue failed")
	}
	if _, ok := s.LookupValue(color, "green"); ok {
		t.Fatal("LookupValue invented a value")
	}
	// End to end: matching over interned categorical values.
	x := MustNew(1, Eq(color, red))
	if !x.MatchesEvent(MustEvent(P(color, s.ValueOf(color, "red")))) {
		t.Fatal("interned value did not match")
	}
	if x.MatchesEvent(MustEvent(P(color, blue))) {
		t.Fatal("different interned value matched")
	}
}

func TestSchemaValueInterningConcurrent(t *testing.T) {
	s := NewSchema()
	attr := s.Attr("x")
	var wg sync.WaitGroup
	vals := make([][]Value, 8)
	names := []string{"a", "b", "c", "d"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals[g] = make([]Value, len(names))
			for i, n := range names {
				vals[g][i] = s.ValueOf(attr, n)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range names {
			if vals[g][i] != vals[0][i] {
				t.Fatalf("goroutine %d interned %q differently", g, names[i])
			}
		}
	}
}

func TestSchemaConcurrent(t *testing.T) {
	s := NewSchema()
	var wg sync.WaitGroup
	names := []string{"a", "b", "c", "d", "e"}
	ids := make([][]AttrID, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]AttrID, len(names))
			for i, n := range names {
				ids[g][i] = s.Attr(n)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range names {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got different id for %q", g, names[i])
			}
		}
	}
	if s.Len() != len(names) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(names))
	}
}
