package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Pair is one attribute assignment inside an event.
type Pair struct {
	Attr AttrID
	Val  Value
}

// P is shorthand for Pair{Attr: a, Val: v}, convenient in literals.
func P(a AttrID, v Value) Pair { return Pair{Attr: a, Val: v} }

// Event assigns values to a set of attributes. Pairs are sorted by
// attribute and unique; use NewEvent to establish that invariant.
// Events are immutable after construction and safe for concurrent reads.
type Event struct {
	pairs []Pair
}

// NewEvent builds an event from attribute assignments. The slice is
// copied and sorted; a duplicate attribute is an error.
func NewEvent(pairs ...Pair) (*Event, error) {
	ps := make([]Pair, len(pairs))
	copy(ps, pairs)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Attr < ps[j].Attr })
	for i := 1; i < len(ps); i++ {
		if ps[i].Attr == ps[i-1].Attr {
			return nil, fmt.Errorf("expr: duplicate attribute %d in event", ps[i].Attr)
		}
	}
	return &Event{pairs: ps}, nil
}

// MustEvent is NewEvent for tests and literals; it panics on invalid input.
func MustEvent(pairs ...Pair) *Event {
	e, err := NewEvent(pairs...)
	if err != nil {
		panic(err)
	}
	return e
}

// Lookup returns the value assigned to attribute a, if any.
func (e *Event) Lookup(a AttrID) (Value, bool) {
	ps := e.pairs
	// Events are short (tens of attributes); branchless-ish linear scan is
	// faster than sort.Search and the common miss exits early because the
	// slice is sorted.
	for i := range ps {
		if ps[i].Attr >= a {
			if ps[i].Attr == a {
				return ps[i].Val, true
			}
			return 0, false
		}
	}
	return 0, false
}

// Pairs returns the sorted attribute assignments. Callers must treat the
// slice as read-only.
func (e *Event) Pairs() []Pair { return e.pairs }

// Len returns the number of attributes the event assigns.
func (e *Event) Len() int { return len(e.pairs) }

// Equal reports whether e and other assign exactly the same values to
// the same attributes.
func (e *Event) Equal(other *Event) bool {
	if len(e.pairs) != len(other.pairs) {
		return false
	}
	for i, p := range e.pairs {
		if other.pairs[i] != p {
			return false
		}
	}
	return true
}

// String renders the event as "a1=5, a7=2" with numeric attribute ids.
func (e *Event) String() string { return e.Format(nil) }

// Format renders the event, resolving attribute names through s when
// non-nil.
func (e *Event) Format(s *Schema) string {
	parts := make([]string, len(e.pairs))
	for i, p := range e.pairs {
		name := fmt.Sprintf("a%d", p.Attr)
		if s != nil {
			if n, ok := s.Name(p.Attr); ok {
				name = n
			}
		}
		parts[i] = fmt.Sprintf("%s=%d", name, p.Val)
	}
	return strings.Join(parts, ", ")
}
