package expr

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SlabDecoder decodes expressions destined for a long-lived index with
// slab allocation: expression structs, predicate arrays and set values
// are carved out of large shared blocks instead of being allocated per
// record. A bulk restore decodes millions of records whose storage is
// all retained by the index, so the per-record make calls of
// DecodeExpression — one *Expression, one []Predicate, one []Value per
// set predicate — dominate both allocation count and subsequent GC scan
// work; slab blocks collapse them to a handful of allocations per
// thousands of records.
//
// Blocks are append-only and never reallocated: once a block cannot fit
// the next expression a fresh one is started and the old block stays
// referenced by the expressions already built on it. Decoded
// expressions are therefore valid forever, exactly as if they had been
// built by New.
//
// A SlabDecoder is not safe for concurrent use; pipelined loaders give
// each decode worker its own.
type SlabDecoder struct {
	exprs []Expression
	preds []Predicate
	vals  []Value
}

// Slab block sizes, in elements. Oversized records get a private block.
const (
	slabExprBlock = 4096
	slabPredBlock = 1 << 14
	slabValBlock  = 1 << 13
)

// Decode decodes one expression from b, returning it and the number of
// bytes consumed. It is the slab twin of DecodeExpression: the result
// is validated and attribute-sorted identically, only the storage
// discipline differs.
func (d *SlabDecoder) Decode(b []byte) (*Expression, int, error) {
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("expr: truncated expression id")
	}
	off := n
	cnt, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("expr: truncated predicate count")
	}
	off += n
	if cnt == 0 {
		return nil, 0, fmt.Errorf("expr: expression %d has no predicates", id)
	}
	if cnt > uint64(len(b)) {
		return nil, 0, fmt.Errorf("expr: predicate count %d exceeds input", cnt)
	}
	if len(d.preds)+int(cnt) > cap(d.preds) {
		blk := slabPredBlock
		if int(cnt) > blk {
			blk = int(cnt)
		}
		d.preds = make([]Predicate, 0, blk)
	}
	start := len(d.preds)
	sorted := true
	for i := 0; i < int(cnt); i++ {
		p, n, err := d.decodePredicate(b[off:])
		if err != nil {
			d.preds = d.preds[:start]
			return nil, 0, fmt.Errorf("expression %d predicate %d: %w", id, i, err)
		}
		if err := p.Validate(); err != nil {
			d.preds = d.preds[:start]
			return nil, 0, fmt.Errorf("expression %d: %w", id, err)
		}
		if i > 0 && p.Attr < d.preds[len(d.preds)-1].Attr {
			sorted = false
		}
		d.preds = append(d.preds, p)
		off += n
	}
	ps := d.preds[start:len(d.preds):len(d.preds)]
	if !sorted {
		// Traces written by this repository store predicates
		// attribute-sorted (New sorts); restore the invariant for
		// foreign encoders.
		sort.SliceStable(ps, func(i, j int) bool { return ps[i].Attr < ps[j].Attr })
	}
	if len(d.exprs) == cap(d.exprs) {
		d.exprs = make([]Expression, 0, slabExprBlock)
	}
	d.exprs = append(d.exprs, Expression{ID: ID(id), Preds: ps})
	return &d.exprs[len(d.exprs)-1], off, nil
}

// decodePredicate is DecodePredicate with In/NotIn sets carved from the
// value slab instead of allocated per predicate.
func (d *SlabDecoder) decodePredicate(b []byte) (Predicate, int, error) {
	var p Predicate
	attr, n := binary.Uvarint(b)
	if n <= 0 {
		return p, 0, fmt.Errorf("expr: truncated predicate attribute")
	}
	off := n
	if off >= len(b) {
		return p, 0, fmt.Errorf("expr: truncated predicate operator")
	}
	p.Attr = AttrID(attr)
	p.Op = Op(b[off])
	off++
	if !p.Op.Valid() {
		return p, 0, fmt.Errorf("expr: invalid operator byte %d", b[off-1])
	}
	switch p.Op {
	case Between:
		lo, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return p, 0, fmt.Errorf("expr: truncated interval low bound")
		}
		off += n
		hi, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return p, 0, fmt.Errorf("expr: truncated interval high bound")
		}
		off += n
		p.Lo, p.Hi = unzigzag(lo), unzigzag(hi)
	case In, NotIn:
		cnt, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return p, 0, fmt.Errorf("expr: truncated set length")
		}
		off += n
		if cnt > uint64(len(b)) {
			return p, 0, fmt.Errorf("expr: set length %d exceeds input", cnt)
		}
		if len(d.vals)+int(cnt) > cap(d.vals) {
			blk := slabValBlock
			if int(cnt) > blk {
				blk = int(cnt)
			}
			d.vals = make([]Value, 0, blk)
		}
		vstart := len(d.vals)
		prev := Value(0)
		for i := 0; i < int(cnt); i++ {
			u, n := binary.Uvarint(b[off:])
			if n <= 0 {
				d.vals = d.vals[:vstart]
				return p, 0, fmt.Errorf("expr: truncated set element %d", i)
			}
			off += n
			prev += unzigzag(u)
			d.vals = append(d.vals, prev)
		}
		p.Set = d.vals[vstart:len(d.vals):len(d.vals)]
	default:
		lo, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return p, 0, fmt.Errorf("expr: truncated operand")
		}
		off += n
		p.Lo = unzigzag(lo)
		if p.Op == EQ || p.Op == NE {
			p.Hi = p.Lo
		}
	}
	return p, off, nil
}
