package expr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPredicateRoundTrip(t *testing.T) {
	preds := []Predicate{
		Eq(0, 0),
		Eq(1, 5),
		Ne(100000, -7),
		Lt(3, MinValue+1),
		Le(3, MaxValue),
		Gt(3, MinValue),
		Ge(3, -1),
		Rng(9, -100, 100),
		Any(2, 1, 5, 1000, -3),
		None(4, 0),
	}
	for _, p := range preds {
		buf := AppendPredicate(nil, &p)
		got, n, err := DecodePredicate(buf)
		if err != nil {
			t.Fatalf("%s: decode error %v", p.String(), err)
		}
		if n != len(buf) {
			t.Fatalf("%s: consumed %d of %d bytes", p.String(), n, len(buf))
		}
		if !got.Equal(&p) {
			t.Fatalf("round trip %s -> %s", p.String(), got.String())
		}
	}
}

func TestExpressionRoundTrip(t *testing.T) {
	x := MustNew(1234567, Eq(1, 5), Rng(2, -9, 9), Any(70000, 3, 1, 4), Ne(5, 0))
	buf := AppendExpression(nil, x)
	got, n, err := DecodeExpression(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if got.ID != x.ID || len(got.Preds) != len(x.Preds) {
		t.Fatalf("round trip mismatch: %s vs %s", x, got)
	}
	for i := range x.Preds {
		if !got.Preds[i].Equal(&x.Preds[i]) {
			t.Fatalf("predicate %d mismatch: %s vs %s", i, x.Preds[i].String(), got.Preds[i].String())
		}
	}
}

func TestEventRoundTrip(t *testing.T) {
	e := MustEvent(Pair{0, -5}, Pair{3, 0}, Pair{70000, 12345})
	buf := AppendEvent(nil, e)
	got, n, err := DecodeEvent(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Len() != e.Len() {
		t.Fatalf("round trip mismatch: %s vs %s", e, got)
	}
	for i, p := range e.Pairs() {
		if got.Pairs()[i] != p {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	x := MustNew(1, Eq(1, 5), Any(2, 1, 2, 3))
	full := AppendExpression(nil, x)
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeExpression(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(full))
		}
	}
	e := MustEvent(Pair{1, 5}, Pair{9, -2})
	fullE := AppendEvent(nil, e)
	for cut := 0; cut < len(fullE); cut++ {
		if _, _, err := DecodeEvent(fullE[:cut]); err == nil {
			t.Fatalf("event truncation at %d/%d not detected", cut, len(fullE))
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // huge varint
		{1, 0},        // expression id=1, zero predicates
		{1, 1, 1, 99}, // invalid op byte
	}
	for i, in := range inputs {
		if _, _, err := DecodeExpression(in); err == nil {
			t.Errorf("input %d: expected decode error", i)
		}
	}
	// Event with non-monotonic (duplicate) attribute.
	bad := []byte{2, 1, 2, 0, 2} // n=2, attr delta 1, val, attr delta 0 (dup), val
	if _, _, err := DecodeEvent(bad); err == nil {
		t.Error("duplicate attribute in encoded event not detected")
	}
}

func TestKeyIdentity(t *testing.T) {
	a := Any(1, 2, 3)
	b := Any(1, 2, 3)
	c := Any(1, 2, 4)
	if a.Key() != b.Key() {
		t.Error("equal predicates should share a key")
	}
	if a.Key() == c.Key() {
		t.Error("different predicates should not share a key")
	}
	// EQ vs Between covering the same point are physically distinct.
	eq := Eq(1, 5)
	bw := Rng(1, 5, 5)
	if eq.Key() == bw.Key() {
		t.Error("EQ and Between are different physical predicates")
	}
}

func TestPropExpressionRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		preds := make([]Predicate, rng.Intn(8)+1)
		for i := range preds {
			preds[i] = randomPredicate(rng, 50, 1000)
		}
		x, err := New(ID(rng.Uint64()), preds...)
		if err != nil {
			return false
		}
		buf := AppendExpression(nil, x)
		got, n, err := DecodeExpression(buf)
		if err != nil || n != len(buf) || got.ID != x.ID || len(got.Preds) != len(x.Preds) {
			return false
		}
		for i := range x.Preds {
			if !got.Preds[i].Equal(&x.Preds[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropEventRoundTripPreservesMatching(t *testing.T) {
	// Encoding must not change matching behaviour.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pairs []Pair
		for a := 0; a < 8; a++ {
			if rng.Intn(2) == 0 {
				pairs = append(pairs, Pair{AttrID(a), Value(rng.Intn(41) - 20)})
			}
		}
		if len(pairs) == 0 {
			pairs = append(pairs, Pair{0, 0})
		}
		ev := MustEvent(pairs...)
		buf := AppendEvent(nil, ev)
		got, _, err := DecodeEvent(buf)
		if err != nil {
			return false
		}
		preds := make([]Predicate, rng.Intn(4)+1)
		for i := range preds {
			preds[i] = randomPredicate(rng, 8, 40)
		}
		x, err := New(1, preds...)
		if err != nil {
			return false
		}
		return x.MatchesEvent(ev) == x.MatchesEvent(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendGrowsDst(t *testing.T) {
	x := MustNew(1, Eq(1, 5))
	prefix := []byte{0xAA, 0xBB}
	buf := AppendExpression(prefix, x)
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatal("Append should preserve existing dst contents")
	}
	got, _, err := DecodeExpression(buf[2:])
	if err != nil || got.ID != 1 {
		t.Fatalf("decode after prefix: %v", err)
	}
}
