// Package expr defines the Boolean-expression data model used throughout
// the matcher: predicates over a high-dimensional discrete attribute
// space, conjunctive expressions (subscriptions), and events.
//
// The model follows the BE-Tree line of work: attributes are dense
// integer ids, values are drawn from finite discrete domains, an
// expression is a conjunction of predicates, and an event assigns values
// to a subset of attributes. A predicate over an attribute that the event
// does not carry is unsatisfied, so an expression only matches events
// that cover all of its attributes.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// AttrID identifies an attribute (a dimension of the discrete space).
type AttrID uint32

// Value is an attribute value. Domains are finite subranges of int32.
type Value int32

// MinValue and MaxValue bound the representable domain.
const (
	MinValue Value = math.MinInt32
	MaxValue Value = math.MaxInt32
)

// ID identifies an expression (a subscription disjunct).
type ID uint64

// Op enumerates predicate operators.
type Op uint8

// Predicate operators. EQ..Between are indexable interval operators;
// In is an indexable set operator; NE and NotIn are non-indexable (they
// accept almost the whole domain) and are handled as verify-only residue
// by the index-based matchers.
const (
	EQ      Op = iota // attribute == Lo
	NE                // attribute != Lo
	LT                // attribute <  Lo
	LE                // attribute <= Lo
	GT                // attribute >  Lo
	GE                // attribute >= Lo
	Between           // Lo <= attribute <= Hi
	In                // attribute ∈ Set
	NotIn             // attribute ∉ Set
	opEnd
)

var opNames = [...]string{
	EQ: "=", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	Between: "between", In: "in", NotIn: "not in",
}

// String returns the operator's source-syntax spelling.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Valid reports whether o is a defined operator.
func (o Op) Valid() bool { return o < opEnd }

// Predicate constrains a single attribute. The operand layout depends on
// Op: interval operators use Lo (and Hi for Between); set operators use
// Set, which must be sorted ascending and duplicate-free.
//
// Construct predicates with the helper constructors (Eq, Lt, Any, ...)
// which establish those invariants, or call Validate after filling the
// fields directly.
type Predicate struct {
	Attr AttrID
	Op   Op
	Lo   Value
	Hi   Value
	Set  []Value
}

// Eq returns the predicate attr == v.
func Eq(attr AttrID, v Value) Predicate { return Predicate{Attr: attr, Op: EQ, Lo: v, Hi: v} }

// Ne returns the predicate attr != v.
func Ne(attr AttrID, v Value) Predicate { return Predicate{Attr: attr, Op: NE, Lo: v, Hi: v} }

// Lt returns the predicate attr < v.
func Lt(attr AttrID, v Value) Predicate { return Predicate{Attr: attr, Op: LT, Lo: v} }

// Le returns the predicate attr <= v.
func Le(attr AttrID, v Value) Predicate { return Predicate{Attr: attr, Op: LE, Lo: v} }

// Gt returns the predicate attr > v.
func Gt(attr AttrID, v Value) Predicate { return Predicate{Attr: attr, Op: GT, Lo: v} }

// Ge returns the predicate attr >= v.
func Ge(attr AttrID, v Value) Predicate { return Predicate{Attr: attr, Op: GE, Lo: v} }

// Rng returns the predicate lo <= attr <= hi.
func Rng(attr AttrID, lo, hi Value) Predicate {
	return Predicate{Attr: attr, Op: Between, Lo: lo, Hi: hi}
}

// Any returns the predicate attr ∈ vs. The argument is copied, sorted and
// de-duplicated.
func Any(attr AttrID, vs ...Value) Predicate {
	return Predicate{Attr: attr, Op: In, Set: normalizeSet(vs)}
}

// None returns the predicate attr ∉ vs. The argument is copied, sorted
// and de-duplicated.
func None(attr AttrID, vs ...Value) Predicate {
	return Predicate{Attr: attr, Op: NotIn, Set: normalizeSet(vs)}
}

func normalizeSet(vs []Value) []Value {
	out := make([]Value, len(vs))
	copy(out, vs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// De-duplicate in place.
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// Validate checks structural invariants: a defined operator, non-empty
// normalized sets for In/NotIn, and a non-empty interval for Between.
func (p *Predicate) Validate() error {
	if !p.Op.Valid() {
		return fmt.Errorf("expr: invalid operator %d on attribute %d", p.Op, p.Attr)
	}
	switch p.Op {
	case Between:
		if p.Lo > p.Hi {
			return fmt.Errorf("expr: empty interval [%d,%d] on attribute %d", p.Lo, p.Hi, p.Attr)
		}
	case In, NotIn:
		if len(p.Set) == 0 {
			return fmt.Errorf("expr: empty set for %s on attribute %d", p.Op, p.Attr)
		}
		for i := 1; i < len(p.Set); i++ {
			if p.Set[i] <= p.Set[i-1] {
				return fmt.Errorf("expr: set for %s on attribute %d not sorted/unique", p.Op, p.Attr)
			}
		}
	case LT:
		if p.Lo == MinValue {
			return fmt.Errorf("expr: attribute %d < MinValue is unsatisfiable", p.Attr)
		}
	case GT:
		if p.Lo == MaxValue {
			return fmt.Errorf("expr: attribute %d > MaxValue is unsatisfiable", p.Attr)
		}
	}
	return nil
}

// Matches reports whether value v satisfies the predicate.
func (p *Predicate) Matches(v Value) bool {
	switch p.Op {
	case EQ:
		return v == p.Lo
	case NE:
		return v != p.Lo
	case LT:
		return v < p.Lo
	case LE:
		return v <= p.Lo
	case GT:
		return v > p.Lo
	case GE:
		return v >= p.Lo
	case Between:
		return v >= p.Lo && v <= p.Hi
	case In:
		return setContains(p.Set, v)
	case NotIn:
		return !setContains(p.Set, v)
	default:
		return false
	}
}

func setContains(set []Value, v Value) bool {
	// Small sets dominate real workloads; linear scan beats binary search
	// below ~16 elements and stays correct above it via sort.Search.
	if len(set) <= 16 {
		for _, s := range set {
			if s == v {
				return true
			}
			if s > v {
				return false
			}
		}
		return false
	}
	i := sort.Search(len(set), func(i int) bool { return set[i] >= v })
	return i < len(set) && set[i] == v
}

// Indexable reports whether the predicate can drive index navigation.
// NE and NotIn accept nearly the whole domain, so indexes keep them as
// verify-only residue instead.
func (p *Predicate) Indexable() bool { return p.Op != NE && p.Op != NotIn }

// Span returns the smallest interval [lo,hi] containing every accepted
// value, which index clustering uses for placement. For non-indexable
// predicates it returns the full domain.
func (p *Predicate) Span() (lo, hi Value) {
	switch p.Op {
	case EQ:
		return p.Lo, p.Lo
	case LT:
		return MinValue, p.Lo - 1
	case LE:
		return MinValue, p.Lo
	case GT:
		return p.Lo + 1, MaxValue
	case GE:
		return p.Lo, MaxValue
	case Between:
		return p.Lo, p.Hi
	case In:
		return p.Set[0], p.Set[len(p.Set)-1]
	default: // NE, NotIn
		return MinValue, MaxValue
	}
}

// Equal reports whether p and q accept exactly the same (attr, value)
// pairs and use the same physical representation. It is the identity used
// by the compressed cluster's predicate dictionary.
func (p *Predicate) Equal(q *Predicate) bool {
	if p.Attr != q.Attr || p.Op != q.Op || p.Lo != q.Lo || p.Hi != q.Hi || len(p.Set) != len(q.Set) {
		return false
	}
	for i := range p.Set {
		if p.Set[i] != q.Set[i] {
			return false
		}
	}
	return true
}

// String renders the predicate with numeric attribute ids, e.g. "a3 <= 17".
func (p *Predicate) String() string { return p.Format(nil) }

// Format renders the predicate, resolving attribute names through s when
// non-nil.
func (p *Predicate) Format(s *Schema) string {
	name := fmt.Sprintf("a%d", p.Attr)
	if s != nil {
		if n, ok := s.Name(p.Attr); ok {
			name = n
		}
	}
	switch p.Op {
	case Between:
		return fmt.Sprintf("%s between %d %d", name, p.Lo, p.Hi)
	case In, NotIn:
		parts := make([]string, len(p.Set))
		for i, v := range p.Set {
			parts[i] = fmt.Sprintf("%d", v)
		}
		return fmt.Sprintf("%s %s {%s}", name, p.Op, strings.Join(parts, ", "))
	default:
		return fmt.Sprintf("%s %s %d", name, p.Op, p.Lo)
	}
}

// Expression is a conjunction of predicates with a unique id. Predicates
// are kept sorted by attribute (ties broken arbitrarily but stably);
// multiple predicates on the same attribute are permitted and all must
// hold.
type Expression struct {
	ID    ID
	Preds []Predicate
}

// New builds a validated expression. The predicate slice is copied and
// sorted by attribute.
func New(id ID, preds ...Predicate) (*Expression, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("expr: expression %d has no predicates", id)
	}
	ps := make([]Predicate, len(preds))
	copy(ps, preds)
	for i := range ps {
		if err := ps[i].Validate(); err != nil {
			return nil, fmt.Errorf("expression %d: %w", id, err)
		}
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Attr < ps[j].Attr })
	return &Expression{ID: id, Preds: ps}, nil
}

// MustNew is New for tests and literals; it panics on invalid input.
func MustNew(id ID, preds ...Predicate) *Expression {
	x, err := New(id, preds...)
	if err != nil {
		panic(err)
	}
	return x
}

// MatchesEvent is the reference matching semantics: every predicate's
// attribute must be present in the event and satisfied by its value.
// All matchers in this repository must agree with this function.
func (x *Expression) MatchesEvent(e *Event) bool {
	for i := range x.Preds {
		p := &x.Preds[i]
		v, ok := e.Lookup(p.Attr)
		if !ok || !p.Matches(v) {
			return false
		}
	}
	return true
}

// Attrs returns the distinct attributes the expression constrains, in
// ascending order.
func (x *Expression) Attrs() []AttrID {
	out := make([]AttrID, 0, len(x.Preds))
	for i := range x.Preds {
		a := x.Preds[i].Attr
		if len(out) == 0 || out[len(out)-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// String renders the conjunction with numeric attribute ids.
func (x *Expression) String() string { return x.Format(nil) }

// Format renders the conjunction, resolving names through s when non-nil.
func (x *Expression) Format(s *Schema) string {
	parts := make([]string, len(x.Preds))
	for i := range x.Preds {
		parts[i] = x.Preds[i].Format(s)
	}
	return strings.Join(parts, " and ")
}
