package expr

// Subscription covering. In content-based pub/sub, subscription A
// "covers" B when every event matching B also matches A; brokers use
// covering to avoid indexing subsumed subscriptions and to prune
// forwarding tables. Covers implements a sound (never wrongly true),
// conservative test on top of the normalizer: both expressions are
// canonicalised, and each attribute's allowed value set is compared.

// enumerationLimit bounds how many interval values the subset test will
// enumerate against a finite set before giving the conservative answer.
const enumerationLimit = 64

// Covers reports whether a covers b: every event that matches b is
// guaranteed to match a. The test is sound but conservative — a false
// result does not prove non-coverage (e.g. very wide intervals against
// large IN sets are not enumerated).
func Covers(a, b *Expression) bool {
	na, aSat := a.Normalize()
	nb, bSat := b.Normalize()
	if !bSat {
		// b never matches anything, so it is vacuously covered.
		return true
	}
	if !aSat {
		return false
	}
	ca := constraintsOf(na)
	cb := constraintsOf(nb)
	// Every attribute a constrains must be at least as constrained in b.
	for attr, ac := range ca {
		bc, ok := cb[attr]
		if !ok {
			// b admits events lacking this attribute; a does not.
			return false
		}
		if !covers(ac, bc) {
			return false
		}
	}
	return true
}

// constraint is one attribute's allowed value set in canonical form:
// either an explicit finite set, or an interval minus exclusions.
type constraint struct {
	set      []Value // non-nil: allowed values, sorted
	lo, hi   Value   // used when set == nil
	excluded []Value // sorted; only when set == nil
}

// constraintsOf reads the canonical per-attribute constraints off a
// normalized expression (at most one positive predicate plus one
// exclusion predicate per attribute).
func constraintsOf(x *Expression) map[AttrID]constraint {
	out := make(map[AttrID]constraint)
	for i := 0; i < len(x.Preds); {
		attr := x.Preds[i].Attr
		j := i
		c := constraint{lo: MinValue, hi: MaxValue}
		for ; j < len(x.Preds) && x.Preds[j].Attr == attr; j++ {
			p := &x.Preds[j]
			switch p.Op {
			case EQ:
				c.lo, c.hi = p.Lo, p.Lo
			case Between:
				c.lo, c.hi = p.Lo, p.Hi
			case In:
				c.set = p.Set
			case NE:
				c.excluded = []Value{p.Lo}
			case NotIn:
				c.excluded = p.Set
			}
		}
		out[attr] = c
		i = j
	}
	return out
}

// allows reports whether the constraint admits v.
func (c constraint) allows(v Value) bool {
	if c.set != nil {
		return setContains(c.set, v)
	}
	return v >= c.lo && v <= c.hi && !setContains(c.excluded, v)
}

// covers reports whether every value allowed by b is allowed by a.
func covers(a, b constraint) bool {
	if b.set != nil {
		for _, v := range b.set {
			if !a.allows(v) {
				return false
			}
		}
		return true
	}
	// b is an interval minus exclusions.
	if a.set != nil {
		// Enumerate b only when it is small enough; otherwise answer
		// conservatively.
		width := int64(b.hi) - int64(b.lo) + 1
		if width > enumerationLimit {
			return false
		}
		for v := b.lo; ; v++ {
			if !setContains(b.excluded, v) && !setContains(a.set, v) {
				return false
			}
			if v == b.hi {
				break
			}
		}
		return true
	}
	// Interval vs interval: b's range must nest inside a's, and every
	// value a excludes must be unreachable in b.
	if b.lo < a.lo || b.hi > a.hi {
		return false
	}
	for _, v := range a.excluded {
		if v >= b.lo && v <= b.hi && !setContains(b.excluded, v) {
			return false
		}
	}
	return true
}
