// Go benchmarks, one per evaluation table/figure (E1–E19; DESIGN.md §4).
// Each benchmark is the testing.B twin of the corresponding experiment
// in cmd/apcm-bench: identical workloads at CI-friendly sizes, with
// events/s reported as a custom metric. Run the binary for the full
// tables; run these for quick regression tracking:
//
//	go test -bench=. -benchmem
package apcm_test

import (
	"bytes"
	"net"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/broker"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/osr"
	"github.com/streammatch/apcm/internal/stats"
	"github.com/streammatch/apcm/metrics"
	"github.com/streammatch/apcm/shard"
	"github.com/streammatch/apcm/trace"
	"github.com/streammatch/apcm/workload"
)

// benchParams is the canonical benchmark workload (DESIGN.md §4),
// scaled to benchmark-friendly sizes.
func benchParams() workload.Params {
	return workload.Default()
}

func benchWorkload(b *testing.B, p workload.Params, n, nev int) ([]*expr.Expression, []*expr.Event) {
	b.Helper()
	g, err := workload.New(p)
	if err != nil {
		b.Fatal(err)
	}
	return g.Expressions(n), g.Events(nev)
}

func benchEngine(b *testing.B, opts apcm.Options, xs []*expr.Expression) *apcm.Engine {
	b.Helper()
	e, err := apcm.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, x := range xs {
		if err := e.Subscribe(x); err != nil {
			b.Fatal(err)
		}
	}
	e.Prepare()
	b.Cleanup(e.Close)
	return e
}

// matchLoop drives b.N single-event matches and reports events/s.
func matchLoop(b *testing.B, e *apcm.Engine, events []*expr.Event) {
	b.Helper()
	var dst []expr.ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = e.MatchAppend(dst[:0], events[i%len(events)])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// ---- E1: headline throughput, all algorithms --------------------------

func BenchmarkE1HeadlineThroughput(b *testing.B) {
	xs, events := benchWorkload(b, benchParams(), 10000, 1000)
	for _, alg := range apcm.Algorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			matchLoop(b, benchEngine(b, apcm.Options{Algorithm: alg}, xs), events)
		})
	}
}

// ---- E1 A/B: PR3 layout vs legacy dense layout ------------------------

// BenchmarkE1AB interleaves the headline A-PCM workload under the PR3
// density-adaptive layout ("pr3": hybrid postings + flat equality
// tables + kill-ordered groups, the defaults) and with every lever
// switched off ("legacy"), which reproduces the pre-PR dense layout.
// The benchmark runner alternates sub-benchmarks, so -count=N yields an
// interleaved A/B sequence on one binary.
func BenchmarkE1AB(b *testing.B) {
	xs, events := benchWorkload(b, benchParams(), 10000, 1000)
	for _, v := range []struct {
		name string
		opts apcm.Options
	}{
		{"legacy", apcm.Options{
			DisableHybridPostings: true,
			DisableFlatEq:         true,
			DisableGroupOrdering:  true,
		}},
		{"pr3", apcm.Options{}},
	} {
		b.Run(v.name, func(b *testing.B) {
			matchLoop(b, benchEngine(b, v.opts, xs), events)
		})
	}
}

// ---- E2: subscription scaling ------------------------------------------

func BenchmarkE2SubscriptionScaling(b *testing.B) {
	for _, n := range []int{1000, 5000, 20000} {
		xs, events := benchWorkload(b, benchParams(), n, 1000)
		for _, alg := range []apcm.Algorithm{apcm.BETree, apcm.APCM} {
			b.Run(alg.String()+"/n="+itoa(n), func(b *testing.B) {
				matchLoop(b, benchEngine(b, apcm.Options{Algorithm: alg}, xs), events)
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---- E3: predicates per expression --------------------------------------

func BenchmarkE3PredicateCount(b *testing.B) {
	for _, k := range []int{3, 7, 12} {
		p := benchParams()
		p.PredsMin, p.PredsMax = k, k
		if p.EventAttrs < k+3 {
			p.EventAttrs = k + 3
		}
		xs, events := benchWorkload(b, p, 5000, 1000)
		b.Run("preds="+itoa(k), func(b *testing.B) {
			matchLoop(b, benchEngine(b, apcm.Options{}, xs), events)
		})
	}
}

// ---- E4: dimensionality --------------------------------------------------

func BenchmarkE4Dimensionality(b *testing.B) {
	for _, d := range []int{50, 200, 800} {
		p := benchParams()
		p.NumAttrs = d
		xs, events := benchWorkload(b, p, 5000, 1000)
		b.Run("attrs="+itoa(d), func(b *testing.B) {
			matchLoop(b, benchEngine(b, apcm.Options{}, xs), events)
		})
	}
}

// ---- E5: match probability ----------------------------------------------

func BenchmarkE5MatchProbability(b *testing.B) {
	for _, mf := range []int{0, 5, 25} { // percent
		p := benchParams()
		p.MatchFraction = float64(mf) / 100
		xs, events := benchWorkload(b, p, 5000, 1000)
		b.Run("match="+itoa(mf)+"pct", func(b *testing.B) {
			matchLoop(b, benchEngine(b, apcm.Options{}, xs), events)
		})
	}
}

// ---- E6: parallel scaling -------------------------------------------------

func BenchmarkE6ParallelScaling(b *testing.B) {
	xs, events := benchWorkload(b, benchParams(), 10000, 1000)
	for _, w := range []int{1, 2, 4} {
		b.Run("workers="+itoa(w), func(b *testing.B) {
			e := benchEngine(b, apcm.Options{Workers: w}, xs)
			const batch = 64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i * batch) % len(events)
				end := off + batch
				if end > len(events) {
					end = len(events)
				}
				e.MatchBatch(events[off:end])
			}
			b.StopTimer()
			processed := float64(b.N) * batch
			b.ReportMetric(processed/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// ---- E7: adaptivity across redundancy --------------------------------------

func BenchmarkE7Adaptivity(b *testing.B) {
	for _, v := range []struct {
		name string
		pool int
		card int
	}{
		{"redundant", 4, 1000},
		{"heterogeneous", 0, 100000},
	} {
		p := benchParams()
		p.PredPoolSize = v.pool
		p.Cardinality = v.card
		xs, events := benchWorkload(b, p, 8000, 1000)
		for _, alg := range []apcm.Algorithm{apcm.PCM, apcm.APCM} {
			b.Run(v.name+"/"+alg.String(), func(b *testing.B) {
				matchLoop(b, benchEngine(b, apcm.Options{Algorithm: alg}, xs), events)
			})
		}
	}
}

// ---- E8: OSR window ----------------------------------------------------------

func BenchmarkE8OSRWindow(b *testing.B) {
	p := benchParams()
	p.AttrZipf = 1.5
	xs, events := benchWorkload(b, p, 10000, 2000)
	for _, w := range []int{1, 64, 1024} {
		ordered := make([]*expr.Event, len(events))
		copy(ordered, events)
		if w > 1 {
			for off := 0; off < len(ordered); off += w {
				end := off + w
				if end > len(ordered) {
					end = len(ordered)
				}
				osr.Reorder(ordered[off:end])
			}
		}
		b.Run("window="+itoa(w), func(b *testing.B) {
			matchLoop(b, benchEngine(b, apcm.Options{}, xs), ordered)
		})
	}
}

// ---- E9: index build and footprint ---------------------------------------------

func BenchmarkE9IndexBuild(b *testing.B) {
	xs, _ := benchWorkload(b, benchParams(), 10000, 10)
	for _, alg := range apcm.Algorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			var mem int64
			for i := 0; i < b.N; i++ {
				e, err := apcm.New(apcm.Options{Algorithm: alg})
				if err != nil {
					b.Fatal(err)
				}
				for _, x := range xs {
					if err := e.Subscribe(x); err != nil {
						b.Fatal(err)
					}
				}
				e.Prepare()
				mem = e.Stats().MemBytes
				e.Close()
			}
			b.ReportMetric(float64(mem)/float64(len(xs)), "bytes/sub")
		})
	}
}

// ---- E10: batch size ---------------------------------------------------------------

func BenchmarkE10BatchSize(b *testing.B) {
	xs, events := benchWorkload(b, benchParams(), 10000, 2000)
	e := benchEngine(b, apcm.Options{}, xs)
	for _, batch := range []int{1, 64, 256, 1024} {
		b.Run("batch="+itoa(batch), func(b *testing.B) {
			var r apcm.BatchResult
			b.ReportAllocs()
			b.ResetTimer()
			processed := 0
			for i := 0; i < b.N; i++ {
				off := (i * batch) % len(events)
				end := off + batch
				if end > len(events) {
					end = len(events)
				}
				e.MatchBatchInto(events[off:end], &r)
				processed += end - off
			}
			b.StopTimer()
			b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// ---- E17 (ablation): cross-event memoization -------------------------------------------

func BenchmarkE17BatchMemo(b *testing.B) {
	p := benchParams()
	p.AttrZipf = 1.2
	p.ValueZipf = 1.2
	xs, events := benchWorkload(b, p, 10000, 2048)
	osr.Reorder(events) // locality order, as the OSR window would deliver
	const batch = 256
	for _, memo := range []bool{true, false} {
		name := "memo=on"
		if !memo {
			name = "memo=off"
		}
		b.Run(name, func(b *testing.B) {
			e := benchEngine(b, apcm.Options{DisableBatchMemo: !memo}, xs)
			var r apcm.BatchResult
			b.ReportAllocs()
			b.ResetTimer()
			processed := 0
			for i := 0; i < b.N; i++ {
				off := (i * batch) % len(events)
				end := off + batch
				if end > len(events) {
					end = len(events)
				}
				e.MatchBatchInto(events[off:end], &r)
				processed += end - off
			}
			b.StopTimer()
			b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "events/s")
			if memo {
				st := e.Stats()
				if st.MemoLookups > 0 {
					b.ReportMetric(float64(st.MemoHits)/float64(st.MemoLookups)*100, "memo-hit-%")
				}
			}
		})
	}
}

// ---- E18 (ablation): posting density × group ordering ----------------------------------

func BenchmarkE18DensityOrdering(b *testing.B) {
	xs, events := benchWorkload(b, benchParams(), 10000, 1000)
	for _, v := range []struct {
		name string
		opts apcm.Options
	}{
		{"full", apcm.Options{}},
		{"no-hybrid", apcm.Options{DisableHybridPostings: true}},
		{"no-flateq", apcm.Options{DisableFlatEq: true}},
		{"no-ordering", apcm.Options{DisableGroupOrdering: true}},
		{"all-off", apcm.Options{
			DisableHybridPostings: true,
			DisableFlatEq:         true,
			DisableGroupOrdering:  true,
		}},
	} {
		b.Run(v.name, func(b *testing.B) {
			matchLoop(b, benchEngine(b, v.opts, xs), events)
		})
	}
}

// ---- E11: single-event latency -------------------------------------------------------

func BenchmarkE11MatchLatency(b *testing.B) {
	xs, events := benchWorkload(b, benchParams(), 10000, 1000)
	for _, alg := range []apcm.Algorithm{apcm.Scan, apcm.BETree, apcm.APCM} {
		b.Run(alg.String(), func(b *testing.B) {
			// ns/op here IS the per-event match latency.
			matchLoop(b, benchEngine(b, apcm.Options{Algorithm: alg}, xs), events)
		})
	}
}

// ---- E12: updates ---------------------------------------------------------------------

func BenchmarkE12Updates(b *testing.B) {
	for _, alg := range []apcm.Algorithm{apcm.BETree, apcm.Counting, apcm.APCM} {
		b.Run(alg.String(), func(b *testing.B) {
			xs, _ := benchWorkload(b, benchParams(), 10000, 10)
			e := benchEngine(b, apcm.Options{Algorithm: alg}, xs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := xs[i%len(xs)]
				if !e.Unsubscribe(x.ID) {
					b.Fatal("unsubscribe failed")
				}
				if err := e.Subscribe(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E13: operator mix -------------------------------------------------------------------

func BenchmarkE13OperatorMix(b *testing.B) {
	for _, eq := range []int{100, 60, 30} { // percent equality
		p := benchParams()
		rest := 1 - float64(eq)/100
		p.WEquality = float64(eq) / 100
		p.WRange = rest * 0.7
		p.WMembership = rest * 0.3
		xs, events := benchWorkload(b, p, 8000, 1000)
		b.Run("eq="+itoa(eq)+"pct", func(b *testing.B) {
			matchLoop(b, benchEngine(b, apcm.Options{}, xs), events)
		})
	}
}

// ---- E15 (ablation): probe interval ----------------------------------------------------------

func BenchmarkE15ProbeInterval(b *testing.B) {
	xs, events := benchWorkload(b, benchParams(), 10000, 1000)
	for _, pi := range []int{4, 64, 1024} {
		b.Run("probe="+itoa(pi), func(b *testing.B) {
			matchLoop(b, benchEngine(b, apcm.Options{ProbeInterval: pi}, xs), events)
		})
	}
}

// ---- E16 (ablation): cluster size ------------------------------------------------------------

func BenchmarkE16ClusterSize(b *testing.B) {
	xs, events := benchWorkload(b, benchParams(), 10000, 1000)
	for _, size := range []int{32, 256, 1024} {
		b.Run("cluster="+itoa(size), func(b *testing.B) {
			matchLoop(b, benchEngine(b, apcm.Options{ClusterSize: size}, xs), events)
		})
	}
}

// ---- Observability: metrics overhead ---------------------------------------------------------

// BenchmarkMetricsOverhead measures the match hot path with the metrics
// registry disabled (the nil fast path every unmetered engine takes) and
// enabled (two histogram observations per event). Compare ns/op between
// the two sub-benchmarks; the enabled variant must stay within a few
// percent of disabled.
func BenchmarkMetricsOverhead(b *testing.B) {
	xs, events := benchWorkload(b, benchParams(), 10000, 1000)
	b.Run("disabled", func(b *testing.B) {
		matchLoop(b, benchEngine(b, apcm.Options{}, xs), events)
	})
	b.Run("enabled", func(b *testing.B) {
		reg := metrics.New()
		matchLoop(b, benchEngine(b, apcm.Options{Metrics: reg}, xs), events)
		if snap := reg.Snapshot(); len(snap) == 0 {
			b.Fatal("registry recorded nothing")
		}
	})
}

// ---- E14: broker end-to-end -----------------------------------------------------------------

func BenchmarkE14BrokerEndToEnd(b *testing.B) {
	xs, events := benchWorkload(b, benchParams(), 5000, 500)
	eng := benchEngine(b, apcm.Options{}, nil)
	for _, x := range xs {
		seed := &expr.Expression{ID: x.ID + 1<<40, Preds: x.Preds}
		if err := eng.Subscribe(seed); err != nil {
			b.Fatal(err)
		}
	}
	eng.Prepare()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := broker.NewServer(eng)
	srv.Logf = func(string, ...any) {}
	go srv.Serve(ln)
	b.Cleanup(srv.Close)
	c, err := broker.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Publish(events[i%len(events)]); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 || i == b.N-1 {
			// Barrier: an acknowledged request on the same connection
			// proves the server has processed every prior publish.
			if err := c.Unsubscribe(expr.ID(1 << 50)); err == nil {
				b.Fatal("barrier unsubscribe unexpectedly succeeded")
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// ---- E19: sharded matching tier ---------------------------------------

// envInt reads an integer override from the environment, for CI smoke
// runs and paper-scale reruns of the same benchmark
// (APCM_E19_SUBS=1000000 go test -bench E19 -benchtime 1x).
func envInt(name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return def
	}
	return n
}

// benchGroup streams nsubs fresh workload expressions into a group and
// returns it with a matching event stream. Subscriptions are never
// materialised as a slice, so paper-scale counts keep setup memory flat.
func benchGroup(b *testing.B, shards, nsubs, nev int) (*shard.Group, []*expr.Event) {
	b.Helper()
	p := benchParams()
	p.PlantPoolSize = 65536
	g, err := workload.New(p)
	if err != nil {
		b.Fatal(err)
	}
	grp, err := shard.New(shard.Options{Shards: shards, Workers: 0})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(grp.Close)
	for i := 0; i < nsubs; i++ {
		if err := grp.Subscribe(g.Expression()); err != nil {
			b.Fatal(err)
		}
	}
	grp.Prepare()
	return grp, g.Events(nev)
}

// BenchmarkE19ShardSweep is the testing.B twin of experiment E19: batch
// match throughput through a shard.Group at each shard count, with the
// single-event p99 reported alongside. APCM_E19_SUBS overrides the
// subscription count (default 20000; the committed BENCH_pr7.json runs
// the full 100k–5M sweep through cmd/apcm-bench).
func BenchmarkE19ShardSweep(b *testing.B) {
	nsubs := envInt("APCM_E19_SUBS", 20000)
	const batch = 256
	for _, sc := range []int{1, 2, 4, 8, 16} {
		b.Run("subs="+strconv.Itoa(nsubs)+"/shards="+itoa(sc), func(b *testing.B) {
			grp, events := benchGroup(b, sc, nsubs, 2000)
			var r apcm.BatchResult
			grp.MatchBatchInto(events[:batch], &r) // warm
			// p99 of the single-event path, sampled before the timed
			// batch loop so it never perturbs the throughput number.
			h := stats.NewLatencyHistogram()
			var dst []expr.ID
			for i := 0; i < 2000; i++ {
				ev := events[i%len(events)]
				t0 := time.Now()
				dst = grp.MatchAppend(dst[:0], ev)
				h.AddDuration(time.Since(t0))
			}
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				off := (i * batch) % len(events)
				end := off + batch
				if end > len(events) {
					end = len(events)
				}
				grp.MatchBatchInto(events[off:end], &r)
				n += end - off
			}
			b.StopTimer()
			b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(h.Quantile(0.99), "p99-ns")
		})
	}
}

// ---- cold start: LoadSubscriptions ------------------------------------

// BenchmarkLoadSubscriptions measures the cold-start path — restoring a
// subscription trace into an empty matcher — for a single engine and a
// 4-shard group (which loads shards in parallel). The trace is built in
// memory once; every iteration replays it into a fresh instance.
// APCM_LOAD_SUBS overrides the subscription count (default 100000; set
// 1000000 for the paper-scale point).
func BenchmarkLoadSubscriptions(b *testing.B) {
	nsubs := envInt("APCM_LOAD_SUBS", 100000)
	p := benchParams()
	p.PlantPoolSize = 65536
	g, err := workload.New(p)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, trace.KindExpressions, nsubs)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nsubs; i++ {
		if err := tw.WriteExpression(g.Expression()); err != nil {
			b.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	b.Run("subs="+strconv.Itoa(nsubs)+"/engine", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := apcm.New(apcm.Options{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			n, err := e.LoadSubscriptions(bytes.NewReader(data))
			if err != nil || n != nsubs {
				b.Fatalf("loaded %d, err %v", n, err)
			}
			e.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*nsubs)/b.Elapsed().Seconds(), "subs/s")
	})
	// The plain one-Subscribe-per-record loop, kept as the cold-start
	// baseline the optimized restore is measured against (E20).
	b.Run("subs="+strconv.Itoa(nsubs)+"/engine-sequential", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := apcm.New(apcm.Options{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			n, err := e.LoadSubscriptionsSequential(bytes.NewReader(data))
			if err != nil || n != nsubs {
				b.Fatalf("loaded %d, err %v", n, err)
			}
			e.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*nsubs)/b.Elapsed().Seconds(), "subs/s")
	})
	b.Run("subs="+strconv.Itoa(nsubs)+"/group=4", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			grp, err := shard.New(shard.Options{Shards: 4, Workers: 0})
			if err != nil {
				b.Fatal(err)
			}
			n, err := grp.LoadSubscriptions(bytes.NewReader(data))
			if err != nil || n != nsubs {
				b.Fatalf("loaded %d, err %v", n, err)
			}
			grp.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*nsubs)/b.Elapsed().Seconds(), "subs/s")
	})
}
