// Package trace persists workloads (subscription sets and event
// streams) in a compact binary format, so that generated experiments can
// be stored, shared and replayed bit-for-bit:
//
//	file   := magic kind uvarint(count) record*
//	magic  := "APCMTRC1" (8 bytes)
//	kind   := 'X' (expressions) | 'E' (events)
//	record := uvarint(len) payload
//	payload := expr.AppendExpression | expr.AppendEvent encoding
//
// Both streaming (Writer/Reader) and slice-at-once entry points are
// provided; cmd/apcm-gen writes traces and the harness replays them.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/streammatch/apcm/expr"
)

const magic = "APCMTRC1"

// Kind discriminates trace contents.
type Kind byte

// Trace kinds.
const (
	KindExpressions Kind = 'X'
	KindEvents      Kind = 'E'
)

// Writer streams records into a trace. The record count is written up
// front, so the caller declares it at creation.
type Writer struct {
	w      *bufio.Writer
	kind   Kind
	left   uint64
	buf    []byte
	closed bool
}

// NewWriter starts a trace of exactly count records of the given kind.
func NewWriter(w io.Writer, kind Kind, count int) (*Writer, error) {
	if kind != KindExpressions && kind != KindEvents {
		return nil, fmt.Errorf("trace: invalid kind %q", kind)
	}
	if count < 0 {
		return nil, fmt.Errorf("trace: negative count %d", count)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(kind)); err != nil {
		return nil, err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(count))
	if _, err := bw.Write(hdr[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, kind: kind, left: uint64(count)}, nil
}

// WriteExpression appends one expression record.
func (t *Writer) WriteExpression(x *expr.Expression) error {
	if t.kind != KindExpressions {
		return fmt.Errorf("trace: expression record in %q trace", t.kind)
	}
	return t.write(expr.AppendExpression(t.buf[:0], x))
}

// WriteEvent appends one event record.
func (t *Writer) WriteEvent(e *expr.Event) error {
	if t.kind != KindEvents {
		return fmt.Errorf("trace: event record in %q trace", t.kind)
	}
	return t.write(expr.AppendEvent(t.buf[:0], e))
}

func (t *Writer) write(rec []byte) error {
	if t.closed {
		return fmt.Errorf("trace: write after Close")
	}
	if t.left == 0 {
		return fmt.Errorf("trace: more records than declared")
	}
	t.buf = rec
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	if _, err := t.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := t.w.Write(rec); err != nil {
		return err
	}
	t.left--
	return nil
}

// Close flushes the trace. It errors if fewer records than declared were
// written.
func (t *Writer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	if t.left != 0 {
		return fmt.Errorf("trace: %d records short of declared count", t.left)
	}
	return t.w.Flush()
}

// Reader streams records out of a trace.
type Reader struct {
	r    *bufio.Reader
	kind Kind
	left uint64
	buf  []byte
}

// NewReader validates the header and positions at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr)
	}
	kb, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading kind: %w", err)
	}
	kind := Kind(kb)
	if kind != KindExpressions && kind != KindEvents {
		return nil, fmt.Errorf("trace: invalid kind %q", kind)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	return &Reader{r: br, kind: kind, left: count}, nil
}

// Kind returns the trace's record kind.
func (t *Reader) Kind() Kind { return t.kind }

// Remaining returns the number of unread records.
func (t *Reader) Remaining() int { return int(t.left) }

// prealloc bounds a slice capacity derived from the declared record
// count: the count is untrusted input and must not size an allocation
// by itself (a corrupt header could declare 2^63 records, which would
// overflow int or OOM before the first record read fails).
func (t *Reader) prealloc() int {
	const limit = 1 << 16
	n := t.Remaining()
	if n < 0 || n > limit {
		return limit
	}
	return n
}

// maxRecord guards against corrupt length prefixes.
const maxRecord = 1 << 22

// fill reads the next length-prefixed record into t.buf and decodes it.
func (t *Reader) fill(decode func([]byte) (int, error)) error {
	if t.left == 0 {
		return io.EOF
	}
	size, err := binary.ReadUvarint(t.r)
	if err != nil {
		return fmt.Errorf("trace: truncated record length (%d records remaining): %w", t.left, err)
	}
	if size > maxRecord {
		return fmt.Errorf("trace: record of %d bytes exceeds %d; corrupt stream", size, maxRecord)
	}
	if cap(t.buf) < int(size) {
		t.buf = make([]byte, size)
	}
	t.buf = t.buf[:size]
	if _, err := io.ReadFull(t.r, t.buf); err != nil {
		return fmt.Errorf("trace: truncated record body: %w", err)
	}
	n, err := decode(t.buf)
	if err != nil {
		return fmt.Errorf("trace: corrupt record: %w", err)
	}
	if n != int(size) {
		return fmt.Errorf("trace: record decoded %d of %d bytes", n, size)
	}
	t.left--
	return nil
}

// ReadRawRecord appends the next record's undecoded payload to dst and
// returns the extended slice, or io.EOF when the trace is exhausted.
// The caller takes over decoding and validation; pipelined loaders use
// it to move decode work off the reader goroutine. Expression payloads
// are routable without decoding: the expression id, the predicate
// count, and the first predicate's attribute are the leading uvarints
// (predicates are stored attribute-sorted, so the first is the
// minimum).
func (t *Reader) ReadRawRecord(dst []byte) ([]byte, error) {
	if t.left == 0 {
		return dst, io.EOF
	}
	size, err := binary.ReadUvarint(t.r)
	if err != nil {
		return dst, fmt.Errorf("trace: truncated record length (%d records remaining): %w", t.left, err)
	}
	if size > maxRecord {
		return dst, fmt.Errorf("trace: record of %d bytes exceeds %d; corrupt stream", size, maxRecord)
	}
	head := len(dst)
	need := head + int(size)
	if cap(dst) < need {
		grown := make([]byte, head, need+need/2)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	if _, err := io.ReadFull(t.r, dst[head:]); err != nil {
		return dst[:head], fmt.Errorf("trace: truncated record body: %w", err)
	}
	t.left--
	return dst, nil
}

// ReadExpression returns the next expression record, or io.EOF when the
// trace is exhausted.
func (t *Reader) ReadExpression() (*expr.Expression, error) {
	if t.kind != KindExpressions {
		return nil, fmt.Errorf("trace: expression read from %q trace", t.kind)
	}
	var out *expr.Expression
	err := t.fill(func(b []byte) (int, error) {
		x, n, err := expr.DecodeExpression(b)
		if err == nil {
			out = x
		}
		return n, err
	})
	return out, err
}

// ReadExpressionSlab is ReadExpression decoding through dec's shared
// slabs (see expr.SlabDecoder): the sequential restore path uses it to
// amortize the per-record decode allocations that dominate cold start.
func (t *Reader) ReadExpressionSlab(dec *expr.SlabDecoder) (*expr.Expression, error) {
	if t.kind != KindExpressions {
		return nil, fmt.Errorf("trace: expression read from %q trace", t.kind)
	}
	var out *expr.Expression
	err := t.fill(func(b []byte) (int, error) {
		x, n, err := dec.Decode(b)
		if err == nil {
			out = x
		}
		return n, err
	})
	return out, err
}

// ReadEvent returns the next event record, or io.EOF when the trace is
// exhausted.
func (t *Reader) ReadEvent() (*expr.Event, error) {
	if t.kind != KindEvents {
		return nil, fmt.Errorf("trace: event read from %q trace", t.kind)
	}
	var out *expr.Event
	err := t.fill(func(b []byte) (int, error) {
		e, n, err := expr.DecodeEvent(b)
		if err == nil {
			out = e
		}
		return n, err
	})
	return out, err
}

// WriteExpressions writes xs as a complete trace.
func WriteExpressions(w io.Writer, xs []*expr.Expression) error {
	t, err := NewWriter(w, KindExpressions, len(xs))
	if err != nil {
		return err
	}
	for _, x := range xs {
		if err := t.WriteExpression(x); err != nil {
			return err
		}
	}
	return t.Close()
}

// ReadExpressions reads a complete expression trace.
func ReadExpressions(r io.Reader) ([]*expr.Expression, error) {
	t, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	out := make([]*expr.Expression, 0, t.prealloc())
	for {
		x, err := t.ReadExpression()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
}

// WriteEvents writes events as a complete trace.
func WriteEvents(w io.Writer, events []*expr.Event) error {
	t, err := NewWriter(w, KindEvents, len(events))
	if err != nil {
		return err
	}
	for _, e := range events {
		if err := t.WriteEvent(e); err != nil {
			return err
		}
	}
	return t.Close()
}

// ReadEvents reads a complete event trace.
func ReadEvents(r io.Reader) ([]*expr.Event, error) {
	t, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	out := make([]*expr.Event, 0, t.prealloc())
	for {
		e, err := t.ReadEvent()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
