package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/streammatch/apcm/expr"
)

// FuzzReadTrace feeds arbitrary bytes to both trace readers: corrupt
// input of any shape must produce an error, never a panic or a
// count-driven huge allocation. Seed corpus: valid traces of both
// kinds plus targeted corruptions (bad magic, bad kind, truncated
// records, absurd declared counts).
func FuzzReadTrace(f *testing.F) {
	var xbuf bytes.Buffer
	WriteExpressions(&xbuf, []*expr.Expression{
		expr.MustNew(1, expr.Eq(1, 5)),
		expr.MustNew(2, expr.Rng(3, -9, 9), expr.Any(2, 1, 4)),
	})
	f.Add(xbuf.Bytes())
	var ebuf bytes.Buffer
	WriteEvents(&ebuf, []*expr.Event{
		expr.MustEvent(expr.P(1, 5)),
		expr.MustEvent(expr.P(1, -5), expr.P(9, 0)),
	})
	f.Add(ebuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("APCMTRC1"))          // header only, no kind
	f.Add([]byte("APCMTRC1Z\x01"))     // invalid kind
	f.Add([]byte("WRONGMAG\x58\x01"))  // bad magic
	f.Add(xbuf.Bytes()[:xbuf.Len()-3]) // truncated final record
	f.Add(append([]byte("APCMTRC1X"),  // count 2^63: must not drive an allocation
		binary.AppendUvarint(nil, 1<<63)...))
	f.Add(append([]byte("APCMTRC1E"),
		binary.AppendUvarint(nil, 1<<40)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		xs, xerr := ReadExpressions(bytes.NewReader(data))
		evs, eerr := ReadEvents(bytes.NewReader(data))
		// At most one kind can succeed (the kind byte discriminates).
		if xerr == nil && eerr == nil && (len(xs) > 0 || len(evs) > 0) {
			t.Fatal("both trace kinds decoded the same bytes")
		}
		// Whatever decoded must survive a write/read round trip.
		if xerr == nil {
			var buf bytes.Buffer
			if err := WriteExpressions(&buf, xs); err != nil {
				t.Fatalf("re-encoding decoded expressions: %v", err)
			}
			back, err := ReadExpressions(&buf)
			if err != nil || len(back) != len(xs) {
				t.Fatalf("round trip lost expressions: %v (%d vs %d)", err, len(back), len(xs))
			}
		}
		if eerr == nil {
			var buf bytes.Buffer
			if err := WriteEvents(&buf, evs); err != nil {
				t.Fatalf("re-encoding decoded events: %v", err)
			}
			back, err := ReadEvents(&buf)
			if err != nil || len(back) != len(evs) {
				t.Fatalf("round trip lost events: %v (%d vs %d)", err, len(back), len(evs))
			}
		}
	})
}

// FuzzStreamingReader drives the record-at-a-time Reader the way
// LoadSubscriptions does, checking Remaining bookkeeping never goes
// negative and errors are sticky enough to terminate a read loop.
func FuzzStreamingReader(f *testing.F) {
	var buf bytes.Buffer
	WriteExpressions(&buf, []*expr.Expression{expr.MustNew(1, expr.Eq(1, 1))})
	f.Add(buf.Bytes())
	f.Add([]byte("APCMTRC1X\x05\x01\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Every successful record consumes at least one input byte, so a
		// loop longer than the input means the reader spun without
		// progress.
		for i := 0; i <= len(data); i++ {
			if r.Kind() == KindExpressions {
				_, err = r.ReadExpression()
			} else {
				_, err = r.ReadEvent()
			}
			if err != nil {
				return
			}
			if r.Remaining() < 0 {
				t.Fatal("Remaining went negative")
			}
		}
		t.Fatal("reader produced more records than input bytes")
	})
}
