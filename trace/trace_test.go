package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/workload"
)

func genWorkload(t *testing.T) ([]*expr.Expression, []*expr.Event) {
	t.Helper()
	p := workload.Default()
	p.NumAttrs = 20
	p.EventAttrs = 6
	p.WNegated = 0.05
	g := workload.MustNew(p)
	return g.Expressions(300), g.Events(300)
}

func TestExpressionRoundTrip(t *testing.T) {
	xs, _ := genWorkload(t)
	var buf bytes.Buffer
	if err := WriteExpressions(&buf, xs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExpressions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("read %d of %d", len(got), len(xs))
	}
	for i := range xs {
		if got[i].String() != xs[i].String() || got[i].ID != xs[i].ID {
			t.Fatalf("record %d: %s != %s", i, got[i], xs[i])
		}
	}
}

func TestEventRoundTrip(t *testing.T) {
	_, events := genWorkload(t)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d of %d", len(got), len(events))
	}
	for i := range events {
		if got[i].String() != events[i].String() {
			t.Fatalf("record %d: %s != %s", i, got[i], events[i])
		}
	}
}

func TestStreamingReader(t *testing.T) {
	xs, _ := genWorkload(t)
	var buf bytes.Buffer
	if err := WriteExpressions(&buf, xs); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != KindExpressions {
		t.Fatalf("Kind = %q", r.Kind())
	}
	if r.Remaining() != len(xs) {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	n := 0
	for {
		_, err := r.ReadExpression()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(xs) {
		t.Fatalf("streamed %d of %d", n, len(xs))
	}
	if _, err := r.ReadExpression(); err != io.EOF {
		t.Fatalf("read past end = %v, want EOF", err)
	}
}

func TestKindMismatch(t *testing.T) {
	xs, events := genWorkload(t)
	var buf bytes.Buffer
	if err := WriteExpressions(&buf, xs); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadEvent(); err == nil {
		t.Fatal("event read from expression trace should fail")
	}

	w, err := NewWriter(io.Discard, KindEvents, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteExpression(xs[0]); err == nil {
		t.Fatal("expression write to event trace should fail")
	}
	if err := w.WriteEvent(events[0]); err != nil {
		t.Fatal(err)
	}
}

func TestWriterCountEnforcement(t *testing.T) {
	xs, _ := genWorkload(t)
	w, err := NewWriter(io.Discard, KindExpressions, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteExpression(xs[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("short trace should fail to Close")
	}

	w2, _ := NewWriter(io.Discard, KindExpressions, 1)
	if err := w2.WriteExpression(xs[0]); err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteExpression(xs[1]); err == nil {
		t.Fatal("overlong trace should fail")
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal("Close should be idempotent")
	}
	if err := w2.WriteExpression(xs[0]); err == nil {
		t.Fatal("write after Close should fail")
	}
}

func TestNewWriterValidation(t *testing.T) {
	if _, err := NewWriter(io.Discard, Kind('Z'), 1); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if _, err := NewWriter(io.Discard, KindEvents, -1); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestCorruptInputs(t *testing.T) {
	xs, _ := genWorkload(t)
	var buf bytes.Buffer
	if err := WriteExpressions(&buf, xs[:5]); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte("NOTMAGIC"), full[8:]...)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad kind.
	bad2 := append([]byte(nil), full...)
	bad2[8] = 'Z'
	if _, err := NewReader(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad kind accepted")
	}
	// Truncations at every boundary must error, not panic or loop.
	for cut := 0; cut < len(full); cut += 7 {
		_, err := ReadExpressions(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Empty stream.
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("read %d from empty trace", len(got))
	}
}

func TestReplayedWorkloadMatchesIdentically(t *testing.T) {
	// The point of traces: replay must reproduce exact match results.
	xs, events := genWorkload(t)
	var xbuf, ebuf bytes.Buffer
	if err := WriteExpressions(&xbuf, xs); err != nil {
		t.Fatal(err)
	}
	if err := WriteEvents(&ebuf, events); err != nil {
		t.Fatal(err)
	}
	xs2, err := ReadExpressions(&xbuf)
	if err != nil {
		t.Fatal(err)
	}
	events2, err := ReadEvents(&ebuf)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		for j, x := range xs {
			if x.MatchesEvent(ev) != xs2[j].MatchesEvent(events2[i]) {
				t.Fatalf("replayed workload diverges at event %d expression %d", i, j)
			}
		}
	}
}
