package apcm

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/osr"
)

// BatchResult receives the results of MatchBatchInto: every event's
// matched subscription ids, packed into one slice with per-event
// segments. The zero value is ready to use; reusing a BatchResult
// across calls reuses every internal buffer, so a steady-state caller
// allocates nothing.
type BatchResult struct {
	n    int
	ids  []expr.ID
	offs []int32 // event i's matches are ids[offs[2i]:offs[2i+1]]

	dedups int

	// Reusable internals of MatchBatchInto.
	perm   []int32       // locality permutation: perm[k] = original index
	sorted []*expr.Event // events in perm order
	soffs  []int32       // segment offsets in sorted order, chunk-relative
	bounds []int32       // chunk boundaries over sorted order
	chunks [][]expr.ID   // per-chunk id buffers for the parallel path
	sorter batchSorter
	xids   []expr.ID // DNF alias translation double-buffer
	xoffs  []int32
}

// Len returns the number of events in the last MatchBatchInto call.
func (r *BatchResult) Len() int { return r.n }

// For returns event i's matched subscription ids (order unspecified).
// The slice aliases the result's internal buffer — it is valid until the
// next MatchBatchInto with this result, and adjacent duplicate events
// share one backing segment. Callers that retain it must copy.
func (r *BatchResult) For(i int) []expr.ID {
	return r.ids[r.offs[2*i]:r.offs[2*i+1]:r.offs[2*i+1]]
}

// Dedups reports how many events of the last batch were answered from an
// equal event's result instead of being matched again.
func (r *BatchResult) Dedups() int { return r.dedups }

func (r *BatchResult) reset(n int) {
	r.n = n
	r.ids = r.ids[:0]
	r.perm = r.perm[:0]
	r.dedups = 0
	if cap(r.offs) < 2*n {
		r.offs = make([]int32, 2*n)
	}
	r.offs = r.offs[:2*n]
	for i := range r.offs {
		r.offs[i] = 0
	}
}

// MergeBatchResults rebuilds dst as the per-event union of parts:
// event i's merged segment is the concatenation of every part's
// segment i, in part order. Every part must hold results for the same
// event batch (equal Len; MergeBatchResults panics otherwise), which is
// exactly what a shard fan-out produces — each shard matches the whole
// batch against its partition of the subscription space, and the
// partitions are disjoint, so concatenation is the union. dst may not
// be one of parts. Its buffers are reused across calls, so a
// steady-state caller allocates nothing once capacities settle.
//
//apcm:hotpath
func MergeBatchResults(dst *BatchResult, parts []*BatchResult) {
	n := 0
	if len(parts) > 0 {
		n = parts[0].n
	}
	total := 0
	for _, p := range parts {
		if p.n != n {
			panic("apcm: MergeBatchResults over results of different batches")
		}
		total += len(p.ids)
	}
	dst.reset(n)
	if cap(dst.ids) < total {
		dst.ids = make([]expr.ID, 0, total)
	}
	dedups := 0
	for i := 0; i < n; i++ {
		start := int32(len(dst.ids))
		for _, p := range parts {
			dst.ids = append(dst.ids, p.For(i)...)
		}
		dst.offs[2*i], dst.offs[2*i+1] = start, int32(len(dst.ids))
	}
	for _, p := range parts {
		dedups += p.dedups
	}
	dst.dedups = dedups
}

// batchSorter sorts a permutation of event indexes into locality order
// (osr.Less) without sorting the caller's slice. A concrete type instead
// of sort.SliceStable keeps the sort allocation-free.
type batchSorter struct {
	events []*expr.Event
	perm   []int32
}

func (s *batchSorter) Len() int { return len(s.perm) }
func (s *batchSorter) Less(i, j int) bool {
	return osr.Less(s.events[s.perm[i]], s.events[s.perm[j]])
}
func (s *batchSorter) Swap(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] }

// batchResults recycles BatchResult values for internal callers (the
// MatchBatch compatibility wrapper and the stream layer).
var batchResults = sync.Pool{New: func() any { return new(BatchResult) }}

// minChunkEvents is the smallest per-worker chunk worth fanning a batch
// out over the pool: below this the cross-event caches lose more than
// the parallelism gains.
const minChunkEvents = 8

// MatchBatchInto matches a batch of events into r, replacing its
// previous contents. The batch is internally processed in locality order
// (see internal/osr) while that measurably pays: adjacent equal events
// are matched once, and near-equal events hit the cross-event predicate
// memo and eligibility caches, so larger batches are progressively
// cheaper per event. On workloads where the matcher's arming policies
// observe no cross-event reuse, the sort (and the caches it feeds) are
// skipped and batches cost the same per event as single matches. Results
// are reported under the caller's original event indexes regardless.
//
// With a worker pool, large batches are split into contiguous chunks
// matched concurrently (inter-event parallelism). A steady-state call
// with a reused r performs no heap allocation on the sequential path.
func (e *Engine) MatchBatchInto(events []*expr.Event, r *BatchResult) {
	if m := e.met; m != nil {
		start := time.Now()
		e.matchBatchInto(events, r)
		m.batchLatency.ObserveDuration(time.Since(start))
		m.batchSize.Observe(float64(len(events)))
		return
	}
	e.matchBatchInto(events, r)
}

func (e *Engine) matchBatchInto(events []*expr.Event, r *BatchResult) {
	n := len(events)
	r.reset(n)
	if n == 0 {
		return
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return
	}
	if e.cm == nil {
		e.batchIntoBaseline(events, r)
	} else {
		e.batchIntoCore(events, r)
	}
	if e.hasAliases() {
		r.translateSegments(e)
	}
}

// batchIntoBaseline serves the sequential baseline algorithms: per-event
// matching in arrival order, packed into r's segments.
func (e *Engine) batchIntoBaseline(events []*expr.Event, r *BatchResult) {
	if e.smStateful {
		e.smMu.Lock()
		defer e.smMu.Unlock()
	}
	for i, ev := range events {
		start := int32(len(r.ids))
		r.ids = e.sm.MatchAppend(r.ids, ev)
		r.offs[2*i], r.offs[2*i+1] = start, int32(len(r.ids))
	}
}

// batchIntoCore runs the compressed matcher's batch kernel over the
// batch, then maps the kernel's segments back to original indexes. The
// batch is locality-sorted first only while the matcher's sort-arming
// policy (core.SortUseful) measures the sorted order as actually buying
// cross-event reuse; on workloads without repeats the events are fed in
// arrival order and the sort and permutation remap are skipped.
func (e *Engine) batchIntoCore(events []*expr.Event, r *BatchResult) {
	n := len(events)
	if cap(r.perm) < n {
		r.perm = make([]int32, n)
		r.sorted = make([]*expr.Event, n)
		r.soffs = make([]int32, 2*n)
	}
	run := events
	doSort := n > 1 && e.cm.SortUseful()
	if doSort {
		perm := r.perm[:n]
		for i := range perm {
			perm[i] = int32(i)
		}
		r.sorter.events, r.sorter.perm = events, perm
		sort.Stable(&r.sorter)
		r.sorter.events, r.sorter.perm = nil, nil
		r.perm = perm
		run = r.sorted[:n]
		for k, p := range perm {
			run[k] = events[p]
		}
	}
	soffs := r.soffs[:2*n]

	nchunks := 1
	if e.pool != nil {
		nchunks = e.pool.Workers() * 4
		if maxc := n / minChunkEvents; nchunks > maxc {
			nchunks = maxc
		}
		if nchunks < 1 {
			nchunks = 1
		}
	}
	if nchunks == 1 {
		s := e.getScratch()
		var d int64
		r.ids, d = e.cm.MatchBatchAppend(s, r.ids, soffs, run, doSort)
		e.putScratch(s)
		r.dedups = int(d)
		for k := 0; k < n; k++ {
			p := k
			if doSort {
				p = int(r.perm[k])
			}
			r.offs[2*p], r.offs[2*p+1] = soffs[2*k], soffs[2*k+1]
		}
		return
	}

	// Parallel path: contiguous chunks of the kernel order, one batch
	// kernel run per chunk, merged afterwards. Chunk boundaries cost a
	// little cache sharing but keep each chunk's results contiguous.
	if cap(r.chunks) < nchunks {
		r.chunks = make([][]expr.ID, nchunks)
	}
	chunks := r.chunks[:nchunks]
	r.bounds = r.bounds[:0]
	for c := 0; c <= nchunks; c++ {
		r.bounds = append(r.bounds, int32(c*n/nchunks))
	}
	bounds := r.bounds
	var dedups atomic.Int64
	e.pool.Run(nchunks, func(_, c int) {
		lo, hi := bounds[c], bounds[c+1]
		s := e.getScratch()
		var d int64
		chunks[c], d = e.cm.MatchBatchAppend(s, chunks[c][:0], soffs[2*lo:2*hi], run[lo:hi], doSort)
		e.putScratch(s)
		dedups.Add(d)
	})
	r.dedups = int(dedups.Load())
	for c := 0; c < nchunks; c++ {
		base := int32(len(r.ids))
		r.ids = append(r.ids, chunks[c]...)
		lo, hi := int(bounds[c]), int(bounds[c+1])
		for k := lo; k < hi; k++ {
			p := k
			if doSort {
				p = int(r.perm[k])
			}
			r.offs[2*p], r.offs[2*p+1] = base+soffs[2*k], base+soffs[2*k+1]
		}
	}
}

// translateSegments rewrites every result segment through the DNF alias
// table (see dnf.go), de-duplicating group ids within each event.
// Shared segments (adjacent duplicate events) are translated once and
// stay shared. The rebuilt ids land in the translation double-buffer,
// which is then swapped in.
func (r *BatchResult) translateSegments(e *Engine) {
	xids := r.xids[:0]
	if cap(r.xoffs) < 2*r.n {
		r.xoffs = make([]int32, 2*r.n)
	}
	xoffs := r.xoffs[:2*r.n]
	// Walk events in sorted order when available so shared segments are
	// adjacent; equal (start,end) pairs then always mean a shared (or
	// identically empty) segment, which translates identically.
	pst, pen := int32(-1), int32(-1)
	var nst, nen int32
	for k := 0; k < r.n; k++ {
		i := k
		if len(r.perm) == r.n {
			i = int(r.perm[k])
		}
		st, en := r.offs[2*i], r.offs[2*i+1]
		if st != pst || en != pen {
			pst, pen = st, en
			nst = int32(len(xids))
			xids = e.translateAppend(xids, r.ids[st:en])
			nen = int32(len(xids))
		}
		xoffs[2*i], xoffs[2*i+1] = nst, nen
	}
	r.ids, r.xids = xids, r.ids
	r.offs, r.xoffs = xoffs, r.offs
}
