package apcm_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

func equalIDs(a, b []expr.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkBatchAgainstMatch runs one batch through MatchBatchInto and
// verifies every segment against the per-event Match oracle.
func checkBatchAgainstMatch(t *testing.T, e *apcm.Engine, r *apcm.BatchResult, batch []*expr.Event) {
	t.Helper()
	e.MatchBatchInto(batch, r)
	if r.Len() != len(batch) {
		t.Fatalf("BatchResult.Len = %d, want %d", r.Len(), len(batch))
	}
	for i, ev := range batch {
		got := sorted(append([]expr.ID(nil), r.For(i)...))
		want := sorted(e.Match(ev))
		if !equalIDs(got, want) {
			t.Fatalf("event %d: batch %v != per-event %v", i, got, want)
		}
	}
}

// TestMatchBatchDifferential is the batch path's differential property:
// for ANY permutation and ANY partition of an event stream into batches,
// MatchBatchInto must report exactly what per-event Match reports. The
// permutation/partition is drawn by testing/quick from a random seed, so
// each run exercises fresh batch boundaries, duplicate placements and
// sort orders through the memoized kernel.
func TestMatchBatchDifferential(t *testing.T) {
	g := testWorkload(7)
	xs := g.Expressions(2500)
	base := g.Events(160)

	for _, memo := range []bool{false, true} {
		e := apcm.MustNew(apcm.Options{Workers: 2, DisableBatchMemo: !memo})
		for _, x := range xs {
			if err := e.Subscribe(x); err != nil {
				t.Fatal(err)
			}
		}
		e.Prepare()
		var r apcm.BatchResult
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			evs := append([]*expr.Event(nil), base...)
			rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
			// Inject duplicates so the adjacent-equal dedup path runs.
			for i := 0; i < 24; i++ {
				evs = append(evs, evs[rng.Intn(len(evs))])
			}
			for off := 0; off < len(evs); {
				n := 1 + rng.Intn(80)
				if off+n > len(evs) {
					n = len(evs) - off
				}
				checkBatchAgainstMatch(t, e, &r, evs[off:off+n])
				off += n
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
			t.Errorf("memo=%v: %v", memo, err)
		}
		if memo {
			st := e.Stats()
			if st.MemoLookups == 0 {
				t.Error("memo enabled but Stats reports no memo lookups")
			}
		}
		e.Close()
	}
}

// TestMatchBatchDedupsDuplicates feeds a batch that is one event
// repeated: the kernel must answer the repeats from the first result
// (Dedups > 0) while every segment still matches the oracle.
func TestMatchBatchDedupsDuplicates(t *testing.T) {
	g := testWorkload(11)
	xs := g.Expressions(1200)
	ev := g.Events(1)[0]
	e := apcm.MustNew(apcm.Options{Workers: 1})
	defer e.Close()
	for _, x := range xs {
		if err := e.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}
	e.Prepare()

	batch := make([]*expr.Event, 64)
	for i := range batch {
		batch[i] = ev
	}
	var r apcm.BatchResult
	checkBatchAgainstMatch(t, e, &r, batch)
	if r.Dedups() == 0 {
		t.Error("64 copies of one event produced no dedup hits")
	}
	if st := e.Stats(); st.BatchDedups == 0 {
		t.Error("Stats.BatchDedups = 0 after a duplicate-heavy batch")
	}
}

// TestMatchBatchChurnDifferential interleaves subscribe/unsubscribe
// churn between batches: after every mutation the batch path must track
// the new index state exactly (revision-keyed caches may never serve
// stale results).
func TestMatchBatchChurnDifferential(t *testing.T) {
	g := testWorkload(13)
	xs := g.Expressions(2000)
	events := g.Events(96)
	e := apcm.MustNew(apcm.Options{Workers: 2})
	defer e.Close()
	live := make([]*expr.Expression, 0, len(xs))
	for _, x := range xs[:1200] {
		if err := e.Subscribe(x); err != nil {
			t.Fatal(err)
		}
		live = append(live, x)
	}
	spare := xs[1200:]

	rng := rand.New(rand.NewSource(17))
	var r apcm.BatchResult
	for round := 0; round < 12; round++ {
		checkBatchAgainstMatch(t, e, &r, events)
		// Churn: delete a handful of live subscriptions, add spares back.
		for i := 0; i < 40 && len(live) > 0; i++ {
			k := rng.Intn(len(live))
			if !e.Unsubscribe(live[k].ID) {
				t.Fatalf("round %d: unsubscribe %d failed", round, live[k].ID)
			}
			spare = append(spare, live[k])
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for i := 0; i < 40 && len(spare) > 0; i++ {
			k := rng.Intn(len(spare))
			if err := e.Subscribe(spare[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live, spare[k])
			spare[k] = spare[len(spare)-1]
			spare = spare[:len(spare)-1]
		}
	}
}

// TestMatchBatchDNFGroups routes the batch path through the DNF alias
// table: group ids must come back de-duplicated even when several
// disjuncts of the same group match one event.
func TestMatchBatchDNFGroups(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Workers: 1})
	defer e.Close()
	// Both disjuncts match the event below, so the raw kernel reports two
	// internal ids that translate to ONE group id.
	gid, err := e.SubscribeAny(
		[]expr.Predicate{expr.Ge(1, 0)},
		[]expr.Predicate{expr.Le(1, 100)},
	)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.SubscribePreds(expr.Eq(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	ev := expr.MustEvent(expr.P(1, 50), expr.P(2, 7))
	batch := []*expr.Event{ev, ev, ev}
	var r apcm.BatchResult
	e.MatchBatchInto(batch, &r)
	for i := range batch {
		got := sorted(append([]expr.ID(nil), r.For(i)...))
		want := sorted([]expr.ID{gid, plain})
		if !equalIDs(got, want) {
			t.Fatalf("event %d: got %v, want %v", i, got, want)
		}
	}
}

// TestMatchBatchConcurrentChurn hammers the batch path from several
// reader goroutines while a writer churns subscriptions — primarily a
// -race exercise of the rev-keyed memo/eligibility caches and the
// scratch pool. Results are only sanity-checked (ids must be ones this
// test ever subscribed) because the oracle changes under the readers.
func TestMatchBatchConcurrentChurn(t *testing.T) {
	g := testWorkload(19)
	xs := g.Expressions(1500)
	events := g.Events(128)
	e := apcm.MustNew(apcm.Options{Workers: 2})
	defer e.Close()
	valid := make(map[expr.ID]bool, len(xs))
	for _, x := range xs {
		valid[x.ID] = true
	}
	for _, x := range xs[:1000] {
		if err := e.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	var churner, readers sync.WaitGroup
	churner.Add(1)
	go func() {
		defer churner.Done()
		rng := rand.New(rand.NewSource(23))
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			x := xs[rng.Intn(len(xs))]
			if i%2 == 0 {
				e.Unsubscribe(x.ID)
			} else {
				_ = e.Subscribe(x) // duplicate ids are rejected; fine
			}
		}
	}()
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			var r apcm.BatchResult
			rng := rand.New(rand.NewSource(int64(29 + w)))
			for i := 0; i < 60; i++ {
				n := 1 + rng.Intn(len(events))
				e.MatchBatchInto(events[:n], &r)
				for j := 0; j < r.Len(); j++ {
					for _, id := range r.For(j) {
						if !valid[id] {
							t.Errorf("reader %d: unknown id %d", w, id)
							return
						}
					}
				}
				// Interleave the single-event path through the same caches.
				_ = e.Match(events[rng.Intn(len(events))])
			}
		}(w)
	}
	readers.Wait()
	close(done)
	churner.Wait()
}
