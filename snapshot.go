package apcm

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/trace"
)

// SaveSubscriptions writes every live subscription to w as a binary
// trace (see package trace), so a subscription database can be persisted
// and restored across restarts. Engines holding DNF groups cannot be
// snapshotted (the flat trace format has no group structure); Save
// returns an error rather than silently flattening them.
func (e *Engine) SaveSubscriptions(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if len(e.groups) > 0 {
		return fmt.Errorf("apcm: cannot snapshot an engine with DNF subscriptions")
	}
	var m interface {
		Size() int
		ForEach(func(*expr.Expression) bool)
	}
	if e.cm != nil {
		m = e.cm
	} else {
		m = e.sm
	}
	tw, err := trace.NewWriter(w, trace.KindExpressions, m.Size())
	if err != nil {
		return err
	}
	var werr error
	m.ForEach(func(x *expr.Expression) bool {
		werr = tw.WriteExpression(x)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return tw.Close()
}

// ForEachSubscription calls fn for every live subscription, in
// unspecified order, until fn returns false. The engine's read lock is
// held for the whole walk: fn must not call back into the engine. On an
// engine holding DNF groups the walk visits the internal
// per-conjunction expressions, not the groups.
func (e *Engine) ForEachSubscription(fn func(*expr.Expression) bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return
	}
	if e.cm != nil {
		e.cm.ForEach(fn)
		return
	}
	e.sm.ForEach(fn)
}

// CheckpointSubscriptions persists the live subscription set to path,
// atomically (see WriteCheckpoint). A crash — or a Save failure such as
// an engine holding DNF groups — at any point leaves either the
// previous checkpoint or the new one, never a truncated or partial
// file.
func (e *Engine) CheckpointSubscriptions(path string) error {
	return WriteCheckpoint(path, e.SaveSubscriptions)
}

// WriteCheckpoint writes a file at path atomically: write streams the
// content into a temporary file in path's directory, the file is
// fsynced, renamed over path, and the directory entry fsynced in turn.
// A crash — or a write failure — at any point leaves either the
// previous file or the complete new one, never a truncated or partial
// one. It is the persistence primitive under both
// Engine.CheckpointSubscriptions and shard.Group.CheckpointSubscriptions.
func WriteCheckpoint(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".apcm-checkpoint-*")
	if err != nil {
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	// The rename is durable only once the directory entry is on disk.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	return nil
}

// RestoreSubscriptions loads the checkpoint at path into the engine. A
// missing file is not an error — a broker booting for the first time
// has no checkpoint yet — and restores nothing. It returns the number
// of subscriptions restored; like LoadSubscriptions, a corrupt tail
// keeps the subscriptions read before the failure and still advances
// the id allocator past them.
func (e *Engine) RestoreSubscriptions(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return e.LoadSubscriptions(f)
}

// Cold-start load tuning. Records are subscribed in chunks — one write
// lock and one compiled-cluster batch append per chunk — and the
// pipelined path ships raw byte chunks of the same grain from the
// reader goroutine to the decode workers.
const (
	loadChunkRecords = 512
	loadChunkBytes   = 64 << 10
)

// LoadSubscriptions reads a trace written by SaveSubscriptions (or by
// cmd/apcm-gen) and subscribes every expression. The id allocator is
// advanced past the largest loaded id so NewID never collides with a
// restored subscription. It returns the number of subscriptions loaded;
// on error, subscriptions read before the failure remain subscribed.
//
// The restore is the engine's cold-start path and is built for volume:
// expressions decode through slab allocation (see expr.SlabDecoder) and
// subscribe in chunks under one write lock each, and on multi-core
// hosts reading, decoding and index insertion run as a pipeline —
// a reader goroutine streams raw records to parallel decode workers
// while the caller inserts decoded chunks in trace order.
// LoadSubscriptionsSequential is the plain one-record-at-a-time loop,
// kept as the A/B baseline (see EXPERIMENTS.md E20).
func (e *Engine) LoadSubscriptions(r io.Reader) (int, error) {
	done := e.coldstartBegin()
	n, err := e.loadSubscriptions(r)
	done(n)
	return n, err
}

// coldstartBegin starts cold-start instrumentation and returns the
// completion hook. A nil metrics registry costs one nil check.
func (e *Engine) coldstartBegin() func(n int) {
	m := e.met
	if m == nil {
		return func(int) {}
	}
	start := time.Now()
	return func(n int) {
		m.coldstartRestores.Inc()
		m.coldstartSubs.Add(int64(n))
		m.coldstartLatency.ObserveDuration(time.Since(start))
	}
}

// idAdvancer returns a deferred allocator bump: advance past every
// restored id — also on a partial load, so NewID never collides with a
// subscription that survived a failed restore.
func (e *Engine) idAdvancer(maxID *expr.ID) func() {
	return func() {
		for {
			cur := e.nextID.Load()
			if cur >= uint64(*maxID) || e.nextID.CompareAndSwap(cur, uint64(*maxID)) {
				return
			}
		}
	}
}

func (e *Engine) loadSubscriptions(r io.Reader) (int, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return 0, err
	}
	if tr.Kind() != trace.KindExpressions {
		return 0, fmt.Errorf("apcm: trace holds %q records, want expressions", tr.Kind())
	}
	workers := loadDecodeWorkers()
	if workers <= 1 {
		return e.loadChunked(tr)
	}
	return e.loadPipelined(tr, workers)
}

// loadDecodeWorkers sizes the pipelined restore: the reader and the
// inserter occupy one core between them, decode workers take the rest,
// and past a handful of decoders the single inserter is the bottleneck
// anyway. On a single-core host the pipeline would only add scheduling
// overhead, so the chunked inline path runs instead.
func loadDecodeWorkers() int {
	n := runtime.GOMAXPROCS(0) - 1
	if n > 4 {
		n = 4
	}
	return n
}

// loadChunked is the single-goroutine restore: slab-decoded records
// accumulate into chunks subscribed under one write lock each.
func (e *Engine) loadChunked(tr *trace.Reader) (int, error) {
	n := 0
	var maxID expr.ID
	defer e.idAdvancer(&maxID)()
	var dec expr.SlabDecoder
	chunk := make([]*expr.Expression, 0, loadChunkRecords)
	flush := func() error {
		k, err := e.SubscribeBulk(chunk)
		for _, x := range chunk[:k] {
			if x.ID > maxID {
				maxID = x.ID
			}
		}
		n += k
		chunk = chunk[:0]
		return err
	}
	for {
		x, err := tr.ReadExpressionSlab(&dec)
		if err == io.EOF {
			break
		}
		if err != nil {
			if ferr := flush(); ferr != nil {
				return n, ferr
			}
			return n, err
		}
		chunk = append(chunk, x)
		if len(chunk) == loadChunkRecords {
			if err := flush(); err != nil {
				return n, err
			}
		}
	}
	return n, flush()
}

// rawChunk is a batch of undecoded records on the reader→decoder hop:
// buf holds the concatenated payloads, ends the cumulative end offset
// of each record. seq is the chunk's position in trace order.
type rawChunk struct {
	seq  int
	buf  []byte
	ends []int
}

// decChunk is a batch of decoded expressions on the decoder→inserter
// hop. err, when non-nil, is the decode failure on the record after
// xs — the records before it decoded cleanly and are still loaded,
// matching the sequential path's stop-at-first-bad-record semantics.
type decChunk struct {
	seq int
	xs  []*expr.Expression
	err error
}

// loadPipelined is the multi-core restore: a reader goroutine streams
// raw record chunks, workers decode them in parallel (each with its own
// slab decoder), and the calling goroutine re-orders completed chunks
// by sequence number and subscribes them in trace order — so error
// positions, partial-load counts and id-allocator behaviour are
// identical to the sequential path.
func (e *Engine) loadPipelined(tr *trace.Reader, workers int) (int, error) {
	n := 0
	var maxID expr.ID
	defer e.idAdvancer(&maxID)()

	raw := make(chan rawChunk, workers)
	dec := make(chan decChunk, workers)

	// Reader: batch raw records. rerr is safely published to the caller
	// through the close(raw) → wg.Wait → close(dec) chain.
	var rerr error
	go func() {
		defer close(raw)
		seq := 0
		buf := make([]byte, 0, loadChunkBytes)
		var ends []int
		flush := func() {
			if len(ends) == 0 {
				return
			}
			raw <- rawChunk{seq: seq, buf: buf, ends: ends}
			seq++
			buf = make([]byte, 0, loadChunkBytes)
			ends = nil
		}
		for {
			nbuf, err := tr.ReadRawRecord(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				rerr = err
				break
			}
			buf = nbuf
			ends = append(ends, len(buf))
			if len(ends) >= loadChunkRecords || len(buf) >= loadChunkBytes {
				flush()
			}
		}
		flush()
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sd expr.SlabDecoder
			for c := range raw {
				out := decChunk{seq: c.seq, xs: make([]*expr.Expression, 0, len(c.ends))}
				prev := 0
				for _, end := range c.ends {
					rec := c.buf[prev:end]
					x, k, err := sd.Decode(rec)
					if err != nil {
						out.err = fmt.Errorf("trace: corrupt record: %w", err)
						break
					}
					if k != len(rec) {
						out.err = fmt.Errorf("trace: record decoded %d of %d bytes", k, len(rec))
						break
					}
					out.xs = append(out.xs, x)
					prev = end
				}
				dec <- out
			}
		}()
	}
	go func() {
		wg.Wait()
		close(dec)
	}()

	// Inserter: re-order chunks by seq and subscribe in trace order. The
	// first error freezes insertion but the channels drain fully so the
	// reader and workers always terminate.
	var lerr error
	next := 0
	pending := make(map[int]decChunk)
	insert := func(c decChunk) {
		if lerr == nil {
			k, err := e.SubscribeBulk(c.xs)
			for _, x := range c.xs[:k] {
				if x.ID > maxID {
					maxID = x.ID
				}
			}
			n += k
			if err != nil {
				lerr = err
			} else if c.err != nil {
				lerr = c.err
			}
		}
	}
	for c := range dec {
		if c.seq != next {
			pending[c.seq] = c
			continue
		}
		insert(c)
		next++
		for {
			c, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			insert(c)
			next++
		}
	}
	if lerr == nil && rerr != nil {
		// The reader fails strictly after the records it already chunked,
		// so a reader error is positionally last.
		lerr = rerr
	}
	return n, lerr
}

// LoadSubscriptionsSequential is LoadSubscriptions without chunking,
// slab decoding or pipelining: one ReadExpression and one Subscribe per
// record. It exists as the measured baseline for the optimized restore
// (EXPERIMENTS.md E20) and as a semantics oracle in tests.
func (e *Engine) LoadSubscriptionsSequential(r io.Reader) (int, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return 0, err
	}
	if tr.Kind() != trace.KindExpressions {
		return 0, fmt.Errorf("apcm: trace holds %q records, want expressions", tr.Kind())
	}
	n := 0
	var maxID expr.ID
	defer e.idAdvancer(&maxID)()
	for {
		x, err := tr.ReadExpression()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		if err := e.Subscribe(x); err != nil {
			return n, err
		}
		if x.ID > maxID {
			maxID = x.ID
		}
		n++
	}
	return n, nil
}
