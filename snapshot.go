package apcm

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/trace"
)

// SaveSubscriptions writes every live subscription to w as a binary
// trace (see package trace), so a subscription database can be persisted
// and restored across restarts. Engines holding DNF groups cannot be
// snapshotted (the flat trace format has no group structure); Save
// returns an error rather than silently flattening them.
func (e *Engine) SaveSubscriptions(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if len(e.groups) > 0 {
		return fmt.Errorf("apcm: cannot snapshot an engine with DNF subscriptions")
	}
	var m interface {
		Size() int
		ForEach(func(*expr.Expression) bool)
	}
	if e.cm != nil {
		m = e.cm
	} else {
		m = e.sm
	}
	tw, err := trace.NewWriter(w, trace.KindExpressions, m.Size())
	if err != nil {
		return err
	}
	var werr error
	m.ForEach(func(x *expr.Expression) bool {
		werr = tw.WriteExpression(x)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return tw.Close()
}

// ForEachSubscription calls fn for every live subscription, in
// unspecified order, until fn returns false. The engine's read lock is
// held for the whole walk: fn must not call back into the engine. On an
// engine holding DNF groups the walk visits the internal
// per-conjunction expressions, not the groups.
func (e *Engine) ForEachSubscription(fn func(*expr.Expression) bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return
	}
	if e.cm != nil {
		e.cm.ForEach(fn)
		return
	}
	e.sm.ForEach(fn)
}

// CheckpointSubscriptions persists the live subscription set to path,
// atomically (see WriteCheckpoint). A crash — or a Save failure such as
// an engine holding DNF groups — at any point leaves either the
// previous checkpoint or the new one, never a truncated or partial
// file.
func (e *Engine) CheckpointSubscriptions(path string) error {
	return WriteCheckpoint(path, e.SaveSubscriptions)
}

// WriteCheckpoint writes a file at path atomically: write streams the
// content into a temporary file in path's directory, the file is
// fsynced, renamed over path, and the directory entry fsynced in turn.
// A crash — or a write failure — at any point leaves either the
// previous file or the complete new one, never a truncated or partial
// one. It is the persistence primitive under both
// Engine.CheckpointSubscriptions and shard.Group.CheckpointSubscriptions.
func WriteCheckpoint(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".apcm-checkpoint-*")
	if err != nil {
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	// The rename is durable only once the directory entry is on disk.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("apcm: checkpoint: %w", err)
	}
	return nil
}

// RestoreSubscriptions loads the checkpoint at path into the engine. A
// missing file is not an error — a broker booting for the first time
// has no checkpoint yet — and restores nothing. It returns the number
// of subscriptions restored; like LoadSubscriptions, a corrupt tail
// keeps the subscriptions read before the failure and still advances
// the id allocator past them.
func (e *Engine) RestoreSubscriptions(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return e.LoadSubscriptions(f)
}

// LoadSubscriptions reads a trace written by SaveSubscriptions (or by
// cmd/apcm-gen) and subscribes every expression. The id allocator is
// advanced past the largest loaded id so NewID never collides with a
// restored subscription. It returns the number of subscriptions loaded;
// on error, subscriptions read before the failure remain subscribed.
func (e *Engine) LoadSubscriptions(r io.Reader) (int, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return 0, err
	}
	if tr.Kind() != trace.KindExpressions {
		return 0, fmt.Errorf("apcm: trace holds %q records, want expressions", tr.Kind())
	}
	n := 0
	var maxID expr.ID
	// Advance the allocator past every restored id — also on a partial
	// load, so NewID never collides with a subscription that survived a
	// failed restore.
	defer func() {
		for {
			cur := e.nextID.Load()
			if cur >= uint64(maxID) || e.nextID.CompareAndSwap(cur, uint64(maxID)) {
				return
			}
		}
	}()
	for {
		x, err := tr.ReadExpression()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		if err := e.Subscribe(x); err != nil {
			return n, err
		}
		if x.ID > maxID {
			maxID = x.ID
		}
		n++
	}
	return n, nil
}
