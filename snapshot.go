package apcm

import (
	"fmt"
	"io"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/trace"
)

// SaveSubscriptions writes every live subscription to w as a binary
// trace (see package trace), so a subscription database can be persisted
// and restored across restarts. Engines holding DNF groups cannot be
// snapshotted (the flat trace format has no group structure); Save
// returns an error rather than silently flattening them.
func (e *Engine) SaveSubscriptions(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if len(e.groups) > 0 {
		return fmt.Errorf("apcm: cannot snapshot an engine with DNF subscriptions")
	}
	var m interface {
		Size() int
		ForEach(func(*expr.Expression) bool)
	}
	if e.cm != nil {
		m = e.cm
	} else {
		m = e.sm
	}
	tw, err := trace.NewWriter(w, trace.KindExpressions, m.Size())
	if err != nil {
		return err
	}
	var werr error
	m.ForEach(func(x *expr.Expression) bool {
		werr = tw.WriteExpression(x)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return tw.Close()
}

// LoadSubscriptions reads a trace written by SaveSubscriptions (or by
// cmd/apcm-gen) and subscribes every expression. The id allocator is
// advanced past the largest loaded id so NewID never collides with a
// restored subscription. It returns the number of subscriptions loaded;
// on error, subscriptions read before the failure remain subscribed.
func (e *Engine) LoadSubscriptions(r io.Reader) (int, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return 0, err
	}
	if tr.Kind() != trace.KindExpressions {
		return 0, fmt.Errorf("apcm: trace holds %q records, want expressions", tr.Kind())
	}
	n := 0
	var maxID expr.ID
	// Advance the allocator past every restored id — also on a partial
	// load, so NewID never collides with a subscription that survived a
	// failed restore.
	defer func() {
		for {
			cur := e.nextID.Load()
			if cur >= uint64(maxID) || e.nextID.CompareAndSwap(cur, uint64(maxID)) {
				return
			}
		}
	}()
	for {
		x, err := tr.ReadExpression()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		if err := e.Subscribe(x); err != nil {
			return n, err
		}
		if x.ID > maxID {
			maxID = x.ID
		}
		n++
	}
	return n, nil
}
