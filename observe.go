package apcm

import (
	"fmt"

	"github.com/streammatch/apcm/metrics"
)

// engineMetrics holds the engine's instruments. It is nil when no
// registry is attached (Options.Metrics == nil), and every hot path
// guards on that single nil check — with metrics disabled the engine
// takes no timestamps and touches no atomics.
type engineMetrics struct {
	matchLatency    *metrics.Histogram // per Match/MatchAppend call
	matchesPerEvent *metrics.Histogram
	batchLatency    *metrics.Histogram // per MatchBatch call
	batchSize       *metrics.Histogram
	subscribes      *metrics.Counter
	unsubscribes    *metrics.Counter

	// Cold-start restore instruments (LoadSubscriptions and the paths
	// over it: RestoreSubscriptions, shard group loads).
	coldstartRestores *metrics.Counter
	coldstartSubs     *metrics.Counter
	coldstartLatency  *metrics.Histogram

	// Stream instruments, shared by every Stream over this engine.
	streamEvents        *metrics.Counter
	streamFlushFull     *metrics.Counter
	streamFlushDeadline *metrics.Counter
	streamFlushManual   *metrics.Counter
	streamDedupHits     *metrics.Counter
	streamFill          *metrics.Histogram // window fill at flush, percent
	streamReorder       *metrics.Histogram // OSR displacement per flushed event
	streamFlushLatency  *metrics.Histogram // match+deliver time per flush
}

// attachMetrics registers the engine's instruments and read-time gauges
// on reg. Called once from New, after the matcher and pool exist.
func (e *Engine) attachMetrics(reg *metrics.Registry) {
	m := &engineMetrics{
		matchLatency:    reg.Histogram("apcm_match_latency_ns", "single-event match latency"),
		matchesPerEvent: reg.HistogramShaped("apcm_matches_per_event", "subscriptions matched per event", 1, 2, 24),
		batchLatency:    reg.Histogram("apcm_match_batch_latency_ns", "MatchBatch call latency"),
		batchSize:       reg.HistogramShaped("apcm_match_batch_size", "events per MatchBatch call", 1, 2, 24),
		subscribes:      reg.Counter("apcm_subscribe_total", "successful Subscribe calls"),
		unsubscribes:    reg.Counter("apcm_unsubscribe_total", "successful Unsubscribe calls"),

		coldstartRestores: reg.Counter("apcm_coldstart_restores_total", "LoadSubscriptions restores completed"),
		coldstartSubs:     reg.Counter("apcm_coldstart_subscriptions_total", "subscriptions loaded by restores"),
		coldstartLatency:  reg.Histogram("apcm_coldstart_latency_ns", "wall-clock time per LoadSubscriptions restore"),

		streamEvents:        reg.Counter("apcm_stream_events_total", "events published through streams"),
		streamFlushFull:     reg.Counter("apcm_stream_flush_full_total", "window flushes triggered by a full window"),
		streamFlushDeadline: reg.Counter("apcm_stream_flush_deadline_total", "window flushes triggered by the MaxDelay deadline"),
		streamFlushManual:   reg.Counter("apcm_stream_flush_manual_total", "window flushes triggered by Flush/Close"),
		streamDedupHits:     reg.Counter("apcm_stream_dedup_hits_total", "events served from a window neighbour's match result"),
		streamFill:          reg.HistogramShaped("apcm_stream_window_fill_pct", "window fill ratio at flush, percent", 1, 1.25, 24),
		streamReorder:       reg.HistogramShaped("apcm_stream_reorder_distance", "OSR displacement per flushed event", 1, 2, 20),
		streamFlushLatency:  reg.Histogram("apcm_stream_flush_latency_ns", "per-flush match+deliver latency"),
	}
	e.met = m

	reg.GaugeFunc("apcm_subscriptions", "live subscriptions", func() float64 {
		return float64(e.Len())
	})
	reg.GaugeFunc("apcm_mem_bytes", "estimated index heap footprint", func() float64 {
		return float64(e.Stats().MemBytes)
	})
	if e.cm != nil {
		reg.GaugeFunc("apcm_compiled_clusters", "compiled compressed clusters", func() float64 {
			return float64(e.Stats().CompiledClusters)
		})
		reg.GaugeFunc("apcm_compressed_serving", "clusters currently routed to the compressed kernel", func() float64 {
			return float64(e.Stats().CompressedServing)
		})
		reg.GaugeFunc("apcm_arena_bytes", "total backing size of compiled-cluster arenas", func() float64 {
			return float64(e.Stats().ArenaBytes)
		})
		reg.CounterFunc("apcm_adaptive_probes_total", "dual-kernel cost probes", func() float64 {
			p, _, _ := e.cm.AdaptiveCounters()
			return float64(p)
		})
		reg.CounterFunc("apcm_kernel_flips_compressed_total", "cluster flips to the compressed kernel", func() float64 {
			_, c, _ := e.cm.AdaptiveCounters()
			return float64(c)
		})
		reg.CounterFunc("apcm_kernel_flips_uncompressed_total", "cluster flips to the scan kernel", func() float64 {
			_, _, u := e.cm.AdaptiveCounters()
			return float64(u)
		})
		reg.GaugeFunc("apcm_posting_dense", "cluster postings compiled dense", func() float64 {
			return float64(e.Stats().DensePostings)
		})
		reg.GaugeFunc("apcm_posting_sparse", "cluster postings compiled sparse (sorted id list)", func() float64 {
			return float64(e.Stats().SparsePostings)
		})
		reg.GaugeFunc("apcm_posting_sparse_member_slots", "total member ids held by sparse postings", func() float64 {
			return float64(e.Stats().SparseMemberSlots)
		})
		reg.GaugeFunc("apcm_posting_eq_flat_tables", "equality groups served by value-indexed flat tables", func() float64 {
			return float64(e.Stats().EqFlatTables)
		})
		reg.GaugeFunc("apcm_posting_eq_flat_slots", "total value slots across flat equality tables", func() float64 {
			return float64(e.Stats().EqFlatSlots)
		})
		reg.CounterFunc("apcm_group_order_sorts_total", "group loops evaluated in kill-rate order (flushed at batch end)", func() float64 {
			s, _ := e.cm.OrderCounters()
			return float64(s)
		})
		reg.CounterFunc("apcm_group_order_early_exit_total", "group loops exited early on an emptied survivor set (flushed at batch end)", func() float64 {
			_, x := e.cm.OrderCounters()
			return float64(x)
		})
	}
	if e.cm != nil {
		reg.CounterFunc("apcm_batch_memo_lookups_total", "cross-event predicate memo lookups", func() float64 {
			_, l, _, _, _ := e.cm.BatchCounters()
			return float64(l)
		})
		reg.CounterFunc("apcm_batch_memo_hits_total", "cross-event predicate memo hits", func() float64 {
			h, _, _, _, _ := e.cm.BatchCounters()
			return float64(h)
		})
		reg.GaugeFunc("apcm_batch_memo_hit_ratio", "memo hits per lookup over the batch path", func() float64 {
			h, l, _, _, _ := e.cm.BatchCounters()
			if l == 0 {
				return 0
			}
			return float64(h) / float64(l)
		})
		reg.CounterFunc("apcm_batch_elig_lookups_total", "per-cluster eligibility cache lookups", func() float64 {
			_, _, _, l, _ := e.cm.BatchCounters()
			return float64(l)
		})
		reg.CounterFunc("apcm_batch_elig_hits_total", "per-cluster eligibility cache hits", func() float64 {
			_, _, h, _, _ := e.cm.BatchCounters()
			return float64(h)
		})
		reg.CounterFunc("apcm_batch_dedup_total", "batch events answered from an adjacent equal event's result", func() float64 {
			_, _, _, _, d := e.cm.BatchCounters()
			return float64(d)
		})
	}
	reg.CounterFunc("apcm_scratch_gets_total", "match scratch pool fetches", func() float64 {
		return float64(e.scratchGets.Load())
	})
	reg.CounterFunc("apcm_scratch_news_total", "match scratch pool misses (fresh allocations)", func() float64 {
		return float64(e.scratchNews.Load())
	})
	reg.GaugeFunc("apcm_scratch_recycle_ratio", "fraction of scratch fetches served by recycling", func() float64 {
		gets := e.scratchGets.Load()
		if gets == 0 {
			return 0
		}
		news := e.scratchNews.Load()
		return 1 - float64(news)/float64(gets)
	})
	if e.pool != nil {
		reg.GaugeFunc("apcm_pool_queue_depth", "scheduler jobs waiting in the queue", func() float64 {
			return float64(e.pool.Stats().QueueDepth)
		})
		reg.GaugeFunc("apcm_pool_grain_factor", "auto-tuned scheduler chunks-per-lane target", func() float64 {
			return float64(e.pool.Stats().GrainFactor)
		})
		reg.GaugeFunc("apcm_pool_shard_imbalance", "EWMA of per-run lane imbalance (max/avg, 1.0 = balanced)", func() float64 {
			return e.pool.Stats().ShardImbalance
		})
		reg.CounterFunc("apcm_pool_runs_total", "scheduler Run invocations", func() float64 {
			return float64(e.pool.Stats().Runs)
		})
		lanes := e.pool.Workers() + 1
		for w := 0; w < lanes; w++ {
			w := w
			reg.GaugeFunc(fmt.Sprintf("apcm_pool_worker_items{worker=\"%d\"}", w),
				"task items executed per worker lane (last lane = inline callers)",
				func() float64 {
					return float64(e.pool.Stats().WorkerItems[w])
				})
		}
	}
}
