package metrics

import (
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler serves the registry: Prometheus text format by default, JSON
// when the client sends Accept: application/json.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// NewMux returns an http.ServeMux exposing the full observability
// surface on one listener:
//
//	/metrics       Prometheus text format (JSON with Accept: application/json)
//	/metrics.json  expvar-style JSON snapshot
//	/healthz       liveness probe
//	/debug/pprof/  net/http/pprof profiles (CPU, heap, goroutine, ...)
//
// Wire it behind an opt-in flag; the endpoint exposes profiling data
// and should not face untrusted networks.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", Handler(r))
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
