package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind discriminates registered metric types.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as used in the Prometheus TYPE line.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// entry is one registered metric. Exactly one of counter, gauge, hist
// and fn is set.
type entry struct {
	name    string
	help    string
	kind    Kind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry holds named metrics. Registration takes a lock; recording
// through the returned instruments is lock-free. All methods are safe on
// a nil receiver: registration returns nil instruments (whose methods
// are no-ops), so a component can thread an optional *Registry through
// without guarding every call site.
//
// Metric names may carry Prometheus-style labels inline, e.g.
// "pool_worker_items{worker=\"3\"}"; the exposition formats pass them
// through.
type Registry struct {
	mu      sync.RWMutex
	order   []string
	entries map[string]*entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// register adds e under its name, or returns the existing entry of the
// same name (ignoring e) so repeated registration is idempotent.
func (r *Registry) register(e *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[e.name]; ok {
		return prev
	}
	r.entries[e.name] = e
	r.order = append(r.order, e.name)
	return e
}

// Counter returns the counter registered under name, creating it if
// needed. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(&entry{name: name, help: help, kind: KindCounter, counter: &Counter{}}).counter
}

// Gauge returns the gauge registered under name, creating it if needed.
// Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(&entry{name: name, help: help, kind: KindGauge, gauge: &Gauge{}}).gauge
}

// Histogram returns the latency histogram registered under name
// (standard shape: nanoseconds, 100ns..~100s), creating it if needed.
// Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(&entry{name: name, help: help, kind: KindHistogram, hist: NewLatencyHistogram()}).hist
}

// HistogramShaped is Histogram with an explicit bucket shape (for
// non-latency samples such as sizes or ratios).
func (r *Registry) HistogramShaped(name, help string, base, growth float64, n int) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(&entry{name: name, help: help, kind: KindHistogram, hist: NewHistogram(base, growth, n)}).hist
}

// GaugeFunc registers a gauge whose value is computed by fn at read
// time (snapshot, scrape or log). fn must be safe for concurrent use.
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&entry{name: name, help: help, kind: KindGauge, fn: fn})
}

// CounterFunc registers a counter whose value is computed by fn at read
// time — for components that already keep their own atomic counts. fn
// must be safe for concurrent use. No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&entry{name: name, help: help, kind: KindCounter, fn: fn})
}

// Value is one metric in a snapshot. Value is set for counters and
// gauges; Hist for histograms.
type Value struct {
	Name  string
	Kind  Kind
	Help  string
	Value float64
	Hist  HistogramSnapshot
}

// snapshotLocked reads every entry; the caller holds r.mu (read).
func (r *Registry) snapshotLocked() []Value {
	out := make([]Value, 0, len(r.order))
	for _, name := range r.order {
		e := r.entries[name]
		v := Value{Name: e.name, Kind: e.kind, Help: e.help}
		switch {
		case e.fn != nil:
			v.Value = e.fn()
		case e.counter != nil:
			v.Value = float64(e.counter.Value())
		case e.gauge != nil:
			v.Value = float64(e.gauge.Value())
		case e.hist != nil:
			v.Hist = e.hist.Snapshot()
		}
		out = append(out, v)
	}
	return out
}

// Snapshot reads every metric, in registration order. Nil registries
// return nil.
func (r *Registry) Snapshot() []Value {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.snapshotLocked()
}

// WriteJSON writes the snapshot as one flat JSON object keyed by metric
// name (histograms become {count, mean, p50, p95, p99, max} objects),
// expvar-style.
func (r *Registry) WriteJSON(w io.Writer) error {
	obj := make(map[string]any)
	for _, v := range r.Snapshot() {
		if v.Kind == KindHistogram {
			obj[v.Name] = v.Hist
		} else {
			obj[v.Name] = v.Value
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}

// baseName strips an inline label set: "foo{worker=\"1\"}" -> "foo".
func baseName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Histograms are rendered as summaries (pre-computed quantiles)
// since the bucket shape is fixed and fine-grained. HELP/TYPE headers
// are emitted once per base metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	seenHeader := make(map[string]bool)
	header := func(name, help string, kind Kind) {
		base, _ := baseName(name)
		if seenHeader[base] {
			return
		}
		seenHeader[base] = true
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", base, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
	}
	var err error
	track := func(_ int, werr error) {
		if err == nil {
			err = werr
		}
	}
	for _, v := range snap {
		header(v.Name, v.Help, v.Kind)
		if v.Kind != KindHistogram {
			track(fmt.Fprintf(w, "%s %s\n", v.Name, formatFloat(v.Value)))
			continue
		}
		base, labels := baseName(v.Name)
		q := func(label string, val float64) {
			sep := "{"
			if labels != "" {
				// Merge the quantile label into the inline label set.
				sep = labels[:len(labels)-1] + ","
			}
			track(fmt.Fprintf(w, "%s%squantile=%q} %s\n", base, sep, label, formatFloat(val)))
		}
		q("0.5", v.Hist.P50)
		q("0.95", v.Hist.P95)
		q("0.99", v.Hist.P99)
		track(fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(v.Hist.Mean*float64(v.Hist.Count))))
		track(fmt.Fprintf(w, "%s_count%s %d\n", base, labels, v.Hist.Count))
	}
	return err
}

// formatFloat renders integral values without an exponent so counter
// output stays grep-friendly.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// LogLine renders a compact single-line summary of the busiest metrics:
// every non-zero counter and gauge as name=value, every histogram with
// samples as name=p50/p99 (durations). Intended for periodic headless
// logging.
func (r *Registry) LogLine() string {
	var b strings.Builder
	for _, v := range r.Snapshot() {
		if v.Kind == KindHistogram {
			if v.Hist.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, " %s=n:%d,p50:%s,p99:%s", v.Name, v.Hist.Count,
				time.Duration(v.Hist.P50).Round(time.Microsecond),
				time.Duration(v.Hist.P99).Round(time.Microsecond))
			continue
		}
		if v.Value == 0 {
			continue
		}
		fmt.Fprintf(&b, " %s=%s", v.Name, formatFloat(v.Value))
	}
	return strings.TrimSpace(b.String())
}

// StartLogger logs the registry's LogLine through logf every interval
// until the returned stop function is called. For headless runs with no
// HTTP endpoint. No-op (returning a no-op stop) on a nil registry or
// non-positive interval.
func (r *Registry) StartLogger(interval time.Duration, logf func(format string, args ...any)) (stop func()) {
	if r == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if line := r.LogLine(); line != "" {
					logf("metrics: %s", line)
				}
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Names returns the registered metric names, sorted (for tests).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
