package metrics

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/streammatch/apcm/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	// Re-registration returns the same instrument.
	if r.Counter("c", "") != c || r.Gauge("g", "") != g {
		t.Fatal("re-registration returned a different instrument")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	r.GaugeFunc("f", "", func() float64 { panic("must not be called") })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments returned non-zero values")
	}
	if r.Snapshot() != nil || r.Names() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	r.StartLogger(time.Millisecond, nil)()
}

// TestHistogramMatchesStats cross-checks the atomic histogram against
// the internal/stats reference implementation on identical samples: the
// bucketing is shared, so counts, means and quantiles must agree.
func TestHistogramMatchesStats(t *testing.T) {
	h := NewLatencyHistogram()
	ref := stats.NewLatencyHistogram()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, the shape of real latency data.
		x := float64(int64(50 * (1 + rng.ExpFloat64()*2000)))
		h.Observe(x)
		ref.Add(x)
	}
	if h.Count() != ref.Count() {
		t.Fatalf("count %d vs %d", h.Count(), ref.Count())
	}
	if h.Mean() != ref.Mean() {
		t.Fatalf("mean %v vs %v", h.Mean(), ref.Mean())
	}
	if h.Max() != ref.Max() {
		t.Fatalf("max %v vs %v", h.Max(), ref.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		got, want := h.Quantile(q), ref.Quantile(q)
		// Identical bucket boundaries: tolerate only float evaluation
		// differences (the two implementations compute the upper edge
		// with different expressions).
		if got < want*0.999 || got > want*1.001 {
			t.Fatalf("q%.2f: %v vs reference %v", q, got, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(100 + (w*per+i)%100000))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent reader
		defer close(done)
		for i := 0; i < 100; i++ {
			h.Quantile(0.99)
			h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestSnapshotAndFuncs(t *testing.T) {
	r := New()
	r.Counter("reqs", "requests").Add(7)
	r.GaugeFunc("depth", "queue depth", func() float64 { return 3 })
	r.CounterFunc("drops", "drops", func() float64 { return 2 })
	r.Histogram("lat_ns", "latency").Observe(1000)
	snap := r.Snapshot()
	byName := map[string]Value{}
	for _, v := range snap {
		byName[v.Name] = v
	}
	if byName["reqs"].Value != 7 || byName["depth"].Value != 3 || byName["drops"].Value != 2 {
		t.Fatalf("snapshot values wrong: %+v", byName)
	}
	if byName["lat_ns"].Hist.Count != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", byName["lat_ns"])
	}
	// Registration order is preserved.
	if snap[0].Name != "reqs" || snap[3].Name != "lat_ns" {
		t.Fatalf("snapshot order: %v", snap)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("apcm_published_total", "events published").Add(12)
	r.Gauge(`apcm_pool_worker_items{worker="1"}`, "items per worker").Set(9)
	h := r.Histogram("apcm_match_latency_ns", "match latency")
	h.Observe(1000)
	h.Observe(2000)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE apcm_published_total counter",
		"apcm_published_total 12",
		"# TYPE apcm_pool_worker_items gauge",
		`apcm_pool_worker_items{worker="1"} 9`,
		"# TYPE apcm_match_latency_ns summary",
		`apcm_match_latency_ns{quantile="0.5"}`,
		"apcm_match_latency_ns_sum 3000",
		"apcm_match_latency_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONFormat(t *testing.T) {
	r := New()
	r.Counter("a", "").Add(1)
	r.Histogram("h", "").Observe(500)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(b.String()), &obj); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, b.String())
	}
	if obj["a"].(float64) != 1 {
		t.Fatalf("a = %v", obj["a"])
	}
	if obj["h"].(map[string]any)["count"].(float64) != 1 {
		t.Fatalf("h = %v", obj["h"])
	}
}

func TestHTTPMux(t *testing.T) {
	r := New()
	r.Counter("hits", "").Add(3)
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "hits 3") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"hits": 3`) {
		t.Fatalf("/metrics.json: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

func TestLogLineAndLogger(t *testing.T) {
	r := New()
	r.Counter("a", "").Add(2)
	r.Counter("zero", "") // zero-valued: omitted
	r.Histogram("h", "").Observe(1500)
	line := r.LogLine()
	if !strings.Contains(line, "a=2") || strings.Contains(line, "zero") || !strings.Contains(line, "h=n:1") {
		t.Fatalf("LogLine = %q", line)
	}

	var mu sync.Mutex
	var got []string
	stop := r.StartLogger(time.Millisecond, func(format string, args ...any) {
		mu.Lock()
		got = append(got, format)
		mu.Unlock()
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("periodic logger never fired")
	}
}
