// Package metrics is the engine-wide observability layer: lock-free
// counters, gauges and latency histograms collected in a Registry and
// exposed as a programmatic snapshot, expvar-style JSON, Prometheus text
// format and a periodic log line.
//
// Every instrument is safe for concurrent use (plain atomics, no locks
// on the hot path) and every method is safe on a nil receiver, so
// instrumented code pays a single nil check when no registry is
// attached:
//
//	reg := metrics.New()
//	hits := reg.Counter("cache_hits", "cache lookups that hit")
//	lat := reg.Histogram("match_latency_ns", "per-event match latency")
//	...
//	hits.Inc()
//	lat.ObserveDuration(time.Since(start))
//
// Histograms use the same exponential bucketing as internal/stats
// (bucket i covers [base·growth^i, base·growth^(i+1))), trading ~9%
// quantile resolution for a fixed footprint and wait-free recording.
package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for the value to stay monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-shape exponential-bucket histogram: bucket i
// covers [base·growth^i, base·growth^(i+1)), samples below base land in
// an underflow bucket, samples beyond the last bucket clamp into it.
// Recording is wait-free; reads (Quantile, Snapshot) scan the buckets
// without stopping writers, so a snapshot taken under load is a close
// approximation rather than an instantaneous cut — fine for monitoring.
//
// All methods are no-ops (or return zero) on a nil receiver.
type Histogram struct {
	base    float64
	logBase float64 // math.Log(base), precomputed
	invLogG float64 // 1/math.Log(growth), precomputed
	count   atomic.Int64
	sum     atomic.Int64 // integral samples (nanoseconds) sum exactly
	max     atomic.Int64
	under   atomic.Int64
	buckets []atomic.Int64
}

// NewHistogram returns a histogram with the given base, growth factor
// (> 1) and bucket count. Most callers want Registry.Histogram, which
// uses the standard latency shape.
func NewHistogram(base, growth float64, n int) *Histogram {
	if base <= 0 || growth <= 1 || n <= 0 {
		panic("metrics: invalid histogram shape")
	}
	return &Histogram{
		base:    base,
		logBase: math.Log(base),
		invLogG: 1 / math.Log(growth),
		buckets: make([]atomic.Int64, n),
	}
}

// NewLatencyHistogram returns the standard latency histogram: nanosecond
// samples, 100ns to ~100s, ~9% resolution (the same shape as
// internal/stats.NewLatencyHistogram, with atomic buckets).
func NewLatencyHistogram() *Histogram {
	return NewHistogram(100, 1.09, 240)
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(int64(x))
	for {
		cur := h.max.Load()
		if int64(x) <= cur || h.max.CompareAndSwap(cur, int64(x)) {
			break
		}
	}
	if x < h.base {
		h.under.Add(1)
		return
	}
	i := int((math.Log(x) - h.logBase) * h.invLogG)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	if i < 0 {
		i = 0
	}
	h.buckets[i].Add(1)
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(float64(d.Nanoseconds()))
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load())
}

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest sample.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return float64(h.max.Load())
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]) with the resolution of the bucket widths.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	seen := h.under.Load()
	if rank <= seen {
		return h.base
	}
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return h.base * math.Exp(float64(i+1)/h.invLogG)
		}
	}
	return float64(h.max.Load())
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot summarises the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
