package kindex

import (
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/match"
	"github.com/streammatch/apcm/internal/matchtest"
)

func TestConformance(t *testing.T) {
	matchtest.RunConformance(t, func() match.Matcher { return New() })
}

func TestPartitioningByEqualityCount(t *testing.T) {
	m := New()
	exprs := []*expr.Expression{
		expr.MustNew(1, expr.Ge(1, 0)),                               // k=0
		expr.MustNew(2, expr.Eq(1, 5)),                               // k=1
		expr.MustNew(3, expr.Eq(1, 5), expr.Eq(2, 7)),                // k=2
		expr.MustNew(4, expr.Eq(1, 5), expr.Eq(2, 7), expr.Lt(3, 9)), // k=2 + residue
	}
	for _, x := range exprs {
		if err := m.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.parts) != 3 {
		t.Fatalf("have %d partitions, want 3 (k=0,1,2)", len(m.parts))
	}
	if m.parts[0] == nil || m.parts[1] == nil || m.parts[2] == nil {
		t.Fatal("missing partition")
	}
	if len(m.parts[2].subs) != 2 {
		t.Fatalf("k=2 partition has %d subs", len(m.parts[2].subs))
	}
}

func TestDuplicateEqualityPredicatesCountOnce(t *testing.T) {
	m := New()
	// Eq(1,5) twice is semantically one constraint; the subscription must
	// land in k=1 and still match.
	x := expr.MustNew(9, expr.Eq(1, 5), expr.Eq(1, 5))
	if err := m.Insert(x); err != nil {
		t.Fatal(err)
	}
	if m.parts[1] == nil || len(m.parts[1].subs) != 1 {
		t.Fatal("duplicate equality predicates not deduplicated into k=1")
	}
	got := m.MatchAppend(nil, expr.MustEvent(expr.P(1, 5)))
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("got %v, want [9]", got)
	}
}

func TestContradictoryEqualitiesNeverMatch(t *testing.T) {
	m := New()
	// Eq(1,5) AND Eq(1,6) is unsatisfiable; the k-index must simply never
	// produce it as a candidate.
	if err := m.Insert(expr.MustNew(1, expr.Eq(1, 5), expr.Eq(1, 6))); err != nil {
		t.Fatal(err)
	}
	for _, v := range []expr.Value{5, 6, 7} {
		if got := m.MatchAppend(nil, expr.MustEvent(expr.P(1, v))); len(got) != 0 {
			t.Fatalf("unsatisfiable expression matched at v=%d: %v", v, got)
		}
	}
}

func TestIntersectionSkipping(t *testing.T) {
	// Large k=2 partition with interleaved slots forces the binary-search
	// skip path.
	m := New()
	id := expr.ID(1)
	for i := 0; i < 500; i++ {
		// Half share Eq(1,1), half share Eq(2,2); only every 10th has both.
		switch {
		case i%10 == 0:
			m.Insert(expr.MustNew(id, expr.Eq(1, 1), expr.Eq(2, 2)))
		case i%2 == 0:
			m.Insert(expr.MustNew(id, expr.Eq(1, 1), expr.Eq(3, expr.Value(i))))
		default:
			m.Insert(expr.MustNew(id, expr.Eq(2, 2), expr.Eq(3, expr.Value(i))))
		}
		id++
	}
	got := m.MatchAppend(nil, expr.MustEvent(expr.P(1, 1), expr.P(2, 2)))
	if len(got) != 50 {
		t.Fatalf("got %d matches, want 50", len(got))
	}
}

func TestZeroPartitionVerifiesEverything(t *testing.T) {
	m := New()
	if err := m.Insert(expr.MustNew(1, expr.Rng(1, 0, 10))); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(expr.MustNew(2, expr.Rng(1, 20, 30))); err != nil {
		t.Fatal(err)
	}
	got := m.MatchAppend(nil, expr.MustEvent(expr.P(1, 5)))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
}

func TestRebuildAfterHeavyDeletion(t *testing.T) {
	m := New()
	for id := expr.ID(1); id <= 100; id++ {
		if err := m.Insert(expr.MustNew(id, expr.Eq(1, expr.Value(id%5)))); err != nil {
			t.Fatal(err)
		}
	}
	for id := expr.ID(1); id <= 80; id++ {
		if !m.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	if m.Size() != 20 {
		t.Fatalf("Size = %d", m.Size())
	}
	got := m.MatchAppend(nil, expr.MustEvent(expr.P(1, 0)))
	want := 0
	for id := expr.ID(81); id <= 100; id++ {
		if id%5 == 0 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("after rebuild got %d matches, want %d", len(got), want)
	}
}

func TestMemBytes(t *testing.T) {
	m := New()
	if err := m.Insert(expr.MustNew(1, expr.Eq(1, 1))); err != nil {
		t.Fatal(err)
	}
	if m.MemBytes() <= 0 {
		t.Fatal("MemBytes should be positive")
	}
}
