// Package kindex implements the k-index (Whang et al., "Indexing
// Boolean Expressions", VLDB 2009), the classic posting-list matcher
// for conjunctive Boolean expressions and the second established
// baseline (besides the counting index) that the BE-Tree line of work
// compares against.
//
// Subscriptions are partitioned by k — their number of equality
// predicates. Partition k keeps one posting list per distinct equality
// predicate (attribute = value), holding the partition-local slots of
// the subscriptions containing it, sorted ascending. An event turns
// into one posting list per event pair; a subscription in partition k
// is a candidate iff its slot occurs in at least k of those lists,
// found by the paper's sorted-list intersection: order the list heads,
// test whether the 1st and k-th heads agree, and otherwise skip the
// lagging lists forward with binary search. Candidates are verified
// against their full predicate set (ranges, IN, negations — which the
// k-index does not index — plus attribute presence).
//
// The k = 0 partition (subscriptions with no equality predicate) must
// be verified for every event; this is the k-index's well-known
// weakness on range-heavy workloads and is reproduced faithfully.
package kindex

import (
	"fmt"
	"sort"

	"github.com/streammatch/apcm/expr"
)

type partition struct {
	k    int
	subs []*expr.Expression // slot-indexed
	dead []bool
	// posts maps a canonical equality-predicate key to the sorted slots
	// of subscriptions containing that predicate.
	posts   map[string][]int32
	deleted int
}

// Matcher is the k-index. Not safe for concurrent use.
type Matcher struct {
	parts map[int]*partition
	loc   map[expr.ID]struct {
		k    int
		slot int32
	}
	// scratch for the per-event intersection.
	lists []listCursor
}

type listCursor struct {
	slots []int32
	pos   int
}

// New returns an empty k-index.
func New() *Matcher {
	return &Matcher{
		parts: make(map[int]*partition),
		loc: make(map[expr.ID]struct {
			k    int
			slot int32
		}),
	}
}

// eqKeys returns the distinct canonical keys of x's equality
// predicates. A repeated equality predicate is semantically one
// constraint, so it must key one posting-list entry and count once
// toward k; counting it twice would make the subscription unmatchable.
func eqKeys(x *expr.Expression) []string {
	var keys []string
	var buf []byte
	for i := range x.Preds {
		pr := &x.Preds[i]
		if pr.Op != expr.EQ {
			continue
		}
		buf = expr.AppendPredicate(buf[:0], pr)
		dup := false
		for _, k := range keys {
			if k == string(buf) {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, string(buf))
		}
	}
	return keys
}

// Insert adds x to the index.
func (m *Matcher) Insert(x *expr.Expression) error {
	if _, dup := m.loc[x.ID]; dup {
		return fmt.Errorf("kindex: duplicate expression id %d", x.ID)
	}
	m.add(x)
	return nil
}

// add places x into its k-partition; shared by Insert and rebuild.
func (m *Matcher) add(x *expr.Expression) {
	keys := eqKeys(x)
	k := len(keys)
	p := m.parts[k]
	if p == nil {
		p = &partition{k: k, posts: make(map[string][]int32)}
		m.parts[k] = p
	}
	slot := int32(len(p.subs))
	p.subs = append(p.subs, x)
	p.dead = append(p.dead, false)
	for _, key := range keys {
		// Slots are assigned in increasing order, so appending keeps each
		// posting list sorted and duplicate-free.
		p.posts[key] = append(p.posts[key], slot)
	}
	m.loc[x.ID] = struct {
		k    int
		slot int32
	}{k, slot}
}

// Delete tombstones the expression; a partition is compacted once half
// of its slots are dead.
func (m *Matcher) Delete(id expr.ID) bool {
	at, ok := m.loc[id]
	if !ok {
		return false
	}
	p := m.parts[at.k]
	p.dead[at.slot] = true
	p.deleted++
	delete(m.loc, id)
	if p.deleted*2 > len(p.subs) {
		m.rebuild(p)
	}
	return true
}

func (m *Matcher) rebuild(p *partition) {
	live := make([]*expr.Expression, 0, len(p.subs)-p.deleted)
	for i, x := range p.subs {
		if !p.dead[i] {
			live = append(live, x)
		}
	}
	m.parts[p.k] = &partition{k: p.k, posts: make(map[string][]int32)}
	for _, x := range live {
		m.add(x)
	}
}

// MatchAppend appends the ids of all matching expressions to dst.
func (m *Matcher) MatchAppend(dst []expr.ID, e *expr.Event) []expr.ID {
	var key []byte
	for _, p := range m.parts {
		if p.k == 0 {
			// No equality predicates to key on: verify everything.
			for i, x := range p.subs {
				if !p.dead[i] && x.MatchesEvent(e) {
					dst = append(dst, x.ID)
				}
			}
			continue
		}
		// Gather the posting lists selected by the event's pairs.
		m.lists = m.lists[:0]
		for _, pair := range e.Pairs() {
			pr := expr.Eq(pair.Attr, pair.Val)
			key = expr.AppendPredicate(key[:0], &pr)
			if slots := p.posts[string(key)]; len(slots) > 0 {
				m.lists = append(m.lists, listCursor{slots: slots})
			}
		}
		if len(m.lists) < p.k {
			continue
		}
		dst = p.intersect(m.lists, e, dst)
	}
	return dst
}

// intersect reports every slot occurring in at least p.k of the lists,
// verifying each candidate before emitting. Lists are sorted ascending
// and duplicate-free (a subscription carries one equality per
// attribute-value, and event pairs are distinct).
func (p *partition) intersect(lists []listCursor, e *expr.Event, dst []expr.ID) []expr.ID {
	k := p.k
	for {
		// Order the heads so that heads[0] is the smallest current slot
		// and heads[k-1] the k-th smallest. Lists are few (≤ event
		// width), so sorting heads each round is cheap and matches the
		// paper's presentation.
		live := lists[:0]
		for _, lc := range lists {
			if lc.pos < len(lc.slots) {
				live = append(live, lc)
			}
		}
		lists = live
		if len(lists) < k {
			return dst
		}
		sort.Slice(lists, func(i, j int) bool {
			return lists[i].slots[lists[i].pos] < lists[j].slots[lists[j].pos]
		})
		pivot := lists[k-1].slots[lists[k-1].pos]
		if lists[0].slots[lists[0].pos] == pivot {
			// Slot `pivot` occurs in the first k lists: candidate.
			if !p.dead[pivot] {
				x := p.subs[pivot]
				if x.MatchesEvent(e) {
					dst = append(dst, x.ID)
				}
			}
			// Advance every list positioned at the pivot.
			for i := range lists {
				lc := &lists[i]
				if lc.slots[lc.pos] == pivot {
					lc.pos++
				}
			}
			continue
		}
		// Skip the lagging lists forward to the pivot with binary search.
		for i := 0; i < k-1; i++ {
			lc := &lists[i]
			cur := lc.slots[lc.pos:]
			lc.pos += sort.Search(len(cur), func(j int) bool { return cur[j] >= pivot })
		}
	}
}

// Size returns the number of live expressions.
func (m *Matcher) Size() int { return len(m.loc) }

// ForEach visits every live expression.
func (m *Matcher) ForEach(fn func(*expr.Expression) bool) {
	for _, p := range m.parts {
		for i, x := range p.subs {
			if !p.dead[i] && !fn(x) {
				return
			}
		}
	}
}

// MemBytes estimates the heap footprint of the index structures.
func (m *Matcher) MemBytes() int64 {
	var b int64
	b += int64(len(m.loc)) * 32
	for _, p := range m.parts {
		b += int64(len(p.subs))*9 + 64
		for key, slots := range p.posts {
			b += int64(len(key)) + 16 + int64(len(slots))*4
		}
	}
	return b
}
