package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-9 {
		t.Fatalf("Mean = %f", w.Mean())
	}
	// Known population: sample variance = 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-9 {
		t.Fatalf("Var = %f", w.Var())
	}
	if math.Abs(w.Std()-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Fatalf("Std = %f", w.Std())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 {
		t.Fatalf("mean=%f var=%f", w.Mean(), w.Var())
	}
}

func TestPropWelfordMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 2
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
			w.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-v) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 2, 10)
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	// 1000 samples: 1µs, except ten at 1ms.
	for i := 0; i < 990; i++ {
		h.Add(1000)
	}
	for i := 0; i < 10; i++ {
		h.Add(1e6)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 500 || p50 > 2000 {
		t.Fatalf("p50 = %f, want ≈1000", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 5e5 || p999 > 2e6 {
		t.Fatalf("p99.9 = %f, want ≈1e6", p999)
	}
	if h.Max() != 1e6 {
		t.Fatalf("Max = %f", h.Max())
	}
	mean := h.Mean()
	want := (990*1000 + 10*1e6) / 1000.0
	if math.Abs(mean-want) > 1 {
		t.Fatalf("Mean = %f, want %f", mean, want)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	h.Add(1) // below base
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("under-base quantile = %f, want base", q)
	}
	h.Add(1e18) // beyond last bucket: clamps
	if h.Quantile(1.0) <= 0 {
		t.Fatal("clamped quantile should be positive")
	}
	if h.Quantile(-1) != h.Quantile(0) {
		t.Fatal("q<0 should clamp to 0")
	}
	_ = h.Quantile(2) // must not panic
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		h.Add(math.Exp(rng.Float64() * 15))
	}
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone at q=%f: %f < %f", q, cur, prev)
		}
		prev = cur
	}
}

func TestHistogramAddDurationAndSummary(t *testing.T) {
	h := NewLatencyHistogram()
	h.AddDuration(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatal("AddDuration did not record")
	}
	s := h.Summary()
	if s == "" || len(s) < 10 {
		t.Fatalf("Summary = %q", s)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(100)
	m.Add(50)
	if m.Count() != 150 {
		t.Fatalf("Count = %d", m.Count())
	}
	time.Sleep(time.Millisecond)
	if m.Rate() <= 0 {
		t.Fatalf("Rate = %f", m.Rate())
	}
	if m.Elapsed() <= 0 {
		t.Fatal("Elapsed should be positive")
	}
}
