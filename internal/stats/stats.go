// Package stats provides the small measurement kit the benchmark
// harness is built on: streaming mean/variance (Welford), exponential-
// bucket latency histograms with percentile estimation, and throughput
// meters.
package stats

import (
	"fmt"
	"math"
	"time"
)

// Welford accumulates streaming mean and variance.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Histogram is a latency histogram with exponentially sized buckets:
// bucket i covers [base·growth^i, base·growth^(i+1)). The default
// (NewLatencyHistogram) spans 100ns to ~100s with ~9% resolution.
type Histogram struct {
	base    float64
	logG    float64
	buckets []int64
	under   int64 // samples below base
	count   int64
	sum     float64
	max     float64
}

// NewHistogram returns a histogram with the given base, growth factor
// (> 1) and bucket count.
func NewHistogram(base, growth float64, n int) *Histogram {
	if base <= 0 || growth <= 1 || n <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{base: base, logG: math.Log(growth), buckets: make([]int64, n)}
}

// NewLatencyHistogram returns the standard latency histogram
// (nanosecond samples, 100ns..~100s).
func NewLatencyHistogram() *Histogram {
	return NewHistogram(100, 1.09, 240)
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.count++
	h.sum += x
	if x > h.max {
		h.max = x
	}
	if x < h.base {
		h.under++
		return
	}
	i := int(math.Log(x/h.base) / h.logG)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
}

// AddDuration records a duration sample in nanoseconds.
func (h *Histogram) AddDuration(d time.Duration) { h.Add(float64(d.Nanoseconds())) }

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]), with the resolution of the bucket widths.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank <= h.under {
		return h.base
	}
	seen := h.under
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return h.base * math.Exp(h.logG*float64(i+1))
		}
	}
	return h.max
}

// Summary renders count/mean/p50/p95/p99/max for tables, interpreting
// samples as nanoseconds.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		h.count,
		time.Duration(h.Mean()),
		time.Duration(h.Quantile(0.50)),
		time.Duration(h.Quantile(0.95)),
		time.Duration(h.Quantile(0.99)),
		time.Duration(h.max),
	)
}

// Meter measures throughput over a wall-clock interval.
type Meter struct {
	start time.Time
	n     int64
}

// NewMeter starts a meter.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Add records n completed items.
func (m *Meter) Add(n int64) { m.n += n }

// Rate returns items per second since the meter started.
func (m *Meter) Rate() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.n) / el
}

// Count returns the number of recorded items.
func (m *Meter) Count() int64 { return m.n }

// Elapsed returns the time since the meter started.
func (m *Meter) Elapsed() time.Duration { return time.Since(m.start) }
