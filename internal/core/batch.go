package core

import (
	"math/bits"

	"github.com/streammatch/apcm/expr"
)

// This file holds the batch-matching machinery: the per-batch predicate
// memo, the per-cluster eligibility cache, the dense per-event value
// table, and the MatchBatchAppend entry point. Together they make a
// locality-ordered batch (OSR order, see internal/osr) progressively
// cheaper: consecutive similar events re-probe the same distinct
// predicates and re-derive the same eligibility sets, so both are cached
// on the Scratch and invalidated by cluster revision, never by time.

// predMemo is an open-addressed hash table memoizing distinct-predicate
// evaluations across the events of one batch. Keys are (cluster rev,
// entry seq, event value); values are the bool Matches result. Instead of
// deleting entries the whole table is epoch-cleared: BeginBatch bumps the
// epoch and every slot whose stamp differs is free. Steady state performs
// zero allocations; the table grows (rare, amortized) when a batch fills
// three quarters of it.
type predMemo struct {
	revs  []uint64
	keys  []uint64 // seq<<32 | uint32(value)
	stamp []uint32
	res   []bool
	epoch uint32
	used  int // entries inserted this epoch
}

const predMemoMinSize = 1024 // power of two

func (t *predMemo) begin() {
	if len(t.revs) == 0 {
		t.grow(predMemoMinSize)
	}
	t.epoch++
	t.used = 0
	if t.epoch == 0 { // uint32 wrap: stale stamps could collide
		for i := range t.stamp {
			t.stamp[i] = 0
		}
		t.epoch = 1
	}
}

func (t *predMemo) grow(n int) {
	t.revs = make([]uint64, n)
	t.keys = make([]uint64, n)
	t.stamp = make([]uint32, n)
	t.res = make([]bool, n)
	t.epoch = 1
	t.used = 0
}

// hash mixes rev and key into a table index (fibonacci hashing on the
// xor-folded pair; the low bits of rev and key are both dense).
func (t *predMemo) hash(rev, key uint64) int {
	h := (rev*0x9e3779b97f4a7c15 ^ key) * 0x9e3779b97f4a7c15
	return int(h >> 32 & uint64(len(t.revs)-1))
}

// find probes for (rev, key). It returns the memoized result when
// present; otherwise slot is the insertion point for put.
//
//apcm:hotpath
func (t *predMemo) find(rev, key uint64) (res bool, ok bool, slot int) {
	i := t.hash(rev, key)
	mask := len(t.revs) - 1
	for {
		if t.stamp[i] != t.epoch {
			return false, false, i
		}
		if t.revs[i] == rev && t.keys[i] == key {
			return t.res[i], true, i
		}
		i = (i + 1) & mask
	}
}

// put inserts at the slot returned by find, growing first when the batch
// has filled 3/4 of the table (the insert then re-probes, and earlier
// entries are simply forgotten — the memo is best-effort).
//
//apcm:hotpath
func (t *predMemo) put(slot int, rev, key uint64, res bool) {
	if t.used*4 >= len(t.revs)*3 {
		t.grow(len(t.revs) * 2)
		_, _, slot = t.find(rev, key)
	}
	t.revs[slot] = rev
	t.keys[slot] = key
	t.stamp[slot] = t.epoch
	t.res[slot] = res
	t.used++
}

// eligEntry caches one cluster's most recent eligibility result: the
// present mask it was derived from and the surviving member words. It is
// valid for exactly one cluster revision (the cache maps rev → entry), so
// cluster mutations can never serve a stale survivor set.
type eligEntry struct {
	present []uint64
	words   []uint64
	any     bool
}

//apcm:hotpath
func (e *eligEntry) matches(present []uint64) bool {
	if len(e.present) != len(present) {
		return false
	}
	for i := range present {
		if e.present[i] != present[i] {
			return false
		}
	}
	return true
}

//apcm:hotpath
func (e *eligEntry) store(present, words []uint64, any bool) {
	e.present = append(e.present[:0], present...)
	e.words = append(e.words[:0], words...)
	e.any = any
}

// eligCache maps cluster revision → cached eligibility. One entry per
// cluster suffices because a locality-ordered batch changes attribute
// sets rarely relative to events.
type eligCache struct {
	m map[uint64]*eligEntry
}

const eligCacheMaxEntries = 512

func (ec *eligCache) entry(rev uint64) *eligEntry {
	if ec.m == nil {
		ec.m = make(map[uint64]*eligEntry)
	}
	e := ec.m[rev]
	if e == nil {
		if len(ec.m) >= eligCacheMaxEntries {
			// Stale revisions accumulate under churn; dropping the whole
			// map is rare and keeps the bookkeeping trivial.
			for k := range ec.m {
				delete(ec.m, k)
			}
		}
		e = &eligEntry{}
		ec.m[rev] = e
	}
	return e
}

// valueTable is a dense attr → value index over the current event:
// epoch-stamped arrays indexed by attribute id, replacing the per-lookup
// linear scan of the event's pair list in the scan kernel. Keeping the
// event pointer pins it, so pointer identity is a sound reuse check.
type valueTable struct {
	ev     *expr.Event
	loaded bool
	usable bool
	vals   []expr.Value
	stamp  []uint32
	epoch  uint32
}

// maxDenseAttr bounds the table; events carrying larger attribute ids
// fall back to Event.Lookup.
const maxDenseAttr = 1 << 16

// begin switches the table to e without loading it (loading is paid only
// if a scan-kernel pool is actually visited).
func (t *valueTable) begin(e *expr.Event) {
	if t.ev != e {
		t.ev = e
		t.loaded = false
	}
}

// ensure loads the current event into the table, reporting whether the
// table is usable for it.
func (t *valueTable) ensure(e *expr.Event) bool {
	t.begin(e)
	if t.loaded {
		return t.usable
	}
	t.loaded = true
	t.usable = true
	t.epoch++
	if t.epoch == 0 {
		for i := range t.stamp {
			t.stamp[i] = 0
		}
		t.epoch = 1
	}
	for _, p := range e.Pairs() {
		a := int(p.Attr)
		if a >= len(t.vals) {
			if a >= maxDenseAttr {
				t.usable = false
				return false
			}
			n := 1 << bits.Len(uint(a))
			vals := make([]expr.Value, n)
			stamp := make([]uint32, n)
			copy(vals, t.vals)
			copy(stamp, t.stamp)
			t.vals, t.stamp = vals, stamp
		}
		t.vals[a] = p.Val
		t.stamp[a] = t.epoch
	}
	return true
}

//apcm:hotpath
func (t *valueTable) lookup(a expr.AttrID) (expr.Value, bool) {
	i := int(a)
	if i < len(t.stamp) && t.stamp[i] == t.epoch {
		return t.vals[i], true
	}
	return 0, false
}

// Memo arming policy: the memo only pays for itself when events in a
// batch actually repeat (predicate, value) evaluations — on uniform
// value distributions nearly every lookup misses and the probing is
// pure overhead. The matcher tracks an EWMA of the per-batch hit ratio
// and stops arming once it settles below memoMinRate, re-probing every
// memoReprobeEvery-th batch so a workload shift (skew appearing, OSR
// window tightening) re-enables it within a bounded number of batches.
const (
	memoRateOne      = 1 << 16          // fixed-point 1.0
	memoMinRate      = memoRateOne / 16 // arm while EWMA hit ratio ≥ 6.25%
	memoRateShift    = 3                // EWMA weight 1/8 per measured batch
	memoReprobeEvery = 32               // cold re-probe cadence, in batches
	memoMinMeasure   = 64               // lookups needed before a batch counts
)

// Sort arming policy: locality-sorting a batch costs a comparison sort
// plus a permutation remap, and only pays through what sorted adjacency
// enables — equal-event dedup and eligibility-cache hits (the predicate
// memo is order-independent). The matcher tracks an EWMA of that reuse
// per sorted event and tells callers to skip the sort once it settles
// below sortMinRate, re-probing periodically like the memo policy.
const (
	sortMinRate      = memoRateOne / 16 // keep sorting while reuse/event ≥ 6.25%
	sortReprobeEvery = 32               // cold re-probe cadence, in batches
	sortMinMeasure   = 16               // events needed before a batch counts
)

// memoUseful decides whether the next batch should arm the memo.
func (m *Matcher) memoUseful() bool {
	if m.memoRate.Load() >= memoMinRate {
		return true
	}
	return m.memoBatchSeq.Add(1)%memoReprobeEvery == 0
}

// SortUseful reports whether locality-sorting the next batch is likely
// to pay for itself on the current workload. Callers that sort must say
// so via MatchBatchAppend's sorted argument — that is what feeds the
// measurement. Every sortReprobeEvery-th call while cold answers true
// so a workload shift re-enables sorting within a bounded number of
// batches.
func (m *Matcher) SortUseful() bool {
	if m.sortRate.Load() >= sortMinRate {
		return true
	}
	return m.sortBatchSeq.Add(1)%sortReprobeEvery == 0
}

// BeginBatch arms cross-event memoization on s for a run of MatchWith
// calls over related events — unless it is disabled or the arming
// policy has measured it useless for the current workload. Pair with
// EndBatch.
func (m *Matcher) BeginBatch(s *Scratch) {
	if m.cfg.DisableMemo || !m.memoUseful() {
		return
	}
	s.kern.memoOn = true
	s.kern.memo.begin()
}

// EndBatch disarms memoization and the eligibility cache, folds the
// batch's hit and reuse ratios into the arming policies' EWMAs, and
// flushes the scratch's cache counters into the matcher's aggregate
// counters.
func (m *Matcher) EndBatch(s *Scratch) {
	k := &s.kern
	if k.memoOn && k.memoLookups >= memoMinMeasure {
		ratio := uint64(k.memoHits) * memoRateOne / uint64(k.memoLookups)
		old := m.memoRate.Load()
		m.memoRate.Store(old - old>>memoRateShift + ratio>>memoRateShift)
	}
	if k.eligOn && k.batchEvents >= sortMinMeasure {
		ratio := uint64(k.dedups+k.eligHits) * memoRateOne / uint64(k.batchEvents)
		if ratio > memoRateOne {
			ratio = memoRateOne
		}
		old := m.sortRate.Load()
		m.sortRate.Store(old - old>>memoRateShift + ratio>>memoRateShift)
	}
	k.memoOn = false
	k.eligOn = false
	k.batchEvents = 0
	if k.memoLookups != 0 {
		m.memoLookups.Add(k.memoLookups)
		m.memoHits.Add(k.memoHits)
		k.memoLookups, k.memoHits = 0, 0
	}
	if k.eligLookups != 0 {
		m.eligLookups.Add(k.eligLookups)
		m.eligHits.Add(k.eligHits)
		k.eligLookups, k.eligHits = 0, 0
	}
	if k.dedups != 0 {
		m.dedups.Add(k.dedups)
		k.dedups = 0
	}
	m.FlushOrderCounters(s)
}

// FlushOrderCounters folds the scratch-local selectivity-order counters
// into the matcher's aggregates. The batch path does this in EndBatch;
// the single-event paths (serial and intra-event parallel) call it when
// a scratch is released, so the counters stay visible on workloads that
// never run a batch.
func (m *Matcher) FlushOrderCounters(s *Scratch) {
	k := &s.kern
	if k.orderSorts != 0 {
		m.orderSorts.Add(k.orderSorts)
		k.orderSorts = 0
	}
	if k.earlyExits != 0 {
		m.earlyExits.Add(k.earlyExits)
		k.earlyExits = 0
	}
}

// MatchBatchAppend matches events in order, appending every match to ids
// and recording each event's result segment as offs[2i] (start) and
// offs[2i+1] (end) — segments of adjacent equal events alias each other.
// offs must have length ≥ 2·len(events). Callers get the full benefit by
// sorting the batch into locality order (osr.Reorder) first and passing
// sorted=true: adjacent equal events are matched once, and near-equal
// events hit the predicate memo and eligibility cache. sorted both arms
// the eligibility cache and feeds the sort-arming policy (SortUseful),
// so it must reflect what the caller actually did. Returns the appended
// ids and how many events were answered from an adjacent equal event's
// segment. Concurrency follows MatchWith: distinct Scratch values may
// run concurrently, never concurrent with writes.
func (m *Matcher) MatchBatchAppend(s *Scratch, ids []expr.ID, offs []int32, events []*expr.Event, sorted bool) ([]expr.ID, int64) {
	if len(events) > 1 { // cross-event reuse needs more than one event
		m.BeginBatch(s)
		s.kern.eligOn = sorted
		s.kern.batchEvents = int64(len(events))
	}
	for i := 0; i < len(events); {
		start := int32(len(ids))
		ids = m.MatchWith(s, ids, events[i])
		end := int32(len(ids))
		offs[2*i], offs[2*i+1] = start, end
		j := i + 1
		for j < len(events) && events[j].Equal(events[i]) {
			offs[2*j], offs[2*j+1] = start, end
			j++
		}
		s.kern.dedups += int64(j - i - 1)
		i = j
	}
	dedups := s.kern.dedups
	m.EndBatch(s)
	return ids, dedups
}

// BatchCounters reports the cumulative cross-event cache effectiveness
// counters: predicate-memo lookups/hits, eligibility-cache lookups/hits,
// and events answered by an adjacent equal event's result. Counters are
// flushed by EndBatch, so in-flight batches are not yet visible.
func (m *Matcher) BatchCounters() (memoHits, memoLookups, eligHits, eligLookups, dedups int64) {
	return m.memoHits.Load(), m.memoLookups.Load(),
		m.eligHits.Load(), m.eligLookups.Load(), m.dedups.Load()
}
