// Package core implements the paper's contribution: parallel compressed
// event matching (PCM) and its adaptive variant (A-PCM).
//
// The matcher clusters subscriptions with a BE-Tree (internal/betree)
// and compiles every sufficiently large pool into a compressed cluster:
// per-member attribute masks for a one-pass eligibility test,
// per-attribute equality-union maps (one hash lookup evaluates every
// distinct equality predicate on an attribute at once) and dictionaries
// of distinct non-equality predicates, each entry carrying a bitset of
// the members that contain it. Matching an event is then word-wide
// Boolean algebra over the whole cluster instead of per-subscription
// interpretation; see kernel.go for the exact steps. Updates maintain
// compiled clusters incrementally (appends into slack capacity,
// tombstone deletions) and recompile lazily otherwise; see compile.go.
//
// Compression wins when clusters share predicates and selectivity is
// low; it loses on heterogeneous clusters where the uncompressed
// short-circuiting scan touches far fewer predicates. A-PCM therefore
// keeps per-cluster exponentially-weighted cost estimates for both
// kernels (wall-clock, refreshed by periodic probes that run both
// kernels on the same event) and routes each cluster to its cheaper
// kernel.
//
// Concurrency contract: Insert and Delete require external write
// exclusion (no concurrent writers or matchers). MatchWith may be called
// concurrently from many goroutines, each with its own Scratch; lazy
// cluster compilation and adaptive state are internally synchronised.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/betree"
)

// Mode selects the matching kernel policy.
type Mode int

const (
	// ModeAdaptive picks per cluster between the compressed and the
	// uncompressed kernel using online cost estimates (A-PCM).
	ModeAdaptive Mode = iota
	// ModeCompressed always uses the compressed kernel on every
	// compilable cluster (PCM).
	ModeCompressed
	// ModeUncompressed never compresses; matching is a BE-Tree with
	// large pools (the ablation baseline).
	ModeUncompressed
)

// String names the mode for tables and logs.
func (m Mode) String() string {
	switch m {
	case ModeAdaptive:
		return "A-PCM"
	case ModeCompressed:
		return "PCM"
	case ModeUncompressed:
		return "uncompressed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config tunes the matcher.
type Config struct {
	// Mode selects the kernel policy. The zero value is ModeAdaptive.
	Mode Mode
	// Tree configures the clustering BE-Tree. Compressed matching likes
	// larger pools than sequential matching; the zero value is
	// {MaxPool: 256, MaxClusterDepth: 32}.
	Tree betree.Config
	// MinCompressSize is the smallest pool worth compiling; smaller pools
	// are always scanned. Default 8.
	MinCompressSize int
	// ProbeInterval is the number of events a cluster serves between
	// adaptive probes (runs of both kernels on one event). Default 64.
	ProbeInterval int
	// Decay is the weight kept by the old cost estimate at each probe,
	// in (0,1). Default 0.8.
	Decay float64
	// DisableMemo turns off the cross-event predicate memo armed by
	// BeginBatch (ablation switch for the batch experiments).
	DisableMemo bool
	// DisableHybridPostings compiles every posting dense, as before the
	// density-adaptive layout (ablation switch, see E18).
	DisableHybridPostings bool
	// DisableFlatEq keeps equality unions in the Go map only, never
	// building the value-indexed flat tables (ablation switch).
	DisableFlatEq bool
	// DisableGroupOrder evaluates groups in attribute order instead of
	// descending estimated-kill order (ablation switch).
	DisableGroupOrder bool
}

// layout derives the compile-time layout switches from the config.
func (c *Config) layout() layoutOpts {
	return layoutOpts{
		forceDense: c.DisableHybridPostings,
		noEqFlat:   c.DisableFlatEq,
		noOrder:    c.DisableGroupOrder,
	}
}

// DefaultConfig returns the configuration used by the benchmarks.
func DefaultConfig() Config {
	return Config{
		Mode:            ModeAdaptive,
		Tree:            betree.Config{MaxPool: 256, MaxClusterDepth: 32},
		MinCompressSize: 8,
		ProbeInterval:   64,
		Decay:           0.8,
	}
}

func (c *Config) sanitize() {
	if c.Tree.MaxPool <= 0 {
		c.Tree.MaxPool = 256
	}
	if c.MinCompressSize <= 1 {
		c.MinCompressSize = 8
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 64
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.8
	}
}

// Matcher is the compressed matcher. Create with New.
type Matcher struct {
	cfg  Config
	tree *betree.Tree

	// cmu guards the clusters map; individual clusterState values carry
	// their own synchronisation.
	cmu      sync.RWMutex
	clusters map[*betree.Pool]*clusterState

	// Adaptive-policy observability: probe runs and kernel flips across
	// all clusters (see adaptive.go). Without these the adaptivity that
	// is A-PCM's whole point is invisible in a running system.
	probes atomic.Int64
	flipsC atomic.Int64 // flips to the compressed kernel
	flipsU atomic.Int64 // flips to the uncompressed (scan) kernel

	// Batch-path cache effectiveness (see batch.go); flushed from
	// per-Scratch counters by EndBatch.
	memoHits    atomic.Int64
	memoLookups atomic.Int64
	eligHits    atomic.Int64
	eligLookups atomic.Int64
	dedups      atomic.Int64

	// Memo and sort arming policies (see batch.go): EWMAs in 16.16 fixed
	// point — memoRate tracks the per-batch memo hit ratio, sortRate the
	// per-batch cross-event reuse ratio (dedups plus eligibility hits per
	// event) of sorted batches — and batch sequence counters that pace
	// re-probing once a policy is judged useless. Racy updates are fine —
	// the policies are heuristic.
	memoRate     atomic.Uint64
	memoBatchSeq atomic.Uint64
	sortRate     atomic.Uint64
	sortBatchSeq atomic.Uint64

	// Selectivity-order effectiveness (see kernel.go step 3): kill-sorted
	// group evaluations and early exits taken. Accumulated per Scratch,
	// flushed by EndBatch like the cache counters above.
	orderSorts atomic.Int64
	earlyExits atomic.Int64

	// scratch backs the plain MatchAppend entry point (single-threaded
	// use); parallel callers bring their own via NewScratch/MatchWith.
	scratch *Scratch
}

// New returns an empty matcher.
func New(cfg Config) *Matcher {
	cfg.sanitize()
	m := &Matcher{
		cfg:      cfg,
		tree:     betree.New(cfg.Tree),
		clusters: make(map[*betree.Pool]*clusterState),
	}
	m.scratch = m.NewScratch()
	// Optimistic: arm memoization and locality sorting until measured
	// useless for the workload actually seen.
	m.memoRate.Store(memoRateOne)
	m.sortRate.Store(memoRateOne)
	return m
}

// Insert adds x to the index. If the destination pool's cluster is
// compiled and has slack, the new member is appended incrementally;
// otherwise the cluster goes stale and is recompiled lazily on its next
// match. Insert must not run concurrently with matching (see the package
// contract).
func (m *Matcher) Insert(x *expr.Expression) error {
	pool, err := m.tree.InsertPool(x)
	if err != nil {
		return err
	}
	if m.cfg.Mode == ModeUncompressed {
		return nil
	}
	m.cmu.RLock()
	cs := m.clusters[pool]
	m.cmu.RUnlock()
	if cs != nil {
		if c := cs.compiled.Load(); c != nil {
			c.tryAppend(pool, x)
		}
	}
	return nil
}

// InsertBulk adds xs to the index in order, stopping at the first
// failure; it returns the number inserted. It is Insert amortized for
// bulk restores: appended members are bucketed per destination pool and
// each compiled cluster incorporates its whole batch with a single
// generation check and revision bump (tryAppendBatch) instead of one
// per subscription. Same write contract as Insert.
func (m *Matcher) InsertBulk(xs []*expr.Expression) (int, error) {
	maintain := m.cfg.Mode != ModeUncompressed
	if maintain {
		// A cold matcher has nothing compiled, hence nothing to maintain;
		// skip the bucketing entirely (the common restore case).
		m.cmu.RLock()
		maintain = len(m.clusters) > 0
		m.cmu.RUnlock()
	}
	if !maintain {
		for i, x := range xs {
			if _, err := m.tree.InsertPool(x); err != nil {
				return i, err
			}
		}
		return len(xs), nil
	}
	inserted, ierr := len(xs), error(nil)
	var pools []*betree.Pool // distinct destination pools, first-touch order
	byPool := make(map[*betree.Pool][]*expr.Expression)
	for i, x := range xs {
		p, err := m.tree.InsertPool(x)
		if err != nil {
			inserted, ierr = i, err
			break
		}
		if _, ok := byPool[p]; !ok {
			pools = append(pools, p)
		}
		byPool[p] = append(byPool[p], x)
	}
	m.cmu.RLock()
	for _, p := range pools {
		if cs := m.clusters[p]; cs != nil {
			if c := cs.compiled.Load(); c != nil {
				c.tryAppendBatch(p, byPool[p])
			}
		}
	}
	m.cmu.RUnlock()
	return inserted, ierr
}

// Delete removes the expression with the given id. A compiled cluster
// tombstones the member in place when possible instead of recompiling.
func (m *Matcher) Delete(id expr.ID) bool {
	pool, ok := m.tree.DeletePool(id)
	if !ok {
		return false
	}
	if m.cfg.Mode != ModeUncompressed {
		m.cmu.RLock()
		cs := m.clusters[pool]
		m.cmu.RUnlock()
		if cs != nil {
			if c := cs.compiled.Load(); c != nil {
				c.tryTombstone(pool, id)
			}
		}
	}
	return true
}

// Size returns the number of indexed expressions.
func (m *Matcher) Size() int { return m.tree.Size() }

// ForEach visits every indexed expression. Must not run concurrently
// with Insert or Delete.
func (m *Matcher) ForEach(fn func(*expr.Expression) bool) { m.tree.ForEach(fn) }

// MatchAppend appends the ids of all matching expressions to dst. It
// uses the matcher's internal scratch and is therefore not reentrant;
// concurrent matchers must use MatchWith with their own Scratch.
func (m *Matcher) MatchAppend(dst []expr.ID, e *expr.Event) []expr.ID {
	return m.MatchWith(m.scratch, dst, e)
}

// Scratch holds per-goroutine match state: the survivor bitset and the
// candidate pool list. Obtain with NewScratch; never share between
// concurrent matchers.
type Scratch struct {
	kern     kernelScratch
	pools    []*betree.Pool
	probeIDs []expr.ID // probe-time scan results, discarded after costing
}

// NewScratch returns a Scratch for use with MatchWith.
func (m *Matcher) NewScratch() *Scratch { return &Scratch{} }

// MatchWith appends the ids of all matching expressions to dst, using s
// for temporary state. Safe for concurrent use with distinct Scratch
// values, provided no Insert/Delete runs concurrently.
func (m *Matcher) MatchWith(s *Scratch, dst []expr.ID, e *expr.Event) []expr.ID {
	s.pools = m.tree.CollectPoolsAppend(s.pools[:0], e)
	for _, p := range s.pools {
		dst = m.MatchPool(s, dst, p, e)
	}
	return dst
}

// CollectPools appends the candidate pools for e to dst and returns it;
// the parallel engine shards the result across workers and calls
// MatchPool per pool.
func (m *Matcher) CollectPools(dst []*betree.Pool, e *expr.Event) []*betree.Pool {
	return m.tree.CollectPoolsAppend(dst, e)
}

// MatchPool matches e against a single candidate pool, appending matches
// to dst. Safe for concurrent use with distinct Scratch values.
func (m *Matcher) MatchPool(s *Scratch, dst []expr.ID, p *betree.Pool, e *expr.Event) []expr.ID {
	if m.cfg.Mode == ModeUncompressed || len(p.Exprs) < m.cfg.MinCompressSize {
		dst, _ = scanPool(&s.kern, p.Exprs, e, dst)
		return dst
	}
	cs := m.clusterFor(p)
	switch m.cfg.Mode {
	case ModeCompressed:
		dst, _ = cs.compiled.Load().matchCompressed(&s.kern, e, dst)
		return dst
	default:
		return m.matchAdaptive(cs, s, dst, p, e)
	}
}

// clusterFor returns an up-to-date cluster state for p, compiling it if
// missing or stale.
func (m *Matcher) clusterFor(p *betree.Pool) *clusterState {
	m.cmu.RLock()
	cs := m.clusters[p]
	m.cmu.RUnlock()
	if cs != nil {
		if c := cs.compiled.Load(); c != nil && c.gen == p.Gen && !c.needsRebuild() {
			return cs
		}
	}
	m.cmu.Lock()
	defer m.cmu.Unlock()
	cs = m.clusters[p]
	if cs == nil {
		cs = newClusterState()
		m.clusters[p] = cs
	}
	if c := cs.compiled.Load(); c == nil || c.gen != p.Gen || c.needsRebuild() {
		cs.compiled.Store(compileOpts(p, m.cfg.layout()))
	}
	return cs
}

// Stats summarises compression across all clusters compiled so far.
type Stats struct {
	Tree              betree.Stats
	CompiledClusters  int
	MemberSlots       int // Σ cluster members
	PredicateSlots    int // Σ per-member predicates (uncompressed volume)
	DistinctPreds     int // Σ dictionary entries (compressed volume)
	CompressedBytes   int64
	ArenaBytes        int64 // Σ cluster arena slab bytes (see internal/core/arena.go)
	CompressedServing int   // clusters currently routed to the compressed kernel

	// Density-adaptive layout tallies (see compile.go finalize): chosen
	// posting representations, sparse volume, and flat equality tables.
	DensePostings     int
	SparsePostings    int
	SparseMemberSlots int // Σ ids held by sparse postings
	EqFlatTables      int
	EqFlatSlots       int // Σ value slots across flat tables

	// Adaptive-policy counters, cumulative since matcher creation.
	Probes              int64 // events served by both kernels for costing
	FlipsToCompressed   int64 // cluster re-decisions toward the compressed kernel
	FlipsToUncompressed int64 // cluster re-decisions toward the scan kernel

	// Selectivity-order counters, flushed by EndBatch.
	GroupOrderSorts      int64 // group loops evaluated in kill order
	GroupOrderEarlyExits int64 // group loops exited on an emptied alive set
}

// CompressionRatio is PredicateSlots / DistinctPreds: how many predicate
// evaluations each dictionary evaluation replaces.
func (s Stats) CompressionRatio() float64 {
	if s.DistinctPreds == 0 {
		return 0
	}
	return float64(s.PredicateSlots) / float64(s.DistinctPreds)
}

// AdaptiveCounters reports the cumulative adaptive-policy counters
// without touching the cluster map — cheap enough for metric scrapes.
func (m *Matcher) AdaptiveCounters() (probes, flipsToCompressed, flipsToUncompressed int64) {
	return m.probes.Load(), m.flipsC.Load(), m.flipsU.Load()
}

// Stats returns current compression statistics. It compiles nothing; only
// clusters visited by earlier matches are counted.
func (m *Matcher) Stats() Stats {
	st := Stats{
		Tree:                 m.tree.Stats(),
		Probes:               m.probes.Load(),
		FlipsToCompressed:    m.flipsC.Load(),
		FlipsToUncompressed:  m.flipsU.Load(),
		GroupOrderSorts:      m.orderSorts.Load(),
		GroupOrderEarlyExits: m.earlyExits.Load(),
	}
	m.cmu.RLock()
	defer m.cmu.RUnlock()
	for _, cs := range m.clusters {
		c := cs.compiled.Load()
		st.CompiledClusters++
		st.MemberSlots += c.live()
		st.PredicateSlots += c.predSlots
		st.DistinctPreds += c.distinctPreds
		st.CompressedBytes += c.memoryBytes()
		st.ArenaBytes += c.arenaBytes()
		t := c.tally()
		st.DensePostings += t.Dense
		st.SparsePostings += t.Sparse
		st.SparseMemberSlots += t.SparseMembers
		st.EqFlatTables += t.EqFlatTables
		st.EqFlatSlots += t.EqFlatSlots
		if cs.mode.Load() == int32(kernelCompressed) {
			st.CompressedServing++
		}
	}
	return st
}

// OrderCounters reports the cumulative selectivity-order counters
// without touching the cluster map — cheap enough for metric scrapes.
// Like the batch cache counters they are flushed by EndBatch, so
// in-flight batches are not yet visible.
func (m *Matcher) OrderCounters() (sorts, earlyExits int64) {
	return m.orderSorts.Load(), m.earlyExits.Load()
}

// ClusterInfo describes one compiled cluster for diagnostics.
type ClusterInfo struct {
	Members       int // slots in use (live + tombstoned)
	Live          int
	Tombstones    int
	Attrs         int // cluster-local attribute universe size
	PredSlots     int
	DistinctPreds int
	MemBytes      int64
	Compressed    bool // currently routed to the compressed kernel
	// Cost estimates from adaptive probes, ns/event (0 before any probe).
	EwmaCompressedNs float64
	EwmaScanNs       float64
	// Density-adaptive layout decisions (see compile.go finalize).
	DensePostings     int
	SparsePostings    int
	SparseMemberSlots int
	EqFlatTables      int
	EqFlatSlots       int
	// PostingHist is a log2-bucketed posting-density histogram: bucket i
	// counts postings with member count in [2^(i-1), 2^i).
	PostingHist [12]int
}

// Clusters snapshots every compiled cluster's diagnostics.
func (m *Matcher) Clusters() []ClusterInfo {
	m.cmu.RLock()
	defer m.cmu.RUnlock()
	out := make([]ClusterInfo, 0, len(m.clusters))
	for _, cs := range m.clusters {
		c := cs.compiled.Load()
		ewmaC, ewmaU, mode := cs.estimates()
		t := c.tally()
		out = append(out, ClusterInfo{
			Members:           c.n,
			Live:              c.live(),
			Tombstones:        c.tombs,
			Attrs:             c.nAttrs,
			PredSlots:         c.predSlots,
			DistinctPreds:     c.distinctPreds,
			MemBytes:          c.memoryBytes(),
			Compressed:        mode == kernelCompressed,
			EwmaCompressedNs:  ewmaC,
			EwmaScanNs:        ewmaU,
			DensePostings:     t.Dense,
			SparsePostings:    t.Sparse,
			SparseMemberSlots: t.SparseMembers,
			EqFlatTables:      t.EqFlatTables,
			EqFlatSlots:       t.EqFlatSlots,
			PostingHist:       t.Hist,
		})
	}
	return out
}

// PrepareAll eagerly compiles every pool large enough to compress, so
// that first-match latency excludes compilation (benchmarks call this
// after loading).
func (m *Matcher) PrepareAll() {
	if m.cfg.Mode == ModeUncompressed {
		return
	}
	m.tree.Pools(func(p *betree.Pool) {
		if len(p.Exprs) >= m.cfg.MinCompressSize {
			m.clusterFor(p)
		}
	})
}

// PrepareAllWith is PrepareAll with the compilations fanned out through
// run (typically sched.Pool.Run): each pool compiles independently into
// its own arena, so after a bulk restore — where compilation is the
// dominant remaining cold-start cost — the compiles parallelize
// cleanly. run must execute fn(worker, i) for every i in [0, n) and
// return only when all have completed. Same write contract as
// PrepareAll: no concurrent matchers or writers.
func (m *Matcher) PrepareAllWith(run func(n int, fn func(worker, idx int))) {
	if m.cfg.Mode == ModeUncompressed {
		return
	}
	var todo []*betree.Pool
	m.cmu.RLock()
	m.tree.Pools(func(p *betree.Pool) {
		if len(p.Exprs) < m.cfg.MinCompressSize {
			return
		}
		if cs := m.clusters[p]; cs != nil {
			if c := cs.compiled.Load(); c != nil && c.gen == p.Gen && !c.needsRebuild() {
				return
			}
		}
		todo = append(todo, p)
	})
	m.cmu.RUnlock()
	if len(todo) == 0 {
		return
	}
	built := make([]*compiled, len(todo))
	lo := m.cfg.layout()
	run(len(todo), func(_, i int) {
		built[i] = compileOpts(todo[i], lo)
	})
	m.cmu.Lock()
	for i, p := range todo {
		cs := m.clusters[p]
		if cs == nil {
			cs = newClusterState()
			m.clusters[p] = cs
		}
		cs.compiled.Store(built[i])
	}
	m.cmu.Unlock()
}

// MemBytes estimates the total heap footprint: tree plus compiled
// clusters.
func (m *Matcher) MemBytes() int64 {
	b := m.tree.MemBytes()
	m.cmu.RLock()
	defer m.cmu.RUnlock()
	for _, cs := range m.clusters {
		b += cs.compiled.Load().memoryBytes()
	}
	return b
}
