package core

import (
	"sync"
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/betree"
	"github.com/streammatch/apcm/internal/match"
	"github.com/streammatch/apcm/internal/matchtest"
	"github.com/streammatch/apcm/workload"
)

func cfgWithMode(mode Mode) Config {
	c := DefaultConfig()
	c.Mode = mode
	return c
}

func TestConformanceAdaptive(t *testing.T) {
	matchtest.RunConformance(t, func() match.Matcher { return New(cfgWithMode(ModeAdaptive)) })
}

func TestConformanceCompressed(t *testing.T) {
	matchtest.RunConformance(t, func() match.Matcher { return New(cfgWithMode(ModeCompressed)) })
}

func TestConformanceUncompressed(t *testing.T) {
	matchtest.RunConformance(t, func() match.Matcher { return New(cfgWithMode(ModeUncompressed)) })
}

func TestConformanceSmallPoolsAggressiveProbe(t *testing.T) {
	// Small pools, probe on almost every event, tiny compression
	// threshold: stresses the probe/recompile interleaving.
	matchtest.RunConformance(t, func() match.Matcher {
		return New(Config{
			Mode:            ModeAdaptive,
			Tree:            betree.Config{MaxPool: 4},
			MinCompressSize: 2,
			ProbeInterval:   2,
			Decay:           0.5,
		})
	})
}

func TestConfigSanitize(t *testing.T) {
	m := New(Config{})
	if m.cfg.Tree.MaxPool <= 0 || m.cfg.MinCompressSize <= 1 ||
		m.cfg.ProbeInterval <= 0 || m.cfg.Decay <= 0 || m.cfg.Decay >= 1 {
		t.Fatalf("config not sanitized: %+v", m.cfg)
	}
}

func TestModeString(t *testing.T) {
	if ModeAdaptive.String() != "A-PCM" || ModeCompressed.String() != "PCM" ||
		ModeUncompressed.String() != "uncompressed" {
		t.Fatal("mode names changed; benchmark tables depend on them")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatalf("unknown mode string = %q", Mode(9).String())
	}
}

// redundantWorkload produces many expressions drawn from a small
// predicate pool: the compression sweet spot.
func redundantWorkload(seed int64) *workload.Generator {
	p := workload.Default()
	p.Seed = seed
	p.NumAttrs = 30
	p.Cardinality = 100
	p.EventAttrs = 10
	p.PredPoolSize = 4
	p.MatchFraction = 0.2
	return workload.MustNew(p)
}

func TestCompressionStats(t *testing.T) {
	g := redundantWorkload(1)
	m := New(cfgWithMode(ModeCompressed))
	for _, x := range g.Expressions(3000) {
		if err := m.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	m.PrepareAll()
	st := m.Stats()
	if st.CompiledClusters == 0 {
		t.Fatal("PrepareAll compiled nothing")
	}
	if st.PredicateSlots <= st.DistinctPreds {
		t.Fatalf("no redundancy captured: slots=%d distinct=%d", st.PredicateSlots, st.DistinctPreds)
	}
	if st.CompressionRatio() < 1.5 {
		t.Fatalf("compression ratio %0.2f implausibly low for a pooled workload", st.CompressionRatio())
	}
	if st.CompressedBytes <= 0 {
		t.Fatal("compressed bytes not accounted")
	}
	if m.MemBytes() < st.CompressedBytes {
		t.Fatal("MemBytes should include compressed clusters")
	}
}

func TestStatsEmptyRatio(t *testing.T) {
	var st Stats
	if st.CompressionRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
}

func TestLazyRecompilationAfterUpdate(t *testing.T) {
	m := New(Config{Mode: ModeCompressed, Tree: betree.Config{MaxPool: 1 << 20}, MinCompressSize: 2})
	for i := 1; i <= 50; i++ {
		if err := m.Insert(expr.MustNew(expr.ID(i), expr.Eq(1, expr.Value(i%5)))); err != nil {
			t.Fatal(err)
		}
	}
	ev := expr.MustEvent(expr.P(1, 3))
	got := m.MatchAppend(nil, ev)
	if len(got) == 0 {
		t.Fatal("expected matches before update")
	}
	// Mutate after compilation: delete one matching id and insert another.
	if !m.Delete(got[0]) {
		t.Fatal("delete failed")
	}
	if err := m.Insert(expr.MustNew(1000, expr.Eq(1, 3))); err != nil {
		t.Fatal(err)
	}
	got2 := m.MatchAppend(nil, ev)
	if len(got2) != len(got) {
		t.Fatalf("stale cluster served: got %d matches, want %d", len(got2), len(got))
	}
	found := false
	for _, id := range got2 {
		if id == 1000 {
			found = true
		}
		if id == got[0] {
			t.Fatalf("deleted id %d still matching", got[0])
		}
	}
	if !found {
		t.Fatal("newly inserted id not matching")
	}
}

func TestAdaptiveChoosesCompressedOnRedundantClusters(t *testing.T) {
	g := redundantWorkload(7)
	m := New(cfgWithMode(ModeAdaptive))
	for _, x := range g.Expressions(4000) {
		if err := m.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range g.Events(2000) {
		m.MatchAppend(nil, e)
	}
	st := m.Stats()
	if st.CompiledClusters == 0 {
		t.Fatal("no clusters compiled")
	}
	if st.CompressedServing == 0 {
		t.Fatal("adaptive matcher never chose the compressed kernel on a redundant workload")
	}
}

func TestAdaptiveChoosesScanOnHeterogeneousSelectiveClusters(t *testing.T) {
	// Compression-hostile regime: every predicate is a distinct wide
	// range (no redundancy, nothing for the equality-union to exploit),
	// and events cover the whole attribute space so eligibility cannot
	// prune. The compressed kernel must evaluate its entire dictionary
	// and OR a bitset per satisfied entry, while the scan kernel
	// short-circuits after a couple of predicates per member.
	p := workload.Default()
	p.NumAttrs = 10
	p.EventAttrs = 10
	p.Cardinality = 10000
	p.PredPoolSize = 0
	p.MatchFraction = 0
	p.PredsMin, p.PredsMax = 6, 9
	p.WEquality, p.WRange, p.WMembership, p.WNegated = 0, 1, 0, 0
	p.RangeWidthFrac = 0.5
	g := workload.MustNew(p)
	m := New(cfgWithMode(ModeAdaptive))
	for _, x := range g.Expressions(3000) {
		if err := m.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range g.Events(2000) {
		m.MatchAppend(nil, e)
	}
	st := m.Stats()
	if st.CompiledClusters == 0 {
		t.Fatal("no clusters compiled")
	}
	if st.CompressedServing == st.CompiledClusters {
		t.Fatal("adaptive matcher never fell back to the scan kernel on an adversarial workload")
	}
}

func TestAdaptiveTracksEstimates(t *testing.T) {
	m := New(Config{
		Mode:            ModeAdaptive,
		Tree:            betree.Config{MaxPool: 1 << 20},
		MinCompressSize: 2,
		ProbeInterval:   4,
		Decay:           0.5,
	})
	for i := 1; i <= 100; i++ {
		if err := m.Insert(expr.MustNew(expr.ID(i), expr.Eq(1, expr.Value(i%3)))); err != nil {
			t.Fatal(err)
		}
	}
	ev := expr.MustEvent(expr.P(1, 1))
	for i := 0; i < 50; i++ {
		m.MatchAppend(nil, ev)
	}
	m.cmu.RLock()
	defer m.cmu.RUnlock()
	if len(m.clusters) != 1 {
		t.Fatalf("expected 1 cluster, have %d", len(m.clusters))
	}
	for _, cs := range m.clusters {
		c, u, _ := cs.estimates()
		if c == 0 || u == 0 {
			t.Fatalf("estimates not populated: ewmaC=%f ewmaU=%f", c, u)
		}
	}
}

func TestConcurrentMatchersShareClusters(t *testing.T) {
	g := redundantWorkload(3)
	m := New(cfgWithMode(ModeAdaptive))
	xs := g.Expressions(2000)
	for _, x := range xs {
		if err := m.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	events := g.Events(400)
	oracleCounts := make([]int, len(events))
	for i, e := range events {
		for _, x := range xs {
			if x.MatchesEvent(e) {
				oracleCounts[i]++
			}
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := m.NewScratch()
			var dst []expr.ID
			for i, e := range events {
				dst = m.MatchWith(s, dst[:0], e)
				if len(dst) != oracleCounts[i] {
					errs <- "concurrent match diverged from oracle"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestPrepareAllNoopsWhenUncompressed(t *testing.T) {
	m := New(cfgWithMode(ModeUncompressed))
	for i := 1; i <= 100; i++ {
		if err := m.Insert(expr.MustNew(expr.ID(i), expr.Eq(1, expr.Value(i)))); err != nil {
			t.Fatal(err)
		}
	}
	m.PrepareAll()
	if st := m.Stats(); st.CompiledClusters != 0 {
		t.Fatalf("uncompressed mode compiled %d clusters", st.CompiledClusters)
	}
}

func TestCompressedKernelCheaperOnRedundantCluster(t *testing.T) {
	// Direct kernel cost comparison on a highly redundant pool.
	pool := &betree.Pool{}
	for i := 1; i <= 512; i++ {
		pool.Exprs = append(pool.Exprs, expr.MustNew(expr.ID(i),
			expr.Eq(1, expr.Value(i%2)), expr.Eq(2, expr.Value(i%3)), expr.Eq(3, expr.Value(i%2))))
	}
	c := compile(pool)
	var ab kernelScratch
	ev := expr.MustEvent(expr.P(1, 0), expr.P(2, 1), expr.P(3, 1))
	gotC, costC := c.matchCompressed(&ab, ev, nil)
	gotU, costU := scanPool(&ab, pool.Exprs, ev, nil)
	if len(gotC) != len(gotU) {
		t.Fatalf("kernels disagree: %d vs %d matches", len(gotC), len(gotU))
	}
	if costC >= costU {
		t.Fatalf("compressed kernel not cheaper on redundant cluster: %d vs %d", costC, costU)
	}
}

func TestCompressedKernelEarlyExit(t *testing.T) {
	// Every member requires attr 9, absent from the event: one AND-NOT
	// should empty the survivor set and exit.
	pool := &betree.Pool{}
	for i := 1; i <= 64; i++ {
		pool.Exprs = append(pool.Exprs, expr.MustNew(expr.ID(i),
			expr.Eq(9, 1), expr.Eq(1, expr.Value(i))))
	}
	c := compile(pool)
	var ab kernelScratch
	got, cost := c.matchCompressed(&ab, expr.MustEvent(expr.P(1, 3)), nil)
	if len(got) != 0 {
		t.Fatalf("unexpected matches %v", got)
	}
	// Groups are attr-sorted, so attr 1's dictionary (64 entries) is
	// evaluated first; the early exit then fires on attr 9's miss.
	// Cost must still be far below evaluating per-member predicates.
	if _, full := scanPool(&ab, pool.Exprs, expr.MustEvent(expr.P(1, 3)), nil); cost > full {
		t.Fatalf("early exit missing: compressed cost %d vs scan %d", cost, full)
	}
}

func TestCompileDedupesAcrossMembers(t *testing.T) {
	pool := &betree.Pool{Gen: 42}
	for i := 1; i <= 100; i++ {
		pool.Exprs = append(pool.Exprs, expr.MustNew(expr.ID(i), expr.Eq(1, 7), expr.Rng(2, 0, 9)))
	}
	c := compile(pool)
	if c.gen != 42 {
		t.Fatalf("gen = %d", c.gen)
	}
	if c.predSlots != 200 {
		t.Fatalf("predSlots = %d", c.predSlots)
	}
	if c.distinctPreds != 2 {
		t.Fatalf("distinctPreds = %d, want 2", c.distinctPreds)
	}
	if len(c.groups) != 2 || c.nAttrs != 2 {
		t.Fatalf("groups malformed: %d groups, %d attrs", len(c.groups), c.nAttrs)
	}
	li, ok := c.attrIdx[1]
	if !ok {
		t.Fatal("attribute 1 missing from cluster universe")
	}
	g := &c.groups[li]
	if g.attrBits.Count() != 100 {
		t.Fatalf("attrBits count = %d", g.attrBits.Count())
	}
	// All 100 members share Eq(1,7): one equality-union entry.
	if len(g.eqUnion) != 1 || g.eqUnion[7] == nil || g.eqUnion[7].Count() != 100 {
		t.Fatalf("eqUnion malformed: %v", g.eqUnion)
	}
	// Attr 2 carries the shared Between as a single first-dictionary entry.
	g2 := &c.groups[c.attrIdx[2]]
	if len(g2.first) != 1 || g2.first[0].bits.Count() != 100 {
		t.Fatalf("first dictionary malformed: %+v", g2.first)
	}
}

func TestCompileStrictPredicates(t *testing.T) {
	// Two predicates on one attribute: the second lands in the strict
	// dictionary and must still gate matching.
	pool := &betree.Pool{}
	for i := 1; i <= 10; i++ {
		pool.Exprs = append(pool.Exprs, expr.MustNew(expr.ID(i),
			expr.Gt(1, 3), expr.Lt(1, 10)))
	}
	c := compile(pool)
	g := &c.groups[c.attrIdx[1]]
	if len(g.strict) != 1 {
		t.Fatalf("strict dictionary has %d entries, want 1", len(g.strict))
	}
	var ks kernelScratch
	if got, _ := c.matchCompressed(&ks, expr.MustEvent(expr.P(1, 5)), nil); len(got) != 10 {
		t.Fatalf("value inside both bounds matched %d of 10", len(got))
	}
	if got, _ := c.matchCompressed(&ks, expr.MustEvent(expr.P(1, 12)), nil); len(got) != 0 {
		t.Fatalf("value above the strict bound matched %d", len(got))
	}
	if got, _ := c.matchCompressed(&ks, expr.MustEvent(expr.P(1, 2)), nil); len(got) != 0 {
		t.Fatalf("value below the first bound matched %d", len(got))
	}
}

func TestEligibilityKillsMissingAttrMembers(t *testing.T) {
	// Half the members constrain an attribute the event lacks; only the
	// other half can match, without the kernel touching absent groups.
	pool := &betree.Pool{}
	for i := 1; i <= 32; i++ {
		pool.Exprs = append(pool.Exprs, expr.MustNew(expr.ID(i), expr.Ge(1, 0)))
	}
	for i := 33; i <= 64; i++ {
		pool.Exprs = append(pool.Exprs, expr.MustNew(expr.ID(i), expr.Ge(1, 0), expr.Eq(2, 1)))
	}
	c := compile(pool)
	var ks kernelScratch
	got, _ := c.matchCompressed(&ks, expr.MustEvent(expr.P(1, 5)), nil)
	if len(got) != 32 {
		t.Fatalf("got %d matches, want 32", len(got))
	}
	for _, id := range got {
		if id > 32 {
			t.Fatalf("ineligible member %d matched", id)
		}
	}
}
