package core

import (
	"math/bits"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/bitset"
)

// Kernel cost model, in abstract work units. A predicate evaluation (a
// Matches call: branchy switch, possible set probe) is weighted against
// word-wide bitset operations; the adaptive policy only ever compares
// the two kernels' totals, so relative weights are what matter.
const (
	costPredEval     = 4 // one Predicate.Matches call (or one hash probe)
	costWordOp       = 1 // one 64-bit word of bitset work
	costExprLoop     = 1 // per-expression loop overhead in the scan kernel
	costSparseMember = 1 // one listed member of a sparse posting (test/clear)
)

// eligCacheMinWork gates the eligibility cache: for clusters whose
// eligibility sweep is under this many words the map probe costs as much
// as the sweep it would save.
const eligCacheMinWork = 64

// kernelScratch holds reusable per-goroutine kernel state. Survivor and
// satisfied bitsets must match the cluster's member count exactly, so
// they are kept per size; distinct cluster sizes are few in practice.
type kernelScratch struct {
	// Two-entry inline cache in front of bySize: a match sweep visits
	// runs of same-capacity clusters, and the map hash was measurable per
	// matchCompressed call on small clusters. Capacity 0 never occurs
	// (slackCapacity rounds up to 64), so the zero value misses cleanly.
	b1n, b2n int
	b1, b2   *buffers
	bySize   map[int]*buffers

	present []uint64   // attribute-present mask over the cluster-local universe
	hits    []groupHit // present groups for the current event

	// firstHits collects the matched non-equality first postings of the
	// group in flight, so the single-posting cases can skip building the
	// satisfied union entirely.
	firstHits []*bitset.Posting

	// eligIds collects the members found eligible by the candidate pass;
	// alive is materialised from it only when it is non-empty (the common
	// selective case skips the bitset entirely).
	eligIds []int32

	vt   valueTable // dense attr → value table for the current event
	memo predMemo   // cross-event predicate memo, armed per batch
	elig eligCache  // per-cluster eligibility cache keyed (rev, present)

	memoOn bool
	eligOn bool // set for locality-sorted batches (see MatchBatchAppend)

	// batchEvents is the size of the batch in flight; EndBatch uses it to
	// turn the reuse counters below into the sort-arming ratio.
	batchEvents int64

	// Cache effectiveness counters, accumulated locally (the hot path
	// must stay atomic-free) and flushed to the Matcher by EndBatch on
	// the batch path or FlushOrderCounters on scratch release.
	memoHits, memoLookups int64
	eligHits, eligLookups int64
	dedups                int64
	// Selectivity-order counters: kill-sorted group evaluations and
	// early exits taken before the group loop finished.
	orderSorts, earlyExits int64
}

type buffers struct {
	alive *bitset.Bitset
	sat   *bitset.Bitset
	// mark holds the candidate-eligibility occurrence counters, packed
	// epoch<<16 | count so one random access carries both the stamp and
	// the count (epoch-stamping replaces a clear per event). The 16-bit
	// epoch wraps every 64k events, at which point mark is cleared.
	mark  []uint32
	epoch uint32
}

type groupHit struct {
	local int32
	val   expr.Value
	kill  uint32 // groupKill estimate loaded for the kill-order sort
}

func (s *kernelScratch) get(n int) *buffers {
	if n == s.b1n {
		return s.b1
	}
	if n == s.b2n {
		s.b1, s.b2 = s.b2, s.b1
		s.b1n, s.b2n = s.b2n, s.b1n
		return s.b1
	}
	if s.bySize == nil {
		s.bySize = make(map[int]*buffers)
	}
	b := s.bySize[n]
	if b == nil {
		b = &buffers{
			alive: bitset.New(n),
			sat:   bitset.New(n),
			mark:  make([]uint32, n),
		}
		s.bySize[n] = b
	}
	s.b2, s.b2n = s.b1, s.b1n
	s.b1, s.b1n = b, n
	return b
}

// predMatches evaluates one distinct dictionary predicate against the
// event value, going through the per-batch memo when armed. The memo key
// is (cluster revision, entry sequence, value): revisions change on every
// cluster mutation, so a hit can never be stale.
//
//apcm:hotpath
func (s *kernelScratch) predMatches(rev uint64, e *dictEntry, val expr.Value) bool {
	if !s.memoOn {
		return e.pred.Matches(val)
	}
	s.memoLookups++
	key := uint64(e.seq)<<32 | uint64(uint32(val))
	if res, ok, slot := s.memo.find(rev, key); ok {
		s.memoHits++
		return res
	} else {
		res = e.pred.Matches(val)
		s.memo.put(slot, rev, key, res)
		return res
	}
}

// matchCompressed runs the compressed kernel:
//
//  1. Resolve the event's attributes against the cluster's local
//     universe with a merge-join of the two sorted attribute lists and
//     build the present mask (no hashing; both sides are sorted).
//  2. Eligibility: one masked word-compare per member kills everyone
//     constraining an attribute the event lacks, without touching the
//     absent groups themselves. Consecutive events with the same
//     attribute set — the common case after OSR — hit the per-cluster
//     eligibility cache and skip the sweep entirely.
//  3. Per present group, in descending estimated-kill order (groupKill):
//     one equality probe (flat table or map) plus evaluation of the
//     distinct non-equality predicates (memoized across the batch)
//     yields the satisfied union; alive &= satisfied | ^attrBits, where
//     sparse groups touch only their listed members. Failed strict
//     predicates AND-NOT out individually. Dense ops report emptiness
//     exactly, so the loop exits as soon as alive hits zero — the kill
//     order exists to make that happen in as few groups as possible.
//
// Returns the appended dst and the work units spent.
//
//apcm:hotpath
func (c *compiled) matchCompressed(s *kernelScratch, e *expr.Event, dst []expr.ID) ([]expr.ID, int) {
	return c.matchHybrid(s, e, dst, false)
}

// matchHybrid is matchCompressed with an optional measurement mode:
// adaptive probes pass measure=true, which counts the members each
// present group actually killed and folds them into the groupKill EWMAs.
// The popcounts are paid only on probe events.
//
//apcm:hotpath
func (c *compiled) matchHybrid(s *kernelScratch, e *expr.Event, dst []expr.ID, measure bool) ([]expr.ID, int) {
	bufs := s.get(c.capN)
	alive, sat := bufs.alive, bufs.sat
	cost := 0

	// Step 1: present mask and group hits, by merge-join.
	if cap(s.present) < c.awords {
		s.present = make([]uint64, c.awords)
	}
	present := s.present[:c.awords]
	for i := range present {
		present[i] = 0
	}
	s.hits = s.hits[:0]
	pairs := e.Pairs()
	if dir := c.attrDirect; dir != nil {
		// Flat attribute dictionary: one bounds check and an array load
		// per event pair, independent of the universe width.
		cost += len(pairs) * costWordOp
		lo0 := int64(c.attrLo)
		for i := range pairs {
			d := int64(pairs[i].Attr) - lo0
			if uint64(d) >= uint64(len(dir)) {
				continue
			}
			li := dir[d]
			if li < 0 {
				continue
			}
			present[li>>6] |= 1 << (uint(li) & 63)
			s.hits = append(s.hits, groupHit{local: li, val: pairs[i].Val})
		}
	} else {
		ca := c.attrs
		cost += (len(pairs) + len(ca)) * costWordOp
		for i, j := 0, 0; i < len(pairs) && j < len(ca); {
			a, b := pairs[i].Attr, ca[j]
			switch {
			case a == b:
				li := c.attrLocal[j]
				present[li>>6] |= 1 << (uint(li) & 63)
				s.hits = append(s.hits, groupHit{local: li, val: pairs[i].Val})
				i++
				j++
			case a < b:
				i++
			default:
				j++
			}
		}
	}
	if len(s.hits) == 0 {
		return dst, cost
	}

	// Step 2: eligibility. A member survives iff its attribute mask is
	// covered by the present mask. An empty eligible set exits at once,
	// and a sparse one makes the group loop's early exit bite sooner.
	// The cache is only consulted for locality-sorted batches (eligOn):
	// without sorted adjacency the entry almost never matches, and the
	// probe-plus-store would be pure overhead on every visit.
	var ce *eligEntry
	cached := false
	if s.eligOn && c.n*c.awords >= eligCacheMinWork {
		s.eligLookups++
		ce = s.elig.entry(c.rev)
		if ce.matches(present) {
			s.eligHits++
			if !ce.any {
				return dst, cost
			}
			copy(alive.Words(), ce.words)
			cost += c.words * costWordOp
			cached = true
			ce = nil // nothing to store
		}
	}
	if !cached {
		// Candidate-driven eligibility: an eligible member has every one
		// of its attributes present, so it appears in the attrBits posting
		// of each present group. When those postings are all sparse and
		// their combined membership is smaller than the full mask sweep,
		// enumerating them visits only members that can possibly survive —
		// on heterogeneous clusters (many rare attributes) that is a
		// handful of counter bumps instead of n mask checks.
		cand := 0
		for i := range s.hits {
			ab := c.groups[s.hits[i].local].attrBits
			if !ab.IsSparse() {
				cand = -1
				break
			}
			cand += ab.Count()
		}
		anyAlive := false
		if cand >= 0 && cand*(c.awords+2) < c.n*c.awords {
			// Count occurrences instead of re-checking masks: a member is
			// eligible exactly when every one of its groups was visited,
			// i.e. when its occurrence count reaches its distinct
			// constrained-attribute count. Tombstoned members carry an
			// unreachable count and can never trip the equality.
			cost += cand * 2 * costSparseMember
			bufs.epoch++
			if bufs.epoch&0xFFFF == 0 { // 16-bit stamp wrapped: clear stale marks
				for i := range bufs.mark {
					bufs.mark[i] = 0
				}
				bufs.epoch++
			}
			stamp := bufs.epoch << 16
			mark, ac := bufs.mark, c.attrCnt
			elig := s.eligIds[:0]
			for i := range s.hits {
				for _, id := range c.groups[s.hits[i].local].attrBits.Ids() {
					v := mark[id]
					if v&0xFFFF0000 == stamp {
						v++
					} else {
						v = stamp | 1
					}
					mark[id] = v
					if uint16(v) == ac[id] {
						elig = append(elig, id)
					}
				}
			}
			s.eligIds = elig
			anyAlive = len(elig) > 0
			if !anyAlive && ce == nil {
				return dst, cost
			}
			alive.ClearAll()
			aw := alive.Words()
			for _, id := range elig {
				aw[id>>6] |= 1 << (uint(id) & 63)
			}
		} else {
			alive.ClearAll()
			aw := alive.Words()
			cost += c.n * c.awords * costWordOp
			for m := 0; m < c.n; m++ {
				mask := c.masks[m*c.awords : (m+1)*c.awords]
				ok := true
				for w := range mask {
					if mask[w]&^present[w] != 0 {
						ok = false
						break
					}
				}
				if ok {
					aw[m>>6] |= 1 << (uint(m) & 63)
					anyAlive = true
				}
			}
		}
		if ce != nil {
			ce.store(present, alive.Words(), anyAlive)
		}
		if !anyAlive {
			return dst, cost
		}
	}

	// Step 3: present groups, highest estimated kill first. Group effects
	// commute (each is alive &= f(group)), so any order yields the same
	// survivors; the sort only decides how soon alive can hit zero.
	// Insertion sort in place: hits are few and nearly sorted is common.
	if hits := s.hits; !c.lo.noOrder && len(hits) > 1 {
		for i := range hits {
			hits[i].kill = c.groupKill[hits[i].local].Load()
		}
		for i := 1; i < len(hits); i++ {
			h := hits[i]
			j := i
			for j > 0 && hits[j-1].kill < h.kill {
				hits[j] = hits[j-1]
				j--
			}
			hits[j] = h
		}
		s.orderSorts++
	}

	for _, h := range s.hits {
		g := &c.groups[h.local]
		before := 0
		if measure {
			before = alive.Count()
		}

		// Satisfied union inputs: the equality probe (flat table when
		// compiled, map otherwise) and the matched non-equality first
		// predicates.
		var u *bitset.Posting
		if g.eqFlat != nil {
			cost += costPredEval
			if d := int64(h.val) - int64(g.eqLo); uint64(d) < uint64(len(g.eqFlat)) {
				u = g.eqFlat[d]
			}
		} else if g.eqUnion != nil {
			cost += costPredEval
			u = g.eqUnion[h.val]
		}
		fh := s.firstHits[:0]
		for ei := range g.first {
			cost += costPredEval
			if s.predMatches(c.rev, &g.first[ei], h.val) {
				fh = append(fh, g.first[ei].bits)
			}
		}
		s.firstHits = fh

		emptied := false
		if ab := g.attrBits; ab.IsSparse() {
			// Sparse group: only the listed members are constrained, so
			// test and clear exactly those instead of sweeping words. Any
			// eq union or first posting here is sparse too (subsets of
			// attrBits cannot be denser than it), so the Test probes walk
			// tiny id lists.
			ids := ab.Ids()
			cost += len(ids) * costSparseMember
			for _, id := range ids {
				i := int(id)
				if !alive.Test(i) || (u != nil && u.Test(i)) {
					continue
				}
				dead := true
				for _, fb := range fh {
					if fb.Test(i) {
						dead = false
						break
					}
				}
				if dead {
					alive.Clear(i)
				}
			}
		} else if len(fh) == 0 {
			cost += c.words * costWordOp
			if u == nil {
				emptied = ab.AndNotInto(alive)
			} else if ud := u.Dense(); ud != nil {
				// Dense eq union: fold it in directly, skipping the sat
				// copy the general path pays.
				emptied = alive.AndUnion(ud, ab.Dense())
			} else {
				u.CopyInto(sat)
				emptied = alive.AndUnion(sat, ab.Dense())
			}
		} else {
			if u != nil {
				u.CopyInto(sat)
			} else {
				sat.ClearAll()
			}
			cost += c.words * costWordOp
			for _, fb := range fh {
				fb.OrInto(sat)
				cost += c.words * costWordOp
			}
			cost += c.words * costWordOp
			emptied = alive.AndUnion(sat, ab.Dense())
		}
		if emptied {
			s.earlyExits++
			if measure {
				c.noteKills(h.local, before)
			}
			return dst, cost
		}
		for ei := range g.strict {
			cost += costPredEval
			if !s.predMatches(c.rev, &g.strict[ei], h.val) {
				cost += c.words * costWordOp
				if g.strict[ei].bits.AndNotInto(alive) {
					s.earlyExits++
					if measure {
						c.noteKills(h.local, before)
					}
					return dst, cost
				}
			}
		}
		if measure {
			c.noteKills(h.local, before-alive.Count())
		}
	}

	// Collect survivors word-by-word (a ForEach closure would force dst
	// to escape and allocate on every call).
	aw := alive.Words()
	for wi, w := range aw {
		base := wi << 6
		for w != 0 {
			dst = append(dst, c.ids[base+bits.TrailingZeros64(w)])
			w &= w - 1
		}
	}
	return dst, cost
}

// scanPool runs the uncompressed kernel: short-circuiting interpretation
// of every pooled expression. Attribute lookups go through the scratch's
// dense value table (stamped array indexing) instead of scanning the
// event's pair list per predicate. Returns the appended dst and the work
// units spent.
//
//apcm:hotpath
func scanPool(s *kernelScratch, exprs []*expr.Expression, e *expr.Event, dst []expr.ID) ([]expr.ID, int) {
	cost := 0
	vt := &s.vt
	if !vt.ensure(e) {
		return scanPoolSlow(exprs, e, dst)
	}
	for _, x := range exprs {
		cost += costExprLoop
		matched := true
		for j := range x.Preds {
			cost += costPredEval
			p := &x.Preds[j]
			v, ok := vt.lookup(p.Attr)
			if !ok || !p.Matches(v) {
				matched = false
				break
			}
		}
		if matched {
			dst = append(dst, x.ID)
		}
	}
	return dst, cost
}

// scanPoolSlow is the fallback for events whose attribute ids exceed the
// dense-table bound; it resolves attributes against the event directly.
//
//apcm:hotpath
func scanPoolSlow(exprs []*expr.Expression, e *expr.Event, dst []expr.ID) ([]expr.ID, int) {
	cost := 0
	for _, x := range exprs {
		cost += costExprLoop
		matched := true
		for j := range x.Preds {
			cost += costPredEval
			p := &x.Preds[j]
			v, ok := e.Lookup(p.Attr)
			if !ok || !p.Matches(v) {
				matched = false
				break
			}
		}
		if matched {
			dst = append(dst, x.ID)
		}
	}
	return dst, cost
}
