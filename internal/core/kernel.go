package core

import (
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/bitset"
)

// Kernel cost model, in abstract work units. A predicate evaluation (a
// Matches call: branchy switch, possible set probe) is weighted against
// word-wide bitset operations; the adaptive policy only ever compares
// the two kernels' totals, so relative weights are what matter.
const (
	costPredEval = 4 // one Predicate.Matches call (or one hash probe)
	costWordOp   = 1 // one 64-bit word of bitset work
	costExprLoop = 1 // per-expression loop overhead in the scan kernel
)

// kernelScratch holds reusable per-goroutine kernel state. Survivor and
// satisfied bitsets must match the cluster's member count exactly, so
// they are kept per size; distinct cluster sizes are few in practice.
type kernelScratch struct {
	bySize  map[int]*buffers
	present []uint64   // attribute-present mask over the cluster-local universe
	hits    []groupHit // present groups for the current event
}

type buffers struct {
	alive *bitset.Bitset
	sat   *bitset.Bitset
}

type groupHit struct {
	local int32
	val   expr.Value
}

func (s *kernelScratch) get(n int) *buffers {
	if s.bySize == nil {
		s.bySize = make(map[int]*buffers)
	}
	b := s.bySize[n]
	if b == nil {
		b = &buffers{alive: bitset.New(n), sat: bitset.New(n)}
		s.bySize[n] = b
	}
	return b
}

// matchCompressed runs the compressed kernel:
//
//  1. Resolve the event's attributes against the cluster's local
//     universe and build the present mask (touching only the event's
//     ~tens of attributes, never the cluster's full dictionary).
//  2. Eligibility: one masked word-compare per member kills everyone
//     constraining an attribute the event lacks, without touching the
//     absent groups themselves. Starting from the eligible set keeps the
//     survivor population small, which lets the group loop exit early.
//  3. Per present group: one equality-union hash probe plus evaluation
//     of the distinct non-equality predicates yields the satisfied
//     union; alive &= satisfied | ^attrBits. Failed strict predicates
//     AND-NOT out individually.
//
// Returns the appended dst and the work units spent.
func (c *compiled) matchCompressed(s *kernelScratch, e *expr.Event, dst []expr.ID) ([]expr.ID, int) {
	bufs := s.get(c.capN)
	alive, sat := bufs.alive, bufs.sat
	cost := 0

	// Step 1: present mask and group hits.
	if cap(s.present) < c.awords {
		s.present = make([]uint64, c.awords)
	}
	present := s.present[:c.awords]
	for i := range present {
		present[i] = 0
	}
	s.hits = s.hits[:0]
	for _, pair := range e.Pairs() {
		li, ok := c.attrIdx[pair.Attr]
		cost += costPredEval // hash probe
		if !ok {
			continue
		}
		present[li>>6] |= 1 << (uint(li) & 63)
		s.hits = append(s.hits, groupHit{local: li, val: pair.Val})
	}
	if len(s.hits) == 0 {
		return dst, cost
	}

	// Step 2: eligibility. A member survives iff its attribute mask is
	// covered by the present mask. An empty eligible set exits at once,
	// and a sparse one makes the group loop's early exit bite sooner.
	alive.ClearAll()
	aw := alive.Words()
	cost += c.n * c.awords * costWordOp
	anyAlive := false
	for m := 0; m < c.n; m++ {
		mask := c.masks[m*c.awords : (m+1)*c.awords]
		ok := true
		for w := range mask {
			if mask[w]&^present[w] != 0 {
				ok = false
				break
			}
		}
		if ok {
			aw[m>>6] |= 1 << (uint(m) & 63)
			anyAlive = true
		}
	}
	if !anyAlive {
		return dst, cost
	}

	// Step 3: present groups.
	for _, h := range s.hits {
		g := &c.groups[h.local]
		// Satisfied union: equality probe plus distinct non-equality
		// first predicates.
		haveSat := false
		if g.eqUnion != nil {
			cost += costPredEval
			if u := g.eqUnion[h.val]; u != nil {
				sat.CopyFrom(u)
				haveSat = true
				cost += c.words * costWordOp
			}
		}
		if !haveSat {
			sat.ClearAll()
			cost += c.words * costWordOp
		}
		for ei := range g.first {
			cost += costPredEval
			if g.first[ei].pred.Matches(h.val) {
				sat.Or(g.first[ei].bits)
				cost += c.words * costWordOp
			}
		}
		cost += c.words * costWordOp
		if alive.AndUnion(sat, g.attrBits) {
			return dst, cost
		}
		for ei := range g.strict {
			cost += costPredEval
			if !g.strict[ei].pred.Matches(h.val) {
				cost += c.words * costWordOp
				if alive.AndNot(g.strict[ei].bits) {
					return dst, cost
				}
			}
		}
	}

	alive.ForEach(func(i int) bool {
		dst = append(dst, c.ids[i])
		return true
	})
	return dst, cost
}

// scanPool runs the uncompressed kernel: short-circuiting interpretation
// of every pooled expression. Returns the appended dst and the work
// units spent.
func scanPool(exprs []*expr.Expression, e *expr.Event, dst []expr.ID) ([]expr.ID, int) {
	cost := 0
	for _, x := range exprs {
		cost += costExprLoop
		matched := true
		for j := range x.Preds {
			cost += costPredEval
			p := &x.Preds[j]
			v, ok := e.Lookup(p.Attr)
			if !ok || !p.Matches(v) {
				matched = false
				break
			}
		}
		if matched {
			dst = append(dst, x.ID)
		}
	}
	return dst, cost
}
