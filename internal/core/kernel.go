package core

import (
	"math/bits"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/bitset"
)

// Kernel cost model, in abstract work units. A predicate evaluation (a
// Matches call: branchy switch, possible set probe) is weighted against
// word-wide bitset operations; the adaptive policy only ever compares
// the two kernels' totals, so relative weights are what matter.
const (
	costPredEval = 4 // one Predicate.Matches call (or one hash probe)
	costWordOp   = 1 // one 64-bit word of bitset work
	costExprLoop = 1 // per-expression loop overhead in the scan kernel
)

// eligCacheMinWork gates the eligibility cache: for clusters whose
// eligibility sweep is under this many words the map probe costs as much
// as the sweep it would save.
const eligCacheMinWork = 64

// kernelScratch holds reusable per-goroutine kernel state. Survivor and
// satisfied bitsets must match the cluster's member count exactly, so
// they are kept per size; distinct cluster sizes are few in practice.
type kernelScratch struct {
	bySize  map[int]*buffers
	present []uint64   // attribute-present mask over the cluster-local universe
	hits    []groupHit // present groups for the current event

	vt   valueTable // dense attr → value table for the current event
	memo predMemo   // cross-event predicate memo, armed per batch
	elig eligCache  // per-cluster eligibility cache keyed (rev, present)

	memoOn bool
	eligOn bool // set for locality-sorted batches (see MatchBatchAppend)

	// batchEvents is the size of the batch in flight; EndBatch uses it to
	// turn the reuse counters below into the sort-arming ratio.
	batchEvents int64

	// Cache effectiveness counters, accumulated locally (the hot path
	// must stay atomic-free) and flushed to the Matcher by EndBatch.
	memoHits, memoLookups int64
	eligHits, eligLookups int64
	dedups                int64
}

type buffers struct {
	alive *bitset.Bitset
	sat   *bitset.Bitset
}

type groupHit struct {
	local int32
	val   expr.Value
}

func (s *kernelScratch) get(n int) *buffers {
	if s.bySize == nil {
		s.bySize = make(map[int]*buffers)
	}
	b := s.bySize[n]
	if b == nil {
		b = &buffers{alive: bitset.New(n), sat: bitset.New(n)}
		s.bySize[n] = b
	}
	return b
}

// predMatches evaluates one distinct dictionary predicate against the
// event value, going through the per-batch memo when armed. The memo key
// is (cluster revision, entry sequence, value): revisions change on every
// cluster mutation, so a hit can never be stale.
func (s *kernelScratch) predMatches(rev uint64, e *dictEntry, val expr.Value) bool {
	if !s.memoOn {
		return e.pred.Matches(val)
	}
	s.memoLookups++
	key := uint64(e.seq)<<32 | uint64(uint32(val))
	if res, ok, slot := s.memo.find(rev, key); ok {
		s.memoHits++
		return res
	} else {
		res = e.pred.Matches(val)
		s.memo.put(slot, rev, key, res)
		return res
	}
}

// matchCompressed runs the compressed kernel:
//
//  1. Resolve the event's attributes against the cluster's local
//     universe with a merge-join of the two sorted attribute lists and
//     build the present mask (no hashing; both sides are sorted).
//  2. Eligibility: one masked word-compare per member kills everyone
//     constraining an attribute the event lacks, without touching the
//     absent groups themselves. Consecutive events with the same
//     attribute set — the common case after OSR — hit the per-cluster
//     eligibility cache and skip the sweep entirely.
//  3. Per present group: one equality-union hash probe plus evaluation
//     of the distinct non-equality predicates (memoized across the
//     batch) yields the satisfied union; alive &= satisfied | ^attrBits.
//     Failed strict predicates AND-NOT out individually.
//
// Returns the appended dst and the work units spent.
func (c *compiled) matchCompressed(s *kernelScratch, e *expr.Event, dst []expr.ID) ([]expr.ID, int) {
	bufs := s.get(c.capN)
	alive, sat := bufs.alive, bufs.sat
	cost := 0

	// Step 1: present mask and group hits, by merge-join.
	if cap(s.present) < c.awords {
		s.present = make([]uint64, c.awords)
	}
	present := s.present[:c.awords]
	for i := range present {
		present[i] = 0
	}
	s.hits = s.hits[:0]
	pairs := e.Pairs()
	ca := c.attrs
	cost += (len(pairs) + len(ca)) * costWordOp
	for i, j := 0, 0; i < len(pairs) && j < len(ca); {
		a, b := pairs[i].Attr, ca[j]
		switch {
		case a == b:
			li := c.attrLocal[j]
			present[li>>6] |= 1 << (uint(li) & 63)
			s.hits = append(s.hits, groupHit{local: li, val: pairs[i].Val})
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	if len(s.hits) == 0 {
		return dst, cost
	}

	// Step 2: eligibility. A member survives iff its attribute mask is
	// covered by the present mask. An empty eligible set exits at once,
	// and a sparse one makes the group loop's early exit bite sooner.
	// The cache is only consulted for locality-sorted batches (eligOn):
	// without sorted adjacency the entry almost never matches, and the
	// probe-plus-store would be pure overhead on every visit.
	var ce *eligEntry
	cached := false
	if s.eligOn && c.n*c.awords >= eligCacheMinWork {
		s.eligLookups++
		ce = s.elig.entry(c.rev)
		if ce.matches(present) {
			s.eligHits++
			if !ce.any {
				return dst, cost
			}
			copy(alive.Words(), ce.words)
			cost += c.words * costWordOp
			cached = true
			ce = nil // nothing to store
		}
	}
	if !cached {
		alive.ClearAll()
		aw := alive.Words()
		cost += c.n * c.awords * costWordOp
		anyAlive := false
		for m := 0; m < c.n; m++ {
			mask := c.masks[m*c.awords : (m+1)*c.awords]
			ok := true
			for w := range mask {
				if mask[w]&^present[w] != 0 {
					ok = false
					break
				}
			}
			if ok {
				aw[m>>6] |= 1 << (uint(m) & 63)
				anyAlive = true
			}
		}
		if ce != nil {
			ce.store(present, aw, anyAlive)
		}
		if !anyAlive {
			return dst, cost
		}
	}

	// Step 3: present groups.
	for _, h := range s.hits {
		g := &c.groups[h.local]
		// Satisfied union: equality probe plus distinct non-equality
		// first predicates.
		haveSat := false
		if g.eqUnion != nil {
			cost += costPredEval
			if u := g.eqUnion[h.val]; u != nil {
				sat.CopyFrom(u)
				haveSat = true
				cost += c.words * costWordOp
			}
		}
		if !haveSat {
			sat.ClearAll()
			cost += c.words * costWordOp
		}
		for ei := range g.first {
			cost += costPredEval
			if s.predMatches(c.rev, &g.first[ei], h.val) {
				sat.Or(g.first[ei].bits)
				cost += c.words * costWordOp
			}
		}
		cost += c.words * costWordOp
		if alive.AndUnion(sat, g.attrBits) {
			return dst, cost
		}
		for ei := range g.strict {
			cost += costPredEval
			if !s.predMatches(c.rev, &g.strict[ei], h.val) {
				cost += c.words * costWordOp
				if alive.AndNot(g.strict[ei].bits) {
					return dst, cost
				}
			}
		}
	}

	// Collect survivors word-by-word (a ForEach closure would force dst
	// to escape and allocate on every call).
	aw := alive.Words()
	for wi, w := range aw {
		base := wi << 6
		for w != 0 {
			dst = append(dst, c.ids[base+bits.TrailingZeros64(w)])
			w &= w - 1
		}
	}
	return dst, cost
}

// scanPool runs the uncompressed kernel: short-circuiting interpretation
// of every pooled expression. Attribute lookups go through the scratch's
// dense value table (stamped array indexing) instead of scanning the
// event's pair list per predicate. Returns the appended dst and the work
// units spent.
func scanPool(s *kernelScratch, exprs []*expr.Expression, e *expr.Event, dst []expr.ID) ([]expr.ID, int) {
	cost := 0
	vt := &s.vt
	if !vt.ensure(e) {
		return scanPoolSlow(exprs, e, dst)
	}
	for _, x := range exprs {
		cost += costExprLoop
		matched := true
		for j := range x.Preds {
			cost += costPredEval
			p := &x.Preds[j]
			v, ok := vt.lookup(p.Attr)
			if !ok || !p.Matches(v) {
				matched = false
				break
			}
		}
		if matched {
			dst = append(dst, x.ID)
		}
	}
	return dst, cost
}

// scanPoolSlow is the fallback for events whose attribute ids exceed the
// dense-table bound; it resolves attributes against the event directly.
func scanPoolSlow(exprs []*expr.Expression, e *expr.Event, dst []expr.ID) ([]expr.ID, int) {
	cost := 0
	for _, x := range exprs {
		cost += costExprLoop
		matched := true
		for j := range x.Preds {
			cost += costPredEval
			p := &x.Preds[j]
			v, ok := e.Lookup(p.Attr)
			if !ok || !p.Matches(v) {
				matched = false
				break
			}
		}
		if matched {
			dst = append(dst, x.ID)
		}
	}
	return dst, cost
}
