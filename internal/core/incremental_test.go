package core

import (
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/betree"
	"github.com/streammatch/apcm/workload"
)

// onePoolMatcher builds a matcher whose tree never splits, so everything
// lands in a single observable cluster.
func onePoolMatcher(probe int) *Matcher {
	return New(Config{
		Mode:            ModeAdaptive,
		Tree:            betree.Config{MaxPool: 1 << 20},
		MinCompressSize: 2,
		ProbeInterval:   probe,
		Decay:           0.5,
	})
}

// theCluster returns the matcher's single cluster state.
func theCluster(t *testing.T, m *Matcher) *clusterState {
	t.Helper()
	m.cmu.RLock()
	defer m.cmu.RUnlock()
	if len(m.clusters) != 1 {
		t.Fatalf("expected exactly 1 cluster, have %d", len(m.clusters))
	}
	for _, cs := range m.clusters {
		return cs
	}
	return nil
}

func TestIncrementalAppendAvoidsRecompile(t *testing.T) {
	m := onePoolMatcher(1 << 30)
	for i := 1; i <= 64; i++ {
		if err := m.Insert(expr.MustNew(expr.ID(i), expr.Eq(1, expr.Value(i%4)))); err != nil {
			t.Fatal(err)
		}
	}
	ev := expr.MustEvent(expr.P(1, 1))
	before := len(m.MatchAppend(nil, ev))
	cs := theCluster(t, m)
	compiledBefore := cs.compiled.Load()

	// Insert an expression over the existing attribute: must append in
	// place, keeping the same compiled object.
	if err := m.Insert(expr.MustNew(1000, expr.Eq(1, 1))); err != nil {
		t.Fatal(err)
	}
	if cs.compiled.Load() != compiledBefore {
		t.Fatal("append replaced the compiled cluster")
	}
	got := m.MatchAppend(nil, ev)
	if len(got) != before+1 {
		t.Fatalf("after append got %d matches, want %d", len(got), before+1)
	}
	if cs.compiled.Load() != compiledBefore {
		t.Fatal("match after incremental append still recompiled")
	}
}

func TestIncrementalAppendNewAttributeForcesRecompile(t *testing.T) {
	m := onePoolMatcher(1 << 30)
	for i := 1; i <= 32; i++ {
		if err := m.Insert(expr.MustNew(expr.ID(i), expr.Eq(1, expr.Value(i%4)))); err != nil {
			t.Fatal(err)
		}
	}
	ev := expr.MustEvent(expr.P(1, 1), expr.P(2, 5))
	m.MatchAppend(nil, ev)
	cs := theCluster(t, m)
	compiledBefore := cs.compiled.Load()

	// Attribute 2 is outside the cluster universe: the incremental path
	// must refuse and the next match must recompile correctly.
	if err := m.Insert(expr.MustNew(1000, expr.Eq(2, 5), expr.Eq(1, 1))); err != nil {
		t.Fatal(err)
	}
	got := m.MatchAppend(nil, ev)
	found := false
	for _, id := range got {
		if id == 1000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("new-attribute expression not matched after recompile: %v", got)
	}
	if cs.compiled.Load() == compiledBefore {
		t.Fatal("expected a recompile for a new attribute")
	}
}

func TestTombstoneDeleteAvoidsRecompile(t *testing.T) {
	m := onePoolMatcher(1 << 30)
	for i := 1; i <= 64; i++ {
		if err := m.Insert(expr.MustNew(expr.ID(i), expr.Eq(1, 1))); err != nil {
			t.Fatal(err)
		}
	}
	ev := expr.MustEvent(expr.P(1, 1))
	if got := m.MatchAppend(nil, ev); len(got) != 64 {
		t.Fatalf("precondition: %d matches", len(got))
	}
	cs := theCluster(t, m)
	compiledBefore := cs.compiled.Load()

	if !m.Delete(17) {
		t.Fatal("delete failed")
	}
	if cs.compiled.Load() != compiledBefore {
		t.Fatal("delete replaced the compiled cluster")
	}
	got := m.MatchAppend(nil, ev)
	if len(got) != 63 {
		t.Fatalf("after tombstone got %d matches, want 63", len(got))
	}
	for _, id := range got {
		if id == 17 {
			t.Fatal("tombstoned member still matching")
		}
	}
	if cs.compiled.Load() != compiledBefore {
		t.Fatal("match after tombstone still recompiled")
	}
	if cs.compiled.Load().live() != 63 || cs.compiled.Load().tombs != 1 {
		t.Fatalf("live/tombs bookkeeping wrong: %d/%d", cs.compiled.Load().live(), cs.compiled.Load().tombs)
	}
}

func TestTombstonePileupTriggersRebuild(t *testing.T) {
	m := onePoolMatcher(1 << 30)
	for i := 1; i <= 64; i++ {
		if err := m.Insert(expr.MustNew(expr.ID(i), expr.Eq(1, 1))); err != nil {
			t.Fatal(err)
		}
	}
	ev := expr.MustEvent(expr.P(1, 1))
	m.MatchAppend(nil, ev)
	cs := theCluster(t, m)
	compiledBefore := cs.compiled.Load()

	// Delete well past the 50% threshold.
	for i := 1; i <= 40; i++ {
		if !m.Delete(expr.ID(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	got := m.MatchAppend(nil, ev)
	if len(got) != 24 {
		t.Fatalf("after heavy deletion got %d matches, want 24", len(got))
	}
	if cs.compiled.Load() == compiledBefore {
		t.Fatal("tombstone pile-up did not trigger a rebuild")
	}
	if cs.compiled.Load().tombs != 0 {
		t.Fatalf("rebuilt cluster still carries %d tombstones", cs.compiled.Load().tombs)
	}
}

func TestAppendBeyondSlackRecompiles(t *testing.T) {
	m := onePoolMatcher(1 << 30)
	for i := 1; i <= 8; i++ {
		if err := m.Insert(expr.MustNew(expr.ID(i), expr.Eq(1, 1))); err != nil {
			t.Fatal(err)
		}
	}
	ev := expr.MustEvent(expr.P(1, 1))
	m.MatchAppend(nil, ev)
	cs := theCluster(t, m)
	capN := cs.compiled.Load().capN

	// Grow far past the slack; correctness must hold throughout.
	for i := 9; i <= capN+32; i++ {
		if err := m.Insert(expr.MustNew(expr.ID(i), expr.Eq(1, 1))); err != nil {
			t.Fatal(err)
		}
		if got := m.MatchAppend(nil, ev); len(got) != i {
			t.Fatalf("after %d inserts got %d matches", i, len(got))
		}
	}
	if cs.compiled.Load().capN == capN {
		t.Fatal("capacity never grew; recompile on slack exhaustion missing")
	}
}

func TestIncrementalChurnStaysCorrect(t *testing.T) {
	// Sustained interleaved updates and matches against the oracle, at a
	// size where incremental maintenance is constantly exercised.
	p := workload.Default()
	p.NumAttrs = 15
	p.Cardinality = 40
	p.EventAttrs = 8
	p.PredsMin, p.PredsMax = 1, 3
	p.MatchFraction = 0.3
	g := workload.MustNew(p)
	xs := g.Expressions(600)

	m := onePoolMatcher(8)
	live := map[expr.ID]*expr.Expression{}
	for _, x := range xs[:400] {
		if err := m.Insert(x); err != nil {
			t.Fatal(err)
		}
		live[x.ID] = x
	}
	for step := 0; step < 800; step++ {
		x := xs[(step*13)%len(xs)]
		if _, ok := live[x.ID]; ok {
			if !m.Delete(x.ID) {
				t.Fatalf("step %d: delete failed", step)
			}
			delete(live, x.ID)
		} else {
			if err := m.Insert(x); err != nil {
				t.Fatal(err)
			}
			live[x.ID] = x
		}
		if step%7 == 0 {
			ev := g.Event()
			want := 0
			for _, lx := range live {
				if lx.MatchesEvent(ev) {
					want++
				}
			}
			if got := m.MatchAppend(nil, ev); len(got) != want {
				t.Fatalf("step %d: got %d matches, want %d", step, len(got), want)
			}
		}
	}
}
