package core

import (
	"sort"
	"sync/atomic"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/betree"
	"github.com/streammatch/apcm/internal/bitset"
)

// revCounter issues process-wide cluster revisions. Every compilation and
// every successful in-place mutation (tryAppend, tryTombstone) assigns a
// fresh revision, so any scratch-side cache keyed by revision (the batch
// predicate memo, the eligibility cache) is invalidated by construction:
// a stale revision simply never matches again.
var revCounter atomic.Uint64

func nextRev() uint64 { return revCounter.Add(1) }

// compiled is the compressed form of one BE-Tree pool. Three structures
// carry the match:
//
//   - per-member attribute masks over a cluster-local attribute universe,
//     giving a one-pass eligibility test ("does the event cover every
//     attribute this member constrains?") that never touches attributes
//     the event lacks;
//   - per-attribute groups with an equality-union map (event value →
//     bitset of members whose first predicate on the attribute is that
//     equality — one hash lookup replaces evaluating every distinct
//     equality predicate) plus dictionaries of distinct non-equality
//     "first" predicates and of "strict" additional predicates (second
//     and later predicates on the same attribute of one member);
//   - membership bitsets per dictionary entry, combined word-wide.
//
// Compiled clusters support bounded incremental maintenance so that a
// subscription update does not force a full recompilation: bitsets are
// allocated with slack capacity and new members append into it
// (tryAppend), while deletions set a reserved "tombstone" bit in the
// member's attribute mask, which the eligibility pass can never cover
// (tryTombstone). A cluster that falls more than one pool generation
// behind, runs out of slack, grows a new attribute, or accumulates too
// many tombstones is recompiled lazily on its next match instead.
//
// Mutation (tryAppend/tryTombstone) follows the matcher's write
// contract: it must never run concurrently with matching.
type compiled struct {
	gen   uint64
	rev   uint64 // cache-invalidation revision, see revCounter
	n     int    // member slots in use (live + tombstoned)
	tombs int    // tombstoned members
	capN  int    // member capacity of every bitset and of masks
	words int    // member-bitset words (capN/64), for cost accounting

	ids     []expr.ID
	idToIdx map[expr.ID]int32

	// Cluster-local attribute universe. Local index nAttrs is reserved
	// as the tombstone slot: no event attribute ever maps to it, so a
	// mask with that bit set is never covered.
	attrIdx map[expr.AttrID]int32
	// attrs lists the universe sorted ascending, with attrLocal carrying
	// the matching local indexes; the kernel merge-joins an event's sorted
	// pairs against attrs instead of hashing every pair through attrIdx.
	attrs     []expr.AttrID
	attrLocal []int32
	nAttrs    int
	awords    int      // words per member attribute mask ((nAttrs+1+63)/64)
	masks     []uint64 // capN × awords, flat

	groups []attrGroup // indexed by local attribute index

	// Dictionary indexes (canonical predicate key → entry position) are
	// retained to support incremental appends.
	firstIdx  []map[string]int
	strictIdx []map[string]int

	predSlots     int // Σ per-member predicates (live members)
	distinctPreds int // Σ dictionary entries (incl. equality-union values)
	seqCount      uint32
}

// attrGroup holds one attribute's compiled predicates.
type attrGroup struct {
	// attrBits marks members with at least one predicate on the
	// attribute; members outside it are unaffected by this group.
	attrBits *bitset.Bitset
	// eqUnion maps a value to the members whose first predicate on this
	// attribute is equality with that value.
	eqUnion map[expr.Value]*bitset.Bitset
	// first holds the distinct non-equality first predicates.
	first []dictEntry
	// strict holds the distinct additional predicates; a member already
	// counted in eqUnion/first dies if any of its strict predicates
	// fails.
	strict []dictEntry
}

// dictEntry is one distinct predicate and the members it belongs to. seq
// is unique within the compiled cluster; together with the cluster's rev
// it keys the batch predicate memo.
type dictEntry struct {
	pred *expr.Predicate
	bits *bitset.Bitset
	seq  uint32
}

// slackCapacity sizes bitsets with headroom for incremental appends.
func slackCapacity(n int) int {
	c := n + n/4 + 16
	return (c + 63) &^ 63
}

// compile builds the compressed form of p at its current generation.
func compile(p *betree.Pool) *compiled {
	n := len(p.Exprs)
	c := &compiled{
		gen:     p.Gen,
		rev:     nextRev(),
		capN:    slackCapacity(n),
		ids:     make([]expr.ID, 0, n),
		idToIdx: make(map[expr.ID]int32, n),
		attrIdx: make(map[expr.AttrID]int32),
	}
	c.words = c.capN / 64

	// Pass 1: the cluster-local attribute universe (+1 tombstone slot).
	for _, x := range p.Exprs {
		for i := range x.Preds {
			a := x.Preds[i].Attr
			if _, ok := c.attrIdx[a]; !ok {
				c.attrIdx[a] = int32(c.nAttrs)
				c.nAttrs++
			}
		}
	}
	c.awords = (c.nAttrs + 1 + 63) / 64
	c.masks = make([]uint64, c.capN*c.awords)
	c.groups = make([]attrGroup, c.nAttrs)
	c.firstIdx = make([]map[string]int, c.nAttrs)
	c.strictIdx = make([]map[string]int, c.nAttrs)
	c.attrs = make([]expr.AttrID, 0, c.nAttrs)
	c.attrLocal = make([]int32, c.nAttrs)
	for a := range c.attrIdx {
		c.attrs = append(c.attrs, a)
	}
	sort.Slice(c.attrs, func(i, j int) bool { return c.attrs[i] < c.attrs[j] })
	for i, a := range c.attrs {
		c.attrLocal[i] = c.attrIdx[a]
	}

	// Pass 2: members.
	for _, x := range p.Exprs {
		c.append(x)
	}
	return c
}

// append adds x as the next member. Every attribute of x must already be
// in the cluster universe and a free slot must exist; compile guarantees
// both, tryAppend checks them.
func (c *compiled) append(x *expr.Expression) {
	idx := c.n
	c.n++
	c.ids = append(c.ids, x.ID)
	c.idToIdx[x.ID] = int32(idx)
	mask := c.masks[idx*c.awords : (idx+1)*c.awords]
	var key []byte

	for j := range x.Preds {
		pr := &x.Preds[j]
		c.predSlots++
		li := c.attrIdx[pr.Attr]
		g := &c.groups[li]
		if g.attrBits == nil {
			g.attrBits = bitset.New(c.capN)
		}
		g.attrBits.Set(idx)
		mask[li>>6] |= 1 << (uint(li) & 63)

		// Predicates are attribute-sorted within an expression, so
		// "first on this attribute" is "previous predicate differs".
		isFirst := j == 0 || x.Preds[j-1].Attr != pr.Attr
		switch {
		case isFirst && pr.Op == expr.EQ:
			if g.eqUnion == nil {
				g.eqUnion = make(map[expr.Value]*bitset.Bitset)
			}
			u := g.eqUnion[pr.Lo]
			if u == nil {
				u = bitset.New(c.capN)
				g.eqUnion[pr.Lo] = u
				c.distinctPreds++
			}
			u.Set(idx)
		case isFirst:
			if c.firstIdx[li] == nil {
				c.firstIdx[li] = make(map[string]int)
			}
			key = expr.AppendPredicate(key[:0], pr)
			ei, ok := c.firstIdx[li][string(key)]
			if !ok {
				ei = len(g.first)
				c.firstIdx[li][string(key)] = ei
				c.seqCount++
				g.first = append(g.first, dictEntry{pred: pr, bits: bitset.New(c.capN), seq: c.seqCount})
				c.distinctPreds++
			}
			g.first[ei].bits.Set(idx)
		default:
			if c.strictIdx[li] == nil {
				c.strictIdx[li] = make(map[string]int)
			}
			key = expr.AppendPredicate(key[:0], pr)
			ei, ok := c.strictIdx[li][string(key)]
			if !ok {
				ei = len(g.strict)
				c.strictIdx[li][string(key)] = ei
				c.seqCount++
				g.strict = append(g.strict, dictEntry{pred: pr, bits: bitset.New(c.capN), seq: c.seqCount})
				c.distinctPreds++
			}
			g.strict[ei].bits.Set(idx)
		}
	}
}

// tryAppend incorporates a freshly inserted pool member without
// recompiling. It succeeds only when this cluster is exactly one
// generation behind (i.e. the insert is the only unseen change), slot
// capacity remains, tombstones have not piled up, and the expression
// introduces no new attribute. On success the cluster advances to the
// pool's generation.
func (c *compiled) tryAppend(p *betree.Pool, x *expr.Expression) bool {
	if c.gen+1 != p.Gen || c.n >= c.capN || c.needsRebuild() {
		return false
	}
	for i := range x.Preds {
		if _, ok := c.attrIdx[x.Preds[i].Attr]; !ok {
			return false
		}
	}
	c.append(x)
	c.gen = p.Gen
	c.rev = nextRev() // invalidate revision-keyed caches
	return true
}

// tryTombstone marks a deleted member dead without recompiling, by
// setting the reserved tombstone bit in its attribute mask (which no
// event can cover). Same generation discipline as tryAppend.
func (c *compiled) tryTombstone(p *betree.Pool, id expr.ID) bool {
	if c.gen+1 != p.Gen {
		return false
	}
	idx, ok := c.idToIdx[id]
	if !ok {
		return false
	}
	tomb := c.nAttrs // reserved local slot
	c.masks[int(idx)*c.awords+tomb>>6] |= 1 << (uint(tomb) & 63)
	delete(c.idToIdx, id)
	c.tombs++
	c.gen = p.Gen
	c.rev = nextRev() // invalidate revision-keyed caches
	return true
}

// needsRebuild reports whether tombstones dominate the cluster; the
// matcher recompiles such clusters on their next visit.
func (c *compiled) needsRebuild() bool { return c.tombs*2 > c.n }

// live returns the number of live members.
func (c *compiled) live() int { return c.n - c.tombs }

// memoryBytes estimates the cluster's heap footprint.
func (c *compiled) memoryBytes() int64 {
	var b int64
	for gi := range c.groups {
		g := &c.groups[gi]
		if g.attrBits != nil {
			b += int64(g.attrBits.MemBytes()) + 64
		}
		for _, u := range g.eqUnion {
			b += int64(u.MemBytes()) + 16
		}
		for i := range g.first {
			b += int64(g.first[i].bits.MemBytes()) + 24
		}
		for i := range g.strict {
			b += int64(g.strict[i].bits.MemBytes()) + 24
		}
	}
	b += int64(len(c.ids))*8 + int64(len(c.masks))*8
	b += int64(len(c.attrIdx))*16 + int64(len(c.idToIdx))*24
	return b
}
