package core

import (
	"sort"
	"sync/atomic"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/betree"
	"github.com/streammatch/apcm/internal/bitset"
)

// revCounter issues process-wide cluster revisions. Every compilation and
// every successful in-place mutation (tryAppend, tryTombstone) assigns a
// fresh revision, so any scratch-side cache keyed by revision (the batch
// predicate memo, the eligibility cache) is invalidated by construction:
// a stale revision simply never matches again.
var revCounter atomic.Uint64

func nextRev() uint64 { return revCounter.Add(1) }

// layoutOpts gates the density-adaptive layout machinery, per matcher.
// Each switch disables one independently measurable piece (the E18
// ablation axes); all off reproduces the pre-hybrid layout exactly.
type layoutOpts struct {
	forceDense bool // compile every posting dense (no sparse representation)
	noEqFlat   bool // keep equality unions in the Go map only
	noOrder    bool // evaluate groups in attribute order (no kill-rate sort)
}

// compiled is the compressed form of one BE-Tree pool. Three structures
// carry the match:
//
//   - per-member attribute masks over a cluster-local attribute universe,
//     giving a one-pass eligibility test ("does the event cover every
//     attribute this member constrains?") that never touches attributes
//     the event lacks;
//   - per-attribute groups with an equality-union map (event value →
//     posting of members whose first predicate on the attribute is that
//     equality — one lookup replaces evaluating every distinct equality
//     predicate) plus dictionaries of distinct non-equality "first"
//     predicates and of "strict" additional predicates (second and later
//     predicates on the same attribute of one member);
//   - membership postings per dictionary entry. A posting is hybrid
//     (bitset.Posting): dense entries combine word-wide, sparse ones —
//     the common case on selective workloads — touch only their listed
//     members. finalize chooses the representation per entry by popcount
//     and re-homes all posting storage into two per-cluster slabs.
//
// Compiled clusters support bounded incremental maintenance so that a
// subscription update does not force a full recompilation: bitsets are
// allocated with slack capacity and new members append into it
// (tryAppend), while deletions set a reserved "tombstone" bit in the
// member's attribute mask, which the eligibility pass can never cover
// (tryTombstone). A cluster that falls more than one pool generation
// behind, runs out of slack, grows a new attribute, or accumulates too
// many tombstones is recompiled lazily on its next match instead.
//
// Mutation (tryAppend/tryTombstone) follows the matcher's write
// contract: it must never run concurrently with matching.
type compiled struct {
	gen   uint64
	rev   uint64 // cache-invalidation revision, see revCounter
	n     int    // member slots in use (live + tombstoned)
	tombs int    // tombstoned members
	capN  int    // member capacity of every bitset and of masks
	words int    // member-bitset words (capN/64), for cost accounting
	lo    layoutOpts

	ids     []expr.ID
	idToIdx map[expr.ID]int32

	// Cluster-local attribute universe. Local index nAttrs is reserved
	// as the tombstone slot: no event attribute ever maps to it, so a
	// mask with that bit set is never covered.
	attrIdx map[expr.AttrID]int32
	// attrs lists the universe sorted ascending, with attrLocal carrying
	// the matching local indexes; the kernel merge-joins an event's sorted
	// pairs against attrs instead of hashing every pair through attrIdx.
	attrs     []expr.AttrID
	attrLocal []int32
	nAttrs    int
	awords    int      // words per member attribute mask ((nAttrs+1+63)/64)
	masks     []uint64 // capN × awords, flat
	// attrCnt is each member's distinct constrained-attribute count; the
	// candidate-driven eligibility pass compares occurrence counters
	// against it. Tombstoned members are set to an unreachable count.
	attrCnt []uint16
	// attrDirect, when non-nil, maps attr - attrLo directly to the local
	// attribute index (-1 = not in the universe): step 1 indexes it per
	// event pair instead of joining against the sorted universe.
	attrDirect []int32
	attrLo     expr.AttrID

	groups []attrGroup // indexed by local attribute index

	// groupKill estimates, per group, how many members one visit kills —
	// the kernel's selectivity order (largest first) so alive hits zero
	// in as few groups as possible. Seeded statically by finalize from
	// entry densities and eq-union coverage, refined online by an EWMA of
	// kills observed during adaptive probes (noteKills), in 24.8 fixed
	// point. Atomics because probes on different goroutines may race; the
	// estimate is heuristic, so racy read-modify-write is acceptable.
	groupKill []atomic.Uint32

	// Dictionary indexes (canonical predicate key → entry position) are
	// retained to support incremental appends.
	firstIdx  []map[string]int
	strictIdx []map[string]int

	predSlots     int // Σ per-member predicates (live members)
	distinctPreds int // Σ dictionary entries (incl. equality-union values)
	seqCount      uint32

	// arena owns the cluster's backing storage after finalize: masks,
	// posting structs and their words/ids, dictionary entries, flat
	// tables, kill estimates and counters all live in its slabs (see
	// arena.go). Nil only before finalize runs.
	arena *clusterArena
}

// attrGroup holds one attribute's compiled predicates.
type attrGroup struct {
	// attrBits marks members with at least one predicate on the
	// attribute; members outside it are unaffected by this group.
	attrBits *bitset.Posting
	// eqUnion maps a value to the members whose first predicate on this
	// attribute is equality with that value. Always authoritative; when
	// eqFlat is non-nil the kernel probes that instead.
	eqUnion map[expr.Value]*bitset.Posting
	// eqFlat is a value-indexed view of eqUnion covering [eqLo, eqLo+len):
	// one bounds check and an array load replace the map probe. Built by
	// finalize when the observed value range is small; dropped (nil) if an
	// incremental append brings a value outside the compiled range.
	eqFlat []*bitset.Posting
	eqLo   expr.Value
	// first holds the distinct non-equality first predicates.
	first []dictEntry
	// strict holds the distinct additional predicates; a member already
	// counted in eqUnion/first dies if any of its strict predicates
	// fails.
	strict []dictEntry
}

// dictEntry is one distinct predicate and the members it belongs to. seq
// is unique within the compiled cluster; together with the cluster's rev
// it keys the batch predicate memo.
type dictEntry struct {
	pred *expr.Predicate
	bits *bitset.Posting
	seq  uint32
}

// slackCapacity sizes bitsets with headroom for incremental appends.
func slackCapacity(n int) int {
	c := n + n/4 + 16
	return (c + 63) &^ 63
}

// eqFlat sizing: a flat table spends one pointer per value in the span,
// so it is built only when the span is bounded in absolute terms and not
// grossly larger than the number of distinct values it indexes.
const (
	eqFlatMaxSpan    = 4096 // never spend more than 32 KiB of pointers per group
	eqFlatSpanFactor = 32   // allow up to this many empty slots per distinct value
	eqFlatMinSpan    = 64   // spans this small are always acceptable
)

// sparseSlabSlack is the per-posting append headroom finalize leaves in
// the shared id slab. A posting that outgrows its slack re-allocates
// privately (the slab slice is capacity-clamped), so neighbours are
// never clobbered.
const sparseSlabSlack = 2

// compile builds the compressed form of p at its current generation with
// the default layout (hybrid postings, flat equality tables). Tests use
// it directly; the matcher goes through compileOpts to apply its
// configured layout switches.
func compile(p *betree.Pool) *compiled { return compileOpts(p, layoutOpts{}) }

// compileOpts builds the compressed form of p under the given layout.
func compileOpts(p *betree.Pool, lo layoutOpts) *compiled {
	n := len(p.Exprs)
	c := &compiled{
		gen:     p.Gen,
		rev:     nextRev(),
		capN:    slackCapacity(n),
		lo:      lo,
		ids:     make([]expr.ID, 0, n),
		idToIdx: make(map[expr.ID]int32, n),
		attrIdx: make(map[expr.AttrID]int32),
	}
	c.words = c.capN / 64

	// Pass 1: the cluster-local attribute universe (+1 tombstone slot).
	for _, x := range p.Exprs {
		for i := range x.Preds {
			a := x.Preds[i].Attr
			if _, ok := c.attrIdx[a]; !ok {
				c.attrIdx[a] = int32(c.nAttrs)
				c.nAttrs++
			}
		}
	}
	c.awords = (c.nAttrs + 1 + 63) / 64
	c.masks = make([]uint64, c.capN*c.awords)
	c.attrCnt = make([]uint16, 0, c.capN)
	c.groups = make([]attrGroup, c.nAttrs)
	c.firstIdx = make([]map[string]int, c.nAttrs)
	c.strictIdx = make([]map[string]int, c.nAttrs)
	c.attrs = make([]expr.AttrID, 0, c.nAttrs)
	c.attrLocal = make([]int32, c.nAttrs)
	for a := range c.attrIdx {
		c.attrs = append(c.attrs, a)
	}
	sort.Slice(c.attrs, func(i, j int) bool { return c.attrs[i] < c.attrs[j] })
	for i, a := range c.attrs {
		c.attrLocal[i] = c.attrIdx[a]
	}

	// Pass 2: members.
	for _, x := range p.Exprs {
		c.append(x)
	}

	// Pass 3: density-aware layout (slabs, flat eq tables, kill seeds).
	c.finalize()
	return c
}

// newPosting allocates an empty posting in the configured representation.
// Hybrid postings start sparse; Set promotes them past the density
// boundary (member indexes only grow during a build, so the sorted-list
// appends are O(1)).
func (c *compiled) newPosting() *bitset.Posting {
	if c.lo.forceDense {
		return bitset.DensePosting(bitset.New(c.capN))
	}
	return bitset.NewPosting(c.capN)
}

// append adds x as the next member. Every attribute of x must already be
// in the cluster universe and a free slot must exist; compile guarantees
// both, tryAppend checks them.
func (c *compiled) append(x *expr.Expression) {
	idx := c.n
	c.n++
	c.ids = append(c.ids, x.ID)
	c.idToIdx[x.ID] = int32(idx)
	mask := c.masks[idx*c.awords : (idx+1)*c.awords]
	var key []byte
	distinct := uint16(0)

	for j := range x.Preds {
		pr := &x.Preds[j]
		c.predSlots++
		li := c.attrIdx[pr.Attr]
		g := &c.groups[li]
		if g.attrBits == nil {
			g.attrBits = c.newPosting()
		}
		g.attrBits.Set(idx)
		mask[li>>6] |= 1 << (uint(li) & 63)

		// Predicates are attribute-sorted within an expression, so
		// "first on this attribute" is "previous predicate differs".
		isFirst := j == 0 || x.Preds[j-1].Attr != pr.Attr
		if isFirst {
			distinct++
		}
		switch {
		case isFirst && pr.Op == expr.EQ:
			if g.eqUnion == nil {
				g.eqUnion = make(map[expr.Value]*bitset.Posting)
			}
			u := g.eqUnion[pr.Lo]
			if u == nil {
				u = c.newPosting()
				g.eqUnion[pr.Lo] = u
				c.distinctPreds++
				if g.eqFlat != nil {
					// Keep the flat view coherent with the map; a value
					// outside the compiled span drops the accelerator
					// (the map stays authoritative).
					if d := int64(pr.Lo) - int64(g.eqLo); uint64(d) < uint64(len(g.eqFlat)) {
						g.eqFlat[d] = u
					} else {
						g.eqFlat = nil
					}
				}
			}
			u.Set(idx)
		case isFirst:
			if c.firstIdx[li] == nil {
				c.firstIdx[li] = make(map[string]int)
			}
			key = expr.AppendPredicate(key[:0], pr)
			ei, ok := c.firstIdx[li][string(key)]
			if !ok {
				ei = len(g.first)
				c.firstIdx[li][string(key)] = ei
				c.seqCount++
				g.first = append(g.first, dictEntry{pred: pr, bits: c.newPosting(), seq: c.seqCount})
				c.distinctPreds++
			}
			g.first[ei].bits.Set(idx)
		default:
			if c.strictIdx[li] == nil {
				c.strictIdx[li] = make(map[string]int)
			}
			key = expr.AppendPredicate(key[:0], pr)
			ei, ok := c.strictIdx[li][string(key)]
			if !ok {
				ei = len(g.strict)
				c.strictIdx[li][string(key)] = ei
				c.seqCount++
				g.strict = append(g.strict, dictEntry{pred: pr, bits: c.newPosting(), seq: c.seqCount})
				c.distinctPreds++
			}
			g.strict[ei].bits.Set(idx)
		}
	}
	c.attrCnt = append(c.attrCnt, distinct)
}

// forEachPosting visits every posting of the cluster, in a fixed order.
func (c *compiled) forEachPosting(fn func(p *bitset.Posting)) {
	for gi := range c.groups {
		g := &c.groups[gi]
		if g.attrBits != nil {
			fn(g.attrBits)
		}
		for _, u := range g.eqUnion {
			fn(u)
		}
		for i := range g.first {
			fn(g.first[i].bits)
		}
		for i := range g.strict {
			fn(g.strict[i].bits)
		}
	}
}

// finalize runs the density-aware layout pass after all members are in:
//
//  1. Arena build: a pre-pass sizes every slab class — posting structs,
//     dense words, sparse ids, dictionary entries, flat-table slots,
//     masks, counters — and the whole cluster is re-homed into one
//     clusterArena (see arena.go), so the group loop walks a handful of
//     contiguous arrays instead of chasing per-entry heap objects, and
//     recompile-and-swap frees the old cluster as a few slabs.
//  2. Flat equality tables: groups whose observed equality-value span is
//     small get a value-indexed eqFlat view over the eqUnion map.
//  3. Static selectivity: groupKill is seeded per group from entry
//     density and eq-union coverage — members constrained minus expected
//     survivors (the average eq-union size plus half the non-equality
//     first members) — giving the kernel a kill order before the first
//     adaptive probe refines it.
func (c *compiled) finalize() {
	// Pre-pass A: posting and dictionary volumes. Representations are
	// already settled (Set promotes at the density boundary; forceDense
	// builds dense outright).
	nPost, nDense, denseWords, sparseIds, nDict := 0, 0, 0, 0, 0
	c.forEachPosting(func(p *bitset.Posting) {
		nPost++
		if p.IsSparse() {
			sparseIds += len(p.Ids()) + sparseSlabSlack
		} else {
			nDense++
			denseWords += c.words
		}
	})
	for gi := range c.groups {
		nDict += len(c.groups[gi].first) + len(c.groups[gi].strict)
	}

	// Pre-pass B: flat attribute-dictionary span (the table is carved
	// from the id slab). A direct value-indexed attr → local index table
	// replaces the step-1 merge-join/search against c.attrs when the
	// universe's id span is bounded (same sizing logic as the flat
	// equality tables). tryAppend never grows the universe, so the table
	// stays coherent across incremental maintenance.
	attrSpan := 0
	if !c.lo.noEqFlat && c.nAttrs > 0 {
		lo, hi := c.attrs[0], c.attrs[len(c.attrs)-1]
		span := int64(hi) - int64(lo) + 1
		if span <= eqFlatMaxSpan && span <= int64(eqFlatSpanFactor*c.nAttrs+eqFlatMinSpan) {
			attrSpan = int(span)
		}
	}

	// Pre-pass C: per-group equality spans, deciding each flat table
	// before any allocation so the flat slab can be sized exactly.
	type eqSpan struct {
		lo, hi expr.Value
		total  int // Σ eq-union member counts (reused by the kill seeds)
		span   int // flat-table slots; 0 = keep the map only
	}
	spans := make([]eqSpan, len(c.groups))
	flatSlots := 0
	for gi := range c.groups {
		g := &c.groups[gi]
		if len(g.eqUnion) == 0 {
			continue
		}
		sp := &spans[gi]
		first := true
		for v, u := range g.eqUnion {
			sp.total += u.Count()
			if first || v < sp.lo {
				sp.lo = v
			}
			if first || v > sp.hi {
				sp.hi = v
			}
			first = false
		}
		if !c.lo.noEqFlat {
			span := int64(sp.hi) - int64(sp.lo) + 1
			if span <= eqFlatMaxSpan && span <= int64(eqFlatSpanFactor*len(g.eqUnion)+eqFlatMinSpan) {
				sp.span = int(span)
				flatSlots += sp.span
			}
		}
	}

	maskWords := len(c.masks)
	ar := newClusterArena(arenaSizes{
		words: maskWords + denseWords,
		ids:   sparseIds + attrSpan,
		posts: nPost,
		bsets: nDense,
		dict:  nDict,
		flat:  flatSlots,
		kill:  c.nAttrs,
		cnt:   c.capN,
	})
	c.arena = ar

	// Re-home the flat member state. The masks were built in a private
	// slice during the append pass (slab sizes depend on the finished
	// postings); one copy moves them into the arena for good.
	copy(ar.takeWords(maskWords), c.masks)
	c.masks = ar.words[:maskWords:maskWords]
	cnt := ar.cnt[:len(c.attrCnt):c.capN]
	copy(cnt, c.attrCnt)
	c.attrCnt = cnt
	c.groupKill = ar.kill

	// rehome moves one posting — struct and backing — into the arena.
	rehome := func(p *bitset.Posting) *bitset.Posting {
		np := ar.nextPosting()
		if p.IsSparse() {
			ids := p.Ids()
			slab := ar.takeIDs(len(ids), sparseSlabSlack)
			copy(slab, ids)
			np.InitSparse(slab, c.capN)
		} else {
			bs := ar.nextBitset()
			bs.InitView(ar.takeWords(c.words), c.capN)
			p.CopyInto(bs)
			np.InitDense(bs)
		}
		return np
	}

	// Re-home every posting, dictionary entry and flat table, group by
	// group, in forEachPosting order so consumption matches pre-pass A
	// exactly. eqFlat is rebuilt from the re-homed eqUnion values, so the
	// two views alias the same arena posting structs.
	for gi := range c.groups {
		g := &c.groups[gi]
		if g.attrBits != nil {
			g.attrBits = rehome(g.attrBits)
		}
		for v, u := range g.eqUnion {
			g.eqUnion[v] = rehome(u)
		}
		g.first = ar.takeDict(g.first)
		for i := range g.first {
			g.first[i].bits = rehome(g.first[i].bits)
		}
		g.strict = ar.takeDict(g.strict)
		for i := range g.strict {
			g.strict[i].bits = rehome(g.strict[i].bits)
		}
		if sp := &spans[gi]; sp.span > 0 {
			flat := ar.takeFlat(sp.span)
			for v, u := range g.eqUnion {
				flat[int64(v)-int64(sp.lo)] = u
			}
			g.eqFlat, g.eqLo = flat, sp.lo
		}
	}

	if attrSpan > 0 {
		lo := c.attrs[0]
		dir := ar.takeIDs(attrSpan, 0)
		for i := range dir {
			dir[i] = -1
		}
		for i, a := range c.attrs {
			dir[int64(a)-int64(lo)] = c.attrLocal[i]
		}
		c.attrDirect, c.attrLo = dir, lo
	}

	// Kill seeds, from the re-homed postings.
	for gi := range c.groups {
		g := &c.groups[gi]
		if g.attrBits == nil {
			continue
		}
		firstTotal := 0
		for i := range g.first {
			firstTotal += g.first[i].bits.Count()
		}
		surv := firstTotal / 2
		if n := len(g.eqUnion); n > 0 {
			surv += spans[gi].total / n
		}
		kills := g.attrBits.Count() - surv
		if kills < 0 {
			kills = 0
		}
		c.groupKill[gi].Store(uint32(kills) << killPointShift)
	}
}

// arenaBytes reports the cluster's arena footprint (0 before finalize).
func (c *compiled) arenaBytes() int64 {
	if c.arena == nil {
		return 0
	}
	return c.arena.bytes()
}

// tryAppend incorporates a freshly inserted pool member without
// recompiling. It succeeds only when this cluster is exactly one
// generation behind (i.e. the insert is the only unseen change), slot
// capacity remains, tombstones have not piled up, and the expression
// introduces no new attribute. On success the cluster advances to the
// pool's generation. Sparse postings absorb the append through their
// slab slack (overflowing ones re-allocate privately) and may promote
// to dense when the new member crosses the density boundary.
func (c *compiled) tryAppend(p *betree.Pool, x *expr.Expression) bool {
	if c.gen+1 != p.Gen || c.n >= c.capN || c.needsRebuild() {
		return false
	}
	for i := range x.Preds {
		if _, ok := c.attrIdx[x.Preds[i].Attr]; !ok {
			return false
		}
	}
	c.append(x)
	c.gen = p.Gen
	c.rev = nextRev() // invalidate revision-keyed caches
	return true
}

// tryAppendBatch incorporates a run of freshly inserted pool members in
// one step: one generation check, one pass, one revision bump, instead
// of one of each per subscription (the bulk-restore path). It succeeds
// only when the batch accounts for every unseen pool change — the
// cluster's generation plus the batch length must land exactly on the
// pool's generation. That check is sound because cluster generations
// are only ever assigned from pool generations: any change beyond these
// appends (a split, a member moved in from a neighbouring pool's split,
// an interleaved delete) advances p.Gen past c.gen+len(xs) and the
// cluster is left stale for the usual lazy recompile.
func (c *compiled) tryAppendBatch(p *betree.Pool, xs []*expr.Expression) bool {
	if len(xs) == 0 || c.gen+uint64(len(xs)) != p.Gen || c.n+len(xs) > c.capN || c.needsRebuild() {
		return false
	}
	for _, x := range xs {
		for i := range x.Preds {
			if _, ok := c.attrIdx[x.Preds[i].Attr]; !ok {
				return false
			}
		}
	}
	for _, x := range xs {
		c.append(x)
	}
	c.gen = p.Gen
	c.rev = nextRev() // invalidate revision-keyed caches, once for the batch
	return true
}

// tryTombstone marks a deleted member dead without recompiling, by
// setting the reserved tombstone bit in its attribute mask (which no
// event can cover). Same generation discipline as tryAppend.
func (c *compiled) tryTombstone(p *betree.Pool, id expr.ID) bool {
	if c.gen+1 != p.Gen {
		return false
	}
	idx, ok := c.idToIdx[id]
	if !ok {
		return false
	}
	tomb := c.nAttrs // reserved local slot
	c.masks[int(idx)*c.awords+tomb>>6] |= 1 << (uint(tomb) & 63)
	c.attrCnt[idx] = 0xFFFF // unreachable occurrence count: never eligible
	delete(c.idToIdx, id)
	c.tombs++
	c.gen = p.Gen
	c.rev = nextRev() // invalidate revision-keyed caches
	return true
}

// needsRebuild reports whether tombstones dominate the cluster; the
// matcher recompiles such clusters on their next visit.
func (c *compiled) needsRebuild() bool { return c.tombs*2 > c.n }

// live returns the number of live members.
func (c *compiled) live() int { return c.n - c.tombs }

// postingTally summarises the cluster's layout decisions for
// diagnostics: chosen representations, sparse volume, flat-table sizes
// and a log2-bucketed posting-density histogram (bucket i counts
// postings with member count in [2^(i-1), 2^i)).
type postingTally struct {
	Dense         int
	Sparse        int
	SparseMembers int
	EqFlatTables  int
	EqFlatSlots   int
	Hist          [12]int
}

func (c *compiled) tally() postingTally {
	var t postingTally
	c.forEachPosting(func(p *bitset.Posting) {
		n := p.Count()
		if p.IsSparse() {
			t.Sparse++
			t.SparseMembers += n
		} else {
			t.Dense++
		}
		b := 0
		for 1<<b <= n {
			b++
		}
		if b >= len(t.Hist) {
			b = len(t.Hist) - 1
		}
		t.Hist[b]++
	})
	for gi := range c.groups {
		if f := c.groups[gi].eqFlat; f != nil {
			t.EqFlatTables++
			t.EqFlatSlots += len(f)
		}
	}
	return t
}

// memoryBytes estimates the cluster's heap footprint.
func (c *compiled) memoryBytes() int64 {
	var b int64
	for gi := range c.groups {
		g := &c.groups[gi]
		if g.attrBits != nil {
			b += int64(g.attrBits.MemBytes()) + 64
		}
		for _, u := range g.eqUnion {
			b += int64(u.MemBytes()) + 16
		}
		b += int64(len(g.eqFlat)) * 8
		for i := range g.first {
			b += int64(g.first[i].bits.MemBytes()) + 24
		}
		for i := range g.strict {
			b += int64(g.strict[i].bits.MemBytes()) + 24
		}
	}
	b += int64(len(c.ids))*8 + int64(len(c.masks))*8 + int64(len(c.groupKill))*4 + int64(len(c.attrCnt))*2
	b += int64(len(c.attrDirect)) * 4
	b += int64(len(c.attrIdx))*16 + int64(len(c.idToIdx))*24
	return b
}
