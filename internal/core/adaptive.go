package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/betree"
)

type kernel int32

const (
	kernelUncompressed kernel = iota
	kernelCompressed
)

// clusterState pairs a cluster's compiled form with its adaptive state.
// The compiled pointer is replaced wholesale (under Matcher.cmu) when the
// pool mutates; mode and counters survive recompilation so a cluster's
// learned behaviour is not forgotten on every update.
type clusterState struct {
	// compiled is published wholesale: recompilation builds a fresh
	// value and Stores it; the match path Loads it with no lock held.
	// In-place append/tombstone repairs go through the compiled
	// value's own guarded entry points (tryAppend, tryTombstone), never
	// through naked field writes after publication.
	//apcm:publish
	compiled atomic.Pointer[compiled]

	// mode is the kernel serving non-probe events.
	mode atomic.Int32
	// events counts matches served, for probe scheduling.
	events atomic.Uint32

	// mu serialises probe updates; the estimates themselves are float64
	// bits in atomics so the scheduler's cost reader (PoolCostAppend)
	// never takes a lock on the match path.
	mu    sync.Mutex
	ewmaC atomic.Uint64 // compressed kernel cost estimate, ns/event
	ewmaU atomic.Uint64 // uncompressed kernel cost estimate, ns/event
}

func (cs *clusterState) ewmaCompressed() float64 { return math.Float64frombits(cs.ewmaC.Load()) }
func (cs *clusterState) ewmaScan() float64       { return math.Float64frombits(cs.ewmaU.Load()) }

func newClusterState() *clusterState {
	cs := &clusterState{}
	// Optimistic start: serve compressed until the first probe says
	// otherwise (the first event always probes).
	cs.mode.Store(int32(kernelCompressed))
	return cs
}

// matchAdaptive serves one event from cs: probe events run both kernels
// and refresh the cost estimates; all others run the currently chosen
// kernel.
func (m *Matcher) matchAdaptive(cs *clusterState, s *Scratch, dst []expr.ID, p *betree.Pool, e *expr.Event) []expr.ID {
	n := cs.events.Add(1)
	if n == 1 || n%uint32(m.cfg.ProbeInterval) == 0 {
		return m.probe(cs, s, dst, p, e)
	}
	if kernel(cs.mode.Load()) == kernelCompressed {
		dst, _ = cs.compiled.Load().matchCompressed(&s.kern, e, dst)
		return dst
	}
	dst, _ = scanPool(&s.kern, p.Exprs, e, dst)
	return dst
}

// probe runs both kernels on e (returning the compressed kernel's
// matches; the kernels agree by construction, which the equivalence
// tests verify) and re-decides the cluster's kernel from the updated
// estimates. Estimates are wall-clock nanoseconds: an abstract work-unit
// model proved too easy to miscalibrate against real hardware (word-wide
// bitset sweeps run far faster per "operation" than interpreted
// predicate evaluations), and the probe runs both kernels back-to-back
// on the same event anyway, so measuring them directly is both simpler
// and honest. The EWMA absorbs timer noise on microsecond-scale runs.
func (m *Matcher) probe(cs *clusterState, s *Scratch, dst []expr.ID, p *betree.Pool, e *expr.Event) []expr.ID {
	m.probes.Add(1)
	startU := time.Now()
	s.probeIDs, _ = scanPool(&s.kern, p.Exprs, e, s.probeIDs[:0])
	costU := float64(time.Since(startU))

	// measure=true folds per-group kill counts into the groupKill EWMAs,
	// so the selectivity order is refined on the same cadence as the
	// kernel choice. The wall-clock estimate automatically prices the
	// hybrid layout (sparse member loops, flat eq probes) correctly —
	// both kernels are timed as actually executed, so A-PCM keeps
	// picking the genuinely cheaper one per cluster.
	startC := time.Now()
	dst, _ = cs.compiled.Load().matchHybrid(&s.kern, e, dst, true)
	costC := float64(time.Since(startC))

	d := m.cfg.Decay
	cs.mu.Lock()
	ewmaC := cs.ewmaCompressed()
	if ewmaC == 0 {
		ewmaC = costC
	} else {
		ewmaC = d*ewmaC + (1-d)*costC
	}
	cs.ewmaC.Store(math.Float64bits(ewmaC))
	ewmaU := cs.ewmaScan()
	if ewmaU == 0 {
		ewmaU = costU
	} else {
		ewmaU = d*ewmaU + (1-d)*costU
	}
	cs.ewmaU.Store(math.Float64bits(ewmaU))
	// Hysteresis: leave the current kernel only when the other one is
	// estimated meaningfully cheaper. Single-run wall-clock probes carry
	// scheduler and cache noise; without a margin, clusters flap between
	// kernels on microsecond-scale jitter.
	const margin = 1.15
	switch kernel(cs.mode.Load()) {
	case kernelCompressed:
		if ewmaC > ewmaU*margin {
			cs.mode.Store(int32(kernelUncompressed))
			m.flipsU.Add(1)
		}
	default:
		if ewmaU > ewmaC*margin {
			cs.mode.Store(int32(kernelCompressed))
			m.flipsC.Add(1)
		}
	}
	cs.mu.Unlock()
	return dst
}

// Group-kill EWMA: kills observed per group visit, in 24.8 fixed point.
// Seeded statically by finalize, refreshed only on probe events (the
// popcounts it needs would be too dear per ordinary match).
const (
	killPointShift = 8 // fractional bits of the kill estimate
	killEwmaShift  = 2 // EWMA weight 1/4 per probe observation
)

// noteKills folds one probe-time observation — kills members killed by
// the group at local index li — into its EWMA. Concurrent probes race
// benignly: Load/Store atomics keep the race detector quiet and the
// estimate is heuristic, same contract as the arming policies.
func (c *compiled) noteKills(li int32, kills int) {
	v := uint32(kills) << killPointShift
	g := &c.groupKill[li]
	old := g.Load()
	if old == 0 {
		g.Store(v)
		return
	}
	g.Store(old - old>>killEwmaShift + v>>killEwmaShift)
}

// Estimates reports a cluster-state snapshot for tests and diagnostics.
func (cs *clusterState) estimates() (ewmaC, ewmaU float64, mode kernel) {
	return cs.ewmaCompressed(), cs.ewmaScan(), kernel(cs.mode.Load())
}

// fallbackCostNs approximates an unprobed pool's per-event cost: about
// 50ns of interpreted evaluation per member.
func fallbackCostNs(members int) int64 { return int64(1 + 50*members) }

// PoolCostAppend appends one relative cost weight per pool — the EWMA
// ns/event of the kernel currently serving the cluster, with a
// size-proportional estimate for pools never probed — and returns dst.
// The engine feeds these weights to the scheduler so one expensive
// cluster no longer serializes a worker lane while cheap ones idle.
// Weights are relative; only their ratios matter.
func (m *Matcher) PoolCostAppend(dst []int64, pools []*betree.Pool) []int64 {
	m.cmu.RLock()
	for _, p := range pools {
		var w int64
		if cs := m.clusters[p]; cs != nil {
			var e float64
			if kernel(cs.mode.Load()) == kernelCompressed {
				e = cs.ewmaCompressed()
			} else {
				e = cs.ewmaScan()
			}
			w = int64(e)
		}
		if w <= 0 {
			w = fallbackCostNs(len(p.Exprs))
		}
		dst = append(dst, w)
	}
	m.cmu.RUnlock()
	return dst
}
