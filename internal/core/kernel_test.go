package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/betree"
	"github.com/streammatch/apcm/workload"
)

// TestPropKernelsAgree is the kernel-level equivalence property: on
// arbitrary compiled pools and arbitrary events, the compressed kernel
// and the scan kernel return identical match sets.
func TestPropKernelsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.Default()
		p.Seed = seed
		p.NumAttrs = 6 + rng.Intn(10)
		p.Cardinality = 5 + rng.Intn(30)
		p.EventAttrs = 1 + rng.Intn(p.NumAttrs)
		p.PredsMin, p.PredsMax = 1, 4
		p.WEquality = rng.Float64()
		p.WRange = rng.Float64()
		p.WMembership = rng.Float64() * 0.5
		p.WNegated = rng.Float64() * 0.5
		p.MatchFraction = 0.4
		if p.WEquality+p.WRange+p.WMembership+p.WNegated == 0 {
			p.WEquality = 1
		}
		p.PredPoolSize = rng.Intn(5) // 0..4: from fresh to highly redundant
		g, err := workload.New(p)
		if err != nil {
			return false
		}
		pool := &betree.Pool{Exprs: g.Expressions(1 + rng.Intn(200))}
		c := compile(pool)
		var ks kernelScratch
		for trial := 0; trial < 30; trial++ {
			ev := g.Event()
			a, _ := c.matchCompressed(&ks, ev, nil)
			b, _ := scanPool(&ks, pool.Exprs, ev, nil)
			if !sameIDs(a, b) {
				t.Logf("seed %d: compressed %v scan %v on %s", seed, a, b, ev)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropKernelsAgreeAfterIncrementalMaintenance extends the property
// across appends and tombstones.
func TestPropKernelsAgreeAfterIncrementalMaintenance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.Default()
		p.Seed = seed
		p.NumAttrs = 8
		p.Cardinality = 20
		p.EventAttrs = 5
		p.PredsMin, p.PredsMax = 1, 3
		p.MatchFraction = 0.4
		g := workload.MustNew(p)

		pool := &betree.Pool{Exprs: g.Expressions(50)}
		c := compile(pool)

		// Simulated pool mutations mirrored into the compiled cluster.
		live := map[expr.ID]bool{}
		for _, x := range pool.Exprs {
			live[x.ID] = true
		}
		for step := 0; step < 30; step++ {
			if rng.Intn(2) == 0 {
				x := g.Expression()
				pool.Exprs = append(pool.Exprs, x)
				pool.Gen++
				if !c.tryAppend(pool, x) {
					c = compile(pool)
				}
				live[x.ID] = true
			} else if len(pool.Exprs) > 0 {
				i := rng.Intn(len(pool.Exprs))
				id := pool.Exprs[i].ID
				pool.Exprs = append(pool.Exprs[:i], pool.Exprs[i+1:]...)
				pool.Gen++
				if !c.tryTombstone(pool, id) {
					c = compile(pool)
				}
				delete(live, id)
			}
		}
		var ks kernelScratch
		for trial := 0; trial < 20; trial++ {
			ev := g.Event()
			a, _ := c.matchCompressed(&ks, ev, nil)
			b, _ := scanPool(&ks, pool.Exprs, ev, nil)
			if !sameIDs(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func sameIDs(a, b []expr.ID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]expr.ID(nil), a...)
	bs := append([]expr.ID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
