package core

import (
	"sync/atomic"

	"github.com/streammatch/apcm/internal/bitset"
)

// clusterArena is the single backing store of one compiled cluster.
// Before the arena, a compiled cluster scattered its state across
// thousands of heap objects — one *Posting and one backing array per
// dictionary entry, per-group dictEntry slices, flat tables, masks,
// counters — which cost compile-time allocations, GC scan work
// proportional to the subscription count, and cache misses in the group
// loop as the kernel chased pointers across the heap.
//
// finalize now sizes everything in a pre-pass and carves the whole
// cluster out of seven typed slabs, one allocation each (Go's type
// system rules out a single untyped block without unsafe; seven
// contiguous slabs capture almost all of the locality win at none of
// the risk):
//
//	words  []uint64          member attribute masks ++ every dense
//	                         posting's backing words
//	ids    []int32           every sparse posting's member ids (with
//	                         per-posting append slack) ++ the flat
//	                         attr-direct table
//	posts  []bitset.Posting  every posting struct, group-ordered
//	bsets  []bitset.Bitset   backing structs for the dense postings
//	dict   []dictEntry       first/strict dictionary entries, group-ordered
//	flat   []*bitset.Posting value-indexed equality-table slots
//	kill   []atomic.Uint32   per-group kill-rate estimates
//	cnt    []uint16          per-member distinct-attribute counts
//
// Sub-slices handed out of a slab are capacity-clamped, so incremental
// maintenance (tryAppend growing a sparse posting past its slack, or a
// group gaining a dictionary entry) reallocates that one slice
// privately instead of clobbering its slab neighbour — the same policy
// the sparse slab used before the arena.
//
// Recompile-and-swap is a pointer flip: a fresh compile builds its own
// arena off the hot path and clusterFor swaps the *compiled in; the old
// cluster's entire graph dies as eight objects, not thousands.
type clusterArena struct {
	words []uint64
	ids   []int32
	posts []bitset.Posting
	bsets []bitset.Bitset
	dict  []dictEntry
	flat  []*bitset.Posting
	kill  []atomic.Uint32
	cnt   []uint16

	// take cursors; only used during finalize.
	wo, io, po, bo, do, fo int
}

// arenaSizes is the pre-pass result that sizes a clusterArena.
type arenaSizes struct {
	words, ids, posts, bsets, dict, flat, cnt int
	kill                                      int
}

func newClusterArena(s arenaSizes) *clusterArena {
	return &clusterArena{
		words: make([]uint64, s.words),
		ids:   make([]int32, s.ids),
		posts: make([]bitset.Posting, s.posts),
		bsets: make([]bitset.Bitset, s.bsets),
		dict:  make([]dictEntry, s.dict),
		flat:  make([]*bitset.Posting, s.flat),
		kill:  make([]atomic.Uint32, s.kill),
		cnt:   make([]uint16, s.cnt),
	}
}

// takeWords hands out the next n words, capacity-clamped.
func (a *clusterArena) takeWords(n int) []uint64 {
	s := a.words[a.wo : a.wo+n : a.wo+n]
	a.wo += n
	return s
}

// takeIDs hands out a slice for n ids with the given append slack: the
// result has len n, cap n+slack.
func (a *clusterArena) takeIDs(n, slack int) []int32 {
	s := a.ids[a.io : a.io+n : a.io+n+slack]
	a.io += n + slack
	return s
}

// nextPosting hands out the next posting struct slot.
func (a *clusterArena) nextPosting() *bitset.Posting {
	p := &a.posts[a.po]
	a.po++
	return p
}

// nextBitset hands out the next dense-backing struct slot.
func (a *clusterArena) nextBitset() *bitset.Bitset {
	b := &a.bsets[a.bo]
	a.bo++
	return b
}

// takeDict copies src into the dictionary slab and returns the
// capacity-clamped arena-backed slice.
func (a *clusterArena) takeDict(src []dictEntry) []dictEntry {
	n := len(src)
	s := a.dict[a.do : a.do+n : a.do+n]
	a.do += n
	copy(s, src)
	return s
}

// takeFlat hands out n equality-table slots, capacity-clamped.
func (a *clusterArena) takeFlat(n int) []*bitset.Posting {
	s := a.flat[a.fo : a.fo+n : a.fo+n]
	a.fo += n
	return s
}

// bytes reports the arena's total backing size — the figure behind the
// apcm_arena_bytes gauge.
func (a *clusterArena) bytes() int64 {
	const (
		postingSize = 40 // unsafe.Sizeof(bitset.Posting{}) on 64-bit
		bitsetSize  = 32
		dictSize    = 24
	)
	return int64(len(a.words))*8 +
		int64(len(a.ids))*4 +
		int64(len(a.posts))*postingSize +
		int64(len(a.bsets))*bitsetSize +
		int64(len(a.dict))*dictSize +
		int64(len(a.flat))*8 +
		int64(len(a.kill))*4 +
		int64(len(a.cnt))*2
}
