package core

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/osr"
	"github.com/streammatch/apcm/workload"
)

func batchWorkload(t *testing.T, seed int64, subs int) (*Matcher, *workload.Generator) {
	t.Helper()
	p := workload.Default()
	p.Seed = seed
	g, err := workload.New(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig())
	for _, x := range g.Expressions(subs) {
		if err := m.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	m.PrepareAll()
	return m, g
}

func sortedIDs(ids []expr.ID) []expr.ID {
	out := append([]expr.ID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestMatchBatchAppendEquivalence checks the batch path (memo, elig
// cache, equal-event dedup) against per-event MatchWith on a
// locality-ordered batch with duplicated events.
func TestMatchBatchAppendEquivalence(t *testing.T) {
	m, g := batchWorkload(t, 7, 4000)
	rng := rand.New(rand.NewSource(99))

	events := make([]*expr.Event, 0, 256)
	for i := 0; i < 192; i++ {
		events = append(events, g.Event())
	}
	// Duplicates exercise the shared-segment dedup path.
	for i := 0; i < 64; i++ {
		events = append(events, events[rng.Intn(192)])
	}
	osr.Reorder(events)

	s := m.NewScratch()
	offs := make([]int32, 2*len(events))
	ids, nd := m.MatchBatchAppend(s, nil, offs, events, true)
	if nd == 0 {
		t.Fatalf("duplicated events not reported as deduped")
	}

	ref := m.NewScratch()
	for i, ev := range events {
		want := sortedIDs(m.MatchWith(ref, nil, ev))
		got := sortedIDs(ids[offs[2*i]:offs[2*i+1]])
		if len(got) != len(want) {
			t.Fatalf("event %d: got %d matches, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("event %d: got %v want %v", i, got, want)
			}
		}
	}

	memoHits, memoLookups, _, eligLookups, dedups := m.BatchCounters()
	if memoLookups > 0 && memoHits == 0 && len(events) > 1 {
		t.Logf("memo saw %d lookups, 0 hits (workload may be equality-only)", memoLookups)
	}
	if eligLookups == 0 {
		t.Fatalf("eligibility cache never consulted")
	}
	if dedups == 0 {
		t.Fatalf("duplicated events not deduped")
	}
}

// TestBatchMemoInvalidatedByChurn mutates clusters between batches and
// checks results stay correct: revisions must invalidate both the memo
// and the eligibility cache.
func TestBatchMemoInvalidatedByChurn(t *testing.T) {
	m, g := batchWorkload(t, 21, 3000)
	rng := rand.New(rand.NewSource(5))

	s := m.NewScratch()
	offs := make([]int32, 2*64)
	live := make([]expr.ID, 0, 3000)
	m.ForEach(func(x *expr.Expression) bool { live = append(live, x.ID); return true })
	nextID := expr.ID(1 << 20)

	for round := 0; round < 8; round++ {
		events := make([]*expr.Event, 64)
		for i := range events {
			// A small event pool makes repeats (and thus cache reuse)
			// certain within and across rounds.
			events[i] = g.Event()
		}
		osr.Reorder(events)
		ids, _ := m.MatchBatchAppend(s, nil, offs, events, true)

		ref := m.NewScratch()
		for i, ev := range events {
			want := sortedIDs(m.MatchWith(ref, nil, ev))
			got := sortedIDs(ids[offs[2*i]:offs[2*i+1]])
			if len(got) != len(want) {
				t.Fatalf("round %d event %d: got %d matches, want %d", round, i, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("round %d event %d: mismatch", round, i)
				}
			}
		}

		// Churn: delete a handful, insert a handful.
		for k := 0; k < 20 && len(live) > 0; k++ {
			i := rng.Intn(len(live))
			if m.Delete(live[i]) {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, x := range g.Expressions(20) {
			nx, err := expr.New(nextID, x.Preds...)
			if err != nil {
				t.Fatal(err)
			}
			nextID++
			if err := m.Insert(nx); err != nil {
				t.Fatal(err)
			}
			live = append(live, nx.ID)
		}
	}
}

// TestDisableMemo checks the ablation switch: no memo lookups happen and
// results are unchanged.
func TestDisableMemo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableMemo = true
	p := workload.Default()
	p.Seed = 3
	g, err := workload.New(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg)
	for _, x := range g.Expressions(1500) {
		if err := m.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	m.PrepareAll()

	events := make([]*expr.Event, 128)
	for i := range events {
		events[i] = g.Event()
	}
	osr.Reorder(events)
	s := m.NewScratch()
	offs := make([]int32, 2*len(events))
	ids, _ := m.MatchBatchAppend(s, nil, offs, events, true)
	ref := m.NewScratch()
	for i, ev := range events {
		want := sortedIDs(m.MatchWith(ref, nil, ev))
		got := sortedIDs(ids[offs[2*i]:offs[2*i+1]])
		if len(got) != len(want) {
			t.Fatalf("event %d: got %d matches, want %d", i, len(got), len(want))
		}
	}
	if _, memoLookups, _, _, _ := m.BatchCounters(); memoLookups != 0 {
		t.Fatalf("memo consulted %d times with DisableMemo set", memoLookups)
	}
}

// TestPoolCostAppend checks weights are positive for probed and
// unprobed pools alike.
func TestPoolCostAppend(t *testing.T) {
	m, g := batchWorkload(t, 11, 2000)
	s := m.NewScratch()
	for i := 0; i < 500; i++ {
		m.MatchWith(s, nil, g.Event())
	}
	pools := m.CollectPools(nil, g.Event())
	if len(pools) == 0 {
		t.Skip("no candidate pools for event")
	}
	weights := m.PoolCostAppend(nil, pools)
	if len(weights) != len(pools) {
		t.Fatalf("got %d weights for %d pools", len(weights), len(pools))
	}
	for i, w := range weights {
		if w <= 0 {
			t.Fatalf("pool %d: non-positive weight %d", i, w)
		}
	}
}
