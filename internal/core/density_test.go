package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/betree"
	"github.com/streammatch/apcm/workload"
)

// TestEqFlatIncrementalAppendFallback pins the flat-equality coherence
// rule: an incremental append whose equality value lands outside the
// compiled [eqLo, eqLo+len) range must drop eqFlat (the map stays
// authoritative), and matching must keep agreeing with the scan kernel
// for both old and new values.
func TestEqFlatIncrementalAppendFallback(t *testing.T) {
	const attr = expr.AttrID(1)
	pool := &betree.Pool{}
	for i := 0; i < 20; i++ {
		pool.Exprs = append(pool.Exprs,
			expr.MustNew(expr.ID(i+1), expr.Eq(attr, expr.Value(i%10))))
	}
	c := compile(pool)
	li, ok := c.attrIdx[attr]
	if !ok {
		t.Fatal("attribute missing from compiled universe")
	}
	g := &c.groups[li]
	if g.eqFlat == nil {
		t.Fatalf("narrow value range [0,10) should compile a flat table (lo=%d)", g.eqLo)
	}

	// In-range append must keep the table coherent.
	inRange := expr.MustNew(100, expr.Eq(attr, 3))
	pool.Exprs = append(pool.Exprs, inRange)
	pool.Gen++
	if !c.tryAppend(pool, inRange) {
		t.Fatal("in-range append should fit the slack capacity")
	}
	if g.eqFlat == nil {
		t.Fatal("in-range append must not drop the flat table")
	}

	// Out-of-range append must drop it and fall back to the map.
	outRange := expr.MustNew(101, expr.Eq(attr, 5000))
	pool.Exprs = append(pool.Exprs, outRange)
	pool.Gen++
	if !c.tryAppend(pool, outRange) {
		t.Fatal("out-of-range append should still fit the slack capacity")
	}
	if g.eqFlat != nil {
		t.Fatal("append outside the compiled value range must drop eqFlat")
	}

	var ks kernelScratch
	for _, v := range []expr.Value{0, 3, 5000, 77} {
		ev := expr.MustEvent(expr.P(attr, v))
		a, _ := c.matchCompressed(&ks, ev, nil)
		b, _ := scanPool(&ks, pool.Exprs, ev, nil)
		if !sameIDs(a, b) {
			t.Fatalf("value %d: compressed %v scan %v", v, a, b)
		}
	}
}

// TestPropKernelsAgreeAcrossLayoutOpts extends the kernel equivalence
// property across every density-layout lever: forced-dense postings,
// no flat equality tables, unordered group evaluation, and all three at
// once (the legacy layout). Group effects commute, so every variant must
// produce the same match set as the scan kernel.
func TestPropKernelsAgreeAcrossLayoutOpts(t *testing.T) {
	variants := []layoutOpts{
		{},
		{forceDense: true},
		{noEqFlat: true},
		{noOrder: true},
		{forceDense: true, noEqFlat: true, noOrder: true},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.Default()
		p.Seed = seed
		p.NumAttrs = 6 + rng.Intn(10)
		p.Cardinality = 5 + rng.Intn(30)
		p.EventAttrs = 1 + rng.Intn(p.NumAttrs)
		p.PredsMin, p.PredsMax = 1, 4
		p.WEquality = rng.Float64()
		p.WRange = rng.Float64()
		p.MatchFraction = 0.4
		if p.WEquality+p.WRange == 0 {
			p.WEquality = 1
		}
		p.PredPoolSize = rng.Intn(5)
		g, err := workload.New(p)
		if err != nil {
			return false
		}
		pool := &betree.Pool{Exprs: g.Expressions(1 + rng.Intn(200))}
		cs := make([]*compiled, len(variants))
		for i, lo := range variants {
			cs[i] = compileOpts(pool, lo)
		}
		var ks kernelScratch
		for trial := 0; trial < 15; trial++ {
			ev := g.Event()
			want, _ := scanPool(&ks, pool.Exprs, ev, nil)
			for i, c := range cs {
				got, _ := c.matchCompressed(&ks, ev, nil)
				if !sameIDs(got, want) {
					t.Logf("seed %d variant %+v: compressed %v scan %v on %s",
						seed, variants[i], got, want, ev)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestScratchBufferInlineCache pins the two-entry inline cache in front
// of the size-keyed buffer map: repeated and alternating same-size gets
// are served without touching (or growing) the map, and each size keeps
// a stable buffer identity.
func TestScratchBufferInlineCache(t *testing.T) {
	var s kernelScratch
	b64 := s.get(64)
	if s.get(64) != b64 {
		t.Fatal("repeated get(64) must return the cached buffers")
	}
	b128 := s.get(128)
	if b128 == b64 {
		t.Fatal("distinct sizes must not share buffers")
	}
	// Alternating between two sizes stays in the inline slots.
	mapLen := len(s.bySize)
	for i := 0; i < 10; i++ {
		if s.get(64) != b64 || s.get(128) != b128 {
			t.Fatal("alternating sizes lost buffer identity")
		}
	}
	if len(s.bySize) != mapLen {
		t.Fatalf("alternating gets grew the map: %d -> %d", mapLen, len(s.bySize))
	}
	// A third size evicts through the map but identities stay stable.
	b192 := s.get(192)
	if s.get(64) != b64 || s.get(128) != b128 || s.get(192) != b192 {
		t.Fatal("three-size rotation lost buffer identity")
	}
	if b64.alive.Len() != 64 || b128.alive.Len() != 128 || b192.alive.Len() != 192 {
		t.Fatal("buffers sized wrong")
	}
}
