package commitlog

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// Crash schedules for the offset-journal compaction rewrite: a Set
// that crosses the compaction threshold rewrites the journal via
// temp+fsync+rename, and a crash at any stage of that dance must
// recover an offset that is (a) monotone — never ahead of the last
// acknowledged value — and (b) no older than the value the previous
// compaction sealed. Because Set appends the triggering value to the
// journal *before* compacting, every crash point recovers exactly the
// latest acknowledged offset; these tests pin that down, plus the
// orphan-temp cleanup for the pre-rename window.

// fillToCompaction acks ascending offsets until the journal is one Set
// away from the compaction threshold, returning the next offset to ack.
func fillToCompaction(t *testing.T, o *OffsetStore, name string, start uint64) uint64 {
	t.Helper()
	next := start
	for o.sizes[name]+8 < compactAt {
		if err := o.Set(name, next); err != nil {
			t.Fatal(err)
		}
		next++
	}
	return next
}

func TestOffsetCompactionCrashMatrix(t *testing.T) {
	points := []OffsetFailpoint{OfpCompactWrite, OfpPreRename, OfpPostRename}
	for _, point := range points {
		point := point
		t.Run(point.String(), func(t *testing.T) {
			dir := t.TempDir()
			o, err := OpenOffsets(dir)
			if err != nil {
				t.Fatal(err)
			}
			boom := errors.New("injected crash")
			armed := false
			o.Failpoint = func(p OffsetFailpoint, name string) error {
				if armed && p == point {
					return boom
				}
				return nil
			}
			next := fillToCompaction(t, o, "c1", 0)
			armed = true
			// This Set crosses the threshold and "crashes" mid-compaction.
			if err := o.Set("c1", next); !errors.Is(err, boom) {
				t.Fatalf("Set across compaction = %v, want injected crash", err)
			}
			o.Close()

			re, err := OpenOffsets(dir)
			if err != nil {
				t.Fatalf("reopen after %s crash: %v", point, err)
			}
			defer re.Close()
			got, ok := re.Get("c1")
			if !ok {
				t.Fatalf("offset lost after %s crash", point)
			}
			// The crashed Set's value was appended to the journal before
			// compaction began, so every crash point recovers it exactly.
			if got != next {
				t.Fatalf("recovered offset %d after %s crash, want %d", got, point, next)
			}
			// No orphan temp survives recovery.
			if _, err := os.Stat(filepath.Join(dir, offsetsDir, "c1.off.tmp")); !os.IsNotExist(err) {
				t.Fatalf("orphan temp file survived recovery (stat err = %v)", err)
			}
			// The store remains fully usable: acks advance and compaction
			// completes next time around.
			if err := re.Set("c1", next+1); err != nil {
				t.Fatal(err)
			}
			if got, _ := re.Get("c1"); got != next+1 {
				t.Fatalf("post-recovery Set: got %d, want %d", got, next+1)
			}
		})
	}
}

// TestOffsetCompactionCrashSeeded runs randomized multi-consumer ack
// schedules with a crash injected at a random compaction point, then
// verifies every consumer recovers its exact last-acknowledged offset.
// The seed comes from APCM_FAULT_SEED via the broker matrix convention;
// here a fixed set of derived seeds keeps the run deterministic.
func TestOffsetCompactionCrashSeeded(t *testing.T) {
	schedules := 20
	if testing.Short() {
		schedules = 5
	}
	for i := 0; i < schedules; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(i) * 7919))
			dir := t.TempDir()
			o, err := OpenOffsets(dir)
			if err != nil {
				t.Fatal(err)
			}
			point := OffsetFailpoint(rng.Intn(3))
			crashAfter := rng.Intn(3) // let a few compactions succeed first
			boom := errors.New("injected crash")
			seen := 0
			o.Failpoint = func(p OffsetFailpoint, name string) error {
				if p != point {
					return nil
				}
				if seen++; seen > crashAfter {
					return boom
				}
				return nil
			}
			names := []string{"alpha", "beta", "gamma"}
			last := map[string]uint64{}
			crashed := false
			for step := 0; step < 40000 && !crashed; step++ {
				name := names[rng.Intn(len(names))]
				nextv := last[name] + 1 + uint64(rng.Intn(3))
				err := o.Set(name, nextv)
				switch {
				case errors.Is(err, boom):
					// The value was journaled before compaction; it counts.
					last[name] = nextv
					crashed = true
				case err != nil:
					t.Fatal(err)
				default:
					last[name] = nextv
				}
			}
			o.Close()
			if !crashed {
				t.Fatalf("schedule %d never reached a compaction crash", i)
			}

			re, err := OpenOffsets(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			for name, want := range last {
				got, ok := re.Get(name)
				if !ok && want > 0 {
					t.Fatalf("%s: offset lost", name)
				}
				if got != want {
					t.Fatalf("%s: recovered %d, want %d (point %v)", name, got, want, point)
				}
			}
			// Min still reports the low-water mark over all consumers.
			wantMin, okAny := ^uint64(0), false
			for _, v := range last {
				if v < wantMin {
					wantMin, okAny = v, true
				}
			}
			if gotMin, ok := re.Min(); okAny && (!ok || gotMin != wantMin) {
				t.Fatalf("Min = %d,%v, want %d", gotMin, ok, wantMin)
			}
		})
	}
}
