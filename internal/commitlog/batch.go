// Package commitlog is a segmented append-only record log with
// batch-commit semantics, modeled on the simple-commit-log design: an
// append stages its record into an in-memory batch, batches are flushed
// to fixed-size segment files when they reach a byte threshold or a
// block-time deadline (whichever first), and an append does not return
// until its batch is on disk (fsync'd unless Config.NoFsync). Recovery
// scans the segment chain, truncates a torn tail batch back to the last
// valid boundary, and resumes appending at the recovered offset, so the
// commit point — the moment Append returns — survives crashes.
//
// The broker uses one Log for durable match delivery plus an
// OffsetStore tracking each consumer's acknowledged position; both live
// under one directory:
//
//	dir/
//	  00000000000000000000.seg   segment files, named by base offset
//	  00000000000000004096.seg
//	  offsets/<consumer>.off     acknowledged-offset journals
package commitlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// MaxRecord bounds a single record's payload (matches the broker's
// MaxFrame, so any deliverable frame is loggable).
const MaxRecord = 1 << 20

// maxBatchData is a sanity bound on a batch's data length, rejecting
// absurd headers before any allocation or long walk. It comfortably
// exceeds the largest batch a Log can stage (FlushBytes cap + one max
// record).
const maxBatchData = 1 << 25

// Batch header layout (headerSize bytes, big-endian):
//
//	[0]     magic (batchMagic)
//	[1:5]   crc32 (IEEE) over bytes [5:end-of-batch]
//	[5:13]  base offset of the first record
//	[13:17] record count
//	[17:21] data length (bytes of record data after the header)
//
// Record data is a sequence of (uvarint length, payload) pairs. The crc
// covers the base offset, count, data length and every record byte, so
// a torn write, a bit flip or a spliced header all fail closed.
const (
	batchMagic = 0xA7
	headerSize = 21
)

// ErrCorrupt marks a batch that fails structural or checksum
// validation. Scanner wraps it with detail; recovery truncates at the
// first corrupt batch; readers treat it as fatal.
var ErrCorrupt = errors.New("commitlog: corrupt batch")

// fillHeader writes the batch header into b[0:headerSize], where
// b[headerSize:] already holds the record data. It is the only batch
// encoder; callers reserve the header space up front so encoding is a
// fill-in-place, not a copy.
//
//apcm:hotpath
func fillHeader(b []byte, base uint64, count uint32) {
	b[0] = batchMagic
	binary.BigEndian.PutUint64(b[5:13], base)
	binary.BigEndian.PutUint32(b[13:17], count)
	binary.BigEndian.PutUint32(b[17:21], uint32(len(b)-headerSize))
	binary.BigEndian.PutUint32(b[1:5], crc32.ChecksumIEEE(b[5:]))
}

// appendBatch encodes records as one batch starting at base and appends
// it to dst (test and tooling helper; the Log's flush path encodes in
// place via fillHeader).
func appendBatch(dst []byte, base uint64, records [][]byte) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, headerSize)...)
	for _, rec := range records {
		dst = binary.AppendUvarint(dst, uint64(len(rec)))
		dst = append(dst, rec...)
	}
	fillHeader(dst[start:], base, uint32(len(records)))
	return dst
}

// Scanner iterates the batches of one segment's bytes. It never panics
// or over-reads on corrupt input: Next returns false at the first
// invalid, truncated or discontinuous batch, Err reports why (nil for a
// clean end of input), and ValidBytes marks the truncation point — the
// end of the last fully valid batch — that recovery rolls back to.
type Scanner struct {
	data  []byte
	pos   int    // end of the last valid batch
	start int    // start of the current batch
	next  uint64 // expected base offset of the next batch
	err   error

	base  uint64 // base offset of the current batch
	count uint32
	recs  [][]byte // records of the current batch (aliases data)
}

// NewScanner scans data, expecting the first batch to start at offset
// base (a segment's base offset; 0 for standalone byte streams).
func NewScanner(data []byte, base uint64) *Scanner {
	return &Scanner{data: data, next: base}
}

// Next advances to the next batch, validating structure, checksum and
// offset continuity. It returns false at end of input or on the first
// invalid batch (Err distinguishes the two).
func (s *Scanner) Next() bool {
	if s.err != nil || s.pos == len(s.data) {
		return false
	}
	rest := s.data[s.pos:]
	if len(rest) < headerSize {
		s.err = fmt.Errorf("%w: %d-byte tail shorter than header", ErrCorrupt, len(rest))
		return false
	}
	if rest[0] != batchMagic {
		s.err = fmt.Errorf("%w: bad magic 0x%02x", ErrCorrupt, rest[0])
		return false
	}
	base := binary.BigEndian.Uint64(rest[5:13])
	count := binary.BigEndian.Uint32(rest[13:17])
	dataLen := binary.BigEndian.Uint32(rest[17:21])
	if dataLen > maxBatchData {
		s.err = fmt.Errorf("%w: data length %d exceeds bound", ErrCorrupt, dataLen)
		return false
	}
	if count > dataLen { // every record costs at least 1 length byte
		s.err = fmt.Errorf("%w: %d records in %d data bytes", ErrCorrupt, count, dataLen)
		return false
	}
	end := headerSize + int(dataLen)
	if len(rest) < end {
		s.err = fmt.Errorf("%w: batch of %d bytes truncated at %d", ErrCorrupt, end, len(rest))
		return false
	}
	if got := crc32.ChecksumIEEE(rest[5:end]); got != binary.BigEndian.Uint32(rest[1:5]) {
		s.err = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		return false
	}
	if base != s.next {
		s.err = fmt.Errorf("%w: batch base %d, expected %d", ErrCorrupt, base, s.next)
		return false
	}
	// Checksum holds; the record walk below can still fail if the batch
	// was encoded wrong (lengths not summing to dataLen), which is
	// corruption of a different kind — same verdict.
	s.recs = s.recs[:0]
	body := rest[headerSize:end]
	for i := uint32(0); i < count; i++ {
		rlen, n := binary.Uvarint(body)
		if n <= 0 || rlen > MaxRecord || uint64(len(body)-n) < rlen {
			s.err = fmt.Errorf("%w: record %d/%d malformed", ErrCorrupt, i, count)
			return false
		}
		s.recs = append(s.recs, body[n:n+int(rlen)])
		body = body[n+int(rlen):]
	}
	if len(body) != 0 {
		s.err = fmt.Errorf("%w: %d trailing bytes after %d records", ErrCorrupt, len(body), count)
		return false
	}
	s.base = base
	s.count = count
	s.start = s.pos
	s.pos += end
	s.next = base + uint64(count)
	return true
}

// Base returns the base offset of the current batch (valid after a true
// Next).
func (s *Scanner) Base() uint64 { return s.base }

// Records returns the current batch's records; the slices alias the
// scanned data and are invalidated by the next call to Next.
func (s *Scanner) Records() [][]byte { return s.recs }

// Count returns the record count of the current batch.
func (s *Scanner) Count() uint32 { return s.count }

// RawBatch returns the current batch's full on-disk bytes, header
// included — the unit replication ships verbatim so the follower's
// batch boundaries (and therefore its resume offsets) always coincide
// with the leader's. The slice aliases the scanned data.
func (s *Scanner) RawBatch() []byte { return s.data[s.start:s.pos] }

// Err returns nil after a clean scan to end of input, or an ErrCorrupt-
// wrapped error describing why scanning stopped early.
func (s *Scanner) Err() error { return s.err }

// ValidBytes is the byte length of the longest valid batch prefix seen
// so far — the truncation point recovery rolls a torn segment back to.
func (s *Scanner) ValidBytes() int { return s.pos }

// NextOffset is the offset one past the last scanned record (the
// segment base before any batch is read).
func (s *Scanner) NextOffset() uint64 { return s.next }
