//go:build race

package commitlog

// raceEnabled reports that this test binary was built with -race; the
// allocation gate skips because the race runtime instruments allocation
// and sync paths, so "0 allocs steady state" is unmeasurable.
const raceEnabled = true
