package commitlog

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// quickSeed mirrors broker/fault_test.go's convention: deterministic by
// default, overridable for replay (the seed is part of the rand source
// handed to testing/quick).
const quickSeed = 1

// batchPayload generates record sets covering the interesting shapes:
// empty batches, single records, empty records, and records around the
// staging-buffer and MaxRecord boundaries.
type batchPayload struct {
	base uint64
	recs [][]byte
}

func (batchPayload) Generate(r *rand.Rand, size int) reflect.Value {
	p := batchPayload{base: uint64(r.Int63n(1 << 40))}
	n := r.Intn(size + 1)
	for i := 0; i < n; i++ {
		var rlen int
		switch r.Intn(10) {
		case 0:
			rlen = 0 // empty record
		case 1:
			rlen = MaxRecord // max-size record
		case 2:
			rlen = MaxRecord - 1 - r.Intn(16) // just under the cap
		default:
			rlen = r.Intn(512)
		}
		rec := make([]byte, rlen)
		r.Read(rec)
		p.recs = append(p.recs, rec)
	}
	return reflect.ValueOf(p)
}

// TestQuickBatchRoundtrip: any batch encodes and decodes back to
// itself, including several batches concatenated in offset order.
func TestQuickBatchRoundtrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(quickSeed)),
	}
	roundtrip := func(p batchPayload) bool {
		// Encode 1..3 consecutive batches by splitting p.recs.
		data := appendBatch(nil, p.base, p.recs)
		second := batchPayload{base: p.base + uint64(len(p.recs))}
		data = appendBatch(data, second.base, second.recs)

		sc := NewScanner(data, p.base)
		var got [][]byte
		for sc.Next() {
			for _, rec := range sc.Records() {
				got = append(got, append([]byte(nil), rec...))
			}
		}
		if sc.Err() != nil {
			t.Logf("scan error: %v", sc.Err())
			return false
		}
		if sc.ValidBytes() != len(data) {
			t.Logf("ValidBytes = %d, want %d", sc.ValidBytes(), len(data))
			return false
		}
		if sc.NextOffset() != p.base+uint64(len(p.recs)) {
			t.Logf("NextOffset = %d", sc.NextOffset())
			return false
		}
		if len(got) != len(p.recs) {
			t.Logf("decoded %d records, want %d", len(got), len(p.recs))
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], p.recs[i]) {
				t.Logf("record %d mismatch", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(roundtrip, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSegmentRotationInvariants drives a Log with random record
// sizes under a small segment cap and checks the structural invariants:
// offsets are assigned strictly increasing across rotations, every
// appended record is readable, and the recovery index (a fresh Open of
// the same directory) agrees exactly with a full rescan of the segment
// files.
func TestQuickSegmentRotationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(quickSeed))
	for round := 0; round < 6; round++ {
		dir := t.TempDir()
		cfg := Config{
			SegmentBytes:  int64(128 + rng.Intn(512)),
			FlushBytes:    64 + rng.Intn(256),
			FlushInterval: 100 * time.Microsecond,
		}
		l, err := Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 30 + rng.Intn(120)
		want := make(map[uint64][]byte, n)
		prev := int64(-1)
		for i := 0; i < n; i++ {
			rec := make([]byte, rng.Intn(100))
			rng.Read(rec)
			off, err := l.Append(rec)
			if err != nil {
				t.Fatal(err)
			}
			if int64(off) <= prev {
				t.Fatalf("offset %d not strictly increasing after %d", off, prev)
			}
			prev = int64(off)
			want[off] = rec
		}
		segsBefore := l.Segments()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Recovery index == full rescan: reopen and compare both the
		// recovered next offset and every record against what we wrote.
		l2, err := Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := l2.NextOffset(); got != uint64(n) {
			t.Fatalf("round %d: recovered NextOffset = %d, want %d", round, got, n)
		}
		if got := l2.Segments(); got != segsBefore {
			t.Fatalf("round %d: recovered %d segments, had %d", round, got, segsBefore)
		}
		got := make(map[uint64][]byte, n)
		err = l2.Read(0, func(off uint64, rec []byte) error {
			if _, dup := got[off]; dup {
				return fmt.Errorf("offset %d read twice", off)
			}
			got[off] = append([]byte(nil), rec...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: rescan found %d records, want %d", round, len(got), len(want))
		}
		for off, rec := range want {
			if !bytes.Equal(got[off], rec) {
				t.Fatalf("round %d: record %d mismatch", round, off)
			}
		}
		l2.Close()
	}
}
