package commitlog

import (
	"testing"
	"time"
)

func benchLog(b *testing.B, noFsync bool) *Log {
	b.Helper()
	l, err := Open(b.TempDir(), Config{
		SegmentBytes:  64 << 20,
		NoFsync:       noFsync,
		FlushInterval: 500 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	return l
}

// BenchmarkLogAppend measures the single-appender staging+flush path
// with fsync disabled (the CPU cost the 0-alloc gate protects).
func BenchmarkLogAppend(b *testing.B) {
	l := benchLog(b, true)
	rec := make([]byte, 256)
	b.SetBytes(int64(len(rec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogAppendParallel exercises group commit: concurrent
// appenders share flushes, so per-append cost drops with parallelism.
func BenchmarkLogAppendParallel(b *testing.B) {
	l := benchLog(b, true)
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rec := make([]byte, 256)
		for pb.Next() {
			if _, err := l.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLogAppendFsyncParallel is the durable configuration: every
// commit is fsync'd, and group commit amortizes the fsync across the
// appenders blocked on the same batch.
func BenchmarkLogAppendFsyncParallel(b *testing.B) {
	l := benchLog(b, false)
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rec := make([]byte, 256)
		for pb.Next() {
			if _, err := l.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
