package commitlog

import (
	"errors"
	"fmt"
	"os"
	"time"
)

// This file is the replication surface of the log: what a leader needs
// to ship its committed prefix (sealed-segment fetch + batch streaming
// from the group-commit watermark) and what a follower needs to ingest
// it verbatim (whole-segment install, per-batch ingest, bootstrap past
// retention). Batches are shipped as their on-disk bytes, so the
// follower's batch boundaries — and therefore every offset a consumer
// could resume from — coincide with the leader's, and the follower's
// own torn-tail recovery in Open works unchanged after a crash.
//
// Alongside the fsync watermark (committed) the log tracks a
// replicated watermark: the next offset an attached follower has not
// yet acknowledged durable. Retention never deletes a segment an
// attached follower still needs, and WaitReplicated lets the broker's
// -repl-sync mode tighten delivery to delivered ⊆ committed ⊆
// replicated.

// Errors returned by the replication API.
var (
	// ErrNotReplicable: the requested read position is not available
	// (retained away, beyond committed, or not a batch boundary).
	ErrNotReplicable = errors.New("commitlog: position not replicable")
	// ErrNotEmpty: the operation requires a pristine (never-written)
	// log, e.g. follower bootstrap.
	ErrNotEmpty = errors.New("commitlog: log not empty")
)

// SegmentInfo describes one sealed segment, the unit of bulk catch-up.
type SegmentInfo struct {
	Base uint64 // offset of the first record
	End  uint64 // offset one past the last record
	Size int64  // file size in bytes
}

// SealedSegments lists the sealed segments, oldest first. The active
// segment is excluded — its tail is still moving, so it is shipped by
// batch streaming instead.
func (l *Log) SealedSegments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, 0, len(l.segs))
	for _, sg := range l.segs {
		out = append(out, SegmentInfo{Base: sg.base, End: sg.end, Size: sg.size})
	}
	return out
}

// ReadSegment returns the full bytes of the sealed segment whose base
// offset is base. The caller checksums the transfer; the batch CRCs
// inside the data are re-verified by InstallSegment on the far side
// regardless.
func (l *Log) ReadSegment(base uint64) ([]byte, SegmentInfo, error) {
	l.mu.Lock()
	var info SegmentInfo
	var path string
	for _, sg := range l.segs {
		if sg.base == base {
			info = SegmentInfo{Base: sg.base, End: sg.end, Size: sg.size}
			path = sg.path
			break
		}
	}
	l.mu.Unlock()
	if path == "" {
		return nil, SegmentInfo{}, fmt.Errorf("%w: no sealed segment at base %d", ErrNotReplicable, base)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, SegmentInfo{}, err
	}
	return data, info, nil
}

// ReadBatches invokes fn for every committed batch whose base offset is
// >= from, in offset order, passing the batch's raw on-disk bytes.
// from must be a batch boundary of this log (it always is when the
// caller is resuming a follower that ingests whole batches); a position
// inside a batch, below the retention floor, or beyond the committed
// watermark returns ErrNotReplicable. raw aliases an internal buffer
// and must not be retained across calls.
func (l *Log) ReadBatches(from uint64, fn func(base uint64, count uint32, raw []byte) error) error {
	l.mu.Lock()
	segs := make([]segment, 0, len(l.segs)+1)
	segs = append(segs, l.segs...)
	act := l.active
	act.end = l.committed
	segs = append(segs, act)
	first := l.segs
	lo := act.base
	if len(first) > 0 {
		lo = first[0].base
	}
	l.mu.Unlock()

	if from < lo {
		return fmt.Errorf("%w: offset %d below retained first offset %d", ErrNotReplicable, from, lo)
	}
	if from > act.end {
		return fmt.Errorf("%w: offset %d beyond committed %d", ErrNotReplicable, from, act.end)
	}
	for _, sg := range segs {
		if sg.end <= from || sg.end == sg.base {
			continue
		}
		data, err := os.ReadFile(sg.path)
		if err != nil {
			if os.IsNotExist(err) {
				// Retention raced the snapshot; the clamp prevents this
				// for attached followers, so treat it as not replicable.
				return fmt.Errorf("%w: segment at base %d deleted", ErrNotReplicable, sg.base)
			}
			return err
		}
		sc := NewScanner(data, sg.base)
		for sc.Next() {
			if sc.Base() >= sg.end {
				break // flushed after our snapshot; not committed to us
			}
			if sc.NextOffset() <= from {
				continue
			}
			if sc.Base() < from {
				return fmt.Errorf("%w: offset %d is inside a batch [%d,%d)", ErrNotReplicable, from, sc.Base(), sc.NextOffset())
			}
			if err := fn(sc.Base(), sc.Count(), sc.RawBatch()); err != nil {
				return err
			}
		}
		if sc.NextOffset() < sg.end {
			if err := sc.Err(); err != nil {
				return fmt.Errorf("commitlog: reading %s: %w", sg.path, err)
			}
			return fmt.Errorf("%w: segment %s ends at offset %d, expected %d", ErrCorrupt, sg.path, sc.NextOffset(), sg.end)
		}
	}
	return nil
}

// IngestBatch validates raw as exactly one batch whose base offset is
// this log's next offset, appends it to the active segment verbatim
// (rotating first if it would overflow), fsyncs unless Config.NoFsync,
// and advances both the next and committed watermarks. It is the
// follower half of replication: the log must have no concurrent
// appenders (a follower log never does), which is enforced by
// rejecting the call while records are staged.
//
//apcm:durable
func (l *Log) IngestBatch(raw []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if l.stagedCount != 0 {
		return 0, fmt.Errorf("commitlog: IngestBatch on a log with staged appends")
	}
	sc := NewScanner(raw, l.next)
	if !sc.Next() {
		if err := sc.Err(); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("%w: empty batch", ErrCorrupt)
	}
	if sc.ValidBytes() != len(raw) {
		return 0, fmt.Errorf("%w: %d trailing bytes after batch", ErrCorrupt, len(raw)-sc.ValidBytes())
	}
	count := sc.Count()
	if l.active.size > 0 && l.active.size+int64(len(raw)) > l.cfg.SegmentBytes {
		if err := l.rotateLocked(l.next); err != nil {
			l.failLocked(err)
			return 0, err
		}
	}
	fp := l.cfg.Failpoint
	if fp != nil {
		if err := fp(FailpointInfo{Point: FpWrite, Path: l.active.path, Size: l.active.size, Synced: l.synced}); err != nil {
			l.failLocked(err)
			return 0, err
		}
	}
	if _, err := l.f.Write(raw); err != nil {
		l.failLocked(err)
		return 0, err
	}
	if fp != nil {
		if err := fp(FailpointInfo{Point: FpPreSync, Path: l.active.path, Size: l.active.size + int64(len(raw)), Synced: l.synced}); err != nil {
			l.failLocked(err)
			return 0, err
		}
	}
	if !l.cfg.NoFsync {
		if err := l.f.Sync(); err != nil {
			l.failLocked(err)
			return 0, err
		}
	}
	if fp != nil {
		if err := fp(FailpointInfo{Point: FpPostSync, Path: l.active.path, Size: l.active.size + int64(len(raw)), Synced: l.active.size + int64(len(raw))}); err != nil {
			l.failLocked(err)
			return 0, err
		}
	}
	l.active.size += int64(len(raw))
	if !l.cfg.NoFsync {
		l.synced = l.active.size
	}
	l.next += uint64(count)
	l.committed = l.next
	l.active.end = l.committed
	l.mIngests.Inc()
	l.mIngestedB.Add(int64(len(raw)))
	l.cond.Broadcast()
	return l.next, nil
}

// InstallSegment installs data as a complete sealed segment — the bulk
// catch-up path, used when the follower's next offset is exactly a
// sealed segment's base on the leader. The log's active segment must be
// empty (nothing ever written at this position); the data is fully
// validated batch by batch, written to a temp file, fsync'd and
// atomically renamed into the segment chain, and a fresh active segment
// is created at the installed segment's end.
//
//apcm:durable
func (l *Log) InstallSegment(data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if l.stagedCount != 0 || l.active.size != 0 {
		return fmt.Errorf("%w: active segment has %d bytes", ErrNotEmpty, l.active.size)
	}
	base := l.next
	sc := NewScanner(data, base)
	for sc.Next() {
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("commitlog: installing segment at %d: %w", base, err)
	}
	end := sc.NextOffset()
	if end == base {
		return fmt.Errorf("%w: empty segment", ErrCorrupt)
	}
	fp := l.cfg.Failpoint
	if fp != nil {
		if err := fp(FailpointInfo{Point: FpWrite, Path: l.active.path, Size: 0, Synced: 0}); err != nil {
			l.failLocked(err)
			return err
		}
	}
	tmp := l.active.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		l.failLocked(err)
		return err
	}
	tf, err := os.OpenFile(tmp, os.O_WRONLY, 0o644)
	if err != nil {
		l.failLocked(err)
		return err
	}
	if !l.cfg.NoFsync {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		l.failLocked(err)
		return err
	}
	if fp != nil {
		if err := fp(FailpointInfo{Point: FpPreSync, Path: l.active.path, Size: int64(len(data)), Synced: 0}); err != nil {
			l.failLocked(err)
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		l.failLocked(err)
		return err
	}
	l.f = nil
	if err := os.Rename(tmp, l.active.path); err != nil {
		l.failLocked(err)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		l.failLocked(err)
		return err
	}
	sealed := segment{base: base, end: end, size: int64(len(data)), path: l.active.path, mtime: time.Now()}
	l.segs = append(l.segs, sealed)
	f, err := createSegment(l.dir, end)
	if err != nil {
		l.failLocked(err)
		return err
	}
	l.f = f
	l.active = segment{base: end, end: end, path: segPath(l.dir, end)}
	l.synced = 0
	l.next = end
	l.committed = end
	l.mSegments.Add(1)
	l.mIngests.Inc()
	l.mIngestedB.Add(int64(len(data)))
	if fp != nil {
		if err := fp(FailpointInfo{Point: FpPostSync, Path: sealed.path, Size: sealed.size, Synced: sealed.size}); err != nil {
			l.failLocked(err)
			return err
		}
	}
	l.cond.Broadcast()
	return nil
}

// ResetTo repositions a pristine (never-written, nothing retained) log
// so its next offset is base — follower bootstrap when the leader has
// already retained away everything below base. Any other state returns
// ErrNotEmpty: resetting a log with data would create an offset gap.
func (l *Log) ResetTo(base uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if len(l.segs) > 0 || l.active.size != 0 || l.stagedCount != 0 || l.next != l.active.base {
		return fmt.Errorf("%w: cannot reset a log with data", ErrNotEmpty)
	}
	if base == l.active.base {
		return nil
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	old := l.active.path
	f, err := createSegment(l.dir, base)
	if err != nil {
		l.failLocked(err)
		return err
	}
	if err := os.Remove(old); err != nil && !os.IsNotExist(err) {
		f.Close()
		l.failLocked(err)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		l.failLocked(err)
		return err
	}
	l.f = f
	l.active = segment{base: base, end: base, path: segPath(l.dir, base)}
	l.synced = 0
	l.next = base
	l.committed = base
	return nil
}

// AttachReplica registers a follower whose next-needed offset is next.
// The replicated watermark is set unconditionally — a follower that
// crashed and recovered with a truncated tail legitimately re-attaches
// lower than its last acknowledgement, and the watermark (and the
// retention clamp riding on it) must drop back to cover it.
func (l *Log) AttachReplica(next uint64) {
	l.mu.Lock()
	l.replAttached = true
	l.replicated = next
	l.cond.Broadcast()
	l.mu.Unlock()
}

// DetachReplica deregisters the follower. Waiters in WaitReplicated
// are released (delivery degrades to single-node durability rather
// than blocking forever on a dead follower).
func (l *Log) DetachReplica() {
	l.mu.Lock()
	l.replAttached = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// SetReplicated advances the replicated watermark to next (follower
// acknowledgements only move it forward within one attachment; a
// re-attachment may lower it via AttachReplica).
func (l *Log) SetReplicated(next uint64) {
	l.mu.Lock()
	if l.replAttached && next > l.replicated {
		l.replicated = next
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// Replicated returns the replicated watermark and whether a follower
// is currently attached.
func (l *Log) Replicated() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replicated, l.replAttached
}

// WaitReplicated blocks until offset off is acknowledged by the
// attached follower, no follower is attached (degrade to single-node
// durability), cancelled returns true, or the log fails. The caller
// distinguishes degrade from success via Replicated if it cares;
// the -repl-sync broker counts degrades but proceeds either way.
func (l *Log) WaitReplicated(off uint64, cancelled func() bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.replAttached && l.replicated <= off && l.err == nil && !l.closed {
		if cancelled != nil && cancelled() {
			return nil
		}
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

// WaitCommitted blocks until the committed watermark exceeds after,
// then returns it — the leader's tail-streaming loop parks here
// between batches. cancelled is polled at every wakeup; arrange for
// Wake to be called after flipping whatever cancelled reads.
func (l *Log) WaitCommitted(after uint64, cancelled func() bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.committed <= after && l.err == nil && !l.closed {
		if cancelled != nil && cancelled() {
			return l.committed, nil
		}
		l.cond.Wait()
	}
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return l.committed, ErrClosed
	}
	return l.committed, nil
}

// Wake broadcasts to every waiter parked on the log's condition
// variable; cancellers call it after flipping their flag so a
// WaitCommitted/WaitReplicated poll observes the change.
func (l *Log) Wake() {
	l.mu.Lock()
	l.cond.Broadcast()
	l.mu.Unlock()
}
