package commitlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// offsetsDir is the subdirectory OffsetStore uses under a log dir.
const offsetsDir = "offsets"

// compactAt is the journal size that triggers compaction down to a
// single value.
const compactAt = 64 << 10

// ErrBadName rejects consumer names that cannot be used as file stems.
var ErrBadName = errors.New("commitlog: invalid consumer name")

// ValidName reports whether name is usable as a consumer identity:
// 1..128 bytes of [A-Za-z0-9._-], not starting with a dot (so names
// can never traverse paths or hide as dotfiles).
func ValidName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// OffsetStore persists each consumer's next offset (one past the last
// acknowledged record) as an append-only journal of 8-byte big-endian
// values, one file per consumer. Appending 8 bytes per ack keeps the
// hot path a single small write; recovery takes the last complete value
// (a torn final write falls back to the previous one — strictly older,
// so the at-least-once contract is preserved); journals compact back to
// one value when they grow past a threshold.
//
// Acks are deliberately not fsync'd: losing the tail of a journal only
// rewinds a consumer to an earlier offset, which redelivery already
// covers. Sync exists for checkpoints and shutdown.
// OffsetFailpoint identifies a crash-injection point in the journal
// compaction rewrite (Set's temp+fsync+rename dance). Tests install
// OffsetStore.Failpoint to simulate a crash mid-compaction; a non-nil
// return aborts the compaction with that error, leaving the on-disk
// state exactly as a real crash at that instant would.
type OffsetFailpoint int

// Compaction crash-injection points, in order.
const (
	// OfpCompactWrite fires before the temp file is written: the old
	// journal (which already ends with the value being compacted — Set
	// appends before compacting) is still fully intact.
	OfpCompactWrite OffsetFailpoint = iota
	// OfpPreRename fires after the temp file is written and fsync'd but
	// before the rename: both files exist; recovery must take the
	// journal and ignore the orphan temp.
	OfpPreRename
	// OfpPostRename fires after the rename but before the directory
	// fsync: the journal is the single compacted value (the rename may
	// or may not survive a power cut; either state recovers the same
	// offset).
	OfpPostRename
)

// String names the failpoint for logs and test output.
func (p OffsetFailpoint) String() string {
	switch p {
	case OfpCompactWrite:
		return "compact-write"
	case OfpPreRename:
		return "pre-rename"
	case OfpPostRename:
		return "post-rename"
	}
	return fmt.Sprintf("OffsetFailpoint(%d)", int(p))
}

type OffsetStore struct {
	dir string

	// Failpoint, when non-nil, is invoked at each compaction
	// crash-injection point with the consumer name; a non-nil return
	// aborts the compaction (test use only). Set it before any Set
	// call races it.
	Failpoint func(OffsetFailpoint, string) error

	mu     sync.Mutex
	files  map[string]*os.File
	vals   map[string]uint64
	sizes  map[string]int64
	closed bool
}

// OpenOffsets opens (or creates) the offset store rooted at dir,
// loading every consumer's recovered offset.
func OpenOffsets(dir string) (*OffsetStore, error) {
	dir = filepath.Join(dir, offsetsDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	o := &OffsetStore{
		dir:   dir,
		files: make(map[string]*os.File),
		vals:  make(map[string]uint64),
		sizes: make(map[string]int64),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			// Orphan from a compaction that crashed between writing the
			// temp file and renaming it; the journal it would have
			// replaced is intact, so the temp is garbage.
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, err
			}
			continue
		}
		name, ok := strings.CutSuffix(e.Name(), ".off")
		if e.IsDir() || !ok || !ValidName(name) {
			continue
		}
		if err := o.load(name); err != nil {
			o.Close()
			return nil, err
		}
	}
	return o, nil
}

func (o *OffsetStore) path(name string) string {
	return filepath.Join(o.dir, name+".off")
}

// load recovers one consumer's journal: truncate any torn tail to an
// 8-byte boundary, take the last complete value, reopen for append.
func (o *OffsetStore) load(name string) error {
	path := o.path(name)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	whole := int64(len(data) / 8 * 8)
	if whole != int64(len(data)) {
		if err := os.Truncate(path, whole); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	o.files[name] = f
	o.sizes[name] = whole
	if whole >= 8 {
		o.vals[name] = binary.BigEndian.Uint64(data[whole-8 : whole])
	}
	return nil
}

// Get returns the stored next offset for name (false if none).
func (o *OffsetStore) Get(name string) (uint64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	v, ok := o.vals[name]
	return v, ok
}

// Set records next as name's next offset. Regressions are ignored (the
// stored offset only moves forward), so replayed or reordered acks are
// harmless.
func (o *OffsetStore) Set(name string, next uint64) error {
	if !ValidName(name) {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return ErrClosed
	}
	if cur, ok := o.vals[name]; ok && next <= cur {
		return nil
	}
	f, ok := o.files[name]
	if !ok {
		var err error
		f, err = os.OpenFile(o.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		o.files[name] = f
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], next)
	if _, err := f.Write(buf[:]); err != nil {
		return err
	}
	o.vals[name] = next
	o.sizes[name] += 8
	if o.sizes[name] >= compactAt {
		return o.compactLocked(name, next)
	}
	return nil
}

// compactLocked rewrites name's journal as a single value via
// temp+fsync+rename, the usual atomic-replace dance.
func (o *OffsetStore) compactLocked(name string, next uint64) error {
	path := o.path(name)
	tmp := path + ".tmp"
	if fp := o.Failpoint; fp != nil {
		if err := fp(OfpCompactWrite, name); err != nil {
			return err
		}
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], next)
	if err := os.WriteFile(tmp, buf[:], 0o644); err != nil {
		return err
	}
	tf, err := os.OpenFile(tmp, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	tf.Close()
	if fp := o.Failpoint; fp != nil {
		if err := fp(OfpPreRename, name); err != nil {
			return err
		}
	}
	if old := o.files[name]; old != nil {
		old.Close()
	}
	delete(o.files, name)
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if fp := o.Failpoint; fp != nil {
		if err := fp(OfpPostRename, name); err != nil {
			return err
		}
	}
	if err := syncDir(o.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	o.files[name] = f
	o.sizes[name] = 8
	return nil
}

// Min returns the lowest stored next offset across all consumers — the
// consumer low-water mark retention must not delete past — and ok=false
// when no consumer has an offset. It takes only the store's own lock,
// so it is safe to call from a Log retention callback that runs under
// the log's lock.
func (o *OffsetStore) Min() (uint64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	min, ok := uint64(0), false
	for _, v := range o.vals {
		if !ok || v < min {
			min, ok = v, true
		}
	}
	return min, ok
}

// Names returns the consumers with stored offsets, sorted.
func (o *OffsetStore) Names() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.vals))
	for name := range o.vals {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Sync fsyncs every journal (checkpoint / shutdown path).
func (o *OffsetStore) Sync() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	var err error
	for _, f := range o.files {
		if serr := f.Sync(); err == nil {
			err = serr
		}
	}
	return err
}

// Close syncs and closes every journal.
func (o *OffsetStore) Close() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return nil
	}
	o.closed = true
	var err error
	for name, f := range o.files {
		if serr := f.Sync(); err == nil {
			err = serr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		delete(o.files, name)
	}
	return err
}
