package commitlog

import (
	"testing"
	"time"
)

// allocTolerance matches the repo-root alloc gates: absorbs a rare
// stray allocation (timer refresh, map growth in the runtime) without
// letting a real per-op allocation through.
const allocTolerance = 0.5

// TestAppendZeroAllocs gates the //apcm:hotpath append path at zero
// allocations per record in steady state: the staging buffer is
// preallocated at Open, records are staged with AppendUvarint+append
// into fixed capacity, and the flush cycle recycles the double buffer.
func TestAppendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc gates only hold on plain builds")
	}
	dir := t.TempDir()
	l, err := Open(dir, Config{
		NoFsync:       true, // measuring the CPU path, not the disk
		FlushInterval: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := make([]byte, 256)
	for i := 0; i < 64; i++ { // warm: segment file, flusher, buffers
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(400, func() {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	})
	if avg > allocTolerance {
		t.Fatalf("Append allocates %.2f/op in steady state, want 0", avg)
	}
}
