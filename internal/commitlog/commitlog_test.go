package commitlog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fastCfg keeps test flushes prompt without giving up fsync.
func fastCfg() Config {
	return Config{FlushInterval: 200 * time.Microsecond}
}

func openLog(t *testing.T, dir string, cfg Config) *Log {
	t.Helper()
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// collect reads every record from offset from into a map off->payload.
func collect(t *testing.T, l *Log, from uint64) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte)
	err := l.Read(from, func(off uint64, rec []byte) error {
		out[off] = append([]byte(nil), rec...)
		return nil
	})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return out
}

func TestAppendReadRoundtrip(t *testing.T) {
	l := openLog(t, t.TempDir(), fastCfg())
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, rec)
		off, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if off != uint64(i) {
			t.Fatalf("Append #%d returned offset %d", i, off)
		}
	}
	if got := l.Committed(); got != 100 {
		t.Fatalf("Committed = %d, want 100", got)
	}
	got := collect(t, l, 0)
	if len(got) != 100 {
		t.Fatalf("read %d records, want 100", len(got))
	}
	for i, rec := range want {
		if !bytes.Equal(got[uint64(i)], rec) {
			t.Fatalf("record %d = %q, want %q", i, got[uint64(i)], rec)
		}
	}
	// Partial read honors from.
	if part := collect(t, l, 90); len(part) != 10 {
		t.Fatalf("Read(90) yielded %d records, want 10", len(part))
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	l := openLog(t, t.TempDir(), fastCfg())
	const workers, per = 8, 50
	var wg sync.WaitGroup
	offs := make(chan uint64, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				off, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				offs <- off
			}
		}(w)
	}
	wg.Wait()
	close(offs)
	seen := make(map[uint64]bool)
	for off := range offs {
		if seen[off] {
			t.Fatalf("offset %d assigned twice", off)
		}
		seen[off] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("%d distinct offsets, want %d", len(seen), workers*per)
	}
	if got := collect(t, l, 0); len(got) != workers*per {
		t.Fatalf("read %d records, want %d", len(got), workers*per)
	}
}

func TestReopenResumesOffsets(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, fastCfg())
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, fastCfg())
	if got := l2.NextOffset(); got != 10 {
		t.Fatalf("NextOffset after reopen = %d, want 10", got)
	}
	off, err := l2.Append([]byte{99})
	if err != nil {
		t.Fatal(err)
	}
	if off != 10 {
		t.Fatalf("first append after reopen got offset %d, want 10", off)
	}
	if got := collect(t, l2, 0); len(got) != 11 {
		t.Fatalf("read %d records, want 11", len(got))
	}
}

func TestRotationAndFirstOffset(t *testing.T) {
	cfg := fastCfg()
	cfg.SegmentBytes = 256
	l := openLog(t, t.TempDir(), cfg)
	rec := bytes.Repeat([]byte{0xAB}, 64)
	for i := 0; i < 40; i++ {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.Segments(); n < 3 {
		t.Fatalf("Segments = %d, want several after 40×64B into 256B segments", n)
	}
	if got := collect(t, l, 0); len(got) != 40 {
		t.Fatalf("read %d records across rotation, want 40", len(got))
	}
	if first := l.FirstOffset(); first != 0 {
		t.Fatalf("FirstOffset = %d, want 0 (no retention configured)", first)
	}
}

func TestRetentionByBytes(t *testing.T) {
	cfg := fastCfg()
	cfg.SegmentBytes = 256
	cfg.RetainBytes = 600
	l := openLog(t, t.TempDir(), cfg)
	rec := bytes.Repeat([]byte{0xCD}, 64)
	for i := 0; i < 60; i++ {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if first := l.FirstOffset(); first == 0 {
		t.Fatal("retention never deleted the oldest segment")
	}
	// Reading from before FirstOffset returns only retained records, no error.
	got := collect(t, l, 0)
	if _, ok := got[l.FirstOffset()]; !ok {
		t.Fatalf("first retained offset %d missing from read", l.FirstOffset())
	}
	// On-disk segment files match the in-memory view.
	files, err := filepath.Glob(filepath.Join(l.Dir(), "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != l.Segments() {
		t.Fatalf("%d segment files on disk, Segments() = %d", len(files), l.Segments())
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, fastCfg())
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: garbage appended to the active segment.
	path := segPath(dir, 0)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{batchMagic, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openLog(t, dir, fastCfg())
	if l2.RecoveryTruncations() != 1 {
		t.Fatalf("RecoveryTruncations = %d, want 1", l2.RecoveryTruncations())
	}
	if got := l2.NextOffset(); got != 5 {
		t.Fatalf("NextOffset = %d, want 5", got)
	}
	if got := collect(t, l2, 0); len(got) != 5 {
		t.Fatalf("read %d records, want 5", len(got))
	}
	// And the log is fully usable after the repair.
	if _, err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryRejectsSealedCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg()
	cfg.SegmentBytes = 128
	l := openLog(t, dir, cfg)
	rec := bytes.Repeat([]byte{0xEE}, 48)
	for i := 0; i < 12; i++ {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 2 {
		t.Fatal("test needs at least one sealed segment")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first (sealed) segment.
	path := segPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, fastCfg()); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}

func TestRecordTooLarge(t *testing.T) {
	l := openLog(t, t.TempDir(), fastCfg())
	if _, err := l.Append(make([]byte, MaxRecord+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("Append(oversize) = %v, want ErrRecordTooLarge", err)
	}
	// And a max-size record is fine.
	if _, err := l.Append(make([]byte, MaxRecord)); err != nil {
		t.Fatalf("Append(MaxRecord) = %v", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	l := openLog(t, t.TempDir(), fastCfg())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestFailpointFailsSticky(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	armed := false
	var crashPath string
	var crashSynced int64
	cfg := fastCfg()
	cfg.Failpoint = func(fi FailpointInfo) error {
		if armed && fi.Point == FpPreSync {
			crashPath, crashSynced = fi.Path, fi.Synced
			return boom
		}
		return nil
	}
	l := openLog(t, dir, cfg)
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	armed = true
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, boom) {
		t.Fatalf("Append with armed failpoint = %v, want boom", err)
	}
	if _, err := l.Append([]byte("after")); !errors.Is(err, boom) {
		t.Fatalf("Append after sticky failure = %v, want boom", err)
	}
	if !errors.Is(l.Err(), boom) {
		t.Fatalf("Err = %v, want boom", l.Err())
	}
	l.Close()
	// A crash before fsync may lose the page-cache-only bytes; emulate
	// the worst case by truncating to the synced watermark. The fsync'd
	// record survives, the unsynced (never-confirmed) one is gone.
	if err := os.Truncate(crashPath, crashSynced); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, fastCfg())
	got := collect(t, l2, 0)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("ok")) {
		t.Fatalf("recovered records = %v, want just %q", got, "ok")
	}
}

func TestSyncAndEmptyRecord(t *testing.T) {
	l := openLog(t, t.TempDir(), fastCfg())
	off, err := l.Append(nil) // empty records are legal
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	if rec, ok := got[off]; !ok || len(rec) != 0 {
		t.Fatalf("empty record not round-tripped: %v", got)
	}
}

func TestOffsetStore(t *testing.T) {
	dir := t.TempDir()
	o, err := OpenOffsets(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Get("c1"); ok {
		t.Fatal("Get on empty store succeeded")
	}
	for i := uint64(1); i <= 10; i++ {
		if err := o.Set("c1", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Set("c1", 5); err != nil { // regression ignored
		t.Fatal(err)
	}
	if v, ok := o.Get("c1"); !ok || v != 10 {
		t.Fatalf("Get(c1) = %d,%v, want 10,true", v, ok)
	}
	if err := o.Set("c2", 77); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: both values recovered.
	o2, err := OpenOffsets(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	if v, _ := o2.Get("c1"); v != 10 {
		t.Fatalf("recovered c1 = %d, want 10", v)
	}
	if v, _ := o2.Get("c2"); v != 77 {
		t.Fatalf("recovered c2 = %d, want 77", v)
	}
	if got := o2.Names(); len(got) != 2 || got[0] != "c1" || got[1] != "c2" {
		t.Fatalf("Names = %v", got)
	}
}

func TestOffsetStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	o, err := OpenOffsets(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Set("c", 41); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("c", 42); err != nil {
		t.Fatal(err)
	}
	o.Close()
	// Tear the last value: truncate 3 bytes into it.
	path := filepath.Join(dir, offsetsDir, "c.off")
	if err := os.Truncate(path, 13); err != nil {
		t.Fatal(err)
	}
	o2, err := OpenOffsets(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	if v, ok := o2.Get("c"); !ok || v != 41 {
		t.Fatalf("after torn tail Get = %d,%v, want 41,true (previous value)", v, ok)
	}
	// The journal is appendable again after repair.
	if err := o2.Set("c", 43); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	o, err := OpenOffsets(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	n := compactAt/8 + 10
	for i := 1; i <= n; i++ {
		if err := o.Set("big", uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(filepath.Join(dir, offsetsDir, "big.off"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= compactAt {
		t.Fatalf("journal is %d bytes after compaction threshold", st.Size())
	}
	if v, _ := o.Get("big"); v != uint64(n) {
		t.Fatalf("value after compaction = %d, want %d", v, n)
	}
}

func TestValidName(t *testing.T) {
	good := []string{"a", "consumer-1", "A.B_c-9", "x"}
	bad := []string{"", ".hidden", "a/b", "a\\b", "..", "name with space", string(make([]byte, 200))}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false", n)
		}
	}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true", n)
		}
	}
}
