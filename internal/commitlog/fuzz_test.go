package commitlog

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzScanner feeds arbitrary bytes to the batch decoder. The contract
// under fuzz: never panic, never over-read, and always leave a valid
// truncation point — rescanning the ValidBytes prefix must succeed
// cleanly and yield the same records (this is exactly what recovery
// relies on when it truncates a torn segment).
func FuzzScanner(f *testing.F) {
	// Seeds: empty, a valid single-record batch, two consecutive
	// batches, an empty batch, and corrupted/truncated variants of each.
	f.Add([]byte{})
	valid := appendBatch(nil, 0, [][]byte{[]byte("hello")})
	f.Add(valid)
	two := appendBatch(valid, 1, [][]byte{[]byte("a"), nil, []byte("bb")})
	f.Add(two)
	f.Add(appendBatch(nil, 0, nil))
	f.Add(two[:len(two)-3]) // truncated tail
	corrupt := append([]byte(nil), two...)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 0x00
	f.Add(badMagic)

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(data, 0)
		var n int
		var recs [][]byte
		for sc.Next() {
			n++
			if n > len(data) {
				t.Fatalf("more batches (%d) than input bytes (%d)", n, len(data))
			}
			for _, rec := range sc.Records() {
				recs = append(recs, append([]byte(nil), rec...))
			}
		}
		valid := sc.ValidBytes()
		if valid < 0 || valid > len(data) {
			t.Fatalf("ValidBytes %d out of range [0,%d]", valid, len(data))
		}
		if sc.Err() == nil && valid != len(data) {
			t.Fatalf("clean scan stopped at %d of %d bytes", valid, len(data))
		}
		if sc.Err() != nil && !errors.Is(sc.Err(), ErrCorrupt) {
			t.Fatalf("scan error %v does not wrap ErrCorrupt", sc.Err())
		}
		// Truncate-to-last-valid: the valid prefix rescans cleanly and
		// reproduces the same records.
		re := NewScanner(data[:valid], 0)
		var again [][]byte
		for re.Next() {
			for _, rec := range re.Records() {
				again = append(again, append([]byte(nil), rec...))
			}
		}
		if re.Err() != nil {
			t.Fatalf("rescan of valid prefix failed: %v", re.Err())
		}
		if re.ValidBytes() != valid {
			t.Fatalf("rescan ValidBytes = %d, want %d", re.ValidBytes(), valid)
		}
		if len(again) != len(recs) {
			t.Fatalf("rescan yielded %d records, first scan %d", len(again), len(recs))
		}
		for i := range again {
			if !bytes.Equal(again[i], recs[i]) {
				t.Fatalf("record %d differs between scans", i)
			}
		}
	})
}
