package commitlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/streammatch/apcm/metrics"
)

// Errors returned by Log operations.
var (
	// ErrClosed: the log was closed.
	ErrClosed = errors.New("commitlog: closed")
	// ErrRecordTooLarge: the record exceeds MaxRecord bytes.
	ErrRecordTooLarge = errors.New("commitlog: record exceeds MaxRecord")
)

// Failpoint identifies a crash-injection point in the append/flush
// path. Tests install Config.Failpoint to simulate a process crash at
// an exact moment: returning an error from the hook puts the log into a
// sticky failed state (every Append from then on fails), which together
// with FailpointInfo's Size/Synced lets the test reconstruct exactly
// what a real crash would have left on disk.
type Failpoint int

// Crash-injection points, in hot-path order.
const (
	// FpAppend fires at the top of Append, before the record is staged:
	// a crash here loses the record entirely, which is correct — Append
	// never returned, so the caller never counted it delivered.
	FpAppend Failpoint = iota
	// FpWrite fires in the flusher after a batch is sealed but before
	// its write(2): the batch is lost, its appenders still blocked.
	FpWrite
	// FpPreSync fires after write(2) but before fsync: the batch is in
	// the page cache only. A crash test emulates the power-loss case by
	// truncating the segment back to FailpointInfo.Synced.
	FpPreSync
	// FpPostSync fires after fsync but before the commit point is
	// advanced: the batch is durable but its appenders never learn it —
	// the at-least-once window where recovery redelivers.
	FpPostSync
	// FpRotate fires during segment rotation, after the old segment is
	// sealed and before the new one is created.
	FpRotate
)

// String names the failpoint for logs and test output.
func (p Failpoint) String() string {
	switch p {
	case FpAppend:
		return "append"
	case FpWrite:
		return "write"
	case FpPreSync:
		return "pre-sync"
	case FpPostSync:
		return "post-sync"
	case FpRotate:
		return "rotate"
	}
	return fmt.Sprintf("Failpoint(%d)", int(p))
}

// FailpointInfo describes the log's on-disk state at the moment a
// failpoint fires.
type FailpointInfo struct {
	Point  Failpoint
	Path   string // active segment file
	Size   int64  // bytes written to the active segment so far
	Synced int64  // bytes of the active segment known fsync'd
}

// Config tunes a Log. The zero value is usable: 4 MiB segments, 64 KiB
// flush batches, a 2 ms block-time, fsync on every flush, unlimited
// retention.
type Config struct {
	// SegmentBytes caps a segment file; a flush that would overflow it
	// rotates to a fresh segment first. Default 4 MiB.
	SegmentBytes int64
	// FlushBytes flushes the staged batch as soon as it reaches this
	// size, and bounds the staging buffer (appends block while it is
	// full). Default 64 KiB, capped at 8 MiB.
	FlushBytes int
	// FlushInterval is the block-time bound: a staged batch is flushed
	// at latest this long after staging began, even if FlushBytes was
	// never reached. Default 2 ms.
	FlushInterval time.Duration
	// NoFsync skips fsync on flush and rotation, trading the durability
	// guarantee (a machine crash can lose committed records) for
	// throughput. Process crashes still lose nothing.
	NoFsync bool
	// RetainBytes, when > 0, deletes the oldest sealed segments once
	// total log size exceeds it. The active segment is never deleted.
	RetainBytes int64
	// RetainAge, when > 0, deletes sealed segments whose last write is
	// older than this.
	RetainAge time.Duration
	// RetainFloor, when non-nil, reports the lowest offset an external
	// reader (a registered durable consumer) still needs, or ok=false
	// when there is none. Retention never deletes a segment containing
	// offsets >= the floor. The callback runs with the log's lock held
	// and must not call back into the Log.
	RetainFloor func() (floor uint64, ok bool)
	// Metrics, when non-nil, receives append/flush/fsync latencies and
	// segment/rotation/retention counters.
	Metrics *metrics.Registry
	// Failpoint, when non-nil, is invoked at each crash-injection point;
	// a non-nil return fails the log sticky (test use only).
	Failpoint func(FailpointInfo) error
}

func (c *Config) fillDefaults() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 64 << 10
	}
	if c.FlushBytes > 8<<20 {
		c.FlushBytes = 8 << 20
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
}

// segment describes one segment file. For sealed segments every field
// is final; for the active segment size/end track the flushed (not
// staged) state.
type segment struct {
	base  uint64 // offset of the first record
	end   uint64 // offset one past the last record
	size  int64  // flushed bytes
	path  string
	mtime time.Time // seal time (sealed segments; retention age)
}

// Log is a durable append-only record log. Appends from any number of
// goroutines are staged into a shared batch and group-committed by a
// single flusher goroutine; Append returns only after its record is on
// disk, so "Append returned nil" is the delivery-counting event. Reads
// (Read) see exactly the committed prefix.
type Log struct {
	dir string
	cfg Config

	mu   sync.Mutex //apcm:lockrank=1
	cond *sync.Cond // committed advance, buffer room, failure

	// Staging double-buffer: appends fill buf (record data after a
	// reserved header prefix); the flusher swaps buf with spare, fills
	// the header in place and writes the whole slice, so flush IO never
	// blocks staging and steady state allocates nothing.
	buf   []byte
	spare []byte

	next        uint64 // next offset to assign
	committed   uint64 // offsets below this are durable
	stagedBase  uint64
	stagedCount uint32

	f      *os.File // active segment
	segs   []segment
	active segment
	synced int64 // fsync'd bytes of the active segment

	// Replication watermark: offsets below replicated are durable on
	// the attached follower. Meaningful only while replAttached; see
	// AttachReplica / SetReplicated in replication.go.
	replicated   uint64
	replAttached bool

	err    error // sticky failure
	closed bool

	kick chan struct{}
	done chan struct{} // flusher exited

	truncations int64 // recovery truncations performed by Open

	mAppendLat  *metrics.Histogram
	mFlushLat   *metrics.Histogram
	mSyncLat    *metrics.Histogram
	mAppends    *metrics.Counter
	mFlushes    *metrics.Counter
	mFlushedB   *metrics.Counter
	mRotations  *metrics.Counter
	mRetention  *metrics.Counter
	mRetClamped *metrics.Counter
	mTruncs     *metrics.Counter
	mIngests    *metrics.Counter
	mIngestedB  *metrics.Counter
	mSegments   *metrics.Gauge
}

const segSuffix = ".seg"

func segPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", base, segSuffix))
}

// Open opens (or creates) the log in dir, recovering from whatever a
// previous process left behind: the segment chain is validated batch by
// batch, a torn or corrupt tail of the last segment is truncated back
// to the last valid batch boundary, and appending resumes at the
// recovered next offset. Corruption anywhere but the last segment's
// tail is unrecoverable (it would create an offset gap) and fails Open.
func Open(dir string, cfg Config) (*Log, error) {
	cfg.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, cfg: cfg, kick: make(chan struct{}, 1), done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	l.attachMetrics()
	if err := l.recover(); err != nil {
		return nil, err
	}
	bufCap := headerSize + l.cfg.FlushBytes + MaxRecord + binary.MaxVarintLen64
	l.buf = make([]byte, headerSize, bufCap)
	l.spare = make([]byte, headerSize, bufCap)
	l.mSegments.Add(int64(len(l.segs)) + 1)
	go l.flushLoop()
	return l, nil
}

func (l *Log) attachMetrics() {
	reg := l.cfg.Metrics
	if reg == nil {
		return
	}
	l.mAppendLat = reg.Histogram("apcm_broker_log_append_latency_ns",
		"commit-log append latency: stage, group flush, fsync, wake")
	l.mFlushLat = reg.Histogram("apcm_broker_log_flush_latency_ns",
		"commit-log batch write latency (write syscall only)")
	l.mSyncLat = reg.Histogram("apcm_broker_log_fsync_latency_ns",
		"commit-log fsync latency per flushed batch")
	l.mAppends = reg.Counter("apcm_broker_log_appends_total",
		"records appended to the commit log")
	l.mFlushes = reg.Counter("apcm_broker_log_flushes_total",
		"batches flushed to segment files")
	l.mFlushedB = reg.Counter("apcm_broker_log_flushed_bytes_total",
		"bytes flushed to segment files (headers included)")
	l.mRotations = reg.Counter("apcm_broker_log_rotations_total",
		"segment rotations")
	l.mRetention = reg.Counter("apcm_broker_log_retention_deleted_total",
		"sealed segments deleted by retention")
	l.mRetClamped = reg.Counter("apcm_broker_log_retention_clamped_total",
		"retention passes that kept an over-budget segment because a consumer or follower still needs it")
	l.mTruncs = reg.Counter("apcm_broker_log_recovery_truncations_total",
		"torn segment tails truncated during recovery")
	l.mIngests = reg.Counter("apcm_broker_log_ingest_batches_total",
		"replicated batches and segments ingested from the leader")
	l.mIngestedB = reg.Counter("apcm_broker_log_ingest_bytes_total",
		"replicated bytes ingested from the leader")
	l.mSegments = reg.Gauge("apcm_broker_log_segments",
		"live segment files (sealed + active)")
}

// recover scans dir's segment chain and restores next/committed and the
// active segment. Called once from Open, before the flusher starts.
func (l *Log) recover() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var bases []uint64
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, segSuffix+".tmp") {
			// Orphan from a segment install that crashed before its
			// rename; the chain it would have joined is intact.
			if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
				return err
			}
			continue
		}
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			return fmt.Errorf("commitlog: alien segment file %s", name)
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	if len(bases) == 0 {
		f, err := createSegment(l.dir, 0)
		if err != nil {
			return err
		}
		l.f = f
		l.active = segment{base: 0, end: 0, path: segPath(l.dir, 0)}
		return nil
	}
	next := bases[0]
	for i, base := range bases {
		path := segPath(l.dir, base)
		if base != next {
			return fmt.Errorf("commitlog: offset gap: segment %s starts at %d, expected %d", path, base, next)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sc := NewScanner(data, base)
		for sc.Next() {
		}
		last := i == len(bases)-1
		if serr := sc.Err(); serr != nil {
			if !last {
				// A hole in a sealed segment cannot be truncated away
				// without losing every later segment; refuse to guess.
				return fmt.Errorf("commitlog: sealed segment %s: %v", path, serr)
			}
			if terr := os.Truncate(path, int64(sc.ValidBytes())); terr != nil {
				return terr
			}
			l.truncations++
			l.mTruncs.Inc()
		}
		info := segment{base: base, end: sc.NextOffset(), size: int64(sc.ValidBytes()), path: path}
		if st, err := os.Stat(path); err == nil {
			info.mtime = st.ModTime()
		}
		if last {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			l.f = f
			l.active = info
			l.synced = info.size // on-disk bytes are as durable as they get
		} else {
			l.segs = append(l.segs, info)
		}
		next = sc.NextOffset()
	}
	l.next = next
	l.committed = next
	return nil
}

func createSegment(dir string, base uint64) (*os.File, error) {
	f, err := os.OpenFile(segPath(dir, base), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs a directory so file creations and deletions inside it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Append stages rec and blocks until it is committed: flushed to the
// active segment and, unless Config.NoFsync, fsync'd. It returns the
// record's offset. Concurrent appends share flushes (group commit), so
// the latency cost of the fsync amortizes across however many records
// arrived while the previous flush was in flight.
//
//apcm:hotpath
func (l *Log) Append(rec []byte) (uint64, error) {
	if len(rec) > MaxRecord {
		return 0, ErrRecordTooLarge
	}
	if fp := l.cfg.Failpoint; fp != nil {
		if err := fp(FailpointInfo{Point: FpAppend}); err != nil {
			l.fail(err)
			return 0, err
		}
	}
	var start time.Time
	if l.mAppendLat != nil {
		start = time.Now()
	}
	need := len(rec) + binary.MaxVarintLen64
	l.mu.Lock()
	for !l.closed && l.err == nil && len(l.buf)+need > cap(l.buf) {
		l.kickFlusher()
		l.cond.Wait()
	}
	if l.closed || l.err != nil {
		err := l.err
		l.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return 0, err
	}
	off := l.next
	l.next++
	if l.stagedCount == 0 {
		l.stagedBase = off
	}
	l.stagedCount++
	l.buf = binary.AppendUvarint(l.buf, uint64(len(rec)))
	l.buf = append(l.buf, rec...)
	l.kickFlusher()
	for l.committed <= off && l.err == nil {
		l.cond.Wait()
	}
	err := l.err
	l.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if l.mAppendLat != nil {
		l.mAppendLat.Observe(float64(time.Since(start)))
	}
	l.mAppends.Inc()
	return off, nil
}

// kickFlusher wakes the flusher without blocking (the 1-slot channel
// coalesces pending kicks).
func (l *Log) kickFlusher() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

func (l *Log) fail(err error) {
	l.mu.Lock()
	l.failLocked(err)
	l.mu.Unlock()
}

// failLocked records the first failure and wakes every waiter; the log
// is unusable from here on (crash semantics — no partial recovery
// in-process; reopen to recover).
func (l *Log) failLocked(err error) {
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
}

// flushLoop is the single flusher goroutine: woken by kicks (a staged
// record, a full buffer, Close) or the block-time timer, it flushes the
// staged batch repeatedly until nothing is staged, then sleeps again.
//
//apcm:locksafe flushLocked drops l.mu around the segment IO and
// re-acquires it to advance the commit point; to the instance-conflated
// lock graph that staging pattern looks like re-acquisition, but the
// release always precedes the re-take on the same goroutine.
func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTimer(l.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-l.kick:
		case <-t.C:
			t.Reset(l.cfg.FlushInterval)
		}
		l.mu.Lock()
		for l.stagedCount > 0 && l.err == nil {
			l.flushLocked()
		}
		closed, err := l.closed, l.err
		l.mu.Unlock()
		if closed || err != nil {
			return
		}
	}
}

// flushLocked seals the staged batch and writes it out. Called with mu
// held; the lock is released around the IO so staging continues during
// the write, and re-acquired to advance the commit point.
func (l *Log) flushLocked() {
	data := l.buf
	base := l.stagedBase
	count := l.stagedCount
	l.buf = l.spare
	l.spare = nil
	l.buf = l.buf[:headerSize]
	l.stagedCount = 0
	l.cond.Broadcast() // buffer room is available again

	if l.active.size > 0 && l.active.size+int64(len(data)) > l.cfg.SegmentBytes {
		if err := l.rotateLocked(base); err != nil {
			l.failLocked(err)
			return
		}
	}
	f := l.f
	path := l.active.path
	size := l.active.size
	synced := l.synced
	fp := l.cfg.Failpoint
	l.mu.Unlock()

	fillHeader(data, base, count)
	var err error
	if fp != nil {
		err = fp(FailpointInfo{Point: FpWrite, Path: path, Size: size, Synced: synced})
	}
	if err == nil {
		wstart := time.Now()
		_, err = f.Write(data)
		l.mFlushLat.ObserveDuration(time.Since(wstart))
	}
	if err == nil && fp != nil {
		err = fp(FailpointInfo{Point: FpPreSync, Path: path, Size: size + int64(len(data)), Synced: synced})
	}
	if err == nil && !l.cfg.NoFsync {
		sstart := time.Now()
		err = f.Sync()
		l.mSyncLat.ObserveDuration(time.Since(sstart))
	}
	if err == nil && fp != nil {
		err = fp(FailpointInfo{Point: FpPostSync, Path: path, Size: size + int64(len(data)), Synced: size + int64(len(data))})
	}

	l.mu.Lock()
	if err != nil {
		l.failLocked(err)
		return
	}
	l.active.size += int64(len(data))
	if !l.cfg.NoFsync {
		l.synced = l.active.size
	}
	l.committed = base + uint64(count)
	l.active.end = l.committed
	l.spare = data[:headerSize]
	l.mFlushes.Inc()
	l.mFlushedB.Add(int64(len(data)))
	l.cond.Broadcast()
}

// rotateLocked seals the active segment (final fsync, close) and
// creates a fresh one whose base is the first offset of the batch about
// to be written. Called with mu held (rotation is rare; the IO under
// the lock is two fsyncs and a create).
func (l *Log) rotateLocked(base uint64) error {
	if !l.cfg.NoFsync {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.synced = l.active.size
	}
	if fp := l.cfg.Failpoint; fp != nil {
		if err := fp(FailpointInfo{Point: FpRotate, Path: l.active.path, Size: l.active.size, Synced: l.synced}); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	sealed := l.active
	sealed.end = base // every record below base is flushed by now
	sealed.mtime = time.Now()
	l.segs = append(l.segs, sealed)
	f, err := createSegment(l.dir, base)
	if err != nil {
		return err
	}
	l.f = f
	l.active = segment{base: base, end: base, path: segPath(l.dir, base)}
	l.synced = 0
	l.mRotations.Inc()
	l.mSegments.Add(1)
	l.applyRetentionLocked()
	return nil
}

// applyRetentionLocked deletes the oldest sealed segments that exceed
// the byte or age budget. The active segment never qualifies, so the
// log always retains at least the current segment. Deletion is clamped
// to the retention floor — the minimum of the consumer low-water mark
// (Config.RetainFloor) and the replicated watermark while a follower
// is attached — so budget pressure can never delete a segment a
// registered consumer has not acknowledged or a follower has not
// ingested. The clamp is also what makes sealed-segment shipping safe:
// a segment being fetched for an attached follower necessarily ends
// above the replicated watermark and so cannot be removed mid-ship.
func (l *Log) applyRetentionLocked() {
	if l.cfg.RetainBytes <= 0 && l.cfg.RetainAge <= 0 {
		return
	}
	floor := ^uint64(0)
	if l.cfg.RetainFloor != nil {
		if f, ok := l.cfg.RetainFloor(); ok && f < floor {
			floor = f
		}
	}
	if l.replAttached && l.replicated < floor {
		floor = l.replicated
	}
	total := l.active.size
	for _, sg := range l.segs {
		total += sg.size
	}
	now := time.Now()
	for len(l.segs) > 0 {
		oldest := l.segs[0]
		overBytes := l.cfg.RetainBytes > 0 && total > l.cfg.RetainBytes
		overAge := l.cfg.RetainAge > 0 && now.Sub(oldest.mtime) > l.cfg.RetainAge
		if !overBytes && !overAge {
			return
		}
		if oldest.end > floor {
			l.mRetClamped.Inc()
			return // still needed; retry once the floor advances
		}
		if err := os.Remove(oldest.path); err != nil && !os.IsNotExist(err) {
			return // disk trouble; retry at the next rotation
		}
		total -= oldest.size
		l.segs = l.segs[1:]
		l.mRetention.Inc()
		l.mSegments.Add(-1)
	}
}

// Read invokes fn for every committed record with offset >= from, in
// offset order. rec aliases an internal buffer and must not be retained
// across calls. A segment deleted by retention between the snapshot and
// the read is skipped (its records are gone by policy); a non-nil error
// from fn aborts the read and is returned.
func (l *Log) Read(from uint64, fn func(off uint64, rec []byte) error) error {
	l.mu.Lock()
	segs := make([]segment, 0, len(l.segs)+1)
	segs = append(segs, l.segs...)
	act := l.active
	act.end = l.committed
	segs = append(segs, act)
	l.mu.Unlock()

	for _, sg := range segs {
		if sg.end <= from || sg.end == sg.base {
			continue
		}
		data, err := os.ReadFile(sg.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		sc := NewScanner(data, sg.base)
		for sc.Next() {
			if sc.Base() >= sg.end {
				break // flushed after our snapshot; not committed to us
			}
			off := sc.Base()
			for _, rec := range sc.Records() {
				if off >= from {
					if err := fn(off, rec); err != nil {
						return err
					}
				}
				off++
			}
		}
		// The active segment's tail may hold a batch the flusher was
		// mid-write on when we snapshotted — torn from our vantage, fine
		// once NextOffset covers the committed snapshot. Anything less
		// is real corruption.
		if sc.NextOffset() < sg.end {
			if err := sc.Err(); err != nil {
				return fmt.Errorf("commitlog: reading %s: %w", sg.path, err)
			}
			return fmt.Errorf("%w: segment %s ends at offset %d, expected %d", ErrCorrupt, sg.path, sc.NextOffset(), sg.end)
		}
	}
	return nil
}

// Sync blocks until every record staged before the call is committed.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.next
	for l.committed < target && l.err == nil && !l.closed {
		l.kickFlusher()
		l.cond.Wait()
	}
	err := l.err
	l.mu.Unlock()
	return err
}

// Close flushes staged records, stops the flusher and closes the active
// segment. Blocked appends are released (their records are flushed, not
// dropped). Close after a sticky failure returns that failure.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	l.kickFlusher()
	l.cond.Broadcast()
	l.mu.Unlock()
	<-l.done
	l.mu.Lock()
	err := l.err
	f := l.f
	l.f = nil
	l.mSegments.Add(-(int64(len(l.segs)) + 1))
	l.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// NextOffset is the offset the next appended record will receive.
func (l *Log) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Committed is the offset one past the last durable record.
func (l *Log) Committed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed
}

// FirstOffset is the oldest offset still retained.
func (l *Log) FirstOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) > 0 {
		return l.segs[0].base
	}
	return l.active.base
}

// Segments reports the live segment count (sealed + active).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs) + 1
}

// Err reports the sticky failure, if the log has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// RecoveryTruncations reports how many torn tails Open truncated.
func (l *Log) RecoveryTruncations() int64 { return l.truncations }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }
