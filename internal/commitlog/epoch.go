package commitlog

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// epochFile is the file under a log dir holding the node's replication
// epoch.
const epochFile = "epoch"

// LoadEpoch reads the replication epoch persisted in dir, returning 0
// when none has ever been stored. The epoch is the fencing token of
// the replication protocol: a node must persist a bumped epoch before
// acting on it (promoting, or rejecting a peer), so a crash can never
// roll a node back to an epoch it already fenced.
func LoadEpoch(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, epochFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("commitlog: corrupt epoch file: %w", err)
	}
	return e, nil
}

// StoreEpoch durably persists epoch in dir (temp + fsync + rename +
// dir fsync). It must return before the caller acts on the new epoch.
func StoreEpoch(dir string, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, epochFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(epoch, 10)+"\n"), 0o644); err != nil {
		return err
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return serr
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}
