//go:build !race

package commitlog

const raceEnabled = false
