package commitlog

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fillLeader appends n records ("rec-%04d") and syncs.
func fillLeader(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

// replicate ships everything the leader has committed beyond the
// follower's next offset: whole sealed segments where the positions
// line up, streamed batches otherwise.
func replicate(t *testing.T, leader, follower *Log) {
	t.Helper()
	for {
		next := follower.NextOffset()
		if next >= leader.Committed() {
			return
		}
		installed := false
		for _, si := range leader.SealedSegments() {
			if si.Base == next {
				data, _, err := leader.ReadSegment(si.Base)
				if err != nil {
					t.Fatalf("ReadSegment(%d): %v", si.Base, err)
				}
				if err := follower.InstallSegment(data); err != nil {
					t.Fatalf("InstallSegment(%d): %v", si.Base, err)
				}
				installed = true
				break
			}
		}
		if installed {
			continue
		}
		err := leader.ReadBatches(next, func(base uint64, count uint32, raw []byte) error {
			_, err := follower.IngestBatch(raw)
			return err
		})
		if err != nil {
			t.Fatalf("ReadBatches(%d): %v", next, err)
		}
		return
	}
}

// TestReplicateCatchUpFromScratch: a fresh follower catches up on a
// leader with multiple sealed segments via segment install + batch
// streaming and ends up with a byte-identical record prefix.
func TestReplicateCatchUpFromScratch(t *testing.T) {
	cfg := fastCfg()
	cfg.SegmentBytes = 512
	leader := openLog(t, t.TempDir(), cfg)
	fillLeader(t, leader, 200)
	if leader.Segments() < 3 {
		t.Fatalf("want several segments, got %d", leader.Segments())
	}

	follower := openLog(t, t.TempDir(), cfg)
	replicate(t, leader, follower)

	if got, want := follower.Committed(), leader.Committed(); got != want {
		t.Fatalf("follower committed %d, leader %d", got, want)
	}
	if !reflect.DeepEqual(collect(t, follower, 0), collect(t, leader, 0)) {
		t.Fatal("follower records differ from leader")
	}
}

// TestReplicateFollowerSurvivesReopen: a follower that ingested via
// both paths recovers its state from disk exactly (the ingested bytes
// are ordinary segments to Open).
func TestReplicateFollowerSurvivesReopen(t *testing.T) {
	cfg := fastCfg()
	cfg.SegmentBytes = 512
	leader := openLog(t, t.TempDir(), cfg)
	fillLeader(t, leader, 120)
	fdir := t.TempDir()
	follower := openLog(t, fdir, cfg)
	replicate(t, leader, follower)
	want := collect(t, follower, 0)
	next := follower.NextOffset()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	re := openLog(t, fdir, cfg)
	if re.NextOffset() != next {
		t.Fatalf("reopened next %d, want %d", re.NextOffset(), next)
	}
	if !reflect.DeepEqual(collect(t, re, 0), want) {
		t.Fatal("records changed across reopen")
	}
}

// TestIngestBatchRejectsGapAndGarbage: a batch whose base is not the
// follower's next offset, or whose bytes are corrupt, is refused
// without advancing anything.
func TestIngestBatchRejectsGapAndGarbage(t *testing.T) {
	follower := openLog(t, t.TempDir(), fastCfg())
	good := appendBatch(nil, 0, [][]byte{[]byte("a"), []byte("b")})
	if _, err := follower.IngestBatch(good); err != nil {
		t.Fatal(err)
	}
	gap := appendBatch(nil, 5, [][]byte{[]byte("x")})
	if _, err := follower.IngestBatch(gap); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap batch: err = %v, want ErrCorrupt", err)
	}
	bad := appendBatch(nil, 2, [][]byte{[]byte("y")})
	bad[len(bad)-1] ^= 0xFF
	if _, err := follower.IngestBatch(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt batch: err = %v, want ErrCorrupt", err)
	}
	if follower.NextOffset() != 2 {
		t.Fatalf("rejected ingests advanced next to %d", follower.NextOffset())
	}
}

// TestReadBatchesInsideBatchRejected: a resume position inside a batch
// is not replicable (the follower always sits on a batch boundary).
func TestReadBatchesInsideBatchRejected(t *testing.T) {
	l := openLog(t, t.TempDir(), fastCfg())
	// One batch of 3: offsets 0..2 share a batch; 1 is inside it.
	raw := appendBatch(nil, 0, [][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if _, err := l.IngestBatch(raw); err != nil {
		t.Fatal(err)
	}
	err := l.ReadBatches(1, func(uint64, uint32, []byte) error { return nil })
	if !errors.Is(err, ErrNotReplicable) {
		t.Fatalf("err = %v, want ErrNotReplicable", err)
	}
}

// TestResetToBootstrapsPastRetention: a pristine follower repositions
// to the leader's first retained offset, then replicates normally.
func TestResetToBootstrapsPastRetention(t *testing.T) {
	cfg := fastCfg()
	cfg.SegmentBytes = 256
	cfg.RetainBytes = 1024
	leader := openLog(t, t.TempDir(), cfg)
	fillLeader(t, leader, 400)
	lo := leader.FirstOffset()
	if lo == 0 {
		t.Fatal("retention never kicked in; test needs a trimmed leader")
	}

	follower := openLog(t, t.TempDir(), fastCfg())
	if err := follower.ResetTo(lo); err != nil {
		t.Fatal(err)
	}
	if follower.NextOffset() != lo {
		t.Fatalf("next = %d, want %d", follower.NextOffset(), lo)
	}
	replicate(t, leader, follower)
	if !reflect.DeepEqual(collect(t, follower, lo), collect(t, leader, lo)) {
		t.Fatal("follower records differ from leader after bootstrap")
	}
	// Reset after data exists must refuse.
	if err := follower.ResetTo(0); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("ResetTo on non-empty log: err = %v, want ErrNotEmpty", err)
	}
}

// TestRetentionClampedByReplica: byte retention that would delete
// segments the attached follower has not ingested keeps them until the
// replicated watermark advances past.
func TestRetentionClampedByReplica(t *testing.T) {
	cfg := fastCfg()
	cfg.SegmentBytes = 256
	cfg.RetainBytes = 512
	l := openLog(t, t.TempDir(), cfg)
	l.AttachReplica(0)
	fillLeader(t, l, 300)
	if got := l.FirstOffset(); got != 0 {
		t.Fatalf("retention deleted past an attached replica at 0: first = %d", got)
	}
	// Watermark advance unclamps: next rotation may delete again.
	l.SetReplicated(l.Committed())
	fillLeader(t, l, 300)
	if got := l.FirstOffset(); got == 0 {
		t.Fatal("retention never resumed after the watermark advanced")
	}
	// Detach removes the clamp entirely.
	l.DetachReplica()
	fillLeader(t, l, 100)
}

// TestRetentionClampedByConsumerFloor: the RetainFloor callback holds
// segments a slow registered consumer still needs.
func TestRetentionClampedByConsumerFloor(t *testing.T) {
	var mu sync.Mutex
	floor := uint64(0)
	cfg := fastCfg()
	cfg.SegmentBytes = 256
	cfg.RetainBytes = 512
	cfg.RetainFloor = func() (uint64, bool) {
		mu.Lock()
		defer mu.Unlock()
		return floor, true
	}
	l := openLog(t, t.TempDir(), cfg)
	fillLeader(t, l, 300)
	if got := l.FirstOffset(); got != 0 {
		t.Fatalf("retention deleted past consumer floor 0: first = %d", got)
	}
	mu.Lock()
	floor = l.Committed()
	mu.Unlock()
	fillLeader(t, l, 300)
	if got := l.FirstOffset(); got == 0 {
		t.Fatal("retention never resumed after the consumer floor advanced")
	}
}

// TestWaitReplicated: blocks until the watermark covers the offset,
// returns immediately when no replica is attached (degraded mode), and
// unblocks on detach.
func TestWaitReplicated(t *testing.T) {
	l := openLog(t, t.TempDir(), fastCfg())
	// No replica: no wait.
	done := make(chan error, 1)
	go func() { done <- l.WaitReplicated(10, nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitReplicated blocked with no replica attached")
	}

	l.AttachReplica(0)
	go func() { done <- l.WaitReplicated(4, nil) }()
	select {
	case <-done:
		t.Fatal("WaitReplicated returned before the watermark covered 4")
	case <-time.After(20 * time.Millisecond):
	}
	l.SetReplicated(5)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitReplicated ignored the watermark advance")
	}

	// Detach releases waiters (degrade, not deadlock).
	l.AttachReplica(5)
	go func() { done <- l.WaitReplicated(100, nil) }()
	time.Sleep(10 * time.Millisecond)
	l.DetachReplica()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitReplicated did not release on detach")
	}
}

// TestAttachReplicaLowersWatermark: a follower re-attaching after a
// crash-truncation legitimately attaches below the old watermark, and
// the watermark must follow it down (retention safety).
func TestAttachReplicaLowersWatermark(t *testing.T) {
	l := openLog(t, t.TempDir(), fastCfg())
	l.AttachReplica(100)
	if got, _ := l.Replicated(); got != 100 {
		t.Fatalf("replicated = %d, want 100", got)
	}
	l.SetReplicated(50) // stale ack within a session: ignored
	if got, _ := l.Replicated(); got != 100 {
		t.Fatalf("SetReplicated regressed the watermark to %d", got)
	}
	l.AttachReplica(40) // re-attach after truncation: honored
	if got, _ := l.Replicated(); got != 40 {
		t.Fatalf("re-attach did not lower the watermark: %d", got)
	}
}

// TestWaitCommittedCancellable: WaitCommitted parks until data commits
// or the canceller flips and Wakes.
func TestWaitCommittedCancellable(t *testing.T) {
	l := openLog(t, t.TempDir(), fastCfg())
	type res struct {
		c   uint64
		err error
	}
	done := make(chan res, 1)
	go func() {
		c, err := l.WaitCommitted(0, nil)
		done <- res{c, err}
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || r.c != 1 {
			t.Fatalf("WaitCommitted = %d, %v", r.c, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitCommitted missed the commit")
	}

	var stop sync.Mutex
	stopped := false
	cancelled := func() bool { stop.Lock(); defer stop.Unlock(); return stopped }
	go func() {
		c, err := l.WaitCommitted(1000, cancelled)
		done <- res{c, err}
	}()
	time.Sleep(10 * time.Millisecond)
	stop.Lock()
	stopped = true
	stop.Unlock()
	l.Wake()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitCommitted ignored cancellation")
	}
}

// TestInstallSegmentCrashLeavesRecoverableLog: a failpoint "crash" at
// each install stage leaves a directory Open recovers to a consistent
// prefix (never a gap, never fabricated records).
func TestInstallSegmentCrashLeavesRecoverableLog(t *testing.T) {
	cfg := fastCfg()
	cfg.SegmentBytes = 512
	leader := openLog(t, t.TempDir(), cfg)
	fillLeader(t, leader, 120)
	segs := leader.SealedSegments()
	if len(segs) == 0 {
		t.Fatal("leader has no sealed segments")
	}
	data, info, err := leader.ReadSegment(segs[0].Base)
	if err != nil {
		t.Fatal(err)
	}

	for _, point := range []Failpoint{FpWrite, FpPreSync, FpPostSync} {
		point := point
		t.Run(point.String(), func(t *testing.T) {
			fdir := t.TempDir()
			boom := errors.New("injected crash")
			fcfg := fastCfg()
			fcfg.Failpoint = func(fi FailpointInfo) error {
				if fi.Point == point {
					return boom
				}
				return nil
			}
			f, err := Open(fdir, fcfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.InstallSegment(data); !errors.Is(err, boom) {
				t.Fatalf("InstallSegment = %v, want injected crash", err)
			}
			f.Close()

			re := openLog(t, fdir, fastCfg())
			next := re.NextOffset()
			if next != 0 && next != info.End {
				t.Fatalf("recovered next = %d, want 0 or %d", next, info.End)
			}
			if next == info.End {
				if got := len(collect(t, re, 0)); got != int(info.End-info.Base) {
					t.Fatalf("recovered %d records, want %d", got, info.End-info.Base)
				}
			}
		})
	}
}
