// Word-level kernels. Every hot Bitset/Posting operation bottoms out in
// one of the functions in this file (or its dispatched twin): flat
// []uint64 sweeps for the dense representation, scatter loops over
// sorted []int32 ids for the sparse one. Splitting the kernels out of
// the methods buys two things:
//
//   - a single seam for the optional AVX2 assembly implementations
//     (kernels_avx2_amd64.s, behind the apcm_avx2 build tag): the
//     methods call andNotWords etc., and the build mode decides whether
//     that is the pure-Go loop below or a runtime-dispatched asm body;
//   - a permanent differential oracle: the ...Generic functions here are
//     compiled in *every* build mode, so the equivalence suites
//     (kernels_diff_test.go) can always compare the dispatched kernel
//     against the pure-Go twin, bit for bit.
//
// The pure-Go dense kernels are manually unrolled 8× (4× where the loop
// body is wide) in the advance-the-slices style, which the prove pass
// fully bounds-check-eliminates: verify with
// `go build -gcflags='-d=ssa/check_bce' ./internal/bitset/` — the only
// checks in any dense kernel are the constant-count reslices *outside*
// the loops. The sparse scatter kernels inherently keep one check per
// id (the index is data, not an induction variable).
//
// Contract shared by all dense kernels: len(src) (and len(sat),
// len(mask)) must be >= len(dst); only the first len(dst) words are
// read or written. Aliasing dst==src is permitted (every kernel is a
// pure load-compute-store over the same index). Contract for sparse
// kernels: every id must satisfy 0 <= id < 64*len(dst).
package bitset

import "math/bits"

// andWordsGeneric sets dst[i] &= src[i].
func andWordsGeneric(dst, src []uint64) {
	src = src[:len(dst)]
	for len(dst) >= 8 && len(src) >= 8 {
		d := dst[:8:8]
		s := src[:8:8]
		d[0] &= s[0]
		d[1] &= s[1]
		d[2] &= s[2]
		d[3] &= s[3]
		d[4] &= s[4]
		d[5] &= s[5]
		d[6] &= s[6]
		d[7] &= s[7]
		dst = dst[8:]
		src = src[8:]
	}
	src = src[:len(dst)]
	for i := range dst {
		dst[i] &= src[i]
	}
}

// orWordsGeneric sets dst[i] |= src[i].
func orWordsGeneric(dst, src []uint64) {
	src = src[:len(dst)]
	for len(dst) >= 8 && len(src) >= 8 {
		d := dst[:8:8]
		s := src[:8:8]
		d[0] |= s[0]
		d[1] |= s[1]
		d[2] |= s[2]
		d[3] |= s[3]
		d[4] |= s[4]
		d[5] |= s[5]
		d[6] |= s[6]
		d[7] |= s[7]
		dst = dst[8:]
		src = src[8:]
	}
	src = src[:len(dst)]
	for i := range dst {
		dst[i] |= src[i]
	}
}

// copyWordsGeneric sets dst[i] = src[i]. The stdlib copy lowers to
// memmove, which is already vector-width; the function exists so the
// dispatch seam covers CopyFrom like every other kernel.
func copyWordsGeneric(dst, src []uint64) {
	copy(dst, src)
}

// andNotWordsGeneric sets dst[i] &^= src[i] and returns the OR of every
// resulting dst word — zero iff dst became empty. The emptiness
// accumulator is split four ways: a single OR chain would serialize the
// whole sweep.
func andNotWordsGeneric(dst, src []uint64) uint64 {
	var a0, a1, a2, a3 uint64
	src = src[:len(dst)]
	for len(dst) >= 8 && len(src) >= 8 {
		d := dst[:8:8]
		s := src[:8:8]
		w0 := d[0] &^ s[0]
		w1 := d[1] &^ s[1]
		w2 := d[2] &^ s[2]
		w3 := d[3] &^ s[3]
		w4 := d[4] &^ s[4]
		w5 := d[5] &^ s[5]
		w6 := d[6] &^ s[6]
		w7 := d[7] &^ s[7]
		d[0], d[1], d[2], d[3] = w0, w1, w2, w3
		d[4], d[5], d[6], d[7] = w4, w5, w6, w7
		a0 |= w0 | w4
		a1 |= w1 | w5
		a2 |= w2 | w6
		a3 |= w3 | w7
		dst = dst[8:]
		src = src[8:]
	}
	src = src[:len(dst)]
	for i := range dst {
		dst[i] &^= src[i]
		a0 |= dst[i]
	}
	return a0 | a1 | a2 | a3
}

// andUnionWordsGeneric sets dst[i] &= sat[i] | ^mask[i] and returns the
// OR of every resulting dst word — zero iff dst became empty. 4-wide:
// the body runs three memory streams, so a deeper unroll spills.
func andUnionWordsGeneric(dst, sat, mask []uint64) uint64 {
	var a0, a1, a2, a3 uint64
	sat = sat[:len(dst)]
	mask = mask[:len(dst)]
	for len(dst) >= 4 && len(sat) >= 4 && len(mask) >= 4 {
		d := dst[:4:4]
		s := sat[:4:4]
		m := mask[:4:4]
		w0 := d[0] & (s[0] | ^m[0])
		w1 := d[1] & (s[1] | ^m[1])
		w2 := d[2] & (s[2] | ^m[2])
		w3 := d[3] & (s[3] | ^m[3])
		d[0], d[1], d[2], d[3] = w0, w1, w2, w3
		a0 |= w0
		a1 |= w1
		a2 |= w2
		a3 |= w3
		dst = dst[4:]
		sat = sat[4:]
		mask = mask[4:]
	}
	sat = sat[:len(dst)]
	mask = mask[:len(dst)]
	for i := range dst {
		dst[i] &= sat[i] | ^mask[i]
		a0 |= dst[i]
	}
	return a0 | a1 | a2 | a3
}

// popcntWordsGeneric returns the number of set bits across w. Popcounts
// have no cross-iteration dependency, so the accumulator is split to
// let the CPU retire several per cycle.
func popcntWordsGeneric(w []uint64) int {
	var c0, c1, c2, c3 int
	for len(w) >= 8 {
		s := w[:8:8]
		c0 += bits.OnesCount64(s[0]) + bits.OnesCount64(s[4])
		c1 += bits.OnesCount64(s[1]) + bits.OnesCount64(s[5])
		c2 += bits.OnesCount64(s[2]) + bits.OnesCount64(s[6])
		c3 += bits.OnesCount64(s[3]) + bits.OnesCount64(s[7])
		w = w[8:]
	}
	c := c0 + c1 + c2 + c3
	for _, x := range w {
		c += bits.OnesCount64(x)
	}
	return c
}

// sparseSetWordsGeneric sets bit id for every id: the sparse OrInto
// scatter loop.
func sparseSetWordsGeneric(dst []uint64, ids []int32) {
	for _, id := range ids {
		dst[uint(id)>>wordShift] |= 1 << (uint(id) & wordMask)
	}
}

// sparseClearWordsGeneric clears bit id for every id: the sparse
// AndNotInto scatter loop.
func sparseClearWordsGeneric(dst []uint64, ids []int32) {
	for _, id := range ids {
		dst[uint(id)>>wordShift] &^= 1 << (uint(id) & wordMask)
	}
}

// sparseAndUnionWordsGeneric clears bit id of dst for every id whose
// sat bit is unset: the sparse AndUnionInto scatter loop. The body is
// branch-free — bit &^ satWord is the bit itself when unsatisfied and
// zero when satisfied — because the satisfied/unsatisfied mix is
// workload-dependent and mispredicts dominate the branchy version.
func sparseAndUnionWordsGeneric(dst, sat []uint64, ids []int32) {
	for _, id := range ids {
		wi := uint(id) >> wordShift
		bit := uint64(1) << (uint(id) & wordMask)
		dst[wi] &^= bit &^ sat[wi]
	}
}

// --- shared set-bit scan helpers -------------------------------------
//
// NextSet, AppendSet, Iter and ForEach all walk set bits the same way:
// find the next nonzero word, then strip bits off it low-to-high with
// the branch-free trailing-zeros idiom (w &= w-1 removes the bit just
// visited; no per-bit test-and-shift). The helpers below are that loop,
// written once.

// nextNonzeroWord returns the index of the first nonzero word at or
// after wi, or -1 when the rest of the slice is zero.
func nextNonzeroWord(words []uint64, wi int) int {
	for ; wi < len(words) && wi >= 0; wi++ {
		if words[wi] != 0 {
			return wi
		}
	}
	return -1
}

// appendSetBits appends base+TrailingZeros64 for every set bit of w, in
// ascending order, and returns dst.
func appendSetBits(dst []int, base int, w uint64) []int {
	for ; w != 0; w &= w - 1 {
		dst = append(dst, base+bits.TrailingZeros64(w))
	}
	return dst
}
