// Hybrid postings: the compiled match kernel stores one membership set
// per dictionary entry. On selective workloads most entries hold a
// handful of members out of hundreds of slots, so a full-width word
// array wastes both memory and — worse — kernel time: every Or/AndNot
// sweep walks mostly-zero cache lines. A Posting therefore carries one
// of two representations, chosen by popcount density:
//
//   - dense: a *Bitset, exactly the pre-hybrid layout, used when the
//     member count exceeds SparseMaxFor(capacity);
//   - sparse: a sorted []int32 of member ids, whose kernel ops touch
//     only the listed members (O(k) instead of O(words)).
//
// The dense word kernels themselves are untouched; a Posting that is
// dense behaves byte-for-byte like the *Bitset it wraps.
package bitset

// SparseMaxFor returns the largest member count at which a posting of
// capacity n bits is kept sparse. The break-even: one sparse member op
// is a random-access read-modify-write (a few cycles, one cache line),
// one dense word op is a streaming triple-access (load-load-store), so
// sparse pays until the list is a small multiple of the word count.
func SparseMaxFor(n int) int {
	m := 2 * wordsFor(n)
	if m < 4 {
		m = 4
	}
	return m
}

// Posting is a hybrid membership set over a fixed capacity of member
// slots. The zero value is unusable; create with NewPosting or
// DensePosting.
type Posting struct {
	b   *Bitset // non-nil iff dense
	ids []int32 // sorted member ids when sparse
	n   int     // capacity in bits
}

// NewPosting returns an empty sparse posting with capacity n.
func NewPosting(n int) *Posting { return &Posting{n: n} }

// DensePosting wraps an existing dense bitset as a posting.
func DensePosting(b *Bitset) *Posting { return &Posting{b: b, n: b.Len()} }

// Len returns the capacity in bits (member slots).
func (p *Posting) Len() int { return p.n }

// IsSparse reports whether p uses the sorted-list representation.
func (p *Posting) IsSparse() bool { return p.b == nil }

// Dense returns the backing bitset, or nil when sparse.
func (p *Posting) Dense() *Bitset { return p.b }

// Ids returns the sorted member ids of a sparse posting (nil when
// dense). Callers must not mutate the slice.
func (p *Posting) Ids() []int32 { return p.ids }

// Count returns the number of members.
func (p *Posting) Count() int {
	if p.b != nil {
		return p.b.Count()
	}
	return len(p.ids)
}

// Test reports whether member i is present. Sparse postings binary
// search their (tiny) id list.
func (p *Posting) Test(i int) bool {
	if p.b != nil {
		return p.b.Test(i)
	}
	ids := p.ids
	lo, hi := 0, len(ids)
	v := int32(i)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == v
}

// Set adds member i. Sparse postings keep their list sorted (appends of
// increasing ids — the compiler's only pattern — are O(1)) and promote
// to the dense representation when they cross SparseMaxFor; this is the
// promotion boundary the property tests pin down. Setting an already
// present member is a no-op.
func (p *Posting) Set(i int) {
	if p.b != nil {
		p.b.Set(i)
		return
	}
	v := int32(i)
	if k := len(p.ids); k == 0 || p.ids[k-1] < v {
		p.ids = append(p.ids, v)
	} else {
		ids := p.ids
		lo, hi := 0, len(ids)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ids[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if ids[lo] == v {
			return
		}
		p.ids = append(p.ids, 0)
		copy(p.ids[lo+1:], p.ids[lo:])
		p.ids[lo] = v
	}
	if len(p.ids) > SparseMaxFor(p.n) {
		p.Promote()
	}
}

// Promote converts p to the dense representation in place.
func (p *Posting) Promote() {
	if p.b != nil {
		return
	}
	b := New(p.n)
	for _, id := range p.ids {
		b.Set(int(id))
	}
	p.b, p.ids = b, nil
}

// Demote converts p to the sparse representation, reporting whether it
// did; it refuses (returning false) when the popcount exceeds
// SparseMaxFor. The compiler's finalize pass uses it to undo speculative
// promotion, and tests use it to probe the demotion boundary.
func (p *Posting) Demote() bool {
	if p.b == nil {
		return true
	}
	if p.b.Count() > SparseMaxFor(p.n) {
		return false
	}
	ids := make([]int32, 0, p.b.Count())
	for it := p.b.IterStart(); it.Valid(); it.Next() {
		ids = append(ids, int32(it.Index()))
	}
	p.b, p.ids = nil, ids
	return true
}

// SetDense and SetSparse are the compiler's slab-packing hooks: finalize
// re-homes each posting's storage into one contiguous per-cluster slab
// and swaps the backing in. The new backing must hold exactly the same
// members; nothing here checks that.
func (p *Posting) SetDense(b *Bitset) { p.b, p.ids = b, nil }

// SetSparse replaces the backing with a sorted id slice (see SetDense).
func (p *Posting) SetSparse(ids []int32) { p.b, p.ids = nil, ids }

// InitDense initializes p — typically a zero struct inside an arena's
// posting slab — in place as a dense posting backed by b, without
// allocating.
func (p *Posting) InitDense(b *Bitset) { p.b, p.ids, p.n = b, nil, b.Len() }

// InitSparse initializes p in place as a sparse posting of capacity n
// over ids (sorted, caller-owned), without allocating.
func (p *Posting) InitSparse(ids []int32, n int) { p.b, p.ids, p.n = nil, ids, n }

// OrInto sets dst |= p. Sparse postings set only the listed bits.
//
//apcm:hotpath
func (p *Posting) OrInto(dst *Bitset) {
	if p.b != nil {
		dst.Or(p.b)
		return
	}
	sparseSetWords(dst.words, p.ids)
}

// CopyInto sets dst = p.
//
//apcm:hotpath
func (p *Posting) CopyInto(dst *Bitset) {
	if p.b != nil {
		dst.CopyFrom(p.b)
		return
	}
	dst.ClearAll()
	p.OrInto(dst)
}

// AndNotInto sets dst &^= p. It returns true when dst is known to have
// become empty: the dense path reports exactly (the kernel's early-exit
// signal), the sparse path clears only the listed members and
// conservatively reports false — emptiness there would cost the full
// sweep the sparse representation exists to avoid.
//
//apcm:hotpath
func (p *Posting) AndNotInto(dst *Bitset) bool {
	if p.b != nil {
		return dst.AndNot(p.b)
	}
	sparseClearWords(dst.words, p.ids)
	return false
}

// AndUnionInto sets dst &= sat | ^p, the compressed kernel's
// per-attribute step with p as the attribute mask. Emptiness reporting
// follows AndNotInto: exact when dense, conservatively false when
// sparse (only the listed members can die, so only they are visited).
//
//apcm:hotpath
func (p *Posting) AndUnionInto(dst, sat *Bitset) bool {
	if p.b != nil {
		return dst.AndUnion(sat, p.b)
	}
	sparseAndUnionWords(dst.words, sat.words, p.ids)
	return false
}

// AppendSet appends the member ids in ascending order to dst.
//
//apcm:hotpath
func (p *Posting) AppendSet(dst []int) []int {
	if p.b != nil {
		return p.b.AppendSet(dst)
	}
	for _, id := range p.ids {
		dst = append(dst, int(id))
	}
	return dst
}

// ForEach calls fn for every member in ascending order until fn returns
// false.
func (p *Posting) ForEach(fn func(i int) bool) {
	if p.b != nil {
		p.b.ForEach(fn)
		return
	}
	for _, id := range p.ids {
		if !fn(int(id)) {
			return
		}
	}
}

// MemBytes returns the heap footprint of the backing storage.
func (p *Posting) MemBytes() int {
	if p.b != nil {
		return p.b.MemBytes()
	}
	return cap(p.ids) * 4
}
