//go:build apcm_avx2

#include "textflag.h"

// AVX2 bodies for the word kernels in kernels.go. Conventions shared by
// every routine here:
//
//   - DI = dst base, CX = dst word count, DX = running word index. The
//     vector blocks process 8 (or 4) words per iteration via unaligned
//     YMM loads/stores — slab pointers are 8-byte aligned, not 32 — and
//     a scalar tail finishes the remainder, so every length including
//     zero is handled.
//   - The emptiness kernels accumulate the OR of every result word in
//     Y3 (vector part) and AX (scalar tail), reduced at the end:
//     lane-fold Y3 down to one qword, OR into AX, return.
//   - Go assembler operand order for VPANDN/ANDNQ is reversed from the
//     Intel manual: VPANDN src2, src1, dst computes dst = ^src1 & src2.
//     Every use below relies on that to get dst &^ src in one op.
//   - R15 is avoided throughout (reserved when dynamic linking).
//
// The sparse scatter loops are scalar by nature (one random
// read-modify-write per id); their win over the Go twins is
// SHLX/ANDN — flagless shifts by an arbitrary register count with no
// CL shuffling and no branch in the and-union body. They require BMI1+
// BMI2, which detectAVX2 gates alongside AVX2 itself.

// func andWordsAVX2(dst, src []uint64)
TEXT ·andWordsAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ DX, DX

and_blk8:
	LEAQ 8(DX), BX
	CMPQ BX, CX
	JA   and_tail
	VMOVDQU (DI)(DX*8), Y0
	VMOVDQU 32(DI)(DX*8), Y1
	VPAND   (SI)(DX*8), Y0, Y0
	VPAND   32(SI)(DX*8), Y1, Y1
	VMOVDQU Y0, (DI)(DX*8)
	VMOVDQU Y1, 32(DI)(DX*8)
	MOVQ BX, DX
	JMP  and_blk8

and_tail:
	CMPQ DX, CX
	JGE  and_done
	MOVQ (SI)(DX*8), AX
	ANDQ AX, (DI)(DX*8)
	INCQ DX
	JMP  and_tail

and_done:
	VZEROUPPER
	RET

// func orWordsAVX2(dst, src []uint64)
TEXT ·orWordsAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ DX, DX

or_blk8:
	LEAQ 8(DX), BX
	CMPQ BX, CX
	JA   or_tail
	VMOVDQU (DI)(DX*8), Y0
	VMOVDQU 32(DI)(DX*8), Y1
	VPOR    (SI)(DX*8), Y0, Y0
	VPOR    32(SI)(DX*8), Y1, Y1
	VMOVDQU Y0, (DI)(DX*8)
	VMOVDQU Y1, 32(DI)(DX*8)
	MOVQ BX, DX
	JMP  or_blk8

or_tail:
	CMPQ DX, CX
	JGE  or_done
	MOVQ (SI)(DX*8), AX
	ORQ  AX, (DI)(DX*8)
	INCQ DX
	JMP  or_tail

or_done:
	VZEROUPPER
	RET

// func copyWordsAVX2(dst, src []uint64)
TEXT ·copyWordsAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ DX, DX

cp_blk8:
	LEAQ 8(DX), BX
	CMPQ BX, CX
	JA   cp_tail
	VMOVDQU (SI)(DX*8), Y0
	VMOVDQU 32(SI)(DX*8), Y1
	VMOVDQU Y0, (DI)(DX*8)
	VMOVDQU Y1, 32(DI)(DX*8)
	MOVQ BX, DX
	JMP  cp_blk8

cp_tail:
	CMPQ DX, CX
	JGE  cp_done
	MOVQ (SI)(DX*8), AX
	MOVQ AX, (DI)(DX*8)
	INCQ DX
	JMP  cp_tail

cp_done:
	VZEROUPPER
	RET

// func andNotWordsAVX2(dst, src []uint64) uint64
TEXT ·andNotWordsAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	VPXOR Y3, Y3, Y3
	XORQ AX, AX
	XORQ DX, DX

an_blk8:
	LEAQ 8(DX), BX
	CMPQ BX, CX
	JA   an_tail
	VMOVDQU (SI)(DX*8), Y1
	VMOVDQU 32(SI)(DX*8), Y2
	VPANDN  (DI)(DX*8), Y1, Y0      // Y0 = dst &^ src
	VPANDN  32(DI)(DX*8), Y2, Y4
	VMOVDQU Y0, (DI)(DX*8)
	VMOVDQU Y4, 32(DI)(DX*8)
	VPOR Y0, Y3, Y3
	VPOR Y4, Y3, Y3
	MOVQ BX, DX
	JMP  an_blk8

an_tail:
	CMPQ DX, CX
	JGE  an_reduce
	MOVQ (SI)(DX*8), R9
	NOTQ R9
	ANDQ (DI)(DX*8), R9
	MOVQ R9, (DI)(DX*8)
	ORQ  R9, AX
	INCQ DX
	JMP  an_tail

an_reduce:
	VEXTRACTI128 $1, Y3, X4
	VPOR    X4, X3, X3
	VPSHUFD $0x4E, X3, X4           // swap the two qword lanes
	VPOR    X4, X3, X3
	VMOVQ   X3, R9
	ORQ     R9, AX
	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET

// func andUnionWordsAVX2(dst, sat, mask []uint64) uint64
TEXT ·andUnionWordsAVX2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ sat_base+24(FP), SI
	MOVQ mask_base+48(FP), R8
	VPXOR Y3, Y3, Y3
	XORQ AX, AX
	XORQ DX, DX

au_blk8:
	LEAQ 8(DX), BX
	CMPQ BX, CX
	JA   au_tail
	VMOVDQU (SI)(DX*8), Y0          // sat
	VMOVDQU 32(SI)(DX*8), Y1
	VPANDN  (R8)(DX*8), Y0, Y0      // ^sat & mask = the dying bits
	VPANDN  32(R8)(DX*8), Y1, Y1
	VPANDN  (DI)(DX*8), Y0, Y0      // dst &^ dying = dst & (sat|^mask)
	VPANDN  32(DI)(DX*8), Y1, Y1
	VMOVDQU Y0, (DI)(DX*8)
	VMOVDQU Y1, 32(DI)(DX*8)
	VPOR Y0, Y3, Y3
	VPOR Y1, Y3, Y3
	MOVQ BX, DX
	JMP  au_blk8

au_tail:
	CMPQ DX, CX
	JGE  au_reduce
	MOVQ  (SI)(DX*8), R10           // sat
	ANDNQ (R8)(DX*8), R10, R9       // R9 = ^sat & mask
	NOTQ  R9
	ANDQ  (DI)(DX*8), R9
	MOVQ  R9, (DI)(DX*8)
	ORQ   R9, AX
	INCQ  DX
	JMP   au_tail

au_reduce:
	VEXTRACTI128 $1, Y3, X4
	VPOR    X4, X3, X3
	VPSHUFD $0x4E, X3, X4
	VPOR    X4, X3, X3
	VMOVQ   X3, R9
	ORQ     R9, AX
	MOVQ AX, ret+72(FP)
	VZEROUPPER
	RET

// func popcntWordsAVX2(w []uint64) int
//
// Scalar POPCNTQ, 4-wide with four accumulators; the temp register is
// re-zeroed each use to break POPCNT's false output dependency.
TEXT ·popcntWordsAVX2(SB), NOSPLIT, $0-32
	MOVQ w_base+0(FP), DI
	MOVQ w_len+8(FP), CX
	XORQ AX, AX
	XORQ R8, R8
	XORQ R9, R9
	XORQ R10, R10
	XORQ R11, R11
	XORQ DX, DX

pc_blk4:
	LEAQ 4(DX), BX
	CMPQ BX, CX
	JA   pc_tail
	XORQ R12, R12
	XORQ R13, R13
	XORQ R14, R14
	XORQ SI, SI
	POPCNTQ (DI)(DX*8), R12
	POPCNTQ 8(DI)(DX*8), R13
	POPCNTQ 16(DI)(DX*8), R14
	POPCNTQ 24(DI)(DX*8), SI
	ADDQ R12, R8
	ADDQ R13, R9
	ADDQ R14, R10
	ADDQ SI, R11
	MOVQ BX, DX
	JMP  pc_blk4

pc_tail:
	CMPQ DX, CX
	JGE  pc_done
	XORQ R12, R12
	POPCNTQ (DI)(DX*8), R12
	ADDQ R12, AX
	INCQ DX
	JMP  pc_tail

pc_done:
	ADDQ R8, AX
	ADDQ R9, AX
	ADDQ R10, AX
	ADDQ R11, AX
	MOVQ AX, ret+24(FP)
	RET

// func sparseSetWordsAVX2(dst []uint64, ids []int32)
TEXT ·sparseSetWordsAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ ids_base+24(FP), SI
	MOVQ ids_len+32(FP), CX
	XORQ DX, DX

ss_loop:
	CMPQ DX, CX
	JGE  ss_done
	MOVLQSX (SI)(DX*4), BX
	MOVQ  BX, R8
	SHRQ  $6, R8
	MOVQ  $1, R9
	SHLXQ BX, R9, R9                // 1 << (id & 63): SHLX masks the count
	ORQ   R9, (DI)(R8*8)
	INCQ  DX
	JMP   ss_loop

ss_done:
	RET

// func sparseClearWordsAVX2(dst []uint64, ids []int32)
TEXT ·sparseClearWordsAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ ids_base+24(FP), SI
	MOVQ ids_len+32(FP), CX
	XORQ DX, DX

sc_loop:
	CMPQ DX, CX
	JGE  sc_done
	MOVLQSX (SI)(DX*4), BX
	MOVQ  BX, R8
	SHRQ  $6, R8
	MOVQ  $1, R9
	SHLXQ BX, R9, R9
	NOTQ  R9
	ANDQ  R9, (DI)(R8*8)
	INCQ  DX
	JMP   sc_loop

sc_done:
	RET

// func sparseAndUnionWordsAVX2(dst, sat []uint64, ids []int32)
//
// Branch-free: bit &^ satWord is the bit itself when the member is
// unsatisfied and zero when satisfied, so the clear is unconditional.
TEXT ·sparseAndUnionWordsAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ sat_base+24(FP), R10
	MOVQ ids_base+48(FP), SI
	MOVQ ids_len+56(FP), CX
	XORQ DX, DX

sa_loop:
	CMPQ DX, CX
	JGE  sa_done
	MOVLQSX (SI)(DX*4), BX
	MOVQ  BX, R8
	SHRQ  $6, R8
	MOVQ  $1, R9
	SHLXQ BX, R9, R9
	MOVQ  (R10)(R8*8), R11          // sat word
	ANDNQ R9, R11, R9               // ^sat & bit: survives only if unsatisfied
	NOTQ  R9
	ANDQ  R9, (DI)(R8*8)
	INCQ  DX
	JMP   sa_loop

sa_done:
	RET
