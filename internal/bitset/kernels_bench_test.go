package bitset

// Kernel micro-benchmarks. The impl=dispatch / impl=generic pairs are
// shaped for `apcm-benchjson -ab dispatch=generic`: in an apcm_avx2
// build the ratio is the assembly's win over the unrolled pure-Go twin
// on this machine; in a default build the two sides are the same code
// and the ratio pins the harness overhead at ~1.0.
//
// BenchmarkAppendSet / BenchmarkNextSet cover satellite task 1: the
// shared trailing-zeros scan must not regress at either density
// extreme (sparse sets are dominated by the nonzero-word scan, dense
// sets by the per-bit strip loop).

import (
	"math/rand"
	"testing"
)

const benchWords = 64 // 4096-bit clusters: the compiled-width sweet spot

func benchPair(b *testing.B, run func(b *testing.B, dst, src []uint64, generic bool)) {
	rng := rand.New(rand.NewSource(7))
	dst := randWords(rng, benchWords, 0)
	src := randWords(rng, benchWords, 0)
	b.Run("impl=dispatch", func(b *testing.B) {
		b.ReportAllocs()
		run(b, dst, src, false)
	})
	b.Run("impl=generic", func(b *testing.B) {
		b.ReportAllocs()
		run(b, dst, src, true)
	})
}

func BenchmarkKernelAndNot(b *testing.B) {
	benchPair(b, func(b *testing.B, dst, src []uint64, generic bool) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			if generic {
				acc |= andNotWordsGeneric(dst, src)
			} else {
				acc |= andNotWords(dst, src)
			}
		}
		sinkU64 = acc
	})
}

func BenchmarkKernelAndUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	mask := randWords(rng, benchWords, 0)
	benchPair(b, func(b *testing.B, dst, sat []uint64, generic bool) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			if generic {
				acc |= andUnionWordsGeneric(dst, sat, mask)
			} else {
				acc |= andUnionWords(dst, sat, mask)
			}
		}
		sinkU64 = acc
	})
}

func BenchmarkKernelOr(b *testing.B) {
	benchPair(b, func(b *testing.B, dst, src []uint64, generic bool) {
		for i := 0; i < b.N; i++ {
			if generic {
				orWordsGeneric(dst, src)
			} else {
				orWords(dst, src)
			}
		}
	})
}

func BenchmarkKernelPopcnt(b *testing.B) {
	benchPair(b, func(b *testing.B, dst, _ []uint64, generic bool) {
		acc := 0
		for i := 0; i < b.N; i++ {
			if generic {
				acc += popcntWordsGeneric(dst)
			} else {
				acc += popcntWords(dst)
			}
		}
		sinkInt = acc
	})
}

func BenchmarkKernelSparseAndUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	dst := randWords(rng, benchWords, 0)
	sat := randWords(rng, benchWords, 0)
	ids := randIDs(rng, benchWords, 2*benchWords) // at the sparse density cap
	b.Run("impl=dispatch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sparseAndUnionWords(dst, sat, ids)
		}
	})
	b.Run("impl=generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sparseAndUnionWordsGeneric(dst, sat, ids)
		}
	})
}

var sinkU64 uint64

// densitySet returns a benchWords-wide bitset with roughly the given
// fraction of bits set (deterministic).
func densitySet(density float64) *Bitset {
	rng := rand.New(rand.NewSource(11))
	b := New(benchWords * 64)
	for i := 0; i < b.Len(); i++ {
		if rng.Float64() < density {
			b.Set(i)
		}
	}
	return b
}

func BenchmarkAppendSet(b *testing.B) {
	for _, d := range []struct {
		name    string
		density float64
	}{
		{"density=low", 0.01},
		{"density=high", 0.60},
	} {
		b.Run(d.name, func(b *testing.B) {
			set := densitySet(d.density)
			dst := make([]int, 0, set.Count())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = set.AppendSet(dst[:0])
			}
			sinkInt = len(dst)
		})
	}
}

func BenchmarkNextSet(b *testing.B) {
	for _, d := range []struct {
		name    string
		density float64
	}{
		{"density=low", 0.01},
		{"density=high", 0.60},
	} {
		b.Run(d.name, func(b *testing.B) {
			set := densitySet(d.density)
			b.ReportAllocs()
			b.ResetTimer()
			acc := 0
			for i := 0; i < b.N; i++ {
				for j := set.NextSet(0); j >= 0; j = set.NextSet(j + 1) {
					acc += j
				}
			}
			sinkInt = acc
		})
	}
}

func BenchmarkIter(b *testing.B) {
	for _, d := range []struct {
		name    string
		density float64
	}{
		{"density=low", 0.01},
		{"density=high", 0.60},
	} {
		b.Run(d.name, func(b *testing.B) {
			set := densitySet(d.density)
			b.ReportAllocs()
			b.ResetTimer()
			acc := 0
			for i := 0; i < b.N; i++ {
				for it := set.IterStart(); it.Valid(); it.Next() {
					acc += it.Index()
				}
			}
			sinkInt = acc
		})
	}
}
