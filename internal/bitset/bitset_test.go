package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	b := New(0)
	if b.Len() != 0 || b.Count() != 0 || !b.None() {
		t.Fatalf("zero-capacity bitset not empty: len=%d count=%d", b.Len(), b.Count())
	}
	if got := b.NextSet(0); got != -1 {
		t.Fatalf("NextSet on empty = %d, want -1", got)
	}
}

func TestSetTestClear(t *testing.T) {
	b := New(200)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range idx {
		b.Set(i)
	}
	for _, i := range idx {
		if !b.Test(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if b.Count() != len(idx) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(idx))
	}
	for _, i := range idx {
		b.Clear(i)
		if b.Test(i) {
			t.Errorf("bit %d should be clear", i)
		}
	}
	if !b.None() {
		t.Fatal("expected empty after clearing all")
	}
}

func TestSetAllTrims(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128, 129} {
		b := New(n)
		b.SetAll()
		if b.Count() != n {
			t.Errorf("n=%d: SetAll count = %d", n, b.Count())
		}
	}
}

func TestNewFull(t *testing.T) {
	b := NewFull(70)
	if b.Count() != 70 {
		t.Fatalf("NewFull(70).Count() = %d", b.Count())
	}
	if !b.Test(69) || b.Test(69) != true {
		t.Fatal("high bit not set")
	}
}

func TestAndNotEarlyZero(t *testing.T) {
	a := NewFull(130)
	k := NewFull(130)
	if !a.AndNot(k) {
		t.Fatal("AndNot against full mask should report empty")
	}
	if !a.None() {
		t.Fatal("expected empty result")
	}

	a = NewFull(130)
	k = New(130)
	k.Set(5)
	if a.AndNot(k) {
		t.Fatal("AndNot should not report empty when survivors remain")
	}
	if a.Test(5) {
		t.Fatal("bit 5 should be killed")
	}
	if a.Count() != 129 {
		t.Fatalf("Count = %d, want 129", a.Count())
	}
}

func TestNextSet(t *testing.T) {
	b := New(300)
	want := []int{3, 64, 65, 150, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if b.NextSet(300) != -1 || b.NextSet(1000) != -1 {
		t.Fatal("NextSet past capacity should be -1")
	}
	if b.NextSet(-5) != 3 {
		t.Fatal("NextSet with negative start should begin at 0")
	}
}

func TestAppendSetMatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := New(500)
	for i := 0; i < 120; i++ {
		b.Set(rng.Intn(500))
	}
	app := b.AppendSet(nil)
	var fe []int
	b.ForEach(func(i int) bool { fe = append(fe, i); return true })
	if len(app) != len(fe) {
		t.Fatalf("AppendSet %d items, ForEach %d", len(app), len(fe))
	}
	for i := range app {
		if app[i] != fe[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, app[i], fe[i])
		}
	}
	if len(app) != b.Count() {
		t.Fatalf("iteration found %d bits, Count says %d", len(app), b.Count())
	}
}

func TestForEachEarlyStop(t *testing.T) {
	b := NewFull(100)
	n := 0
	b.ForEach(func(i int) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("ForEach visited %d bits after stop at 7", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(100)
	a.Set(10)
	c := a.Clone()
	c.Set(20)
	if a.Test(20) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Test(10) {
		t.Fatal("clone lost original bit")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	b.Set(3)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	b.Set(4)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	c := New(101)
	c.Set(3)
	if a.Equal(c) {
		t.Fatal("different capacities should not be Equal")
	}
}

func TestString(t *testing.T) {
	b := New(10)
	b.Set(1)
	b.Set(5)
	if got := b.String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// randomSet builds a bitset of capacity n from a seed, used by property tests.
func randomSet(n int, seed int64) *Bitset {
	rng := rand.New(rand.NewSource(seed))
	b := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			b.Set(i)
		}
	}
	return b
}

func TestPropDeMorgan(t *testing.T) {
	// a AND NOT b == a XOR (a AND b)
	f := func(seedA, seedB int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		a := randomSet(n, seedA)
		b := randomSet(n, seedB)

		lhs := a.Clone()
		lhs.AndNot(b)

		rhs := a.Clone()
		ab := a.Clone()
		ab.And(b)
		rhs.Xor(ab)

		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionCount(t *testing.T) {
	// |a OR b| == |a| + |b| - |a AND b|
	f := func(seedA, seedB int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		a := randomSet(n, seedA)
		b := randomSet(n, seedB)
		or := a.Clone()
		or.Or(b)
		and := a.Clone()
		and.And(b)
		return or.Count() == a.Count()+b.Count()-and.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropAndNotDisjoint(t *testing.T) {
	// (a AND NOT b) AND b == empty
	f := func(seedA, seedB int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		a := randomSet(n, seedA)
		b := randomSet(n, seedB)
		d := a.Clone()
		d.AndNot(b)
		d.And(b)
		return d.None()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropCopyEqual(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		a := randomSet(n, seed)
		b := New(n)
		b.CopyFrom(a)
		return a.Equal(b) && b.Count() == a.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropIterationSorted(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		a := randomSet(n, seed)
		prev := -1
		ok := true
		a.ForEach(func(i int) bool {
			if i <= prev || i >= n || !a.Test(i) {
				ok = false
				return false
			}
			prev = i
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemBytes(t *testing.T) {
	if got := New(64).MemBytes(); got != 8 {
		t.Fatalf("MemBytes(64 bits) = %d, want 8", got)
	}
	if got := New(65).MemBytes(); got != 16 {
		t.Fatalf("MemBytes(65 bits) = %d, want 16", got)
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) should panic")
		}
	}()
	New(-1)
}

func BenchmarkAndNot4096(b *testing.B) {
	x := NewFull(4096)
	y := randomSet(4096, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.AndNot(y)
	}
}

func BenchmarkNextSetSparse(b *testing.B) {
	x := New(65536)
	for i := 0; i < 65536; i += 1024 {
		x.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
		}
	}
}

func TestIterMatchesForEach(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%700) + 1
		a := randomSet(n, seed)
		var want []int
		a.ForEach(func(i int) bool { want = append(want, i); return true })
		var got []int
		for it := a.IterStart(); it.Valid(); it.Next() {
			got = append(got, it.Index())
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIterEmptyAndFull(t *testing.T) {
	if it := New(256).IterStart(); it.Valid() {
		t.Fatal("iterator over empty set reports Valid")
	}
	n := 0
	for it := NewFull(130).IterStart(); it.Valid(); it.Next() {
		if it.Index() != n {
			t.Fatalf("full-set iteration: got %d, want %d", it.Index(), n)
		}
		n++
	}
	if n != 130 {
		t.Fatalf("full-set iteration visited %d bits, want 130", n)
	}
}

// denseSet fills every other bit: the worst case for NextSet-loop
// iteration (every call rescans its word from the start).
func denseSet(n int) *Bitset {
	b := New(n)
	for i := 0; i < n; i += 2 {
		b.Set(i)
	}
	return b
}

func BenchmarkIterationDense(b *testing.B) {
	x := denseSet(65536)
	b.Run("NextSetLoop", func(b *testing.B) {
		b.ReportAllocs()
		sum := 0
		for i := 0; i < b.N; i++ {
			for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
				sum += j
			}
		}
		sinkInt = sum
	})
	b.Run("Iter", func(b *testing.B) {
		b.ReportAllocs()
		sum := 0
		for i := 0; i < b.N; i++ {
			for it := x.IterStart(); it.Valid(); it.Next() {
				sum += it.Index()
			}
		}
		sinkInt = sum
	})
	b.Run("AppendSet", func(b *testing.B) {
		b.ReportAllocs()
		var buf []int
		for i := 0; i < b.N; i++ {
			buf = x.AppendSet(buf[:0])
		}
		sinkInt = len(buf)
	})
}

var sinkInt int

func BenchmarkCount4096(b *testing.B) {
	x := randomSet(4096, 11)
	b.ReportAllocs()
	n := 0
	for i := 0; i < b.N; i++ {
		n += x.Count()
	}
	sinkInt = n
}

func BenchmarkAndUnion4096(b *testing.B) {
	x := NewFull(4096)
	s := randomSet(4096, 3)
	m := randomSet(4096, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.AndUnion(s, m)
	}
}
