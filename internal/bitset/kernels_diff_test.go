package bitset

// Differential equivalence suites for the kernel layer. Three
// implementations of every kernel are held to bit-identical behaviour:
//
//	reference (the obvious one-line-per-word loop, defined here)
//	  == ...Generic (the unrolled pure-Go twin, kernels.go)
//	  == dispatched (whatever the build mode wired up: the generic twin
//	     again, or the AVX2 assembly when built with -tags apcm_avx2 on
//	     a capable CPU)
//
// The same file runs unmodified in both build modes — CI runs it twice
// (see the build-matrix job) — so the assembly can never drift from the
// oracle unnoticed. Coverage deliberately includes every word count
// 0–9 (all-tail), lengths straddling the 8-word vector block, slices
// offset by one word (8-byte-aligned but not 32-byte-aligned bases, the
// unaligned-load path), and aliased receivers (dst == src).

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference kernels: one obvious word loop each, no unrolling, no
// accumulator tricks.

func refAnd(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

func refOr(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

func refCopy(dst, src []uint64) {
	for i := range dst {
		dst[i] = src[i]
	}
}

func refAndNot(dst, src []uint64) uint64 {
	var acc uint64
	for i := range dst {
		dst[i] &^= src[i]
		acc |= dst[i]
	}
	return acc
}

func refAndUnion(dst, sat, mask []uint64) uint64 {
	var acc uint64
	for i := range dst {
		dst[i] &= sat[i] | ^mask[i]
		acc |= dst[i]
	}
	return acc
}

func refPopcnt(w []uint64) int {
	c := 0
	for _, x := range w {
		for ; x != 0; x &= x - 1 {
			c++
		}
	}
	return c
}

func refSparseSet(dst []uint64, ids []int32) {
	for _, id := range ids {
		dst[id>>wordShift] |= 1 << (uint(id) & wordMask)
	}
}

func refSparseClear(dst []uint64, ids []int32) {
	for _, id := range ids {
		dst[id>>wordShift] &^= 1 << (uint(id) & wordMask)
	}
}

func refSparseAndUnion(dst, sat []uint64, ids []int32) {
	for _, id := range ids {
		bit := uint64(1) << (uint(id) & wordMask)
		if sat[id>>wordShift]&bit == 0 {
			dst[id>>wordShift] &^= bit
		}
	}
}

// kernelLens is the length schedule every differential test sweeps:
// all-tail lengths 0–9, block boundaries, and a few longer runs that
// exercise multiple vector blocks plus a ragged tail.
var kernelLens = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 23, 24, 31, 32, 33, 64, 100}

// randWords returns n random words inside a larger array at the given
// word offset, so asm sees bases that are 8-byte- but not necessarily
// 32-byte-aligned.
func randWords(rng *rand.Rand, n, offset int) []uint64 {
	backing := make([]uint64, n+offset)
	for i := range backing {
		backing[i] = rng.Uint64()
	}
	return backing[offset : offset+n]
}

func cloneWords(w []uint64) []uint64 {
	c := make([]uint64, len(w))
	copy(c, w)
	return c
}

// diffBinary drives one (dst, src) kernel against its reference across
// the length/offset/aliasing schedule.
func diffBinary(t *testing.T, name string,
	kernel func(dst, src []uint64) uint64,
	ref func(dst, src []uint64) uint64,
) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	for _, n := range kernelLens {
		for _, off := range []int{0, 1, 3} {
			for rep := 0; rep < 8; rep++ {
				dst := randWords(rng, n, off)
				src := randWords(rng, n, off)
				wantDst := cloneWords(dst)
				wantAcc := ref(wantDst, src)
				gotAcc := kernel(dst, src)
				for i := range dst {
					if dst[i] != wantDst[i] {
						t.Fatalf("%s: n=%d off=%d word %d = %#x, want %#x", name, n, off, i, dst[i], wantDst[i])
					}
				}
				if (gotAcc == 0) != (wantAcc == 0) {
					t.Fatalf("%s: n=%d off=%d emptiness acc = %#x, want %#x", name, n, off, gotAcc, wantAcc)
				}

				// Aliased receiver: dst and src are the same slice.
				ali := randWords(rng, n, off)
				wantAli := cloneWords(ali)
				wantAcc = ref(wantAli, cloneWords(ali))
				gotAcc = kernel(ali, ali)
				for i := range ali {
					if ali[i] != wantAli[i] {
						t.Fatalf("%s aliased: n=%d off=%d word %d = %#x, want %#x", name, n, off, i, ali[i], wantAli[i])
					}
				}
				if (gotAcc == 0) != (wantAcc == 0) {
					t.Fatalf("%s aliased: n=%d off=%d emptiness acc = %#x, want %#x", name, n, off, gotAcc, wantAcc)
				}
			}
		}
	}
}

// The no-accumulator kernels get a zero-returning adapter so one driver
// serves all binary kernels.
func adapt(f func(dst, src []uint64)) func(dst, src []uint64) uint64 {
	return func(dst, src []uint64) uint64 { f(dst, src); return 0 }
}

func TestKernelDiffAnd(t *testing.T) {
	diffBinary(t, "andWords", adapt(andWords), adapt(refAnd))
	diffBinary(t, "andWordsGeneric", adapt(andWordsGeneric), adapt(refAnd))
}

func TestKernelDiffOr(t *testing.T) {
	diffBinary(t, "orWords", adapt(orWords), adapt(refOr))
	diffBinary(t, "orWordsGeneric", adapt(orWordsGeneric), adapt(refOr))
}

func TestKernelDiffCopy(t *testing.T) {
	diffBinary(t, "copyWords", adapt(copyWords), adapt(refCopy))
	diffBinary(t, "copyWordsGeneric", adapt(copyWordsGeneric), adapt(refCopy))
}

func TestKernelDiffAndNot(t *testing.T) {
	diffBinary(t, "andNotWords", andNotWords, refAndNot)
	diffBinary(t, "andNotWordsGeneric", andNotWordsGeneric, refAndNot)
}

func TestKernelDiffAndUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range kernelLens {
		for _, off := range []int{0, 1, 3} {
			for rep := 0; rep < 8; rep++ {
				dst := randWords(rng, n, off)
				sat := randWords(rng, n, off)
				mask := randWords(rng, n, off)
				want := cloneWords(dst)
				wantAcc := refAndUnion(want, sat, mask)
				gotAcc := andUnionWords(dst, sat, mask)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("andUnionWords: n=%d off=%d word %d = %#x, want %#x", n, off, i, dst[i], want[i])
					}
				}
				if (gotAcc == 0) != (wantAcc == 0) {
					t.Fatalf("andUnionWords: n=%d off=%d acc = %#x, want %#x", n, off, gotAcc, wantAcc)
				}

			}
		}
	}

	// Full three-way sweep for the generic twin too.
	rng = rand.New(rand.NewSource(3))
	for _, n := range kernelLens {
		dst := randWords(rng, n, 1)
		sat := randWords(rng, n, 1)
		mask := randWords(rng, n, 1)
		want := cloneWords(dst)
		wantAcc := refAndUnion(want, sat, mask)
		gotAcc := andUnionWordsGeneric(dst, sat, mask)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("andUnionWordsGeneric: n=%d word %d = %#x, want %#x", n, i, dst[i], want[i])
			}
		}
		if (gotAcc == 0) != (wantAcc == 0) {
			t.Fatalf("andUnionWordsGeneric: n=%d acc mismatch", n)
		}
	}
}

func TestKernelDiffPopcnt(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range kernelLens {
		for _, off := range []int{0, 1, 3} {
			w := randWords(rng, n, off)
			want := refPopcnt(w)
			if got := popcntWords(w); got != want {
				t.Fatalf("popcntWords: n=%d off=%d = %d, want %d", n, off, got, want)
			}
			if got := popcntWordsGeneric(w); got != want {
				t.Fatalf("popcntWordsGeneric: n=%d off=%d = %d, want %d", n, off, got, want)
			}
		}
	}
	// Degenerate contents: all-zero and all-ones.
	for _, n := range kernelLens {
		w := make([]uint64, n)
		if got := popcntWords(w); got != 0 {
			t.Fatalf("popcntWords all-zero n=%d = %d", n, got)
		}
		for i := range w {
			w[i] = ^uint64(0)
		}
		if got := popcntWords(w); got != 64*n {
			t.Fatalf("popcntWords all-ones n=%d = %d, want %d", n, got, 64*n)
		}
	}
}

// randIDs returns sorted-ish random ids in [0, 64n), with duplicates —
// the sparse kernels must tolerate both.
func randIDs(rng *rand.Rand, n, k int) []int32 {
	if n == 0 {
		return nil
	}
	ids := make([]int32, k)
	for i := range ids {
		ids[i] = int32(rng.Intn(64 * n))
	}
	return ids
}

func TestKernelDiffSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range kernelLens {
		if n == 0 {
			continue
		}
		for _, k := range []int{0, 1, 2, 7, 16, 64} {
			for _, off := range []int{0, 1} {
				ids := randIDs(rng, n, k)

				dst := randWords(rng, n, off)
				want := cloneWords(dst)
				refSparseSet(want, ids)
				sparseSetWords(dst, ids)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("sparseSetWords: n=%d k=%d word %d = %#x, want %#x", n, k, i, dst[i], want[i])
					}
				}

				dst = randWords(rng, n, off)
				want = cloneWords(dst)
				refSparseClear(want, ids)
				sparseClearWords(dst, ids)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("sparseClearWords: n=%d k=%d word %d = %#x, want %#x", n, k, i, dst[i], want[i])
					}
				}

				dst = randWords(rng, n, off)
				sat := randWords(rng, n, off)
				want = cloneWords(dst)
				refSparseAndUnion(want, sat, ids)
				sparseAndUnionWords(dst, sat, ids)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("sparseAndUnionWords: n=%d k=%d word %d = %#x, want %#x", n, k, i, dst[i], want[i])
					}
				}

				// Generic twins.
				dst = randWords(rng, n, off)
				want = cloneWords(dst)
				refSparseSet(want, ids)
				sparseSetWordsGeneric(dst, ids)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("sparseSetWordsGeneric: n=%d k=%d word %d mismatch", n, k, i)
					}
				}
				dst = randWords(rng, n, off)
				want = cloneWords(dst)
				refSparseAndUnion(want, sat, ids)
				sparseAndUnionWordsGeneric(dst, sat, ids)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("sparseAndUnionWordsGeneric: n=%d k=%d word %d mismatch", n, k, i)
					}
				}
			}
		}
	}
}

// quick.Check property: for arbitrary word vectors, the dispatched
// kernels agree with the references on both contents and the emptiness
// signal. Lengths are clamped into the interesting 0–40 range so the
// generator spends its budget on block/tail boundaries.
func TestKernelQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}

	check := func(name string, f any) {
		t.Helper()
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	clamp := func(a []uint64) []uint64 {
		if len(a) > 40 {
			a = a[:40]
		}
		return a
	}
	pair := func(a, b []uint64) ([]uint64, []uint64) {
		a, b = clamp(a), clamp(b)
		n := min(len(a), len(b))
		return a[:n], b[:n]
	}

	check("andNot", func(a, b []uint64) bool {
		a, b = pair(a, b)
		w := cloneWords(a)
		acc := refAndNot(w, b)
		got := andNotWords(a, b)
		if (got == 0) != (acc == 0) {
			return false
		}
		for i := range a {
			if a[i] != w[i] {
				return false
			}
		}
		return true
	})

	check("andUnion", func(a, b, c []uint64) bool {
		a, b = pair(a, b)
		c = clamp(c)
		n := min(len(a), len(c))
		a, b, c = a[:n], b[:n], c[:n]
		w := cloneWords(a)
		acc := refAndUnion(w, b, c)
		got := andUnionWords(a, b, c)
		if (got == 0) != (acc == 0) {
			return false
		}
		for i := range a {
			if a[i] != w[i] {
				return false
			}
		}
		return true
	})

	check("or", func(a, b []uint64) bool {
		a, b = pair(a, b)
		w := cloneWords(a)
		refOr(w, b)
		orWords(a, b)
		for i := range a {
			if a[i] != w[i] {
				return false
			}
		}
		return true
	})

	check("popcnt", func(a []uint64) bool {
		a = clamp(a)
		return popcntWords(a) == refPopcnt(a)
	})

	check("sparse", func(a []uint64, rawIDs []int32) bool {
		a = clamp(a)
		if len(a) == 0 {
			return true
		}
		ids := make([]int32, 0, len(rawIDs))
		for _, id := range rawIDs {
			if id < 0 {
				id = -id
			}
			ids = append(ids, id%int32(64*len(a)))
		}
		w := cloneWords(a)
		refSparseClear(w, ids)
		sparseClearWords(a, ids)
		for i := range a {
			if a[i] != w[i] {
				return false
			}
		}
		return true
	})
}

// Fuzz targets: corpus-driven versions of the same differentials. go
// test runs the seed corpus on every test run; `make fuzz` (and the CI
// fuzz job) does short coverage-guided runs.

func wordsFromBytes(data []byte) []uint64 {
	w := make([]uint64, len(data)/8)
	for i := range w {
		for j := 0; j < 8; j++ {
			w[i] |= uint64(data[i*8+j]) << (8 * j)
		}
	}
	return w
}

func FuzzKernelDense(f *testing.F) {
	f.Add([]byte{}, []byte{1, 2, 3})
	f.Add(make([]byte, 64), make([]byte, 80))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, make([]byte, 8))
	f.Fuzz(func(t *testing.T, da, db []byte) {
		a := wordsFromBytes(da)
		b := wordsFromBytes(db)
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]

		w := cloneWords(a)
		acc := refAndNot(w, b)
		mut := cloneWords(a)
		got := andNotWords(mut, b)
		if (got == 0) != (acc == 0) {
			t.Fatalf("andNot emptiness mismatch")
		}
		for i := range w {
			if mut[i] != w[i] {
				t.Fatalf("andNot word %d: %#x != %#x", i, mut[i], w[i])
			}
		}

		x := cloneWords(a)
		refAnd(x, b)
		y := cloneWords(a)
		andWords(y, b)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("and word %d: %#x != %#x", i, y[i], x[i])
			}
		}

		x = cloneWords(a)
		refOr(x, b)
		y = cloneWords(a)
		orWords(y, b)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("or word %d: %#x != %#x", i, y[i], x[i])
			}
		}

		if popcntWords(a) != refPopcnt(a) {
			t.Fatalf("popcnt mismatch")
		}
	})
}

func FuzzKernelAndUnion(f *testing.F) {
	f.Add(make([]byte, 24), make([]byte, 24), make([]byte, 24))
	f.Add([]byte{0xaa}, []byte{0x55}, []byte{0xff})
	f.Fuzz(func(t *testing.T, da, db, dc []byte) {
		a := wordsFromBytes(da)
		b := wordsFromBytes(db)
		c := wordsFromBytes(dc)
		n := min(len(a), min(len(b), len(c)))
		a, b, c = a[:n], b[:n], c[:n]
		w := cloneWords(a)
		acc := refAndUnion(w, b, c)
		got := andUnionWords(a, b, c)
		if (got == 0) != (acc == 0) {
			t.Fatalf("andUnion emptiness mismatch")
		}
		for i := range a {
			if a[i] != w[i] {
				t.Fatalf("andUnion word %d: %#x != %#x", i, a[i], w[i])
			}
		}
	})
}

func FuzzKernelSparse(f *testing.F) {
	f.Add(make([]byte, 32), []byte{0, 1, 63, 64})
	f.Add(make([]byte, 8), []byte{7, 7, 7})
	f.Fuzz(func(t *testing.T, dw, rawIDs []byte) {
		w := wordsFromBytes(dw)
		if len(w) == 0 {
			return
		}
		ids := make([]int32, len(rawIDs))
		for i, b := range rawIDs {
			ids[i] = int32(b) % int32(64*len(w))
		}
		sat := cloneWords(w)

		a := cloneWords(w)
		b := cloneWords(w)
		refSparseClear(a, ids)
		sparseClearWords(b, ids)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sparseClear word %d: %#x != %#x", i, b[i], a[i])
			}
		}

		a = cloneWords(w)
		b = cloneWords(w)
		refSparseSet(a, ids)
		sparseSetWords(b, ids)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sparseSet word %d: %#x != %#x", i, b[i], a[i])
			}
		}

		a = cloneWords(w)
		b = cloneWords(w)
		refSparseAndUnion(a, sat, ids)
		sparseAndUnionWords(b, sat, ids)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sparseAndUnion word %d: %#x != %#x", i, b[i], a[i])
			}
		}
	})
}
