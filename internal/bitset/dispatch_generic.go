//go:build !apcm_avx2 || !amd64

package bitset

// Default build mode: every kernel is its pure-Go twin, with no
// dispatch branch at all. The wrappers are single calls, so they inline
// into the Bitset/Posting methods and cost nothing.
//
// Build with -tags apcm_avx2 on amd64 to swap in the runtime-dispatched
// assembly kernels (see dispatch_avx2.go).

// HaveAVX2 reports whether the assembly kernels are compiled in and the
// CPU supports them. Always false in this build mode.
const HaveAVX2 = false

func andWords(dst, src []uint64)  { andWordsGeneric(dst, src) }
func orWords(dst, src []uint64)   { orWordsGeneric(dst, src) }
func copyWords(dst, src []uint64) { copyWordsGeneric(dst, src) }

func andNotWords(dst, src []uint64) uint64 { return andNotWordsGeneric(dst, src) }

func andUnionWords(dst, sat, mask []uint64) uint64 {
	return andUnionWordsGeneric(dst, sat, mask)
}

func popcntWords(w []uint64) int { return popcntWordsGeneric(w) }

func sparseSetWords(dst []uint64, ids []int32)   { sparseSetWordsGeneric(dst, ids) }
func sparseClearWords(dst []uint64, ids []int32) { sparseClearWordsGeneric(dst, ids) }

func sparseAndUnionWords(dst, sat []uint64, ids []int32) {
	sparseAndUnionWordsGeneric(dst, sat, ids)
}
