//go:build apcm_avx2 && amd64

package bitset

// AVX2 build mode (-tags apcm_avx2, amd64 only): each kernel wrapper
// branches once on a package-level feature bool and calls either the
// assembly body (kernels_avx2_amd64.s) or the pure-Go twin. Detection
// happens once at init; the asm kernels need AVX2 plus BMI1/BMI2
// (ANDN/SHLX in the sparse scatter loops) and POPCNT, i.e. a
// Haswell-or-later feature set, and the OS must have enabled YMM state
// saving (OSXSAVE + XCR0 bits 1:2). On any miss the whole package falls
// back to the generic kernels — the binary stays runnable everywhere.
//
// The pure-Go twins remain compiled in this mode and serve as the
// differential oracle for the equivalence suites.

// HaveAVX2 reports whether the assembly kernels are compiled in and the
// CPU supports them.
var HaveAVX2 = detectAVX2()

// useAVX2 is the dispatch bool read by every kernel wrapper. Split from
// HaveAVX2 so tests can force the generic path in an avx2 build
// (SetAVX2ForTest) without lying about what the CPU supports.
var useAVX2 = HaveAVX2

// SetAVX2ForTest overrides kernel dispatch and returns the previous
// setting. Enabling it on a CPU without AVX2 support is the caller's
// own fault. Test hook only — not safe concurrently with kernel use.
func SetAVX2ForTest(on bool) bool {
	prev := useAVX2
	useAVX2 = on
	return prev
}

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		popcntBit  = 1 << 23
		xsaveBit   = 1 << 26 // XSAVE/XGETBV supported
		osxsaveBit = 1 << 27 // ... and enabled by the OS
		avxBit     = 1 << 28
	)
	if ecx1&(popcntBit|xsaveBit|osxsaveBit|avxBit) != popcntBit|xsaveBit|osxsaveBit|avxBit {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves/restores YMM state.
	if eax, _ := xgetbv(); eax&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const (
		bmi1Bit = 1 << 3
		avx2Bit = 1 << 5
		bmi2Bit = 1 << 8
	)
	return ebx7&(bmi1Bit|avx2Bit|bmi2Bit) == bmi1Bit|avx2Bit|bmi2Bit
}

// cpuid and xgetbv are implemented in cpu_avx2_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// Assembly kernels. Same contracts as the ...Generic twins (see
// kernels.go); each handles every length including zero, with scalar
// tails for the words past the last full vector block.

//go:noescape
func andWordsAVX2(dst, src []uint64)

//go:noescape
func orWordsAVX2(dst, src []uint64)

//go:noescape
func copyWordsAVX2(dst, src []uint64)

//go:noescape
func andNotWordsAVX2(dst, src []uint64) uint64

//go:noescape
func andUnionWordsAVX2(dst, sat, mask []uint64) uint64

//go:noescape
func popcntWordsAVX2(w []uint64) int

//go:noescape
func sparseSetWordsAVX2(dst []uint64, ids []int32)

//go:noescape
func sparseClearWordsAVX2(dst []uint64, ids []int32)

//go:noescape
func sparseAndUnionWordsAVX2(dst, sat []uint64, ids []int32)

func andWords(dst, src []uint64) {
	if useAVX2 {
		andWordsAVX2(dst, src)
		return
	}
	andWordsGeneric(dst, src)
}

func orWords(dst, src []uint64) {
	if useAVX2 {
		orWordsAVX2(dst, src)
		return
	}
	orWordsGeneric(dst, src)
}

func copyWords(dst, src []uint64) {
	if useAVX2 {
		copyWordsAVX2(dst, src)
		return
	}
	copyWordsGeneric(dst, src)
}

func andNotWords(dst, src []uint64) uint64 {
	if useAVX2 {
		return andNotWordsAVX2(dst, src)
	}
	return andNotWordsGeneric(dst, src)
}

func andUnionWords(dst, sat, mask []uint64) uint64 {
	if useAVX2 {
		return andUnionWordsAVX2(dst, sat, mask)
	}
	return andUnionWordsGeneric(dst, sat, mask)
}

func popcntWords(w []uint64) int {
	if useAVX2 {
		return popcntWordsAVX2(w)
	}
	return popcntWordsGeneric(w)
}

func sparseSetWords(dst []uint64, ids []int32) {
	if useAVX2 {
		sparseSetWordsAVX2(dst, ids)
		return
	}
	sparseSetWordsGeneric(dst, ids)
}

func sparseClearWords(dst []uint64, ids []int32) {
	if useAVX2 {
		sparseClearWordsAVX2(dst, ids)
		return
	}
	sparseClearWordsGeneric(dst, ids)
}

func sparseAndUnionWords(dst, sat []uint64, ids []int32) {
	if useAVX2 {
		sparseAndUnionWordsAVX2(dst, sat, ids)
		return
	}
	sparseAndUnionWordsGeneric(dst, sat, ids)
}
