package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// postingPair builds a Posting and a dense reference Bitset from the
// same mutation sequence: n capacity, k Set calls at rng-chosen ids.
// Depending on k relative to SparseMaxFor(n) the posting lands sparse
// or dense, so the quick properties exercise both representations and
// the promotion boundary between them.
func postingPair(n int, seed int64, k int) (*Posting, *Bitset) {
	rng := rand.New(rand.NewSource(seed))
	p := NewPosting(n)
	ref := New(n)
	for i := 0; i < k; i++ {
		id := rng.Intn(n)
		p.Set(id)
		ref.Set(id)
	}
	return p, ref
}

func postingEqualsRef(p *Posting, ref *Bitset) bool {
	if p.Count() != ref.Count() {
		return false
	}
	got := p.AppendSet(nil)
	want := ref.AppendSet(nil)
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestPropPostingSetCountIter(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint16) bool {
		n := int(nRaw%700) + 1
		k := int(kRaw) % (2 * n)
		p, ref := postingPair(n, seed, k)
		if !postingEqualsRef(p, ref) {
			return false
		}
		// Test must agree member-by-member for both representations.
		for i := 0; i < n; i++ {
			if p.Test(i) != ref.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPostingOrInto(t *testing.T) {
	f := func(seedP, seedD int64, nRaw, kRaw uint16) bool {
		n := int(nRaw%700) + 1
		k := int(kRaw) % (2 * n)
		p, ref := postingPair(n, seedP, k)
		dst := randomSet(n, seedD)
		want := dst.Clone()
		want.Or(ref)
		p.OrInto(dst)
		return dst.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPostingCopyInto(t *testing.T) {
	f := func(seedP, seedD int64, nRaw, kRaw uint16) bool {
		n := int(nRaw%700) + 1
		k := int(kRaw) % (2 * n)
		p, ref := postingPair(n, seedP, k)
		dst := randomSet(n, seedD)
		p.CopyInto(dst)
		return dst.Equal(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPostingAndNotInto(t *testing.T) {
	f := func(seedP, seedD int64, nRaw, kRaw uint16) bool {
		n := int(nRaw%700) + 1
		k := int(kRaw) % (2 * n)
		p, ref := postingPair(n, seedP, k)
		dst := randomSet(n, seedD)
		want := dst.Clone()
		wantEmpty := want.AndNot(ref)
		gotEmpty := p.AndNotInto(dst)
		if !dst.Equal(want) {
			return false
		}
		// Emptiness: dense must be exact; sparse may under-report (it is
		// a conservative hint) but must never claim empty when not.
		if p.IsSparse() {
			return !gotEmpty || dst.None()
		}
		return gotEmpty == wantEmpty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPostingAndUnionInto(t *testing.T) {
	f := func(seedP, seedS, seedD int64, nRaw, kRaw uint16) bool {
		n := int(nRaw%700) + 1
		k := int(kRaw) % (2 * n)
		p, ref := postingPair(n, seedP, k)
		sat := randomSet(n, seedS)
		dst := randomSet(n, seedD)
		want := dst.Clone()
		wantEmpty := want.AndUnion(sat, ref)
		gotEmpty := p.AndUnionInto(dst, sat)
		if !dst.Equal(want) {
			return false
		}
		if p.IsSparse() {
			return !gotEmpty || dst.None()
		}
		return gotEmpty == wantEmpty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPostingPromoteDemoteRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint16) bool {
		n := int(nRaw%700) + 1
		k := int(kRaw) % (2 * n)
		p, ref := postingPair(n, seed, k)
		p.Promote()
		if p.IsSparse() || !postingEqualsRef(p, ref) {
			return false
		}
		ok := p.Demote()
		if p.Count() <= SparseMaxFor(n) {
			// Demotion must succeed and preserve the members.
			if !ok || !p.IsSparse() {
				return false
			}
		} else if ok || p.IsSparse() {
			// Over-budget postings must refuse to demote.
			return false
		}
		return postingEqualsRef(p, ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPostingPromotionBoundary pins the exact member count at which Set
// flips the representation: SparseMaxFor members stay sparse, one more
// promotes.
func TestPostingPromotionBoundary(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 256, 384, 1000} {
		limit := SparseMaxFor(n)
		p := NewPosting(n)
		for i := 0; i < n && p.Count() < limit; i++ {
			p.Set(i)
		}
		if p.Count() == limit && !p.IsSparse() {
			t.Fatalf("n=%d: posting promoted at %d members, limit is %d", n, p.Count(), limit)
		}
		if p.Count() == limit && limit < n {
			p.Set(limit) // one past the boundary
			if p.IsSparse() {
				t.Fatalf("n=%d: posting still sparse at %d members, limit is %d", n, p.Count(), limit)
			}
		}
	}
}

func TestPostingSetOutOfOrderAndDuplicates(t *testing.T) {
	p := NewPosting(128)
	seq := []int{100, 3, 50, 3, 100, 0, 127}
	for _, i := range seq {
		p.Set(i)
	}
	want := []int{0, 3, 50, 100, 127}
	got := p.AppendSet(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendSet = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AppendSet = %v, want %v", got, want)
		}
	}
	for _, i := range want {
		if !p.Test(i) {
			t.Errorf("Test(%d) = false after Set", i)
		}
	}
	if p.Test(1) || p.Test(126) {
		t.Error("Test reports members that were never set")
	}
}

func TestPostingSlabRehoming(t *testing.T) {
	// Simulate finalize: move a sparse posting's ids into a shared slab
	// with slack, then keep appending — growth must not corrupt a
	// neighbouring posting sharing the slab.
	slab := make([]int32, 8)
	a := NewPosting(512)
	a.Set(5)
	a.Set(9)
	b := NewPosting(512)
	b.Set(7)
	copy(slab[0:], a.Ids())
	copy(slab[4:], b.Ids())
	a.SetSparse(slab[0:2:4])
	b.SetSparse(slab[4:5:8])
	a.Set(300)
	a.Set(400) // fills a's slack exactly
	a.Set(450) // overflows: must reallocate privately, not clobber b
	if got := b.AppendSet(nil); len(got) != 1 || got[0] != 7 {
		t.Fatalf("neighbour posting corrupted by slack overflow: %v", got)
	}
	want := []int{5, 9, 300, 400, 450}
	got := a.AppendSet(nil)
	if len(got) != len(want) {
		t.Fatalf("a = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("a = %v, want %v", got, want)
		}
	}
}

func TestPostingViewBackedDense(t *testing.T) {
	words := make([]uint64, wordsFor(200))
	v := View(words, 200)
	p := NewPosting(200)
	p.Set(3)
	p.Set(150)
	p.CopyInto(v)
	p.SetDense(v)
	if p.IsSparse() || p.Count() != 2 || !p.Test(3) || !p.Test(150) {
		t.Fatal("view-backed dense posting lost members")
	}
	if words[3>>wordShift]&(1<<3) == 0 {
		t.Fatal("view-backed posting did not write through to the slab")
	}
}

func TestViewPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("View with wrong length should panic")
		}
	}()
	View(make([]uint64, 2), 200)
}

// Satellite: micro-benchmarks for the bounds-check-elimination re-slice
// in Or/Xor/Equal/CopyFrom (And/AndNot/AndUnion already had it).
func BenchmarkOr4096(b *testing.B) {
	x := randomSet(4096, 1)
	y := randomSet(4096, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkXor4096(b *testing.B) {
	x := randomSet(4096, 1)
	y := randomSet(4096, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Xor(y)
	}
}

func BenchmarkEqual4096(b *testing.B) {
	x := randomSet(4096, 1)
	y := x.Clone()
	b.ReportAllocs()
	eq := true
	for i := 0; i < b.N; i++ {
		eq = eq && x.Equal(y)
	}
	if !eq {
		b.Fatal("clone not equal")
	}
}

func BenchmarkCopyFrom4096(b *testing.B) {
	x := New(4096)
	y := randomSet(4096, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.CopyFrom(y)
	}
}

// Hybrid-vs-dense kernel cost at cluster-typical shape: 384 member
// slots (6 words), a posting with 4 members — the canonical-workload
// median — applied to a full alive set.
func BenchmarkPostingOrInto(b *testing.B) {
	const n = 384
	sparse := NewPosting(n)
	for _, id := range []int{3, 97, 200, 301} {
		sparse.Set(id)
	}
	dense := NewPosting(n)
	for _, id := range []int{3, 97, 200, 301} {
		dense.Set(id)
	}
	dense.Promote()
	dst := New(n)
	b.Run("sparse4of384", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sparse.OrInto(dst)
		}
	})
	b.Run("dense4of384", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dense.OrInto(dst)
		}
	})
}

func BenchmarkPostingAndUnionInto(b *testing.B) {
	const n = 384
	sparse := NewPosting(n)
	for _, id := range []int{3, 97, 200, 301} {
		sparse.Set(id)
	}
	dense := NewPosting(n)
	for _, id := range []int{3, 97, 200, 301} {
		dense.Set(id)
	}
	dense.Promote()
	sat := randomSet(n, 9)
	alive := NewFull(n)
	b.Run("sparse4of384", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sparse.AndUnionInto(alive, sat)
		}
	})
	b.Run("dense4of384", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dense.AndUnionInto(alive, sat)
		}
	})
}
