// Package bitset provides a dense, fixed-capacity bitset tuned for the
// compressed match kernel: word-wide AND-NOT sweeps, early-zero detection,
// and allocation-free iteration over set bits.
//
// The zero value of Bitset is an empty set of capacity zero. All binary
// operations require operands of identical capacity; this is a deliberate
// invariant (clusters compile all of their bitsets to one width) and is
// checked only in debug builds of the callers, not here, to keep the hot
// path branch-free.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// Bitset is a dense bitset backed by 64-bit words.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a Bitset with capacity for n bits, all zero.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Bitset{words: make([]uint64, wordsFor(n)), n: n}
}

// NewFull returns a Bitset with capacity n and all n bits set.
func NewFull(n int) *Bitset {
	b := New(n)
	b.SetAll()
	return b
}

// View wraps words as a Bitset of capacity n without copying. len(words)
// must equal wordsFor(n); the caller retains ownership of the backing
// array. The compiler uses View to lay every dense posting of a cluster
// out in one contiguous slab.
func View(words []uint64, n int) *Bitset {
	if len(words) != wordsFor(n) {
		panic("bitset: View length does not match capacity")
	}
	return &Bitset{words: words, n: n}
}

// InitView points an existing Bitset value at words without allocating:
// the in-place flavour of View, used by the cluster arena to initialize
// a slab of Bitset structs over sub-slices of one backing array.
func (b *Bitset) InitView(words []uint64, n int) {
	if len(words) != wordsFor(n) {
		panic("bitset: InitView length does not match capacity")
	}
	b.words, b.n = words, n
}

func wordsFor(n int) int { return (n + wordBits - 1) >> wordShift }

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Words exposes the backing words. The final word's bits past Len are
// always zero. Callers must not resize the slice.
func (b *Bitset) Words() []uint64 { return b.words }

// Set sets bit i.
//
//apcm:hotpath
func (b *Bitset) Set(i int) {
	b.words[i>>wordShift] |= 1 << (uint(i) & wordMask)
}

// Clear clears bit i.
//
//apcm:hotpath
func (b *Bitset) Clear(i int) {
	b.words[i>>wordShift] &^= 1 << (uint(i) & wordMask)
}

// Test reports whether bit i is set.
//
//apcm:hotpath
func (b *Bitset) Test(i int) bool {
	return b.words[i>>wordShift]&(1<<(uint(i)&wordMask)) != 0
}

// SetAll sets every bit in [0, Len).
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// ClearAll clears every bit.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so that popcounts and
// equality stay exact.
func (b *Bitset) trim() {
	if rem := uint(b.n) & wordMask; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of set bits.
//
//apcm:hotpath
func (b *Bitset) Count() int {
	return popcntWords(b.words)
}

// None reports whether no bits are set.
//
//apcm:hotpath
func (b *Bitset) None() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool { return !b.None() }

// And sets b = b AND other in place.
//
//apcm:hotpath
func (b *Bitset) And(other *Bitset) {
	andWords(b.words, other.words)
}

// AndNot sets b = b AND NOT other in place. This is the kernel of
// compressed matching: killing every subscription that contains a failed
// predicate. It returns true when b became empty, enabling early exit.
//
//apcm:hotpath
func (b *Bitset) AndNot(other *Bitset) bool {
	return andNotWords(b.words, other.words) == 0
}

// AndUnion sets b = b AND (sat OR NOT mask) in place: a member survives
// if it is satisfied, or if the mask says the constraint does not apply
// to it. This is the compressed kernel's per-attribute step. It returns
// true when b became empty, enabling early exit.
//
//apcm:hotpath
func (b *Bitset) AndUnion(sat, mask *Bitset) bool {
	return andUnionWords(b.words, sat.words, mask.words) == 0
}

// Or sets b = b OR other in place.
//
//apcm:hotpath
func (b *Bitset) Or(other *Bitset) {
	orWords(b.words, other.words)
}

// Xor sets b = b XOR other in place.
func (b *Bitset) Xor(other *Bitset) {
	bw := b.words
	ow := other.words[:len(bw)]
	for i := range bw {
		bw[i] ^= ow[i]
	}
	b.trim()
}

// CopyFrom overwrites b with other. Capacities must match.
//
//apcm:hotpath
func (b *Bitset) CopyFrom(other *Bitset) {
	copyWords(b.words, other.words)
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	nb := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(nb.words, b.words)
	return nb
}

// Equal reports whether b and other hold the same bits and capacity.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	bw := b.words
	ow := other.words[:len(bw)]
	for i := range bw {
		if bw[i] != ow[i] {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// none exists. Use it for allocation-free iteration:
//
//	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) { ... }
//
//apcm:hotpath
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i >> wordShift
	if w := b.words[wi] >> (uint(i) & wordMask); w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	wi = nextNonzeroWord(b.words, wi+1)
	if wi < 0 {
		return -1
	}
	return wi<<wordShift + bits.TrailingZeros64(b.words[wi])
}

// AppendSet appends the indexes of all set bits to dst and returns it.
// Zero words are skipped by nextNonzeroWord and set words drained with
// the same branch-free trailing-zeros strip loop Iter uses, so sparse
// and dense sets both pay only for what is actually set.
//
//apcm:hotpath
func (b *Bitset) AppendSet(dst []int) []int {
	for wi := nextNonzeroWord(b.words, 0); wi >= 0; wi = nextNonzeroWord(b.words, wi+1) {
		dst = appendSetBits(dst, wi<<wordShift, b.words[wi])
	}
	return dst
}

// Iter is an allocation-free forward iterator over set bits. Unlike a
// NextSet(i+1) loop — which re-loads and re-shifts the current word on
// every call, an O(words) rescan on dense sets — Iter caches the word it
// is standing in and strips bits off it with trailing-zero iteration, so
// a full sweep touches each word exactly once.
//
//	for it := b.IterStart(); it.Valid(); it.Next() { use(it.Index()) }
//
// The iterator snapshot is taken word-by-word: mutating the bitset while
// iterating yields unspecified (but memory-safe) results.
type Iter struct {
	b   *Bitset
	wi  int    // current word index
	w   uint64 // remaining bits of the current word
	idx int    // index of the current set bit, -1 when exhausted
}

// IterStart returns an iterator positioned on the first set bit (Valid
// reports false immediately for an empty set).
func (b *Bitset) IterStart() Iter {
	it := Iter{b: b, idx: -1}
	if wi := nextNonzeroWord(b.words, 0); wi >= 0 {
		it.wi = wi
		it.w = b.words[wi]
		it.idx = wi<<wordShift + bits.TrailingZeros64(it.w)
	}
	return it
}

// Valid reports whether the iterator is positioned on a set bit.
func (it *Iter) Valid() bool { return it.idx >= 0 }

// Index returns the bit the iterator is positioned on.
func (it *Iter) Index() int { return it.idx }

// Next advances to the next set bit, clearing Valid at the end.
func (it *Iter) Next() {
	it.w &= it.w - 1 // strip the bit we are standing on
	if it.w == 0 {
		wi := nextNonzeroWord(it.b.words, it.wi+1)
		if wi < 0 {
			it.idx = -1
			return
		}
		it.wi = wi
		it.w = it.b.words[wi]
	}
	it.idx = it.wi<<wordShift + bits.TrailingZeros64(it.w)
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false the iteration stops.
func (b *Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		base := wi << wordShift
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}

// String renders the set in compact {1, 5, 9} form (debug aid).
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

// MemBytes returns the heap footprint of the backing array in bytes.
func (b *Bitset) MemBytes() int { return len(b.words) * 8 }
