// Package bitset provides a dense, fixed-capacity bitset tuned for the
// compressed match kernel: word-wide AND-NOT sweeps, early-zero detection,
// and allocation-free iteration over set bits.
//
// The zero value of Bitset is an empty set of capacity zero. All binary
// operations require operands of identical capacity; this is a deliberate
// invariant (clusters compile all of their bitsets to one width) and is
// checked only in debug builds of the callers, not here, to keep the hot
// path branch-free.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// Bitset is a dense bitset backed by 64-bit words.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a Bitset with capacity for n bits, all zero.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Bitset{words: make([]uint64, wordsFor(n)), n: n}
}

// NewFull returns a Bitset with capacity n and all n bits set.
func NewFull(n int) *Bitset {
	b := New(n)
	b.SetAll()
	return b
}

func wordsFor(n int) int { return (n + wordBits - 1) >> wordShift }

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Words exposes the backing words. The final word's bits past Len are
// always zero. Callers must not resize the slice.
func (b *Bitset) Words() []uint64 { return b.words }

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.words[i>>wordShift] |= 1 << (uint(i) & wordMask)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	b.words[i>>wordShift] &^= 1 << (uint(i) & wordMask)
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	return b.words[i>>wordShift]&(1<<(uint(i)&wordMask)) != 0
}

// SetAll sets every bit in [0, Len).
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// ClearAll clears every bit.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so that popcounts and
// equality stay exact.
func (b *Bitset) trim() {
	if rem := uint(b.n) & wordMask; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// None reports whether no bits are set.
func (b *Bitset) None() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool { return !b.None() }

// And sets b = b AND other in place.
func (b *Bitset) And(other *Bitset) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// AndNot sets b = b AND NOT other in place. This is the kernel of
// compressed matching: killing every subscription that contains a failed
// predicate. It returns true when b became empty, enabling early exit.
func (b *Bitset) AndNot(other *Bitset) bool {
	var acc uint64
	bw, ow := b.words, other.words
	for i := range bw {
		bw[i] &^= ow[i]
		acc |= bw[i]
	}
	return acc == 0
}

// AndUnion sets b = b AND (sat OR NOT mask) in place: a member survives
// if it is satisfied, or if the mask says the constraint does not apply
// to it. This is the compressed kernel's per-attribute step. It returns
// true when b became empty, enabling early exit.
func (b *Bitset) AndUnion(sat, mask *Bitset) bool {
	var acc uint64
	bw, sw, mw := b.words, sat.words, mask.words
	for i := range bw {
		bw[i] &= sw[i] | ^mw[i]
		acc |= bw[i]
	}
	return acc == 0
}

// Or sets b = b OR other in place.
func (b *Bitset) Or(other *Bitset) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// Xor sets b = b XOR other in place.
func (b *Bitset) Xor(other *Bitset) {
	for i := range b.words {
		b.words[i] ^= other.words[i]
	}
	b.trim()
}

// CopyFrom overwrites b with other. Capacities must match.
func (b *Bitset) CopyFrom(other *Bitset) {
	copy(b.words, other.words)
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	nb := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(nb.words, b.words)
	return nb
}

// Equal reports whether b and other hold the same bits and capacity.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// none exists. Use it for allocation-free iteration:
//
//	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) { ... }
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i >> wordShift
	w := b.words[wi] >> (uint(i) & wordMask)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi<<wordShift + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// AppendSet appends the indexes of all set bits to dst and returns it.
func (b *Bitset) AppendSet(dst []int) []int {
	for wi, w := range b.words {
		base := wi << wordShift
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false the iteration stops.
func (b *Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		base := wi << wordShift
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}

// String renders the set in compact {1, 5, 9} form (debug aid).
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

// MemBytes returns the heap footprint of the backing array in bytes.
func (b *Bitset) MemBytes() int { return len(b.words) * 8 }
