// Package linttest is a miniature analysistest: it type-checks a
// fixture package under testdata/src/<name>, runs one analyzer (and its
// Requires closure), and matches the diagnostics against `// want
// "regexp"` comments in the fixtures.
//
// The real golang.org/x/tools/go/analysis/analysistest depends on
// go/packages, which cannot be vendored from the toolchain's GOROOT
// copy (it needs the go list driver and module resolution). This
// harness covers what the apcm-lint fixtures need instead: fixtures
// import only the standard library, so the go/importer source importer
// resolves everything offline.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes the fixture package in dir with a and asserts that the
// diagnostics exactly match the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()

	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	r := &runner{
		fset:    fset,
		files:   files,
		pkg:     pkg,
		info:    info,
		results: make(map[*analysis.Analyzer]interface{}),
		facts:   make(map[factKey]analysis.Fact),
	}
	diags, err := r.run(a, true)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, fset, dir, diags)
}

type factKey struct {
	obj types.Object
	typ reflect.Type
}

type runner struct {
	fset    *token.FileSet
	files   []*ast.File
	pkg     *types.Package
	info    *types.Info
	results map[*analysis.Analyzer]interface{}
	facts   map[factKey]analysis.Fact
}

// run executes a (dependencies first) and returns the diagnostics of
// the top-level analyzer only.
func (r *runner) run(a *analysis.Analyzer, top bool) ([]analysis.Diagnostic, error) {
	if _, done := r.results[a]; done && !top {
		return nil, nil
	}
	for _, dep := range a.Requires {
		if _, err := r.run(dep, false); err != nil {
			return nil, fmt.Errorf("%s: %w", dep.Name, err)
		}
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       r.fset,
		Files:      r.files,
		Pkg:        r.pkg,
		TypesInfo:  r.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   r.results,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ImportObjectFact: func(obj types.Object, f analysis.Fact) bool {
			v, ok := r.facts[factKey{obj, reflect.TypeOf(f)}]
			if ok {
				reflect.ValueOf(f).Elem().Set(reflect.ValueOf(v).Elem())
			}
			return ok
		},
		ExportObjectFact: func(obj types.Object, f analysis.Fact) {
			r.facts[factKey{obj, reflect.TypeOf(f)}] = f
		},
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	r.results[a] = res
	return diags, nil
}

// wantRE extracts the quoted or backquoted regexps after "// want".
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// checkWants matches diagnostics against // want comments: every
// diagnostic needs a matching expectation on its line, and every
// expectation must be consumed.
func checkWants(t *testing.T, fset *token.FileSet, dir string, diags []analysis.Diagnostic) {
	t.Helper()

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, after, found := strings.Cut(line, "// want ")
			if !found {
				continue
			}
			for _, tok := range wantRE.FindAllString(after, -1) {
				pat := tok
				if pat[0] == '"' {
					var err error
					pat, err = strconv.Unquote(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", path, i+1, tok, err)
					}
				} else {
					pat = pat[1 : len(pat)-1]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				k := key{path, i + 1}
				wants[k] = append(wants[k], re)
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}

	var missed []string
	for k, res := range wants {
		for _, re := range res {
			missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}
