package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// AtomicField flags mixed atomic/plain access: any variable or struct
// field that is ever passed by address to a sync/atomic free function
// (atomic.AddInt64(&x, ...), atomic.LoadUint32(&s.f), ...) must be
// accessed through sync/atomic everywhere in the package. A plain read
// races with the atomic writers; a plain write tears the atomic
// readers. The engine's own counters migrated to typed atomics
// (atomic.Int64 etc.) for exactly this reason — the analyzer keeps the
// legacy free-function form from silently reappearing half-converted.
//
// The check is package-local and two-pass: first collect every object
// whose address reaches sync/atomic, then flag every other appearance
// of those objects that is not itself under a sync/atomic call or an
// unsafe.Pointer/address-of handoff. Test files are included: a racy
// test is still racy.
var AtomicField = &analysis.Analyzer{
	Name:     "atomicfield",
	Doc:      "flag plain reads/writes of variables also accessed via sync/atomic",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAtomicField,
}

func runAtomicField(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: objects whose address is taken inside a sync/atomic call,
	// keyed by the variable object; for fields that is the field object,
	// shared across all instances (conservative and intentional: the
	// field either is an atomic slot or it is not).
	atomicObjs := make(map[types.Object]token.Pos)
	// Every identifier position that appears inside some sync/atomic
	// call's arguments — those uses are the sanctioned ones.
	sanctioned := make(map[token.Pos]bool)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isSyncAtomicCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					sanctioned[id.Pos()] = true
				}
				return true
			})
			ua, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || ua.Op != token.AND {
				continue
			}
			if obj := addressedObject(pass, ua.X); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = ua.Pos()
				}
			}
		}
	})
	if len(atomicObjs) == 0 {
		return nil, nil
	}

	// Pass 2: every other use of those objects is a mixed access, except
	// address-of expressions (handing the slot to another atomic caller)
	// and declarations.
	ins.WithStack([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		id := n.(*ast.Ident)
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		first, tracked := atomicObjs[obj]
		if !tracked || sanctioned[id.Pos()] {
			return true
		}
		// The interesting expression is the selector (s.f) if the ident
		// is a field name; otherwise the ident itself.
		idx := len(stack) - 1
		if idx > 0 {
			if sel, ok := stack[idx-1].(*ast.SelectorExpr); ok && sel.Sel == id {
				idx--
			}
		}
		// &x handed onward is fine — it ends at some atomic call.
		if idx > 0 {
			if ua, ok := stack[idx-1].(*ast.UnaryExpr); ok && ua.Op == token.AND {
				return true
			}
		}
		pass.Reportf(id.Pos(),
			"plain access of %s, which is accessed atomically at %s (use sync/atomic everywhere or a typed atomic)",
			obj.Name(), pass.Fset.Position(first))
		return true
	})
	return nil, nil
}

// isSyncAtomicCall reports whether call invokes a free function of the
// sync/atomic package.
func isSyncAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// addressedObject resolves &expr to the variable or field object being
// addressed: x → var x, s.f → field f, a[i] stays untracked (index
// cannot be matched across uses soundly).
func addressedObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.ObjectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.ObjectOf(e.Sel).(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}
