package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// AtomicField flags mixed atomic/plain access in both atomic idioms:
//
// Free functions: any variable or struct field that is ever passed by
// address to a sync/atomic free function (atomic.AddInt64(&x, ...),
// atomic.LoadUint32(&s.f), ...) must be accessed through sync/atomic
// everywhere in the package. A plain read races with the atomic
// writers; a plain write tears the atomic readers.
//
// Typed atomics: a variable or field whose type is a typed atomic
// (atomic.Int64, atomic.Pointer[T], atomic.Value, ...) may only be
// used through its methods or by address — any whole-value use is a
// report: assigning over it clobbers state concurrent readers are
// loading, and copying it forks a counter the rest of the code no
// longer sees (the copy also defeats the vet copylocks contract, which
// this suite does not otherwise run).
//
// The check is package-local and two-pass: first collect every object
// whose address reaches sync/atomic, then flag every other appearance
// of those objects that is not itself under a sync/atomic call or an
// unsafe.Pointer/address-of handoff; typed-atomic objects are checked
// use-by-use. Test files are included: a racy test is still racy.
var AtomicField = &analysis.Analyzer{
	Name:     "atomicfield",
	Doc:      "flag plain reads/writes of variables also accessed via sync/atomic",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAtomicField,
}

func runAtomicField(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: objects whose address is taken inside a sync/atomic call,
	// keyed by the variable object; for fields that is the field object,
	// shared across all instances (conservative and intentional: the
	// field either is an atomic slot or it is not).
	atomicObjs := make(map[types.Object]token.Pos)
	// Every identifier position that appears inside some sync/atomic
	// call's arguments — those uses are the sanctioned ones.
	sanctioned := make(map[token.Pos]bool)

	checkTypedAtomicUses(pass, ins)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isSyncAtomicCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					sanctioned[id.Pos()] = true
				}
				return true
			})
			ua, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || ua.Op != token.AND {
				continue
			}
			if obj := addressedObject(pass, ua.X); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = ua.Pos()
				}
			}
		}
	})
	if len(atomicObjs) == 0 {
		return nil, nil
	}

	// Pass 2: every other use of those objects is a mixed access, except
	// address-of expressions (handing the slot to another atomic caller)
	// and declarations.
	ins.WithStack([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		id := n.(*ast.Ident)
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		first, tracked := atomicObjs[obj]
		if !tracked || sanctioned[id.Pos()] {
			return true
		}
		// The interesting expression is the selector (s.f) if the ident
		// is a field name; otherwise the ident itself.
		idx := len(stack) - 1
		if idx > 0 {
			if sel, ok := stack[idx-1].(*ast.SelectorExpr); ok && sel.Sel == id {
				idx--
			}
		}
		// &x handed onward is fine — it ends at some atomic call.
		if idx > 0 {
			if ua, ok := stack[idx-1].(*ast.UnaryExpr); ok && ua.Op == token.AND {
				return true
			}
		}
		pass.Reportf(id.Pos(),
			"plain access of %s, which is accessed atomically at %s (use sync/atomic everywhere or a typed atomic)",
			obj.Name(), pass.Fset.Position(first))
		return true
	})
	return nil, nil
}

// checkTypedAtomicUses flags whole-value uses of typed atomics: every
// identifier whose object's type is a sync/atomic wrapper must resolve
// to a method access (x.Load(), s.f.Store(v)) or an address-of handoff
// (&s.f passed to a helper); anything else reads or writes the wrapper
// as a value.
func checkTypedAtomicUses(pass *analysis.Pass, ins *inspector.Inspector) {
	ins.WithStack([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		id := n.(*ast.Ident)
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !isTypedAtomic(v.Type()) {
			return true
		}
		// Climb from the ident to the widest expression denoting the
		// atomic itself: s.f when the ident is a field selection.
		idx := len(stack) - 1
		if idx > 0 {
			if sel, ok := stack[idx-1].(*ast.SelectorExpr); ok && sel.Sel == id {
				idx--
			}
		}
		if idx > 0 {
			switch parent := stack[idx-1].(type) {
			case *ast.SelectorExpr:
				// Method (or promoted-field) access on the atomic value.
				return true
			case *ast.UnaryExpr:
				if parent.Op == token.AND {
					return true // &s.f handed to an atomic-aware helper
				}
			case *ast.KeyValueExpr:
				// Composite-literal initialization before the value is
				// shared: atomic.Pointer zero values are rarely named,
				// but a keyed field referencing another atomic as the
				// *value* is still a copy — only the key side is fine.
				if kv := parent; kv.Key == stack[idx] {
					return true
				}
			}
		}
		pass.Reportf(id.Pos(),
			"whole-value use of typed atomic %s (type %s): atomics must not be copied or reassigned; use its methods or pass its address",
			v.Name(), v.Type())
		return true
	})
}

// isSyncAtomicCall reports whether call invokes a free function of the
// sync/atomic package.
func isSyncAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// addressedObject resolves &expr to the variable or field object being
// addressed: x → var x, s.f → field f, a[i] stays untracked (index
// cannot be matched across uses soundly).
func addressedObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.ObjectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.ObjectOf(e.Sel).(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}
