// Fixture for the scratchrelease analyzer: acquires that leak on some
// return path, and every sanctioned lifetime pattern.
package scratchrelease

import "sync"

type thing struct{ n int }

var pool = sync.Pool{New: func() interface{} { return new(thing) }}
var boxes sync.Pool

type engine struct{}

func (e *engine) getScratch() *thing  { return &thing{} }
func (e *engine) putScratch(t *thing) { _ = t }

func leakOnEarlyReturn(cond bool) int {
	t := pool.Get().(*thing) // want `t acquired by sync.Pool.Get is not released`
	if cond {
		return 0
	}
	pool.Put(t)
	return t.n
}

func leakScratch(e *engine, cond bool) {
	s := e.getScratch() // want `s acquired by getScratch is not released`
	if cond {
		return
	}
	e.putScratch(s)
}

func deferCoversAllPaths(cond bool) int {
	t := pool.Get().(*thing)
	defer pool.Put(t)
	if cond {
		return 0
	}
	return t.n
}

func releasedOnEveryPath(e *engine, cond bool) int {
	s := e.getScratch()
	if cond {
		e.putScratch(s)
		return 0
	}
	n := s.n
	e.putScratch(s)
	return n
}

// Comma-ok asserted Gets opt into manual lifetime management.
func commaOkExempt() {
	t, _ := pool.Get().(*thing)
	_ = t
}

// The value escapes: ownership moves to the caller, who releases.
func escapeByReturn() *thing {
	t := pool.Get().(*thing)
	return t
}

// Cross-pool recycling (the OSR slab pattern): Put on a different pool
// still counts as a release.
func crossPool() {
	t := pool.Get().(*thing)
	boxes.Put(t)
}

// A path that panics instead of returning needs no release.
func panicPath(cond bool) {
	t := pool.Get().(*thing)
	if cond {
		panic("bad state")
	}
	pool.Put(t)
}
