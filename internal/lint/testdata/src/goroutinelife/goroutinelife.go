package goroutinelife

import (
	"context"
	"sync"
)

func work() {}

func compute() int { return 0 }

// deferredDone is the preferred idiom: the deferred Done covers every
// path.
func deferredDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// closer signals by closing a channel.
func closer(ch chan int, wg *sync.WaitGroup) {
	go func() {
		defer close(ch)
		work()
	}()
}

// sender's join edge is the result send.
func sender(res chan int) {
	go func() {
		res <- compute()
	}()
}

// ranger blocks on the channel: termination is owned by whoever closes
// jobs, which is checked at that goroutine's own spawn site.
func ranger(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// cancels invokes a context.CancelFunc when done.
func cancels(cancel context.CancelFunc) {
	go func() {
		work()
		cancel()
	}()
}

// viaHelper spawns a named method whose body carries the edge.
func viaHelper(s *srv) {
	go s.loop()
}

type srv struct{ done chan struct{} }

func (s *srv) loop() {
	defer close(s.done)
	work()
}

// fireAndForget has no edge at all: nothing can wait for it, drain it,
// or stop it.
func fireAndForget() {
	go work() // want `goroutine running work has no join/stop edge`
}

// partial signals on one path only: the early return leaks.
func partial(wg *sync.WaitGroup, cond bool) {
	wg.Add(1)
	go func() { // want `may return at .* without reaching its join/stop edge`
		if cond {
			return
		}
		wg.Done()
	}()
}

// dynamic spawns a function value: the body is invisible, so the
// discipline is unverifiable without an annotation.
func dynamic(f func()) {
	go f() // want `cannot statically see the goroutine body`
}

// detached opts out explicitly.
func detached(f func()) {
	//apcm:detached
	go f()
}

// detachedTrailing opts out with a trailing comment.
func detachedTrailing() {
	go work() //apcm:detached
}
