// Fixture for the hotpathalloc analyzer: every allocating construct it
// rejects, plus the shapes it must accept.
package hotpathalloc

type point struct{ x, y int }

var sink interface{}

func takesIface(v interface{}) { sink = v }

func cleanup() {}

//apcm:hotpath
func hotClosures(xs []int) {
	f := func() {} // want `closure in hot-path function hotClosures`
	_ = f
}

//apcm:hotpath
func hotDefer() {
	defer cleanup() // want `defer in hot-path function hotDefer`
}

//apcm:hotpath
func hotMapRange(m map[int]int) int {
	n := 0
	for k := range m { // want `map iteration in hot-path function hotMapRange`
		n += k
	}
	return n
}

//apcm:hotpath
func hotEscapes() {
	p := &point{1, 2} // want `address-taken composite literal escapes`
	q := new(point)   // want `new\(\) in hot-path function hotEscapes`
	_, _ = p, q
}

//apcm:hotpath
func hotIfaceConv(v int) interface{} {
	sink = v      // want `interface conversion boxes int`
	takesIface(v) // want `interface conversion boxes int`
	return v      // want `interface conversion boxes int`
}

//apcm:hotpath
func hotAppend(dst []int, n int) []int {
	var bad []int
	bad = append(bad, n) // want `append to un-presized slice bad`
	pre := make([]int, 0, n)
	pre = append(pre, n)   // presized: ok
	dst = append(dst, n)   // parameter: caller capacity, ok
	tail := dst[:0]        //
	tail = append(tail, n) // reslice: ok
	_, _ = bad, pre
	return tail
}

// arena mimics the compiled-cluster slab arena (internal/core/arena.go):
// typed slabs carved into capacity-clamped sub-slices via take helpers.
type arena struct {
	words []int
	wo    int
}

func (a *arena) take(n, slack int) []int {
	s := a.words[a.wo : a.wo+n : a.wo+n+slack]
	a.wo += n + slack
	return s
}

// Arena sub-slicing is alloc-free: slab views and take-helper results
// are capacity-bearing, whether bound at declaration or assigned to a
// slice declared empty. None of these appends may be flagged.
//
//apcm:hotpath
func hotArena(a *arena, n int) []int {
	direct := a.words[a.wo : a.wo+n : a.wo+n+1] // slab sub-slice: ok
	direct = append(direct, n)
	taken := a.take(n, 1) // take-style helper: ok
	taken = append(taken, n)
	var late []int
	late = a.words[0:0:n] // declared empty, rebound to a slab view: ok
	late = append(late, n)
	var bad []int
	bad = append(bad, n) // want `append to un-presized slice bad`
	_ = bad
	return append(direct[:0], late...)
}

// Unannotated functions may do all of the above freely.
func coldEverything(m map[int]int) interface{} {
	defer cleanup()
	var xs []int
	for k := range m {
		xs = append(xs, k)
	}
	f := func() *point { return &point{} }
	takesIface(xs)
	return f()
}
